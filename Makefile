# SimFS build entry points. CI (.github/workflows/ci.yml) invokes these
# same targets, so a green `make check` locally means a green pipeline.

GO ?= go

.PHONY: all build test test-short test-race bench bench-smoke bench-server bench-fed bench-autoscale benchstat proto-fuzz chaos-smoke fed-smoke autoscale-smoke lint fmt vet simfs-vet staticcheck govulncheck check clean

all: build

build:
	$(GO) build ./...

# test runs the full suite (the experiments package replays the paper's
# figures and takes ~20 s); test-short gates those behind -short.
test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# test-race is the concurrency gate: the sharded Virtualizer stress
# tests run under the race detector.
test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

# bench-smoke runs every benchmark exactly once; CI uses it to catch
# benchmarks that stop compiling or start failing, in seconds. The ./...
# sweep includes the scheduler's BenchmarkSchedulerLaunchStorm and
# BenchmarkSchedulerPreemptStorm (internal/sched; the preempt-free fast
# path is pinned at 0 allocs/op by TestPreemptFreeFastPathNoAllocs) and
# the RunCells-based multi-client stress benches.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x -short ./...

# benchstat saves benchstat-comparable output. First run: the result is
# copied to bench-before.txt as the baseline. Later runs write
# bench-after.txt and, if benchstat is installed, print the comparison.
# Narrow the set with BENCH='BenchmarkReplayECMWF|BenchmarkDESEngine'.
BENCH ?= .
benchstat:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -count 6 . > bench-after.txt || { cat bench-after.txt; rm -f bench-after.txt; exit 1; }
	@cat bench-after.txt
	@if [ ! -f bench-before.txt ]; then \
		cp bench-after.txt bench-before.txt; \
		echo "saved baseline to bench-before.txt"; \
	elif command -v benchstat >/dev/null 2>&1; then \
		benchstat bench-before.txt bench-after.txt; \
	else \
		echo "bench-after.txt saved; install benchstat (golang.org/x/perf) to compare against bench-before.txt"; \
	fi

# bench-server regenerates BENCH_server.json, the wire-protocol
# scoreboard: JSON-v2 baseline vs binary-v3, sequential vs batched.
# bench2json takes the median across BENCH_COUNT repetitions; if
# benchstat is installed the raw text output is also summarized.
BENCH_COUNT ?= 5
bench-server:
	$(GO) test -run '^$$' -bench 'BenchmarkServerMultiClientTCP' -benchtime 1s -count $(BENCH_COUNT) . | tee bench-server.txt
	$(GO) run ./cmd/bench2json -bench BenchmarkServerMultiClientTCP \
		-compare 'codec=binary+batch vs codec=json' -out BENCH_server.json < bench-server.txt
	@if command -v benchstat >/dev/null 2>&1; then benchstat bench-server.txt; fi

# bench-fed regenerates BENCH_federation.json, the scale-out figure:
# aggregate roundtrips/s for 1, 2, and 4 daemons behind the
# consistent-hash router, plus the router-overhead comparison against a
# direct daemon dial at daemons=1. Each daemon runs a 2-node scheduler
# budget, so the figure measures admission capacity scaling, not CPU.
FED_BENCH_COUNT ?= 3
bench-fed:
	$(GO) test -run '^$$' -bench 'BenchmarkFederationTCP' -benchtime 2s -count $(FED_BENCH_COUNT) . | tee bench-fed.txt
	$(GO) run ./cmd/bench2json -bench BenchmarkFederationTCP \
		-compare 'daemons=2/mode=router vs daemons=1/mode=router' \
		-compare 'daemons=4/mode=router vs daemons=1/mode=router' \
		-compare 'daemons=1/mode=router vs daemons=1/mode=direct' \
		-out BENCH_federation.json < bench-fed.txt
	@if command -v benchstat >/dev/null 2>&1; then benchstat bench-fed.txt; fi

# bench-autoscale regenerates BENCH_autoscale.json, the closed-loop
# control figure: the phase-changing ablation workload under the best
# static configuration vs the autoscale controller, pinning the
# headline cells (demand queue-wait, client blocked time, median
# completion) as custom benchmark metrics. The DES replay is
# deterministic, so the medians are exact; count > 1 only steadies
# ns/op.
AUTOSCALE_BENCH_COUNT ?= 3
bench-autoscale:
	$(GO) test -run '^$$' -bench 'BenchmarkAutoscalePhases' -benchtime 1x -count $(AUTOSCALE_BENCH_COUNT) . | tee bench-autoscale.txt
	$(GO) run ./cmd/bench2json -bench BenchmarkAutoscalePhases \
		-compare 'mode=controller vs mode=static-best' \
		-compare 'mode=controller+join vs mode=static-best' \
		-out BENCH_autoscale.json < bench-autoscale.txt
	@if command -v benchstat >/dev/null 2>&1; then benchstat bench-autoscale.txt; fi

# proto-fuzz runs the wire-protocol fuzzers (one per frame codec) over
# their committed seed corpora plus FUZZTIME of random exploration each
# (CI smokes them at 10s; crank FUZZTIME up locally after protocol
# changes). Regenerate the seed corpora with SIMFS_REGEN_CORPUS=1 go
# test ./internal/netproto -run TestRegenerateFuzzCorpus after adding
# ops or payloads.
FUZZTIME ?= 10s
proto-fuzz:
	$(GO) test ./internal/netproto -run '^$$' -fuzz '^FuzzFrameRoundTrip$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/netproto -run '^$$' -fuzz '^FuzzBinaryFrame$$' -fuzztime $(FUZZTIME)

# chaos-smoke runs the fault-tolerance gate under the race detector: the
# seeded chaos schedules (storage faults, simulation crash plans,
# connection cuts) through the contended multi-client workload, the
# daemon kill-and-restart ride-through, and the client reconnect suite.
chaos-smoke:
	$(GO) test -race -run 'TestChaosWorkloadUnderFaults|TestDaemonRestartMidWorkload|TestCloseDrainsPendingWaiters' ./internal/server
	$(GO) test -race -run 'TestReconnect|TestDoubleReleaseRefused' ./internal/dvlib
	$(GO) test -race ./internal/faults

# fed-smoke is the federation gate under the race detector: router
# proxying across sharded daemons, cross-daemon notify exactly-once
# delivery, version-skew (binary-disabled daemon behind the router),
# dead-peer isolation, and reconnecting clients riding through a router
# restart.
fed-smoke:
	$(GO) test -race -count=1 -run 'TestFederation' ./internal/fed

# autoscale-smoke is the closed-loop control gate under the race
# detector: the whole controller/policy suite (including the live-daemon
# AdminTarget round trips) plus the core-level demand-join and sunk-cost
# integration tests.
autoscale-smoke:
	$(GO) test -race -count=1 ./internal/autoscale
	$(GO) test -race -count=1 -run 'TestDemandJoin|TestPreemptSunkCost|TestPreemptGuided' ./internal/core

lint: fmt vet simfs-vet staticcheck govulncheck

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# vet stays stock `go vet` so the quick edit-compile loop never pays
# simfs-vet's full load-and-typecheck pass; the custom analyzers gate
# lint/check/CI instead.
vet:
	$(GO) vet ./...

# simfs-vet runs the repo's own invariant analyzers (determinism,
# fieldsync, lockorder, errcode — see DESIGN.md and cmd/simfs-vet).
# The tree must stay finding-free; intentional sites carry
# //simfs:allow <check> <reason> annotations.
simfs-vet:
	$(GO) run ./cmd/simfs-vet ./...

# staticcheck and govulncheck are pinned and fetched on demand via `go
# run tool@version`, so they add no go.mod dependency. The -version
# probe doubles as an availability check: offline (no cached module,
# no proxy) it fails and the step degrades to a skip instead of
# breaking lint on air-gapped machines. When the probe passes, the
# real run's exit status gates lint as usual.
STATICCHECK_VERSION ?= 2025.1.1
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	elif $(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) -version >/dev/null 2>&1; then \
		$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...; \
	else \
		echo "staticcheck: tool unavailable (offline?); skipping"; \
	fi

GOVULNCHECK_VERSION ?= v1.1.4
govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	elif $(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) -version >/dev/null 2>&1; then \
		$(GO) run golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION) ./...; \
	else \
		echo "govulncheck: tool unavailable (offline?); skipping"; \
	fi

# check is the full local gate: what CI runs, in one target.
check: build lint test-short test-race

clean:
	$(GO) clean ./...
