# SimFS build entry points. CI (.github/workflows/ci.yml) invokes these
# same targets, so a green `make check` locally means a green pipeline.

GO ?= go

.PHONY: all build test test-short test-race bench lint fmt vet check clean

all: build

build:
	$(GO) build ./...

# test runs the full suite (the experiments package replays the paper's
# figures and takes ~20 s); test-short gates those behind -short.
test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# test-race is the concurrency gate: the sharded Virtualizer stress
# tests run under the race detector.
test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench . -benchmem ./...

lint: fmt vet

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# check is the full local gate: what CI runs, in one target.
check: build lint test-short test-race

clean:
	$(GO) clean ./...
