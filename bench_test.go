package simfs

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md for the index). Each benchmark runs the full
// experiment per iteration and reports headline values as custom metrics,
// so `go test -bench=. -benchmem` both times the harness and records the
// reproduced numbers. cmd/simfs-bench prints the full row/series sets.

import (
	"fmt"
	"testing"
	"time"

	"simfs/internal/batch"
	"simfs/internal/cache"
	"simfs/internal/core"
	"simfs/internal/costmodel"
	"simfs/internal/des"
	"simfs/internal/dvlib"
	"simfs/internal/experiments"
	"simfs/internal/fed"
	"simfs/internal/model"
	"simfs/internal/sched"
	"simfs/internal/server"
	"simfs/internal/simulator"
	"simfs/internal/trace"
)

// at extracts a median from a metrics table, failing the benchmark on a
// missing cell.
func at(b *testing.B, get func() (float64, bool), what string) float64 {
	b.Helper()
	v, ok := get()
	if !ok {
		b.Fatalf("missing cell: %s", what)
	}
	return v
}

// BenchmarkFig01_AggregatedCost regenerates Fig. 1 (aggregated analysis
// cost over the availability period) and reports the 5-year costs.
func BenchmarkFig01_AggregatedCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Fig01(experiments.DefaultCostWorkload(), costmodel.Azure)
		if err != nil {
			b.Fatal(err)
		}
		ondisk := at(b, func() (float64, bool) { s, ok := tab.Series("on-disk").At("5y"); return s.Median, ok }, "on-disk@5y")
		simfsCost := at(b, func() (float64, bool) { s, ok := tab.Series("SimFS").At("5y"); return s.Median, ok }, "SimFS@5y")
		b.ReportMetric(ondisk, "ondisk-5y-k$")
		b.ReportMetric(simfsCost, "simfs-5y-k$")
	}
}

// BenchmarkFig05_ReplacementSchemes regenerates Fig. 5 (replacement-scheme
// comparison) with a reduced repetition count and reports DCL's and LRU's
// re-simulated steps on the ECMWF-like trace.
func BenchmarkFig05_ReplacementSchemes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := experiments.DefaultFig05()
		cfg.Reps = 3
		steps, _, err := experiments.Fig05(cfg)
		if err != nil {
			b.Fatal(err)
		}
		dcl := at(b, func() (float64, bool) { s, ok := steps.Series("DCL").At("ECMWF"); return s.Median, ok }, "DCL@ECMWF")
		lru := at(b, func() (float64, bool) { s, ok := steps.Series("LRU").At("ECMWF"); return s.Median, ok }, "LRU@ECMWF")
		b.ReportMetric(dcl, "dcl-ecmwf-steps")
		b.ReportMetric(lru, "lru-ecmwf-steps")
	}
}

// BenchmarkFig12_CostVsAvailability regenerates Fig. 12.
func BenchmarkFig12_CostVsAvailability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Fig12(experiments.DefaultCostWorkload(), costmodel.Azure)
		if err != nil {
			b.Fatal(err)
		}
		v := at(b, func() (float64, bool) { s, ok := tab.Series("SimFS(25%) Δr=8h").At("5y"); return s.Median, ok }, "simfs@5y")
		b.ReportMetric(v, "simfs25-dr8h-5y-k$")
	}
}

// BenchmarkFig13_CostVsOverlap regenerates Fig. 13.
func BenchmarkFig13_CostVsOverlap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Fig13(experiments.DefaultCostWorkload(), costmodel.Azure)
		if err != nil {
			b.Fatal(err)
		}
		lo := at(b, func() (float64, bool) { s, ok := tab.Series("SimFS(25%) Δr=8h").At("0"); return s.Median, ok }, "overlap 0")
		hi := at(b, func() (float64, bool) { s, ok := tab.Series("SimFS(25%) Δr=8h").At("100"); return s.Median, ok }, "overlap 100")
		b.ReportMetric(lo, "simfs-overlap0-k$")
		b.ReportMetric(hi, "simfs-overlap100-k$")
	}
}

// BenchmarkFig14_CostVsNumAnalyses regenerates Fig. 14 and reports the
// in-situ/SimFS crossover region endpoints.
func BenchmarkFig14_CostVsNumAnalyses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Fig14(experiments.DefaultCostWorkload(), costmodel.Azure)
		if err != nil {
			b.Fatal(err)
		}
		at5 := at(b, func() (float64, bool) { s, ok := tab.Series("in-situ").At("5"); return s.Median, ok }, "insitu@5")
		at125 := at(b, func() (float64, bool) { s, ok := tab.Series("in-situ").At("125"); return s.Median, ok }, "insitu@125")
		b.ReportMetric(at5, "insitu-5-k$")
		b.ReportMetric(at125, "insitu-125-k$")
	}
}

// BenchmarkFig15a_Heatmap regenerates the cost-effectiveness heatmap.
func BenchmarkFig15a_Heatmap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h, err := experiments.Fig15a(experiments.DefaultCostWorkload())
		if err != nil {
			b.Fatal(err)
		}
		v, ok := h.At("0.15", "2.0")
		if !ok {
			b.Fatal("missing heatmap cell")
		}
		b.ReportMetric(v, "ratio-mid")
	}
}

// BenchmarkFig15b_CostOverSpace regenerates Fig. 15b.
func BenchmarkFig15b_CostOverSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		costTab, _, err := experiments.Fig15bc(experiments.DefaultCostWorkload(), costmodel.Azure)
		if err != nil {
			b.Fatal(err)
		}
		xs := costTab.Series("cache 25%").Xs()
		if len(xs) != 4 {
			b.Fatalf("want 4 Δr points, got %d", len(xs))
		}
	}
}

// BenchmarkFig15c_TimeOverSpace regenerates Fig. 15c.
func BenchmarkFig15c_TimeOverSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, timeTab, err := experiments.Fig15bc(experiments.DefaultCostWorkload(), costmodel.Azure)
		if err != nil {
			b.Fatal(err)
		}
		xs := timeTab.Series("cache 50%").Xs()
		v, ok := timeTab.Series("cache 50%").At(xs[0])
		if !ok {
			b.Fatal("missing cell")
		}
		b.ReportMetric(v.Median, "resim-hours-dr4h")
	}
}

// BenchmarkFig16_CosmoScaling regenerates the COSMO strong-scaling figure
// and reports the forward speedup at smax=8.
func BenchmarkFig16_CosmoScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Fig16()
		if err != nil {
			b.Fatal(err)
		}
		fwd := at(b, func() (float64, bool) { s, ok := tab.Series("Forward").At("8"); return s.Median, ok }, "fwd@8")
		single := at(b, func() (float64, bool) {
			s, ok := tab.Series("Full Forward Resimulation").At("8")
			return s.Median, ok
		}, "single@8")
		b.ReportMetric(single/fwd, "speedup-smax8")
	}
}

// BenchmarkFig17_CosmoLatency regenerates the COSMO restart-latency sweep.
func BenchmarkFig17_CosmoLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tabs, err := experiments.Fig17()
		if err != nil {
			b.Fatal(err)
		}
		if len(tabs) != 3 {
			b.Fatalf("want 3 analysis lengths, got %d", len(tabs))
		}
		simfsT := at(b, func() (float64, bool) { s, ok := tabs[0].Series("SimFS").At("600"); return s.Median, ok }, "simfs@600")
		single := at(b, func() (float64, bool) { s, ok := tabs[0].Series("Tsingle").At("600"); return s.Median, ok }, "tsingle@600")
		b.ReportMetric(simfsT/single, "overhead-m72-a600")
	}
}

// BenchmarkFig18_FlashScaling regenerates the FLASH strong-scaling figure.
func BenchmarkFig18_FlashScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tab, err := experiments.Fig18()
		if err != nil {
			b.Fatal(err)
		}
		fwd := at(b, func() (float64, bool) { s, ok := tab.Series("Forward").At("16"); return s.Median, ok }, "fwd@16")
		single := at(b, func() (float64, bool) {
			s, ok := tab.Series("Full Forward Resimulation").At("16")
			return s.Median, ok
		}, "single@16")
		b.ReportMetric(single/fwd, "speedup-smax16")
	}
}

// BenchmarkFig19_FlashLatency regenerates the FLASH restart-latency sweep.
func BenchmarkFig19_FlashLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tabs, err := experiments.Fig19()
		if err != nil {
			b.Fatal(err)
		}
		if len(tabs) != 3 {
			b.Fatalf("want 3 analysis lengths, got %d", len(tabs))
		}
	}
}

// BenchmarkAblationPrefetchStrategies quantifies the prefetching design
// (none → masking → bandwidth matching).
func BenchmarkAblationPrefetchStrategies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPrefetchStrategies(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationDoubling quantifies the s-doubling ramp-up.
func BenchmarkAblationDoubling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationDoubling(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPinPressure quantifies eviction under pinning.
func BenchmarkAblationPinPressure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationPinPressure(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationEMA quantifies αsim-estimation smoothing under noise.
func BenchmarkAblationEMA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblationEMA(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks of the substrates ------------------------------------

// BenchmarkPolicy measures the per-access cost of each replacement scheme
// on a Zipf-ish reuse pattern with interleaved evictions.
func BenchmarkPolicy(b *testing.B) {
	for _, name := range cache.PolicyNames() {
		b.Run(name, func(b *testing.B) {
			pol, err := cache.NewPolicy(name, 1024)
			if err != nil {
				b.Fatal(err)
			}
			c := cache.New(pol, 1024)
			keys := make([]string, 4096)
			for i := range keys {
				keys[i] = fmt.Sprintf("f%04d", i)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k := keys[(i*i)%len(keys)] // quadratic probe ≈ skewed reuse
				if !c.Touch(k) {
					if _, err := c.Insert(k, 1, i%12+1); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// BenchmarkDESEngine measures raw event throughput.
func BenchmarkDESEngine(b *testing.B) {
	eng := des.NewEngine()
	n := 0
	var reschedule func()
	reschedule = func() {
		n++
		if n < b.N {
			eng.Schedule(time.Microsecond, reschedule)
		}
	}
	eng.Schedule(0, reschedule)
	b.ResetTimer()
	eng.Run(0)
	if n < b.N {
		b.Fatalf("processed %d of %d events", n, b.N)
	}
}

// BenchmarkVirtualizerOpenHit measures the DV's hot open path.
func BenchmarkVirtualizerOpenHit(b *testing.B) {
	ctx := &model.Context{
		Name: "bench", Grid: model.Grid{DeltaD: 1, DeltaR: 4, Timesteps: 4096},
		OutputBytes: 1, Tau: time.Second, Alpha: time.Second,
		DefaultParallelism: 1, MaxParallelism: 1, SMax: 4, NoPrefetch: true,
	}
	ctx.ApplyDefaults()
	eng := des.NewEngine()
	l := &simulator.DESLauncher{Engine: eng}
	v := core.New(eng, l)
	l.Events = v
	if err := v.AddContext(ctx, "DCL", nil); err != nil {
		b.Fatal(err)
	}
	steps := make([]int, ctx.Grid.NumOutputSteps())
	names := make([]string, len(steps))
	for i := range steps {
		steps[i] = i + 1
		names[i] = ctx.Filename(i + 1)
	}
	if err := v.Preload("bench", steps); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		name := names[i%len(names)]
		if _, err := v.Open("c", "bench", name); err != nil {
			b.Fatal(err)
		}
		if err := v.Release("c", "bench", name); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVirtualizerMultiClient measures aggregate open/release
// throughput of concurrent clients spread over a varying number of
// contexts. With the sharded Virtualizer each context is an independent
// lock domain, so aggregate ops/sec grows as the same client population
// spreads over more contexts; contexts=1 is the single-lock baseline.
// The reported lock-contended metric shows the contention collapsing.
//
// The client fan-out rides experiments.RunCells — the same worker pool
// the figure runners use — with one cell per client doing b.N operations,
// so the stress harness and the experiment harness share one machinery.
func BenchmarkVirtualizerMultiClient(b *testing.B) {
	const clients = 8
	for _, nctx := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("contexts=%d", nctx), func(b *testing.B) {
			launcher := &simulator.RealTimeLauncher{
				Write: func(*model.Context, int) error { return nil },
			}
			v := core.New(des.NewWallClock(), launcher)
			launcher.Events = v
			names := make([]string, nctx)
			files := make([][]string, nctx)
			for i := 0; i < nctx; i++ {
				ctx := &model.Context{
					Name:        fmt.Sprintf("shard%d", i),
					Grid:        model.Grid{DeltaD: 1, DeltaR: 4, Timesteps: 4096},
					OutputBytes: 1, Tau: time.Second, Alpha: time.Second,
					DefaultParallelism: 1, MaxParallelism: 1, SMax: 4, NoPrefetch: true,
				}
				ctx.ApplyDefaults()
				if err := v.AddContext(ctx, "DCL", nil); err != nil {
					b.Fatal(err)
				}
				names[i] = ctx.Name
				steps := make([]int, ctx.Grid.NumOutputSteps())
				files[i] = make([]string, len(steps))
				for s := range steps {
					steps[s] = s + 1
					files[i][s] = ctx.Filename(s + 1)
				}
				if err := v.Preload(ctx.Name, steps); err != nil {
					b.Fatal(err)
				}
			}
			// b.N total operations split across the client cells, so the
			// framework ns/op stays per-operation (benchstat-comparable
			// with the pre-RunCells version of this bench).
			per := (b.N + clients - 1) / clients
			b.ResetTimer()
			if _, err := experiments.RunCells(clients, clients, func(c int) (struct{}, error) {
				me := c % nctx
				name, fs := names[me], files[me]
				cli := fmt.Sprintf("cli%d", c)
				for i := 0; i < per; i++ {
					f := fs[i%len(fs)]
					if _, err := v.Open(cli, name, f); err != nil {
						return struct{}{}, err
					}
					if err := v.Release(cli, name, f); err != nil {
						return struct{}{}, err
					}
				}
				return struct{}{}, nil
			}); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			ls := v.TotalLockStats()
			b.ReportMetric(float64(clients)*float64(per)/b.Elapsed().Seconds(), "ops/sec")
			if ls.Acquisitions > 0 {
				b.ReportMetric(100*float64(ls.Contended)/float64(ls.Acquisitions), "%lock-contended")
			}
		})
	}
}

// BenchmarkServerMultiClientTCP is the daemon-side stress bench on the
// same worker pool: concurrent DVLib clients, each on its own TCP
// connection, hammering warm open/close round trips against one daemon.
// One RunCells cell per client keeps the fan-out deterministic and
// shared with the experiment harness. The sub-benchmarks compare the
// JSON v2 baseline against the binary v3 codec, with and without
// client-side request batching (a window of pipelined open/release
// pairs per flush).
func BenchmarkServerMultiClientTCP(b *testing.B) {
	b.Run("codec=json", func(b *testing.B) {
		benchServerTCP(b, []dvlib.DialOption{dvlib.WithJSONCodec()}, 0)
	})
	b.Run("codec=binary", func(b *testing.B) {
		benchServerTCP(b, nil, 0)
	})
	b.Run("codec=binary+batch", func(b *testing.B) {
		benchServerTCP(b, nil, 16)
	})
}

// benchServerTCP measures warm open/close round trips per codec. window
// 0 runs strictly sequential calls; window > 0 pipelines that many
// open/release pairs per batch, so all their request frames leave in
// one write. Allocation numbers cover the whole process — both sides of
// the protocol stack.
func benchServerTCP(b *testing.B, opts []dvlib.DialOption, window int) {
	const clients = 4
	ctx := &model.Context{
		Name: "wire", Grid: model.Grid{DeltaD: 1, DeltaR: 8, Timesteps: 1024},
		OutputBytes: 64, RestartBytes: 64,
		Tau: time.Millisecond, Alpha: time.Millisecond,
		DefaultParallelism: 1, MaxParallelism: 1, SMax: 4, NoPrefetch: true,
	}
	st, err := server.NewStack(b.TempDir(), 1, "DCL", ctx)
	if err != nil {
		b.Fatal(err)
	}
	if err := st.Server.Listen("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	go st.Server.Serve()
	defer func() {
		st.Close()
		st.Launcher.Wait()
	}()
	addr := st.Server.Addr()

	// Warm one file per client so the measured loop is pure hit traffic.
	conns := make([]*dvlib.Context, clients)
	warm := make([]string, clients)
	for c := 0; c < clients; c++ {
		cli, err := dvlib.Dial(addr, fmt.Sprintf("bench%d", c), opts...)
		if err != nil {
			b.Fatal(err)
		}
		defer cli.Close()
		actx, err := cli.Init("wire")
		if err != nil {
			b.Fatal(err)
		}
		file := actx.Filename(c*8 + 1)
		if _, err := actx.Open(file); err != nil {
			b.Fatal(err)
		}
		if err := actx.WaitAvailable(file); err != nil {
			b.Fatal(err)
		}
		if err := actx.Close(file); err != nil {
			b.Fatal(err)
		}
		conns[c], warm[c] = actx, file
	}
	// b.N total round trips split across the client cells (ns/op stays
	// per round trip).
	per := (b.N + clients - 1) / clients
	b.ReportAllocs()
	b.ResetTimer()
	if _, err := experiments.RunCells(clients, clients, func(c int) (struct{}, error) {
		actx, file := conns[c], warm[c]
		if window <= 0 {
			for i := 0; i < per; i++ {
				if _, err := actx.Open(file); err != nil {
					return struct{}{}, err
				}
				if err := actx.Close(file); err != nil {
					return struct{}{}, err
				}
			}
			return struct{}{}, nil
		}
		opens := make([]*dvlib.OpenCall, 0, window)
		rels := make([]*dvlib.ReleaseCall, 0, window)
		for done := 0; done < per; {
			n := window
			if rest := per - done; rest < n {
				n = rest
			}
			opens, rels = opens[:0], rels[:0]
			for i := 0; i < n; i++ {
				oc, err := actx.OpenAsync(file)
				if err != nil {
					return struct{}{}, err
				}
				rc, err := actx.ReleaseAsync(file)
				if err != nil {
					return struct{}{}, err
				}
				opens, rels = append(opens, oc), append(rels, rc)
			}
			for i := 0; i < n; i++ {
				if _, err := opens[i].Wait(); err != nil {
					return struct{}{}, err
				}
				if err := rels[i].Wait(); err != nil {
					return struct{}{}, err
				}
			}
			done += n
		}
		return struct{}{}, nil
	}); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(clients)*float64(per)/b.Elapsed().Seconds(), "roundtrips/sec")
}

// BenchmarkFederationTCP is the scale-out figure: aggregate roundtrips
// per second of a contended multi-client workload against 1, 2 and 4
// daemons behind the consistent-hash router, plus the direct-dial
// baseline that prices the router hop at daemons=1.
//
// The workload is deliberately miss-heavy: every open demands a fresh
// re-simulation (forward sweep over never-produced steps), and each
// daemon runs a 2-node scheduler budget, so aggregate throughput is
// bounded by simulation slots — the resource federation multiplies.
// Re-simulations are wall-clock launcher sleeps (Tau/Alpha scaled to
// ~2 ms), not CPU, so the figure measures scale-out, not core count.
func BenchmarkFederationTCP(b *testing.B) {
	b.Run("daemons=1/mode=direct", func(b *testing.B) { benchFederationTCP(b, 1, false) })
	b.Run("daemons=1/mode=router", func(b *testing.B) { benchFederationTCP(b, 1, true) })
	b.Run("daemons=2/mode=router", func(b *testing.B) { benchFederationTCP(b, 2, true) })
	b.Run("daemons=4/mode=router", func(b *testing.B) { benchFederationTCP(b, 4, true) })
}

func benchFederationTCP(b *testing.B, daemons int, viaRouter bool) {
	const (
		clients   = 8
		timeScale = 50 // Tau/Alpha 100ms → 2ms wall-clock per sim phase
	)
	newCtx := func(name string) *model.Context {
		return &model.Context{
			Name:        name,
			Grid:        model.Grid{DeltaD: 1, DeltaR: 1, Timesteps: 1024},
			OutputBytes: 64, RestartBytes: 64,
			MaxCacheBytes:      32 * 64, // wrap-around sweeps stay misses
			Tau:                100 * time.Millisecond,
			Alpha:              100 * time.Millisecond,
			DefaultParallelism: 1, MaxParallelism: 1, SMax: 1, NoPrefetch: true,
		}
	}
	stacks := make([]*server.Stack, daemons)
	addrs := make([]string, daemons)
	for d := range stacks {
		st, err := server.NewScheduledStack(b.TempDir(), timeScale, "DCL",
			sched.Config{TotalNodes: 2}, newCtx(fmt.Sprintf("fedseed%d", d)))
		if err != nil {
			b.Fatal(err)
		}
		if err := st.Server.Listen("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		go st.Server.Serve()
		defer func(st *server.Stack) {
			st.Close()
			st.Launcher.Wait()
		}(st)
		stacks[d], addrs[d] = st, st.Server.Addr()
	}

	ring := fed.NewRing(0, addrs...)
	byAddr := map[string]int{}
	for d, a := range addrs {
		byAddr[a] = d
	}
	// One context per client, registered on its ring owner — the same
	// placement the router will compute per request. Candidate names are
	// scanned until each daemon holds an equal share, so the scaling
	// figure measures daemon capacity rather than the small-sample luck
	// of 8 specific names on the ring (real deployments hold many
	// contexts, where the ring's balance averages out).
	quota := clients / daemons
	ctxNames := make([]string, 0, clients)
	held := make([]int, daemons)
	for i := 0; len(ctxNames) < clients; i++ {
		ctx := newCtx(fmt.Sprintf("fedctx%d", i))
		d := byAddr[ring.Owner(ctx.Name)]
		if held[d] >= quota {
			continue
		}
		held[d]++
		ctxNames = append(ctxNames, ctx.Name)
		if err := stacks[d].RegisterContext(ctx, "DCL", true); err != nil {
			b.Fatal(err)
		}
	}

	target := addrs[0]
	if viaRouter {
		r := fed.NewRouter(addrs, 0, nil)
		if err := r.Listen("127.0.0.1:0"); err != nil {
			b.Fatal(err)
		}
		go r.Serve()
		defer r.Close()
		target = r.Addr()
	}

	conns := make([]*dvlib.Context, clients)
	for c := range conns {
		cli, err := dvlib.Dial(target, fmt.Sprintf("fedbench%d", c))
		if err != nil {
			b.Fatal(err)
		}
		defer cli.Close()
		actx, err := cli.Init(ctxNames[c])
		if err != nil {
			b.Fatal(err)
		}
		conns[c] = actx
	}

	// b.N total demand roundtrips split across the clients (ns/op stays
	// per roundtrip); each client sweeps its own context forward, so
	// every open demands a re-simulation.
	per := (b.N + clients - 1) / clients
	b.ResetTimer()
	if _, err := experiments.RunCells(clients, clients, func(c int) (struct{}, error) {
		actx := conns[c]
		for i := 0; i < per; i++ {
			file := actx.Filename(i%1024 + 1)
			res, err := actx.Open(file)
			if err != nil {
				return struct{}{}, err
			}
			if !res.Available {
				if err := actx.WaitAvailable(file); err != nil {
					return struct{}{}, err
				}
			}
			if err := actx.Close(file); err != nil {
				return struct{}{}, err
			}
		}
		return struct{}{}, nil
	}); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	b.ReportMetric(float64(clients)*float64(per)/b.Elapsed().Seconds(), "roundtrips/sec")
}

// BenchmarkReplayECMWF measures trace-replay throughput on the ECMWF-like
// workload (the inner loop of the caching study and cost models).
func BenchmarkReplayECMWF(b *testing.B) {
	ctx := simulator.CacheEval()
	tr, err := trace.Generate(trace.ECMWF, trace.Config{
		NumSteps: ctx.Grid.NumOutputSteps(), NumAnalyses: 50,
		MinLen: 100, MaxLen: 400, Stride: 1, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	// The rep loops reuse one ReplayState across replays (ReplayInto), so
	// the policy/cache construction is out of the measured hot path.
	st, err := experiments.NewReplayState(ctx, "DCL")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ReplayInto(st, ctx, tr); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr)), "accesses/op")
}

// TestReplayECMWFAllocFree pins BenchmarkReplayECMWF's allocs/op at
// zero: with the worker-pinned ReplayState (policy-node arena in every
// replacement scheme) warmed by one replay, further replays of the same
// trace allocate nothing. Every policy is pinned — a regression in any
// scheme's node recycling fails here before it shows up as MB/op in the
// benchmark. Trace regeneration is pinned separately: the worker-pinned
// rng and buffer leave only the ECMWF pattern's rank permutation and
// Zipf sampler (2 allocations).
func TestReplayECMWFAllocFree(t *testing.T) {
	ctx := simulator.CacheEval()
	cfg := trace.Config{
		NumSteps: ctx.Grid.NumOutputSteps(), NumAnalyses: 50,
		MinLen: 100, MaxLen: 400, Stride: 1, Seed: 1,
	}
	for _, policy := range cache.PolicyNames() {
		st, err := experiments.NewReplayState(ctx, policy)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := st.GenerateTrace(trace.ECMWF, cfg)
		if err != nil {
			t.Fatal(err)
		}
		replay := func() {
			if _, err := experiments.ReplayInto(st, ctx, tr); err != nil {
				t.Fatal(err)
			}
		}
		replay() // warm the arena and the cache's map storage
		if allocs := testing.AllocsPerRun(3, replay); allocs > 0 {
			t.Errorf("%s: %v allocs per warmed replay, want 0", policy, allocs)
		}
	}
	// Regeneration on a warmed state: only the ECMWF pattern's own
	// permutation + Zipf sampler remain.
	st, err := experiments.NewReplayState(ctx, "DCL")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.GenerateTrace(trace.ECMWF, cfg); err != nil {
		t.Fatal(err)
	}
	regen := func() {
		if _, err := st.GenerateTrace(trace.ECMWF, cfg); err != nil {
			t.Fatal(err)
		}
	}
	if allocs := testing.AllocsPerRun(3, regen); allocs > 2 {
		t.Errorf("trace regeneration: %v allocs, want ≤ 2 (perm + zipf)", allocs)
	}
}

// BenchmarkProtocolRoundTrip measures one open+release cycle over a real
// TCP loopback connection to the daemon.
func BenchmarkProtocolRoundTrip(b *testing.B) {
	ctx := &model.Context{
		Name: "wire", Grid: model.Grid{DeltaD: 1, DeltaR: 8, Timesteps: 1024},
		OutputBytes: 64, RestartBytes: 64,
		Tau: time.Millisecond, Alpha: time.Millisecond,
		DefaultParallelism: 1, MaxParallelism: 1, SMax: 4, NoPrefetch: true,
	}
	st, err := server.NewStack(b.TempDir(), 1, "DCL", ctx)
	if err != nil {
		b.Fatal(err)
	}
	if err := st.Server.Listen("127.0.0.1:0"); err != nil {
		b.Fatal(err)
	}
	go st.Server.Serve()
	defer func() {
		st.Close()
		st.Launcher.Wait()
	}()
	c, err := dvlib.Dial(st.Server.Addr(), "bench")
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	actx, err := c.Init("wire")
	if err != nil {
		b.Fatal(err)
	}
	// Warm one file so the loop measures pure hit round trips.
	file := actx.Filename(1)
	if _, err := actx.Open(file); err != nil {
		b.Fatal(err)
	}
	if err := actx.WaitAvailable(file); err != nil {
		b.Fatal(err)
	}
	if err := actx.Close(file); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := actx.Open(file); err != nil {
			b.Fatal(err)
		}
		if err := actx.Close(file); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchSamplers measures queueing-delay generation.
func BenchmarkBatchSamplers(b *testing.B) {
	samplers := map[string]batch.Sampler{
		"constant":    batch.Constant(time.Second),
		"uniform":     batch.NewUniform(0, time.Second, 1),
		"exponential": batch.NewExponential(time.Second, 1),
	}
	for name, s := range samplers {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = s.Next()
			}
		})
	}
}

// BenchmarkAutoscalePhases is the closed-loop control scoreboard (make
// bench-autoscale → BENCH_autoscale.json): the phase-changing ablation
// workload under the best static configuration vs the controller rows.
// The headline metrics are the figure's cells — cumulative demand
// queue-wait, class-neutral client blocked time, and median completion —
// reported per iteration; ns/op is just the DES replay cost. The
// controller+join row's demand-wait metric is NOT comparable to the
// others (promotion moves prefetch-class waits into the demand ledger);
// judge it on blocked-s and median-completion-s.
func BenchmarkAutoscalePhases(b *testing.B) {
	for _, m := range []struct{ sub, row string }{
		{"mode=static-best", "static lru+preempt"},
		{"mode=controller", "controller"},
		{"mode=controller+join", "controller+join"},
	} {
		b.Run(m.sub, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cell, err := experiments.RunAutoscaleMode(1, m.row)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(cell.DemandWait.Seconds(), "demand-wait-s")
				b.ReportMetric(cell.Blocked.Seconds(), "blocked-s")
				b.ReportMetric(cell.Median, "median-completion-s")
				b.ReportMetric(float64(cell.Decisions), "decisions")
			}
		})
	}
}
