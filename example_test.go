package simfs_test

import (
	"fmt"

	"simfs"
)

// The grid algebra answers the central question of the virtualization:
// which restart step must a re-simulation boot from to reproduce a given
// output step, and how far must it run?
func ExampleGrid() {
	// Output every 4 timesteps, restart every 8 (the paper's Fig. 3).
	g := simfs.Grid{DeltaD: 4, DeltaR: 8, Timesteps: 16}
	fmt.Println("output steps:", g.NumOutputSteps())
	fmt.Println("restart for d3:", g.RestartBefore(3))
	iv, _ := g.ResimInterval(3)
	first, last, _ := g.OutputsIn(iv)
	fmt.Printf("re-simulation for d3: timesteps (%d,%d], producing d%d..d%d\n",
		iv.Start, iv.End, first, last)
	fmt.Println("miss cost of d3:", g.MissCost(3), "output steps")
	// Output:
	// output steps: 4
	// restart for d3: 8
	// re-simulation for d3: timesteps (8,16], producing d3..d4
	// miss cost of d3: 1 output steps
}

// MeanVar is the analysis kernel the paper's evaluation runs over COSMO
// and FLASH output steps.
func ExampleMeanVar() {
	mean, variance := simfs.MeanVar([]float64{1, 2, 3, 4})
	fmt.Printf("mean=%.2f variance=%.2f\n", mean, variance)
	// Output:
	// mean=2.50 variance=1.25
}

// Contexts carry the whole simulator configuration; defaults fill the
// optional knobs.
func ExampleContext() {
	ctx := simfs.CosmoScaling()
	fmt.Println("name:", ctx.Name)
	fmt.Println("outputs per restart interval:", ctx.Grid.OutputsPerRestart())
	fmt.Println("file for step 7:", ctx.Filename(7))
	step, _ := ctx.Key(ctx.Filename(7))
	fmt.Println("key round-trip:", step)
	// Output:
	// name: cosmo
	// outputs per restart interval: 12
	// file for step 7: cosmo_out_00000007.nc
	// key round-trip: 7
}
