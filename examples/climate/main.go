// Climate: a COSMO-like forward-in-time analysis over virtualized climate
// data (the workload of the paper's Fig. 16). A sequential analysis reads
// 36 consecutive output steps through the netCDF binding, computing mean
// and variance of a field per step, while the DV's prefetch agent detects
// the forward trajectory, masks restart latencies and launches parallel
// re-simulations to match the analysis bandwidth.
//
//	go run ./examples/climate
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"simfs"
)

func main() {
	dir, err := os.MkdirTemp("", "simfs-climate-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// The published COSMO configuration (Δd = 5 one-minute timesteps,
	// Δr = 60, τsim = 3 s, αsim = 13 s), scaled down in file size and run
	// 1000× faster so the example completes in a couple of seconds.
	ctx := simfs.CosmoScaling()
	ctx.OutputBytes = 8192
	ctx.RestartBytes = 16384
	ctx.MaxCacheBytes = 0 // unbounded cache: the example shows prefetching

	daemon, err := simfs.NewDaemon(dir, 1000, "DCL", ctx)
	if err != nil {
		log.Fatal(err)
	}
	if err := daemon.RunInitialSimulation(ctx.Name); err != nil {
		log.Fatal(err)
	}
	if err := daemon.Server.Listen("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	go daemon.Server.Serve()
	defer func() {
		daemon.Close()
		daemon.Launcher.Wait()
	}()

	client, err := simfs.Dial(daemon.Server.Addr(), "climate-analysis")
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	actx, err := client.Init(ctx.Name)
	if err != nil {
		log.Fatal(err)
	}

	const m = 36 // first 3 hours of simulated data
	fmt.Printf("forward analysis of %d output steps (virtualized, nothing on disk yet)\n", m)
	start := time.Now()
	for step := 1; step <= m; step++ {
		file := actx.Filename(step)
		nc, err := simfs.NCOpen(actx, file)
		if err != nil {
			log.Fatalf("step %d: %v", step, err)
		}
		field, err := nc.VaraGetDouble(0, int(ctx.OutputBytes)/8)
		if err != nil {
			log.Fatalf("step %d: %v", step, err)
		}
		mean, variance := simfs.MeanVar(field)
		if err := nc.Close(); err != nil {
			log.Fatal(err)
		}
		if step%12 == 0 {
			fmt.Printf("  step %3d: mean=%+.3e var=%.3e (elapsed %v)\n",
				step, mean, variance, time.Since(start).Round(time.Millisecond))
		}
	}
	elapsed := time.Since(start)

	stats, _ := actx.Stats()
	fmt.Printf("\ncompleted %d steps in %v\n", m, elapsed.Round(time.Millisecond))
	fmt.Printf("re-simulations: %d demand + %d prefetched (dropped %d at smax), %d steps produced\n",
		stats.DemandRestarts, stats.PrefetchLaunches, stats.DroppedPrefetch, stats.StepsProduced)
	single := time.Duration(m)*ctx.Tau + ctx.Alpha
	fmt.Printf("a single full re-simulation would take %v (scaled: %v); prefetching hid the restart latencies\n",
		single, single/1000)
}
