// Quickstart: bring up an in-process SimFS daemon, virtualize a small
// simulation, and read output steps that do not exist on disk — they are
// re-simulated on demand, transparently.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"simfs"
)

func main() {
	dir, err := os.MkdirTemp("", "simfs-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A small virtualized simulation: 64 output steps, restart files every
	// 8 steps, 4 KiB per output file. The cache holds only 16 files —
	// a quarter of the data — so most of the dataset exists only
	// virtually. Timings are the published COSMO ones scaled 1000×.
	ctx := &simfs.Context{
		Name:               "quick",
		Grid:               simfs.Grid{DeltaD: 1, DeltaR: 8, Timesteps: 64},
		OutputBytes:        4096,
		RestartBytes:       8192,
		MaxCacheBytes:      16 * 4096,
		Tau:                3 * time.Second,  // τsim: 3 s per output step
		Alpha:              13 * time.Second, // αsim: 13 s restart latency
		DefaultParallelism: 1,
		MaxParallelism:     1,
		SMax:               8,
	}

	daemon, err := simfs.NewDaemon(dir, 1000, "DCL", ctx) // 1000× faster
	if err != nil {
		log.Fatal(err)
	}
	if err := daemon.RunInitialSimulation("quick"); err != nil {
		log.Fatal(err)
	}
	if err := daemon.Server.Listen("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	go daemon.Server.Serve()
	defer func() {
		daemon.Close()
		daemon.Launcher.Wait()
	}()
	fmt.Printf("daemon up on %s; storage area %s\n", daemon.Server.Addr(), dir)

	// Connect like an analysis application would.
	client, err := simfs.Dial(daemon.Server.Addr(), "quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	actx, err := client.Init("quick")
	if err != nil {
		log.Fatal(err)
	}

	// Read output step 42. It was never stored — SimFS restarts the
	// simulation from the restart file at step 40 and produces it.
	file := actx.Filename(42)
	res, err := actx.Open(file)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("open %s: available=%v estimated wait=%v\n", file, res.Available, res.EstWait)

	start := time.Now()
	content, err := actx.Read(file) // blocks until re-simulated
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read %d bytes after %v (re-simulated on demand)\n", len(content), time.Since(start).Round(time.Millisecond))

	// Verify bitwise reproducibility against the original simulation.
	same, err := actx.Bitrep(file)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bitwise identical to the original run: %v\n", same)
	if err := actx.Close(file); err != nil {
		log.Fatal(err)
	}

	// A second read is a cache hit: instant.
	start = time.Now()
	if _, err := actx.Open(file); err != nil {
		log.Fatal(err)
	}
	if _, err := actx.Read(file); err != nil {
		log.Fatal(err)
	}
	actx.Close(file)
	fmt.Printf("second read served from cache in %v\n", time.Since(start).Round(time.Millisecond))

	stats, _ := actx.Stats()
	fmt.Printf("DV stats: opens=%d hits=%d misses=%d restarts=%d steps-produced=%d\n",
		stats.Opens, stats.Hits, stats.Misses, stats.Restarts, stats.StepsProduced)
}
