// Backward: root-cause analysis over virtualized FLASH blast-wave data
// (the backward-in-time workload of the paper's Sec. IV-B2 and Fig. 18).
// The analysis walks backward from an "interesting event" toward its
// cause; since simulations only run forward, SimFS re-simulates whole
// restart intervals and the backward prefetcher stacks parallel
// re-simulations below the analysis frontier.
//
//	go run ./examples/backward
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"simfs"
)

func main() {
	dir, err := os.MkdirTemp("", "simfs-backward-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// The published FLASH Sedov configuration (Δd = 1, Δr = 20,
	// τsim = 14 s, αsim = 7 s), scaled for a quick run.
	ctx := simfs.Flash()
	ctx.OutputBytes = 8192
	ctx.RestartBytes = 16384
	ctx.MaxCacheBytes = 0

	daemon, err := simfs.NewDaemon(dir, 2000, "DCL", ctx)
	if err != nil {
		log.Fatal(err)
	}
	if err := daemon.RunInitialSimulation(ctx.Name); err != nil {
		log.Fatal(err)
	}
	if err := daemon.Server.Listen("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	go daemon.Server.Serve()
	defer func() {
		daemon.Close()
		daemon.Launcher.Wait()
	}()

	client, err := simfs.Dial(daemon.Server.Addr(), "root-cause")
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	actx, err := client.Init(ctx.Name)
	if err != nil {
		log.Fatal(err)
	}

	const eventStep = 60 // the "interesting event" in the blast wave
	const m = 40         // walk 40 steps back toward the cause
	fmt.Printf("root-cause analysis: walking backward from output step %d\n", eventStep)
	start := time.Now()
	for i := 0; i < m; i++ {
		step := eventStep - i
		file := actx.Filename(step)
		// ADIOS-style deferred reads (Table I).
		ad, err := simfs.AdiosOpen(actx, file)
		if err != nil {
			log.Fatalf("step %d: %v", step, err)
		}
		velocity := make([]float64, 64)
		if err := ad.ScheduleRead(0, 64, velocity); err != nil {
			log.Fatal(err)
		}
		if err := ad.PerformReads(); err != nil {
			log.Fatalf("step %d: %v", step, err)
		}
		mean, variance := simfs.MeanVar(velocity)
		if err := ad.Close(); err != nil {
			log.Fatal(err)
		}
		if i%10 == 0 {
			fmt.Printf("  step %3d: velocity mean=%+.3e var=%.3e (elapsed %v)\n",
				step, mean, variance, time.Since(start).Round(time.Millisecond))
		}
	}
	elapsed := time.Since(start)

	stats, _ := actx.Stats()
	fmt.Printf("\ncompleted %d backward steps in %v\n", m, elapsed.Round(time.Millisecond))
	fmt.Printf("re-simulations: %d demand + %d prefetched; %d output steps produced\n",
		stats.DemandRestarts, stats.PrefetchLaunches, stats.StepsProduced)
	fmt.Println("note the first access pays a full restart interval (the simulation only runs forward);")
	fmt.Println("after the backward pattern is detected, intervals below the frontier are prefetched in parallel")
}
