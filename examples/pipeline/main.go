// Pipeline: virtualized simulation pipelines (paper Sec. III-E). A
// coarse-grain climate simulation feeds a fine-grain one; both outputs are
// virtualized. When the analysis reads missing fine-grain data, SimFS
// must first re-simulate the coarse-grain input the fine-grain restart
// needs — the misses cascade up the pipeline automatically.
//
//	go run ./examples/pipeline
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"simfs"
)

func main() {
	dir, err := os.MkdirTemp("", "simfs-pipeline-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Stage 1: coarse-grain simulation — big timesteps, cheap.
	coarse := &simfs.Context{
		Name:               "coarse",
		Grid:               simfs.Grid{DeltaD: 4, DeltaR: 16, Timesteps: 256},
		OutputBytes:        2048,
		RestartBytes:       4096,
		MaxCacheBytes:      0,
		Tau:                2 * time.Second,
		Alpha:              5 * time.Second,
		DefaultParallelism: 1,
		MaxParallelism:     1,
		SMax:               4,
		NoPrefetch:         true,
	}
	// Stage 2: fine-grain simulation over the same timeline — its
	// re-simulations read the coarse output as boundary conditions.
	fine := &simfs.Context{
		Name:               "fine",
		Grid:               simfs.Grid{DeltaD: 1, DeltaR: 8, Timesteps: 256},
		OutputBytes:        4096,
		RestartBytes:       8192,
		MaxCacheBytes:      0,
		Tau:                time.Second,
		Alpha:              3 * time.Second,
		DefaultParallelism: 1,
		MaxParallelism:     1,
		SMax:               4,
		Upstream:           "coarse", // ← the pipeline edge
		NoPrefetch:         true,
	}

	daemon, err := simfs.NewDaemon(dir, 1000, "DCL", coarse, fine)
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"coarse", "fine"} {
		if err := daemon.RunInitialSimulation(name); err != nil {
			log.Fatal(err)
		}
	}
	if err := daemon.Server.Listen("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	go daemon.Server.Serve()
	defer func() {
		daemon.Close()
		daemon.Launcher.Wait()
	}()

	client, err := simfs.Dial(daemon.Server.Addr(), "pipeline-analysis")
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	fctx, err := client.Init("fine")
	if err != nil {
		log.Fatal(err)
	}
	cctx, err := client.Init("coarse")
	if err != nil {
		log.Fatal(err)
	}

	// Read a fine-grain step in the middle of the timeline. Nothing is on
	// disk: the fine re-simulation needs coarse input covering its
	// restart interval, so a coarse re-simulation runs first.
	file := fctx.Filename(100)
	fmt.Printf("reading fine-grain step 100 (%s) — both stages are virtualized\n", file)
	start := time.Now()
	if _, err := fctx.Open(file); err != nil {
		log.Fatal(err)
	}
	content, err := fctx.Read(file)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("got %d bytes after %v\n", len(content), time.Since(start).Round(time.Millisecond))
	fctx.Close(file)

	fstats, _ := fctx.Stats()
	cstats, _ := cctx.Stats()
	fmt.Printf("\nfine stage:   %d restarts, %d steps produced\n", fstats.Restarts, fstats.StepsProduced)
	fmt.Printf("coarse stage: %d restarts, %d steps produced (triggered by the fine-grain miss)\n",
		cstats.Restarts, cstats.StepsProduced)
	if cstats.Restarts == 0 {
		fmt.Println("unexpected: the coarse stage was never re-simulated")
		os.Exit(1)
	}
	fmt.Println("\nthe miss cascaded up the pipeline: fine-grain re-simulation waited for coarse-grain input")
}
