// Command simfs-bench regenerates the paper's evaluation: every table and
// figure of Secs. III-D, V and VI, printed as the rows/series the paper
// plots. See DESIGN.md for the experiment index and EXPERIMENTS.md for the
// paper-vs-measured record.
//
// Usage:
//
//	simfs-bench -fig all
//	simfs-bench -fig 5 -reps 100        # the paper's full repetition count
//	simfs-bench -fig 16
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"simfs/internal/costmodel"
	"simfs/internal/experiments"
	"simfs/internal/metrics"
	"simfs/internal/simulator"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 1|5|12|13|14|15a|15b|15c|16|17|18|19|ablations|sched|preempt|autoscale|multi|all")
	reps := flag.Int("reps", 20, "repetitions for the Fig. 5 caching study (paper: 100)")
	seed := flag.Int64("seed", 1, "workload generation seed")
	jobs := flag.Int("j", 0, "experiment worker pool size (0 = GOMAXPROCS); any value prints identical tables")
	flag.Parse()
	experiments.SetWorkers(*jobs)

	runs := map[string]func() error{
		"1":   func() error { return renderTable(fig01()) },
		"5":   func() error { return fig05(*reps, *seed) },
		"12":  func() error { return renderTable(fig12()) },
		"13":  func() error { return renderTable(fig13()) },
		"14":  func() error { return renderTable(fig14()) },
		"15a": fig15a,
		"15b": func() error { return fig15bc(true) },
		"15c": func() error { return fig15bc(false) },
		"16":  func() error { return renderTable(experiments.Fig16()) },
		"17":  func() error { return renderTables(experiments.Fig17()) },
		"18":  func() error { return renderTable(experiments.Fig18()) },
		"19":  func() error { return renderTables(experiments.Fig19()) },
		"ablations": func() error {
			if err := renderTable(experiments.AblationPrefetchStrategies()); err != nil {
				return err
			}
			fmt.Println()
			if err := renderTable(experiments.AblationDoubling()); err != nil {
				return err
			}
			fmt.Println()
			if err := renderTable(experiments.AblationPinPressure()); err != nil {
				return err
			}
			fmt.Println()
			return renderTable(experiments.AblationEMA())
		},
		"sched":     func() error { return renderTable(experiments.AblationScheduler(*seed)) },
		"preempt":   func() error { return renderTable(experiments.AblationPreempt(*seed)) },
		"autoscale": func() error { return renderTable(experiments.AblationAutoscale(*seed)) },
		"multi": func() error {
			ctx := simulator.CosmoScaling()
			ctx.MaxCacheBytes = 128 * ctx.OutputBytes
			return renderTable(experiments.MultiAnalysisSweep(
				ctx, []int{1, 2, 4, 8}, 48, 100*time.Millisecond, *seed))
		},
	}
	order := []string{"1", "5", "12", "13", "14", "15a", "15b", "15c", "16", "17", "18", "19", "ablations", "sched", "preempt", "autoscale", "multi"}

	if *fig == "all" {
		for _, f := range order {
			if err := runs[f](); err != nil {
				log.Fatalf("simfs-bench: figure %s: %v", f, err)
			}
			fmt.Println()
		}
		return
	}
	run, ok := runs[*fig]
	if !ok {
		log.Fatalf("simfs-bench: unknown figure %q", *fig)
	}
	if err := run(); err != nil {
		log.Fatalf("simfs-bench: %v", err)
	}
}

func workload() experiments.CostWorkload { return experiments.DefaultCostWorkload() }

func fig01() (*metrics.Table, error) { return experiments.Fig01(workload(), costmodel.Azure) }
func fig12() (*metrics.Table, error) { return experiments.Fig12(workload(), costmodel.Azure) }
func fig13() (*metrics.Table, error) { return experiments.Fig13(workload(), costmodel.Azure) }
func fig14() (*metrics.Table, error) { return experiments.Fig14(workload(), costmodel.Azure) }

func fig05(reps int, seed int64) error {
	cfg := experiments.DefaultFig05()
	cfg.Reps = reps
	cfg.Seed = seed
	steps, restarts, err := experiments.Fig05(cfg)
	if err != nil {
		return err
	}
	if err := steps.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	return restarts.Render(os.Stdout)
}

func fig15a() error {
	h, err := experiments.Fig15a(workload())
	if err != nil {
		return err
	}
	if err := h.Render(os.Stdout); err != nil {
		return err
	}
	// The two real-world datapoints the paper marks on the heatmap.
	fmt.Printf("\nreference points: Azure (cs=%.2f cc=%.2f), Piz Daint (cs=%.2f cc=%.2f)\n",
		costmodel.Azure.StoragePerGiBMonth, costmodel.Azure.ComputePerNodeHour,
		costmodel.PizDaint.StoragePerGiBMonth, costmodel.PizDaint.ComputePerNodeHour)
	return nil
}

func fig15bc(cost bool) error {
	costTab, timeTab, err := experiments.Fig15bc(workload(), costmodel.Azure)
	if err != nil {
		return err
	}
	if cost {
		return costTab.Render(os.Stdout)
	}
	return timeTab.Render(os.Stdout)
}

func renderTable(tab *metrics.Table, err error) error {
	if err != nil {
		return err
	}
	return tab.Render(os.Stdout)
}

func renderTables(tabs []*metrics.Table, err error) error {
	if err != nil {
		return err
	}
	for _, tab := range tabs {
		if err := tab.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}
