// Command bench2json condenses `go test -bench` output into a committed
// JSON scoreboard. It reads the benchmark text from stdin, takes the
// median of each metric across -count repetitions, and emits one JSON
// object per sub-benchmark plus any number of base-vs-target comparisons
// (speedup, allocation ratio, throughput ratio). The Makefile's
// bench-server and bench-fed targets drive it to regenerate
// BENCH_server.json and BENCH_federation.json.
//
// Usage:
//
//	go test -run '^$' -bench BenchmarkServerMultiClientTCP -count 5 . |
//	    bench2json -bench BenchmarkServerMultiClientTCP \
//	        -compare 'codec=binary+batch vs codec=json' -out BENCH_server.json
//
// -compare is repeatable; each occurrence is "target vs base" naming two
// sub-benchmarks from the input.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// result is the aggregated (median) metric set of one sub-benchmark.
type result struct {
	Runs            int                `json:"runs"`
	NsPerOp         float64            `json:"ns_per_op"`
	AllocsPerOp     float64            `json:"allocs_per_op,omitempty"`
	BytesPerOp      float64            `json:"bytes_per_op,omitempty"`
	RoundtripsPerSc float64            `json:"roundtrips_per_sec,omitempty"`
	Other           map[string]float64 `json:"other_metrics,omitempty"`
}

type comparison struct {
	Base        string  `json:"base"`
	Target      string  `json:"target"`
	Speedup     float64 `json:"speedup_ns_per_op"`
	AllocsRatio float64 `json:"allocs_ratio,omitempty"`
	ThroughputX float64 `json:"throughput_ratio,omitempty"`
}

type report struct {
	Benchmark   string             `json:"benchmark"`
	Context     map[string]string  `json:"context,omitempty"`
	Results     map[string]*result `json:"results"`
	Comparisons []*comparison      `json:"comparisons,omitempty"`
}

var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	bench := flag.String("bench", "", "benchmark name to collect (prefix before the first '/'; empty = all)")
	out := flag.String("out", "", "output file (default stdout)")
	var pairs [][2]string // {target, base}
	flag.Func("compare", "repeatable \"target vs base\" pair of sub-benchmark names", func(s string) error {
		target, base, ok := strings.Cut(s, " vs ")
		if !ok {
			return fmt.Errorf("want %q, got %q", "target vs base", s)
		}
		pairs = append(pairs, [2]string{strings.TrimSpace(target), strings.TrimSpace(base)})
		return nil
	})
	flag.Parse()

	samples := map[string]map[string][]float64{} // sub-bench -> unit -> values
	context := map[string]string{}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, key := range []string{"goos:", "goarch:", "cpu:"} {
			if strings.HasPrefix(line, key) {
				context[strings.TrimSuffix(key, ":")] = strings.TrimSpace(strings.TrimPrefix(line, key))
			}
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		root, sub := name, name
		if i := strings.IndexByte(name, '/'); i >= 0 {
			root, sub = name[:i], name[i+1:]
		}
		if *bench != "" && root != *bench {
			continue
		}
		// fields[1] is the iteration count; the rest are value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			if samples[sub] == nil {
				samples[sub] = map[string][]float64{}
			}
			samples[sub][fields[i+1]] = append(samples[sub][fields[i+1]], v)
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("bench2json: %v", err)
	}
	if len(samples) == 0 {
		log.Fatal("bench2json: no benchmark lines on stdin")
	}

	rep := report{Benchmark: *bench, Context: context, Results: map[string]*result{}}
	for sub, units := range samples {
		r := &result{}
		for unit, vals := range units {
			m := median(vals)
			switch unit {
			case "ns/op":
				r.NsPerOp = m
				r.Runs = len(vals)
			case "allocs/op":
				r.AllocsPerOp = m
			case "B/op":
				r.BytesPerOp = m
			case "roundtrips/sec":
				r.RoundtripsPerSc = m
			default:
				if r.Other == nil {
					r.Other = map[string]float64{}
				}
				r.Other[unit] = m
			}
		}
		rep.Results[sub] = r
	}

	for _, p := range pairs {
		target, base := p[0], p[1]
		tr, okT := rep.Results[target]
		br, okB := rep.Results[base]
		if !okB || !okT {
			log.Fatalf("bench2json: comparison needs both %q and %q in the input", base, target)
		}
		cmp := &comparison{Base: base, Target: target}
		if tr.NsPerOp > 0 {
			cmp.Speedup = round3(br.NsPerOp / tr.NsPerOp)
		}
		if br.AllocsPerOp > 0 {
			cmp.AllocsRatio = round3(tr.AllocsPerOp / br.AllocsPerOp)
		}
		if br.RoundtripsPerSc > 0 {
			cmp.ThroughputX = round3(tr.RoundtripsPerSc / br.RoundtripsPerSc)
		}
		rep.Comparisons = append(rep.Comparisons, cmp)
		fmt.Fprintf(os.Stderr, "bench2json: %s vs %s: %.2fx faster, %.2fx the allocations\n",
			target, base, cmp.Speedup, cmp.AllocsRatio)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatalf("bench2json: %v", err)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		log.Fatalf("bench2json: %v", err)
	}
}

func median(vals []float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

func round3(v float64) float64 {
	return float64(int64(v*1000+0.5)) / 1000
}
