// simfs-vet is the repo's invariant checker: a multichecker of four
// custom analyzers (determinism, fieldsync, lockorder, errcode) that
// mechanically enforce the rules the codebase used to keep only by
// convention. Run it from anywhere inside the module:
//
//	simfs-vet ./...            all four analyzers, whole module
//	simfs-vet -checks errcode,fieldsync ./internal/server
//
// Exit status is 1 when there are findings. Intentional sites are
// annotated //simfs:allow <check> <reason>; stale allowances are
// findings too (only when every analyzer runs, since an allowance for
// a disabled check would otherwise look unused). `make lint` and the
// CI lint job gate on a clean run; `make vet` stays stock `go vet`,
// so the quick path does not pay the extra load-and-typecheck.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"simfs/internal/analysis"
	"simfs/internal/analysis/suite"
)

func main() {
	checks := flag.String("checks", "", "comma-separated analyzer subset (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range suite.All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := suite.All
	if *checks != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range suite.All {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*checks, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "simfs-vet: unknown analyzer %q (have determinism, fieldsync, lockorder, errcode)\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(os.Stderr, "simfs-vet: %v\n", err)
		os.Exit(2)
	}
	pkgs, err := analysis.Load(root, flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simfs-vet: %v\n", err)
		os.Exit(2)
	}
	findings, err := analysis.Run(pkgs, analyzers, analysis.RunOptions{
		Filter: suite.Filter,
		// Stale-allowance detection needs every check live: an
		// allowance for a skipped analyzer would look unused.
		ReportUnusedAllows: len(analyzers) == len(suite.All),
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "simfs-vet: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(relativize(root, f))
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "simfs-vet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

func relativize(root string, f analysis.Finding) string {
	if rel, err := filepath.Rel(root, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		f.Pos.Filename = rel
	}
	return f.String()
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod, so the tool can be invoked from any subdirectory.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
