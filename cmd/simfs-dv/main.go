// Command simfs-dv runs the SimFS Data Virtualizer daemon: it builds the
// per-context storage areas, runs the initial simulations (restart files +
// checksum registration) and serves DVLib clients over TCP.
//
// Usage:
//
//	simfs-dv -addr 127.0.0.1:7878 -data /tmp/simfs -preset demo
//	simfs-dv -preset cosmo -timescale 1000        # COSMO timings in ms
//	simfs-dv -config contexts.json                # custom contexts
//
// The JSON config is a list of context objects; see Context in the simfs
// package for the fields. When running with -config, SIGHUP re-reads the
// file and reconciles the live daemon against it (new contexts register,
// dropped ones drain and deregister).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"simfs"
	"simfs/internal/faults"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7878", "listen address")
	data := flag.String("data", "./simfs-data", "base directory for storage areas")
	preset := flag.String("preset", "demo", "context preset: demo | cosmo | flash (ignored with -config)")
	config := flag.String("config", "", "JSON file with custom context definitions")
	policy := flag.String("policy", "DCL", "cache replacement scheme: LRU | LIRS | ARC | BCL | DCL")
	timescale := flag.Int("timescale", 1000, "divide simulated durations by this factor (1 = real time)")
	// The daemon deliberately defaults to the production scheduling
	// policy (coalescing + priority queueing + youngest-first demand
	// preemption), not the paper-exact zero config the library and
	// experiments default to: real multi-client traffic benefits from
	// merged restarts and demand-first draining, and a blocking demand
	// miss outranks speculative work hard enough to evict it. Note for
	// operators upgrading with an existing -sched-nodes budget: that
	// budget arms the preemption default — pass `-sched-preempt off` to
	// keep the old wait-behind-prefetch behaviour.
	// `-sched-coalesce=false -sched-priorities=false -sched-preempt off`
	// restores the paper's inline rules bit for bit.
	coalesce := flag.Bool("sched-coalesce", true, "merge overlapping queued re-simulation requests into one job")
	priorities := flag.Bool("sched-priorities", true, "drain the launch queue in priority order (demand > guided > agent prefetch); false = paper-exact prefetch dropping")
	nodes := flag.Int("sched-nodes", 0, "global node budget shared by all contexts (0 = unlimited)")
	// Preemption only ever triggers under a -sched-nodes budget, so the
	// "youngest" default is inert until one is configured.
	preempt := flag.String("sched-preempt", "youngest", "kill a running agent prefetch for a node-blocked demand miss: off | youngest | cheapest (needs -sched-nodes)")
	quantum := flag.Int("sched-quantum", 0, "per-client deficit-round-robin quantum in output steps inside a priority class (0 = pure FIFO)")
	noBinary := flag.Bool("no-binary", false, "do not offer the binary fast-path codec; all sessions stay on JSON frames")
	// Federation: when this daemon is one member behind simfs-router,
	// -peers lists the OTHER members, so subscriptions to files a peer
	// produces are forwarded there and their events come back.
	peers := flag.String("peers", "", "comma-separated peer daemon addresses for cross-daemon notification (federation)")
	fedName := flag.String("fed-name", "", "this daemon's name on its federation links (default: the listen address)")
	// Failure ledger: retry failed re-simulations with backoff, then
	// quarantine the interval (circuit breaker). Off by default — the
	// zero policy reproduces the fail-immediately behavior exactly.
	retryMax := flag.Int("retry-max", 0, "retry a failed re-simulation up to N times before quarantining its interval (0 = no retry, fail immediately)")
	retryBackoff := flag.Duration("retry-backoff", 50*time.Millisecond, "delay before the first retry; doubles per retry up to -retry-max-backoff")
	retryMaxBackoff := flag.Duration("retry-max-backoff", 5*time.Second, "ceiling for the retry backoff")
	retryJitter := flag.Float64("retry-jitter", 0.2, "spread each retry delay by ±fraction (0..1)")
	retryCooldown := flag.Duration("retry-cooldown", 10*time.Second, "how long a quarantined interval refuses demand opens before a half-open probe")
	// Fault injection, for chaos-testing a deployment end to end. All
	// schedules are deterministic for a given -fault-seed.
	faultSeed := flag.Int64("fault-seed", 1, "seed for the probabilistic fault schedules")
	faultSimEvery := flag.Int("fault-sim-every", 0, "crash every n-th launched re-simulation halfway through (0 = off)")
	faultSimProb := flag.Float64("fault-sim-prob", 0, "crash each re-simulation with this probability at a seeded random step (0 = off)")
	faultStorageProb := flag.Float64("fault-storage-prob", 0, "fail each output-step write with this probability (0 = off)")
	faultConnCut := flag.Float64("fault-conn-cut", 0, "sever each client connection with this probability per I/O call (0 = off)")
	faultConnDelay := flag.Duration("fault-conn-delay", 0, "delay injected into client connection I/O (with -fault-conn-delay-prob)")
	faultConnDelayProb := flag.Float64("fault-conn-delay-prob", 0, "probability a connection I/O call is delayed by -fault-conn-delay")
	flag.Parse()

	ctxs, err := loadContexts(*preset, *config)
	if err != nil {
		log.Fatalf("simfs-dv: %v", err)
	}
	preemptPolicy, err := simfs.ParsePreemptPolicy(*preempt)
	if err != nil {
		log.Fatalf("simfs-dv: %v", err)
	}
	if *quantum < 0 {
		log.Fatalf("simfs-dv: -sched-quantum must be ≥ 0, got %d", *quantum)
	}
	schedCfg := simfs.SchedConfig{
		Coalesce: *coalesce, Priorities: *priorities, TotalNodes: *nodes,
		Preempt: preemptPolicy, DRRQuantum: *quantum,
	}
	d, err := simfs.NewScheduledDaemon(*data, *timescale, *policy, schedCfg, ctxs...)
	if err != nil {
		log.Fatalf("simfs-dv: %v", err)
	}
	d.Server.DisableBinary = *noBinary
	if *peers != "" {
		var peerAddrs []string
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerAddrs = append(peerAddrs, p)
			}
		}
		name := *fedName
		if name == "" {
			name = *addr
		}
		d.EnablePeers(name, peerAddrs)
		log.Printf("simfs-dv: federation enabled as %q, forwarding remote watches to %v", name, peerAddrs)
	}
	if *retryMax > 0 {
		d.V.SetRetryPolicy(simfs.RetryPolicy{
			MaxAttempts: *retryMax,
			BaseBackoff: *retryBackoff,
			MaxBackoff:  *retryMaxBackoff,
			Jitter:      *retryJitter,
			Cooldown:    *retryCooldown,
			Seed:        *faultSeed,
		})
		log.Printf("simfs-dv: re-simulation retry enabled (max %d attempts, backoff %v..%v, quarantine cooldown %v)",
			*retryMax, *retryBackoff, *retryMaxBackoff, *retryCooldown)
	}
	if *faultSimEvery > 0 || *faultSimProb > 0 {
		plan := faults.NewSimPlan().WithEvery(*faultSimEvery)
		if *faultSimProb > 0 {
			plan = plan.WithRandom(*faultSeed, *faultSimProb)
		}
		d.Launcher.FailAt = plan.FailAt
		log.Printf("simfs-dv: FAULT INJECTION: re-simulation crashes armed (every=%d prob=%g seed=%d)",
			*faultSimEvery, *faultSimProb, *faultSeed)
	}
	if *faultStorageProb > 0 {
		var mu sync.Mutex
		rng := rand.New(rand.NewSource(*faultSeed))
		orig := d.Launcher.Write
		d.Launcher.Write = func(ctx *simfs.Context, step int) error {
			mu.Lock()
			fail := rng.Float64() < *faultStorageProb
			mu.Unlock()
			if fail {
				return &faults.InjectedError{Op: "create", Name: ctx.Filename(step)}
			}
			return orig(ctx, step)
		}
		log.Printf("simfs-dv: FAULT INJECTION: storage write failures armed (prob=%g seed=%d)",
			*faultStorageProb, *faultSeed)
	}
	if *faultConnCut > 0 || *faultConnDelayProb > 0 {
		d.Server.WrapConn = (&faults.ConnPlan{
			Seed:      *faultSeed,
			CutProb:   *faultConnCut,
			Partial:   true,
			Delay:     *faultConnDelay,
			DelayProb: *faultConnDelayProb,
		}).Wrap
		log.Printf("simfs-dv: FAULT INJECTION: connection faults armed (cut=%g delay=%v@%g seed=%d)",
			*faultConnCut, *faultConnDelay, *faultConnDelayProb, *faultSeed)
	}
	for _, ctx := range ctxs {
		if err := d.RunInitialSimulation(ctx.Name); err != nil {
			log.Fatalf("simfs-dv: initial simulation of %s: %v", ctx.Name, err)
		}
		if n, err := d.V.RescanStorageArea(ctx.Name); err == nil && n > 0 {
			log.Printf("simfs-dv: context %s: recovered %d cached output steps", ctx.Name, n)
		}
		log.Printf("simfs-dv: context %s ready (Δd=%d Δr=%d steps=%d, storage %s)",
			ctx.Name, ctx.Grid.DeltaD, ctx.Grid.DeltaR, ctx.Grid.NumOutputSteps(), ctx.StorageDir)
	}
	if *config != "" {
		// SIGHUP re-reads the config file and reconciles the live daemon
		// against it: new contexts register (with their initial
		// simulation), dropped ones drain and deregister. Presets are
		// static, so the handler only arms with -config.
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				next, err := loadContexts(*preset, *config)
				if err != nil {
					log.Printf("simfs-dv: reload: %v (keeping current contexts)", err)
					continue
				}
				added, removed, err := d.SyncContexts(next, *policy, true)
				if err != nil {
					log.Printf("simfs-dv: reload: %v", err)
				}
				log.Printf("simfs-dv: reload: %d contexts added %v, %d removed %v",
					len(added), added, len(removed), removed)
			}
		}()
	}
	log.Printf("simfs-dv: serving on %s (policy %s, timescale 1/%d, binary=%v, sched coalesce=%v priorities=%v nodes=%d preempt=%s quantum=%d)",
		*addr, *policy, *timescale, !*noBinary, schedCfg.Coalesce, schedCfg.Priorities, schedCfg.TotalNodes,
		schedCfg.Preempt, schedCfg.DRRQuantum)
	if err := d.ListenAndServe(*addr); err != nil {
		log.Fatalf("simfs-dv: %v", err)
	}
}

func loadContexts(preset, config string) ([]*simfs.Context, error) {
	if config != "" {
		raw, err := os.ReadFile(config)
		if err != nil {
			return nil, err
		}
		var ctxs []*simfs.Context
		if err := json.Unmarshal(raw, &ctxs); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", config, err)
		}
		if len(ctxs) == 0 {
			return nil, fmt.Errorf("%s defines no contexts", config)
		}
		return ctxs, nil
	}
	switch preset {
	case "demo":
		return []*simfs.Context{demoContext()}, nil
	case "cosmo":
		return []*simfs.Context{simfs.CosmoScaling()}, nil
	case "flash":
		return []*simfs.Context{simfs.Flash()}, nil
	}
	return nil, fmt.Errorf("unknown preset %q", preset)
}

// demoContext is a small virtualized simulation: 128 output steps, restart
// every 8, 4 KiB files — instant to play with.
func demoContext() *simfs.Context {
	return &simfs.Context{
		Name:               "demo",
		Grid:               simfs.Grid{DeltaD: 1, DeltaR: 8, Timesteps: 128},
		OutputBytes:        4096,
		RestartBytes:       8192,
		MaxCacheBytes:      64 * 4096, // half the output volume
		Tau:                2 * time.Second,
		Alpha:              5 * time.Second,
		DefaultParallelism: 1,
		MaxParallelism:     4,
		SMax:               8,
	}
}
