// Command simfs-dv runs the SimFS Data Virtualizer daemon: it builds the
// per-context storage areas, runs the initial simulations (restart files +
// checksum registration) and serves DVLib clients over TCP.
//
// Usage:
//
//	simfs-dv -addr 127.0.0.1:7878 -data /tmp/simfs -preset demo
//	simfs-dv -preset cosmo -timescale 1000        # COSMO timings in ms
//	simfs-dv -config contexts.json                # custom contexts
//
// The JSON config is a list of context objects; see Context in the simfs
// package for the fields. When running with -config, SIGHUP re-reads the
// file and reconciles the live daemon against it (new contexts register,
// dropped ones drain and deregister).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"simfs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7878", "listen address")
	data := flag.String("data", "./simfs-data", "base directory for storage areas")
	preset := flag.String("preset", "demo", "context preset: demo | cosmo | flash (ignored with -config)")
	config := flag.String("config", "", "JSON file with custom context definitions")
	policy := flag.String("policy", "DCL", "cache replacement scheme: LRU | LIRS | ARC | BCL | DCL")
	timescale := flag.Int("timescale", 1000, "divide simulated durations by this factor (1 = real time)")
	// The daemon deliberately defaults to the production scheduling
	// policy (coalescing + priority queueing + youngest-first demand
	// preemption), not the paper-exact zero config the library and
	// experiments default to: real multi-client traffic benefits from
	// merged restarts and demand-first draining, and a blocking demand
	// miss outranks speculative work hard enough to evict it. Note for
	// operators upgrading with an existing -sched-nodes budget: that
	// budget arms the preemption default — pass `-sched-preempt off` to
	// keep the old wait-behind-prefetch behaviour.
	// `-sched-coalesce=false -sched-priorities=false -sched-preempt off`
	// restores the paper's inline rules bit for bit.
	coalesce := flag.Bool("sched-coalesce", true, "merge overlapping queued re-simulation requests into one job")
	priorities := flag.Bool("sched-priorities", true, "drain the launch queue in priority order (demand > guided > agent prefetch); false = paper-exact prefetch dropping")
	nodes := flag.Int("sched-nodes", 0, "global node budget shared by all contexts (0 = unlimited)")
	// Preemption only ever triggers under a -sched-nodes budget, so the
	// "youngest" default is inert until one is configured.
	preempt := flag.String("sched-preempt", "youngest", "kill a running agent prefetch for a node-blocked demand miss: off | youngest | cheapest (needs -sched-nodes)")
	quantum := flag.Int("sched-quantum", 0, "per-client deficit-round-robin quantum in output steps inside a priority class (0 = pure FIFO)")
	noBinary := flag.Bool("no-binary", false, "do not offer the binary fast-path codec; all sessions stay on JSON frames")
	flag.Parse()

	ctxs, err := loadContexts(*preset, *config)
	if err != nil {
		log.Fatalf("simfs-dv: %v", err)
	}
	preemptPolicy, err := simfs.ParsePreemptPolicy(*preempt)
	if err != nil {
		log.Fatalf("simfs-dv: %v", err)
	}
	if *quantum < 0 {
		log.Fatalf("simfs-dv: -sched-quantum must be ≥ 0, got %d", *quantum)
	}
	schedCfg := simfs.SchedConfig{
		Coalesce: *coalesce, Priorities: *priorities, TotalNodes: *nodes,
		Preempt: preemptPolicy, DRRQuantum: *quantum,
	}
	d, err := simfs.NewScheduledDaemon(*data, *timescale, *policy, schedCfg, ctxs...)
	if err != nil {
		log.Fatalf("simfs-dv: %v", err)
	}
	d.Server.DisableBinary = *noBinary
	for _, ctx := range ctxs {
		if err := d.RunInitialSimulation(ctx.Name); err != nil {
			log.Fatalf("simfs-dv: initial simulation of %s: %v", ctx.Name, err)
		}
		if n, err := d.V.RescanStorageArea(ctx.Name); err == nil && n > 0 {
			log.Printf("simfs-dv: context %s: recovered %d cached output steps", ctx.Name, n)
		}
		log.Printf("simfs-dv: context %s ready (Δd=%d Δr=%d steps=%d, storage %s)",
			ctx.Name, ctx.Grid.DeltaD, ctx.Grid.DeltaR, ctx.Grid.NumOutputSteps(), ctx.StorageDir)
	}
	if *config != "" {
		// SIGHUP re-reads the config file and reconciles the live daemon
		// against it: new contexts register (with their initial
		// simulation), dropped ones drain and deregister. Presets are
		// static, so the handler only arms with -config.
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				next, err := loadContexts(*preset, *config)
				if err != nil {
					log.Printf("simfs-dv: reload: %v (keeping current contexts)", err)
					continue
				}
				added, removed, err := d.SyncContexts(next, *policy, true)
				if err != nil {
					log.Printf("simfs-dv: reload: %v", err)
				}
				log.Printf("simfs-dv: reload: %d contexts added %v, %d removed %v",
					len(added), added, len(removed), removed)
			}
		}()
	}
	log.Printf("simfs-dv: serving on %s (policy %s, timescale 1/%d, binary=%v, sched coalesce=%v priorities=%v nodes=%d preempt=%s quantum=%d)",
		*addr, *policy, *timescale, !*noBinary, schedCfg.Coalesce, schedCfg.Priorities, schedCfg.TotalNodes,
		schedCfg.Preempt, schedCfg.DRRQuantum)
	if err := d.ListenAndServe(*addr); err != nil {
		log.Fatalf("simfs-dv: %v", err)
	}
}

func loadContexts(preset, config string) ([]*simfs.Context, error) {
	if config != "" {
		raw, err := os.ReadFile(config)
		if err != nil {
			return nil, err
		}
		var ctxs []*simfs.Context
		if err := json.Unmarshal(raw, &ctxs); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", config, err)
		}
		if len(ctxs) == 0 {
			return nil, fmt.Errorf("%s defines no contexts", config)
		}
		return ctxs, nil
	}
	switch preset {
	case "demo":
		return []*simfs.Context{demoContext()}, nil
	case "cosmo":
		return []*simfs.Context{simfs.CosmoScaling()}, nil
	case "flash":
		return []*simfs.Context{simfs.Flash()}, nil
	}
	return nil, fmt.Errorf("unknown preset %q", preset)
}

// demoContext is a small virtualized simulation: 128 output steps, restart
// every 8, 4 KiB files — instant to play with.
func demoContext() *simfs.Context {
	return &simfs.Context{
		Name:               "demo",
		Grid:               simfs.Grid{DeltaD: 1, DeltaR: 8, Timesteps: 128},
		OutputBytes:        4096,
		RestartBytes:       8192,
		MaxCacheBytes:      64 * 4096, // half the output volume
		Tau:                2 * time.Second,
		Alpha:              5 * time.Second,
		DefaultParallelism: 1,
		MaxParallelism:     4,
		SMax:               8,
	}
}
