// Command simfs-ctl is the SimFS control utility: it inspects and manages
// a running DV daemon (the command-line tool the paper mentions for
// checksum registration and administration).
//
// Usage:
//
//	simfs-ctl -addr 127.0.0.1:7878 contexts
//	simfs-ctl -addr ... -context demo stats
//	simfs-ctl -addr ... -context demo estwait demo_out_00000042.nc
//	simfs-ctl -addr ... -context demo bitrep  demo_out_00000042.nc
//	simfs-ctl -addr ... -context demo rescan
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"text/tabwriter"
	"time"

	"simfs"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7878", "daemon address")
	ctxName := flag.String("context", "", "simulation context name")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	c, err := simfs.Dial(*addr, "simfs-ctl")
	if err != nil {
		log.Fatalf("simfs-ctl: %v", err)
	}
	defer c.Close()

	switch args[0] {
	case "contexts":
		names, err := c.Contexts()
		check(err)
		for _, n := range names {
			fmt.Println(n)
		}
	case "stats":
		ctx := open(c, *ctxName)
		st, err := ctx.Stats()
		check(err)
		w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		fmt.Fprintf(w, "opens\t%d\nhits\t%d\nmisses\t%d\nrestarts\t%d\n", st.Opens, st.Hits, st.Misses, st.Restarts)
		fmt.Fprintf(w, "demand restarts\t%d\nprefetch launches\t%d\ndropped prefetch\t%d\n", st.DemandRestarts, st.PrefetchLaunches, st.DroppedPrefetch)
		fmt.Fprintf(w, "steps produced\t%d\nevictions\t%d\nkills\t%d\nfailures\t%d\npollution resets\t%d\n", st.StepsProduced, st.Evictions, st.Kills, st.Failures, st.PollutionResets)
		fmt.Fprintf(w, "shard lock acquisitions\t%d\nshard lock contended\t%d\nshard lock wait\t%s\n",
			st.LockAcquisitions, st.LockContended, time.Duration(st.LockWaitNs))
		fmt.Fprintf(w, "sched queue depth\t%d\nsched coalesced\t%d\nsched dropped\t%d\nsched canceled\t%d\n",
			st.SchedQueueDepth, st.SchedCoalesced, st.SchedDropped, st.SchedCanceled)
		fmt.Fprintf(w, "sched wait demand/guided/agent\t%s/%s/%s\n",
			time.Duration(st.SchedDemandWaitNs), time.Duration(st.SchedGuidedWaitNs), time.Duration(st.SchedAgentWaitNs))
		w.Flush()
	case "estwait":
		needFile(args)
		ctx := open(c, *ctxName)
		w, err := ctx.EstWait(args[1])
		check(err)
		fmt.Printf("%s: estimated wait %v\n", args[1], w)
	case "bitrep":
		needFile(args)
		ctx := open(c, *ctxName)
		same, err := ctx.Bitrep(args[1])
		check(err)
		if same {
			fmt.Printf("%s: bitwise identical to the original\n", args[1])
		} else {
			fmt.Printf("%s: DIFFERS from the original simulation output\n", args[1])
		}
	case "rescan":
		ctx := open(c, *ctxName)
		n, err := ctx.Rescan()
		check(err)
		fmt.Printf("recovered %d output steps from the storage area\n", n)
	default:
		usage()
	}
}

func open(c *simfs.Client, name string) *simfs.AnalysisContext {
	if name == "" {
		log.Fatal("simfs-ctl: -context required for this command")
	}
	ctx, err := c.Init(name)
	check(err)
	return ctx
}

func needFile(args []string) {
	if len(args) < 2 {
		log.Fatalf("simfs-ctl: %s requires a file name", args[0])
	}
}

func check(err error) {
	if err != nil {
		log.Fatalf("simfs-ctl: %v", err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: simfs-ctl [-addr host:port] [-context name] contexts|stats|estwait <file>|bitrep <file>|rescan")
	os.Exit(2)
}
