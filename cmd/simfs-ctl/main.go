// Command simfs-ctl is the SimFS control utility: it inspects and manages
// a running DV daemon over the versioned control-plane API — no restart
// needed for any of it.
//
// Inspection:
//
//	simfs-ctl -addr 127.0.0.1:7878 contexts
//	simfs-ctl -addr ... -context demo info
//	simfs-ctl -addr ... -context demo stats
//	simfs-ctl -addr ... -context demo estwait demo_out_00000042.nc
//	simfs-ctl -addr ... -context demo bitrep  demo_out_00000042.nc
//	simfs-ctl -addr ... -context demo rescan
//
// Live reconfiguration (control plane):
//
//	simfs-ctl sched-get
//	simfs-ctl sched-set -coalesce -priorities -nodes 16
//	simfs-ctl cache-policy-set demo LIRS
//	simfs-ctl ctx-register -config ctx.json -policy DCL -initial-sim
//	simfs-ctl drain demo
//	simfs-ctl resume demo
//	simfs-ctl ctx-deregister demo
//
// Closed-loop control (attach an autoscale controller to a live daemon):
//
//	simfs-ctl autoscale -tick 5s -budget 8:32 -preempt youngest -cache-policies DCL,LRU
//
// sched-set flags are partial: only the flags given on the command line
// change; everything else keeps its current value. ctx-deregister
// requires a drained, quiescent context (the daemon answers "busy"
// otherwise — drain first and retry once the workload has emptied).
// Daemon errors are printed with their structured code, e.g.
// "no_such_context".
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"simfs"
	"simfs/internal/autoscale"
	"simfs/internal/des"
	"simfs/internal/netproto"
	"simfs/internal/sched"
)

var (
	addr     = flag.String("addr", "127.0.0.1:7878", "daemon address")
	ctxName  = flag.String("context", "", "simulation context name")
	timeout  = flag.Duration("timeout", 30*time.Second, "per-command deadline")
	jsonOnly = flag.Bool("json", false, "speak JSON frames even if the daemon offers the binary codec")
)

func main() {
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	var opts []simfs.DialOption
	if *jsonOnly {
		opts = append(opts, simfs.WithJSONCodec())
	}
	cx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	c, err := simfs.DialContext(cx, *addr, "simfs-ctl", opts...)
	if err != nil {
		log.Fatalf("simfs-ctl: %v", err)
	}
	defer c.Close()
	admin := c.Admin()

	switch args[0] {
	case "proto":
		w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		fmt.Fprintf(w, "protocol version\t%d\ncodec\t%s\n", c.ProtoVersion(), c.CodecName())
		fmt.Fprintf(w, "daemon capabilities\t%s\n", strings.Join(c.Capabilities(), " "))
		w.Flush()

	case "contexts":
		names, err := c.Contexts()
		check(err)
		for _, n := range names {
			fmt.Println(n)
		}

	case "info":
		ctx := open(c, *ctxName)
		info := ctx.Info()
		w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		fmt.Fprintf(w, "name\t%s\nstorage dir\t%s\nfile pattern\t%s########%s\n",
			info.Name, info.StorageDir, info.FilePrefix, info.FileSuffix)
		fmt.Fprintf(w, "delta d\t%d\ndelta r\t%d\ntimesteps\t%d\noutput bytes\t%d\n",
			info.DeltaD, info.DeltaR, info.Timesteps, info.OutputBytes)
		fmt.Fprintf(w, "cache policy\t%s\ndraining\t%v\n", info.Policy, info.Draining)
		w.Flush()

	case "stats":
		ctx := open(c, *ctxName)
		st, err := ctx.Stats()
		check(err)
		w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		fmt.Fprintf(w, "opens\t%d\nhits\t%d\nmisses\t%d\nrestarts\t%d\n", st.Opens, st.Hits, st.Misses, st.Restarts)
		fmt.Fprintf(w, "demand restarts\t%d\nprefetch launches\t%d\ndropped prefetch\t%d\n", st.DemandRestarts, st.PrefetchLaunches, st.DroppedPrefetch)
		fmt.Fprintf(w, "steps produced\t%d\nevictions\t%d\nkills\t%d\nfailures\t%d\npollution resets\t%d\n", st.StepsProduced, st.Evictions, st.Kills, st.Failures, st.PollutionResets)
		fmt.Fprintf(w, "shard lock acquisitions\t%d\nshard lock contended\t%d\nshard lock wait\t%s\n",
			st.LockAcquisitions, st.LockContended, time.Duration(st.LockWaitNs))
		fmt.Fprintf(w, "draining\t%v\ncache policy\t%s\n", st.Draining, st.CachePolicy)
		fmt.Fprintf(w, "sched queue depth\t%d\nsched coalesced\t%d\nsched dropped\t%d\nsched canceled\t%d\n",
			st.SchedQueueDepth, st.SchedCoalesced, st.SchedDropped, st.SchedCanceled)
		fmt.Fprintf(w, "sched wait demand/guided/agent\t%s/%s/%s\n",
			time.Duration(st.SchedDemandWaitNs), time.Duration(st.SchedGuidedWaitNs), time.Duration(st.SchedAgentWaitNs))
		fmt.Fprintf(w, "sched preempted\t%d\nsched quota rounds/deferred\t%d/%d\n",
			st.SchedPreempted, st.SchedQuotaRounds, st.SchedQuotaDeferred)
		w.Flush()

	case "health":
		// The fault-tolerance view of one context: failure/retry/
		// quarantine counters from the stats frame, compact enough to
		// watch in a loop during an incident.
		ctx := open(c, *ctxName)
		st, err := ctx.Stats()
		check(err)
		w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		fmt.Fprintf(w, "sim failures\t%d\nsched retries\t%d\nsched quarantined\t%d\n",
			st.Failures, st.SchedRetries, st.SchedQuarantined)
		fmt.Fprintf(w, "restarts\t%d\nkills\t%d\ndropped prefetch\t%d\ndraining\t%v\n",
			st.Restarts, st.Kills, st.DroppedPrefetch, st.Draining)
		w.Flush()
		if len(st.Ops) > 0 {
			// Per-op service-time percentiles (log2 buckets, so ±2×):
			// the daemon-side cost of each op, which is what separates
			// "the daemon is slow" from "the network/router is slow".
			fmt.Println("\nop latency (service time, log2-bucket precision):")
			lw := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
			fmt.Fprintf(lw, "op\tcount\tp50\tp99\n")
			for _, l := range st.Ops {
				fmt.Fprintf(lw, "%s\t%d\t%s\t%s\n",
					l.Op, l.Count, time.Duration(l.P50Ns), time.Duration(l.P99Ns))
			}
			lw.Flush()
		}
		if st.SchedQuarantined > 0 {
			fmt.Println("\nintervals have been quarantined; once the underlying fault is fixed,")
			fmt.Println("`simfs-ctl quarantine-reset` re-admits them before the cooldown elapses")
		}
		if c.HasCapability(netproto.CapAutoscale) {
			// The autoscale ledger is daemon-global: whether a controller
			// is attached, what it armed, and its recent decision trail.
			info, err := admin.AutoscaleStatus(cx)
			check(err)
			printAutoscale(info)
		}

	case "autoscale":
		runAutoscale(c, admin, args[1:])

	case "peers":
		// Federation links: ring members (on a router), outbound bridge
		// connections and inbound fed-watch sessions (on a daemon).
		infos, err := admin.Peers(cx)
		check(err)
		if len(infos) == 0 {
			fmt.Println("not federated (no peers)")
			break
		}
		w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
		fmt.Fprintf(w, "addr\trole\tconnected\ttopics\tevents\n")
		for _, p := range infos {
			fmt.Fprintf(w, "%s\t%s\t%v\t%d\t%d\n", p.Addr, p.Role, p.Connected, p.Topics, p.Events)
		}
		w.Flush()

	case "quarantine-reset":
		// Optional context argument; no argument resets every context.
		name := ""
		if len(args) > 1 {
			name = args[1]
		}
		n, err := admin.ResetQuarantine(cx, name)
		check(err)
		scope := name
		if scope == "" {
			scope = "all contexts"
		}
		fmt.Printf("quarantine reset on %s: %d quarantined interval(s) released\n", scope, n)

	case "estwait":
		needArgs(args, 1, "<file>")
		ctx := open(c, *ctxName)
		w, err := ctx.EstWait(args[1])
		check(err)
		fmt.Printf("%s: estimated wait %v\n", args[1], w)

	case "bitrep":
		needArgs(args, 1, "<file>")
		ctx := open(c, *ctxName)
		same, err := ctx.Bitrep(args[1])
		check(err)
		if same {
			fmt.Printf("%s: bitwise identical to the original\n", args[1])
		} else {
			fmt.Printf("%s: DIFFERS from the original simulation output\n", args[1])
		}

	case "rescan":
		ctx := open(c, *ctxName)
		n, err := ctx.Rescan()
		check(err)
		fmt.Printf("recovered %d output steps from the storage area\n", n)

	case "sched-get":
		cfg, err := admin.SchedConfig(cx)
		check(err)
		printSched(cfg)

	case "sched-set":
		fs := flag.NewFlagSet("sched-set", flag.ExitOnError)
		coalesce := fs.Bool("coalesce", false, "merge overlapping queued re-simulation requests into one job")
		priorities := fs.Bool("priorities", false, "drain the launch queue in priority order (demand > guided > agent)")
		nodes := fs.Int("nodes", 0, "global node budget shared by all contexts (0 = unlimited)")
		preempt := fs.String("preempt", "", "preemption victim policy: off | youngest | cheapest")
		quantum := fs.Int("quantum", 0, "per-client deficit-round-robin quantum in output steps (0 = pure FIFO)")
		fs.Parse(args[1:])
		// Partial update: only the flags the operator actually set travel.
		var upd simfs.SchedUpdate
		fs.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "coalesce":
				upd.Coalesce = coalesce
			case "priorities":
				upd.Priorities = priorities
			case "nodes":
				upd.TotalNodes = nodes
			case "preempt":
				upd.PreemptPolicy = preempt
			case "quantum":
				upd.DRRQuantum = quantum
			}
		})
		cfg, err := admin.SetSchedConfig(cx, upd)
		check(err)
		fmt.Println("scheduler reconfigured:")
		printSched(cfg)

	case "cache-policy-set":
		needArgs(args, 2, "<context> <policy>")
		check(admin.SetCachePolicy(cx, args[1], args[2]))
		fmt.Printf("context %s now runs the %s replacement scheme (rebuilt from the resident set)\n", args[1], args[2])

	case "ctx-register":
		fs := flag.NewFlagSet("ctx-register", flag.ExitOnError)
		config := fs.String("config", "", "JSON file with one context definition (required)")
		policy := fs.String("policy", "DCL", "cache replacement scheme: LRU | LIRS | ARC | BCL | DCL")
		initial := fs.Bool("initial-sim", false, "run the initial simulation (restart files + checksums) before serving")
		fs.Parse(args[1:])
		if *config == "" {
			log.Fatal("simfs-ctl: ctx-register requires -config <file.json>")
		}
		raw, err := os.ReadFile(*config)
		check(err)
		var mc simfs.Context
		check(json.Unmarshal(raw, &mc))
		check(admin.RegisterContext(cx, &mc, *policy, *initial))
		fmt.Printf("context %s registered (policy %s, initial sim %v)\n", mc.Name, *policy, *initial)

	case "ctx-deregister":
		needArgs(args, 1, "<context>")
		err := admin.DeregisterContext(cx, args[1])
		if simfs.ErrCodeOf(err) == simfs.CodeBusy {
			log.Fatalf("simfs-ctl: %v\n(drain the context and retry once references, waiters and simulations are gone)", err)
		}
		check(err)
		fmt.Printf("context %s deregistered (storage area kept on disk)\n", args[1])

	case "drain":
		needArgs(args, 1, "<context>")
		check(admin.Drain(cx, args[1]))
		fmt.Printf("context %s draining: new opens and prefetches are refused\n", args[1])

	case "resume":
		needArgs(args, 1, "<context>")
		check(admin.Resume(cx, args[1]))
		fmt.Printf("context %s resumed\n", args[1])

	default:
		usage()
	}
}

// runAutoscale attaches a closed-loop controller to the remote daemon:
// every tick it samples the stats stream and steers whatever policies
// the flags armed, printing one line per decision and (unless -report=
// false) posting the trail to the daemon's ledger for `simfs-ctl
// health`. It detaches cleanly — clearing the daemon's active flag — on
// SIGINT/SIGTERM or after -duration.
func runAutoscale(c *simfs.Client, admin *simfs.Admin, args []string) {
	fs := flag.NewFlagSet("autoscale", flag.ExitOnError)
	tick := fs.Duration("tick", 5*time.Second, "sampling interval")
	duration := fs.Duration("duration", 0, "detach after this long (0 = run until interrupted)")
	highWait := fs.Duration("high-wait", 500*time.Millisecond, "demand queue-wait per window that counts as contention")
	calm := fs.Int("calm-ticks", 3, "consecutive calm windows before widen/arm decisions are undone")
	cooldown := fs.Duration("cooldown", 30*time.Second, "minimum delay between a policy's actuations")
	budget := fs.String("budget", "", "arm the node-budget governor: MIN:MAX nodes")
	budgetStep := fs.Int("budget-step", 1, "nodes added/removed per budget actuation")
	preempt := fs.String("preempt", "", "arm the preemption governor with this victim policy: youngest | cheapest")
	sunkCost := fs.Float64("sunk-cost", 0.8, "completion fraction past which the governor spares a victim (with -preempt)")
	preemptGuided := fs.Bool("preempt-guided", false, "let the governor also make guided prefetches preemptable (with -preempt)")
	cachePolicies := fs.String("cache-policies", "", "arm the cache switcher: comma-separated rotation, e.g. DCL,LRU")
	drr := fs.Int("drr", 0, "arm the DRR-quantum tuner with this quantum (output steps)")
	demandJoin := fs.Bool("demand-join", false, "arm the demand-join promoter")
	report := fs.Bool("report", true, "post decisions to the daemon's ledger (shown by `simfs-ctl health`)")
	fs.Parse(args)

	var pols []autoscale.Policy
	if *budget != "" {
		var min, max int
		if _, err := fmt.Sscanf(*budget, "%d:%d", &min, &max); err != nil || min <= 0 || max < min {
			log.Fatalf("simfs-ctl: -budget wants MIN:MAX with 0 < MIN <= MAX, got %q", *budget)
		}
		pols = append(pols, &autoscale.NodeBudget{Min: min, Max: max, Step: *budgetStep,
			HighWait: *highWait, CalmTicks: *calm, Cooldown: *cooldown})
	}
	if *preempt != "" {
		pol, err := sched.ParsePreemptPolicy(*preempt)
		check(err)
		pols = append(pols, &autoscale.PreemptGovernor{Policy: pol, SunkCost: *sunkCost,
			Guided: *preemptGuided, HighWait: *highWait, CalmTicks: *calm, Cooldown: *cooldown})
	}
	if *cachePolicies != "" {
		pols = append(pols, &autoscale.CacheSwitcher{Policies: strings.Split(*cachePolicies, ","),
			Cooldown: *cooldown})
	}
	if *drr > 0 {
		pols = append(pols, &autoscale.DRRTuner{Quantum: *drr, CalmTicks: *calm, Cooldown: *cooldown})
	}
	if *demandJoin {
		pols = append(pols, &autoscale.DemandJoinPromoter{CalmTicks: *calm, Cooldown: *cooldown})
	}
	if len(pols) == 0 {
		log.Fatal("simfs-ctl: autoscale with no policies armed would only watch; give at least one of -budget, -preempt, -cache-policies, -drr, -demand-join")
	}

	reporting := *report
	if reporting && !c.HasCapability(netproto.CapAutoscale) {
		log.Printf("simfs-ctl: daemon lacks the %s capability; decisions stay local", netproto.CapAutoscale)
		reporting = false
	}
	post := func(body netproto.AutoscaleReportBody) {
		rcx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := admin.ReportAutoscale(rcx, body); err != nil {
			log.Printf("simfs-ctl: autoscale report: %v", err)
		}
	}

	var pending []netproto.AutoscaleDecision
	ctrl, err := autoscale.New(autoscale.NewAdminTarget(c), pols, autoscale.Options{
		Clock: des.NewWallClock(),
		OnDecision: func(d autoscale.Decision) {
			//simfs:allow wallclock operator-facing log timestamp on the live CLI
			fmt.Printf("%s  %-14s %s — %s\n", time.Now().Format("15:04:05"), d.Policy, d.Action, d.Reason)
			pending = append(pending, netproto.AutoscaleDecision{
				AtNs: int64(d.At), Policy: d.Policy, Action: d.Action, Reason: d.Reason,
			})
		},
	})
	check(err)

	fmt.Printf("autoscale: steering %s every %v (policies: %s)\n", *addr, *tick, strings.Join(ctrl.Policies(), ", "))
	if reporting {
		post(netproto.AutoscaleReportBody{Active: true, Policies: ctrl.Policies()})
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	var deadline <-chan time.Time
	if *duration > 0 {
		deadline = time.After(*duration)
	}
	ticker := time.NewTicker(*tick) //simfs:allow wallclock the live CLI paces a real daemon; DES tests drive TickOnce directly
	defer ticker.Stop()
loop:
	for {
		select {
		case <-ticker.C:
			if err := ctrl.TickOnce(); err != nil {
				log.Printf("simfs-ctl: autoscale tick: %v", err)
				continue
			}
			if reporting && len(pending) > 0 {
				post(netproto.AutoscaleReportBody{Active: true, Policies: ctrl.Policies(), Decisions: pending})
				pending = nil
			}
		case <-stop:
			break loop
		case <-deadline:
			break loop
		}
	}
	if reporting {
		// Detach: flush any tail decisions and clear the active flag (the
		// daemon keeps the decision trail for post-mortem health queries).
		post(netproto.AutoscaleReportBody{Active: false, Decisions: pending})
	}
	fmt.Printf("autoscale: detached after %d decision(s)\n", len(ctrl.Decisions()))
}

func printAutoscale(info netproto.AutoscaleInfo) {
	if !info.Active && len(info.Decisions) == 0 {
		return
	}
	fmt.Println()
	if info.Active {
		fmt.Printf("autoscale: active (source %s; policies %s)\n", info.Source, strings.Join(info.Policies, ", "))
	} else {
		fmt.Println("autoscale: detached (last controller's decision trail retained)")
	}
	if len(info.Decisions) == 0 {
		fmt.Println("no decisions recorded yet")
		return
	}
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintf(w, "at\tpolicy\taction\treason\n")
	for _, d := range info.Decisions {
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\n",
			time.Duration(d.AtNs).Round(time.Millisecond), d.Policy, d.Action, d.Reason)
	}
	w.Flush()
}

func printSched(cfg simfs.SchedInfo) {
	w := tabwriter.NewWriter(os.Stdout, 0, 4, 2, ' ', 0)
	fmt.Fprintf(w, "coalesce\t%v\npriorities\t%v\n", cfg.Coalesce, cfg.Priorities)
	if cfg.TotalNodes == 0 {
		fmt.Fprintf(w, "node budget\tunlimited\n")
	} else {
		fmt.Fprintf(w, "node budget\t%d\n", cfg.TotalNodes)
	}
	preempt := cfg.PreemptPolicy
	if preempt == "" {
		preempt = "off"
	}
	fmt.Fprintf(w, "preempt policy\t%s\n", preempt)
	if cfg.DRRQuantum == 0 {
		fmt.Fprintf(w, "drr quantum\toff (pure FIFO)\n")
	} else {
		fmt.Fprintf(w, "drr quantum\t%d steps\n", cfg.DRRQuantum)
	}
	w.Flush()
}

func open(c *simfs.Client, name string) *simfs.AnalysisContext {
	if name == "" {
		log.Fatal("simfs-ctl: -context required for this command")
	}
	ctx, err := c.Init(name)
	check(err)
	return ctx
}

func needArgs(args []string, n int, what string) {
	if len(args) < n+1 {
		log.Fatalf("simfs-ctl: %s requires %s", args[0], what)
	}
}

func check(err error) {
	if err != nil {
		// Daemon errors already render their structured code, e.g.
		// `unknown context "x" (no_such_context)`.
		log.Fatalf("simfs-ctl: %v", err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: simfs-ctl [-addr host:port] [-context name] [-timeout d] [-json] <command>

inspection:
  proto                         show the negotiated protocol version, codec and capabilities
  contexts                      list simulation contexts
  info                          show one context's parameters (-context)
  stats                         show one context's counters (-context)
  health                        fault-tolerance counters, per-op latency percentiles (-context),
                                and the autoscale controller's state + recent decisions
  peers                         federation links (ring members / bridge connections / inbound watches)
  estwait <file>                estimated availability delay (-context)
  bitrep <file>                 bitwise-reproducibility check (-context)
  rescan                        resync the cache with the storage area (-context)

control plane (live, no restart):
  sched-get                     show the re-simulation scheduler config
  sched-set [-coalesce] [-priorities] [-nodes N] [-preempt P] [-quantum Q]
                                reconfigure the scheduler (partial: only given flags change);
                                -preempt off|youngest|cheapest, -quantum in output steps
  cache-policy-set <ctx> <policy>
                                swap the replacement scheme (LRU|LIRS|ARC|BCL|DCL)
  ctx-register -config f.json [-policy P] [-initial-sim]
                                add a simulation context
  ctx-deregister <ctx>          remove a drained context
  drain <ctx>                   refuse new opens/prefetches for a context
  resume <ctx>                  lift a drain
  quarantine-reset [ctx]        clear the re-simulation failure ledger (all contexts if omitted)

closed-loop control:
  autoscale [-tick d] [-duration d] [-budget MIN:MAX] [-preempt P] [-cache-policies A,B]
            [-drr Q] [-demand-join] [-report=false] ...
                                attach a controller that steers the daemon from its own
                                stats stream until interrupted; decisions are printed and
                                posted to the daemon's ledger (see health)`)
	os.Exit(2)
}
