// Command simfs-router is the federation front-end: it speaks the
// ordinary DVLib protocol to clients and forwards every data-plane op
// to the daemon owning its context on a consistent-hash ring, so a set
// of simfs-dv daemons scales out behind one address.
//
// Usage:
//
//	simfs-router -addr 127.0.0.1:7800 -peers 127.0.0.1:7878,127.0.0.1:7879
//
// Clients dial the router exactly like a daemon (dvlib, simfs-ctl,
// the io shims — nothing changes); contexts and stats fan out to all
// members and merge. For cross-daemon notification, start each daemon
// with -peers listing the other members, so a watch routed to one
// daemon still fires when another produces the file.
package main

import (
	"flag"
	"log"
	"strings"

	"simfs/internal/fed"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7800", "listen address")
	peers := flag.String("peers", "", "comma-separated daemon addresses (required)")
	replicas := flag.Int("replicas", fed.DefaultReplicas, "virtual nodes per daemon on the hash ring")
	flag.Parse()

	var members []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			members = append(members, p)
		}
	}
	if len(members) == 0 {
		log.Fatal("simfs-router: -peers requires at least one daemon address")
	}

	r := fed.NewRouter(members, *replicas, log.Printf)
	if err := r.Listen(*addr); err != nil {
		log.Fatalf("simfs-router: %v", err)
	}
	log.Printf("simfs-router: serving on %s, routing %d context shards across %v (replicas=%d)",
		r.Addr(), len(members), members, *replicas)
	if err := r.Serve(); err != nil {
		log.Fatalf("simfs-router: %v", err)
	}
}
