package simfs

import (
	"testing"
	"time"
)

// TestTable1Mapping verifies the paper's Table I: the data-access
// operations of each supported I/O library map onto the DV's
// open/create/read/close protocol with the correct semantics — open is
// non-blocking even for missing files, read blocks until the file is
// re-simulated, close releases the reference.
func TestTable1Mapping(t *testing.T) {
	d, err := NewDaemon(t.TempDir(), 1, "DCL", &Context{
		Name:               "t1",
		Grid:               Grid{DeltaD: 1, DeltaR: 4, Timesteps: 32},
		OutputBytes:        128,
		RestartBytes:       64,
		Tau:                2 * time.Millisecond,
		Alpha:              10 * time.Millisecond,
		DefaultParallelism: 1,
		MaxParallelism:     1,
		SMax:               4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go d.Server.Serve()
	defer func() {
		d.Close()
		d.Launcher.Wait()
	}()
	c, err := Dial(d.Server.Addr(), "table1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, err := c.Init("t1")
	if err != nil {
		t.Fatal(err)
	}

	// Row "(P)NetCDF": nc_open → nc_vara_get_double → nc_close.
	t.Run("NetCDF", func(t *testing.T) {
		start := time.Now()
		f, err := NCOpen(ctx, ctx.Filename(3)) // missing: open must not block
		if err != nil {
			t.Fatal(err)
		}
		// αsim is 10ms: an open returning well before that proves the
		// call did not wait for the re-simulation.
		if time.Since(start) >= 10*time.Millisecond {
			t.Error("open appears to have blocked on the missing file")
		}
		vals, err := f.VaraGetDouble(0, 16) // read blocks until re-simulated
		if err != nil || len(vals) != 16 {
			t.Fatalf("vara_get: %d, %v", len(vals), err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	})

	// Row "(P)HDF5": H5Fopen → H5Dread → H5Fclose.
	t.Run("HDF5", func(t *testing.T) {
		f, err := H5Fopen(ctx, ctx.Filename(9))
		if err != nil {
			t.Fatal(err)
		}
		raw, err := f.H5Dread()
		if err != nil || len(raw) != 128 {
			t.Fatalf("H5Dread: %d, %v", len(raw), err)
		}
		if err := f.H5Fclose(); err != nil {
			t.Fatal(err)
		}
	})

	// Row "ADIOS": adios_open(r) → adios_schedule_read → adios_close.
	t.Run("ADIOS", func(t *testing.T) {
		f, err := AdiosOpen(ctx, ctx.Filename(15))
		if err != nil {
			t.Fatal(err)
		}
		dst := make([]float64, 16)
		if err := f.ScheduleRead(0, 16, dst); err != nil {
			t.Fatal(err)
		}
		if err := f.PerformReads(); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	})
}
