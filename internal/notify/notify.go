// Package notify is the file-readiness notification hub of the Data
// Virtualizer. Clients (the TCP front-end, in-process waiters, tests)
// subscribe to (context, step) topics; the Virtualizer publishes a
// FileReady or FileFailed event when a re-simulation produces or fails to
// produce the step. Publishing never runs under the Virtualizer's shard
// locks, so a slow subscriber cannot stall the simulation event pipeline,
// and waking waiters never requires scanning waiter lists under a global
// lock (the pub/sub shape of the IPPS exemplar).
//
// Delivery contract: a subscription receives at most one event per
// subscribed topic — the next outcome for that file — after which the
// topic is automatically unsubscribed. Subscribers that need the next
// outcome again (e.g. after an eviction) subscribe anew. Because of this
// one-shot contract a subscription's channel is buffered with one slot
// per topic, so delivery never blocks and never drops.
//
// The subscribe-then-check idiom avoids lost wakeups: subscribe first,
// then query the Virtualizer for the file's current state; any event
// published after the subscription is buffered, and any state change
// before it is visible to the query.
package notify

import (
	"sync"
	"sync/atomic"
)

// Topic identifies one virtualized file: a simulation context and the
// 1-based output step index.
type Topic struct {
	Context string
	Step    int
}

// Kind classifies an event.
type Kind uint8

// Event kinds.
const (
	// FileReady: the step's file is on disk.
	FileReady Kind = iota
	// FileFailed: the re-simulation that promised the step died.
	FileFailed
)

func (k Kind) String() string {
	switch k {
	case FileReady:
		return "ready"
	case FileFailed:
		return "failed"
	}
	return "unknown"
}

// Event is one published notification.
type Event struct {
	Topic Topic
	Kind  Kind
	// Err carries the failure reason for FileFailed events.
	Err string
	// Attempts and RetryAfter detail a FileFailed event from a
	// quarantined interval: consecutive launch failures and the time
	// until the circuit breaker half-opens (zero outside quarantine).
	Attempts   int
	RetryAfter int64 // nanoseconds
}

// Stats counts hub activity.
type Stats struct {
	Published   uint64 // Publish calls
	Delivered   uint64 // events handed to a subscription channel
	Dropped     uint64 // events lost to a full channel (defensive; see doc)
	Subscribers int    // live subscriptions
	Topics      int    // topics with at least one subscriber
}

// Hub routes published events to subscribers. The zero value is not
// usable; call NewHub.
type Hub struct {
	mu     sync.Mutex
	topics map[Topic]map[*Sub]struct{}

	published atomic.Uint64
	delivered atomic.Uint64
	dropped   atomic.Uint64
	subs      int
}

// NewHub returns an empty hub.
func NewHub() *Hub {
	return &Hub{topics: map[Topic]map[*Sub]struct{}{}}
}

// Sub is one subscription. Receive events from C; Close when done.
type Sub struct {
	hub    *Hub
	ch     chan Event
	topics map[Topic]struct{}
	closed bool // guarded by hub.mu
}

// Subscribe registers a subscription for the given topics. The returned
// subscription's channel holds one slot per topic, which (with the
// one-shot delivery contract) guarantees non-blocking delivery.
// Duplicate topics collapse.
func (h *Hub) Subscribe(topics ...Topic) *Sub {
	s := &Sub{hub: h, topics: make(map[Topic]struct{}, len(topics))}
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, t := range topics {
		if _, dup := s.topics[t]; dup {
			continue
		}
		s.topics[t] = struct{}{}
		m := h.topics[t]
		if m == nil {
			m = map[*Sub]struct{}{}
			h.topics[t] = m
		}
		m[s] = struct{}{}
	}
	s.ch = make(chan Event, len(s.topics))
	h.subs++
	return s
}

// C returns the subscription's event channel. It is closed by Close and
// when the last subscribed topic has delivered.
func (s *Sub) C() <-chan Event { return s.ch }

// Subscribed reports whether the topic is still awaiting delivery on this
// subscription: false once an event for it was delivered (it is then
// buffered in C) or the subscription was closed.
func (s *Sub) Subscribed(t Topic) bool {
	s.hub.mu.Lock()
	defer s.hub.mu.Unlock()
	_, ok := s.topics[t]
	return ok
}

// Close unsubscribes all remaining topics and closes the channel.
// Buffered events remain readable. Close is idempotent.
func (s *Sub) Close() {
	h := s.hub
	h.mu.Lock()
	defer h.mu.Unlock()
	s.closeLocked()
}

// closeLocked detaches the subscription. Caller holds hub.mu.
func (s *Sub) closeLocked() {
	if s.closed {
		return
	}
	s.closed = true
	for t := range s.topics {
		if m := s.hub.topics[t]; m != nil {
			delete(m, s)
			if len(m) == 0 {
				delete(s.hub.topics, t)
			}
		}
	}
	s.hub.subs--
	close(s.ch)
}

// Publish delivers ev to every subscriber of its topic and unsubscribes
// the (topic, subscription) pairs it delivered to (one-shot contract).
// It returns the number of deliveries. Publish never blocks.
func (h *Hub) Publish(ev Event) int {
	h.published.Add(1)
	h.mu.Lock()
	defer h.mu.Unlock()
	m := h.topics[ev.Topic]
	if len(m) == 0 {
		return 0
	}
	n := 0
	for s := range m {
		delete(m, s)
		delete(s.topics, ev.Topic)
		select {
		case s.ch <- ev:
			h.delivered.Add(1)
			n++
		default:
			// Unreachable under the one-slot-per-topic sizing; counted
			// rather than trusted.
			h.dropped.Add(1)
		}
		if len(s.topics) == 0 {
			// Last topic delivered: complete the subscription so ranging
			// receivers terminate.
			s.closeLocked()
			// closeLocked re-closed nothing for this topic (already
			// removed) and closed the channel after the buffered event.
		}
	}
	if len(m) == 0 {
		delete(h.topics, ev.Topic)
	}
	return n
}

// Stats returns a snapshot of the hub counters.
func (h *Hub) Stats() Stats {
	h.mu.Lock()
	subs := h.subs
	topics := len(h.topics)
	h.mu.Unlock()
	return Stats{
		Published:   h.published.Load(),
		Delivered:   h.delivered.Load(),
		Dropped:     h.dropped.Load(),
		Subscribers: subs,
		Topics:      topics,
	}
}
