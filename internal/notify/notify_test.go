package notify

import (
	"sync"
	"testing"
)

func TestSubscribeReceivesPublishedEvent(t *testing.T) {
	h := NewHub()
	top := Topic{Context: "c", Step: 7}
	sub := h.Subscribe(top)
	if n := h.Publish(Event{Topic: top, Kind: FileReady}); n != 1 {
		t.Fatalf("Publish delivered to %d subscribers, want 1", n)
	}
	ev, ok := <-sub.C()
	if !ok || ev.Topic != top || ev.Kind != FileReady {
		t.Fatalf("received %+v (ok=%v)", ev, ok)
	}
	// One-shot: the subscription completed and its channel closed.
	if _, ok := <-sub.C(); ok {
		t.Error("channel should be closed after the last topic delivered")
	}
}

func TestPublishWithoutSubscribersIsNoop(t *testing.T) {
	h := NewHub()
	if n := h.Publish(Event{Topic: Topic{Context: "c", Step: 1}}); n != 0 {
		t.Fatalf("delivered %d, want 0", n)
	}
	st := h.Stats()
	if st.Published != 1 || st.Delivered != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestOneShotPerTopic(t *testing.T) {
	h := NewHub()
	a := Topic{Context: "c", Step: 1}
	b := Topic{Context: "c", Step: 2}
	sub := h.Subscribe(a, b)
	h.Publish(Event{Topic: a, Kind: FileReady})
	h.Publish(Event{Topic: a, Kind: FileFailed, Err: "again"}) // no subscriber anymore
	if sub.Subscribed(a) {
		t.Error("topic a should be consumed after first delivery")
	}
	if !sub.Subscribed(b) {
		t.Error("topic b should still be live")
	}
	h.Publish(Event{Topic: b, Kind: FileFailed, Err: "boom"})
	var got []Event
	for ev := range sub.C() {
		got = append(got, ev)
	}
	if len(got) != 2 {
		t.Fatalf("received %d events, want 2 (one per topic)", len(got))
	}
	if got[0].Topic != a || got[1].Topic != b || got[1].Err != "boom" {
		t.Errorf("events = %+v", got)
	}
	if st := h.Stats(); st.Dropped != 0 || st.Subscribers != 0 || st.Topics != 0 {
		t.Errorf("hub should be empty after completion: %+v", st)
	}
}

func TestDuplicateTopicsCollapse(t *testing.T) {
	h := NewHub()
	top := Topic{Context: "c", Step: 3}
	sub := h.Subscribe(top, top, top)
	h.Publish(Event{Topic: top, Kind: FileReady})
	n := 0
	for range sub.C() {
		n++
	}
	if n != 1 {
		t.Fatalf("received %d events for a duplicated topic, want 1", n)
	}
}

func TestCloseUnsubscribes(t *testing.T) {
	h := NewHub()
	top := Topic{Context: "c", Step: 1}
	sub := h.Subscribe(top)
	sub.Close()
	sub.Close() // idempotent
	if n := h.Publish(Event{Topic: top, Kind: FileReady}); n != 0 {
		t.Fatalf("closed subscription still reachable (%d deliveries)", n)
	}
	if _, ok := <-sub.C(); ok {
		t.Error("closed subscription's channel should be closed")
	}
	if st := h.Stats(); st.Subscribers != 0 || st.Topics != 0 {
		t.Errorf("hub not empty after close: %+v", st)
	}
}

func TestBufferedEventSurvivesClose(t *testing.T) {
	h := NewHub()
	top := Topic{Context: "c", Step: 9}
	sub := h.Subscribe(top, Topic{Context: "c", Step: 10})
	h.Publish(Event{Topic: top, Kind: FileReady})
	sub.Close()
	ev, ok := <-sub.C()
	if !ok || ev.Topic != top {
		t.Fatalf("buffered event lost on close: %+v (ok=%v)", ev, ok)
	}
}

func TestMultipleSubscribersAllNotified(t *testing.T) {
	h := NewHub()
	top := Topic{Context: "c", Step: 5}
	subs := make([]*Sub, 8)
	for i := range subs {
		subs[i] = h.Subscribe(top)
	}
	if n := h.Publish(Event{Topic: top, Kind: FileReady}); n != len(subs) {
		t.Fatalf("delivered to %d, want %d", n, len(subs))
	}
	for i, sub := range subs {
		if ev, ok := <-sub.C(); !ok || ev.Topic != top {
			t.Errorf("subscriber %d missed the event", i)
		}
	}
}

// TestConcurrentPublishSubscribe hammers the hub from many goroutines;
// run under -race it validates the locking discipline.
func TestConcurrentPublishSubscribe(t *testing.T) {
	h := NewHub()
	const workers = 8
	const rounds = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				top := Topic{Context: "c", Step: i % 17}
				switch w % 3 {
				case 0:
					h.Publish(Event{Topic: top, Kind: FileReady})
				case 1:
					sub := h.Subscribe(top)
					h.Publish(Event{Topic: top, Kind: FileReady})
					<-sub.C() // delivered by us or a concurrent publisher
					sub.Close()
				default:
					sub := h.Subscribe(top, Topic{Context: "d", Step: i})
					sub.Close()
				}
			}
		}()
	}
	wg.Wait()
	if st := h.Stats(); st.Subscribers != 0 {
		t.Errorf("leaked subscribers: %+v", st)
	}
}
