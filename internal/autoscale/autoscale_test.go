package autoscale

import (
	"errors"
	"strings"
	"testing"
	"time"

	"simfs/internal/metrics"
	"simfs/internal/sched"
)

// manualClock is a settable des.Clock.
type manualClock struct{ now time.Duration }

func (c *manualClock) Now() time.Duration { return c.now }

// fakeTarget replays a scripted sample sequence and records actuations.
type fakeTarget struct {
	samples []Sample
	i       int
	err     error

	patches  []SchedPatch
	switches []CacheSwitch
	applyErr error
}

func (f *fakeTarget) Sample() (Sample, error) {
	if f.err != nil {
		return Sample{}, f.err
	}
	if f.i >= len(f.samples) {
		return f.samples[len(f.samples)-1], nil
	}
	s := f.samples[f.i]
	f.i++
	return s, nil
}

func (f *fakeTarget) ApplySched(p SchedPatch) error {
	f.patches = append(f.patches, p)
	return f.applyErr
}

func (f *fakeTarget) SetCachePolicy(ctx, policy string) error {
	f.switches = append(f.switches, CacheSwitch{Ctx: ctx, Policy: policy})
	return nil
}

// sampleWithWait builds a sample with the given cumulative demand wait
// and scheduler config.
func sampleWithWait(cfg sched.Config, wait time.Duration) Sample {
	return Sample{
		Cfg:   cfg,
		Sched: metrics.SchedStats{DemandWait: metrics.SchedClassWait{Wait: wait}},
	}
}

func newController(t *testing.T, target Target, clk *manualClock, policies ...Policy) *Controller {
	t.Helper()
	c, err := New(target, policies, Options{Clock: clk})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func tickN(t *testing.T, c *Controller, clk *manualClock, n int, step time.Duration) {
	t.Helper()
	for range make([]struct{}, n) {
		clk.now += step
		if err := c.TickOnce(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestControllerNoPoliciesNeverActuates(t *testing.T) {
	ft := &fakeTarget{samples: []Sample{sampleWithWait(sched.Config{TotalNodes: 4}, 0)}}
	clk := &manualClock{}
	c := newController(t, ft, clk)
	tickN(t, c, clk, 10, time.Second)
	if len(ft.patches) != 0 || len(ft.switches) != 0 {
		t.Fatalf("zero-policy controller actuated: %d patches, %d switches", len(ft.patches), len(ft.switches))
	}
	if d := c.Decisions(); len(d) != 0 {
		t.Fatalf("zero-policy controller recorded decisions: %v", d)
	}
}

func TestControllerSampleErrorKeepsWindow(t *testing.T) {
	cfg := sched.Config{TotalNodes: 2}
	ft := &fakeTarget{samples: []Sample{
		sampleWithWait(cfg, 0),
		sampleWithWait(cfg, 2*time.Second),
	}}
	clk := &manualClock{}
	c := newController(t, ft, clk, &NodeBudget{Min: 1, Max: 8})
	tickN(t, c, clk, 1, time.Second) // baseline

	ft.err = errors.New("daemon away")
	clk.now += time.Second
	if err := c.TickOnce(); err == nil {
		t.Fatal("TickOnce with failing sample returned nil error")
	}
	ft.err = nil

	// The failed tick must not have consumed the baseline: the next
	// successful tick still sees the 2s wait growth and widens.
	tickN(t, c, clk, 1, time.Second)
	if len(ft.patches) != 1 || ft.patches[0].TotalNodes == nil || *ft.patches[0].TotalNodes != 3 {
		t.Fatalf("patches after recovery = %+v, want one widen to 3", ft.patches)
	}
}

func TestControllerMergesFirstPolicyWins(t *testing.T) {
	cfg := sched.Config{TotalNodes: 2}
	ft := &fakeTarget{samples: []Sample{
		sampleWithWait(cfg, 0),
		sampleWithWait(cfg, 2*time.Second),
	}}
	clk := &manualClock{}
	// Two budget governors with different steps both claim TotalNodes;
	// the first armed must win and only ONE ApplySched may happen.
	c := newController(t, ft, clk,
		&NodeBudget{Min: 1, Max: 8, Step: 1},
		&NodeBudget{Min: 1, Max: 8, Step: 4})
	tickN(t, c, clk, 2, time.Second)
	if len(ft.patches) != 1 {
		t.Fatalf("ApplySched called %d times in one tick, want 1 (single-writer rule)", len(ft.patches))
	}
	if *ft.patches[0].TotalNodes != 3 {
		t.Fatalf("merged nodes = %d, want 3 (first policy's step)", *ft.patches[0].TotalNodes)
	}
	if len(c.Decisions()) != 2 {
		t.Fatalf("decisions = %d, want 2 (both policies logged)", len(c.Decisions()))
	}
}

func TestControllerDecisionRingBounded(t *testing.T) {
	cfg := sched.Config{TotalNodes: 2}
	var samples []Sample
	for i := range make([]struct{}, 100) {
		samples = append(samples, sampleWithWait(cfg, time.Duration(i)*2*time.Second))
	}
	ft := &fakeTarget{samples: samples}
	clk := &manualClock{}
	c, err := New(ft, []Policy{&NodeBudget{Min: 1, Max: 1000}}, Options{Clock: clk, LogSize: 5})
	if err != nil {
		t.Fatal(err)
	}
	tickN(t, c, clk, 100, time.Second)
	if got := len(c.Decisions()); got != 5 {
		t.Fatalf("decision ring length = %d, want 5", got)
	}
}

func TestNodeBudgetWidenShrinkBounds(t *testing.T) {
	p := &NodeBudget{Min: 2, Max: 4, CalmTicks: 2, HighWait: time.Second}
	cfg := sched.Config{TotalNodes: 2}
	wait := time.Duration(0)
	now := time.Duration(0)
	tick := func(growth time.Duration) []Action {
		prev := sampleWithWait(cfg, wait)
		wait += growth
		now += time.Second
		return p.Evaluate(Tick{Now: now, Prev: prev, Cur: sampleWithWait(cfg, wait)})
	}
	apply := func(acts []Action) {
		for _, a := range acts {
			if a.Patch != nil && a.Patch.TotalNodes != nil {
				cfg.TotalNodes = *a.Patch.TotalNodes
			}
		}
	}

	apply(tick(2 * time.Second)) // hot: widen 2→3
	if cfg.TotalNodes != 3 {
		t.Fatalf("after hot tick nodes = %d, want 3", cfg.TotalNodes)
	}
	apply(tick(2 * time.Second)) // hot: widen 3→4 (= Max)
	apply(tick(2 * time.Second)) // hot but pinned at Max: no action
	if cfg.TotalNodes != 4 {
		t.Fatalf("nodes exceeded Max: %d", cfg.TotalNodes)
	}
	apply(tick(0)) // calm 1
	if cfg.TotalNodes != 4 {
		t.Fatalf("shrank before the calm streak completed: %d", cfg.TotalNodes)
	}
	apply(tick(0)) // calm 2: shrink 4→3
	if cfg.TotalNodes != 3 {
		t.Fatalf("after calm streak nodes = %d, want 3", cfg.TotalNodes)
	}
	apply(tick(0))
	apply(tick(0)) // shrink 3→2 (= Min)
	apply(tick(0))
	apply(tick(0)) // calm but pinned at Min: no action
	if cfg.TotalNodes != 2 {
		t.Fatalf("nodes fell below Min: %d", cfg.TotalNodes)
	}
}

func TestNodeBudgetInertWhenUnlimited(t *testing.T) {
	p := &NodeBudget{Min: 1, Max: 8}
	acts := p.Evaluate(Tick{
		Now:  time.Second,
		Prev: sampleWithWait(sched.Config{}, 0),
		Cur:  sampleWithWait(sched.Config{}, time.Hour),
	})
	if len(acts) != 0 {
		t.Fatalf("budget governor acted on an unlimited budget: %v", acts)
	}
}

func TestNodeBudgetCooldown(t *testing.T) {
	p := &NodeBudget{Min: 1, Max: 8, HighWait: time.Second, Cooldown: 10 * time.Second}
	cfg := sched.Config{TotalNodes: 2}
	hot := func(now time.Duration) []Action {
		return p.Evaluate(Tick{Now: now,
			Prev: sampleWithWait(cfg, 0),
			Cur:  sampleWithWait(cfg, 2*time.Second)})
	}
	if acts := hot(time.Second); len(acts) != 1 {
		t.Fatalf("first hot tick: %d actions, want 1", len(acts))
	}
	if acts := hot(2 * time.Second); len(acts) != 0 {
		t.Fatalf("actuated inside the cooldown window: %v", acts)
	}
	if acts := hot(12 * time.Second); len(acts) != 1 {
		t.Fatalf("cooldown expired but no action: %v", acts)
	}
}

func TestPreemptGovernorArmDisarm(t *testing.T) {
	p := &PreemptGovernor{SunkCost: 0.8, Guided: true, HighWait: time.Second, CalmTicks: 2}
	cfg := sched.Config{}
	now := time.Duration(0)
	tick := func(growth time.Duration) []Action {
		now += time.Second
		prev := sampleWithWait(cfg, 0)
		cur := sampleWithWait(cfg, growth)
		return p.Evaluate(Tick{Now: now, Prev: prev, Cur: cur})
	}

	acts := tick(2 * time.Second)
	if len(acts) != 1 {
		t.Fatalf("contended tick: %d actions, want 1", len(acts))
	}
	patch := acts[0].Patch
	if patch.Preempt == nil || *patch.Preempt != sched.PreemptYoungest {
		t.Fatalf("arm patch preempt = %v, want youngest", patch.Preempt)
	}
	if patch.SunkCost == nil || *patch.SunkCost != 0.8 || patch.Guided == nil || !*patch.Guided {
		t.Fatalf("arm patch missing guard fields: %+v", patch)
	}
	cfg = patch.apply(cfg)

	if acts := tick(0); len(acts) != 0 { // calm 1 of 2
		t.Fatalf("disarmed before calm streak: %v", acts)
	}
	acts = tick(0) // calm 2: disarm
	if len(acts) != 1 {
		t.Fatalf("calm streak complete: %d actions, want 1", len(acts))
	}
	patch = acts[0].Patch
	if patch.Preempt == nil || *patch.Preempt != sched.PreemptOff {
		t.Fatalf("disarm patch preempt = %v, want off", patch.Preempt)
	}
	if patch.SunkCost == nil || *patch.SunkCost != 0 || patch.Guided == nil || *patch.Guided {
		t.Fatalf("disarm patch must clear the guards it armed: %+v", patch)
	}
}

func TestPreemptGovernorRespectsOperatorConfig(t *testing.T) {
	p := &PreemptGovernor{HighWait: time.Second}
	cfg := sched.Config{Preempt: sched.PreemptCheapest} // operator's choice
	acts := p.Evaluate(Tick{Now: time.Second,
		Prev: sampleWithWait(cfg, 0),
		Cur:  sampleWithWait(cfg, time.Hour)})
	if len(acts) != 0 {
		t.Fatalf("governor overrode operator preemption config: %v", acts)
	}
	// And it never disarms a policy it did not arm.
	for i := 0; i < 10; i++ {
		acts = p.Evaluate(Tick{Now: time.Duration(i+2) * time.Second,
			Prev: sampleWithWait(cfg, 0),
			Cur:  sampleWithWait(cfg, 0)})
		if len(acts) != 0 {
			t.Fatalf("governor disarmed operator preemption: %v", acts)
		}
	}
}

func cacheSample(cfg sched.Config, opens, hits int64, policy string) Sample {
	return Sample{
		Cfg:  cfg,
		Ctxs: map[string]CtxSample{"c": {Opens: opens, Hits: hits, CachePolicy: policy}},
	}
}

func TestCacheSwitcherRotatesOnLowHitRatio(t *testing.T) {
	p := &CacheSwitcher{Policies: []string{"DCL", "LRU"}, LowHit: 0.5, MinOpens: 10, BadTicks: 2}
	var cfg sched.Config
	// Two windows of 20 opens / 2 hits each: bad streak reaches 2.
	acts := p.Evaluate(Tick{Now: time.Second,
		Prev: cacheSample(cfg, 0, 0, "DCL"),
		Cur:  cacheSample(cfg, 20, 2, "DCL")})
	if len(acts) != 0 {
		t.Fatalf("switched after one bad window: %v", acts)
	}
	acts = p.Evaluate(Tick{Now: 2 * time.Second,
		Prev: cacheSample(cfg, 20, 2, "DCL"),
		Cur:  cacheSample(cfg, 40, 4, "DCL")})
	if len(acts) != 1 || acts[0].Cache == nil {
		t.Fatalf("bad streak complete: %v, want one cache switch", acts)
	}
	if acts[0].Cache.Ctx != "c" || acts[0].Cache.Policy != "LRU" {
		t.Fatalf("switch = %+v, want c → LRU", acts[0].Cache)
	}
}

func TestCacheSwitcherIgnoresQuietWindows(t *testing.T) {
	p := &CacheSwitcher{Policies: []string{"DCL", "LRU"}, LowHit: 0.5, MinOpens: 10, BadTicks: 2}
	var cfg sched.Config
	p.Evaluate(Tick{Now: time.Second,
		Prev: cacheSample(cfg, 0, 0, "DCL"),
		Cur:  cacheSample(cfg, 20, 0, "DCL")}) // bad 1
	// A quiet window (below MinOpens) resets the streak...
	p.Evaluate(Tick{Now: 2 * time.Second,
		Prev: cacheSample(cfg, 20, 0, "DCL"),
		Cur:  cacheSample(cfg, 22, 0, "DCL")})
	// ...so another bad window must NOT trigger yet.
	acts := p.Evaluate(Tick{Now: 3 * time.Second,
		Prev: cacheSample(cfg, 22, 0, "DCL"),
		Cur:  cacheSample(cfg, 42, 0, "DCL")})
	if len(acts) != 0 {
		t.Fatalf("quiet window did not reset the bad streak: %v", acts)
	}
}

func loadSample(cfg sched.Config, loads map[string]uint64) Sample {
	return Sample{Cfg: cfg, Loads: loads}
}

func TestDRRTunerArmsOnSkewDisarmsOnEven(t *testing.T) {
	p := &DRRTuner{Quantum: 8, HighSkew: 2, MinSteps: 10, CalmTicks: 2}
	cfg := sched.Config{Priorities: true}
	// Window: hog 90 steps, mouse 10 → skew = 90×2/100 = 1.8 < 2: no.
	acts := p.Evaluate(Tick{Now: time.Second,
		Prev: loadSample(cfg, nil),
		Cur:  loadSample(cfg, map[string]uint64{"hog": 90, "mouse": 10})})
	if len(acts) != 0 {
		t.Fatalf("tuner armed below threshold: %v", acts)
	}
	// Window: hog 95, mouse 5 → skew = 95×2/100 = 1.9... still under.
	// Use 3 clients: hog 90, m1 5, m2 5 → 90×3/100 = 2.7 ≥ 2: arm.
	acts = p.Evaluate(Tick{Now: 2 * time.Second,
		Prev: loadSample(cfg, map[string]uint64{"hog": 90, "mouse": 10}),
		Cur:  loadSample(cfg, map[string]uint64{"hog": 180, "mouse": 15, "m2": 5})})
	if len(acts) != 1 || acts[0].Patch.DRRQuantum == nil || *acts[0].Patch.DRRQuantum != 8 {
		t.Fatalf("skewed window: %v, want quantum=8 armed", acts)
	}
	cfg.DRRQuantum = 8
	// Even windows: disarm after the calm streak.
	even := func(now time.Duration, base uint64) []Action {
		return p.Evaluate(Tick{Now: now,
			Prev: loadSample(cfg, map[string]uint64{"hog": base, "mouse": base}),
			Cur:  loadSample(cfg, map[string]uint64{"hog": base + 50, "mouse": base + 50})})
	}
	if acts := even(3*time.Second, 200); len(acts) != 0 {
		t.Fatalf("disarmed before calm streak: %v", acts)
	}
	acts = even(4*time.Second, 300)
	if len(acts) != 1 || acts[0].Patch.DRRQuantum == nil || *acts[0].Patch.DRRQuantum != 0 {
		t.Fatalf("calm streak complete: %v, want quantum=0", acts)
	}
}

func TestDRRTunerRequiresPriorities(t *testing.T) {
	p := &DRRTuner{HighSkew: 1.5, MinSteps: 10}
	cfg := sched.Config{} // FIFO: DRR cannot apply
	acts := p.Evaluate(Tick{Now: time.Second,
		Prev: loadSample(cfg, nil),
		Cur:  loadSample(cfg, map[string]uint64{"hog": 100, "mouse": 1})})
	if len(acts) != 0 {
		t.Fatalf("tuner armed without priority queueing: %v", acts)
	}
}

func TestDemandJoinPromoterArmsOnBacklog(t *testing.T) {
	p := &DemandJoinPromoter{CalmTicks: 2}
	depth := func(cfg sched.Config, d int) Sample {
		return Sample{Cfg: cfg, Sched: metrics.SchedStats{QueueDepth: d}}
	}
	cfg := sched.Config{}
	acts := p.Evaluate(Tick{Now: time.Second, Prev: depth(cfg, 0), Cur: depth(cfg, 3)})
	if len(acts) != 1 || acts[0].Patch.DemandJoin == nil || !*acts[0].Patch.DemandJoin {
		t.Fatalf("backlogged tick: %v, want demand-join armed", acts)
	}
	cfg.DemandJoin = true
	if acts := p.Evaluate(Tick{Now: 2 * time.Second, Prev: depth(cfg, 3), Cur: depth(cfg, 0)}); len(acts) != 0 {
		t.Fatalf("disarmed before calm streak: %v", acts)
	}
	acts = p.Evaluate(Tick{Now: 3 * time.Second, Prev: depth(cfg, 0), Cur: depth(cfg, 0)})
	if len(acts) != 1 || acts[0].Patch.DemandJoin == nil || *acts[0].Patch.DemandJoin {
		t.Fatalf("calm streak complete: %v, want demand-join disarmed", acts)
	}
	// Operator-armed demand-join is left alone.
	q := &DemandJoinPromoter{}
	if acts := q.Evaluate(Tick{Now: time.Second, Prev: depth(cfg, 0), Cur: depth(cfg, 5)}); len(acts) != 0 {
		t.Fatalf("promoter re-armed operator demand-join: %v", acts)
	}
}

func TestSchedPatchStringAndBody(t *testing.T) {
	p := SchedPatch{
		TotalNodes: intPtr(6),
		Preempt:    policyPtr(sched.PreemptYoungest),
		SunkCost:   f64Ptr(0.8),
		Guided:     boolPtr(true),
		DRRQuantum: intPtr(4),
		DemandJoin: boolPtr(true),
	}
	s := p.String()
	for _, want := range []string{"nodes=6", "preempt=youngest", "sunkcost=0.8", "guided=true", "quantum=4", "demandjoin=true"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	b := p.Body()
	if b.TotalNodes == nil || *b.TotalNodes != 6 ||
		b.PreemptPolicy == nil || *b.PreemptPolicy != "youngest" ||
		b.PreemptSunkCost == nil || *b.PreemptSunkCost != 0.8 ||
		b.PreemptGuided == nil || !*b.PreemptGuided ||
		b.DRRQuantum == nil || *b.DRRQuantum != 4 ||
		b.DemandJoin == nil || !*b.DemandJoin {
		t.Fatalf("Body() dropped fields: %+v", b)
	}
}
