package autoscale

import (
	"fmt"
	"time"
)

// CacheSwitcher rotates a context through a ring of cache replacement
// policies when its windowed hit ratio stays low: if the current scheme
// mispredicts the workload's reuse pattern for BadTicks consecutive
// windows with enough traffic to judge, the next candidate is tried.
// Context iteration is sorted, so the switcher is deterministic under
// the DES.
type CacheSwitcher struct {
	// Contexts restricts the switcher (empty = every context).
	Contexts []string
	// Policies is the candidate ring (default [DCL LRU]). The switch
	// target is the ring entry after the context's current policy; a
	// current policy outside the ring starts at the front.
	Policies []string
	// LowHit is the windowed hit-ratio floor (default 0.5).
	LowHit float64
	// MinOpens is the minimum opens per window to judge (default 16) —
	// below it the window is noise and the streak resets.
	MinOpens int64
	// BadTicks is the number of consecutive low-ratio windows before
	// switching (default 2).
	BadTicks int
	// Cooldown is the minimum controller time between switches of the
	// same context.
	Cooldown time.Duration

	state map[string]*cacheCtxState
}

type cacheCtxState struct {
	bad     int
	lastAct time.Duration
	acted   bool
}

func (p *CacheSwitcher) Name() string { return "cache-switcher" }

func (p *CacheSwitcher) policies() []string {
	if len(p.Policies) > 0 {
		return p.Policies
	}
	return []string{"DCL", "LRU"}
}

func (p *CacheSwitcher) lowHit() float64 {
	if p.LowHit > 0 {
		return p.LowHit
	}
	return 0.5
}

func (p *CacheSwitcher) minOpens() int64 {
	if p.MinOpens > 0 {
		return p.MinOpens
	}
	return 16
}

func (p *CacheSwitcher) badTicks() int {
	if p.BadTicks > 0 {
		return p.BadTicks
	}
	return 2
}

func (p *CacheSwitcher) governed(name string) bool {
	if len(p.Contexts) == 0 {
		return true
	}
	for _, c := range p.Contexts {
		if c == name {
			return true
		}
	}
	return false
}

// next returns the ring entry after cur (ring front when cur is not a
// ring member), or "" when there is nowhere to rotate to.
func (p *CacheSwitcher) next(cur string) string {
	ring := p.policies()
	for i, name := range ring {
		if name == cur {
			n := ring[(i+1)%len(ring)]
			if n == cur {
				return ""
			}
			return n
		}
	}
	if ring[0] == cur {
		return ""
	}
	return ring[0]
}

func (p *CacheSwitcher) Evaluate(t Tick) []Action {
	if t.First {
		return nil
	}
	if p.state == nil {
		p.state = make(map[string]*cacheCtxState)
	}
	var actions []Action
	for _, name := range sortedCtxNames(t.Cur.Ctxs) {
		cur := t.Cur.Ctxs[name]
		if !p.governed(name) || cur.Draining {
			continue
		}
		st := p.state[name]
		if st == nil {
			st = &cacheCtxState{}
			p.state[name] = st
		}
		prev, had := t.Prev.Ctxs[name]
		if !had {
			continue // first window for this context
		}
		dOpens := cur.Opens - prev.Opens
		if dOpens < p.minOpens() {
			st.bad = 0 // not enough traffic to judge: reset the streak
			continue
		}
		ratio := float64(cur.Hits-prev.Hits) / float64(dOpens)
		if ratio >= p.lowHit() {
			st.bad = 0
			continue
		}
		st.bad++
		if st.bad < p.badTicks() {
			continue
		}
		if st.acted && t.Now-st.lastAct < p.Cooldown {
			continue
		}
		target := p.next(cur.CachePolicy)
		if target == "" {
			st.bad = 0
			continue
		}
		st.bad = 0
		st.lastAct, st.acted = t.Now, true
		actions = append(actions, Action{
			Cache: &CacheSwitch{Ctx: name, Policy: target},
			Reason: fmt.Sprintf("hit ratio %.2f < %.2f for %d windows (%d opens)",
				ratio, p.lowHit(), p.badTicks(), dOpens),
		})
	}
	return actions
}
