// Package autoscale closes the control loop around a running Data
// Virtualizer: a Controller samples the daemon's own stats stream on a
// tick, hands consecutive samples to pluggable policies, and actuates
// their verdicts through the existing control plane (scheduler partial
// reconfiguration, cache-policy swap). The paper's evaluation picks the
// DV configuration per workload by hand; the controller makes that
// choice continuously, from the same signals the stats surface already
// exports, so a phase change in the workload re-tunes the daemon without
// an operator in the loop.
//
// Actuator safety rules, enforced structurally rather than per policy:
//
//   - Single-writer actuation: each tick merges every policy's scheduler
//     patch into ONE partial update (first policy to claim a field wins,
//     in the order policies were armed), applied atomically by the
//     scheduler's Update. Policies never race each other or interleave
//     half-applied configs.
//   - Hysteresis: policies act on sustained signals (calm-streak
//     counters, windowed deltas between consecutive samples), never on a
//     single noisy reading.
//   - Cooldown: a policy that just actuated holds off for a configurable
//     interval, so the loop cannot flap faster than the system can
//     respond.
//   - Arm-only-what-you-armed: reversible policies (preemption, DRR,
//     demand-join) only undo settings they themselves applied. Operator
//     configuration is never fought.
//
// The controller is deterministic and clock-injected (des.Clock): under
// the DES it ticks in virtual time and replays identically; under the
// daemon it runs on wall time. With no policies armed it samples and
// does nothing — a guarantee the zero-config golden test pins.
package autoscale

import (
	"context"
	"fmt"
	"time"

	"simfs/internal/des"
)

// Decision is one actuation (or refusal) taken by a policy on a tick.
type Decision struct {
	// At is the controller clock's time of the tick (virtual under the
	// DES, wall-relative under the daemon).
	At time.Duration
	// Policy is the acting policy's Name.
	Policy string
	// Action describes what was actuated, e.g. "sched{nodes=6}" or
	// "cache{ctx=climate policy=LRU}".
	Action string
	// Reason is the policy's stated trigger, for the decision log.
	Reason string
}

// Options configures a Controller.
type Options struct {
	// Clock is the controller's time source (required): des.Engine under
	// the DES, des.NewWallClock() under the daemon.
	Clock des.Clock
	// Logf, when set, receives one line per decision and per tick error.
	Logf func(format string, args ...any)
	// OnDecision, when set, observes every decision as it is taken (the
	// simfs-ctl autoscale mode forwards these to the daemon's ledger).
	OnDecision func(Decision)
	// LogSize bounds the in-memory decision ring (default 32).
	LogSize int
}

// Controller drives the loop: Sample → Evaluate each policy → merge →
// actuate. It is single-threaded by construction — TickOnce must not be
// called concurrently with itself; Run serializes ticks on one
// goroutine.
type Controller struct {
	target   Target
	policies []Policy
	clock    des.Clock
	logf     func(string, ...any)
	onDec    func(Decision)
	logSize  int

	first     bool
	prev      Sample
	decisions []Decision
}

// New builds a controller over a target with an ordered policy set.
// Policy order is actuation priority: on a conflicting scheduler field,
// the earlier policy wins.
func New(target Target, policies []Policy, opts Options) (*Controller, error) {
	if target == nil {
		return nil, fmt.Errorf("autoscale: target is required")
	}
	if opts.Clock == nil {
		return nil, fmt.Errorf("autoscale: Options.Clock is required")
	}
	logSize := opts.LogSize
	if logSize <= 0 {
		logSize = 32
	}
	return &Controller{
		target:   target,
		policies: policies,
		clock:    opts.Clock,
		logf:     opts.Logf,
		onDec:    opts.OnDecision,
		logSize:  logSize,
		first:    true,
	}, nil
}

// Policies lists the armed policies' names, in actuation-priority order.
func (c *Controller) Policies() []string {
	names := make([]string, len(c.policies))
	for i, p := range c.policies {
		names[i] = p.Name()
	}
	return names
}

// TickOnce runs one control iteration: sample the target, let every
// policy compare the sample against the previous one, merge the
// scheduler patches into a single atomic update, and actuate. A sampling
// failure aborts the tick without advancing the window (the next tick
// compares against the same baseline).
func (c *Controller) TickOnce() error {
	cur, err := c.target.Sample()
	if err != nil {
		return fmt.Errorf("autoscale: sample: %w", err)
	}
	t := Tick{Now: c.clock.Now(), First: c.first, Prev: c.prev, Cur: cur}

	var merged SchedPatch
	var actions []pendingAction
	for _, p := range c.policies {
		for _, a := range p.Evaluate(t) {
			if a.Patch != nil {
				merged.merge(*a.Patch)
			}
			actions = append(actions, pendingAction{policy: p.Name(), act: a})
		}
	}

	// Single-writer actuation: one scheduler update per tick, however
	// many policies contributed fields.
	if !merged.empty() {
		if err := c.target.ApplySched(merged); err != nil {
			c.log("autoscale: sched actuation failed: %v", err)
		}
	}
	for _, pa := range actions {
		if cs := pa.act.Cache; cs != nil {
			if err := c.target.SetCachePolicy(cs.Ctx, cs.Policy); err != nil {
				c.log("autoscale: cache actuation failed (ctx %s): %v", cs.Ctx, err)
			}
		}
		c.record(Decision{At: t.Now, Policy: pa.policy, Action: pa.act.describe(), Reason: pa.act.Reason})
	}

	c.prev = cur
	c.first = false
	return nil
}

type pendingAction struct {
	policy string
	act    Action
}

// record appends to the bounded decision ring and notifies observers.
func (c *Controller) record(d Decision) {
	c.decisions = append(c.decisions, d)
	if len(c.decisions) > c.logSize {
		c.decisions = append(c.decisions[:0], c.decisions[len(c.decisions)-c.logSize:]...)
	}
	c.log("autoscale: [%s] %s (%s)", d.Policy, d.Action, d.Reason)
	if c.onDec != nil {
		c.onDec(d)
	}
}

// Decisions returns the retained decision log, oldest first.
func (c *Controller) Decisions() []Decision {
	return append([]Decision(nil), c.decisions...)
}

func (c *Controller) log(format string, args ...any) {
	if c.logf != nil {
		c.logf(format, args...)
	}
}

// Run ticks the controller on a wall-clock interval until the context
// ends. Tick errors (a daemon restart mid-sample, say) are logged and
// the loop continues — the controller is an observer that must outlive
// transient failures of its subject.
func (c *Controller) Run(ctx context.Context, interval time.Duration) error {
	if interval <= 0 {
		return fmt.Errorf("autoscale: tick interval must be > 0, got %v", interval)
	}
	ticker := time.NewTicker(interval) //simfs:allow wallclock Run paces a live daemon; replayed experiments call TickOnce on an injected clock
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
			if err := c.TickOnce(); err != nil {
				c.log("%v", err)
			}
		}
	}
}
