package autoscale

import (
	"fmt"
	"time"

	"simfs/internal/sched"
)

// PreemptGovernor flips the preemption policy on under sustained demand
// contention and off again after a calm streak, arming the sunk-cost
// guard and (optionally) guided-class victim eligibility alongside. It
// only ever disarms what it armed: if the operator configured preemption
// themselves, the governor observes and stays out of the way.
type PreemptGovernor struct {
	// Policy is the victim-selection policy to arm (default youngest).
	Policy sched.PreemptPolicy
	// SunkCost is the completion fraction past which a victim is spared
	// (0 = no guard).
	SunkCost float64
	// Guided widens victim eligibility to guided-class prefetches.
	Guided bool
	// HighWait is the per-tick demand-wait growth that counts as
	// contention (default 500ms).
	HighWait time.Duration
	// CalmTicks is the calm streak before disarming (default 3).
	CalmTicks int
	// Cooldown is the minimum controller time between actuations.
	Cooldown time.Duration

	armed   bool
	calm    int
	lastAct time.Duration
	acted   bool
}

func (p *PreemptGovernor) Name() string { return "preempt-governor" }

func (p *PreemptGovernor) policy() sched.PreemptPolicy {
	if p.Policy != sched.PreemptOff {
		return p.Policy
	}
	return sched.PreemptYoungest
}

func (p *PreemptGovernor) highWait() time.Duration {
	if p.HighWait > 0 {
		return p.HighWait
	}
	return 500 * time.Millisecond
}

func (p *PreemptGovernor) calmTicks() int {
	if p.CalmTicks > 0 {
		return p.CalmTicks
	}
	return 3
}

func (p *PreemptGovernor) Evaluate(t Tick) []Action {
	if t.First {
		return nil
	}
	if p.acted && t.Now-p.lastAct < p.Cooldown {
		return nil
	}
	contended := t.demandWaitDelta() >= p.highWait()
	switch {
	case contended:
		p.calm = 0
		// Arm only when preemption is off; an operator-armed policy is
		// not ours to manage (and arming again would be a no-op anyway).
		if t.Cur.Cfg.Preempt != sched.PreemptOff || p.armed {
			return nil
		}
		p.armed = true
		p.lastAct, p.acted = t.Now, true
		patch := &SchedPatch{Preempt: policyPtr(p.policy())}
		if p.SunkCost > 0 {
			patch.SunkCost = f64Ptr(p.SunkCost)
		}
		if p.Guided {
			patch.Guided = boolPtr(true)
		}
		return []Action{{
			Patch:  patch,
			Reason: fmt.Sprintf("demand wait grew %v ≥ %v this tick", t.demandWaitDelta(), p.highWait()),
		}}
	case p.armed:
		p.calm++
		if p.calm < p.calmTicks() {
			return nil
		}
		p.armed = false
		p.calm = 0
		p.lastAct, p.acted = t.Now, true
		patch := &SchedPatch{Preempt: policyPtr(sched.PreemptOff)}
		if p.SunkCost > 0 {
			patch.SunkCost = f64Ptr(0)
		}
		if p.Guided {
			patch.Guided = boolPtr(false)
		}
		return []Action{{
			Patch:  patch,
			Reason: fmt.Sprintf("demand wait calm for %d ticks", p.calmTicks()),
		}}
	}
	return nil
}
