package autoscale

import (
	"fmt"
	"time"
)

// DRRTuner arms the scheduler's deficit-round-robin quantum when the
// measured per-client demand load is skewed — one client submitting a
// dominant share of the window's demand steps — and disarms it when the
// load evens out. It requires priority queueing (DRR is scoped inside a
// priority class) and only disarms a quantum it armed itself.
type DRRTuner struct {
	// Quantum is the step credit to arm (default 4).
	Quantum int
	// HighSkew is the trigger: max per-client share of the window's
	// steps, normalized by the active-client count, so 1.0 is a
	// perfectly even split (default 3 — one client at 3× its fair
	// share).
	HighSkew float64
	// MinSteps is the minimum demand steps in the window to judge
	// (default 32).
	MinSteps uint64
	// CalmTicks is the even-load streak before disarming (default 3).
	CalmTicks int
	// Cooldown is the minimum controller time between actuations.
	Cooldown time.Duration

	armed   bool
	calm    int
	lastAct time.Duration
	acted   bool
}

func (p *DRRTuner) Name() string { return "drr-tuner" }

func (p *DRRTuner) quantum() int {
	if p.Quantum > 0 {
		return p.Quantum
	}
	return 4
}

func (p *DRRTuner) highSkew() float64 {
	if p.HighSkew > 0 {
		return p.HighSkew
	}
	return 3
}

func (p *DRRTuner) minSteps() uint64 {
	if p.MinSteps > 0 {
		return p.MinSteps
	}
	return 32
}

func (p *DRRTuner) calmTicks() int {
	if p.CalmTicks > 0 {
		return p.CalmTicks
	}
	return 3
}

// skew measures the window's per-client imbalance: the dominant client's
// share of the delta steps, scaled by the number of active clients
// (share × n), so an even split scores 1 regardless of client count.
// Returns 0 when the window has too little traffic to judge.
func (p *DRRTuner) skew(t Tick) float64 {
	var total, max uint64
	active := 0
	for client, cur := range t.Cur.Loads { //simfs:allow maporder sum, count and max are commutative; the result is order-free
		d := cur - t.Prev.Loads[client]
		if d == 0 {
			continue
		}
		total += d
		active++
		if d > max {
			max = d
		}
	}
	if total < p.minSteps() || active < 2 {
		return 0
	}
	return float64(max) * float64(active) / float64(total)
}

func (p *DRRTuner) Evaluate(t Tick) []Action {
	if t.First {
		return nil
	}
	if !t.Cur.Cfg.Priorities {
		return nil // DRR is scoped inside priority classes
	}
	if p.acted && t.Now-p.lastAct < p.Cooldown {
		return nil
	}
	skew := p.skew(t)
	switch {
	case skew >= p.highSkew():
		p.calm = 0
		if t.Cur.Cfg.DRRQuantum != 0 || p.armed {
			return nil // operator already armed fairness, or we did
		}
		p.armed = true
		p.lastAct, p.acted = t.Now, true
		return []Action{{
			Patch:  &SchedPatch{DRRQuantum: intPtr(p.quantum())},
			Reason: fmt.Sprintf("client skew %.1f ≥ %.1f this window", skew, p.highSkew()),
		}}
	case p.armed:
		p.calm++
		if p.calm < p.calmTicks() {
			return nil
		}
		p.armed = false
		p.calm = 0
		p.lastAct, p.acted = t.Now, true
		return []Action{{
			Patch:  &SchedPatch{DRRQuantum: intPtr(0)},
			Reason: fmt.Sprintf("client load even for %d ticks", p.calmTicks()),
		}}
	}
	return nil
}
