package autoscale

import (
	"context"
	"time"

	"simfs/internal/dvlib"
	"simfs/internal/metrics"
	"simfs/internal/sched"
)

// AdminTarget steers a remote daemon over a dvlib connection — the
// simfs-ctl autoscale mode. Sampling walks the context list and reads
// each context's stats frame; the daemon-global scheduler fields ride
// every frame, so the last one read wins (they describe the same
// ledger). The target caches context handles across ticks and drops
// them when contexts disappear.
type AdminTarget struct {
	C *dvlib.Client
	// Timeout bounds each control-plane call (default 5s).
	Timeout time.Duration

	ctxs map[string]*dvlib.Context
}

// NewAdminTarget wraps a connected client.
func NewAdminTarget(c *dvlib.Client) *AdminTarget {
	return &AdminTarget{C: c, ctxs: make(map[string]*dvlib.Context)}
}

func (at *AdminTarget) callCtx() (context.Context, context.CancelFunc) {
	timeout := at.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	return context.WithTimeout(context.Background(), timeout)
}

func (at *AdminTarget) Sample() (Sample, error) {
	cctx, cancel := at.callCtx()
	defer cancel()
	info, err := at.C.Admin().SchedConfig(cctx)
	if err != nil {
		return Sample{}, err
	}
	preempt, err := sched.ParsePreemptPolicy(info.PreemptPolicy)
	if err != nil {
		return Sample{}, err
	}
	s := Sample{
		Cfg: sched.Config{
			Coalesce: info.Coalesce, Priorities: info.Priorities,
			TotalNodes: info.TotalNodes, Preempt: preempt,
			DRRQuantum:      info.DRRQuantum,
			PreemptSunkCost: info.PreemptSunkCost,
			PreemptGuided:   info.PreemptGuided,
			DemandJoin:      info.DemandJoin,
		},
		Ctxs: make(map[string]CtxSample),
	}
	names, err := at.C.Contexts()
	if err != nil {
		return Sample{}, err
	}
	live := make(map[string]bool, len(names))
	for _, name := range names {
		live[name] = true
		h, ok := at.ctxs[name]
		if !ok {
			if h, err = at.C.Init(name); err != nil {
				continue // racing a deregister; pick it up next tick
			}
			at.ctxs[name] = h
		}
		st, err := h.Stats()
		if err != nil {
			continue
		}
		s.Ctxs[name] = CtxSample{
			Opens: st.Opens, Hits: st.Hits, Misses: st.Misses,
			Restarts: st.Restarts, DemandRestarts: st.DemandRestarts,
			CachePolicy: st.CachePolicy, Draining: st.Draining,
		}
		// The Sched* fields are daemon-global and identical on every
		// frame of the same tick.
		s.Sched = metrics.SchedStats{
			Coalesced: st.SchedCoalesced, Dropped: st.SchedDropped,
			Canceled: st.SchedCanceled, Preempted: st.SchedPreempted,
			Promoted: st.SchedPromoted, QueueDepth: st.SchedQueueDepth,
			QuotaRounds: st.SchedQuotaRounds, QuotaDeferred: st.SchedQuotaDeferred,
			DemandWait: metrics.SchedClassWait{Wait: time.Duration(st.SchedDemandWaitNs)},
			GuidedWait: metrics.SchedClassWait{Wait: time.Duration(st.SchedGuidedWaitNs)},
			AgentWait:  metrics.SchedClassWait{Wait: time.Duration(st.SchedAgentWaitNs)},
		}
		s.Loads = st.SchedClientLoads
	}
	for name := range at.ctxs {
		if !live[name] {
			delete(at.ctxs, name)
		}
	}
	return s, nil
}

func (at *AdminTarget) ApplySched(p SchedPatch) error {
	cctx, cancel := at.callCtx()
	defer cancel()
	_, err := at.C.Admin().SetSchedConfig(cctx, p.Body())
	return err
}

func (at *AdminTarget) SetCachePolicy(ctxName, policy string) error {
	cctx, cancel := at.callCtx()
	defer cancel()
	return at.C.Admin().SetCachePolicy(cctx, ctxName, policy)
}
