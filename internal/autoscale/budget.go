package autoscale

import (
	"fmt"
	"time"
)

// NodeBudget governs the scheduler's global node budget: it widens when
// demand-class queue wait grows across a tick and shrinks back after a
// calm streak, within [Min, Max]. It is inert while the budget is
// unlimited (TotalNodes == 0) — there is nothing to widen — and never
// crosses its bounds, so an operator's hard ceiling holds.
type NodeBudget struct {
	// Min and Max bound the budget (Min must be ≥ 1).
	Min, Max int
	// Step is the widen/shrink increment (default 1).
	Step int
	// HighWait is the per-tick demand-wait growth that triggers widening
	// (default 500ms).
	HighWait time.Duration
	// CalmTicks is the number of consecutive below-threshold ticks
	// before shrinking (default 3) — the hysteresis band.
	CalmTicks int
	// Cooldown is the minimum controller time between actuations.
	Cooldown time.Duration

	calm    int
	lastAct time.Duration
	acted   bool
}

func (p *NodeBudget) Name() string { return "node-budget" }

func (p *NodeBudget) step() int {
	if p.Step > 0 {
		return p.Step
	}
	return 1
}

func (p *NodeBudget) highWait() time.Duration {
	if p.HighWait > 0 {
		return p.HighWait
	}
	return 500 * time.Millisecond
}

func (p *NodeBudget) calmTicks() int {
	if p.CalmTicks > 0 {
		return p.CalmTicks
	}
	return 3
}

func (p *NodeBudget) Evaluate(t Tick) []Action {
	if t.First {
		return nil
	}
	nodes := t.Cur.Cfg.TotalNodes
	if nodes == 0 {
		return nil // unlimited budget: nothing to govern
	}
	if p.acted && t.Now-p.lastAct < p.Cooldown {
		return nil
	}
	delta := t.demandWaitDelta()
	if delta >= p.highWait() {
		p.calm = 0
		if p.Max > 0 && nodes >= p.Max {
			return nil // pinned at the ceiling; keep watching
		}
		next := nodes + p.step()
		if p.Max > 0 && next > p.Max {
			next = p.Max
		}
		p.lastAct, p.acted = t.Now, true
		return []Action{{
			Patch:  &SchedPatch{TotalNodes: intPtr(next)},
			Reason: fmt.Sprintf("demand wait grew %v ≥ %v this tick", delta, p.highWait()),
		}}
	}
	p.calm++
	min := p.Min
	if min < 1 {
		min = 1
	}
	if p.calm >= p.calmTicks() && nodes > min {
		next := nodes - p.step()
		if next < min {
			next = min
		}
		p.calm = 0
		p.lastAct, p.acted = t.Now, true
		return []Action{{
			Patch:  &SchedPatch{TotalNodes: intPtr(next)},
			Reason: fmt.Sprintf("demand wait calm for %d ticks", p.calmTicks()),
		}}
	}
	return nil
}
