package autoscale

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"simfs/internal/netproto"
	"simfs/internal/sched"
)

// Tick is what a policy sees on each control iteration: the current
// sample, the previous one (zero-valued when First), and the controller
// clock. Policies derive rates from Cur−Prev deltas; on the first tick
// there is no window yet, so stateful policies should observe and pass.
type Tick struct {
	Now   time.Duration
	First bool
	Prev  Sample
	Cur   Sample
}

// demandWaitDelta is the growth of cumulative demand-class queueing
// delay across the tick window — the controller's headline contention
// signal.
func (t Tick) demandWaitDelta() time.Duration {
	return t.Cur.Sched.DemandWait.Wait - t.Prev.Sched.DemandWait.Wait
}

// CacheSwitch asks the target to swap one context's cache policy.
type CacheSwitch struct {
	Ctx    string
	Policy string
}

// Action is one policy verdict: a scheduler patch, a cache switch, or
// both, with the trigger spelled out for the decision log.
type Action struct {
	Patch  *SchedPatch
	Cache  *CacheSwitch
	Reason string
}

// describe renders the actuation half of an action for the decision log.
func (a Action) describe() string {
	var parts []string
	if a.Patch != nil && !a.Patch.empty() {
		parts = append(parts, a.Patch.String())
	}
	if a.Cache != nil {
		parts = append(parts, fmt.Sprintf("cache{ctx=%s policy=%s}", a.Cache.Ctx, a.Cache.Policy))
	}
	if len(parts) == 0 {
		return "observe"
	}
	return strings.Join(parts, " ")
}

// Policy is one feedback rule. Evaluate runs on every tick with the
// current window and returns zero or more actions; it must be
// deterministic given the tick (policies may keep internal hysteresis
// state, but no other side effects).
type Policy interface {
	Name() string
	Evaluate(t Tick) []Action
}

// SchedPatch is a partial scheduler reconfiguration: nil fields keep the
// target's current value. It is the policy-facing mirror of
// netproto.SchedSetBody, kept separate so library users never touch the
// wire layer.
type SchedPatch struct {
	TotalNodes *int
	Preempt    *sched.PreemptPolicy
	SunkCost   *float64
	Guided     *bool
	DRRQuantum *int
	DemandJoin *bool
}

func (p SchedPatch) empty() bool {
	return p.TotalNodes == nil && p.Preempt == nil && p.SunkCost == nil &&
		p.Guided == nil && p.DRRQuantum == nil && p.DemandJoin == nil
}

// merge folds q into p without overwriting fields p already claims —
// the single-writer rule's tie-break: the earlier policy wins.
func (p *SchedPatch) merge(q SchedPatch) {
	if p.TotalNodes == nil {
		p.TotalNodes = q.TotalNodes
	}
	if p.Preempt == nil {
		p.Preempt = q.Preempt
	}
	if p.SunkCost == nil {
		p.SunkCost = q.SunkCost
	}
	if p.Guided == nil {
		p.Guided = q.Guided
	}
	if p.DRRQuantum == nil {
		p.DRRQuantum = q.DRRQuantum
	}
	if p.DemandJoin == nil {
		p.DemandJoin = q.DemandJoin
	}
}

// apply folds the patch into a scheduler config (the in-process target's
// UpdateSchedConfig mutator).
func (p SchedPatch) apply(cfg sched.Config) sched.Config {
	if p.TotalNodes != nil {
		cfg.TotalNodes = *p.TotalNodes
	}
	if p.Preempt != nil {
		cfg.Preempt = *p.Preempt
	}
	if p.SunkCost != nil {
		cfg.PreemptSunkCost = *p.SunkCost
	}
	if p.Guided != nil {
		cfg.PreemptGuided = *p.Guided
	}
	if p.DRRQuantum != nil {
		cfg.DRRQuantum = *p.DRRQuantum
	}
	if p.DemandJoin != nil {
		cfg.DemandJoin = *p.DemandJoin
	}
	return cfg
}

// Body renders the patch as a wire-level partial sched-set (the remote
// target's actuation payload).
func (p SchedPatch) Body() netproto.SchedSetBody {
	var b netproto.SchedSetBody
	b.TotalNodes = p.TotalNodes
	if p.Preempt != nil {
		s := p.Preempt.String()
		b.PreemptPolicy = &s
	}
	b.PreemptSunkCost = p.SunkCost
	b.PreemptGuided = p.Guided
	b.DRRQuantum = p.DRRQuantum
	b.DemandJoin = p.DemandJoin
	return b
}

func (p SchedPatch) String() string {
	var parts []string
	if p.TotalNodes != nil {
		parts = append(parts, fmt.Sprintf("nodes=%d", *p.TotalNodes))
	}
	if p.Preempt != nil {
		parts = append(parts, fmt.Sprintf("preempt=%s", *p.Preempt))
	}
	if p.SunkCost != nil {
		parts = append(parts, fmt.Sprintf("sunkcost=%g", *p.SunkCost))
	}
	if p.Guided != nil {
		parts = append(parts, fmt.Sprintf("guided=%v", *p.Guided))
	}
	if p.DRRQuantum != nil {
		parts = append(parts, fmt.Sprintf("quantum=%d", *p.DRRQuantum))
	}
	if p.DemandJoin != nil {
		parts = append(parts, fmt.Sprintf("demandjoin=%v", *p.DemandJoin))
	}
	return "sched{" + strings.Join(parts, " ") + "}"
}

// sortedCtxNames iterates a sample's contexts deterministically.
func sortedCtxNames(ctxs map[string]CtxSample) []string {
	names := make([]string, 0, len(ctxs))
	for name := range ctxs { //simfs:allow maporder the collected keys are sorted before use
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func intPtr(v int) *int                                    { return &v }
func boolPtr(v bool) *bool                                 { return &v }
func f64Ptr(v float64) *float64                            { return &v }
func policyPtr(v sched.PreemptPolicy) *sched.PreemptPolicy { return &v }
