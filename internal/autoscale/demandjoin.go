package autoscale

import (
	"fmt"
	"time"
)

// DemandJoinPromoter arms the scheduler's demand-join rule — a queued
// prefetch job is lifted to demand class when a demand open lands inside
// its range — while the queue carries a backlog, and disarms it once the
// queue drains. With an empty queue the rule can never fire, so leaving
// it off costs nothing and keeps the config at the paper's default; the
// promoter only disarms what it armed.
type DemandJoinPromoter struct {
	// MinDepth is the queue depth that arms the rule (default 1).
	MinDepth int
	// CalmTicks is the empty-queue streak before disarming (default 3).
	CalmTicks int
	// Cooldown is the minimum controller time between actuations.
	Cooldown time.Duration

	armed   bool
	calm    int
	lastAct time.Duration
	acted   bool
}

func (p *DemandJoinPromoter) Name() string { return "demand-join" }

func (p *DemandJoinPromoter) minDepth() int {
	if p.MinDepth > 0 {
		return p.MinDepth
	}
	return 1
}

func (p *DemandJoinPromoter) calmTicks() int {
	if p.CalmTicks > 0 {
		return p.CalmTicks
	}
	return 3
}

func (p *DemandJoinPromoter) Evaluate(t Tick) []Action {
	if t.First {
		return nil
	}
	if p.acted && t.Now-p.lastAct < p.Cooldown {
		return nil
	}
	depth := t.Cur.Sched.QueueDepth
	switch {
	case depth >= p.minDepth():
		p.calm = 0
		if t.Cur.Cfg.DemandJoin || p.armed {
			return nil
		}
		p.armed = true
		p.lastAct, p.acted = t.Now, true
		return []Action{{
			Patch:  &SchedPatch{DemandJoin: boolPtr(true)},
			Reason: fmt.Sprintf("queue depth %d ≥ %d", depth, p.minDepth()),
		}}
	case p.armed:
		p.calm++
		if p.calm < p.calmTicks() {
			return nil
		}
		p.armed = false
		p.calm = 0
		p.lastAct, p.acted = t.Now, true
		return []Action{{
			Patch:  &SchedPatch{DemandJoin: boolPtr(false)},
			Reason: fmt.Sprintf("queue empty for %d ticks", p.calmTicks()),
		}}
	}
	return nil
}
