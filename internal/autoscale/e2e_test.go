package autoscale_test

import (
	"context"
	"testing"
	"time"

	"simfs/internal/autoscale"
	"simfs/internal/des"
	"simfs/internal/dvlib"
	"simfs/internal/model"
	"simfs/internal/netproto"
	"simfs/internal/sched"
	"simfs/internal/server"
)

func testCtx(name string) *model.Context {
	return &model.Context{
		Name:               name,
		Grid:               model.Grid{DeltaD: 1, DeltaR: 4, Timesteps: 64},
		OutputBytes:        256,
		RestartBytes:       128,
		Tau:                2 * time.Millisecond,
		Alpha:              4 * time.Millisecond,
		DefaultParallelism: 1,
		MaxParallelism:     1,
		SMax:               4,
	}
}

// startDaemon boots one daemon with a seed context on an ephemeral port.
func startDaemon(t *testing.T) (*server.Stack, string) {
	t.Helper()
	st, err := server.NewStack(t.TempDir(), 1, "DCL", testCtx("wx"))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.RunInitialSimulation("wx"); err != nil {
		t.Fatal(err)
	}
	if err := st.Server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go st.Server.Serve()
	t.Cleanup(func() {
		st.Close()
		st.Launcher.Wait()
	})
	return st, st.Server.Addr()
}

// TestAutoscaleAdminTargetRoundTrip drives a controller over a live
// daemon: the remote sample must mirror the daemon's scheduler config,
// and an actuated patch must land on it.
func TestAutoscaleAdminTargetRoundTrip(t *testing.T) {
	_, addr := startDaemon(t)
	c, err := dvlib.Dial(addr, "autoscale-e2e")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.HasCapability(netproto.CapAutoscale) {
		t.Fatal("daemon does not advertise the autoscale capability")
	}

	target := autoscale.NewAdminTarget(c)
	s, err := target.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Ctxs["wx"]; !ok {
		t.Fatalf("remote sample missing context wx: %+v", s.Ctxs)
	}

	nodes := 6
	join := true
	sunk := 0.75
	if err := target.ApplySched(autoscale.SchedPatch{
		TotalNodes: &nodes, DemandJoin: &join, SunkCost: &sunk,
	}); err != nil {
		t.Fatal(err)
	}
	s, err = target.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if s.Cfg.TotalNodes != 6 || !s.Cfg.DemandJoin || s.Cfg.PreemptSunkCost != 0.75 {
		t.Fatalf("patch did not land: %+v", s.Cfg)
	}

	if err := target.SetCachePolicy("wx", "LRU"); err != nil {
		t.Fatal(err)
	}
	s, err = target.Sample()
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Ctxs["wx"].CachePolicy; got != "LRU" {
		t.Fatalf("cache policy after switch = %q, want LRU", got)
	}
}

// TestAutoscaleSunkCostValidation pins the daemon-side range check.
func TestAutoscaleSunkCostValidation(t *testing.T) {
	_, addr := startDaemon(t)
	c, err := dvlib.Dial(addr, "autoscale-e2e")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	bad := 1.5
	_, err = c.Admin().SetSchedConfig(context.Background(), dvlib.SchedUpdate{PreemptSunkCost: &bad})
	if err == nil {
		t.Fatal("sunk cost 1.5 accepted, want invalid-argument rejection")
	}
}

// TestAutoscaleReportStatusLedger exercises the daemon's decision
// ledger: a controller reports its decisions, another session reads
// them back, and detaching clears the live state but keeps the trail.
func TestAutoscaleReportStatusLedger(t *testing.T) {
	_, addr := startDaemon(t)
	c, err := dvlib.Dial(addr, "autoscale-ctl")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	bg := context.Background()

	report := netproto.AutoscaleReportBody{
		Active:   true,
		Policies: []string{"node-budget", "cache-switcher"},
		Decisions: []netproto.AutoscaleDecision{
			{AtNs: int64(time.Second), Policy: "node-budget", Action: "sched{nodes=3}", Reason: "demand wait grew"},
		},
	}
	if err := c.Admin().ReportAutoscale(bg, report); err != nil {
		t.Fatal(err)
	}

	viewer, err := dvlib.Dial(addr, "health-viewer")
	if err != nil {
		t.Fatal(err)
	}
	defer viewer.Close()
	info, err := viewer.Admin().AutoscaleStatus(bg)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Active || info.Source != "autoscale-ctl" {
		t.Fatalf("status = %+v, want active from autoscale-ctl", info)
	}
	if len(info.Policies) != 2 || len(info.Decisions) != 1 {
		t.Fatalf("status carried %d policies / %d decisions, want 2 / 1", len(info.Policies), len(info.Decisions))
	}
	if d := info.Decisions[0]; d.Policy != "node-budget" || d.Action != "sched{nodes=3}" {
		t.Fatalf("decision = %+v", d)
	}

	// Detach: live state clears, decision trail survives.
	if err := c.Admin().ReportAutoscale(bg, netproto.AutoscaleReportBody{Active: false}); err != nil {
		t.Fatal(err)
	}
	info, err = viewer.Admin().AutoscaleStatus(bg)
	if err != nil {
		t.Fatal(err)
	}
	if info.Active || len(info.Policies) != 0 {
		t.Fatalf("after detach status = %+v, want inactive with no policies", info)
	}
	if len(info.Decisions) != 1 {
		t.Fatalf("detach dropped the decision trail: %+v", info.Decisions)
	}
}

// TestAutoscaleControllerOverLiveDaemon runs the full loop end to end:
// a wall-clock controller with a demand-join promoter attached over the
// admin target must arm the scheduler rule once a backlog appears.
func TestAutoscaleControllerOverLiveDaemon(t *testing.T) {
	st, addr := startDaemon(t)
	// Shrink the budget so queued work accumulates a visible depth.
	st.V.UpdateSchedConfig(func(cfg sched.Config) sched.Config {
		cfg.Priorities = true
		cfg.TotalNodes = 1
		return cfg
	})

	c, err := dvlib.Dial(addr, "autoscale-ctl")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctrl, err := autoscale.New(autoscale.NewAdminTarget(c),
		[]autoscale.Policy{&autoscale.DemandJoinPromoter{}},
		autoscale.Options{Clock: des.NewWallClock()})
	if err != nil {
		t.Fatal(err)
	}

	wx, err := c.Init("wx")
	if err != nil {
		t.Fatal(err)
	}
	// Saturate the single node with misses so a queue builds.
	for step := 10; step < 40; step += 4 {
		if _, err := wx.Open(wx.Filename(step)); err != nil {
			t.Fatal(err)
		}
	}

	if err := ctrl.TickOnce(); err != nil { // baseline
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := ctrl.TickOnce(); err != nil {
			t.Fatal(err)
		}
		cfg := st.V.SchedConfig()
		if cfg.DemandJoin {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("controller never armed demand-join; decisions: %+v", ctrl.Decisions())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if len(ctrl.Decisions()) == 0 {
		t.Fatal("controller armed demand-join without recording a decision")
	}
}
