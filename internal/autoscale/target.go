package autoscale

import (
	"simfs/internal/core"
	"simfs/internal/metrics"
	"simfs/internal/sched"
)

// CtxSample is one context's counters as seen at a tick. Counters are
// cumulative; policies difference consecutive samples for rates.
type CtxSample struct {
	Opens          int64
	Hits           int64
	Misses         int64
	Restarts       int64
	DemandRestarts int64
	CachePolicy    string
	Draining       bool
}

// Sample is the controller's full observation of the target at one tick.
type Sample struct {
	// Sched is the daemon-global scheduler ledger (cumulative).
	Sched metrics.SchedStats
	// Cfg is the scheduler config in effect — policies read it so they
	// never actuate blind (and never fight operator settings).
	Cfg sched.Config
	// Ctxs maps context name → counters.
	Ctxs map[string]CtxSample
	// Loads maps client name → cumulative demand-class steps submitted,
	// the DRR tuner's skew signal.
	Loads map[string]uint64
}

// Target is what a controller steers: sample the stats surface, apply a
// merged scheduler patch, swap a cache policy. LocalTarget binds to an
// in-process Virtualizer; AdminTarget to a remote daemon over dvlib.
type Target interface {
	Sample() (Sample, error)
	ApplySched(p SchedPatch) error
	SetCachePolicy(ctx, policy string) error
}

// LocalTarget steers an in-process Virtualizer — the deterministic path
// used by experiments and tests.
type LocalTarget struct {
	V *core.Virtualizer
}

func (lt LocalTarget) Sample() (Sample, error) {
	s := Sample{
		Sched: lt.V.SchedStats(),
		Cfg:   lt.V.SchedConfig(),
		Ctxs:  make(map[string]CtxSample),
		Loads: lt.V.Scheduler().ClientLoads(),
	}
	for _, name := range lt.V.ContextNames() {
		st, err := lt.V.Stats(name)
		if err != nil {
			continue // deregistered between list and read
		}
		policy, _ := lt.V.CachePolicyName(name)
		draining, _ := lt.V.Draining(name)
		s.Ctxs[name] = CtxSample{
			Opens: st.Opens, Hits: st.Hits, Misses: st.Misses,
			Restarts: st.Restarts, DemandRestarts: st.DemandRestarts,
			CachePolicy: policy, Draining: draining,
		}
	}
	return s, nil
}

func (lt LocalTarget) ApplySched(p SchedPatch) error {
	lt.V.UpdateSchedConfig(func(cfg sched.Config) sched.Config { return p.apply(cfg) })
	return nil
}

func (lt LocalTarget) SetCachePolicy(ctx, policy string) error {
	return lt.V.SetCachePolicy(ctx, policy)
}
