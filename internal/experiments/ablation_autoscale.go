package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"simfs/internal/autoscale"
	"simfs/internal/metrics"
	"simfs/internal/sched"
	"simfs/internal/simulator"
)

// AblationAutoscale pits the closed-loop controller against every static
// configuration on a phase-changing workload, measuring cumulative
// demand queue-wait. Phase A is the contended scan mix of the preemption
// ablation: eight clients forward-scanning at P=100 under a 400-node
// budget, where preemption and a wider budget pay. Phase B starts when
// phase A drains: six clients re-reading a hot step window that fits the
// cache, where the scan phase's tuning is dead weight. Each static row
// is pinned to one (cache policy × preemption) choice for the whole run
// and to the provisioned 400-node budget; the controller rows start from
// the conservative baseline and steer the knobs from the stats stream.
// The acceptance criterion rides on the "controller" row: its demand
// wait must undercut every static row.
//
// The "controller+join" row additionally arms the demand-join promoter.
// Its demand-wait cell is NOT comparable to the others: promotion moves
// client-blocking waits that the other rows bill to the prefetch classes
// into the demand ledger, so the row measures strictly more. Its win
// shows up in the class-neutral series instead — client blocked time and
// median completion.
func AblationAutoscale(seed int64) (*metrics.Table, error) {
	tab := metrics.NewTable("Ablation — closed-loop autoscale vs static configs (node budget 400)", "mode", "value")
	modes := autoscaleModes()
	results, err := RunCells(0, len(modes), func(i int) (AutoscaleResult, error) {
		m := modes[i]
		cell, err := runAutoscaleCell(seed, m.cache, m.cfg, m.policies, m.tick)
		if err != nil {
			return AutoscaleResult{}, fmt.Errorf("autoscale ablation %s: %w", m.name, err)
		}
		return cell, nil
	})
	if err != nil {
		return nil, err
	}
	for i, mode := range modes {
		r := results[i]
		tab.Series("demand wait (s)").Add(mode.name, r.DemandWait.Seconds())
		tab.Series("client blocked (s)").Add(mode.name, r.Blocked.Seconds())
		tab.Series("median completion (s)").Add(mode.name, r.Median)
		tab.Series("restarts").Add(mode.name, float64(r.Restarts))
		tab.Series("preempted").Add(mode.name, float64(r.Preempted))
		tab.Series("promoted").Add(mode.name, float64(r.Promoted))
		tab.Series("decisions").Add(mode.name, float64(r.Decisions))
	}
	return tab, nil
}

// autoscaleMode is one row of the ablation: a fixed (cache × sched)
// configuration, optionally with a ticking controller attached.
type autoscaleMode struct {
	name     string
	cache    string
	cfg      sched.Config
	policies []autoscale.Policy
	tick     time.Duration
}

// autoscaleModes builds the ablation's row set. Policies carry per-run
// hysteresis state, so each call constructs fresh instances.
func autoscaleModes() []autoscaleMode {
	base := sched.Config{Coalesce: true, Priorities: true, TotalNodes: 400}
	return []autoscaleMode{
		{name: "static dcl", cache: "DCL", cfg: base},
		{name: "static lru", cache: "LRU", cfg: base},
		{name: "static dcl+preempt", cache: "DCL", cfg: withPreempt(base, sched.PreemptYoungest, 0)},
		{name: "static lru+preempt", cache: "LRU", cfg: withPreempt(base, sched.PreemptYoungest, 0)},
		{name: "controller", cache: "DCL", cfg: base, tick: 10 * time.Second,
			policies: controllerPolicies(false)},
		{name: "controller+join", cache: "DCL", cfg: base, tick: 10 * time.Second,
			policies: controllerPolicies(true)},
	}
}

// RunAutoscaleMode runs one named row of the autoscale ablation — the
// benchmark scoreboard (make bench-autoscale) prices single modes
// without paying for the whole table.
func RunAutoscaleMode(seed int64, mode string) (AutoscaleResult, error) {
	for _, m := range autoscaleModes() {
		if m.name == mode {
			return runAutoscaleCell(seed, m.cache, m.cfg, m.policies, m.tick)
		}
	}
	return AutoscaleResult{}, fmt.Errorf("autoscale ablation: unknown mode %q", mode)
}

// controllerPolicies is the controller rows' policy set: every knob the
// static rows hold fixed, steered from the stats stream. join adds the
// demand-join promoter (the "controller+join" row).
func controllerPolicies(join bool) []autoscale.Policy {
	pols := []autoscale.Policy{
		&autoscale.NodeBudget{Min: 400, Max: 800, Step: 100,
			HighWait: 2 * time.Second, CalmTicks: 3, Cooldown: 30 * time.Second},
		&autoscale.PreemptGovernor{SunkCost: 0.8,
			HighWait: 2 * time.Second, CalmTicks: 6, Cooldown: 30 * time.Second},
		&autoscale.CacheSwitcher{Policies: []string{"DCL", "LRU"},
			LowHit: 0.5, MinOpens: 16, BadTicks: 2, Cooldown: 60 * time.Second},
	}
	if join {
		pols = append(pols, &autoscale.DemandJoinPromoter{CalmTicks: 6, Cooldown: 30 * time.Second})
	}
	return pols
}

// AutoscaleResult is one mode's outcome.
type AutoscaleResult struct {
	DemandWait time.Duration
	// Blocked is the class-neutral client metric: total time analyses
	// spent blocked on missing files, whatever queue class served them.
	Blocked   time.Duration
	Median    float64
	Restarts  int64
	Preempted uint64
	Promoted  uint64
	Decisions int
	// Log is the controller row's full decision trail (nil on static
	// rows) — surfaced so tests can explain a regression in the figure.
	Log []autoscale.Decision
}

// runAutoscaleCell executes the two-phase workload on a fresh
// virtual-time stack, optionally with a controller attached.
func runAutoscaleCell(seed int64, cachePolicy string, cfg sched.Config, policies []autoscale.Policy, tick time.Duration) (AutoscaleResult, error) {
	ctx := simulator.CosmoScaling()
	ctx.MaxCacheBytes = 128 * ctx.OutputBytes
	// Contention lives on the node budget, not smax (as in the
	// preemption ablation).
	ctx.SMax = 10000
	eng, v, err := stackSched(ctx, cfg)
	if err != nil {
		return AutoscaleResult{}, err
	}
	if cachePolicy != "DCL" {
		if err := v.SetCachePolicy(ctx.Name, cachePolicy); err != nil {
			return AutoscaleResult{}, err
		}
	}

	const scanClients, rereadClients = 8, 6
	total := scanClients + rereadClients
	completions := make([]time.Duration, 0, total)
	analyses := make([]*Analysis, 0, total)
	remaining := total
	scanLeft := scanClients
	var aborted error
	rng := rand.New(rand.NewSource(seed))
	no := ctx.Grid.NumOutputSteps()

	// Phase B: a hot window that fits the cache comfortably, re-read
	// four times by each client. First passes miss and re-simulate;
	// later passes hit if the replacement policy keeps the window.
	hotStart := no - 200
	const hotWindow = 24
	startPhaseB := func() {
		for i := 0; i < rereadClients; i++ {
			var steps []int
			for pass := 0; pass < 4; pass++ {
				steps = append(steps, Forward(hotStart, hotWindow)...)
			}
			a := &Analysis{
				Engine: eng, V: v, Ctx: ctx,
				Client: fmt.Sprintf("reread-%d", i),
				Steps:  steps, TauCli: time.Second,
				OnDone: func(d time.Duration) {
					completions = append(completions, d)
					remaining--
				},
				OnAbort: func(msg string) { aborted = fmt.Errorf("reread: %s", msg) },
			}
			analyses = append(analyses, a)
			eng.Schedule(time.Duration(i*5)*time.Second, a.Start)
		}
	}

	// Phase A: the contended scan mix. The last completion opens phase B.
	for i := 0; i < scanClients; i++ {
		start := rng.Intn(no-400-48) + 1
		a := &Analysis{
			Engine: eng, V: v, Ctx: ctx,
			Client: fmt.Sprintf("scan-%d", i),
			Steps:  Forward(start, 48), TauCli: 2 * time.Second,
			OnDone: func(d time.Duration) {
				completions = append(completions, d)
				remaining--
				if scanLeft--; scanLeft == 0 {
					eng.Schedule(10*time.Second, startPhaseB)
				}
			},
			OnAbort: func(msg string) { aborted = fmt.Errorf("scan: %s", msg) },
		}
		analyses = append(analyses, a)
		eng.Schedule(time.Duration(rng.Intn(60))*time.Second, a.Start)
	}

	var ctrl *autoscale.Controller
	if tick > 0 {
		ctrl, err = autoscale.New(autoscale.LocalTarget{V: v}, policies,
			autoscale.Options{Clock: eng, LogSize: 256})
		if err != nil {
			return AutoscaleResult{}, err
		}
		var tickFn func()
		tickFn = func() {
			if remaining == 0 {
				return // let the event heap drain
			}
			_ = ctrl.TickOnce()
			eng.Schedule(tick, tickFn)
		}
		eng.Schedule(tick, tickFn)
	}

	if !eng.Run(80_000_000) {
		return AutoscaleResult{}, fmt.Errorf("runaway event loop")
	}
	if aborted != nil {
		return AutoscaleResult{}, aborted
	}
	if len(completions) != total {
		return AutoscaleResult{}, fmt.Errorf("only %d/%d analyses completed", len(completions), total)
	}
	st, err := v.Stats(ctx.Name)
	if err != nil {
		return AutoscaleResult{}, err
	}
	ss := v.SchedStats()
	var xs []float64
	for _, d := range completions {
		xs = append(xs, d.Seconds())
	}
	cell := AutoscaleResult{
		DemandWait: ss.DemandWait.Wait,
		Median:     metrics.Summarize(xs).Median,
		Restarts:   st.Restarts,
		Preempted:  ss.Preempted,
		Promoted:   ss.Promoted,
	}
	for _, a := range analyses {
		cell.Blocked += a.Waits
	}
	if ctrl != nil {
		cell.Log = ctrl.Decisions()
		cell.Decisions = len(cell.Log)
	}
	return cell, nil
}
