package experiments

import (
	"testing"
	"time"

	"simfs/internal/model"
)

func multiCtx(cacheSteps int) *model.Context {
	c := &model.Context{
		Name:               "multi",
		Grid:               model.Grid{DeltaD: 1, DeltaR: 8, Timesteps: 512},
		OutputBytes:        1,
		MaxCacheBytes:      int64(cacheSteps),
		Tau:                time.Second,
		Alpha:              4 * time.Second,
		DefaultParallelism: 1,
		MaxParallelism:     1,
		SMax:               4,
	}
	c.ApplyDefaults()
	return c
}

func TestMultiAnalysisBasics(t *testing.T) {
	r, err := MultiAnalysis(multiCtx(0), MultiAnalysisConfig{
		Clients: 4, Steps: 40, TauCli: 200 * time.Millisecond, Seed: 3, Backward: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Completion) != 4 {
		t.Fatalf("completions = %d", len(r.Completion))
	}
	for i, d := range r.Completion {
		if d <= 0 {
			t.Errorf("analysis %d completion %v", i, d)
		}
	}
	if r.Stats.StepsProduced == 0 || r.Stats.Restarts == 0 {
		t.Errorf("no re-simulation recorded: %+v", r.Stats)
	}
}

func TestMultiAnalysisValidation(t *testing.T) {
	if _, err := MultiAnalysis(multiCtx(0), MultiAnalysisConfig{Clients: 0}); err == nil {
		t.Error("zero clients accepted")
	}
}

func TestMultiAnalysisInterference(t *testing.T) {
	// With a tight shared cache, more concurrent clients with disjoint
	// working sets force more re-simulated steps per client than a single
	// client does.
	single, err := MultiAnalysis(multiCtx(32), MultiAnalysisConfig{
		Clients: 1, Steps: 48, TauCli: 100 * time.Millisecond, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	crowd, err := MultiAnalysis(multiCtx(32), MultiAnalysisConfig{
		Clients: 6, Steps: 48, TauCli: 100 * time.Millisecond, Seed: 5, Backward: 0.33,
	})
	if err != nil {
		t.Fatal(err)
	}
	perClientSingle := float64(single.Stats.StepsProduced)
	perClientCrowd := float64(crowd.Stats.StepsProduced) / 6
	if perClientCrowd < perClientSingle*0.8 {
		t.Errorf("interference invisible: single=%.0f steps, crowded=%.0f steps/client",
			perClientSingle, perClientCrowd)
	}
}

func TestMultiAnalysisSweepTable(t *testing.T) {
	tab, err := MultiAnalysisSweep(multiCtx(64), []int{1, 4}, 32, 100*time.Millisecond, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []string{"1", "4"} {
		if _, ok := tab.Series("median completion (s)").At(x); !ok {
			t.Errorf("missing completion cell at %s", x)
		}
		if _, ok := tab.Series("steps produced").At(x); !ok {
			t.Errorf("missing steps cell at %s", x)
		}
	}
}
