package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"

	"simfs/internal/costmodel"
	"simfs/internal/metrics"
)

func TestRunCellsOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		got, err := RunCells(workers, 100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: cell %d = %d", workers, i, v)
			}
		}
	}
}

func TestRunCellsEmpty(t *testing.T) {
	got, err := RunCells[int](4, 0, func(int) (int, error) { panic("must not run") })
	if err != nil || got != nil {
		t.Fatalf("empty grid: %v, %v", got, err)
	}
}

// The reported error must be the lowest-numbered failing cell's,
// independent of which worker hits its failure first.
func TestRunCellsDeterministicError(t *testing.T) {
	fail := map[int]bool{3: true, 17: true, 40: true}
	for _, workers := range []int{1, 8} {
		_, err := RunCells(workers, 64, func(i int) (int, error) {
			if fail[i] {
				return 0, fmt.Errorf("cell %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "cell 3 failed" {
			t.Errorf("workers=%d: err = %v, want cell 3's", workers, err)
		}
	}
}

func TestRunCellsStopsClaimingAfterError(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("boom")
	_, err := RunCells(2, 10_000, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); n > 1000 {
		t.Errorf("ran %d cells after an early failure", n)
	}
}

// Concurrency stress for the race detector: many workers over many cells,
// each touching only its own result slot.
func TestRunCellsRaceStress(t *testing.T) {
	const cells = 2000
	workers := 4 * runtime.NumCPU()
	if workers < 16 {
		workers = 16
	}
	got, err := RunCells(workers, cells, func(i int) ([]int, error) {
		buf := make([]int, 8)
		for j := range buf {
			buf[j] = i + j
		}
		return buf, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, buf := range got {
		for j, v := range buf {
			if v != i+j {
				t.Fatalf("cell %d slot %d = %d", i, j, v)
			}
		}
	}
}

func renderString(t *testing.T, tab *metrics.Table) string {
	t.Helper()
	var b strings.Builder
	if err := tab.Render(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// The headline determinism guarantee: the rendered tables of Fig. 5 and
// Fig. 12 are byte-identical whether the grid runs on one worker or many.
func TestFig05ParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size replay in -short mode")
	}
	cfg := DefaultFig05()
	cfg.Reps = 3

	cfg.Workers = 1
	s1, r1, err := Fig05(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// NumCPU, but at least enough goroutines to interleave on small hosts.
	cfg.Workers = max(runtime.NumCPU(), 8)
	sN, rN, err := Fig05(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := renderString(t, s1), renderString(t, sN); a != b {
		t.Errorf("steps tables diverge between -j 1 and -j %d:\n--- j=1\n%s--- j=N\n%s", cfg.Workers, a, b)
	}
	if a, b := renderString(t, r1), renderString(t, rN); a != b {
		t.Errorf("restarts tables diverge between -j 1 and -j %d", cfg.Workers)
	}
}

func TestFig12ParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("cost replay in -short mode")
	}
	w := DefaultCostWorkload()

	SetWorkers(1)
	defer SetWorkers(0)
	t1, err := Fig12(w, costmodel.Azure)
	if err != nil {
		t.Fatal(err)
	}
	SetWorkers(max(runtime.NumCPU(), 8))
	tN, err := Fig12(w, costmodel.Azure)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := renderString(t, t1), renderString(t, tN); a != b {
		t.Errorf("Fig. 12 diverges between -j 1 and -j N:\n--- j=1\n%s--- j=N\n%s", a, b)
	}
}
