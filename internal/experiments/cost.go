package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"simfs/internal/costmodel"
	"simfs/internal/metrics"
	"simfs/internal/model"
	"simfs/internal/simulator"
	"simfs/internal/trace"
)

// CostWorkload describes the synthetic analysis population of the cost
// studies (Sec. V-A): forward-in-time analyses starting at random output
// steps, with a configurable execution overlap.
type CostWorkload struct {
	NumAnalyses int
	Overlap     float64 // fraction of interleaved accesses (0..1)
	MinLen      int
	MaxLen      int
	// StartMax bounds the uniformly random start step. The paper does not
	// publish it; it is calibrated so the in-situ/SimFS crossover falls
	// near 20 analyses as reported in Sec. V-A (see EXPERIMENTS.md).
	StartMax int
	Seed     int64
}

// DefaultCostWorkload returns the calibrated workload: 100 analyses, 50%
// overlap, 100–400 accesses each.
func DefaultCostWorkload() CostWorkload {
	return CostWorkload{
		NumAnalyses: 100,
		Overlap:     0.5,
		MinLen:      100,
		MaxLen:      400,
		StartMax:    2000,
		Seed:        1,
	}
}

// generate builds the access trace plus the per-analysis starts/lengths
// the in-situ model needs.
func (w CostWorkload) generate(ctx *model.Context) (accesses []trace.Access, starts, lengths []int) {
	rng := rand.New(rand.NewSource(w.Seed))
	no := ctx.Grid.NumOutputSteps()
	startMax := w.StartMax
	if startMax <= 0 || startMax > no {
		startMax = no
	}
	for a := 0; a < w.NumAnalyses; a++ {
		start := rng.Intn(startMax) + 1
		length := w.MinLen
		if w.MaxLen > w.MinLen {
			length += rng.Intn(w.MaxLen - w.MinLen + 1)
		}
		if start+length > no {
			length = no - start
		}
		starts = append(starts, start)
		lengths = append(lengths, length)
		for i := 0; i < length; i++ {
			accesses = append(accesses, trace.Access{Step: start + i, Analysis: a})
		}
	}
	return trace.Interleave(accesses, w.Overlap, w.Seed+1), starts, lengths
}

// costCtx clones the COSMO cost context with the given restart interval
// (hours) and cache fraction.
func costCtx(deltaRHours int, cacheFrac float64) *model.Context {
	ctx := simulator.CosmoCost()
	ctx.Grid.DeltaR = deltaRHours * 3600 / 20 // 20 s timesteps
	ctx.MaxCacheBytes = int64(cacheFrac * float64(ctx.TotalOutputBytes()))
	return ctx
}

// resimVolume replays the workload through the caching layer (DCL, as
// fixed after Fig. 5) and returns V(γ∆t).
func resimVolume(ctx *model.Context, w CostWorkload) (int, error) {
	accesses, _, _ := w.generate(ctx)
	res, err := Replay(ctx, "DCL", accesses)
	if err != nil {
		return 0, err
	}
	return res.ProducedSteps, nil
}

// drFrac is one (restart interval, cache fraction) point of a cost-model
// grid; the replay-heavy V(γ∆t) term of each point is an independent
// experiment cell.
type drFrac struct {
	drh  int
	frac float64
}

// resimVolumeGrid computes V(γ∆t) for every grid point on the worker
// pool, in grid order. Each cell rebuilds its context and workload from
// the cell parameters alone, so the result is independent of the worker
// count.
func resimVolumeGrid(cells []drFrac, workload func(cell int) CostWorkload) ([]int, error) {
	return RunCells(0, len(cells), func(i int) (int, error) {
		return resimVolume(costCtx(cells[i].drh, cells[i].frac), workload(i))
	})
}

// Months for the availability-period axis of Figs. 1 and 12.
var availabilityMonths = []struct {
	label  string
	months float64
}{
	{"6m", 6}, {"1y", 12}, {"2y", 24}, {"3y", 36}, {"4y", 48}, {"5y", 60},
}

// Fig01 reproduces the headline cost figure: 100 analyses at 50% overlap,
// Δr = 8h, SimFS cache 25%, over availability periods from 6 months to 5
// years.
func Fig01(w CostWorkload, p costmodel.Prices) (*metrics.Table, error) {
	tab := metrics.NewTable("Fig. 1 — aggregated analysis cost", "availability", "cost (x1000$)")
	ctx := costCtx(8, 0.25)
	v, err := resimVolume(ctx, w)
	if err != nil {
		return nil, err
	}
	_, starts, lengths := w.generate(ctx)
	inSitu := costmodel.InSitu(ctx, starts, lengths, p)
	for _, am := range availabilityMonths {
		tab.Series("on-disk").Add(am.label, costmodel.OnDisk(ctx, am.months, p)/1000)
		tab.Series("in-situ").Add(am.label, inSitu/1000)
		tab.Series("SimFS").Add(am.label, costmodel.SimFS(ctx, am.months, 0.25, v, p)/1000)
	}
	return tab, nil
}

// Fig12 sweeps the availability period for Δr ∈ {4h, 8h, 16h} and SimFS
// cache sizes of 25% and 50%. The six (Δr, cache) volumes run in
// parallel.
func Fig12(w CostWorkload, p costmodel.Prices) (*metrics.Table, error) {
	tab := metrics.NewTable("Fig. 12 — cost vs availability period", "availability", "cost (x1000$)")
	var cells []drFrac
	for _, drh := range []int{4, 8, 16} {
		for _, frac := range []float64{0.25, 0.50} {
			cells = append(cells, drFrac{drh, frac})
		}
	}
	vols, err := resimVolumeGrid(cells, func(int) CostWorkload { return w })
	if err != nil {
		return nil, err
	}
	for i, cell := range cells {
		ctx := costCtx(cell.drh, cell.frac)
		name := fmt.Sprintf("SimFS(%d%%) Δr=%dh", int(cell.frac*100), cell.drh)
		for _, am := range availabilityMonths {
			tab.Series(name).Add(am.label, costmodel.SimFS(ctx, am.months, cell.frac, vols[i], p)/1000)
		}
	}
	ref := costCtx(8, 0.25)
	_, starts, lengths := w.generate(ref)
	inSitu := costmodel.InSitu(ref, starts, lengths, p)
	for _, am := range availabilityMonths {
		tab.Series("on-disk").Add(am.label, costmodel.OnDisk(ref, am.months, p)/1000)
		tab.Series("in-situ").Add(am.label, inSitu/1000)
	}
	return tab, nil
}

// Fig13 sweeps the analyses execution overlap at ∆t = 2 years. All
// (overlap, Δr, cache) volumes run in parallel.
func Fig13(w CostWorkload, p costmodel.Prices) (*metrics.Table, error) {
	tab := metrics.NewTable("Fig. 13 — cost vs analyses overlap (∆t=2y)", "overlap %", "cost (x1000$)")
	const months = 24.0
	overlaps := []int{0, 25, 50, 75, 100}
	var cells []drFrac
	var works []CostWorkload
	for _, overlapPct := range overlaps {
		wo := w
		wo.Overlap = float64(overlapPct) / 100
		for _, drh := range []int{4, 8, 16} {
			for _, frac := range []float64{0.25, 0.50} {
				cells = append(cells, drFrac{drh, frac})
				works = append(works, wo)
			}
		}
	}
	vols, err := resimVolumeGrid(cells, func(i int) CostWorkload { return works[i] })
	if err != nil {
		return nil, err
	}
	i := 0
	for _, overlapPct := range overlaps {
		wo := w
		wo.Overlap = float64(overlapPct) / 100
		x := fmt.Sprintf("%d", overlapPct)
		for _, drh := range []int{4, 8, 16} {
			for _, frac := range []float64{0.25, 0.50} {
				ctx := costCtx(drh, frac)
				name := fmt.Sprintf("SimFS(%d%%) Δr=%dh", int(frac*100), drh)
				tab.Series(name).Add(x, costmodel.SimFS(ctx, months, frac, vols[i], p)/1000)
				i++
			}
		}
		ref := costCtx(8, 0.25)
		_, starts, lengths := wo.generate(ref)
		tab.Series("on-disk").Add(x, costmodel.OnDisk(ref, months, p)/1000)
		tab.Series("in-situ").Add(x, costmodel.InSitu(ref, starts, lengths, p)/1000)
	}
	return tab, nil
}

// Fig14 sweeps the number of analyses at ∆t = 2 years and 50% overlap.
// All (analyses, Δr, cache) volumes run in parallel.
func Fig14(w CostWorkload, p costmodel.Prices) (*metrics.Table, error) {
	tab := metrics.NewTable("Fig. 14 — cost vs number of analyses (∆t=2y)", "analyses", "cost (x1000$)")
	const months = 24.0
	counts := []int{1, 5, 10, 20, 40, 60, 80, 100, 125}
	var cells []drFrac
	var works []CostWorkload
	for _, n := range counts {
		wn := w
		wn.NumAnalyses = n
		for _, drh := range []int{4, 8, 16} {
			for _, frac := range []float64{0.25, 0.50} {
				cells = append(cells, drFrac{drh, frac})
				works = append(works, wn)
			}
		}
	}
	vols, err := resimVolumeGrid(cells, func(i int) CostWorkload { return works[i] })
	if err != nil {
		return nil, err
	}
	i := 0
	for _, n := range counts {
		wn := w
		wn.NumAnalyses = n
		x := fmt.Sprintf("%d", n)
		for _, drh := range []int{4, 8, 16} {
			for _, frac := range []float64{0.25, 0.50} {
				ctx := costCtx(drh, frac)
				name := fmt.Sprintf("SimFS(%d%%) Δr=%dh", int(frac*100), drh)
				tab.Series(name).Add(x, costmodel.SimFS(ctx, months, frac, vols[i], p)/1000)
				i++
			}
		}
		ref := costCtx(8, 0.25)
		_, starts, lengths := wn.generate(ref)
		tab.Series("on-disk").Add(x, costmodel.OnDisk(ref, months, p)/1000)
		tab.Series("in-situ").Add(x, costmodel.InSitu(ref, starts, lengths, p)/1000)
	}
	return tab, nil
}

// Fig15a builds the cost-effectiveness heatmap: the ratio between the
// cheapest standard solution and SimFS over a grid of storage and compute
// prices (100 analyses, 50% overlap, ∆t = 3y, cache 25%, Δr = 8h).
func Fig15a(w CostWorkload) (*metrics.Heatmap, error) {
	h := metrics.NewHeatmap("Fig. 15a — cost ratio min(on-disk,in-situ)/SimFS", "storage $/GiB/mo", "compute $/node/h")
	const months = 36.0
	ctx := costCtx(8, 0.25)
	v, err := resimVolume(ctx, w)
	if err != nil {
		return nil, err
	}
	_, starts, lengths := w.generate(ctx)
	for _, cs := range []float64{0.05, 0.10, 0.15, 0.20, 0.25, 0.30} {
		for _, cc := range []float64{0.5, 1.0, 1.5, 2.0, 2.5, 3.0} {
			p := costmodel.Prices{ComputePerNodeHour: cc, StoragePerGiBMonth: cs}
			ratio := costmodel.Ratio(
				costmodel.OnDisk(ctx, months, p),
				costmodel.InSitu(ctx, starts, lengths, p),
				costmodel.SimFS(ctx, months, 0.25, v, p),
			)
			h.Set(fmt.Sprintf("%.2f", cs), fmt.Sprintf("%.1f", cc), ratio)
		}
	}
	return h, nil
}

// Fig15bc sweeps the restart interval (restart-file space) for cache sizes
// of 25% and 50%, reporting the total cost (15b) and the aggregate
// re-simulation compute time (15c) at ∆t = 3y. The eight (Δr, cache)
// volumes run in parallel.
func Fig15bc(w CostWorkload, p costmodel.Prices) (cost, ctime *metrics.Table, err error) {
	cost = metrics.NewTable("Fig. 15b — cost over restart space (∆t=3y)", "Δr (restart space)", "cost (x1000$)")
	ctime = metrics.NewTable("Fig. 15c — re-simulation time over restart space", "Δr (restart space)", "compute time (hours)")
	const months = 36.0
	drhs := []int{4, 8, 16, 32}
	var cells []drFrac
	for _, drh := range drhs {
		for _, frac := range []float64{0.25, 0.50} {
			cells = append(cells, drFrac{drh, frac})
		}
	}
	vols, verr := resimVolumeGrid(cells, func(int) CostWorkload { return w })
	if verr != nil {
		return nil, nil, verr
	}
	i := 0
	for _, drh := range drhs {
		ref := costCtx(drh, 0.25)
		x := fmt.Sprintf("%dh (%.2f TiB)", drh, costmodel.RestartSpaceGiB(ref)/1024)
		for _, frac := range []float64{0.25, 0.50} {
			ctx := costCtx(drh, frac)
			name := fmt.Sprintf("cache %d%%", int(frac*100))
			cost.Series(name).Add(x, costmodel.SimFS(ctx, months, frac, vols[i], p)/1000)
			ctime.Series(name).Add(x, costmodel.ResimTime(vols[i], ctx.Tau).Hours())
			i++
		}
		cost.Series("on-disk").Add(x, costmodel.OnDisk(ref, months, p)/1000)
	}
	return cost, ctime, nil
}

// ResimTimeOf exposes the re-simulation wall time of a volume for
// reporting (Fig. 15c annotations).
func ResimTimeOf(ctx *model.Context, v int) time.Duration {
	return costmodel.ResimTime(v, ctx.Tau)
}
