package experiments

import (
	"fmt"
	"time"

	"simfs/internal/batch"
	"simfs/internal/cache"
	"simfs/internal/metrics"
	"simfs/internal/model"
	"simfs/internal/simulator"
)

// Ablation studies for the design choices DESIGN.md calls out. They are
// not paper figures; they quantify how much each mechanism contributes.
// Like the figure runners, each sweep fans its independent cells across
// the worker pool and merges in configuration order.

// AblationPrefetchStrategies compares analysis completion time with
// prefetching disabled, with a single prefetched simulation (masking
// only, smax=1 leaves no room beyond the demand simulation), and with
// full bandwidth matching at increasing smax. COSMO configuration, m=72.
func AblationPrefetchStrategies() (*metrics.Table, error) {
	tab := metrics.NewTable("Ablation — prefetch strategies (COSMO, m=72)", "mode", "running time (s)")
	const m = 72
	tauCli := 100 * time.Millisecond

	modes := []struct {
		name string
		mut  func(*model.Context)
	}{
		{"no prefetch", func(c *model.Context) { c.NoPrefetch = true }},
		{"masking only (smax=2)", func(c *model.Context) { c.SMax = 2 }},
		{"bandwidth (smax=4)", func(c *model.Context) { c.SMax = 4 }},
		{"bandwidth (smax=8)", func(c *model.Context) { c.SMax = 8 }},
	}
	results, err := RunCells(0, len(modes), func(i int) (time.Duration, error) {
		ctx := scalingCtx(simulator.CosmoScaling, 8)
		modes[i].mut(ctx)
		elapsed, err := runAnalysis(ctx, Forward(1, m), tauCli, nil)
		if err != nil {
			return 0, fmt.Errorf("ablation %s: %w", modes[i].name, err)
		}
		return elapsed, nil
	})
	if err != nil {
		return nil, err
	}
	for i, mode := range modes {
		tab.Series("forward").Add(mode.name, results[i].Seconds())
	}
	return tab, nil
}

// AblationDoubling compares the s-doubling ramp-up against launching sopt
// simulations immediately at each prefetching step (Sec. IV-B1b's
// trade-off between reactivity and wasted work).
func AblationDoubling() (*metrics.Table, error) {
	tab := metrics.NewTable("Ablation — ramp-up vs immediate sopt (COSMO, m=144)", "mode", "value")
	const m = 144
	tauCli := 100 * time.Millisecond
	modes := []bool{false, true}
	type result struct {
		elapsed  time.Duration
		produced float64
		launches float64
	}
	results, err := RunCells(0, len(modes), func(i int) (result, error) {
		rampUp := modes[i]
		ctx := scalingCtx(simulator.CosmoScaling, 8)
		ctx.RampUp = rampUp
		name := "immediate"
		if rampUp {
			name = "doubling"
		}
		eng, v, err := stackFor(ctx)
		if err != nil {
			return result{}, err
		}
		var elapsed time.Duration
		a := &Analysis{Engine: eng, V: v, Ctx: ctx, Client: "abl", Steps: Forward(1, m), TauCli: tauCli,
			OnDone: func(d time.Duration) { elapsed = d }}
		a.Start()
		if !eng.Run(20_000_000) {
			return result{}, fmt.Errorf("ablation doubling (%s): runaway", name)
		}
		st, _ := v.Stats(ctx.Name)
		return result{elapsed, float64(st.StepsProduced), float64(st.Restarts)}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, rampUp := range modes {
		name := "immediate"
		if rampUp {
			name = "doubling"
		}
		tab.Series("running time (s)").Add(name, results[i].elapsed.Seconds())
		// Wasted work: produced steps beyond what the analysis read.
		tab.Series("steps produced").Add(name, results[i].produced)
		tab.Series("launches").Add(name, results[i].launches)
	}
	return tab, nil
}

// AblationPinPressure measures how each replacement scheme copes when a
// growing fraction of the cache is pinned by concurrent analyses: the
// number of forced overflows (inserts that found every candidate pinned).
func AblationPinPressure() (*metrics.Table, error) {
	tab := metrics.NewTable("Ablation — eviction under pin pressure", "pinned fraction", "overflow events")
	const capacity = 64
	fracs := []float64{0, 0.25, 0.5, 0.9}
	type cell struct {
		pol  string
		frac float64
	}
	var cells []cell
	for _, pol := range cache.PolicyNames() {
		for _, frac := range fracs {
			cells = append(cells, cell{pol, frac})
		}
	}
	results, err := RunCells(0, len(cells), func(i int) (float64, error) {
		pol, frac := cells[i].pol, cells[i].frac
		p, err := cache.NewPolicy(pol, capacity)
		if err != nil {
			return 0, err
		}
		c := cache.New(p, capacity) // 1-byte entries
		pinned := int(frac * capacity)
		for i := 0; i < capacity; i++ {
			if _, err := c.Insert(fmt.Sprintf("base%03d", i), 1, 1); err != nil {
				return 0, err
			}
		}
		n := 0
		for i := 0; i < capacity && n < pinned; i++ {
			if c.Pin(fmt.Sprintf("base%03d", i)) == nil {
				n++
			}
		}
		for i := 0; i < 4*capacity; i++ {
			if _, err := c.Insert(fmt.Sprintf("new%04d", i), 1, i%12+1); err != nil {
				return 0, err
			}
		}
		return float64(c.Stats().PinBlocked), nil
	})
	if err != nil {
		return nil, err
	}
	for i, cl := range cells {
		tab.Series(cl.pol).Add(fmt.Sprintf("%.0f%%", cl.frac*100), results[i])
	}
	return tab, nil
}

// AblationEMA measures the αsim-estimation quality under noisy batch
// queueing: analysis completion time for different EMA smoothing factors
// when queueing delays are exponentially distributed (Sec. IV-C1c).
func AblationEMA() (*metrics.Table, error) {
	tab := metrics.NewTable("Ablation — EMA smoothing under queueing noise (COSMO, m=144)", "smoothing", "running time (s)")
	const m = 144
	factors := []float64{0.1, 0.3, 0.5, 0.9}
	results, err := RunCells(0, len(factors), func(i int) (time.Duration, error) {
		f := factors[i]
		ctx := scalingCtx(simulator.CosmoScaling, 8)
		ctx.AlphaSmoothing = f
		queue := batch.NewExponential(60*time.Second, 7)
		elapsed, err := runAnalysis(ctx, Forward(1, m), 100*time.Millisecond, queue)
		if err != nil {
			return 0, fmt.Errorf("ablation EMA f=%.1f: %w", f, err)
		}
		return elapsed, nil
	})
	if err != nil {
		return nil, err
	}
	for i, f := range factors {
		tab.Series("forward").Add(fmt.Sprintf("%.1f", f), results[i].Seconds())
	}
	return tab, nil
}

// AblationPolicyOnWorkloads extends Fig. 5 with per-policy hit rates, the
// ingredient behind the produced-steps differences.
func AblationPolicyOnWorkloads() (*metrics.Table, error) {
	tab := metrics.NewTable("Ablation — hit rates by policy and pattern", "pattern", "hit rate")
	cfg := DefaultFig05()
	cfg.Reps = 5
	ctx := simulator.CacheEval()
	type cell struct {
		patIdx int
		pol    string
	}
	var cells []cell
	for p := range cfg.Patterns {
		for _, pol := range cfg.Policies {
			cells = append(cells, cell{p, pol})
		}
	}
	results, err := RunCells(0, len(cells), func(i int) ([]float64, error) {
		c := cells[i]
		st, err := NewReplayState(ctx, c.pol)
		if err != nil {
			return nil, err
		}
		rates := make([]float64, cfg.Reps)
		for rep := 0; rep < cfg.Reps; rep++ {
			tr, err := st.GenerateTrace(cfg.Patterns[c.patIdx], fig05TraceConfig(ctx, cfg.Seed, rep))
			if err != nil {
				return nil, err
			}
			res, err := ReplayInto(st, ctx, tr)
			if err != nil {
				return nil, err
			}
			if res.Accesses > 0 {
				rates[rep] = float64(res.Hits) / float64(res.Accesses)
			}
		}
		return rates, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		for _, rate := range results[i] {
			tab.Series(c.pol).Add(string(cfg.Patterns[c.patIdx]), rate)
		}
	}
	return tab, nil
}
