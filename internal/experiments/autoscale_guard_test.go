package experiments

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"simfs/internal/simulator"
)

// TestAutoscaleZeroConfigGolden is the zero-config guard: attaching a
// controller with NO policies armed must leave the run byte-identical to
// the golden tables — the controller samples, but a sample is not an
// actuation. The expected bytes are the MultiAnalysis section of
// sched_golden.txt, generated long before autoscale existed.
func TestAutoscaleZeroConfigGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates a DES experiment; skipped with -short")
	}
	golden, err := os.ReadFile("testdata/sched_golden.txt")
	if err != nil {
		t.Fatal(err)
	}
	want := goldenSection(string(golden), "== MultiAnalysis clients=6 steps=48 seed=1 backward=0.25")
	if want == "" {
		t.Fatal("golden file has no MultiAnalysis section")
	}

	ctx := simulator.CosmoScaling()
	ctx.MaxCacheBytes = 128 * ctx.OutputBytes
	res, err := MultiAnalysis(ctx, MultiAnalysisConfig{
		Clients: 6, Steps: 48, TauCli: 100 * time.Millisecond, Seed: 1, Backward: 0.25,
		// The guard under test: an attached, ticking, unarmed controller.
		AutoscaleTick: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Decisions) != 0 {
		t.Fatalf("unarmed controller took %d decisions: %+v", len(res.Decisions), res.Decisions)
	}

	var buf bytes.Buffer
	fmt.Fprintln(&buf, "== MultiAnalysis clients=6 steps=48 seed=1 backward=0.25")
	for i, d := range res.Completion {
		fmt.Fprintf(&buf, "completion[%d]=%v\n", i, d)
	}
	fmt.Fprintf(&buf, "stats=%+v\n", res.Stats)
	if got := buf.String(); got != want {
		t.Errorf("unarmed controller perturbed the run:\n-- got --\n%s\n-- want --\n%s", got, want)
	}
}

// goldenSection extracts one "== header"-delimited section (header line
// included) from a golden report.
func goldenSection(report, header string) string {
	i := strings.Index(report, header)
	if i < 0 {
		return ""
	}
	rest := report[i:]
	if j := strings.Index(rest[len(header):], "\n== "); j >= 0 {
		return rest[:len(header)+j+1]
	}
	return rest
}
