// Package experiments contains the harness that regenerates every table
// and figure of the paper's evaluation (Secs. III-D, V and VI): the
// synthetic analysis driver running over the discrete-event engine, the
// trace replay used by the caching study and the cost models, and one
// runner per figure. See DESIGN.md for the experiment index.
package experiments

import (
	"fmt"
	"time"

	"simfs/internal/core"
	"simfs/internal/des"
	"simfs/internal/model"
)

// Analysis is a synthetic analysis application driven by the DES: it
// accesses a sequence of output steps through the Virtualizer exactly like
// a DVLib client would (open → wait-if-missing → process for τcli →
// close), and records its completion time.
type Analysis struct {
	Engine *des.Engine
	V      *core.Virtualizer
	Ctx    *model.Context
	Client string
	// Steps is the access sequence (1-based output step indices).
	Steps []int
	// TauCli is the per-access processing time of the analysis.
	TauCli time.Duration
	// MaxRetries bounds re-opens after failed re-simulations.
	MaxRetries int
	// OnDone is called at completion with the total running time.
	OnDone func(elapsed time.Duration)
	// OnAbort, if set, receives a fatal error description (unservable
	// file, retry budget exhausted). Without it, aborts end the analysis
	// silently.
	OnAbort func(msg string)

	startAt  time.Duration
	pos      int
	retries  int
	finished bool
	// Waits accumulates the time spent blocked on missing files.
	Waits time.Duration
	// Misses counts accesses that found the file not on disk.
	Misses int
}

// Start schedules the analysis's first access at the current virtual time.
func (a *Analysis) Start() {
	a.startAt = a.Engine.Now()
	a.Engine.Schedule(0, a.step)
}

func (a *Analysis) step() {
	if a.finished {
		return
	}
	if a.pos >= len(a.Steps) {
		a.finish()
		return
	}
	file := a.Ctx.Filename(a.Steps[a.pos])
	res, err := a.V.Open(a.Client, a.Ctx.Name, file)
	if err != nil {
		a.abort(fmt.Sprintf("open %s: %v", file, err))
		return
	}
	if res.Available {
		a.process(file)
		return
	}
	a.Misses++
	waitStart := a.Engine.Now()
	err = a.V.WaitFile(a.Client, a.Ctx.Name, file, func(st core.Status) {
		a.Waits += a.Engine.Now() - waitStart
		if st.Err != "" {
			// Production failed: drop the reference and retry the access.
			_ = a.V.Release(a.Client, a.Ctx.Name, file)
			a.retries++
			if a.MaxRetries > 0 && a.retries > a.MaxRetries {
				a.abort("too many failed re-simulations: " + st.Err)
				return
			}
			a.Engine.Schedule(0, a.step)
			return
		}
		a.process(file)
	})
	if err != nil {
		// The file became resident between Open and WaitFile.
		a.process(file)
	}
}

func (a *Analysis) process(file string) {
	a.Engine.Schedule(a.TauCli, func() {
		_ = a.V.Release(a.Client, a.Ctx.Name, file)
		a.pos++
		a.step()
	})
}

func (a *Analysis) finish() {
	a.finished = true
	if a.OnDone != nil {
		a.OnDone(a.Engine.Now() - a.startAt)
	}
}

func (a *Analysis) abort(msg string) {
	a.finished = true
	if a.OnAbort != nil {
		a.OnAbort(msg)
	}
}

// Forward returns the forward access sequence 1..m starting at `start`.
func Forward(start, m int) []int {
	steps := make([]int, m)
	for i := range steps {
		steps[i] = start + i
	}
	return steps
}

// BackwardSeq returns the backward access sequence start, start-1, …
// (m steps).
func BackwardSeq(start, m int) []int {
	steps := make([]int, m)
	for i := range steps {
		steps[i] = start - i
	}
	return steps
}
