package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The parallel experiment runner. Every figure of the evaluation is a
// grid of independent cells — (pattern × policy) for the caching study,
// (Δr × cache fraction) for the cost sweeps, (smax) or (m × αsim) for the
// scaling experiments — and each cell derives all of its randomness from
// its own parameters (a per-cell seed, never a shared RNG). RunCells fans
// the cells across a worker pool and merges results in cell order, so the
// output is bit-identical to a sequential run regardless of the worker
// count or scheduling.

// configuredWorkers holds the -j override; 0 means GOMAXPROCS.
var configuredWorkers atomic.Int32

// SetWorkers sets the default worker count used by RunCells when a
// config does not specify one. n ≤ 0 restores the automatic default
// (GOMAXPROCS). It is the backing of cmd/simfs-bench's -j flag.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	configuredWorkers.Store(int32(n))
}

// Workers returns the effective default worker count.
func Workers() int {
	if n := configuredWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// RunCells runs n independent experiment cells on a pool of workers and
// returns the per-cell results in cell order. workers ≤ 0 uses the
// package default (SetWorkers / GOMAXPROCS).
//
// Determinism contract: run(i) must compute everything from the cell
// index i (configuration lookup, per-cell seeds) and must not mutate
// state shared with other cells. Under that contract the returned slice —
// and any table built from it in index order — is byte-identical to a
// sequential for-loop, for any worker count.
//
// If any cell fails, RunCells reports the error of the lowest-numbered
// failing cell (again independent of scheduling) and stops claiming new
// cells; in-flight cells run to completion.
func RunCells[T any](workers, n int, run func(cell int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			v, err := run(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1) - 1)
				if i >= n || failed.Load() {
					return
				}
				v, err := run(i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
