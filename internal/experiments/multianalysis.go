package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"simfs/internal/autoscale"
	"simfs/internal/core"
	"simfs/internal/metrics"
	"simfs/internal/model"
	"simfs/internal/sched"
)

// MultiAnalysisConfig parameterizes the concurrent-analyses experiment:
// the virtual-time analogue of the paper's overlap study (Sec. V-A), where
// interleaved analyses with different working sets compete for one cache.
type MultiAnalysisConfig struct {
	Clients  int
	Steps    int // accesses per analysis
	TauCli   time.Duration
	Seed     int64
	Backward float64 // fraction of clients scanning backward
	// Sched selects the re-simulation scheduling policy (zero value =
	// the paper-exact default); the scheduler ablation sweeps it.
	Sched sched.Config
	// Autoscale attaches a closed-loop controller (internal/autoscale)
	// to the run's Virtualizer, ticking in virtual time every
	// AutoscaleTick while analyses are live. With a zero tick — or an
	// empty policy set — the run is untouched: the autoscale ablation
	// steers with it, the golden test pins that attaching an unarmed
	// controller changes nothing.
	Autoscale     []autoscale.Policy
	AutoscaleTick time.Duration
}

// MultiAnalysisResult aggregates the run.
type MultiAnalysisResult struct {
	Completion []time.Duration
	Stats      core.CtxStats
	Sched      metrics.SchedStats
	// Decisions is the attached controller's log (nil without one).
	Decisions []autoscale.Decision
}

// MultiAnalysis runs several concurrent analyses over one shared
// Virtualizer in virtual time. Each analysis starts at a random output
// step; a configurable fraction scans backward. It returns per-analysis
// completion times and the shared context's counters.
func MultiAnalysis(ctx *model.Context, cfg MultiAnalysisConfig) (MultiAnalysisResult, error) {
	if cfg.Clients < 1 {
		return MultiAnalysisResult{}, fmt.Errorf("multianalysis: need at least one client")
	}
	eng, v, err := stackSched(ctx, cfg.Sched)
	if err != nil {
		return MultiAnalysisResult{}, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	no := ctx.Grid.NumOutputSteps()
	res := MultiAnalysisResult{Completion: make([]time.Duration, cfg.Clients)}
	var aborted error
	remaining := cfg.Clients

	for i := 0; i < cfg.Clients; i++ {
		i := i
		m := cfg.Steps
		var steps []int
		if float64(i) < cfg.Backward*float64(cfg.Clients) {
			start := m + rng.Intn(no-m)
			steps = BackwardSeq(start, m)
		} else {
			start := rng.Intn(no-m) + 1
			steps = Forward(start, m)
		}
		a := &Analysis{
			Engine: eng, V: v, Ctx: ctx,
			Client: fmt.Sprintf("multi-%d", i),
			Steps:  steps, TauCli: cfg.TauCli,
			OnDone:  func(d time.Duration) { res.Completion[i] = d; remaining-- },
			OnAbort: func(msg string) { aborted = fmt.Errorf("analysis %d: %s", i, msg) },
		}
		// Stagger starts a little so the overlap is partial, as in the
		// paper's workload.
		delay := time.Duration(rng.Intn(60)) * time.Second
		eng.Schedule(delay, a.Start)
	}
	var ctrl *autoscale.Controller
	if cfg.AutoscaleTick > 0 {
		var err error
		ctrl, err = autoscale.New(autoscale.LocalTarget{V: v}, cfg.Autoscale,
			autoscale.Options{Clock: eng})
		if err != nil {
			return res, err
		}
		// The tick re-arms itself only while analyses are live: a
		// perpetual controller event would keep the DES from ever
		// draining its heap.
		var tick func()
		tick = func() {
			if remaining == 0 {
				return
			}
			_ = ctrl.TickOnce() // LocalTarget sampling cannot fail mid-run
			eng.Schedule(cfg.AutoscaleTick, tick)
		}
		eng.Schedule(cfg.AutoscaleTick, tick)
	}
	if !eng.Run(80_000_000) {
		return res, fmt.Errorf("multianalysis: runaway event loop")
	}
	if ctrl != nil {
		res.Decisions = ctrl.Decisions()
	}
	if aborted != nil {
		return res, aborted
	}
	st, err := v.Stats(ctx.Name)
	if err != nil {
		return res, err
	}
	res.Stats = st
	res.Sched = v.SchedStats()
	for i, d := range res.Completion {
		if d == 0 {
			return res, fmt.Errorf("multianalysis: analysis %d never completed", i)
		}
	}
	return res, nil
}

// MultiAnalysisSweep produces a table of median completion time and
// re-simulated steps as the client count grows — cache-interference made
// visible in virtual time. Each client count is one cell on the worker
// pool (every cell builds its own Virtualizer stack, so cells share
// nothing but the immutable context).
func MultiAnalysisSweep(ctx *model.Context, clients []int, stepsEach int, tauCli time.Duration, seed int64) (*metrics.Table, error) {
	tab := metrics.NewTable("Concurrent analyses — interference sweep", "clients", "value")
	results, err := RunCells(0, len(clients), func(i int) (MultiAnalysisResult, error) {
		// Context is a value struct; a per-cell copy keeps AddContext's
		// in-place defaulting off the shared instance.
		cctx := *ctx
		return MultiAnalysis(&cctx, MultiAnalysisConfig{
			Clients: clients[i], Steps: stepsEach, TauCli: tauCli, Seed: seed, Backward: 0.25,
		})
	})
	if err != nil {
		return nil, err
	}
	for i, n := range clients {
		r := results[i]
		x := fmt.Sprintf("%d", n)
		var xs []float64
		for _, d := range r.Completion {
			xs = append(xs, d.Seconds())
		}
		tab.Series("median completion (s)").Add(x, metrics.Summarize(xs).Median)
		tab.Series("steps produced").Add(x, float64(r.Stats.StepsProduced))
		tab.Series("restarts").Add(x, float64(r.Stats.Restarts))
	}
	return tab, nil
}
