package experiments

import (
	"bytes"
	"testing"
)

// TestAblationPreemptEffects pins the PR's acceptance criterion on the
// contended 10-client workload under a node budget: with preemption on,
// cumulative demand queue-wait drops versus priorities-only, no
// prefetch is ever dropped (the victim's interval is requeued, not
// discarded), and the preemption counter proves the mechanism actually
// fired rather than the workload having gone uncontended.
func TestAblationPreemptEffects(t *testing.T) {
	if testing.Short() {
		t.Skip("10-client DES sweeps; skipped with -short")
	}
	tab, err := AblationPreempt(1)
	if err != nil {
		t.Fatal(err)
	}
	at := func(series, mode string) float64 {
		s, ok := tab.Series(series).At(mode)
		if !ok {
			t.Fatalf("missing cell %s/%s", series, mode)
		}
		return s.Median
	}
	baseWait := at("demand wait (s)", "priorities")
	if baseWait <= 0 {
		t.Fatal("the priorities-only baseline shows no demand queue-wait: the workload is not contended")
	}
	if at("preempted", "priorities") != 0 {
		t.Error("preemption fired with the policy off")
	}
	for _, mode := range []string{"+preempt-youngest", "+preempt-cheapest"} {
		if at("preempted", mode) <= 0 {
			t.Errorf("%s: preemption never fired on the contended workload", mode)
		}
		if w := at("demand wait (s)", mode); w >= baseWait {
			t.Errorf("%s: demand wait %.1fs did not drop below the priorities-only %.1fs", mode, w, baseWait)
		}
	}
	// Demand is never dropped by design, and with priorities on neither
	// is prefetch — preemption must keep it that way in every mode.
	for _, mode := range []string{"priorities", "+preempt-youngest", "+preempt-cheapest", "+preempt+drr"} {
		if d := at("dropped prefetch", mode); d != 0 {
			t.Errorf("%s: %v dropped launches, want 0", mode, d)
		}
	}
}

// TestAblationPreemptParallelDeterminism: preemption decisions ride the
// DES event thread, so the ablation's tables must not depend on the
// experiment worker count.
func TestAblationPreemptParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the ablation twice; skipped with -short")
	}
	render := func(workers int) string {
		SetWorkers(workers)
		defer SetWorkers(0)
		tab, err := AblationPreempt(1)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tab.Render(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if seq, par := render(1), render(4); seq != par {
		t.Errorf("preempt ablation tables depend on worker count:\n-- j1 --\n%s\n-- j4 --\n%s", seq, par)
	}
}
