package experiments

import (
	"fmt"
	"time"

	"simfs/internal/batch"
	"simfs/internal/core"
	"simfs/internal/des"
	"simfs/internal/metrics"
	"simfs/internal/model"
	"simfs/internal/prefetch"
	"simfs/internal/sched"
	"simfs/internal/simulator"
)

// stackFor wires a fresh virtual-time SimFS instance around one context
// with the default (paper-exact) launch scheduling.
func stackFor(ctx *model.Context) (*des.Engine, *core.Virtualizer, error) {
	return stackSched(ctx, sched.Config{})
}

// stackSched wires a fresh virtual-time SimFS instance with an explicit
// re-simulation scheduler policy (the scheduler ablation's knob).
func stackSched(ctx *model.Context, cfg sched.Config) (*des.Engine, *core.Virtualizer, error) {
	eng := des.NewEngine()
	l := &simulator.DESLauncher{Engine: eng}
	v := core.NewScheduled(eng, l, cfg)
	l.Events = v
	if err := v.AddContext(ctx, "DCL", nil); err != nil {
		return nil, nil, err
	}
	return eng, v, nil
}

// runAnalysis executes one synthetic analysis on a fresh virtual-time
// SimFS instance and returns its completion time. queue optionally adds a
// batch queueing delay to every re-simulation (the αsim sweep of
// Figs. 17/19).
func runAnalysis(ctx *model.Context, steps []int, tauCli time.Duration, queue batch.Sampler) (time.Duration, error) {
	eng := des.NewEngine()
	l := &simulator.DESLauncher{Engine: eng, Queue: queue}
	v := core.New(eng, l)
	l.Events = v
	if err := v.AddContext(ctx, "DCL", nil); err != nil {
		return 0, err
	}
	var elapsed time.Duration
	var aborted string
	a := &Analysis{
		Engine: eng,
		V:      v,
		Ctx:    ctx,
		Client: "analysis-0",
		Steps:  steps,
		TauCli: tauCli,
		OnDone: func(d time.Duration) { elapsed = d },
		OnAbort: func(msg string) {
			aborted = msg
		},
	}
	a.Start()
	if !eng.Run(50_000_000) {
		return 0, fmt.Errorf("experiment did not converge (runaway event loop)")
	}
	if aborted != "" {
		return 0, fmt.Errorf("analysis aborted: %s", aborted)
	}
	if elapsed == 0 {
		return 0, fmt.Errorf("analysis never completed")
	}
	return elapsed, nil
}

// scalingCtx prepares a context for the strong-scaling experiments:
// unbounded cache (the experiment studies prefetching, not eviction) and
// the given smax.
func scalingCtx(base func() *model.Context, smax int) *model.Context {
	ctx := base()
	ctx.MaxCacheBytes = 0
	ctx.SMax = smax
	ctx.NoPrefetch = false
	return ctx
}

// Scaling runs the strong-scaling experiment of Figs. 16 (COSMO) and 18
// (FLASH): the completion time of a forward and a backward analysis over
// m output steps as a function of smax, against the full forward
// re-simulation reference (a single simulation producing the same
// sequence). Each smax point runs its two DES simulations as one
// independent cell on the worker pool.
func Scaling(title string, base func() *model.Context, m int, tauCli time.Duration, smaxes []int) (*metrics.Table, error) {
	tab := metrics.NewTable(title, "smax", "running time (s)")
	ref := base()
	single := prefetch.TSingle(ref.Alpha, ref.Tau, m)
	type pair struct{ fwd, bwd time.Duration }
	results, err := RunCells(0, len(smaxes), func(i int) (pair, error) {
		smax := smaxes[i]
		fwd, err := runAnalysis(scalingCtx(base, smax), Forward(1, m), tauCli, nil)
		if err != nil {
			return pair{}, fmt.Errorf("scaling smax=%d forward: %w", smax, err)
		}
		bwd, err := runAnalysis(scalingCtx(base, smax), BackwardSeq(m, m), tauCli, nil)
		if err != nil {
			return pair{}, fmt.Errorf("scaling smax=%d backward: %w", smax, err)
		}
		return pair{fwd, bwd}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, smax := range smaxes {
		x := fmt.Sprintf("%d", smax)
		tab.Series("Forward").Add(x, results[i].fwd.Seconds())
		tab.Series("Backward").Add(x, results[i].bwd.Seconds())
		tab.Series("Full Forward Resimulation").Add(x, single.Seconds())
	}
	return tab, nil
}

// Fig16 is the COSMO strong-scaling experiment: m = 72 output steps (the
// first 6 hours of simulated data), τsim = 3 s, αsim = 13 s.
func Fig16() (*metrics.Table, error) {
	return Scaling("Fig. 16 — COSMO strong scaling", simulator.CosmoScaling, 72,
		100*time.Millisecond, []int{2, 4, 8, 16})
}

// Fig18 is the FLASH strong-scaling experiment: m = 200 output steps
// (1 s of blast-wave evolution), τsim = 14 s, αsim = 7 s.
func Fig18() (*metrics.Table, error) {
	return Scaling("Fig. 18 — FLASH strong scaling", simulator.Flash, 200,
		100*time.Millisecond, []int{2, 4, 8, 16})
}

// Latency runs the restart-latency sweep of Figs. 17 (COSMO) and 19
// (FLASH): the analysis running time under increasing αsim (modeling job
// queueing times) for several analysis lengths, with smax = 8, against
// the analytic references Tsingle, Tpre and Tlower.
// The (m, αsim) grid runs on the worker pool, one DES simulation per
// cell.
func Latency(title string, base func() *model.Context, ms []int, alphas []time.Duration, tauCli time.Duration) ([]*metrics.Table, error) {
	type cell struct {
		m     int
		alpha time.Duration
	}
	var cells []cell
	for _, m := range ms {
		for _, alpha := range alphas {
			cells = append(cells, cell{m, alpha})
		}
	}
	results, err := RunCells(0, len(cells), func(i int) (time.Duration, error) {
		c := cells[i]
		ctx := scalingCtx(base, 8)
		ctx.Alpha = c.alpha
		elapsed, err := runAnalysis(ctx, Forward(1, c.m), tauCli, nil)
		if err != nil {
			return 0, fmt.Errorf("latency m=%d α=%v: %w", c.m, c.alpha, err)
		}
		return elapsed, nil
	})
	if err != nil {
		return nil, err
	}
	var tables []*metrics.Table
	i := 0
	for _, m := range ms {
		tab := metrics.NewTable(fmt.Sprintf("%s (m=%d)", title, m), "αsim (s)", "running time (s)")
		for _, alpha := range alphas {
			x := fmt.Sprintf("%.0f", alpha.Seconds())
			ctx := scalingCtx(base, 8)
			ctx.Alpha = alpha
			tab.Series("SimFS").Add(x, results[i].Seconds())
			i++

			n := prefetch.ForwardResimLength(ctx.Grid, 1, alpha, ctx.Tau, tauCli)
			tab.Series("Tsingle").Add(x, prefetch.TSingle(alpha, ctx.Tau, m).Seconds())
			tab.Series("Tpre").Add(x, prefetch.ForwardWarmup(alpha, ctx.Tau, n).Seconds())
			tab.Series("Tlower").Add(x, prefetch.TLower(alpha, ctx.Tau, m, 8).Seconds())
		}
		tables = append(tables, tab)
	}
	return tables, nil
}

// Fig17 is the COSMO latency sweep: m ∈ {72, 288, 1152} (6h, 24h, 96h of
// simulated data), αsim from the native 13 s up to 600 s of queueing.
func Fig17() ([]*metrics.Table, error) {
	return Latency("Fig. 17 — COSMO prefetching vs restart latency", simulator.CosmoScaling,
		[]int{72, 288, 1152},
		[]time.Duration{13 * time.Second, 100 * time.Second, 200 * time.Second, 400 * time.Second, 600 * time.Second},
		100*time.Millisecond)
}

// Fig19 is the FLASH latency sweep: m ∈ {200, 400, 600} (1–3 s of
// blast-wave evolution), αsim from the native 7 s up to 600 s.
func Fig19() ([]*metrics.Table, error) {
	return Latency("Fig. 19 — FLASH prefetching vs restart latency", simulator.Flash,
		[]int{200, 400, 600},
		[]time.Duration{7 * time.Second, 100 * time.Second, 200 * time.Second, 400 * time.Second, 600 * time.Second},
		100*time.Millisecond)
}
