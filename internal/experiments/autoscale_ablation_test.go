package experiments

import (
	"bytes"
	"testing"
)

// TestAblationAutoscaleEffects pins the PR's acceptance criterion on the
// phase-changing workload: the closed-loop controller must undercut
// every static configuration on cumulative demand queue-wait, and the
// full policy set (controller+join) must deliver the best class-neutral
// client outcomes while proving the demand-join mechanism actually
// fired.
func TestAblationAutoscaleEffects(t *testing.T) {
	if testing.Short() {
		t.Skip("two-phase DES sweeps; skipped with -short")
	}
	tab, err := AblationAutoscale(1)
	if err != nil {
		t.Fatal(err)
	}
	at := func(series, mode string) float64 {
		s, ok := tab.Series(series).At(mode)
		if !ok {
			t.Fatalf("missing cell %s/%s", series, mode)
		}
		return s.Median
	}
	statics := []string{"static dcl", "static lru", "static dcl+preempt", "static lru+preempt"}

	// Acceptance criterion: the controller beats every static config on
	// demand queue-wait.
	ctlWait := at("demand wait (s)", "controller")
	if ctlWait <= 0 {
		t.Fatal("controller row shows no demand wait: the workload is not contended")
	}
	for _, mode := range statics {
		if w := at("demand wait (s)", mode); ctlWait >= w {
			t.Errorf("controller demand wait %.1fs did not undercut %s at %.1fs", ctlWait, mode, w)
		}
	}
	if at("decisions", "controller") <= 0 {
		t.Error("controller recorded no decisions: it never actually steered")
	}
	for _, mode := range statics {
		if at("decisions", mode) != 0 {
			t.Errorf("%s: static row recorded decisions", mode)
		}
	}

	// The full policy set measures more demand wait by design (promoted
	// jobs move prefetch-class waits into the demand ledger), so its win
	// is judged on the class-neutral series: total client blocked time
	// and median completion must beat every static row, and promotions
	// must actually have fired.
	if at("promoted", "controller+join") <= 0 {
		t.Error("controller+join: demand-join never promoted a queued job")
	}
	joinBlocked := at("client blocked (s)", "controller+join")
	joinMedian := at("median completion (s)", "controller+join")
	for _, mode := range statics {
		if b := at("client blocked (s)", mode); joinBlocked >= b {
			t.Errorf("controller+join blocked %.0fs did not undercut %s at %.0fs", joinBlocked, mode, b)
		}
		if m := at("median completion (s)", mode); joinMedian >= m {
			t.Errorf("controller+join median %.1fs did not undercut %s at %.1fs", joinMedian, mode, m)
		}
	}
}

// TestAblationAutoscaleParallelDeterminism: controller decisions ride
// the DES event thread (clock-injected, sorted context iteration), so
// the ablation's tables must not depend on the experiment worker count.
func TestAblationAutoscaleParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the ablation twice; skipped with -short")
	}
	render := func(workers int) string {
		SetWorkers(workers)
		defer SetWorkers(0)
		tab, err := AblationAutoscale(1)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tab.Render(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if seq, par := render(1), render(6); seq != par {
		t.Errorf("autoscale ablation tables depend on worker count:\n-- j1 --\n%s\n-- j6 --\n%s", seq, par)
	}
}
