package experiments

import (
	"testing"
	"time"

	"simfs/internal/core"
	"simfs/internal/costmodel"
	"simfs/internal/des"
	"simfs/internal/model"
	"simfs/internal/simulator"
	"simfs/internal/trace"
)

// newTestStack wires a fresh DES engine, launcher and Virtualizer around
// one context.
func newTestStack(ctx *model.Context) (*des.Engine, *core.Virtualizer) {
	eng := des.NewEngine()
	l := &simulator.DESLauncher{Engine: eng}
	v := core.New(eng, l)
	l.Events = v
	if err := v.AddContext(ctx, "DCL", nil); err != nil {
		panic(err)
	}
	return eng, v
}

func smallCtx() *model.Context {
	c := &model.Context{
		Name:               "small",
		Grid:               model.Grid{DeltaD: 1, DeltaR: 4, Timesteps: 100},
		OutputBytes:        1,
		MaxCacheBytes:      20,
		Tau:                time.Second,
		Alpha:              2 * time.Second,
		DefaultParallelism: 1,
		MaxParallelism:     1,
		SMax:               4,
	}
	c.ApplyDefaults()
	return c
}

func TestReplayCountsWork(t *testing.T) {
	ctx := smallCtx()
	accesses := []trace.Access{{Step: 2}, {Step: 3}, {Step: 2}, {Step: 6}, {Step: 5}}
	res, err := Replay(ctx, "LRU", accesses)
	if err != nil {
		t.Fatal(err)
	}
	// Access 2 → miss → restart, produce steps 1,2 (cost 2); access 3 →
	// lazy extension of the running simulation (1 step, no new restart);
	// access 2 → hit; access 6 → redirect → new restart producing 5,6;
	// access 5 → hit (produced by the second simulation).
	if res.Misses != 3 || res.Hits != 2 || res.Restarts != 2 || res.ProducedSteps != 5 {
		t.Errorf("replay = %+v", res)
	}
}

func TestReplayRejectsBadInput(t *testing.T) {
	ctx := smallCtx()
	if _, err := Replay(ctx, "NOPE", nil); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := Replay(ctx, "LRU", []trace.Access{{Step: 0}}); err == nil {
		t.Error("invalid step accepted")
	}
}

func TestReplayEvictsUnderPressure(t *testing.T) {
	ctx := smallCtx()
	ctx.MaxCacheBytes = 4 // one restart interval
	var accesses []trace.Access
	for s := 1; s <= 40; s += 4 {
		accesses = append(accesses, trace.Access{Step: s})
	}
	res, err := Replay(ctx, "LRU", accesses)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evictions == 0 {
		t.Error("expected evictions with a one-interval cache")
	}
}

func TestFig05Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size replay in -short mode")
	}
	cfg := DefaultFig05()
	cfg.Reps = 5
	steps, restarts, err := Fig05(cfg)
	if err != nil {
		t.Fatal(err)
	}
	get := func(tab, pol, pat string) float64 {
		var s float64
		switch tab {
		case "steps":
			sum, ok := steps.Series(pol).At(pat)
			if !ok {
				t.Fatalf("missing %s/%s", pol, pat)
			}
			s = sum.Median
		case "restarts":
			sum, ok := restarts.Series(pol).At(pat)
			if !ok {
				t.Fatalf("missing %s/%s", pol, pat)
			}
			s = sum.Median
		}
		return s
	}
	// Paper shape 1: cost-based schemes (DCL in particular) minimize
	// re-simulated steps on the Random and ECMWF patterns vs plain LRU.
	for _, pat := range []string{"Random", "ECMWF"} {
		if dcl, lru := get("steps", "DCL", pat), get("steps", "LRU", pat); dcl > lru*1.05 {
			t.Errorf("%s: DCL steps %.0f should not exceed LRU %.0f", pat, dcl, lru)
		}
	}
	// Paper shape 2: LIRS performs worst on the backward pattern.
	lirs := get("steps", "LIRS", "Backward")
	for _, pol := range []string{"LRU", "DCL", "BCL", "ARC"} {
		if v := get("steps", pol, "Backward"); v > lirs*1.10 {
			t.Errorf("Backward: %s steps %.0f unexpectedly above LIRS %.0f", pol, v, lirs)
		}
	}
	// Sanity: every cell is positive and restarts ≤ steps.
	for _, pol := range cfg.Policies {
		for _, pat := range trace.Patterns() {
			st, rs := get("steps", pol, string(pat)), get("restarts", pol, string(pat))
			if st <= 0 || rs <= 0 || rs > st {
				t.Errorf("%s/%s: steps=%.0f restarts=%.0f", pol, pat, st, rs)
			}
		}
	}
}

func TestAnalysisDriverAllCached(t *testing.T) {
	ctx := smallCtx()
	ctx.NoPrefetch = true
	elapsed, err := runAnalysisPreloaded(t, ctx, Forward(1, 10), 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed != time.Second {
		t.Errorf("all-cached analysis took %v, want 10×100ms", elapsed)
	}
}

// runAnalysisPreloaded is a test helper: preloads all steps then runs.
func runAnalysisPreloaded(t *testing.T, ctx *model.Context, steps []int, tauCli time.Duration) (time.Duration, error) {
	t.Helper()
	ctx.MaxCacheBytes = 0
	eng, v := newTestStack(ctx)
	all := make([]int, ctx.Grid.NumOutputSteps())
	for i := range all {
		all[i] = i + 1
	}
	if err := v.Preload(ctx.Name, all); err != nil {
		return 0, err
	}
	var elapsed time.Duration
	a := &Analysis{
		Engine: eng, V: v, Ctx: ctx, Client: "t",
		Steps: steps, TauCli: tauCli,
		OnDone: func(d time.Duration) { elapsed = d },
	}
	a.Start()
	eng.Run(0)
	return elapsed, nil
}

func TestAnalysisDriverColdForwardNoPrefetch(t *testing.T) {
	ctx := smallCtx()
	ctx.NoPrefetch = true
	ctx.MaxCacheBytes = 0
	elapsed, err := runAnalysis(ctx, Forward(1, 8), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Without prefetching, every restart interval (4 steps) pays the full
	// α: 2 intervals × (2s + 4·1s) = 12s; τcli=0 adds nothing. The
	// analysis of interval 1 overlaps nothing.
	// Access 1 waits α+τ, 2..4 arrive every τ; then 5 misses again.
	want := 2 * (2*time.Second + 4*time.Second)
	if elapsed != want {
		t.Errorf("cold forward = %v, want %v", elapsed, want)
	}
}

func TestPrefetchingBeatsNoPrefetch(t *testing.T) {
	base := func() *model.Context {
		c := smallCtx()
		c.MaxCacheBytes = 0
		c.SMax = 4
		return c
	}
	ctxNo := base()
	ctxNo.NoPrefetch = true
	slow, err := runAnalysis(ctxNo, Forward(1, 60), 100*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctxYes := base()
	fast, err := runAnalysis(ctxYes, Forward(1, 60), 100*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fast >= slow {
		t.Errorf("prefetching (%v) should beat no-prefetching (%v)", fast, slow)
	}
}

func TestFig16Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("DES sweep in -short mode")
	}
	tab, err := Fig16()
	if err != nil {
		t.Fatal(err)
	}
	at := func(series, x string) float64 {
		s, ok := tab.Series(series).At(x)
		if !ok {
			t.Fatalf("missing %s@%s", series, x)
		}
		return s.Median
	}
	single := at("Full Forward Resimulation", "8")
	f2, f8, f16 := at("Forward", "2"), at("Forward", "8"), at("Forward", "16")
	// Strong scaling: more parallel re-simulations help up to smax=8.
	if !(f8 < f2) {
		t.Errorf("forward should scale: smax=8 (%.0fs) ≥ smax=2 (%.0fs)", f8, f2)
	}
	// Paper: ≈2.4× over the full re-simulation at smax=8.
	if speedup := single / f8; speedup < 1.5 {
		t.Errorf("forward speedup at smax=8 = %.2fx, want ≥1.5x", speedup)
	}
	// smax=16 brings no real further benefit (prefetching unused data).
	if f16 < f8*0.80 {
		t.Errorf("smax=16 (%.0fs) should not improve much over smax=8 (%.0fs)", f16, f8)
	}
	// Backward is slower than forward at the same smax (first-miss
	// penalty of a full restart interval).
	b8 := at("Backward", "8")
	if b8 < f8 {
		t.Errorf("backward (%.0fs) should not beat forward (%.0fs)", b8, f8)
	}
}

func TestFig17Bounds(t *testing.T) {
	if testing.Short() {
		t.Skip("DES sweep in -short mode")
	}
	tabs, err := Latency("test", simulator.CosmoScaling, []int{72},
		[]time.Duration{13 * time.Second, 300 * time.Second}, 100*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	tab := tabs[0]
	for _, x := range []string{"13", "300"} {
		simfs, _ := tab.Series("SimFS").At(x)
		single, _ := tab.Series("Tsingle").At(x)
		lower, _ := tab.Series("Tlower").At(x)
		// The paper bounds the overhead at ≈2× Tsingle and SimFS can
		// never beat the lower bound.
		if simfs.Median > 2.5*single.Median {
			t.Errorf("α=%s: SimFS %.0fs exceeds 2.5×Tsingle %.0fs", x, simfs.Median, single.Median)
		}
		if simfs.Median < lower.Median*0.99 {
			t.Errorf("α=%s: SimFS %.0fs beats the lower bound %.0fs", x, simfs.Median, lower.Median)
		}
	}
}

func TestFig01Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("cost replay in -short mode")
	}
	tab, err := Fig01(DefaultCostWorkload(), costmodel.Azure)
	if err != nil {
		t.Fatal(err)
	}
	at := func(series, x string) float64 {
		s, ok := tab.Series(series).At(x)
		if !ok {
			t.Fatalf("missing %s@%s", series, x)
		}
		return s.Median
	}
	// on-disk grows with ∆t; in-situ is flat; SimFS sits below on-disk
	// for long periods.
	if !(at("on-disk", "5y") > at("on-disk", "6m")) {
		t.Error("on-disk must grow with the availability period")
	}
	if at("in-situ", "6m") != at("in-situ", "5y") {
		t.Error("in-situ must not depend on the availability period")
	}
	if !(at("SimFS", "5y") < at("on-disk", "5y")) {
		t.Error("SimFS must beat on-disk at 5y (the headline claim)")
	}
}

func TestFig14Crossover(t *testing.T) {
	if testing.Short() {
		t.Skip("cost replay in -short mode")
	}
	tab, err := Fig14(DefaultCostWorkload(), costmodel.Azure)
	if err != nil {
		t.Fatal(err)
	}
	at := func(series, x string) float64 {
		s, ok := tab.Series(series).At(x)
		if !ok {
			t.Fatalf("missing %s@%s", series, x)
		}
		return s.Median
	}
	// Paper: SimFS cannot beat in-situ below ≈20 analyses, wins at scale.
	if !(at("in-situ", "5") < at("SimFS(25%) Δr=8h", "5")) {
		t.Error("at 5 analyses in-situ should win")
	}
	if !(at("SimFS(25%) Δr=8h", "125") < at("in-situ", "125")) {
		t.Error("at 125 analyses SimFS should win")
	}
}

func TestFig15aRatioStructure(t *testing.T) {
	if testing.Short() {
		t.Skip("cost replay in -short mode")
	}
	h, err := Fig15a(DefaultCostWorkload())
	if err != nil {
		t.Fatal(err)
	}
	// Paper structure: SimFS is the cheapest option (ratio > 1) in a
	// band between the "in-situ is cheaper" corner (cheap compute, costly
	// storage) and the "on-disk is cheaper" corner (cheap storage).
	best := 0.0
	for _, cs := range []string{"0.05", "0.10", "0.15", "0.20", "0.25", "0.30"} {
		for _, cc := range []string{"0.5", "1.0", "1.5", "2.0", "2.5", "3.0"} {
			if v, ok := h.At(cs, cc); ok && v > best {
				best = v
			}
		}
	}
	if best <= 1 {
		t.Errorf("SimFS never cheapest anywhere on the grid (max ratio %.2f)", best)
	}
	// In the cheap-compute, expensive-storage corner in-situ wins: the
	// ratio must dip below its peak there.
	corner, ok := h.At("0.30", "0.5")
	if !ok {
		t.Fatal("missing corner cell")
	}
	if corner >= best {
		t.Errorf("corner ratio %.2f should be below the peak %.2f", corner, best)
	}
}
