package experiments

import (
	"testing"
	"time"

	"simfs/internal/model"
)

// Strided reads are first-class in the paper's model (τkcli, k-strided
// accesses): an analysis sampling every k-th output step must be detected
// and prefetched just like a dense scan.
func TestStridedForwardAnalysis(t *testing.T) {
	mk := func(noPrefetch bool) *model.Context {
		c := &model.Context{
			Name:               "strided",
			Grid:               model.Grid{DeltaD: 1, DeltaR: 8, Timesteps: 512},
			OutputBytes:        1,
			MaxCacheBytes:      0,
			Tau:                time.Second,
			Alpha:              4 * time.Second,
			DefaultParallelism: 1,
			MaxParallelism:     1,
			SMax:               8,
			NoPrefetch:         noPrefetch,
		}
		c.ApplyDefaults()
		return c
	}
	// Access steps 1, 4, 7, ... (k=3).
	var steps []int
	for s := 1; s <= 300; s += 3 {
		steps = append(steps, s)
	}
	slow, err := runAnalysis(mk(true), steps, 100*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := runAnalysis(mk(false), steps, 100*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fast >= slow {
		t.Errorf("strided prefetching (%v) should beat no-prefetching (%v)", fast, slow)
	}
	// The simulation still has to produce every step (it cannot skip),
	// so the best case is one full production pipeline: > m·k·τ/ s.
	if fast < 300*time.Second/8 {
		t.Errorf("completion %v impossibly fast for 300 simulated steps at smax=8", fast)
	}
}

// TestStrideChangeMidAnalysis drives an analysis that changes its stride
// mid-flight; the agent must re-detect and keep serving without demand
// stalls exploding.
func TestStrideChangeMidAnalysis(t *testing.T) {
	c := &model.Context{
		Name:               "restride",
		Grid:               model.Grid{DeltaD: 1, DeltaR: 8, Timesteps: 512},
		OutputBytes:        1,
		MaxCacheBytes:      0,
		Tau:                time.Second,
		Alpha:              4 * time.Second,
		DefaultParallelism: 1,
		MaxParallelism:     1,
		SMax:               8,
	}
	c.ApplyDefaults()
	var steps []int
	for s := 1; s <= 100; s++ { // dense phase
		steps = append(steps, s)
	}
	for s := 102; s <= 300; s += 2 { // strided phase
		steps = append(steps, s)
	}
	elapsed, err := runAnalysis(c, steps, 100*time.Millisecond, nil)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed <= 0 {
		t.Fatal("analysis never completed")
	}
}
