package experiments

import (
	"testing"
	"time"

	"simfs/internal/core"
	"simfs/internal/des"
	"simfs/internal/model"
	"simfs/internal/simulator"
)

// The didactic examples of the paper's Figures 7-11 all use the same
// parameters: Δr = 4 output steps, αsim = 2 time units, τsim = 1 time
// unit, τcli = 1/2 time unit, stride k = 1. We map one time unit to one
// second.
func didacticCtx(noPrefetch bool, smax int) *model.Context {
	c := &model.Context{
		Name:               "paper",
		Grid:               model.Grid{DeltaD: 1, DeltaR: 4, Timesteps: 1024},
		OutputBytes:        1,
		MaxCacheBytes:      0,
		Tau:                time.Second,
		Alpha:              2 * time.Second,
		DefaultParallelism: 1,
		MaxParallelism:     1,
		SMax:               smax,
		NoPrefetch:         noPrefetch,
	}
	c.ApplyDefaults()
	return c
}

// runDidactic runs a forward analysis over the didactic configuration and
// returns (completion time, accumulated wait time, context stats).
func runDidactic(t *testing.T, ctx *model.Context, steps []int) (time.Duration, time.Duration, core.CtxStats) {
	t.Helper()
	eng := des.NewEngine()
	l := &simulator.DESLauncher{Engine: eng}
	v := core.New(eng, l)
	l.Events = v
	if err := v.AddContext(ctx, "DCL", nil); err != nil {
		t.Fatal(err)
	}
	var elapsed time.Duration
	a := &Analysis{
		Engine: eng, V: v, Ctx: ctx, Client: "didactic",
		Steps: steps, TauCli: 500 * time.Millisecond,
		OnDone:  func(d time.Duration) { elapsed = d },
		OnAbort: func(msg string) { t.Fatalf("aborted: %s", msg) },
	}
	a.Start()
	if !eng.Run(5_000_000) {
		t.Fatal("runaway event loop")
	}
	st, _ := v.Stats(ctx.Name)
	return elapsed, a.Waits, st
}

// TestFig07NoPrefetchTimeline reproduces Figure 7: without prefetching,
// every restart interval pays the full restart latency. Accesses 1..12
// need three re-simulations; the exact completion time is deterministic.
//
// Timeline: SIM#1 starts at t=0; step 1 at α+τ=3, steps 2..4 at 4,5,6.
// The analysis consumes each 0.5 after availability, so it misses step 5
// at t=6.5: SIM#2 runs 6.5→9.5 (step 5) … step 8 at 12.5; miss of step 9
// at t=13: SIM#3 delivers step 9 at 16 … step 12 at 19, consumed at 19.5.
func TestFig07NoPrefetchTimeline(t *testing.T) {
	ctx := didacticCtx(true, 4)
	elapsed, waits, st := runDidactic(t, ctx, Forward(1, 12))
	if want := 19500 * time.Millisecond; elapsed != want {
		t.Errorf("completion = %v, want %v", elapsed, want)
	}
	if st.Restarts != 3 {
		t.Errorf("restarts = %d, want 3 (one per interval)", st.Restarts)
	}
	// Every one of the three restart latencies is exposed to the analysis.
	if waits < 3*ctx.Alpha {
		t.Errorf("accumulated waits = %v, want ≥ 3·α", waits)
	}
}

// TestFig08MaskingRestartLatency reproduces Figure 8's effect: with
// prefetching (ramp-up keeps s=1 at the first prefetching step, as in the
// figure), the restart latencies of later simulations overlap the
// analysis, so the total time and the exposed waits drop.
func TestFig08MaskingRestartLatency(t *testing.T) {
	ctxNo := didacticCtx(true, 4)
	plain, plainWaits, _ := runDidactic(t, ctxNo, Forward(1, 12))

	ctxPf := didacticCtx(false, 4)
	ctxPf.RampUp = true
	masked, maskedWaits, _ := runDidactic(t, ctxPf, Forward(1, 12))

	if masked >= plain {
		t.Errorf("masking (%v) should beat no-prefetching (%v)", masked, plain)
	}
	if maskedWaits >= plainWaits {
		t.Errorf("masked waits (%v) should be below exposed waits (%v)", maskedWaits, plainWaits)
	}
}

// TestFig09BandwidthMatching reproduces Figure 9's effect: with enough
// parallel simulations (sopt = ⌈k·τsim/τcli⌉ = 2), the analysis
// eventually runs at its own speed. A longer scan amortizes the warm-up;
// the steady-state rate must approach τcli = 0.5 s/step rather than the
// single-simulation τsim = 1 s/step.
func TestFig09BandwidthMatching(t *testing.T) {
	ctx := didacticCtx(false, 8)
	const m = 200
	elapsed, _, st := runDidactic(t, ctx, Forward(1, m))
	perStep := elapsed / m
	if perStep > 800*time.Millisecond {
		t.Errorf("steady-state %v/step: bandwidth matching failed (τcli=0.5s, τsim=1s)", perStep)
	}
	if st.PrefetchLaunches < 2 {
		t.Errorf("prefetch launches = %d, want ≥2 parallel re-simulations", st.PrefetchLaunches)
	}
}

// TestFig10BackwardPrefetching reproduces Figure 10's effect: a backward
// analysis profits from parallel re-simulations stacked below its
// frontier (s = 3 for the example parameters).
func TestFig10BackwardPrefetching(t *testing.T) {
	ctxNo := didacticCtx(true, 8)
	plain, _, _ := runDidactic(t, ctxNo, BackwardSeq(200, 120))

	ctx := didacticCtx(false, 8)
	fast, _, st := runDidactic(t, ctx, BackwardSeq(200, 120))
	if fast >= plain {
		t.Errorf("backward prefetching (%v) should beat no-prefetching (%v)", fast, plain)
	}
	if st.PrefetchLaunches == 0 {
		t.Error("no backward prefetch launches")
	}
}

// TestFig11HighRestartLatency reproduces Figure 11's warm-up analysis:
// with a restart latency much larger than the production time of the
// accessed steps, the analysis time converges to the prefetching warm-up
// (≈ 2α) and stays within the paper's ≈2× bound over Tsingle.
func TestFig11HighRestartLatency(t *testing.T) {
	ctx := didacticCtx(false, 8)
	ctx.Alpha = 60 * time.Second // α ≫ m·τsim
	const m = 24
	elapsed, _, _ := runDidactic(t, ctx, Forward(1, m))
	tsingle := ctx.Alpha + time.Duration(m)*ctx.Tau
	if elapsed < ctx.Alpha {
		t.Errorf("completion %v cannot beat one restart latency", elapsed)
	}
	if elapsed > 2*tsingle+10*time.Second {
		t.Errorf("completion %v exceeds the ≈2×Tsingle bound (%v)", elapsed, 2*tsingle)
	}
}
