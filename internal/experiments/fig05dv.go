package experiments

import (
	"fmt"
	"time"

	"simfs/internal/core"
	"simfs/internal/des"
	"simfs/internal/metrics"
	"simfs/internal/model"
	"simfs/internal/simulator"
	"simfs/internal/trace"
)

// Fig05DV runs the replacement-scheme comparison through the full Data
// Virtualizer in virtual time — prefetch agents, kill-on-redirect,
// reference counting and all — instead of the timing-free replay of
// Fig05. It cross-validates the replay's lazy-production model: the same
// ordering of schemes must emerge from the real machinery. It is slower
// than Fig05, so it defaults to fewer, shorter traces.
func Fig05DV(reps, analyses int, seed int64, policies []string, patterns []trace.Pattern) (steps, restarts *metrics.Table, err error) {
	if reps < 1 {
		reps = 1
	}
	if analyses < 1 {
		analyses = 10
	}
	base := simulator.CacheEval()
	steps = metrics.NewTable("Fig. 5 (full DV) — re-simulated output steps", "pattern", "output steps")
	restarts = metrics.NewTable("Fig. 5 (full DV) — simulation restarts", "pattern", "restarts")

	for _, pat := range patterns {
		for rep := 0; rep < reps; rep++ {
			tr, err := trace.Generate(pat, trace.Config{
				NumSteps:    base.Grid.NumOutputSteps(),
				NumAnalyses: analyses,
				MinLen:      100,
				MaxLen:      400,
				Stride:      1,
				Seed:        seed + int64(rep)*104729,
			})
			if err != nil {
				return nil, nil, err
			}
			accesses := make([]int, len(tr))
			for i, a := range tr {
				accesses[i] = a.Step
			}
			for _, pol := range policies {
				st, err := runTraceThroughDV(base, pol, accesses)
				if err != nil {
					return nil, nil, fmt.Errorf("fig05dv %s/%s: %w", pat, pol, err)
				}
				steps.Series(pol).Add(string(pat), float64(st.StepsProduced))
				restarts.Series(pol).Add(string(pat), float64(st.Restarts))
			}
		}
	}
	return steps, restarts, nil
}

// runTraceThroughDV replays one access sequence as a synthetic analysis
// over a fresh Virtualizer with the given replacement policy.
func runTraceThroughDV(base *model.Context, policy string, accesses []int) (core.CtxStats, error) {
	ctx := *base // shallow copy; Grid and sizes are values
	ctx.Name = "dvreplay"
	eng := des.NewEngine()
	l := &simulator.DESLauncher{Engine: eng}
	v := core.New(eng, l)
	l.Events = v
	if err := v.AddContext(&ctx, policy, nil); err != nil {
		return core.CtxStats{}, err
	}
	done := false
	var abortMsg string
	a := &Analysis{
		Engine: eng, V: v, Ctx: &ctx, Client: "trace",
		Steps:  accesses,
		TauCli: 100 * time.Millisecond,
		OnDone: func(time.Duration) { done = true },
		OnAbort: func(msg string) {
			abortMsg = msg
		},
	}
	a.Start()
	if !eng.Run(100_000_000) {
		return core.CtxStats{}, fmt.Errorf("dv replay did not converge")
	}
	if abortMsg != "" {
		return core.CtxStats{}, fmt.Errorf("dv replay aborted: %s", abortMsg)
	}
	if !done {
		return core.CtxStats{}, fmt.Errorf("dv replay never completed")
	}
	return v.Stats(ctx.Name)
}
