package experiments

import (
	"fmt"
	"time"

	"simfs/internal/core"
	"simfs/internal/des"
	"simfs/internal/metrics"
	"simfs/internal/model"
	"simfs/internal/simulator"
	"simfs/internal/trace"
)

// Fig05DV runs the replacement-scheme comparison through the full Data
// Virtualizer in virtual time — prefetch agents, kill-on-redirect,
// reference counting and all — instead of the timing-free replay of
// Fig05. It cross-validates the replay's lazy-production model: the same
// ordering of schemes must emerge from the real machinery. It is slower
// than Fig05, so it defaults to fewer, shorter traces.
//
// The pattern×policy grid runs as independent cells on the experiment
// worker pool; each cell regenerates its per-rep traces (deterministic in
// pattern and seed+rep) into cell-local buffers, so the merged tables are
// bit-identical to a sequential run for any worker count.
func Fig05DV(reps, analyses int, seed int64, policies []string, patterns []trace.Pattern) (steps, restarts *metrics.Table, err error) {
	if reps < 1 {
		reps = 1
	}
	if analyses < 1 {
		analyses = 10
	}
	base := simulator.CacheEval()
	steps = metrics.NewTable("Fig. 5 (full DV) — re-simulated output steps", "pattern", "output steps")
	restarts = metrics.NewTable("Fig. 5 (full DV) — simulation restarts", "pattern", "restarts")

	type cell struct {
		patIdx int
		pol    string
	}
	var cells []cell
	for p := range patterns {
		for _, pol := range policies {
			cells = append(cells, cell{p, pol})
		}
	}
	type cellResult struct {
		steps    []float64
		restarts []float64
	}
	results, err := RunCells(0, len(cells), func(i int) (cellResult, error) {
		c := cells[i]
		r := cellResult{
			steps:    make([]float64, reps),
			restarts: make([]float64, reps),
		}
		// Worker-pinned scratch: the trace and its step sequence are
		// regenerated into these buffers for every rep of this cell.
		var tr []trace.Access
		var accesses []int
		for rep := 0; rep < reps; rep++ {
			var err error
			tr, err = trace.GenerateInto(tr, patterns[c.patIdx], trace.Config{
				NumSteps:    base.Grid.NumOutputSteps(),
				NumAnalyses: analyses,
				MinLen:      100,
				MaxLen:      400,
				Stride:      1,
				Seed:        seed + int64(rep)*104729,
			})
			if err != nil {
				return cellResult{}, err
			}
			accesses = accesses[:0]
			for _, a := range tr {
				accesses = append(accesses, a.Step)
			}
			st, err := runTraceThroughDV(base, c.pol, accesses)
			if err != nil {
				return cellResult{}, fmt.Errorf("fig05dv %s/%s: %w", patterns[c.patIdx], c.pol, err)
			}
			r.steps[rep] = float64(st.StepsProduced)
			r.restarts[rep] = float64(st.Restarts)
		}
		return r, nil
	})
	if err != nil {
		return nil, nil, err
	}
	for i, c := range cells {
		pat := string(patterns[c.patIdx])
		for rep := 0; rep < reps; rep++ {
			steps.Series(c.pol).Add(pat, results[i].steps[rep])
			restarts.Series(c.pol).Add(pat, results[i].restarts[rep])
		}
	}
	return steps, restarts, nil
}

// runTraceThroughDV replays one access sequence as a synthetic analysis
// over a fresh Virtualizer with the given replacement policy.
func runTraceThroughDV(base *model.Context, policy string, accesses []int) (core.CtxStats, error) {
	ctx := *base // shallow copy; Grid and sizes are values
	ctx.Name = "dvreplay"
	eng := des.NewEngine()
	l := &simulator.DESLauncher{Engine: eng}
	v := core.New(eng, l)
	l.Events = v
	if err := v.AddContext(&ctx, policy, nil); err != nil {
		return core.CtxStats{}, err
	}
	done := false
	var abortMsg string
	a := &Analysis{
		Engine: eng, V: v, Ctx: &ctx, Client: "trace",
		Steps:  accesses,
		TauCli: 100 * time.Millisecond,
		OnDone: func(time.Duration) { done = true },
		OnAbort: func(msg string) {
			abortMsg = msg
		},
	}
	a.Start()
	if !eng.Run(100_000_000) {
		return core.CtxStats{}, fmt.Errorf("dv replay did not converge")
	}
	if abortMsg != "" {
		return core.CtxStats{}, fmt.Errorf("dv replay aborted: %s", abortMsg)
	}
	if !done {
		return core.CtxStats{}, fmt.Errorf("dv replay never completed")
	}
	return v.Stats(ctx.Name)
}
