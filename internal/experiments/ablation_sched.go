package experiments

import (
	"fmt"
	"time"

	"simfs/internal/metrics"
	"simfs/internal/sched"
	"simfs/internal/simulator"
)

// AblationScheduler quantifies the re-simulation scheduler's design
// choices — interval coalescing and priority-ordered queueing — on the
// multi-analysis workload: many concurrent analyses with overlapping
// working sets contending for a small smax, the regime where the launch
// queue actually forms. The 2×2 grid (coalescing × priorities) runs as
// independent cells on the worker pool; the baseline cell is the
// paper-exact policy, so the row differences are exactly what the
// scheduler buys.
func AblationScheduler(seed int64) (*metrics.Table, error) {
	tab := metrics.NewTable("Ablation — re-simulation scheduler (coalescing × priorities)", "mode", "value")
	modes := []struct {
		name string
		cfg  sched.Config
	}{
		{"baseline", sched.Config{}},
		{"+coalesce", sched.Config{Coalesce: true}},
		{"+priorities", sched.Config{Priorities: true}},
		{"+both", sched.Config{Coalesce: true, Priorities: true}},
	}
	results, err := RunCells(0, len(modes), func(i int) (MultiAnalysisResult, error) {
		ctx := simulator.CosmoScaling()
		ctx.MaxCacheBytes = 128 * ctx.OutputBytes
		ctx.SMax = 4 // tight capacity: the queue is where the action is
		res, err := MultiAnalysis(ctx, MultiAnalysisConfig{
			Clients: 10, Steps: 48, TauCli: 100 * time.Millisecond,
			Seed: seed, Backward: 0.25, Sched: modes[i].cfg,
		})
		if err != nil {
			return MultiAnalysisResult{}, fmt.Errorf("scheduler ablation %s: %w", modes[i].name, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for i, mode := range modes {
		r := results[i]
		var xs []float64
		for _, d := range r.Completion {
			xs = append(xs, d.Seconds())
		}
		tab.Series("median completion (s)").Add(mode.name, metrics.Summarize(xs).Median)
		tab.Series("restarts").Add(mode.name, float64(r.Stats.Restarts))
		tab.Series("steps produced").Add(mode.name, float64(r.Stats.StepsProduced))
		tab.Series("dropped prefetch").Add(mode.name, float64(r.Stats.DroppedPrefetch))
		tab.Series("coalesced").Add(mode.name, float64(r.Sched.Coalesced))
		tab.Series("queued jobs").Add(mode.name, float64(r.Sched.Queued))
		tab.Series("demand wait (s)").Add(mode.name, r.Sched.DemandWait.Wait.Seconds())
	}
	return tab, nil
}
