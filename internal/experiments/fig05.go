package experiments

import (
	"fmt"

	"simfs/internal/metrics"
	"simfs/internal/model"
	"simfs/internal/simulator"
	"simfs/internal/trace"
)

// fig05TraceConfig parameterizes one concatenated analysis trace of the
// caching study — 50 analyses of 100–400 accesses each — for a given
// repetition. Traces depend only on (pattern, seed, rep), so every cell
// that needs one regenerates it deterministically instead of sharing a
// pre-materialized matrix: generation is ~0.3% of a replay's cost and a
// cell-local buffer (ReplayState.GenerateTrace) makes it allocation-free.
func fig05TraceConfig(ctx *model.Context, seed int64, rep int) trace.Config {
	return trace.Config{
		NumSteps:    ctx.Grid.NumOutputSteps(),
		NumAnalyses: 50,
		MinLen:      100,
		MaxLen:      400,
		Stride:      1,
		Seed:        seed + int64(rep)*7919,
	}
}

// Fig05Config parameterizes the replacement-scheme comparison (Fig. 5):
// a 4-day simulation (Δd = 5 min, Δr = 4 h), cache at 25% of the data
// volume, 50 concatenated analysis traces of 100–400 accesses each, with
// the experiment repeated Reps times on fresh traces and the median and
// 95% CI reported.
type Fig05Config struct {
	Reps     int
	Seed     int64
	Policies []string
	Patterns []trace.Pattern
	// Workers bounds the experiment worker pool (0 = the package default,
	// see SetWorkers). Any value produces identical tables; cells are
	// seeded per (pattern, rep) and merged in a fixed order.
	Workers int
}

// DefaultFig05 returns the paper's configuration with a bench-friendly
// repetition count (the paper uses 100; the full count is available via
// cmd/simfs-bench -reps).
func DefaultFig05() Fig05Config {
	return Fig05Config{
		Reps:     20,
		Seed:     1,
		Policies: []string{"ARC", "BCL", "DCL", "LIRS", "LRU"},
		Patterns: trace.Patterns(),
	}
}

// Fig05 runs the comparison and returns two tables: re-simulated output
// steps (the bars of Fig. 5) and simulation restarts (the points), one row
// per access pattern and one column per replacement scheme.
//
// The pattern×policy grid runs on the worker pool; each cell replays all
// Reps traces of its pattern on one reused ReplayState, regenerating each
// rep's trace into the state's worker-pinned scratch buffer. Traces
// depend only on (pattern, Seed, rep), so the merged tables are
// bit-identical to a sequential run.
func Fig05(cfg Fig05Config) (steps, restarts *metrics.Table, err error) {
	if cfg.Reps < 1 {
		cfg.Reps = 1
	}
	ctx := simulator.CacheEval()
	steps = metrics.NewTable("Fig. 5 — re-simulated output steps", "pattern", "output steps")
	restarts = metrics.NewTable("Fig. 5 — simulation restarts", "pattern", "restarts")

	type cell struct {
		patIdx int
		pol    string
	}
	var cells []cell
	for p := range cfg.Patterns {
		for _, pol := range cfg.Policies {
			cells = append(cells, cell{p, pol})
		}
	}
	type cellResult struct {
		steps    []float64
		restarts []float64
	}
	results, err := RunCells(cfg.Workers, len(cells), func(i int) (cellResult, error) {
		c := cells[i]
		st, err := NewReplayState(ctx, c.pol)
		if err != nil {
			return cellResult{}, err
		}
		r := cellResult{
			steps:    make([]float64, cfg.Reps),
			restarts: make([]float64, cfg.Reps),
		}
		for rep := 0; rep < cfg.Reps; rep++ {
			tr, err := st.GenerateTrace(cfg.Patterns[c.patIdx], fig05TraceConfig(ctx, cfg.Seed, rep))
			if err != nil {
				return cellResult{}, err
			}
			res, err := ReplayInto(st, ctx, tr)
			if err != nil {
				return cellResult{}, fmt.Errorf("fig05 %s/%s: %w", cfg.Patterns[c.patIdx], c.pol, err)
			}
			r.steps[rep] = float64(res.ProducedSteps)
			r.restarts[rep] = float64(res.Restarts)
		}
		return r, nil
	})
	if err != nil {
		return nil, nil, err
	}
	for i, c := range cells {
		pat := string(cfg.Patterns[c.patIdx])
		for rep := 0; rep < cfg.Reps; rep++ {
			steps.Series(c.pol).Add(pat, results[i].steps[rep])
			restarts.Series(c.pol).Add(pat, results[i].restarts[rep])
		}
	}
	return steps, restarts, nil
}
