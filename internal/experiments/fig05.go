package experiments

import (
	"fmt"

	"simfs/internal/metrics"
	"simfs/internal/model"
	"simfs/internal/simulator"
	"simfs/internal/trace"
)

// generateFig05Trace builds one concatenated analysis trace for the
// caching study: 50 analyses of 100–400 accesses each.
func generateFig05Trace(ctx *model.Context, pat trace.Pattern, seed int64) ([]trace.Access, error) {
	return trace.Generate(pat, trace.Config{
		NumSteps:    ctx.Grid.NumOutputSteps(),
		NumAnalyses: 50,
		MinLen:      100,
		MaxLen:      400,
		Stride:      1,
		Seed:        seed,
	})
}

// Fig05Config parameterizes the replacement-scheme comparison (Fig. 5):
// a 4-day simulation (Δd = 5 min, Δr = 4 h), cache at 25% of the data
// volume, 50 concatenated analysis traces of 100–400 accesses each, with
// the experiment repeated Reps times on fresh traces and the median and
// 95% CI reported.
type Fig05Config struct {
	Reps     int
	Seed     int64
	Policies []string
	Patterns []trace.Pattern
}

// DefaultFig05 returns the paper's configuration with a bench-friendly
// repetition count (the paper uses 100; the full count is available via
// cmd/simfs-bench -reps).
func DefaultFig05() Fig05Config {
	return Fig05Config{
		Reps:     20,
		Seed:     1,
		Policies: []string{"ARC", "BCL", "DCL", "LIRS", "LRU"},
		Patterns: trace.Patterns(),
	}
}

// Fig05 runs the comparison and returns two tables: re-simulated output
// steps (the bars of Fig. 5) and simulation restarts (the points), one row
// per access pattern and one column per replacement scheme.
func Fig05(cfg Fig05Config) (steps, restarts *metrics.Table, err error) {
	if cfg.Reps < 1 {
		cfg.Reps = 1
	}
	ctx := simulator.CacheEval()
	steps = metrics.NewTable("Fig. 5 — re-simulated output steps", "pattern", "output steps")
	restarts = metrics.NewTable("Fig. 5 — simulation restarts", "pattern", "restarts")

	for _, pat := range cfg.Patterns {
		for rep := 0; rep < cfg.Reps; rep++ {
			tr, err := generateFig05Trace(ctx, pat, cfg.Seed+int64(rep)*7919)
			if err != nil {
				return nil, nil, err
			}
			for _, pol := range cfg.Policies {
				res, err := Replay(ctx, pol, tr)
				if err != nil {
					return nil, nil, fmt.Errorf("fig05 %s/%s: %w", pat, pol, err)
				}
				steps.Series(pol).Add(string(pat), float64(res.ProducedSteps))
				restarts.Series(pol).Add(string(pat), float64(res.Restarts))
			}
		}
	}
	return steps, restarts, nil
}
