package experiments

import (
	"bytes"
	"testing"

	"simfs/internal/trace"
)

// TestFig05DVCrossValidatesReplay runs the caching comparison through the
// full DV machinery and checks that the replay's headline orderings
// survive: LIRS worst on backward, and cost-aware DCL not worse than LRU
// on the skewed patterns.
func TestFig05DVCrossValidatesReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("full-DV trace replay in -short mode")
	}
	steps, restarts, err := Fig05DV(2, 10, 1,
		[]string{"DCL", "LIRS", "LRU"},
		[]trace.Pattern{trace.Backward, trace.Random})
	if err != nil {
		t.Fatal(err)
	}
	get := func(pol, pat string) float64 {
		s, ok := steps.Series(pol).At(pat)
		if !ok {
			t.Fatalf("missing %s/%s", pol, pat)
		}
		return s.Median
	}
	// LIRS's backward pathology must reproduce under the real machinery
	// (milder than in the timing-free replay: the smaller workload and
	// prefetching soften it, but the ordering must hold).
	lirs := get("LIRS", "Backward")
	lru := get("LRU", "Backward")
	if lirs < lru*1.05 {
		t.Errorf("Backward: LIRS %.0f should exceed LRU %.0f (eviction of the trajectory)", lirs, lru)
	}
	// Cost awareness must not lose on the random pattern.
	if dcl := get("DCL", "Random"); dcl > get("LRU", "Random")*1.05 {
		t.Errorf("Random: DCL %.0f worse than LRU %.0f", dcl, get("LRU", "Random"))
	}
	// Sanity on the restart counts.
	for _, pol := range []string{"DCL", "LIRS", "LRU"} {
		for _, pat := range []string{"Backward", "Random"} {
			r, ok := restarts.Series(pol).At(pat)
			if !ok || r.Median <= 0 {
				t.Errorf("%s/%s: restarts missing or zero", pol, pat)
			}
		}
	}
}

// TestFig05DVParallelDeterminism locks the worker-pool port of Fig05DV:
// the rendered tables must not depend on the worker count.
func TestFig05DVParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs Fig05DV twice in -short mode")
	}
	render := func(workers int) string {
		SetWorkers(workers)
		defer SetWorkers(0)
		steps, restarts, err := Fig05DV(2, 4, 1,
			[]string{"DCL", "LRU"}, []trace.Pattern{trace.Forward, trace.Random})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := steps.Render(&buf); err != nil {
			t.Fatal(err)
		}
		if err := restarts.Render(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if seq, par := render(1), render(4); seq != par {
		t.Errorf("Fig05DV tables depend on worker count:\n-- j1 --\n%s\n-- j4 --\n%s", seq, par)
	}
}
