package experiments

import "testing"

func TestAblationPrefetchStrategies(t *testing.T) {
	tab, err := AblationPrefetchStrategies()
	if err != nil {
		t.Fatal(err)
	}
	at := func(x string) float64 {
		s, ok := tab.Series("forward").At(x)
		if !ok {
			t.Fatalf("missing %q", x)
		}
		return s.Median
	}
	no := at("no prefetch")
	s2 := at("masking only (smax=2)")
	s8 := at("bandwidth (smax=8)")
	if !(s8 < s2 && s2 < no) {
		t.Errorf("expected monotone improvement: none=%.0f smax2=%.0f smax8=%.0f", no, s2, s8)
	}
}

func TestAblationDoubling(t *testing.T) {
	tab, err := AblationDoubling()
	if err != nil {
		t.Fatal(err)
	}
	imm, ok1 := tab.Series("steps produced").At("immediate")
	dbl, ok2 := tab.Series("steps produced").At("doubling")
	if !ok1 || !ok2 {
		t.Fatal("missing cells")
	}
	// The doubling ramp must not produce more speculative work than
	// launching sopt immediately.
	if dbl.Median > imm.Median {
		t.Errorf("doubling produced %.0f steps, immediate %.0f", dbl.Median, imm.Median)
	}
	tImm, _ := tab.Series("running time (s)").At("immediate")
	tDbl, _ := tab.Series("running time (s)").At("doubling")
	// Ramp-up trades a bounded amount of time for the reduced waste.
	if tDbl.Median > 2*tImm.Median {
		t.Errorf("doubling time %.0fs more than doubles immediate %.0fs", tDbl.Median, tImm.Median)
	}
}

func TestAblationPinPressure(t *testing.T) {
	tab, err := AblationPinPressure()
	if err != nil {
		t.Fatal(err)
	}
	// With nothing pinned there are no overflows; at 90% pinned pressure
	// every policy must still be able to evict the unpinned remainder, so
	// overflows stay zero too — the engine retries the victim stream.
	for _, pol := range []string{"LRU", "DCL", "LIRS", "ARC", "BCL"} {
		z, ok := tab.Series(pol).At("0%")
		if !ok {
			t.Fatalf("missing %s@0%%", pol)
		}
		if z.Median != 0 {
			t.Errorf("%s: overflows with no pins: %.0f", pol, z.Median)
		}
		h, ok := tab.Series(pol).At("90%")
		if !ok {
			t.Fatalf("missing %s@90%%", pol)
		}
		if h.Median != 0 {
			t.Errorf("%s: %v overflow events at 90%% pins; victims must skip pinned entries", pol, h.Median)
		}
	}
}

func TestAblationEMA(t *testing.T) {
	tab, err := AblationEMA()
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []string{"0.1", "0.3", "0.5", "0.9"} {
		s, ok := tab.Series("forward").At(x)
		if !ok || s.Median <= 0 {
			t.Errorf("missing or non-positive completion for smoothing %s", x)
		}
	}
}

func TestAblationPolicyOnWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size replay in -short mode")
	}
	tab, err := AblationPolicyOnWorkloads()
	if err != nil {
		t.Fatal(err)
	}
	// Hit rates are valid probabilities. Backward scans enjoy high
	// spatial locality (the whole interval prefix is produced at the
	// first miss); forward scans extend the running simulation lazily, so
	// most of their accesses are production extensions, not hits.
	for _, pol := range []string{"LRU", "DCL"} {
		fw, ok1 := tab.Series(pol).At("Forward")
		bw, ok2 := tab.Series(pol).At("Backward")
		if !ok1 || !ok2 {
			t.Fatalf("missing %s cells", pol)
		}
		if fw.Median < 0 || fw.Median > 1 || bw.Median < 0 || bw.Median > 1 {
			t.Errorf("%s: hit rates out of [0,1]: fw=%.2f bw=%.2f", pol, fw.Median, bw.Median)
		}
		if bw.Median < 0.5 {
			t.Errorf("%s: backward hit rate %.2f too low for interval-prefix locality", pol, bw.Median)
		}
		if bw.Median <= fw.Median {
			t.Errorf("%s: backward (%.2f) should out-hit forward (%.2f) under lazy production", pol, bw.Median, fw.Median)
		}
	}
}
