package experiments

import (
	"fmt"
	"time"

	"simfs/internal/metrics"
	"simfs/internal/sched"
	"simfs/internal/simulator"
)

// AblationPreempt quantifies demand-over-prefetch preemption and
// per-client DRR fairness on the contended 10-client multi-analysis
// workload under a global node budget: with priorities alone a demand
// miss merely outranks queued speculative work — it still waits for the
// running agent prefetches to finish. Preemption lets it kill one (the
// victim's interval is requeued), so the measured quantity is the
// cumulative demand queue-wait; dropped prefetches must stay zero (the
// victim is deferred, not discarded) in every mode. The baseline row is
// coalesce+priorities under the same budget, so the differences are
// exactly what preemption (and the DRR quantum riding the last row)
// buys.
func AblationPreempt(seed int64) (*metrics.Table, error) {
	tab := metrics.NewTable("Ablation — demand preemption × fairness (node budget 400)", "mode", "value")
	base := sched.Config{Coalesce: true, Priorities: true, TotalNodes: 400}
	modes := []struct {
		name string
		cfg  sched.Config
	}{
		{"priorities", base},
		{"+preempt-youngest", withPreempt(base, sched.PreemptYoungest, 0)},
		{"+preempt-cheapest", withPreempt(base, sched.PreemptCheapest, 0)},
		{"+preempt+drr", withPreempt(base, sched.PreemptYoungest, 24)},
	}
	results, err := RunCells(0, len(modes), func(i int) (MultiAnalysisResult, error) {
		ctx := simulator.CosmoScaling()
		ctx.MaxCacheBytes = 128 * ctx.OutputBytes
		// Contention lives on the node budget here, not on smax: each
		// job runs at P=100, so TotalNodes=400 admits four concurrent
		// re-simulations across the ten clients.
		ctx.SMax = 10000
		// τcli = 2 s keeps the agent prefetches speculative long enough
		// to be preemptable: with a faster analysis the client catches
		// up and waits on its own prefetch, which the no-waiters rule
		// then protects.
		res, err := MultiAnalysis(ctx, MultiAnalysisConfig{
			Clients: 10, Steps: 48, TauCli: 2 * time.Second,
			Seed: seed, Backward: 0.25, Sched: modes[i].cfg,
		})
		if err != nil {
			return MultiAnalysisResult{}, fmt.Errorf("preempt ablation %s: %w", modes[i].name, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	for i, mode := range modes {
		r := results[i]
		var xs []float64
		for _, d := range r.Completion {
			xs = append(xs, d.Seconds())
		}
		tab.Series("median completion (s)").Add(mode.name, metrics.Summarize(xs).Median)
		tab.Series("demand wait (s)").Add(mode.name, r.Sched.DemandWait.Wait.Seconds())
		tab.Series("preempted").Add(mode.name, float64(r.Sched.Preempted))
		tab.Series("restarts").Add(mode.name, float64(r.Stats.Restarts))
		tab.Series("dropped prefetch").Add(mode.name, float64(r.Stats.DroppedPrefetch))
		tab.Series("quota deferred").Add(mode.name, float64(r.Sched.QuotaDeferred))
	}
	return tab, nil
}

func withPreempt(cfg sched.Config, p sched.PreemptPolicy, quantum int) sched.Config {
	cfg.Preempt = p
	cfg.DRRQuantum = quantum
	return cfg
}
