package experiments

import (
	"fmt"

	"simfs/internal/cache"
	"simfs/internal/model"
	"simfs/internal/trace"
)

// ReplayResult reports the re-simulation work caused by a trace: the bars
// (simulated output steps) and points (restarted simulations) of Fig. 5,
// and the V(γ∆t) term of the SimFS cost model.
type ReplayResult struct {
	Accesses      int
	Hits          int
	Misses        int
	Restarts      int
	ProducedSteps int
	Evictions     int
}

// Replay runs an access trace through the caching layer without timing,
// modeling the DV's behavior as seen by a sequential analysis:
//
//   - A miss on output step di restarts a simulation from the closest
//     previous restart step, which produces (and caches) the steps up to
//     di; the simulation would keep running to the next restart step
//     (Sec. II-A's spatial locality).
//   - While the subsequent accesses stay within the running simulation's
//     interval, it keeps producing forward lazily — a forward scan rides
//     one simulation per restart interval.
//   - When an access redirects elsewhere (random jump, backward move past
//     the interval start), SimFS kills the now-useless simulation
//     (Sec. IV-C), so the steps beyond the last one consumed are never
//     produced.
//
// The net effect is the cost model of Sec. III-D: a miss on di costs its
// distance from the closest previous restart step, which is exactly what
// the cost-aware replacement schemes (BCL/DCL) optimize for.
func Replay(ctx *model.Context, policyName string, accesses []trace.Access) (ReplayResult, error) {
	var res ReplayResult
	g := ctx.Grid
	capacity := ctx.CacheCapacitySteps()
	if capacity == 0 {
		capacity = g.NumOutputSteps()
	}
	pol, err := cache.NewPolicy(policyName, capacity)
	if err != nil {
		return res, err
	}
	c := cache.New(pol, ctx.MaxCacheBytes)

	// The running simulation: produced steps in (simFirst-1, simUpTo],
	// can lazily extend to simLast.
	simUpTo, simLast := 0, -1

	produce := func(from, to int) error {
		for s := from; s <= to; s++ {
			res.ProducedSteps++
			evicted, err := c.Insert(ctx.Filename(s), ctx.OutputBytes, g.MissCost(s))
			if err != nil {
				return err
			}
			res.Evictions += len(evicted)
		}
		return nil
	}

	for _, acc := range accesses {
		if !g.ValidOutput(acc.Step) {
			return res, fmt.Errorf("replay: access to invalid step %d", acc.Step)
		}
		res.Accesses++
		name := ctx.Filename(acc.Step)
		if c.Touch(name) {
			res.Hits++
			continue
		}
		res.Misses++
		if acc.Step > simUpTo && acc.Step <= simLast {
			// The running simulation covers it: extend production.
			if err := produce(simUpTo+1, acc.Step); err != nil {
				return res, err
			}
			simUpTo = acc.Step
			continue
		}
		// Redirect: the running simulation (if any) is killed; restart
		// from the closest previous restart step.
		iv, err := g.ResimInterval(acc.Step)
		if err != nil {
			return res, err
		}
		first, last, ok := g.OutputsIn(iv)
		if !ok {
			return res, fmt.Errorf("replay: empty re-simulation interval for step %d", acc.Step)
		}
		res.Restarts++
		if err := produce(first, acc.Step); err != nil {
			return res, err
		}
		simUpTo, simLast = acc.Step, last
	}
	return res, nil
}
