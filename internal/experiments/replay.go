package experiments

import (
	"fmt"
	"math/rand"

	"simfs/internal/cache"
	"simfs/internal/model"
	"simfs/internal/trace"
)

// ReplayResult reports the re-simulation work caused by a trace: the bars
// (simulated output steps) and points (restarted simulations) of Fig. 5,
// and the V(γ∆t) term of the SimFS cost model.
type ReplayResult struct {
	Accesses      int
	Hits          int
	Misses        int
	Restarts      int
	ProducedSteps int
	Evictions     int
}

// ReplayState is a reusable policy+cache pair for repeated replays. The
// cache is keyed by integer output-step index, so the per-access file-name
// formatting of the string-keyed path (the Virtualizer's view) never runs
// here; the rep loops of the caching study reset and reuse one state per
// (pattern, policy) cell instead of allocating a fresh policy and cache
// per replay. The state also carries a trace scratch buffer: a cell runs
// wholly on one worker of the experiment pool, so the buffer is
// worker-pinned and the rep loops regenerate each repetition's trace into
// it instead of allocating (or pre-materializing) one slice per rep.
type ReplayState struct {
	c        *cache.CacheOf[int]
	traceBuf []trace.Access
	rng      *rand.Rand
}

// GenerateTrace regenerates a deterministic trace into the state's
// reusable buffer. The accesses are identical to trace.Generate's for the
// same (pattern, config); the returned slice is only valid until the next
// GenerateTrace call on this state. The rng is worker-pinned alongside
// the buffer, so a warmed state regenerates without allocating.
func (st *ReplayState) GenerateTrace(p trace.Pattern, cfg trace.Config) ([]trace.Access, error) {
	if st.rng == nil {
		st.rng = rand.New(rand.NewSource(cfg.Seed))
	}
	tr, err := trace.GenerateWith(st.rng, st.traceBuf, p, cfg)
	if err != nil {
		return nil, err
	}
	st.traceBuf = tr
	return tr, nil
}

// NewReplayState builds a replay state for one context and replacement
// scheme.
func NewReplayState(ctx *model.Context, policyName string) (*ReplayState, error) {
	capacity := ctx.CacheCapacitySteps()
	if capacity == 0 {
		capacity = ctx.Grid.NumOutputSteps()
	}
	pol, err := cache.NewPolicyOf[int](policyName, capacity)
	if err != nil {
		return nil, err
	}
	return &ReplayState{c: cache.NewOf(pol, ctx.MaxCacheBytes)}, nil
}

// Replay runs an access trace through the caching layer without timing,
// modeling the DV's behavior as seen by a sequential analysis:
//
//   - A miss on output step di restarts a simulation from the closest
//     previous restart step, which produces (and caches) the steps up to
//     di; the simulation would keep running to the next restart step
//     (Sec. II-A's spatial locality).
//   - While the subsequent accesses stay within the running simulation's
//     interval, it keeps producing forward lazily — a forward scan rides
//     one simulation per restart interval.
//   - When an access redirects elsewhere (random jump, backward move past
//     the interval start), SimFS kills the now-useless simulation
//     (Sec. IV-C), so the steps beyond the last one consumed are never
//     produced.
//
// The net effect is the cost model of Sec. III-D: a miss on di costs its
// distance from the closest previous restart step, which is exactly what
// the cost-aware replacement schemes (BCL/DCL) optimize for.
func Replay(ctx *model.Context, policyName string, accesses []trace.Access) (ReplayResult, error) {
	st, err := NewReplayState(ctx, policyName)
	if err != nil {
		return ReplayResult{}, err
	}
	return ReplayInto(st, ctx, accesses)
}

// ReplayInto replays a trace on a reused state (see Replay for the
// model). The state is reset first, so each call is independent; reusing
// one state across the repetitions of an experiment cell keeps the
// policy/cache construction out of the rep loop.
func ReplayInto(st *ReplayState, ctx *model.Context, accesses []trace.Access) (ReplayResult, error) {
	var res ReplayResult
	st.c.Reset()
	g := ctx.Grid
	c := st.c

	// The running simulation: produced steps in (simFirst-1, simUpTo],
	// can lazily extend to simLast.
	simUpTo, simLast := 0, -1

	produce := func(from, to int) error {
		for s := from; s <= to; s++ {
			res.ProducedSteps++
			evictions, err := c.InsertDiscard(s, ctx.OutputBytes, g.MissCost(s))
			if err != nil {
				return err
			}
			res.Evictions += evictions
		}
		return nil
	}

	for _, acc := range accesses {
		if !g.ValidOutput(acc.Step) {
			return res, fmt.Errorf("replay: access to invalid step %d", acc.Step)
		}
		res.Accesses++
		if c.Touch(acc.Step) {
			res.Hits++
			continue
		}
		res.Misses++
		if acc.Step > simUpTo && acc.Step <= simLast {
			// The running simulation covers it: extend production.
			if err := produce(simUpTo+1, acc.Step); err != nil {
				return res, err
			}
			simUpTo = acc.Step
			continue
		}
		// Redirect: the running simulation (if any) is killed; restart
		// from the closest previous restart step.
		iv, err := g.ResimInterval(acc.Step)
		if err != nil {
			return res, err
		}
		first, last, ok := g.OutputsIn(iv)
		if !ok {
			return res, fmt.Errorf("replay: empty re-simulation interval for step %d", acc.Step)
		}
		res.Restarts++
		if err := produce(first, acc.Step); err != nil {
			return res, err
		}
		simUpTo, simLast = acc.Step, last
	}
	return res, nil
}
