// Package faults provides composable, deterministically seeded fault
// injectors for chaos testing the SimFS stack end to end:
//
//   - FS wraps a vfs.FS storage area and injects I/O errors into the
//     write path (Create/Remove), the errors a parallel file system
//     under pressure actually produces.
//   - SimPlan is a simulation failure schedule pluggable into the
//     launchers' FailAt hook: crash-at-step, fail-N-times-then-succeed,
//     permanent failure, every-nth-launch (the old FailEvery), and
//     seeded random crashes.
//   - ConnPlan wraps net.Conn and severs, delays, or partially writes
//     at configurable points, modeling flaky networks between DVLib
//     clients and the daemon.
//
// Every injector is deterministic for a given seed and call sequence, so
// a chaos-run failure reproduces from its seed. All injectors count what
// they injected; harnesses assert the schedule actually fired.
package faults

import (
	"fmt"
	"math/rand"
	"sync"
)

// seededRng returns a locked deterministic source. The stdlib global rng
// is deliberately avoided: chaos schedules must replay byte-identically
// from their seed.
func seededRng(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// SimPlan decides, per simulation launch, whether and where the run
// crashes. It implements the launchers' FailAt hook: the return value is
// the first step the crashed run does NOT produce (steps first..crash-1
// land on storage before the failure), crash == first fails before
// producing anything, and a negative return means the launch runs
// healthy. The zero value injects nothing.
type SimPlan struct {
	mu       sync.Mutex
	every    int64
	rules    []simRule
	attempts map[string]int
	rng      *rand.Rand
	prob     float64
	launches int64
	injected uint64
}

type simRule struct {
	ctx   string // "" matches every context
	step  int    // launch matches when first <= step <= last; -1 = all
	after int    // steps produced before the crash
	failN int    // fail this many matching launches, then heal; 0 = permanent
	fired int
}

// NewSimPlan returns an empty plan; compose it with the With* methods.
func NewSimPlan() *SimPlan { return &SimPlan{} }

// WithEvery crashes every n-th launch halfway through its range — the
// semantics of the launchers' old FailEvery knob (0 disables).
func (p *SimPlan) WithEvery(n int) *SimPlan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.every = int64(n)
	return p
}

// WithCrashAt permanently fails every launch of ctxName whose range
// covers step, after producing `after` steps. ctxName "" matches every
// context; step -1 matches every launch.
func (p *SimPlan) WithCrashAt(ctxName string, step, after int) *SimPlan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rules = append(p.rules, simRule{ctx: ctxName, step: step, after: after})
	return p
}

// WithFailN fails the first n matching launches (producing `after` steps
// each time), then lets later attempts succeed — the shape a transient
// simulator failure has, and what the retry ledger must ride out.
func (p *SimPlan) WithFailN(ctxName string, step, n, after int) *SimPlan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rules = append(p.rules, simRule{ctx: ctxName, step: step, after: after, failN: n})
	return p
}

// WithRandom crashes each launch with probability prob at a seeded
// random point in its range.
func (p *SimPlan) WithRandom(seed int64, prob float64) *SimPlan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rng = seededRng(seed)
	p.prob = prob
	return p
}

// FailAt is the launcher hook (simulator.DESLauncher.FailAt /
// simulator.RealTimeLauncher.FailAt). It must observe every launch so
// per-launch counters stay in step with the launcher's ids.
func (p *SimPlan) FailAt(ctxName string, first, last int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.launches++
	for i := range p.rules {
		r := &p.rules[i]
		if r.ctx != "" && r.ctx != ctxName {
			continue
		}
		if r.step >= 0 && (r.step < first || r.step > last) {
			continue
		}
		if r.failN > 0 && r.fired >= r.failN {
			continue
		}
		r.fired++
		p.injected++
		return clampCrash(first, last, first+r.after)
	}
	if p.every > 0 && p.launches%p.every == 0 {
		p.injected++
		return clampCrash(first, last, first+(last-first)/2+1)
	}
	if p.rng != nil && p.prob > 0 && p.rng.Float64() < p.prob {
		p.injected++
		return clampCrash(first, last, first+p.rng.Intn(last-first+1))
	}
	return -1
}

// clampCrash keeps the crash step inside [first, last] so a fault is
// never silently rounded into a healthy run.
func clampCrash(first, last, crash int) int {
	if crash < first {
		return first
	}
	if crash > last {
		return last
	}
	return crash
}

// Injected returns how many launches the plan crashed so far.
func (p *SimPlan) Injected() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.injected
}

// InjectedError marks storage errors produced by FS so tests can tell
// injected faults from real ones.
type InjectedError struct {
	Op   string
	Name string
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faults: injected storage error: %s %q", e.Op, e.Name)
}
