package faults

import (
	"errors"
	"net"
	"testing"

	"simfs/internal/vfs"
)

func TestSimPlanCrashAtAndHeal(t *testing.T) {
	p := NewSimPlan().WithFailN("cosmo", 5, 2, 1)
	// First two launches covering step 5 crash after producing one step.
	if got := p.FailAt("cosmo", 4, 8); got != 5 {
		t.Fatalf("first attempt: crash at %d, want 5", got)
	}
	if got := p.FailAt("cosmo", 4, 8); got != 5 {
		t.Fatalf("second attempt: crash at %d, want 5", got)
	}
	// Third attempt heals.
	if got := p.FailAt("cosmo", 4, 8); got != -1 {
		t.Fatalf("third attempt: crash at %d, want healthy (-1)", got)
	}
	// Other contexts and non-matching ranges never crash.
	if got := p.FailAt("flash", 4, 8); got != -1 {
		t.Fatalf("other context crashed at %d", got)
	}
	if got := p.FailAt("cosmo", 9, 12); got != -1 {
		t.Fatalf("non-covering range crashed at %d", got)
	}
	if p.Injected() != 2 {
		t.Fatalf("injected = %d, want 2", p.Injected())
	}
}

func TestSimPlanPermanentAndEvery(t *testing.T) {
	perm := NewSimPlan().WithCrashAt("", -1, 0)
	for i := 0; i < 5; i++ {
		if got := perm.FailAt("any", 0, 9); got != 0 {
			t.Fatalf("permanent plan: crash at %d, want 0", got)
		}
	}
	every := NewSimPlan().WithEvery(2)
	var crashes int
	for i := 0; i < 10; i++ {
		if every.FailAt("c", 0, 9) >= 0 {
			crashes++
		}
	}
	if crashes != 5 {
		t.Fatalf("every(2): %d crashes in 10 launches, want 5", crashes)
	}
}

func TestSimPlanRandomDeterministic(t *testing.T) {
	run := func() []int {
		p := NewSimPlan().WithRandom(42, 0.5)
		out := make([]int, 20)
		for i := range out {
			out[i] = p.FailAt("c", 0, 9)
		}
		return out
	}
	a, b := run(), run()
	var crashed bool
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule diverged at launch %d: %d vs %d", i, a[i], b[i])
		}
		if a[i] >= 0 {
			crashed = true
			if a[i] > 9 {
				t.Fatalf("crash step %d outside range", a[i])
			}
		}
	}
	if !crashed {
		t.Fatal("seeded random plan with prob 0.5 never crashed in 20 launches")
	}
}

func TestFSInjection(t *testing.T) {
	fs := WrapFS(vfs.NewMem(), 1, 0)
	fs.FailNextN(1)
	err := fs.Create("a", 10)
	var inj *InjectedError
	if !errors.As(err, &inj) {
		t.Fatalf("want InjectedError, got %v", err)
	}
	if fs.Exists("a") {
		t.Fatal("failed create must not materialize the file")
	}
	if err := fs.Create("a", 10); err != nil {
		t.Fatalf("second create: %v", err)
	}
	if !fs.Exists("a") || fs.UsedBytes() != 10 {
		t.Fatal("pass-through create did not land")
	}
	if fs.Injected() != 1 {
		t.Fatalf("injected = %d, want 1", fs.Injected())
	}

	// Probabilistic schedule is deterministic per seed.
	count := func(seed int64) uint64 {
		f := WrapFS(vfs.NewMem(), seed, 0.5)
		for i := 0; i < 50; i++ {
			f.Create("x", 1) //nolint:errcheck
		}
		return f.Injected()
	}
	if count(7) != count(7) {
		t.Fatal("same seed produced different injection counts")
	}
	if count(7) == 0 {
		t.Fatal("prob 0.5 never injected in 50 ops")
	}
}

func TestConnPlanCutAfter(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	plan := &ConnPlan{Seed: 3, CutAfter: 2}
	fc := plan.Wrap(server)

	done := make(chan struct{})
	go func() {
		defer close(done)
		buf := make([]byte, 8)
		client.Read(buf) //nolint:errcheck
		client.Read(buf) //nolint:errcheck
		client.Close()
	}()

	if _, err := fc.Write([]byte("hello")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if _, err := fc.Write([]byte("world")); err == nil {
		t.Fatal("second write should be cut")
	}
	if _, err := fc.Write([]byte("dead")); err == nil {
		t.Fatal("writes after the cut must keep failing")
	}
	<-done
	if plan.Injected() == 0 {
		t.Fatal("plan did not record the cut")
	}
}

func TestConnPlanNoScheduleIsPassthrough(t *testing.T) {
	_, server := net.Pipe()
	defer server.Close()
	var plan *ConnPlan
	if plan.Wrap(server) != server {
		t.Fatal("nil plan must return the conn unchanged")
	}
	empty := &ConnPlan{}
	if empty.Wrap(server) != server {
		t.Fatal("empty plan must return the conn unchanged")
	}
}
