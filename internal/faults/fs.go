package faults

import (
	"math/rand"
	"sync"

	"simfs/internal/vfs"
)

// FS wraps a storage area (vfs.Disk or vfs.Mem) and injects errors into
// the write path. A re-simulation whose output Create fails reports a
// Failed outcome to the DV core, so storage faults exercise exactly the
// retry/quarantine machinery a flaky parallel file system would.
type FS struct {
	inner vfs.FS

	mu       sync.Mutex
	rng      *rand.Rand
	prob     float64
	failN    int
	injected uint64
}

// WrapFS wraps a storage area: each Create or Remove fails with
// probability prob, deterministically from seed and the call sequence.
func WrapFS(inner vfs.FS, seed int64, prob float64) *FS {
	return &FS{inner: inner, rng: seededRng(seed), prob: prob}
}

// FailNextN makes the next n write operations fail unconditionally, on
// top of the probabilistic schedule.
func (f *FS) FailNextN(n int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.failN = n
}

// Injected returns how many operations failed by injection so far.
func (f *FS) Injected() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

func (f *FS) inject(op, name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.failN > 0 {
		f.failN--
		f.injected++
		return &InjectedError{Op: op, Name: name}
	}
	if f.prob > 0 && f.rng.Float64() < f.prob {
		f.injected++
		return &InjectedError{Op: op, Name: name}
	}
	return nil
}

// Create implements vfs.FS.
func (f *FS) Create(name string, size int64) error {
	if err := f.inject("create", name); err != nil {
		return err
	}
	return f.inner.Create(name, size)
}

// Exists implements vfs.FS.
func (f *FS) Exists(name string) bool { return f.inner.Exists(name) }

// Size implements vfs.FS.
func (f *FS) Size(name string) (int64, bool) { return f.inner.Size(name) }

// Read implements vfs.FS.
func (f *FS) Read(name string) ([]byte, error) { return f.inner.Read(name) }

// Remove implements vfs.FS.
func (f *FS) Remove(name string) error {
	if err := f.inject("remove", name); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

// List implements vfs.FS.
func (f *FS) List() []string { return f.inner.List() }

// UsedBytes implements vfs.FS.
func (f *FS) UsedBytes() int64 { return f.inner.UsedBytes() }
