package faults

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrConnCut is returned from Read/Write on a connection the plan
// severed; the peer observes a hard close (RST-like), clients observe a
// mid-frame error — exactly the failure auto-reconnect must absorb.
var ErrConnCut = errors.New("faults: injected connection cut")

// ConnPlan schedules connection faults. Wrap is plugged into
// server.Server.WrapConn (or any dialer): each wrapped connection gets
// its own rng stream derived from Seed and the accept order, so a
// multi-client chaos schedule replays deterministically per connection.
type ConnPlan struct {
	// Seed roots the per-connection rng streams.
	Seed int64
	// CutProb severs the connection with this probability per I/O call.
	CutProb float64
	// CutAfter severs each connection after this many I/O calls
	// (0 = disabled). Combined with CutProb both schedules apply.
	CutAfter int
	// Delay sleeps this long before each I/O call with probability
	// DelayProb, modeling a congested link.
	Delay     time.Duration
	DelayProb float64
	// Partial delivers roughly half of a write before severing it, so
	// the peer sees a truncated frame rather than a clean boundary.
	Partial bool

	mu       sync.Mutex
	conns    int64
	injected uint64
}

// Wrap returns c with the plan's faults applied. A nil plan (or one with
// no schedule) returns c unchanged.
func (p *ConnPlan) Wrap(c net.Conn) net.Conn {
	if p == nil || (p.CutProb <= 0 && p.CutAfter <= 0 && p.DelayProb <= 0) {
		return c
	}
	p.mu.Lock()
	p.conns++
	n := p.conns
	p.mu.Unlock()
	return &faultConn{Conn: c, plan: p, rng: seededRng(p.Seed + n*0x9E3779B9)}
}

// Injected returns how many cuts the plan performed.
func (p *ConnPlan) Injected() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.injected
}

func (p *ConnPlan) noteCut() {
	p.mu.Lock()
	p.injected++
	p.mu.Unlock()
}

type faultConn struct {
	net.Conn
	plan *ConnPlan

	mu  sync.Mutex
	rng *rand.Rand
	ops int
	cut bool
}

// step decides, under the conn's lock, what happens to the next I/O
// call: a delay to apply, and whether the connection is severed now.
func (c *faultConn) step() (delay time.Duration, cut bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cut {
		return 0, true
	}
	c.ops++
	if c.plan.DelayProb > 0 && c.rng.Float64() < c.plan.DelayProb {
		delay = c.plan.Delay
	}
	if c.plan.CutAfter > 0 && c.ops >= c.plan.CutAfter {
		c.cut = true
	}
	if c.plan.CutProb > 0 && c.rng.Float64() < c.plan.CutProb {
		c.cut = true
	}
	if c.cut {
		c.plan.noteCut()
	}
	return delay, c.cut
}

// Read injects the planned delay/cut before the real read.
//
//simfs:allow wallclock fault injection delays a real connection by design
func (c *faultConn) Read(b []byte) (int, error) {
	delay, cut := c.step()
	if delay > 0 {
		time.Sleep(delay)
	}
	if cut {
		c.Conn.Close()
		return 0, ErrConnCut
	}
	return c.Conn.Read(b)
}

// Write injects the planned delay/cut before the real write.
//
//simfs:allow wallclock fault injection delays a real connection by design
func (c *faultConn) Write(b []byte) (int, error) {
	delay, cut := c.step()
	if delay > 0 {
		time.Sleep(delay)
	}
	if cut {
		n := 0
		if c.plan.Partial && len(b) > 1 {
			n, _ = c.Conn.Write(b[:len(b)/2])
		}
		c.Conn.Close()
		return n, ErrConnCut
	}
	return c.Conn.Write(b)
}
