package core

import (
	"testing"
	"time"

	"simfs/internal/model"
	"simfs/internal/sched"
)

// injectAgentPrefetch submits a speculative agent-prefetch launch the way
// a prefetch agent would, from under the shard lock.
func injectAgentPrefetch(t *testing.T, h *harness, ctxName, client string, first, last int) {
	t.Helper()
	cs, ok := h.v.shardOf(ctxName)
	if !ok {
		t.Fatalf("unknown context %q", ctxName)
	}
	cs.mu.Lock()
	h.v.launch(cs, first, last, 1, sched.Agent, client)
	cs.mu.Unlock()
}

// TestPreemptionKillsAgentPrefetchForDemand: with the one-node budget
// held by a running agent prefetch, a demand miss kills it instead of
// waiting behind it, and the victim's interval is requeued — the
// speculative work finishes later instead of being lost.
func TestPreemptionKillsAgentPrefetchForDemand(t *testing.T) {
	ctx := testContext("c")
	h := schedHarness(t, sched.Config{Priorities: true, TotalNodes: 1, Preempt: sched.PreemptYoungest}, ctx)
	injectAgentPrefetch(t, h, "c", "spec", 9, 12)

	var demandAt time.Duration
	if _, err := h.v.Open("a1", "c", ctx.Filename(1)); err != nil {
		t.Fatal(err)
	}
	if st := h.v.SchedStats(); st.Preempted != 1 {
		t.Fatalf("Preempted = %d after the blocked demand open, want 1", st.Preempted)
	}
	if err := h.v.WaitFile("a1", "c", ctx.Filename(1), func(st Status) {
		if st.Err != "" {
			t.Errorf("demand wait failed: %s", st.Err)
		}
		demandAt = h.eng.Now()
	}); err != nil {
		t.Fatal(err)
	}
	h.eng.Run(0)

	// With the victim killed at t=0 the demand sim starts immediately:
	// α (2 s) + 1·τ (1 s). Waiting out the prefetch would have cost the
	// victim's full α + 4·τ = 6 s first.
	if demandAt != 3*time.Second {
		t.Errorf("demand served at %v, want 3s (preempted victim's nodes reused immediately)", demandAt)
	}
	// The requeued interval completed afterwards: speculation deferred,
	// not discarded.
	for s := 9; s <= 12; s++ {
		if resident, _, _ := h.v.FileState("c", ctx.Filename(s)); !resident {
			t.Errorf("step %d of the preempted prefetch never rematerialized", s)
		}
	}
	st, _ := h.v.Stats("c")
	if st.Kills != 1 {
		t.Errorf("kills = %d, want the one preemption kill", st.Kills)
	}
	if err := h.v.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPreemptCheapestPicksLeastRemaining: with two running prefetches,
// cheapest-remaining-first kills the one whose remaining production the
// cost model prices lowest — the shorter interval here.
func TestPreemptCheapestPicksLeastRemaining(t *testing.T) {
	ctx := testContext("c")
	ctx.SMax = 8
	h := schedHarness(t, sched.Config{Priorities: true, TotalNodes: 2, Preempt: sched.PreemptCheapest}, ctx)
	injectAgentPrefetch(t, h, "c", "spec", 9, 20)  // 12 steps remaining
	injectAgentPrefetch(t, h, "c", "spec", 25, 28) // 4 steps remaining
	if _, err := h.v.Open("a1", "c", ctx.Filename(1)); err != nil {
		t.Fatal(err)
	}
	if st := h.v.SchedStats(); st.Preempted != 1 {
		t.Fatalf("Preempted = %d, want exactly 1 (one node suffices)", st.Preempted)
	}
	// The long prefetch must still be running: only the short one died.
	cs, _ := h.v.shardOf("c")
	cs.mu.Lock()
	var longAlive, shortAlive bool
	for _, sim := range cs.sims {
		if sim.class == sched.Agent && !sim.preempted {
			if sim.first == 9 {
				longAlive = true
			}
			if sim.first == 25 {
				shortAlive = true
			}
		}
	}
	cs.mu.Unlock()
	if !longAlive || shortAlive {
		t.Errorf("victim selection: long alive=%v short alive=%v, want the short interval killed", longAlive, shortAlive)
	}
	h.eng.Run(0)
	if err := h.v.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPreemptSparesCoalescedPrefetchWithWaiters: a running prefetch
// born from a coalesced multi-client job whose range someone now waits
// on must not be killed (the paper's no-waiters rule), even while a
// demand miss starves on the node budget.
func TestPreemptSparesCoalescedPrefetchWithWaiters(t *testing.T) {
	ctx := testContext("c")
	h := schedHarness(t, sched.Config{
		Coalesce: true, Priorities: true, TotalNodes: 1, Preempt: sched.PreemptYoungest,
	}, ctx)
	// Fill the budget with demand work, then queue two mergeable
	// prefetches from different clients: they coalesce into one job.
	if _, err := h.v.Open("a1", "c", ctx.Filename(50)); err != nil {
		t.Fatal(err)
	}
	if _, err := h.v.GuidedPrefetch("p1", "c", []string{ctx.Filename(9)}); err != nil {
		t.Fatal(err)
	}
	if _, err := h.v.GuidedPrefetch("p2", "c", []string{ctx.Filename(11)}); err != nil {
		t.Fatal(err)
	}
	if d := h.v.Scheduler().QueueDepth(); d != 1 {
		t.Fatalf("queue depth = %d, want 1 coalesced prefetch job", d)
	}
	// Let the demand work finish so the merged prefetch launches.
	h.eng.Run(0)
	// Re-open far-away demand work that will miss below, and register a
	// waiter inside the running prefetch's range.
	cs, _ := h.v.shardOf("c")
	cs.mu.Lock()
	h.v.launch(cs, 61, 64, 1, sched.Agent, "spec")
	cs.mu.Unlock()
	if st := h.v.SchedStats(); st.Preempted != 0 {
		t.Fatalf("Preempted = %d before any demand pressure, want 0", st.Preempted)
	}
	got := false
	if _, err := h.v.Open("w", "c", ctx.Filename(62)); err != nil {
		t.Fatal(err)
	}
	if err := h.v.WaitFile("w", "c", ctx.Filename(62), func(st Status) {
		got = st.Err == ""
	}); err != nil {
		t.Fatal(err)
	}
	// The demand miss is node-blocked, but the only candidate's range
	// has a waiter: nothing may die.
	if _, err := h.v.Open("a1", "c", ctx.Filename(30)); err != nil {
		t.Fatal(err)
	}
	if st := h.v.SchedStats(); st.Preempted != 0 {
		t.Fatalf("Preempted = %d, want 0 (no-waiters rule protects the sim)", st.Preempted)
	}
	h.eng.Run(0)
	if !got {
		t.Error("the protected prefetch never served its waiter")
	}
	if err := h.v.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPreemptVictimFinishedBetweenSelectionAndKill: the kill re-checks
// the victim under its shard lock — a simulation that completed after
// selection is simply no longer preemptable, with no ledger damage.
func TestPreemptVictimFinishedBetweenSelectionAndKill(t *testing.T) {
	ctx := testContext("c")
	h := schedHarness(t, sched.Config{Priorities: true, TotalNodes: 1, Preempt: sched.PreemptYoungest}, ctx)
	injectAgentPrefetch(t, h, "c", "spec", 9, 12)
	refs := h.v.preemptCandidates(h.v.sched.Config())
	if len(refs) != 1 {
		t.Fatalf("candidates = %d, want the running prefetch", len(refs))
	}
	// The victim completes while the selection is in hand.
	h.eng.Run(0)
	if h.v.killVictim(refs[0].cs, refs[0].vic.SimID) {
		t.Fatal("killVictim succeeded against a finished simulation")
	}
	if st := h.v.SchedStats(); st.Preempted != 0 {
		t.Errorf("Preempted = %d, want 0", st.Preempted)
	}
	// The budget is free: a demand open admits immediately.
	if _, err := h.v.Open("a1", "c", ctx.Filename(1)); err != nil {
		t.Fatal(err)
	}
	h.eng.Run(0)
	if resident, _, _ := h.v.FileState("c", ctx.Filename(1)); !resident {
		t.Error("demand work never produced after the stale-victim retry")
	}
	if err := h.v.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPreemptSkipsSimBeingCancelled: a sim whose cancellation kill is
// already in flight (disconnect, agent reset) must not be chosen as a
// preemption victim — marking it preempted would convert the intended
// cancellation into a requeue, resurrecting the dismantled prefetch.
func TestPreemptSkipsSimBeingCancelled(t *testing.T) {
	ctx := testContext("c")
	h := schedHarness(t, sched.Config{Priorities: true, TotalNodes: 1, Preempt: sched.PreemptYoungest}, ctx)
	injectAgentPrefetch(t, h, "c", "spec", 9, 12)
	// The client disconnects: its running prefetch gets a cancellation
	// kill whose SimEnded has not been delivered yet.
	h.v.ClientDisconnected("spec")
	// A demand miss lands in that window. The dying sim must not be
	// selected (its nodes come back through the cancellation anyway).
	if _, err := h.v.Open("a1", "c", ctx.Filename(1)); err != nil {
		t.Fatal(err)
	}
	if st := h.v.SchedStats(); st.Preempted != 0 {
		t.Fatalf("Preempted = %d, want 0 (the victim was already being cancelled)", st.Preempted)
	}
	h.eng.Run(0)
	// The cancellation stuck: the dismantled prefetch range was not
	// resurrected by a preemption requeue…
	for s := 9; s <= 12; s++ {
		if resident, promised, _ := h.v.FileState("c", ctx.Filename(s)); resident || promised {
			t.Errorf("step %d of the cancelled prefetch came back (resident=%v promised=%v)", s, resident, promised)
		}
	}
	// …while the demand work completed through the freed nodes.
	if resident, _, _ := h.v.FileState("c", ctx.Filename(1)); !resident {
		t.Error("demand work never completed after the cancellation freed the budget")
	}
	if err := h.v.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineUpstreamDemandTriggersPreemption: a downstream demand
// open that is itself admitted but whose pipeline-upstream demand
// launch queues node-blocked must still probe for preemption
// immediately — the cue bubbles out of the nested launch instead of
// waiting for an unrelated capacity event.
func TestPipelineUpstreamDemandTriggersPreemption(t *testing.T) {
	coarse := &model.Context{
		Name:               "coarse",
		Grid:               model.Grid{DeltaD: 4, DeltaR: 16, Timesteps: 128},
		OutputBytes:        1,
		Tau:                time.Second,
		Alpha:              2 * time.Second,
		DefaultParallelism: 2,
		MaxParallelism:     2,
		SMax:               4,
		NoPrefetch:         true,
	}
	coarse.ApplyDefaults()
	fine := &model.Context{
		Name:               "fine",
		Grid:               model.Grid{DeltaD: 1, DeltaR: 8, Timesteps: 128},
		OutputBytes:        1,
		Tau:                time.Second,
		Alpha:              2 * time.Second,
		DefaultParallelism: 1,
		MaxParallelism:     1,
		SMax:               4,
		Upstream:           "coarse",
		NoPrefetch:         true,
	}
	fine.ApplyDefaults()
	h := schedHarness(t, sched.Config{Priorities: true, TotalNodes: 3, Preempt: sched.PreemptYoungest}, coarse, fine)
	// A speculative agent prefetch holds 2 of the 3 budget nodes.
	cs, _ := h.v.shardOf("coarse")
	cs.mu.Lock()
	h.v.launch(cs, 20, 23, 2, sched.Agent, "spec")
	cs.mu.Unlock()
	// The fine demand open is admitted (1 node fits), parks on its
	// missing coarse inputs, and the upstream coarse demand launch
	// (P=2) queues node-blocked: the probe must fire right here.
	if _, err := h.v.Open("a1", "fine", fine.Filename(20)); err != nil {
		t.Fatal(err)
	}
	if st := h.v.SchedStats(); st.Preempted != 1 {
		t.Fatalf("Preempted = %d after the pipeline open, want 1 (nested demand queue must probe)", st.Preempted)
	}
	ready := false
	if err := h.v.WaitFile("a1", "fine", fine.Filename(20), func(st Status) {
		if st.Err != "" {
			t.Errorf("pipeline wait failed: %s", st.Err)
		}
		ready = true
	}); err != nil {
		t.Fatal(err)
	}
	if !h.eng.Run(1_000_000) {
		t.Fatal("runaway event loop")
	}
	if !ready {
		t.Fatal("pipeline output never produced after the preemption")
	}
	if err := h.v.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPreemptRequeuePromotesToDemandForWaiters: a demand open landing
// on the victim's range in the kill→SimEnded window turns the requeue
// into demand-class work — the waiter must not be parked behind the
// agent queue it just preempted past.
func TestPreemptRequeuePromotesToDemandForWaiters(t *testing.T) {
	ctx := testContext("c")
	h := schedHarness(t, sched.Config{Priorities: true, TotalNodes: 1, Preempt: sched.PreemptYoungest}, ctx)
	injectAgentPrefetch(t, h, "c", "spec", 9, 12)
	if _, err := h.v.Open("a1", "c", ctx.Filename(1)); err != nil {
		t.Fatal(err)
	}
	if st := h.v.SchedStats(); st.Preempted != 1 {
		t.Fatalf("Preempted = %d, want 1", st.Preempted)
	}
	// The victim is killed but its SimEnded has not run: its promise is
	// still registered, so this demand open just joins it as a waiter.
	got := false
	if _, err := h.v.Open("a2", "c", ctx.Filename(10)); err != nil {
		t.Fatal(err)
	}
	if err := h.v.WaitFile("a2", "c", ctx.Filename(10), func(st Status) {
		got = st.Err == ""
	}); err != nil {
		t.Fatal(err)
	}
	h.eng.Run(0)
	if !got {
		t.Fatal("the waiter on the preempted range was never served")
	}
	// The requeue ran as demand-class work: both the original demand job
	// and the promoted requeue count in the demand wait ledger.
	if ss := h.v.SchedStats(); ss.DemandWait.Jobs != 2 || ss.AgentWait.Jobs != 0 {
		t.Errorf("class ledger = demand %d / agent %d jobs, want the requeue promoted to demand (2/0)",
			ss.DemandWait.Jobs, ss.AgentWait.Jobs)
	}
	if err := h.v.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPreemptThenCancelDoesNotRequeue: a cancellation (disconnect,
// reset) racing in after a preemption kill wins — the victim's interval
// must not be requeued, or the cancellation's dismantling would be
// undone by the preemption's deferral.
func TestPreemptThenCancelDoesNotRequeue(t *testing.T) {
	ctx := testContext("c")
	h := schedHarness(t, sched.Config{Priorities: true, TotalNodes: 1, Preempt: sched.PreemptYoungest}, ctx)
	injectAgentPrefetch(t, h, "c", "spec", 9, 12)
	// The demand miss preempts the prefetch…
	if _, err := h.v.Open("a1", "c", ctx.Filename(1)); err != nil {
		t.Fatal(err)
	}
	if st := h.v.SchedStats(); st.Preempted != 1 {
		t.Fatalf("Preempted = %d, want 1", st.Preempted)
	}
	// …and before the kill's SimEnded lands, the prefetching client
	// disconnects: the cancellation must win over the requeue.
	h.v.ClientDisconnected("spec")
	h.eng.Run(0)
	for s := 9; s <= 12; s++ {
		if resident, promised, _ := h.v.FileState("c", ctx.Filename(s)); resident || promised {
			t.Errorf("step %d of the cancelled victim was resurrected (resident=%v promised=%v)", s, resident, promised)
		}
	}
	if _, ok := h.v.Scheduler().QuotaDebt("spec"); ok {
		t.Error("the departed client re-entered the quota ledger through the requeue")
	}
	if resident, _, _ := h.v.FileState("c", ctx.Filename(1)); !resident {
		t.Error("demand work never completed")
	}
	if err := h.v.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDisconnectOrphansSurvivingSimBilling: a sim that outlives its
// client's disconnect (live waiters protect it from the kill) loses its
// billing identity, so a later requeue cannot re-plant the quota entry
// DropClientQuota just removed as an undeletable ghost.
func TestDisconnectOrphansSurvivingSimBilling(t *testing.T) {
	ctx := testContext("c")
	h := schedHarness(t, sched.Config{Priorities: true, DRRQuantum: 4}, ctx)
	injectAgentPrefetch(t, h, "c", "spec", 9, 12)
	// Another client waits inside the range: the disconnect kill is
	// blocked by the no-waiters rule, so the sim survives its owner.
	got := false
	if _, err := h.v.Open("a2", "c", ctx.Filename(10)); err != nil {
		t.Fatal(err)
	}
	if err := h.v.WaitFile("a2", "c", ctx.Filename(10), func(st Status) {
		got = st.Err == ""
	}); err != nil {
		t.Fatal(err)
	}
	h.v.ClientDisconnected("spec")
	cs, _ := h.v.shardOf("c")
	cs.mu.Lock()
	var alive *simState
	for _, sim := range cs.sims {
		if sim.prefetchFor == "spec" && !sim.killing {
			alive = sim
		}
	}
	cs.mu.Unlock()
	if alive == nil {
		t.Fatal("the protected prefetch did not survive the disconnect")
	}
	if alive.client != "" {
		t.Errorf("surviving sim still bills %q; want the identity orphaned", alive.client)
	}
	h.eng.Run(0)
	if !got {
		t.Error("the surviving prefetch never served its waiter")
	}
	if _, ok := h.v.Scheduler().QuotaDebt("spec"); ok {
		t.Error("the departed client re-entered the quota ledger")
	}
	if err := h.v.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestClientDisconnectReleasesQuotaDebt: a departed client's DRR debt
// dies with it — an unrelated client reusing the name later starts with
// a clean ledger.
func TestClientDisconnectReleasesQuotaDebt(t *testing.T) {
	ctx := testContext("c")
	ctx.SMax = 1
	h := schedHarness(t, sched.Config{Priorities: true, DRRQuantum: 4}, ctx)
	if _, err := h.v.Open("a1", "c", ctx.Filename(50)); err != nil {
		t.Fatal(err)
	}
	if _, err := h.v.GuidedPrefetch("b1", "c", []string{ctx.Filename(9)}); err != nil {
		t.Fatal(err)
	}
	h.eng.Run(0)
	if _, ok := h.v.Scheduler().QuotaDebt("b1"); !ok {
		t.Fatal("the drained prefetch never charged its client's quota")
	}
	h.v.ClientDisconnected("b1")
	if _, ok := h.v.Scheduler().QuotaDebt("b1"); ok {
		t.Error("quota debt survived the disconnect")
	}
	if err := h.v.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
