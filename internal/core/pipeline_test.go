package core

import (
	"testing"
	"time"

	"simfs/internal/model"
)

// pipelinePair returns a coarse→fine context pair on one harness.
func pipelinePair(t *testing.T) (*harness, *model.Context, *model.Context) {
	t.Helper()
	coarse := &model.Context{
		Name:               "coarse",
		Grid:               model.Grid{DeltaD: 4, DeltaR: 16, Timesteps: 128},
		OutputBytes:        1,
		Tau:                time.Second,
		Alpha:              2 * time.Second,
		DefaultParallelism: 1,
		MaxParallelism:     1,
		SMax:               4,
		NoPrefetch:         true,
	}
	coarse.ApplyDefaults()
	fine := &model.Context{
		Name:               "fine",
		Grid:               model.Grid{DeltaD: 1, DeltaR: 8, Timesteps: 128},
		OutputBytes:        1,
		Tau:                time.Second,
		Alpha:              2 * time.Second,
		DefaultParallelism: 1,
		MaxParallelism:     1,
		SMax:               4,
		Upstream:           "coarse",
		NoPrefetch:         true,
	}
	fine.ApplyDefaults()
	h := newHarness(t, coarse, fine)
	return h, coarse, fine
}

func TestPipelineMissCascades(t *testing.T) {
	h, coarse, fine := pipelinePair(t)
	file := fine.Filename(20) // interval (16,24] needs coarse steps 5..6
	res, err := h.v.Open("a1", "fine", file)
	if err != nil || res.Available {
		t.Fatalf("open: %+v, %v", res, err)
	}
	var readyAt time.Duration
	h.v.WaitFile("a1", "fine", file, func(st Status) {
		if st.Err != "" {
			t.Errorf("pipeline wait failed: %s", st.Err)
		}
		readyAt = h.eng.Now()
	})
	h.eng.Run(0)
	cs, _ := h.v.Stats("coarse")
	fs, _ := h.v.Stats("fine")
	if cs.Restarts == 0 {
		t.Fatal("coarse stage never re-simulated")
	}
	if fs.Restarts != 1 {
		t.Fatalf("fine restarts = %d", fs.Restarts)
	}
	// The fine simulation could only start after the coarse input
	// finished: the coarse run needs ≥ α + n·τ before the fine α starts.
	if readyAt <= coarse.Alpha+fine.Alpha {
		t.Errorf("fine output at %v: impossibly early for a cascaded pipeline", readyAt)
	}
}

func TestPipelineReusesResidentUpstream(t *testing.T) {
	h, _, fine := pipelinePair(t)
	// Preload all coarse outputs: the fine re-simulation should launch
	// immediately without any coarse restart.
	all := make([]int, 32)
	for i := range all {
		all[i] = i + 1
	}
	if err := h.v.Preload("coarse", all); err != nil {
		t.Fatal(err)
	}
	h.v.Open("a1", "fine", fine.Filename(20))
	h.eng.Run(0)
	cs, _ := h.v.Stats("coarse")
	if cs.Restarts != 0 {
		t.Errorf("coarse restarts = %d, want 0 (input resident)", cs.Restarts)
	}
	fs, _ := h.v.Stats("fine")
	if fs.StepsProduced == 0 {
		t.Error("fine stage produced nothing")
	}
}

func TestPipelineUpstreamPinnedDuringFineResim(t *testing.T) {
	h, coarse, fine := pipelinePair(t)
	// Tiny coarse cache: 2 entries. The fine re-simulation needs coarse
	// steps 5..6; they must stay pinned (unevictable) until it finishes.
	_ = coarse
	h.v.Open("a1", "fine", fine.Filename(20))
	// While the pipeline is resolving, flood the coarse cache via another
	// analysis to create eviction pressure.
	h.v.Open("a2", "coarse", coarse.Filename(10))
	h.v.Open("a2", "coarse", coarse.Filename(20))
	done := false
	h.v.WaitFile("a1", "fine", fine.Filename(20), func(st Status) {
		if st.Err != "" {
			t.Errorf("fine wait: %s", st.Err)
		}
		done = true
	})
	h.eng.Run(0)
	if !done {
		t.Fatal("fine output never produced")
	}
}

func TestPipelineUpstreamFailurePropagates(t *testing.T) {
	h, _, fine := pipelinePair(t)
	h.l.FailEvery = 1 // every simulation crashes halfway through its range
	// Fine step 30 re-simulates over (24,32], needing coarse steps 7..8.
	// The coarse re-simulation (producing 5..8) crashes after step 6, so
	// the pipeline input never materializes.
	file := fine.Filename(30)
	h.v.Open("a1", "fine", file)
	var st *Status
	h.v.WaitFile("a1", "fine", file, func(s Status) { st = &s })
	h.eng.Run(0)
	if st == nil {
		t.Fatal("waiter never notified")
	}
	if st.Err == "" {
		t.Error("upstream failure should propagate an error status")
	}
}

func TestNeededUpstreamSteps(t *testing.T) {
	down := model.Grid{DeltaD: 1, DeltaR: 8, Timesteps: 128}
	up := model.Grid{DeltaD: 4, DeltaR: 16, Timesteps: 128}
	// Fine outputs 17..24 re-simulate over timesteps (16, 24]; upstream
	// steps covering (16,24] at Δd=4 are steps 5 and 6.
	steps := neededUpstreamSteps(down, up, 17, 24)
	if len(steps) != 2 || steps[0] != 5 || steps[1] != 6 {
		t.Errorf("steps = %v, want [5 6]", steps)
	}
	// Clamped at the upstream timeline end.
	steps = neededUpstreamSteps(down, up, 121, 128)
	for _, s := range steps {
		if s > up.NumOutputSteps() {
			t.Errorf("step %d beyond upstream timeline", s)
		}
	}
}
