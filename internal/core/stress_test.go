package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"simfs/internal/des"
	"simfs/internal/model"
	"simfs/internal/notify"
	"simfs/internal/simulator"
)

// stressContext returns a context tuned so re-simulations complete in
// tens of microseconds under the real-time launcher.
func stressContext(name string) *model.Context {
	c := &model.Context{
		Name:               name,
		Grid:               model.Grid{DeltaD: 1, DeltaR: 8, Timesteps: 128},
		OutputBytes:        1,
		RestartBytes:       1,
		MaxCacheBytes:      64,
		Tau:                time.Second,
		Alpha:              time.Second,
		DefaultParallelism: 1,
		MaxParallelism:     2,
		SMax:               4,
		NoPrefetch:         true,
	}
	c.ApplyDefaults()
	return c
}

// TestConcurrentMultiContextStress hammers Open/Acquire/Release across
// multiple contexts from many goroutines while real-time simulations
// complete concurrently, auditing invariants throughout. Run under
// -race (CI does) it validates the sharded locking discipline, including
// the cross-shard pipeline path and the notify hub.
func TestConcurrentMultiContextStress(t *testing.T) {
	launcher := &simulator.RealTimeLauncher{
		TimeScale: 50_000, // 1 s of simulated time ≈ 20 µs
		Write:     func(*model.Context, int) error { return nil },
	}
	v := New(des.NewWallClock(), launcher)
	launcher.Events = v

	names := []string{"s0", "s1", "s2"}
	for _, name := range names {
		if err := v.AddContext(stressContext(name), "LRU", nil); err != nil {
			t.Fatal(err)
		}
	}
	// One context with active prefetch agents (kill/reset paths) …
	pf := stressContext("pf")
	pf.NoPrefetch = false
	if err := v.AddContext(pf, "DCL", nil); err != nil {
		t.Fatal(err)
	}
	names = append(names, "pf")
	// … and one pipeline context whose re-simulations acquire files of
	// s0 first (cross-shard lock ordering under load).
	pipe := stressContext("pipe")
	pipe.Upstream = "s0"
	if err := v.AddContext(pipe, "LRU", nil); err != nil {
		t.Fatal(err)
	}
	names = append(names, "pipe")

	opsPerWorker := 150
	if testing.Short() {
		opsPerWorker = 40
	}
	const workersPerCtx = 3
	waitTimeout := 30 * time.Second

	var wg sync.WaitGroup
	errs := make(chan error, len(names)*workersPerCtx)
	for ci, name := range names {
		ctx, _ := v.Context(name)
		steps := ctx.Grid.NumOutputSteps()
		for w := 0; w < workersPerCtx; w++ {
			wg.Add(1)
			go func(name string, seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				client := fmt.Sprintf("cli-%s-%d", name, seed)
				await := func(file string) error {
					done := make(chan Status, 1)
					if err := v.WaitFile(client, name, file, func(st Status) { done <- st }); err != nil {
						return nil // became resident in between
					}
					select {
					case <-done:
						return nil
					case <-time.After(waitTimeout):
						return fmt.Errorf("%s: wait for %s timed out", client, file)
					}
				}
				for i := 0; i < opsPerWorker; i++ {
					file := ctx.Filename(rng.Intn(steps) + 1)
					switch rng.Intn(10) {
					case 0, 1, 2, 3, 4: // open → wait → release
						res, err := v.Open(client, name, file)
						if err != nil {
							errs <- err
							return
						}
						if !res.Available {
							if err := await(file); err != nil {
								errs <- err
								return
							}
						}
						if err := v.Release(client, name, file); err != nil {
							errs <- err
							return
						}
					case 5, 6: // multi-file acquire
						files := []string{
							ctx.Filename(rng.Intn(steps) + 1),
							ctx.Filename(rng.Intn(steps) + 1),
							ctx.Filename(rng.Intn(steps) + 1),
						}
						done := make(chan Status, 1)
						if err := v.Acquire(client, name, files, func(st Status) { done <- st }); err != nil {
							errs <- err
							return
						}
						select {
						case <-done:
						case <-time.After(waitTimeout):
							errs <- fmt.Errorf("%s: acquire timed out", client)
							return
						}
						for _, f := range files {
							if err := v.Release(client, name, f); err != nil {
								errs <- err
								return
							}
						}
					case 7: // guided prefetch
						if _, err := v.GuidedPrefetch(client, name, []string{file}); err != nil {
							errs <- err
							return
						}
					default: // hub-based wait (subscribe, then check state)
						topic, err := v.FileTopic(name, file)
						if err != nil {
							errs <- err
							return
						}
						sub := v.Hub().Subscribe(topic)
						resident, promised, err := v.FileState(name, file)
						if err != nil {
							errs <- err
							return
						}
						if resident || !promised {
							sub.Close()
							continue
						}
						select {
						case <-sub.C():
						case <-time.After(waitTimeout):
							errs <- fmt.Errorf("%s: hub wait for %s timed out", client, file)
							return
						}
						sub.Close()
					}
				}
			}(name, int64(ci*workersPerCtx+w+1))
		}
	}

	// Audit invariants concurrently with the load.
	stop := make(chan struct{})
	auditDone := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				auditDone <- nil
				return
			default:
				if err := v.CheckInvariants(); err != nil {
					auditDone <- err
					return
				}
				time.Sleep(time.Millisecond)
			}
		}
	}()

	wg.Wait()
	close(stop)
	if err := <-auditDone; err != nil {
		t.Fatalf("invariants violated under load: %v", err)
	}
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	launcher.Wait()
	if err := v.CheckInvariants(); err != nil {
		t.Fatalf("invariants violated after drain: %v", err)
	}

	// The workload must have spread over the shards; every shard lock saw
	// traffic and the totals add up.
	var total uint64
	for _, name := range names {
		ls, err := v.LockStats(name)
		if err != nil {
			t.Fatal(err)
		}
		if ls.Acquisitions == 0 {
			t.Errorf("shard %s never locked", name)
		}
		total += ls.Acquisitions
	}
	if got := v.TotalLockStats().Acquisitions; got != total {
		t.Errorf("TotalLockStats = %d, sum of shards = %d", got, total)
	}
	for _, name := range names {
		st, err := v.Stats(name)
		if err != nil {
			t.Fatal(err)
		}
		if st.Opens == 0 {
			t.Errorf("context %s saw no opens", name)
		}
	}
}

// TestHubPublishesReadiness checks the Virtualizer's hub publications:
// ready on production and preload, failed on simulation death.
func TestHubPublishesReadiness(t *testing.T) {
	ctx := testContext("c")
	h := newHarness(t, ctx)

	// Production → FileReady.
	topic, err := h.v.FileTopic("c", ctx.Filename(2))
	if err != nil {
		t.Fatal(err)
	}
	sub := h.v.Hub().Subscribe(topic)
	if _, err := h.v.Open("a1", "c", ctx.Filename(2)); err != nil {
		t.Fatal(err)
	}
	h.eng.Run(0)
	ev, ok := <-sub.C()
	if !ok || ev.Kind != notify.FileReady || ev.Topic != topic {
		t.Fatalf("event = %+v (ok=%v), want FileReady for %+v", ev, ok, topic)
	}

	// Preload → FileReady.
	topic9, _ := h.v.FileTopic("c", ctx.Filename(9))
	sub9 := h.v.Hub().Subscribe(topic9)
	if err := h.v.Preload("c", []int{9}); err != nil {
		t.Fatal(err)
	}
	if ev := <-sub9.C(); ev.Kind != notify.FileReady {
		t.Fatalf("preload published %+v, want FileReady", ev)
	}

	// Failure → FileFailed with the reason. The injected crash hits
	// halfway through the re-simulated interval (48,52], so step 52 is
	// never produced.
	h.l.FailEvery = 1
	fileFar := ctx.Filename(52)
	topicFar, _ := h.v.FileTopic("c", fileFar)
	subFar := h.v.Hub().Subscribe(topicFar)
	if _, err := h.v.Open("a1", "c", fileFar); err != nil {
		t.Fatal(err)
	}
	h.eng.Run(0)
	evFar, ok := <-subFar.C()
	if !ok || evFar.Kind != notify.FileFailed || evFar.Err == "" {
		t.Fatalf("event = %+v (ok=%v), want FileFailed with reason", evFar, ok)
	}
}

// TestFileState covers the subscribe-then-check query.
func TestFileState(t *testing.T) {
	ctx := testContext("c")
	h := newHarness(t, ctx)
	h.v.Preload("c", []int{1})

	resident, promised, err := h.v.FileState("c", ctx.Filename(1))
	if err != nil || !resident || promised {
		t.Errorf("preloaded file: resident=%v promised=%v err=%v", resident, promised, err)
	}
	resident, promised, err = h.v.FileState("c", ctx.Filename(7))
	if err != nil || resident || promised {
		t.Errorf("untouched file: resident=%v promised=%v err=%v", resident, promised, err)
	}
	h.v.Open("a1", "c", ctx.Filename(7))
	resident, promised, err = h.v.FileState("c", ctx.Filename(7))
	if err != nil || resident || !promised {
		t.Errorf("opened-missing file: resident=%v promised=%v err=%v", resident, promised, err)
	}
	if _, _, err := h.v.FileState("nope", "x"); err == nil {
		t.Error("unknown context accepted")
	}
	if _, _, err := h.v.FileState("c", "garbage"); err == nil {
		t.Error("unparseable filename accepted")
	}
	if _, err := h.v.FileTopic("c", ctx.Filename(9999)); err == nil {
		t.Error("out-of-range step accepted by FileTopic")
	}
}
