package core

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"simfs/internal/des"
	"simfs/internal/model"
)

// TestInvariantsUnderRandomWorkload fuzzes the Virtualizer with random
// client behavior — opens, waits, releases, guided prefetches, direction
// flips — interleaved with engine progress, auditing CheckInvariants
// after every step.
func TestInvariantsUnderRandomWorkload(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ctx := &model.Context{
			Name:               "fuzz",
			Grid:               model.Grid{DeltaD: 1 + int(seed&1)*2, DeltaR: 8, Timesteps: 256},
			OutputBytes:        1,
			MaxCacheBytes:      int64(8 + rng.Intn(32)),
			Tau:                time.Second,
			Alpha:              2 * time.Second,
			DefaultParallelism: 1,
			MaxParallelism:     1,
			SMax:               1 + rng.Intn(4),
		}
		ctx.ApplyDefaults()
		eng, v := newFuzzStack(t, ctx, rng.Intn(3) == 0)

		clients := []string{"c0", "c1", "c2"}
		held := map[string][]string{}
		no := ctx.Grid.NumOutputSteps()

		for i := 0; i < 150; i++ {
			client := clients[rng.Intn(len(clients))]
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // open (maybe wait)
				step := rng.Intn(no) + 1
				file := ctx.Filename(step)
				res, err := v.Open(client, "fuzz", file)
				if err != nil {
					t.Logf("seed %d: open: %v", seed, err)
					return false
				}
				held[client] = append(held[client], file)
				if !res.Available && rng.Intn(2) == 0 {
					v.WaitFile(client, "fuzz", file, func(Status) {})
				}
			case 4, 5: // release something held
				hs := held[client]
				if len(hs) > 0 {
					file := hs[len(hs)-1]
					held[client] = hs[:len(hs)-1]
					if err := v.Release(client, "fuzz", file); err != nil {
						t.Logf("seed %d: release: %v", seed, err)
						return false
					}
				}
			case 6: // guided prefetch hint
				step := rng.Intn(no) + 1
				if _, err := v.GuidedPrefetch(client, "fuzz", []string{ctx.Filename(step)}); err != nil {
					t.Logf("seed %d: prefetch: %v", seed, err)
					return false
				}
			case 7, 8: // let simulations progress
				for j := 0; j < rng.Intn(20)+1; j++ {
					if !eng.Step() {
						break
					}
				}
			case 9: // audit mid-flight
			}
			if err := v.CheckInvariants(); err != nil {
				t.Logf("seed %d step %d: %v", seed, i, err)
				return false
			}
		}
		// Drain and re-audit.
		if !eng.Run(2_000_000) {
			t.Logf("seed %d: engine did not drain", seed)
			return false
		}
		if err := v.CheckInvariants(); err != nil {
			t.Logf("seed %d final: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// newFuzzStack builds a harness whose launcher optionally injects
// failures.
func newFuzzStack(t *testing.T, ctx *model.Context, failures bool) (*des.Engine, *Virtualizer) {
	h := newHarness(t, ctx)
	if failures {
		h.l.FailEvery = 3
	}
	return h.eng, h.v
}

func TestCheckInvariantsCleanState(t *testing.T) {
	ctx := testContext("inv")
	h := newHarness(t, ctx)
	if err := h.v.CheckInvariants(); err != nil {
		t.Errorf("fresh virtualizer violates invariants: %v", err)
	}
	h.v.Preload("inv", []int{1, 2, 3})
	h.v.Open("a1", "inv", ctx.Filename(2))
	h.v.Open("a1", "inv", ctx.Filename(30))
	if err := h.v.CheckInvariants(); err != nil {
		t.Errorf("mid-flight state violates invariants: %v", err)
	}
	h.eng.Run(0)
	if err := h.v.CheckInvariants(); err != nil {
		t.Errorf("drained state violates invariants: %v", err)
	}
}
