package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"simfs/internal/des"
	"simfs/internal/model"
)

// fuzzInvariants drives the Virtualizer with random client behavior —
// opens, waits, releases, guided prefetches, direction flips —
// interleaved with engine progress, auditing CheckInvariants after every
// step. It returns nil when the run stayed consistent.
func fuzzInvariants(t *testing.T, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	ctx := &model.Context{
		Name:               "fuzz",
		Grid:               model.Grid{DeltaD: 1 + int(seed&1)*2, DeltaR: 8, Timesteps: 256},
		OutputBytes:        1,
		MaxCacheBytes:      int64(8 + rng.Intn(32)),
		Tau:                time.Second,
		Alpha:              2 * time.Second,
		DefaultParallelism: 1,
		MaxParallelism:     1,
		SMax:               1 + rng.Intn(4),
	}
	ctx.ApplyDefaults()
	eng, v := newFuzzStack(t, ctx, rng.Intn(3) == 0)

	clients := []string{"c0", "c1", "c2"}
	held := map[string][]string{}
	no := ctx.Grid.NumOutputSteps()

	for i := 0; i < 150; i++ {
		client := clients[rng.Intn(len(clients))]
		switch rng.Intn(10) {
		case 0, 1, 2, 3: // open (maybe wait)
			step := rng.Intn(no) + 1
			file := ctx.Filename(step)
			res, err := v.Open(client, "fuzz", file)
			if err != nil {
				return fmt.Errorf("step %d: open: %v", i, err)
			}
			held[client] = append(held[client], file)
			if !res.Available && rng.Intn(2) == 0 {
				v.WaitFile(client, "fuzz", file, func(Status) {})
			}
		case 4, 5: // release something held
			hs := held[client]
			if len(hs) > 0 {
				file := hs[len(hs)-1]
				held[client] = hs[:len(hs)-1]
				if err := v.Release(client, "fuzz", file); err != nil {
					return fmt.Errorf("step %d: release: %v", i, err)
				}
			}
		case 6: // guided prefetch hint
			step := rng.Intn(no) + 1
			if _, err := v.GuidedPrefetch(client, "fuzz", []string{ctx.Filename(step)}); err != nil {
				return fmt.Errorf("step %d: prefetch: %v", i, err)
			}
		case 7, 8: // let simulations progress
			for j := 0; j < rng.Intn(20)+1; j++ {
				if !eng.Step() {
					break
				}
			}
		case 9: // audit mid-flight
		}
		if err := v.CheckInvariants(); err != nil {
			return fmt.Errorf("step %d: %v", i, err)
		}
	}
	// Drain and re-audit.
	if !eng.Run(2_000_000) {
		return fmt.Errorf("engine did not drain")
	}
	if err := v.CheckInvariants(); err != nil {
		return fmt.Errorf("final: %v", err)
	}
	return nil
}

// TestInvariantsUnderRandomWorkload fuzzes with fresh random seeds.
func TestInvariantsUnderRandomWorkload(t *testing.T) {
	f := func(seed int64) bool {
		if err := fuzzInvariants(t, seed); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestInvariantsRegressionSeeds replays seeds that once found bugs.
func TestInvariantsRegressionSeeds(t *testing.T) {
	seeds := []int64{
		// Overlapping re-simulations: a step produced by a non-owning
		// simulation stayed promised while resident.
		5624992012996912267,
	}
	for _, seed := range seeds {
		if err := fuzzInvariants(t, seed); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// newFuzzStack builds a harness whose launcher optionally injects
// failures.
func newFuzzStack(t *testing.T, ctx *model.Context, failures bool) (*des.Engine, *Virtualizer) {
	h := newHarness(t, ctx)
	if failures {
		h.l.FailEvery = 3
	}
	return h.eng, h.v
}

func TestCheckInvariantsCleanState(t *testing.T) {
	ctx := testContext("inv")
	h := newHarness(t, ctx)
	if err := h.v.CheckInvariants(); err != nil {
		t.Errorf("fresh virtualizer violates invariants: %v", err)
	}
	h.v.Preload("inv", []int{1, 2, 3})
	h.v.Open("a1", "inv", ctx.Filename(2))
	h.v.Open("a1", "inv", ctx.Filename(30))
	if err := h.v.CheckInvariants(); err != nil {
		t.Errorf("mid-flight state violates invariants: %v", err)
	}
	h.eng.Run(0)
	if err := h.v.CheckInvariants(); err != nil {
		t.Errorf("drained state violates invariants: %v", err)
	}
}
