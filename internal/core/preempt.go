// Preemption: when the scheduler's node budget is exhausted and a demand
// miss is queued behind it, the Virtualizer may kill a running agent
// prefetch and hand its nodes to the demand work (paper follow-up to
// Sec. IV-C: a demand miss outranks speculative work; with preemption it
// may also evict it). Victim eligibility follows the paper's no-waiters
// rule — a simulation whose output someone waits for or references is
// never killed — and the victim's interval is requeued, so the
// speculative work is deferred, not discarded. The victim-selection
// policy (youngest-first or cheapest-remaining-first, on the cost
// model's remaining-time estimate) lives in internal/sched.
package core

import (
	"time"

	"simfs/internal/costmodel"
	"simfs/internal/sched"
)

// victimRef pins a preemption candidate to its shard across the
// lock-free gap between selection and kill.
type victimRef struct {
	cs  *shard
	vic sched.Victim
}

// maybePreempt kills running agent prefetches while a node-blocked
// demand job wants their nodes. At most one victim is killed per
// WantsPreemption pass: its nodes count as reclaimed-in-flight, so a
// single blocked demand job never cascades into killing several victims
// at once — the next pass only fires if the freed nodes are still not
// enough. A failed kill (the chosen victim finished, grew waiters, or
// was taken by a concurrent probe on the realtime server) loops back
// through WantsPreemption rather than falling through to the next
// candidate: the re-check sees any concurrent kill's reclaiming nodes
// before another sim dies, and the re-enumeration no longer lists the
// stale victim, so the retry makes progress. Must be called with no
// shard lock held; the fast path is two atomic loads when preemption is
// off or no demand work is queued.
func (v *Virtualizer) maybePreempt() {
	for v.sched.WantsPreemption() {
		cfg := v.sched.Config()
		refs := v.preemptCandidates(cfg)
		vics := make([]sched.Victim, len(refs))
		for i, r := range refs {
			vics[i] = r.vic
		}
		i := cfg.Preempt.Choose(vics)
		if i < 0 {
			return // nothing eligible: wait for natural completions
		}
		v.killVictim(refs[i].cs, refs[i].vic.SimID)
	}
}

// victimDone is a running simulation's completion fraction — the
// sunk-cost guard's input. Caller holds the shard lock.
func victimDone(sim *simState) float64 {
	total := sim.last - sim.first + 1
	if total <= 0 {
		return 1
	}
	return float64(sim.produced) / float64(total)
}

// preemptCandidates lists the killable running prefetches across all
// shards: launched, no kill (preemption or cancellation) already in
// flight, class-eligible under the config (agent always, guided with
// PreemptGuided, nothing past the sunk-cost threshold), and — the
// no-waiters rule — nobody waiting for or referencing their range. The
// cost-model remaining-time estimate is only computed for the policy
// that reads it. The candidate order is map-random;
// sched.PreemptPolicy.Choose is a total order (ties break on simulation
// id), so the selection is deterministic anyway.
func (v *Virtualizer) preemptCandidates(cfg sched.Config) []victimRef {
	v.ctxMu.RLock()
	shards := make([]*shard, 0, len(v.contexts))
	for _, cs := range v.contexts { //simfs:allow maporder Choose is a total order over candidates, so collection order is washed out
		shards = append(shards, cs)
	}
	v.ctxMu.RUnlock()
	var refs []victimRef
	for _, cs := range shards {
		cs.mu.Lock()
		for id, sim := range cs.sims { //simfs:allow maporder Choose is a total order over candidates, so collection order is washed out
			if !sim.launched || sim.preempted || sim.killing {
				continue
			}
			if !cfg.VictimEligible(sim.class, victimDone(sim)) {
				continue
			}
			if v.anyoneNeeds(cs, sim.first, sim.last) {
				continue
			}
			vic := sched.Victim{SimID: id, LaunchedAt: sim.launchedAt}
			if cfg.Preempt == sched.PreemptCheapest {
				vic.Remaining = v.remainingEstimate(cs, sim)
			}
			refs = append(refs, victimRef{cs: cs, vic: vic})
		}
		cs.mu.Unlock()
	}
	return refs
}

// remainingEstimate is the cost model's remaining production time of a
// running simulation: the unproduced steps at τ(P), plus the restart
// latency estimate while production has not begun. Caller holds the
// shard lock.
func (v *Virtualizer) remainingEstimate(cs *shard, sim *simState) time.Duration {
	remSteps := sim.last - sim.first + 1 - sim.produced
	if remSteps < 0 {
		remSteps = 0
	}
	rem := costmodel.ResimTime(remSteps, cs.ctx.TauAt(sim.parallelism))
	if !sim.started {
		rem += time.Duration(cs.alphaEMA.Value(float64(cs.ctx.Alpha)))
	}
	return rem
}

// killVictim re-validates a candidate under its shard lock — it may have
// completed, been preempted by a concurrent pass, been dealt a
// cancellation kill, acquired waiters, or (on the realtime server)
// produced past the sunk-cost threshold between selection and kill —
// and kills it. The launcher delivers the death asynchronously;
// SimEnded sees sim.preempted and requeues the interval instead of
// failing its promises.
func (v *Virtualizer) killVictim(cs *shard, simID int64) bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	sim, ok := cs.sims[simID]
	if !ok || sim.preempted || sim.killing || !sim.launched {
		return false
	}
	if !v.sched.Config().VictimEligible(sim.class, victimDone(sim)) {
		return false
	}
	if v.anyoneNeeds(cs, sim.first, sim.last) {
		return false
	}
	sim.preempted = true
	v.sched.MarkPreempted(sim.parallelism)
	v.launcher.Kill(simID)
	return true
}

// requeuePreempted puts a preempted simulation's interval back on the
// queue, restoring pending markers so late-arriving waiters are served
// by the requeued job. The job keeps its original class unless waiters
// or references arrived in the kill→SimEnded window — demand interest
// exists now, so it requeues at demand class rather than parking that
// interest behind the agent queue under sustained contention. A
// draining context gets the normal kill treatment instead (no new work
// may queue); a range that became fully covered meanwhile needs
// nothing. The returned callbacks/steps follow the failPromised
// contract (empty on the requeue path). Caller holds the shard lock.
func (v *Virtualizer) requeuePreempted(cs *shard, sim *simState) ([]func(Status), []int) {
	if cs.draining {
		return v.failPromised(cs, sim, "re-simulation killed")
	}
	for s := sim.first; s <= sim.last; s++ {
		if id, p := cs.promised[s]; p && id == sim.id {
			delete(cs.promised, s)
		}
	}
	if !v.uncovered(cs, sim.first, sim.last) {
		// Every step is resident or promised by another simulation:
		// nothing left to requeue, nothing orphaned.
		return nil, nil
	}
	class := sim.class
	if v.anyoneNeeds(cs, sim.first, sim.last) {
		class = sched.Demand
	}
	v.sched.Enqueue(sched.Request{
		Ctx: cs.ctx.Name, First: sim.first, Last: sim.last,
		Parallelism: sim.parallelism, Class: class, Client: sim.client,
	})
	v.markPromised(cs, sim.first, sim.last, pendingSimID)
	return nil, nil
}
