package core

import (
	"testing"
	"time"

	"simfs/internal/sched"
)

// TestDemandJoinPromotesQueuedPrefetch: with demand-join armed, a demand
// open landing inside a *queued* prefetch's promised range lifts that
// job to demand class — it jumps the agent queue instead of parking the
// client behind FIFO speculation.
func TestDemandJoinPromotesQueuedPrefetch(t *testing.T) {
	ctx := testContext("c")
	h := schedHarness(t, sched.Config{Priorities: true, TotalNodes: 1, DemandJoin: true}, ctx)
	// One running prefetch holds the budget; two more queue behind it.
	injectAgentPrefetch(t, h, "c", "spec", 9, 12)
	injectAgentPrefetch(t, h, "c", "spec", 20, 23)
	injectAgentPrefetch(t, h, "c", "spec", 30, 33)
	if d := h.v.Scheduler().QueueDepth(); d != 2 {
		t.Fatalf("queue depth = %d, want 2 queued prefetches", d)
	}

	// The demand open lands inside the *second* queued job's range.
	var at31, at20 time.Duration
	if _, err := h.v.Open("a1", "c", ctx.Filename(31)); err != nil {
		t.Fatal(err)
	}
	if ss := h.v.SchedStats(); ss.Promoted != 1 {
		t.Fatalf("Promoted = %d after the joining open, want 1", ss.Promoted)
	}
	if err := h.v.WaitFile("a1", "c", ctx.Filename(31), func(st Status) {
		if st.Err != "" {
			t.Errorf("demand wait failed: %s", st.Err)
		}
		at31 = h.eng.Now()
	}); err != nil {
		t.Fatal(err)
	}
	if err := h.v.WaitFile("spec", "c", ctx.Filename(20), func(st Status) {
		at20 = h.eng.Now()
	}); err != nil {
		t.Fatal(err)
	}
	h.eng.Run(0)

	// The promoted job outranks the older queued prefetch. Launches snap
	// to restart windows (ΔR=4), so [30,33] runs as [29,36] when the
	// budget frees at t=6s — step 31 lands at 6+α+3τ=11s and the sim ends
	// at 16s; the unpromoted [20,23] runs as [17,24] after it, step 20 at
	// 16+α+4τ=22s.
	if at31 != 11*time.Second {
		t.Errorf("joined demand served at %v, want 11s (promoted job pops first)", at31)
	}
	if at20 != 22*time.Second {
		t.Errorf("bypassed prefetch served at %v, want 22s (behind the promoted job)", at20)
	}
	// The promoted job bills the demand ledger for the post-promotion
	// wait only: promoted at t=0, popped at t=6s.
	if ss := h.v.SchedStats(); ss.DemandWait.Jobs != 1 || ss.DemandWait.Wait != 6*time.Second {
		t.Errorf("demand ledger = %+v, want the promoted job's 6s wait", ss.DemandWait)
	}
	if err := h.v.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestDemandJoinOffKeepsQueueOrder: the same open without DemandJoin
// just joins the queued job as a waiter — no promotion, FIFO agent order
// preserved.
func TestDemandJoinOffKeepsQueueOrder(t *testing.T) {
	ctx := testContext("c")
	h := schedHarness(t, sched.Config{Priorities: true, TotalNodes: 1}, ctx)
	injectAgentPrefetch(t, h, "c", "spec", 9, 12)
	injectAgentPrefetch(t, h, "c", "spec", 20, 23)
	injectAgentPrefetch(t, h, "c", "spec", 30, 33)

	var at31, at20 time.Duration
	if _, err := h.v.Open("a1", "c", ctx.Filename(31)); err != nil {
		t.Fatal(err)
	}
	if ss := h.v.SchedStats(); ss.Promoted != 0 {
		t.Fatalf("Promoted = %d with demand-join off, want 0", ss.Promoted)
	}
	if err := h.v.WaitFile("a1", "c", ctx.Filename(31), func(st Status) {
		at31 = h.eng.Now()
	}); err != nil {
		t.Fatal(err)
	}
	if err := h.v.WaitFile("spec", "c", ctx.Filename(20), func(st Status) {
		at20 = h.eng.Now()
	}); err != nil {
		t.Fatal(err)
	}
	h.eng.Run(0)
	if at20 >= at31 {
		t.Errorf("FIFO order broken without demand-join: step 20 at %v, step 31 at %v", at20, at31)
	}
	if err := h.v.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPreemptSunkCostSparesNearlyDoneVictim: a running prefetch past the
// sunk-cost threshold is not killable — the demand miss waits out its
// short remainder instead of discarding mostly-finished work.
func TestPreemptSunkCostSparesNearlyDoneVictim(t *testing.T) {
	ctx := testContext("c")
	h := schedHarness(t, sched.Config{
		Priorities: true, TotalNodes: 1,
		Preempt: sched.PreemptYoungest, PreemptSunkCost: 0.5,
	}, ctx)
	injectAgentPrefetch(t, h, "c", "spec", 9, 12)

	// Steps land at 3,4,5,6s: at t=5.5s the victim is 3/4 done — past
	// the 0.5 threshold, so the demand miss must not kill it.
	var demandAt time.Duration
	h.eng.Schedule(5500*time.Millisecond, func() {
		if _, err := h.v.Open("a1", "c", ctx.Filename(1)); err != nil {
			t.Errorf("open: %v", err)
			return
		}
		if ss := h.v.SchedStats(); ss.Preempted != 0 {
			t.Errorf("Preempted = %d, want 0 (sunk-cost guard spares a 75%%-done victim)", ss.Preempted)
		}
		if err := h.v.WaitFile("a1", "c", ctx.Filename(1), func(st Status) {
			demandAt = h.eng.Now()
		}); err != nil {
			t.Errorf("wait: %v", err)
		}
	})
	h.eng.Run(0)

	// The spared prefetch finishes at 6s; the demand sim then runs
	// α+τ=3s on the freed node.
	if demandAt != 9*time.Second {
		t.Errorf("demand served at %v, want 9s (waited out the spared victim)", demandAt)
	}
	st, _ := h.v.Stats("c")
	if st.Kills != 0 {
		t.Errorf("kills = %d, want 0", st.Kills)
	}
	if err := h.v.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPreemptSunkCostStillKillsYoungVictim: the same guard lets a victim
// with nothing produced die — the threshold gates on work done, not on
// preemption wholesale.
func TestPreemptSunkCostStillKillsYoungVictim(t *testing.T) {
	ctx := testContext("c")
	h := schedHarness(t, sched.Config{
		Priorities: true, TotalNodes: 1,
		Preempt: sched.PreemptYoungest, PreemptSunkCost: 0.5,
	}, ctx)
	injectAgentPrefetch(t, h, "c", "spec", 9, 12)
	// t=0: nothing produced yet, done=0 < 0.5 — killable.
	if _, err := h.v.Open("a1", "c", ctx.Filename(1)); err != nil {
		t.Fatal(err)
	}
	if ss := h.v.SchedStats(); ss.Preempted != 1 {
		t.Fatalf("Preempted = %d, want 1 (guard only spares sunk work)", ss.Preempted)
	}
	h.eng.Run(0)
	if err := h.v.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPreemptGuidedArmsGuidedVictims: guided-class prefetches are
// victims only when PreemptGuided is armed; by default only agent
// speculation is killable.
func TestPreemptGuidedArmsGuidedVictims(t *testing.T) {
	for _, tc := range []struct {
		name          string
		guided        bool
		wantPreempted uint64
	}{
		{name: "default spares guided", guided: false, wantPreempted: 0},
		{name: "armed kills guided", guided: true, wantPreempted: 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ctx := testContext("c")
			h := schedHarness(t, sched.Config{
				Priorities: true, TotalNodes: 1,
				Preempt: sched.PreemptYoungest, PreemptGuided: tc.guided,
			}, ctx)
			cs, _ := h.v.shardOf("c")
			cs.mu.Lock()
			h.v.launch(cs, 9, 12, 1, sched.Guided, "g1")
			cs.mu.Unlock()
			if _, err := h.v.Open("a1", "c", ctx.Filename(1)); err != nil {
				t.Fatal(err)
			}
			if ss := h.v.SchedStats(); ss.Preempted != tc.wantPreempted {
				t.Fatalf("Preempted = %d, want %d", ss.Preempted, tc.wantPreempted)
			}
			h.eng.Run(0)
			if err := h.v.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
