package core

import (
	"errors"
	"testing"
	"time"

	"simfs/internal/faults"
)

// retryHarness is the DES harness with the failure ledger enabled and
// the retry timer wired into virtual time.
func retryHarness(t *testing.T, p RetryPolicy, ctxs ...string) *harness {
	t.Helper()
	h := newHarness(t)
	for _, name := range ctxs {
		if err := h.v.AddContext(testContext(name), "DCL", nil); err != nil {
			t.Fatal(err)
		}
	}
	h.v.SetRetryPolicy(p)
	h.v.after = func(d time.Duration, f func()) { h.eng.Schedule(d, f) }
	return h
}

func TestRetryRecoversTransientFailure(t *testing.T) {
	h := retryHarness(t, RetryPolicy{MaxAttempts: 3, BaseBackoff: 10 * time.Millisecond, Cooldown: time.Minute}, "c")
	ctx, _ := h.v.Context("c")
	// The first two launches of the interval covering step 4 crash
	// before producing anything; the third succeeds.
	h.l.FailAt = faults.NewSimPlan().WithFailN("c", 4, 2, 0).FailAt

	file := ctx.Filename(4)
	if _, err := h.v.Open("a1", "c", file); err != nil {
		t.Fatal(err)
	}
	var st *Status
	if err := h.v.WaitFile("a1", "c", file, func(s Status) { st = &s }); err != nil {
		t.Fatal(err)
	}
	h.eng.Run(0)
	if st == nil {
		t.Fatal("waiter never notified")
	}
	if st.Err != "" || !st.Ready {
		t.Fatalf("waiter should ride through the retries, got %+v", *st)
	}
	stats, _ := h.v.Stats("c")
	retries, quarantined, _ := h.v.RetryStats("c")
	if stats.Failures != 2 || retries != 2 || quarantined != 0 {
		t.Errorf("failures/retries/quarantined = %d/%d/%d, want 2/2/0",
			stats.Failures, retries, quarantined)
	}
	if err := h.v.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestQuarantineFailsWaitersStructured(t *testing.T) {
	h := retryHarness(t, RetryPolicy{MaxAttempts: 2, BaseBackoff: 10 * time.Millisecond, Cooldown: time.Minute}, "c")
	ctx, _ := h.v.Context("c")
	h.l.FailAt = faults.NewSimPlan().WithCrashAt("c", -1, 0).FailAt // permanent

	file := ctx.Filename(4)
	if _, err := h.v.Open("a1", "c", file); err != nil {
		t.Fatal(err)
	}
	var st *Status
	if err := h.v.WaitFile("a1", "c", file, func(s Status) { st = &s }); err != nil {
		t.Fatal(err)
	}
	h.eng.Run(0)
	if st == nil {
		t.Fatal("waiter never notified")
	}
	if st.Err == "" || st.Attempts != 3 || st.RetryAfter != time.Minute {
		t.Fatalf("waiter should carry the structured quarantine error, got %+v", *st)
	}
	stats, _ := h.v.Stats("c")
	retries, quarantined, _ := h.v.RetryStats("c")
	if stats.Failures != 3 || retries != 2 || quarantined != 1 {
		t.Errorf("failures/retries/quarantined = %d/%d/%d, want 3/2/1",
			stats.Failures, retries, quarantined)
	}

	// Demand opens now fail fast with the structured error and launch
	// nothing.
	before := stats.Restarts
	_, err := h.v.Open("a1", "c", file)
	var qerr *QuarantineError
	if !errors.As(err, &qerr) {
		t.Fatalf("open during quarantine = %v, want QuarantineError", err)
	}
	if qerr.Attempts != 3 || qerr.RetryAfter <= 0 {
		t.Errorf("quarantine error = %+v", qerr)
	}
	stats, _ = h.v.Stats("c")
	if stats.Restarts != before {
		t.Error("quarantined open must not launch")
	}
	// The failed-fast open must not leak its reference: only the first
	// (pre-quarantine) open's ref remains.
	if err := h.v.Release("a1", "c", file); err != nil {
		t.Errorf("release of first open's ref: %v", err)
	}
	if err := h.v.Release("a1", "c", file); err == nil {
		t.Error("reference was not rolled back on quarantine fail-fast")
	}
	if err := h.v.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestQuarantineHalfOpensAfterCooldown(t *testing.T) {
	h := retryHarness(t, RetryPolicy{MaxAttempts: 1, BaseBackoff: 10 * time.Millisecond, Cooldown: 30 * time.Second}, "c")
	ctx, _ := h.v.Context("c")
	// Two failures exhaust the budget (1 retry), then the fault heals.
	h.l.FailAt = faults.NewSimPlan().WithFailN("c", 4, 2, 0).FailAt

	file := ctx.Filename(4)
	h.v.Open("a1", "c", file)
	h.eng.Run(0)
	if _, err := h.v.Open("a1", "c", file); err == nil {
		t.Fatal("interval should be quarantined")
	}

	// Ride past the cooldown in virtual time: the breaker half-opens and
	// the next open launches a probe, which succeeds and clears the slate.
	h.eng.Schedule(31*time.Second, func() {})
	h.eng.Run(0)
	if _, err := h.v.Open("a1", "c", file); err != nil {
		t.Fatalf("open after cooldown = %v, want probe launch", err)
	}
	var st *Status
	h.v.WaitFile("a1", "c", file, func(s Status) { st = &s })
	h.eng.Run(0)
	if st == nil || st.Err != "" || !st.Ready {
		t.Fatalf("probe launch should produce the file, got %+v", st)
	}
	// A later failure starts a fresh ledger entry (slate cleared).
	if _, quarantined, _ := h.v.RetryStats("c"); quarantined != 1 {
		t.Errorf("quarantined = %d, want 1", quarantined)
	}
	if err := h.v.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestResetQuarantine(t *testing.T) {
	h := retryHarness(t, RetryPolicy{MaxAttempts: 1, BaseBackoff: 10 * time.Millisecond, Cooldown: time.Hour}, "c")
	ctx, _ := h.v.Context("c")
	plan := faults.NewSimPlan().WithFailN("c", 4, 2, 0)
	h.l.FailAt = plan.FailAt

	file := ctx.Filename(4)
	h.v.Open("a1", "c", file)
	h.eng.Run(0)
	if _, err := h.v.Open("a1", "c", file); err == nil {
		t.Fatal("interval should be quarantined")
	}

	if n, err := h.v.ResetQuarantine(""); err != nil || n != 1 {
		t.Fatalf("ResetQuarantine = %d, %v, want 1 released", n, err)
	}
	if _, err := h.v.Open("a1", "c", file); err != nil {
		t.Fatalf("open after reset = %v", err)
	}
	h.eng.Run(0)
	if resident, _, _ := h.v.FileState("c", file); !resident {
		t.Error("post-reset launch should produce the file")
	}

	if _, err := h.v.ResetQuarantine("nope"); err == nil {
		t.Error("unknown context accepted")
	}
}

func TestPrefetchSkipsQuarantinedInterval(t *testing.T) {
	h := retryHarness(t, RetryPolicy{MaxAttempts: 1, BaseBackoff: 10 * time.Millisecond, Cooldown: time.Hour}, "c")
	ctx, _ := h.v.Context("c")
	h.l.FailAt = faults.NewSimPlan().WithCrashAt("c", -1, 0).FailAt

	h.v.Open("a1", "c", ctx.Filename(4))
	h.eng.Run(0)
	stats, _ := h.v.Stats("c")
	if _, quarantined, _ := h.v.RetryStats("c"); quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", quarantined)
	}
	before := stats.Restarts
	dropped := stats.DroppedPrefetch
	if n, err := h.v.GuidedPrefetch("a1", "c", []string{ctx.Filename(3)}); err != nil || n != 0 {
		t.Fatalf("GuidedPrefetch = %d, %v, want 0 launches", n, err)
	}
	stats, _ = h.v.Stats("c")
	if stats.Restarts != before {
		t.Error("guided prefetch must not launch into a quarantined interval")
	}
	if stats.DroppedPrefetch != dropped+1 {
		t.Errorf("dropped prefetch = %d, want %d", stats.DroppedPrefetch, dropped+1)
	}
}
