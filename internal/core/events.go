package core

import (
	"maps"
	"slices"
	"time"

	"simfs/internal/model"
	"simfs/internal/sched"
	"simfs/internal/simulator"
)

// estimator adapts a context's observed state to the prefetch.Estimator
// interface. It is only used under the shard's lock.
type estimator struct{ cs *shard }

func (e *estimator) AlphaEstimate() time.Duration {
	return time.Duration(e.cs.alphaEMA.Value(float64(e.cs.ctx.Alpha)))
}
func (e *estimator) TauEstimate(p int) time.Duration { return e.cs.ctx.TauAt(p) }
func (e *estimator) DefaultParallelism() int         { return e.cs.ctx.DefaultParallelism }
func (e *estimator) MaxParallelism() int             { return e.cs.ctx.MaxParallelism }

// startSim creates the simulation record and, if its upstream inputs are
// available (pipeline virtualization, Sec. III-E), hands it to the
// Launcher; otherwise it acquires the upstream files first and launches
// when they are all on disk. It reports whether an upstream demand
// launch was queued (node-blocked) so the probe cue reaches the caller.
// Caller holds cs's lock; the upstream shard is locked inside
// (downstream→upstream order).
func (v *Virtualizer) startSim(cs *shard, first, last, parallelism int, class sched.Class, client string) (queuedDemand bool) {
	now := v.clock.Now()
	sim := &simState{
		ctxName:     cs.ctx.Name,
		first:       first,
		last:        last,
		parallelism: parallelism,
		prefetchFor: prefetchForOf(class, client),
		class:       class,
		client:      client,
		launchedAt:  now,
	}

	if cs.ctx.Upstream != "" {
		ucs, _ := v.shardOf(cs.ctx.Upstream)
		ucs.mu.Lock()
		usteps := neededUpstreamSteps(cs.ctx.Grid, ucs.ctx.Grid, first, last)
		var missing []int
		for _, us := range usteps {
			sim.upstreamFiles = append(sim.upstreamFiles, ucs.ctx.Filename(us))
			ucs.refs[us]++
			if ucs.resident(us) {
				_ = ucs.cache.Pin(ucs.ctx.Filename(us))
			} else {
				missing = append(missing, us)
			}
		}
		if len(missing) > 0 {
			sim.pendingUpstream = len(missing)
			sim.id = v.placeholderSeq.Add(-1)
			cs.sims[sim.id] = sim
			// A parked simulation keeps its context slot but returns its
			// nodes: the upstream work it waits for needs the budget.
			v.sched.ParkNodes(sim.parallelism)
			v.markPromised(cs, sim.first, sim.last, sim.id)
			for _, us := range missing {
				if _, p := ucs.promised[us]; !p {
					if iv, err := ucs.ctx.Grid.ResimInterval(us); err == nil {
						if f, l, ok := ucs.ctx.Grid.OutputsIn(iv); ok {
							// The upstream demand bills the client whose
							// downstream sim induced it (DRR accounting);
							// the launched sim itself stays client-less.
							if v.launch(ucs, f, l, ucs.ctx.DefaultParallelism, sched.Demand, client) {
								queuedDemand = true
							}
						}
					}
				}
				simID := sim.id
				ucs.waiters[us] = append(ucs.waiters[us], waiter{
					client: "pipeline:" + cs.ctx.Name,
					cb:     func(st Status) { v.upstreamReady(cs, simID, st) },
				})
			}
			ucs.mu.Unlock()
			return queuedDemand
		}
		ucs.mu.Unlock()
	}
	v.doLaunch(cs, sim)
	return false
}

// upstreamReady is a waiter callback (invoked without any shard lock)
// fired for each upstream file a pipeline-pending simulation needed.
func (v *Virtualizer) upstreamReady(cs *shard, placeholderID int64, st Status) {
	cs.mu.Lock()
	sim, ok := cs.sims[placeholderID]
	if !ok {
		cs.mu.Unlock()
		return
	}
	if st.Err != "" {
		// Upstream production failed: fail this simulation. Its nodes
		// are parked, so only the context slot returns.
		delete(cs.sims, placeholderID)
		v.releaseUpstream(cs, sim)
		msg := "upstream re-simulation failed: " + st.Err
		cbs, failed := v.failPromised(cs, sim, msg)
		cs.mu.Unlock()
		v.sched.ReleaseSlot(cs.ctx.Name)
		v.drainScheduler()
		for _, cb := range cbs {
			cb(Status{Err: msg})
		}
		v.publishFailed(cs.ctx.Name, failed, msg)
		return
	}
	sim.pendingUpstream--
	if sim.pendingUpstream > 0 {
		cs.mu.Unlock()
		return
	}
	// All inputs on disk: re-claim the parked nodes and hand to the
	// Launcher under the real ID.
	delete(cs.sims, placeholderID)
	// Clear placeholder promises; doLaunch (or the requeued launch)
	// re-marks them.
	for s := sim.first; s <= sim.last; s++ {
		if cs.promised[s] == placeholderID {
			delete(cs.promised, s)
		}
	}
	if !v.sched.ClaimNodes(sim.parallelism) {
		// The node budget filled up while the inputs were produced: give
		// the slot back and requeue; the job launches through the normal
		// drain once nodes free, re-walking its upstream inputs then
		// (they are resident now; if evicted meanwhile the walk simply
		// re-acquires them).
		v.releaseUpstream(cs, sim)
		v.sched.ReleaseSlot(cs.ctx.Name)
		v.sched.Enqueue(sched.Request{
			Ctx: cs.ctx.Name, First: sim.first, Last: sim.last,
			Parallelism: sim.parallelism, Class: sim.class, Client: sim.client,
		})
		v.markPromised(cs, sim.first, sim.last, pendingSimID)
		cs.mu.Unlock()
		v.drainScheduler()
		return
	}
	v.doLaunch(cs, sim)
	cs.mu.Unlock()
}

// doLaunch hands the simulation to the Launcher. Caller holds cs's lock.
// simMu is held across Launch so a concurrent event callback for the new
// id finds its route before the id is even returned to us.
func (v *Virtualizer) doLaunch(cs *shard, sim *simState) {
	sim.launched = true
	v.simMu.Lock()
	id := v.launcher.Launch(cs.ctx, sim.first, sim.last, sim.parallelism)
	sim.id = id
	v.simDir[id] = cs
	v.simMu.Unlock()
	cs.sims[id] = sim
	cs.stats.Restarts++
	if sim.prefetchFor == "" {
		cs.stats.DemandRestarts++
	} else {
		cs.stats.PrefetchLaunches++
	}
	v.markPromised(cs, sim.first, sim.last, id)
}

// markPromised registers promised markers for uncovered steps in the
// range. Caller holds the shard lock.
func (v *Virtualizer) markPromised(cs *shard, first, last int, simID int64) {
	for s := first; s <= last; s++ {
		if cs.resident(s) {
			continue
		}
		if _, p := cs.promised[s]; !p {
			cs.promised[s] = simID
		}
	}
}

// neededUpstreamSteps returns the upstream output steps whose data covers
// the downstream re-simulation producing outputs [first, last]: the
// interval from the restart boot to the last simulated timestep. Upstream
// output step i covers timesteps ((i-1)·Δd_up, i·Δd_up].
func neededUpstreamSteps(down, up model.Grid, first, last int) []int {
	start := down.RestartBefore(first)
	end := down.OutputTimestep(last)
	firstUp := start/up.DeltaD + 1
	lastUp := (end + up.DeltaD - 1) / up.DeltaD
	if max := up.NumOutputSteps(); lastUp > max {
		lastUp = max
	}
	var steps []int
	for i := firstUp; i <= lastUp; i++ {
		steps = append(steps, i)
	}
	return steps
}

// releaseUpstream drops the upstream references a pipeline simulation
// held. Caller holds cs's lock; the upstream shard is locked inside
// (downstream→upstream order).
func (v *Virtualizer) releaseUpstream(cs *shard, sim *simState) {
	if cs.ctx.Upstream == "" || len(sim.upstreamFiles) == 0 {
		return
	}
	ucs, ok := v.shardOf(cs.ctx.Upstream)
	if !ok {
		return
	}
	ucs.mu.Lock()
	defer ucs.mu.Unlock()
	for _, name := range sim.upstreamFiles {
		step, err := ucs.ctx.Key(name)
		if err != nil {
			continue
		}
		if ucs.refs[step] > 0 {
			ucs.refs[step]--
			if ucs.refs[step] == 0 {
				delete(ucs.refs, step)
			}
			if ucs.resident(step) {
				_ = ucs.cache.Unpin(name)
			}
		}
	}
	sim.upstreamFiles = nil
}

// SimStarted implements the launcher Events contract: production begins
// (restart latency elapsed). The observed latency feeds the EMA the
// prefetch agents use (Sec. IV-C1c).
func (v *Virtualizer) SimStarted(simID int64) {
	cs := v.simShard(simID)
	if cs == nil {
		return
	}
	cs.mu.Lock()
	defer cs.mu.Unlock()
	sim, ok := cs.sims[simID]
	if !ok {
		return
	}
	now := v.clock.Now()
	sim.started = true
	sim.startedAt = now
	cs.alphaEMA.Observe(float64(now - sim.launchedAt))
}

// StepProduced implements the launcher Events contract: one output step
// was written and closed. The step enters the cache (evicting as needed),
// waiters are notified, the hub publishes file-ready, and prefetch
// bookkeeping is updated. Waiter callbacks and the hub publish run after
// the shard lock is released.
func (v *Virtualizer) StepProduced(simID int64, step int) {
	cs := v.simShard(simID)
	if cs == nil {
		return
	}
	cs.mu.Lock()
	sim, ok := cs.sims[simID]
	if !ok {
		cs.mu.Unlock()
		return
	}
	sim.produced++
	cs.stats.StepsProduced++
	v.insertStep(cs, step)
	cs.everProduced[step] = true
	if sim.prefetchFor != "" {
		if _, tracked := cs.prefetched[step]; !tracked {
			cs.prefetched[step] = sim.prefetchFor
		}
	}
	// Production by any simulation satisfies the promise, even when an
	// overlapping simulation registered it: the file is on disk, which is
	// all a promise guarantees. (Keeping the marker until the owner also
	// produced the step left it both resident and promised.)
	delete(cs.promised, step)
	ws := cs.waiters[step]
	delete(cs.waiters, step)
	now := v.clock.Now()
	for _, w := range ws {
		cs.lastReady[w.client] = now
	}
	cs.mu.Unlock()
	for _, w := range ws {
		w.cb(Status{Ready: true})
	}
	v.publishReady(cs.ctx.Name, []int{step})
}

// SimEnded implements the launcher Events contract.
func (v *Virtualizer) SimEnded(simID int64, outcome simulator.Outcome) {
	cs := v.simShard(simID)
	if cs == nil {
		return
	}
	cs.mu.Lock()
	sim, ok := cs.sims[simID]
	if !ok {
		cs.mu.Unlock()
		v.dropSimRoute(simID)
		return
	}
	delete(cs.sims, simID)
	v.releaseUpstream(cs, sim)

	var cbs []func(Status)
	var failed []int
	var errMsg string
	var attempts int
	var retryAfter time.Duration
	var armRetry func()
	switch outcome {
	case simulator.Completed:
		// Normal completion: the interval's failure-ledger slate wipes.
		v.clearFailure(cs, sim.first, sim.last)
	case simulator.Killed:
		cs.stats.Kills++
		if sim.preempted && !sim.killing {
			// Preemption: the interval is requeued, not failed — the
			// victim's promises come back as pending markers, so waiters
			// that raced in after the kill are served by the requeued job
			// instead of being failed. A cancellation kill that raced in
			// after the preemption (sim.killing) wins instead: the owner
			// reset or disconnected, so resurrecting the work would undo
			// exactly what that cancellation dismantled.
			cbs, failed = v.requeuePreempted(cs, sim)
		} else {
			errMsg = "re-simulation killed"
			cbs, failed = v.failPromised(cs, sim, errMsg)
		}
	default:
		cs.stats.Failures++
		delay, qerr, retry := v.noteFailure(cs, sim)
		switch {
		case retry:
			// The ledger grants another attempt: keep the promises alive
			// as pending markers (waiters ride through the backoff; no
			// demand open storms a duplicate launch) and arm the delayed
			// re-submission once the locks are gone.
			v.repromise(cs, sim)
			first, last, par := sim.first, sim.last, sim.parallelism
			class, client := sim.class, sim.client
			armRetry = func() {
				v.after(delay, func() {
					v.retryLaunch(cs.ctx.Name, first, last, par, class, client)
				})
			}
		case qerr != nil:
			// Budget exhausted: the breaker opened. Fail the waiters with
			// the structured error so clients see attempts + retry-after.
			errMsg = qerr.Error()
			attempts, retryAfter = qerr.Attempts, qerr.RetryAfter
			cbs, failed = v.failPromised(cs, sim, errMsg)
		default:
			errMsg = "re-simulation failed"
			cbs, failed = v.failPromised(cs, sim, errMsg)
		}
	}
	if len(failed) > 0 && errMsg == "" {
		errMsg = "re-simulation killed"
	}
	cs.mu.Unlock()
	if sim.preempted {
		// One critical section returns the victim's nodes and settles
		// the reclaim ledger: no observer sees them double-counted.
		v.sched.SimDonePreempted(cs.ctx.Name, sim.parallelism)
	} else {
		v.sched.SimDone(cs.ctx.Name, sim.parallelism)
	}
	v.drainScheduler()
	v.dropSimRoute(simID)
	if armRetry != nil {
		armRetry()
	}
	for _, cb := range cbs {
		cb(Status{Err: errMsg, Attempts: attempts, RetryAfter: retryAfter})
	}
	v.publishFailedDetail(cs.ctx.Name, failed, errMsg, attempts, retryAfter)
}

// failPromised clears the promises of a dead simulation, collecting the
// waiter callbacks to notify and the orphaned steps to publish as failed.
// Caller holds the shard lock.
func (v *Virtualizer) failPromised(cs *shard, sim *simState, msg string) ([]func(Status), []int) {
	var cbs []func(Status)
	var failed []int
	for s := sim.first; s <= sim.last; s++ {
		if id, p := cs.promised[s]; p && id == sim.id {
			delete(cs.promised, s)
			failed = append(failed, s)
			for _, w := range cs.waiters[s] {
				cbs = append(cbs, w.cb)
			}
			delete(cs.waiters, s)
		}
	}
	return cbs, failed
}

// drainScheduler starts queued launches while the scheduler admits them.
// It must be called WITHOUT any shard lock held: each admitted job locks
// its own shard (jobs of any context may become admissible when capacity
// frees up). Jobs are revalidated at admission — prefetch work that was
// produced in the meantime is dropped, and a draining (or concurrently
// deregistered — the flag outlives removal) context launches nothing new
// unless the job is demand work someone still waits on.
func (v *Virtualizer) drainScheduler() {
	// Whatever stopped the drain, a demand job still blocked on the node
	// budget may be allowed to make room for itself by killing a running
	// agent prefetch (no-op unless Config.Preempt is set).
	defer v.maybePreempt()
	for {
		job, ok := v.sched.Next()
		if !ok {
			return
		}
		cs, found := v.shardOf(job.Ctx)
		if !found {
			v.sched.Release(job)
			continue
		}
		cs.mu.Lock()
		// Clear the pending markers; startSim re-marks what it launches.
		var cleared []int
		for s := job.First; s <= job.Last; s++ {
			if cs.promised[s] == pendingSimID {
				delete(cs.promised, s)
				cleared = append(cleared, s)
			}
		}
		if cs.draining && !(job.Class == sched.Demand && v.anyoneNeeds(cs, job.First, job.Last)) {
			// The context is draining (or was removed while this job sat
			// queued): nothing new starts. Demand work with live waiters
			// or references is the exception — pre-drain work completes.
			v.remarkQueued(cs)
			orphaned := v.trulyOrphaned(cs, cleared)
			v.sched.Release(job)
			cs.mu.Unlock()
			v.publishFailed(cs.ctx.Name, orphaned, "re-simulation canceled")
			continue
		}
		if job.Class != sched.Demand && !v.uncovered(cs, job.First, job.Last) {
			// Stale prefetch: everything it would produce is already on
			// disk or promised by a live simulation.
			v.remarkQueued(cs)
			v.sched.Release(job)
			cs.mu.Unlock()
			continue
		}
		v.startSim(cs, job.First, job.Last, job.Parallelism, job.Class, job.Client)
		cs.mu.Unlock()
	}
}

// anyoneNeeds reports whether any step in the range has waiters or
// references. Caller holds the shard lock.
func (v *Virtualizer) anyoneNeeds(cs *shard, first, last int) bool {
	for s := first; s <= last; s++ {
		if len(cs.waiters[s]) > 0 || cs.refs[s] > 0 {
			return true
		}
	}
	return false
}

// trulyOrphaned filters cleared step markers down to those not covered
// by residency, a live promise or a surviving queued job (remarkQueued
// must have run). Caller holds the shard lock.
func (v *Virtualizer) trulyOrphaned(cs *shard, cleared []int) []int {
	var orphaned []int
	for _, s := range cleared {
		if cs.resident(s) {
			continue
		}
		if _, p := cs.promised[s]; p {
			continue
		}
		orphaned = append(orphaned, s)
	}
	return orphaned
}

// remarkQueued restores the pending markers of the shard's still-queued
// jobs (after a job's markers were cleared for a launch or cancellation
// that overlapped them). Caller holds the shard lock.
func (v *Virtualizer) remarkQueued(cs *shard) {
	for _, r := range v.sched.QueuedRanges(cs.ctx.Name) {
		for s := r[0]; s <= r[1]; s++ {
			if cs.resident(s) {
				continue
			}
			if _, p := cs.promised[s]; !p {
				cs.promised[s] = pendingSimID
			}
		}
	}
}

// killPrefetchedFor kills running prefetch simulations of the given client
// whose remaining output nobody waits for (Sec. IV-C: "A simulation can be
// killed only if there are no other analyses waiting for the files that
// are going to be produced by it"), and de-queues the client's queued
// prefetch jobs under the same no-waiters rule. It returns the steps
// whose promises were dismantled locally — the caller must publish them
// as failed once the shard lock is released (launched kills reach
// subscribers through SimEnded instead) — and whether scheduler capacity
// was freed synchronously (de-queued jobs or dismantled placeholders),
// in which case the caller must drain the scheduler after unlocking.
// Caller holds the shard lock.
func (v *Virtualizer) killPrefetchedFor(cs *shard, client string) ([]int, bool) {
	// The no-waiters rule, shared by queued jobs and running sims: a
	// range someone waits for (or references) survives.
	keep := func(first, last int) bool {
		for s := first; s <= last; s++ {
			if len(cs.waiters[s]) > 0 || cs.refs[s] > 0 {
				return true
			}
		}
		return false
	}

	// cleared collects every promise marker dismantled below; it is
	// reconciled against surviving queued jobs once, at the end. freed
	// records synchronous capacity release (launched kills free theirs
	// asynchronously through SimEnded).
	var cleared []int
	freed := false

	// De-queue queued prefetch jobs first so the drains triggered by the
	// kills below cannot re-admit work the client no longer wants.
	for _, job := range v.sched.CancelClient(cs.ctx.Name, client, keep) {
		freed = true
		for s := job.First; s <= job.Last; s++ {
			if cs.promised[s] == pendingSimID {
				delete(cs.promised, s)
				cleared = append(cleared, s)
			}
		}
	}

	// Sorted iteration: the kill/dismantle order below is visible to the
	// DES (each Kill schedules an event), so it must not follow map order.
	for _, id := range slices.Sorted(maps.Keys(cs.sims)) {
		sim := cs.sims[id]
		if sim.prefetchFor != client {
			continue
		}
		if keep(sim.first, sim.last) {
			continue
		}
		if sim.launched {
			sim.killing = true
			v.launcher.Kill(id)
		} else {
			// Pipeline-pending: dismantle locally. The placeholder's
			// nodes are parked, so only the context slot returns.
			delete(cs.sims, id)
			v.releaseUpstream(cs, sim)
			v.sched.ReleaseSlot(cs.ctx.Name)
			freed = true
			for s := sim.first; s <= sim.last; s++ {
				if cs.promised[s] == id {
					delete(cs.promised, s)
					cleared = append(cleared, s)
				}
			}
			cs.stats.Kills++
		}
	}
	if len(cleared) == 0 {
		return nil, freed
	}
	// Steps a surviving queued job still covers were only over-cleared:
	// restore their markers, then report what is truly orphaned.
	v.remarkQueued(cs)
	var orphaned []int
	for _, s := range cleared {
		if cs.resident(s) {
			continue
		}
		if _, p := cs.promised[s]; p {
			continue
		}
		orphaned = append(orphaned, s)
	}
	return orphaned, freed
}
