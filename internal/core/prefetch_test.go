package core

import (
	"testing"
	"time"

	"simfs/internal/model"
)

// prefetchCtx returns a context with prefetching enabled.
func prefetchCtx() *model.Context {
	c := &model.Context{
		Name:               "pf",
		Grid:               model.Grid{DeltaD: 1, DeltaR: 4, Timesteps: 200},
		OutputBytes:        1,
		MaxCacheBytes:      0, // unbounded
		Tau:                time.Second,
		Alpha:              2 * time.Second,
		DefaultParallelism: 1,
		MaxParallelism:     1,
		SMax:               4,
	}
	c.ApplyDefaults()
	return c
}

// driveForward walks a client forward through steps [1..n], waiting for
// misses, with the given per-step processing time. Returns completion
// time.
func driveForward(h *harness, client string, n int, tauCli time.Duration) time.Duration {
	ctx, _ := h.v.Context("pf")
	var done time.Duration
	var step func(i int)
	step = func(i int) {
		if i > n {
			done = h.eng.Now()
			return
		}
		file := ctx.Filename(i)
		res, err := h.v.Open(client, "pf", file)
		if err != nil {
			panic(err)
		}
		proceed := func() {
			h.eng.Schedule(tauCli, func() {
				h.v.Release(client, "pf", file)
				step(i + 1)
			})
		}
		if res.Available {
			proceed()
			return
		}
		if err := h.v.WaitFile(client, "pf", file, func(st Status) { proceed() }); err != nil {
			proceed()
		}
	}
	h.eng.Schedule(0, func() { step(1) })
	h.eng.Run(0)
	return done
}

func TestPrefetchLaunchesAheadOfForwardScan(t *testing.T) {
	h := newHarness(t, prefetchCtx())
	driveForward(h, "a1", 40, 100*time.Millisecond)
	st, _ := h.v.Stats("pf")
	if st.PrefetchLaunches == 0 {
		t.Fatal("forward scan triggered no prefetch launches")
	}
	if st.DemandRestarts > 2 {
		t.Errorf("demand restarts = %d; prefetching should absorb almost all misses", st.DemandRestarts)
	}
}

func TestPrefetchKilledOnDirectionChange(t *testing.T) {
	h := newHarness(t, prefetchCtx())
	ctx, _ := h.v.Context("pf")
	client := "a1"
	// Forward scan just long enough to spawn prefetches, then jump while
	// the prefetched simulations are still running...
	var phase2 func()
	var step func(i int)
	step = func(i int) {
		if i > 6 {
			phase2()
			return
		}
		file := ctx.Filename(i)
		res, _ := h.v.Open(client, "pf", file)
		next := func() {
			h.eng.Schedule(100*time.Millisecond, func() {
				h.v.Release(client, "pf", file)
				step(i + 1)
			})
		}
		if res.Available {
			next()
		} else if err := h.v.WaitFile(client, "pf", file, func(Status) { next() }); err != nil {
			next()
		}
	}
	// ...then jump far away backward, twice, to flip the pattern.
	phase2 = func() {
		for _, s := range []int{150, 149, 148} {
			file := ctx.Filename(s)
			if res, _ := h.v.Open(client, "pf", file); res.Available {
				h.v.Release(client, "pf", file)
			}
		}
	}
	h.eng.Schedule(0, func() { step(1) })
	h.eng.Run(0)
	st, _ := h.v.Stats("pf")
	if st.PrefetchLaunches == 0 {
		t.Fatal("no prefetches to kill")
	}
	if st.Kills == 0 {
		t.Error("direction change should kill outstanding prefetched simulations")
	}
}

func TestPollutionResetsAgents(t *testing.T) {
	// Tiny cache: 4 steps. Prefetched files get evicted before the
	// analysis reaches them → pollution signal → agents reset.
	ctx := prefetchCtx()
	ctx.MaxCacheBytes = 4
	h := newHarness(t, ctx)
	driveForward(h, "a1", 60, 50*time.Millisecond)
	st, _ := h.v.Stats("pf")
	if st.PollutionResets == 0 {
		t.Skip("no pollution observed with this geometry (eviction kept pace)")
	}
}

func TestPrefetchSharedAcrossClients(t *testing.T) {
	// A second client arriving later rides the first client's cached and
	// promised files instead of restarting everything.
	h := newHarness(t, prefetchCtx())
	tA := driveForward(h, "a1", 40, 100*time.Millisecond)
	stBefore, _ := h.v.Stats("pf")
	tB := driveForward(h, "a2", 40, 100*time.Millisecond)
	stAfter, _ := h.v.Stats("pf")
	if tB-tA > tA/2 {
		t.Errorf("second client took %v, first %v: should be mostly cache hits", tB-tA, tA)
	}
	// The second client may speculatively prefetch beyond the shared
	// coverage (the paper accepts that prefetched steps are not guaranteed
	// to be accessed), but it must never need a demand re-simulation.
	if stAfter.DemandRestarts != stBefore.DemandRestarts {
		t.Errorf("second client caused %d extra demand restarts",
			stAfter.DemandRestarts-stBefore.DemandRestarts)
	}
}

func TestDroppedPrefetchAtSMax(t *testing.T) {
	ctx := prefetchCtx()
	ctx.SMax = 1 // only the demand simulation fits
	h := newHarness(t, ctx)
	driveForward(h, "a1", 30, 50*time.Millisecond)
	st, _ := h.v.Stats("pf")
	if st.DroppedPrefetch == 0 {
		t.Error("smax=1 should force dropped prefetches")
	}
}

func TestAlphaEMATracksObservedLatency(t *testing.T) {
	h := newHarness(t, prefetchCtx())
	ctx, _ := h.v.Context("pf")
	h.v.Open("a1", "pf", ctx.Filename(1))
	h.eng.Run(0)
	// After one simulation, the estimate should be the observed α (2s),
	// visible through EstWait of a fresh miss.
	h.v.Open("a1", "pf", ctx.Filename(100))
	w, err := h.v.EstWait("pf", ctx.Filename(100))
	if err != nil {
		t.Fatal(err)
	}
	// Step 100 is 4th in its interval (97..100): α + 4τ = 6s.
	if w != 6*time.Second {
		t.Errorf("EstWait = %v, want 6s from the observed EMA", w)
	}
}
