package core

import (
	"testing"
	"time"

	"simfs/internal/des"
	"simfs/internal/model"
	"simfs/internal/sched"
	"simfs/internal/simulator"
)

// schedHarness wires a Virtualizer with an explicit scheduler policy.
func schedHarness(t *testing.T, cfg sched.Config, ctxs ...*model.Context) *harness {
	t.Helper()
	eng := des.NewEngine()
	l := &simulator.DESLauncher{Engine: eng}
	v := NewScheduled(eng, l, cfg)
	l.Events = v
	for _, c := range ctxs {
		if err := v.AddContext(c, "DCL", nil); err != nil {
			t.Fatalf("AddContext(%s): %v", c.Name, err)
		}
	}
	return &harness{eng: eng, l: l, v: v}
}

// TestNodeBudgetSerializesSimulations replaces the old launcher-level
// batch.Pool test: with a one-node budget, two demand re-simulations of
// disjoint intervals must run one after the other in virtual time.
func TestNodeBudgetSerializesSimulations(t *testing.T) {
	ctx := testContext("c")
	h := schedHarness(t, sched.Config{TotalNodes: 1}, ctx)
	done := 0
	wait := func(step int) {
		if err := h.v.WaitFile("a1", "c", ctx.Filename(step), func(st Status) {
			if st.Err != "" {
				t.Errorf("step %d failed: %s", step, st.Err)
			}
			done++
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Two misses in different restart intervals: [1,4] and [9,12].
	if _, err := h.v.Open("a1", "c", ctx.Filename(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := h.v.Open("a1", "c", ctx.Filename(9)); err != nil {
		t.Fatal(err)
	}
	wait(1)
	wait(9)
	h.eng.Run(0)
	if done != 2 {
		t.Fatalf("done = %d, want both productions", done)
	}
	// Serialized: 2·(α 2s + 4·τ 1s) = 12s. Concurrent would be 6s.
	if got := h.eng.Now(); got != 12*time.Second {
		t.Errorf("end time = %v, want 12s (serialized on the node budget)", got)
	}
	st := h.v.SchedStats()
	if st.DemandWait.Jobs != 1 || st.DemandWait.Wait != 6*time.Second {
		t.Errorf("demand wait = %+v, want 1 job waiting 6s for nodes", st.DemandWait)
	}
}

// TestNodeBudgetClampsWideJobs: a request wider than the whole budget is
// clamped to it instead of being rejected (the old pool failed such jobs).
func TestNodeBudgetClampsWideJobs(t *testing.T) {
	ctx := testContext("c")
	ctx.DefaultParallelism = 8
	ctx.MaxParallelism = 8
	h := schedHarness(t, sched.Config{TotalNodes: 2}, ctx)
	ok := false
	if _, err := h.v.Open("a1", "c", ctx.Filename(1)); err != nil {
		t.Fatal(err)
	}
	if err := h.v.WaitFile("a1", "c", ctx.Filename(1), func(st Status) {
		ok = st.Err == ""
	}); err != nil {
		t.Fatal(err)
	}
	h.eng.Run(0)
	if !ok {
		t.Fatal("clamped job did not complete")
	}
}

// TestCoalescingMergesQueuedDemand: with one slot busy, two demand misses
// in adjacent restart intervals coalesce into one queued job — one
// restart serves both once capacity frees up.
func TestCoalescingMergesQueuedDemand(t *testing.T) {
	run := func(coalesce bool) (restarts int64, depthSeen int) {
		ctx := testContext("c")
		ctx.SMax = 1
		h := schedHarness(t, sched.Config{Coalesce: coalesce}, ctx)
		// Occupy the only slot.
		if _, err := h.v.Open("a1", "c", ctx.Filename(50)); err != nil {
			t.Fatal(err)
		}
		// Queue two mergeable demand launches: intervals [1,4] and [5,8].
		if _, err := h.v.Open("a1", "c", ctx.Filename(1)); err != nil {
			t.Fatal(err)
		}
		if _, err := h.v.Open("a1", "c", ctx.Filename(5)); err != nil {
			t.Fatal(err)
		}
		depthSeen = h.v.Scheduler().QueueDepth()
		h.eng.Run(0)
		st, _ := h.v.Stats("c")
		return st.Restarts, depthSeen
	}
	r0, d0 := run(false)
	r1, d1 := run(true)
	if d0 != 2 || r0 != 3 {
		t.Errorf("without coalescing: depth=%d restarts=%d, want 2 queued jobs / 3 restarts", d0, r0)
	}
	if d1 != 1 || r1 != 2 {
		t.Errorf("with coalescing: depth=%d restarts=%d, want 1 merged job / 2 restarts", d1, r1)
	}
}

// TestPriorityModeQueuesPrefetch: with Priorities on, a guided prefetch
// at capacity queues (legacy drops it) and launches after the demand work.
func TestPriorityModeQueuesPrefetch(t *testing.T) {
	ctx := testContext("c")
	ctx.SMax = 1
	h := schedHarness(t, sched.Config{Priorities: true}, ctx)
	if _, err := h.v.Open("a1", "c", ctx.Filename(50)); err != nil { // fills the slot
		t.Fatal(err)
	}
	if _, err := h.v.GuidedPrefetch("a1", "c", []string{ctx.Filename(9)}); err != nil {
		t.Fatal(err)
	}
	st, _ := h.v.Stats("c")
	if st.DroppedPrefetch != 0 {
		t.Errorf("prefetch dropped despite priority queueing: %+v", st)
	}
	if d := h.v.Scheduler().QueueDepth(); d != 1 {
		t.Fatalf("queue depth = %d, want the queued prefetch", d)
	}
	// A demand miss queued afterwards must still pop first.
	if _, err := h.v.Open("a1", "c", ctx.Filename(20)); err != nil {
		t.Fatal(err)
	}
	h.eng.Run(0)
	st, _ = h.v.Stats("c")
	if st.Restarts != 3 {
		t.Errorf("restarts = %d, want 3 (demand + prefetch both served)", st.Restarts)
	}
	ss := h.v.SchedStats()
	if ss.GuidedWait.Jobs != 1 {
		t.Errorf("guided wait jobs = %d, want 1", ss.GuidedWait.Jobs)
	}
	if ss.DemandWait.Jobs != 1 || ss.DemandWait.Wait > ss.GuidedWait.Wait {
		t.Errorf("demand should wait no longer than the earlier-queued prefetch: %+v vs %+v",
			ss.DemandWait, ss.GuidedWait)
	}
	if err := h.v.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestQueuedPrefetchRevalidatedAtAdmission: a queued prefetch whose range
// got produced by overlapping demand work is dropped at admission instead
// of restarting for nothing.
func TestQueuedPrefetchRevalidatedAtAdmission(t *testing.T) {
	ctx := testContext("c")
	ctx.SMax = 1
	h := schedHarness(t, sched.Config{Priorities: true}, ctx)
	// Busy slot producing [1,4].
	if _, err := h.v.Open("a1", "c", ctx.Filename(1)); err != nil {
		t.Fatal(err)
	}
	// Prefetch of [9,12] queues behind it.
	if _, err := h.v.GuidedPrefetch("b1", "c", []string{ctx.Filename(10)}); err != nil {
		t.Fatal(err)
	}
	if d := h.v.Scheduler().QueueDepth(); d != 1 {
		t.Fatalf("queue depth = %d, want the queued prefetch", d)
	}
	// While it waits, its whole range appears on disk (recovered files,
	// an overlapping producer): the job is stale.
	if err := h.v.Preload("c", []int{9, 10, 11, 12}); err != nil {
		t.Fatal(err)
	}
	h.eng.Run(0)
	st, _ := h.v.Stats("c")
	if st.Restarts != 1 {
		t.Errorf("restarts = %d, want 1 (stale prefetch dropped at admission)", st.Restarts)
	}
	if ss := h.v.SchedStats(); ss.Canceled != 1 {
		t.Errorf("canceled = %d, want the revalidated prefetch", ss.Canceled)
	}
}

// TestClientDisconnectedDequeuesPrefetch: a disconnect removes the
// client's queued prefetch jobs and publishes their orphaned steps.
func TestClientDisconnectedDequeuesPrefetch(t *testing.T) {
	ctx := testContext("c")
	ctx.SMax = 1
	h := schedHarness(t, sched.Config{Priorities: true}, ctx)
	if _, err := h.v.Open("a1", "c", ctx.Filename(50)); err != nil {
		t.Fatal(err)
	}
	if _, err := h.v.GuidedPrefetch("b1", "c", []string{ctx.Filename(9)}); err != nil {
		t.Fatal(err)
	}
	if d := h.v.Scheduler().QueueDepth(); d != 1 {
		t.Fatalf("queue depth = %d", d)
	}
	// The steps of the queued job are promised (pending marker).
	if _, promised, _ := h.v.FileState("c", ctx.Filename(9)); !promised {
		t.Fatal("queued prefetch steps should be promised")
	}
	h.v.ClientDisconnected("b1")
	if d := h.v.Scheduler().QueueDepth(); d != 0 {
		t.Fatalf("queue depth after disconnect = %d, want 0", d)
	}
	if _, promised, _ := h.v.FileState("c", ctx.Filename(9)); promised {
		t.Error("orphaned steps still promised after disconnect")
	}
	h.eng.Run(0)
	st, _ := h.v.Stats("c")
	if st.Restarts != 1 {
		t.Errorf("restarts = %d, want only the demand one", st.Restarts)
	}
	if err := h.v.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestClientDisconnectedSparesWantedWork: a queued prefetch another client
// waits on survives the requester's disconnect.
func TestClientDisconnectedSparesWantedWork(t *testing.T) {
	ctx := testContext("c")
	ctx.SMax = 1
	h := schedHarness(t, sched.Config{Priorities: true}, ctx)
	if _, err := h.v.Open("a1", "c", ctx.Filename(50)); err != nil {
		t.Fatal(err)
	}
	if _, err := h.v.GuidedPrefetch("b1", "c", []string{ctx.Filename(9)}); err != nil {
		t.Fatal(err)
	}
	// Another client opens a step in the queued range: it joins the
	// pending promise and must keep the job alive.
	got := false
	if _, err := h.v.Open("a2", "c", ctx.Filename(9)); err != nil {
		t.Fatal(err)
	}
	if err := h.v.WaitFile("a2", "c", ctx.Filename(9), func(st Status) {
		got = st.Err == ""
	}); err != nil {
		t.Fatal(err)
	}
	h.v.ClientDisconnected("b1")
	if d := h.v.Scheduler().QueueDepth(); d != 1 {
		t.Fatalf("queue depth after disconnect = %d, want the kept job", d)
	}
	h.eng.Run(0)
	if !got {
		t.Error("waiter on the kept job never fired")
	}
}

// TestSchedStatsExposed: the Virtualizer surfaces the scheduler counters.
func TestSchedStatsExposed(t *testing.T) {
	ctx := testContext("c")
	ctx.SMax = 1
	h := newHarness(t, ctx)
	if _, err := h.v.Open("a1", "c", ctx.Filename(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := h.v.Open("a1", "c", ctx.Filename(9)); err != nil {
		t.Fatal(err)
	}
	st := h.v.SchedStats()
	if st.Submitted != 2 || st.Admitted != 1 || st.Queued != 1 || st.QueueDepth != 1 {
		t.Errorf("sched stats = %+v", st)
	}
	h.eng.Run(0)
	if st = h.v.SchedStats(); st.QueueDepth != 0 || st.MaxQueueDepth != 1 {
		t.Errorf("after run: %+v", st)
	}
}

// pipelineSchedPair builds the coarse→fine pair on a scheduler-configured
// harness.
func pipelineSchedPair(t *testing.T, cfg sched.Config) (*harness, *model.Context, *model.Context) {
	t.Helper()
	coarse := &model.Context{
		Name:               "coarse",
		Grid:               model.Grid{DeltaD: 4, DeltaR: 16, Timesteps: 128},
		OutputBytes:        1,
		Tau:                time.Second,
		Alpha:              2 * time.Second,
		DefaultParallelism: 1,
		MaxParallelism:     1,
		SMax:               4,
		NoPrefetch:         true,
	}
	coarse.ApplyDefaults()
	fine := &model.Context{
		Name:               "fine",
		Grid:               model.Grid{DeltaD: 1, DeltaR: 8, Timesteps: 128},
		OutputBytes:        1,
		Tau:                time.Second,
		Alpha:              2 * time.Second,
		DefaultParallelism: 1,
		MaxParallelism:     1,
		SMax:               4,
		Upstream:           "coarse",
		NoPrefetch:         true,
	}
	fine.ApplyDefaults()
	h := schedHarness(t, cfg, coarse, fine)
	return h, coarse, fine
}

// TestPipelineUnderNodeBudget: a one-node budget must not deadlock the
// pipeline — the fine simulation parks its nodes while waiting for the
// coarse input, so the coarse (upstream) re-simulation can be admitted.
func TestPipelineUnderNodeBudget(t *testing.T) {
	h, _, fine := pipelineSchedPair(t, sched.Config{TotalNodes: 1})
	file := fine.Filename(20) // interval (16,24] needs coarse steps 5..6
	if _, err := h.v.Open("a1", "fine", file); err != nil {
		t.Fatal(err)
	}
	ready := false
	if err := h.v.WaitFile("a1", "fine", file, func(st Status) {
		if st.Err != "" {
			t.Errorf("pipeline wait failed: %s", st.Err)
		}
		ready = true
	}); err != nil {
		t.Fatal(err)
	}
	if !h.eng.Run(1_000_000) {
		t.Fatal("runaway event loop")
	}
	if !ready {
		t.Fatal("pipeline under a node budget never produced the file (budget deadlock)")
	}
	cs, _ := h.v.Stats("coarse")
	fs, _ := h.v.Stats("fine")
	if cs.Restarts == 0 || fs.Restarts == 0 {
		t.Fatalf("restarts coarse=%d fine=%d, want both stages to run", cs.Restarts, fs.Restarts)
	}
	if err := h.v.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestPipelineNodeBudgetContention: while the fine placeholder waits for
// its coarse input, an unrelated demand sim grabs the budget; the ready
// placeholder must requeue (not launch over budget, not deadlock) and
// complete once nodes free.
func TestPipelineNodeBudgetContention(t *testing.T) {
	h, coarse, fine := pipelineSchedPair(t, sched.Config{TotalNodes: 1})
	file := fine.Filename(20)
	if _, err := h.v.Open("a1", "fine", file); err != nil {
		t.Fatal(err)
	}
	fineReady := false
	if err := h.v.WaitFile("a1", "fine", file, func(st Status) {
		if st.Err != "" {
			t.Errorf("fine wait failed: %s", st.Err)
		}
		fineReady = true
	}); err != nil {
		t.Fatal(err)
	}
	// Just before the coarse stage finishes (α 2s + 2·τ(4Δd→…) — run a
	// competing coarse demand open so the budget is taken when the fine
	// placeholder's inputs become ready.
	h.eng.Schedule(time.Second, func() {
		if _, err := h.v.Open("a2", "coarse", coarse.Filename(20)); err != nil {
			t.Error(err)
		}
	})
	if !h.eng.Run(1_000_000) {
		t.Fatal("runaway event loop")
	}
	if !fineReady {
		t.Fatal("fine output never produced under node-budget contention")
	}
	if err := h.v.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
