package core

import "fmt"

// Bitwise-reproducibility support (paper Sec. III-C2): "the simulation
// context keeps a map from filenames to checksums that can be updated
// through a command line utility at the time when the first simulation is
// run". SIMFS_Bitrep compares a re-simulated file's checksum against the
// registered original.

// RegisterChecksum stores the original checksum of a file, as computed by
// the simulator-specific driver checksum at initial-simulation time.
func (v *Virtualizer) RegisterChecksum(ctxName, filename string, sum uint64) error {
	cs, err := v.lockedShard(ctxName)
	if err != nil {
		return err
	}
	defer cs.mu.Unlock()
	if _, err := cs.ctx.Key(filename); err != nil {
		return err
	}
	cs.checksums[filename] = sum
	return nil
}

// RegisteredChecksum returns the stored original checksum for a file.
func (v *Virtualizer) RegisteredChecksum(ctxName, filename string) (uint64, bool, error) {
	cs, err := v.lockedShard(ctxName)
	if err != nil {
		return 0, false, err
	}
	defer cs.mu.Unlock()
	sum, found := cs.checksums[filename]
	return sum, found, nil
}

// Bitrep implements SIMFS_Bitrep: it checks whether the given (current)
// file content matches the originally produced file, by comparing the
// driver-computed checksums. The returned flag is true when the contents
// are bitwise identical. An error is returned if no original checksum was
// registered for the file. The checksum itself is computed outside the
// shard lock.
func (v *Virtualizer) Bitrep(ctxName, filename string, content []byte) (bool, error) {
	cs, err := v.lockedShard(ctxName)
	if err != nil {
		return false, err
	}
	orig, found := cs.checksums[filename]
	driver := cs.driver
	cs.mu.Unlock()
	if !found {
		return false, fmt.Errorf("core: %w: no registered checksum for %q (run the checksum utility after the initial simulation)", ErrInvalid, filename)
	}
	return driver.Checksum(content) == orig, nil
}
