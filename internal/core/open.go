package core

import (
	"fmt"
	"sync"
	"time"

	"simfs/internal/model"
	"simfs/internal/prefetch"
	"simfs/internal/sched"
)

// Open handles a client's open of an output step file (paper Sec. III-A):
// non-blocking, it reports whether the file is on disk; if not, it starts
// (or joins) a re-simulation and returns an estimated wait. It also feeds
// the client's prefetch agent.
func (v *Virtualizer) Open(client, ctxName, filename string) (OpenResult, error) {
	cs, err := v.lockedShard(ctxName)
	if err != nil {
		return OpenResult{}, err
	}
	// An agent reset inside this Open may dismantle queued or
	// pipeline-pending prefetch work; when it does, the freed capacity is
	// drained after the lock-free publish (hit traffic never pays for the
	// global scheduler lock). Promises dismantled by the reset must reach
	// hub subscribers; registered before the unlock defer so it publishes
	// lock-free.
	var orphaned []int
	var freedCapacity, queuedDemand bool
	// A demand miss queued behind an exhausted node budget may preempt a
	// running agent prefetch. Only an Open that actually queued demand
	// work probes (lock-free, after everything below) — hit traffic
	// never pays for the scheduler mutex or the candidate scan, and
	// while a blocked demand job waits for a victim to appear, the
	// probes ride drainScheduler's capacity changes instead of the open
	// rate.
	defer func() {
		if queuedDemand {
			v.maybePreempt()
		}
	}()
	defer func() {
		if freedCapacity {
			v.drainScheduler()
		}
	}()
	defer func() { v.publishFailed(ctxName, orphaned, "re-simulation killed") }()
	defer cs.mu.Unlock()
	if cs.draining {
		return OpenResult{}, fmt.Errorf("core: %w: %q refuses new opens", ErrDraining, ctxName)
	}
	step, err := cs.ctx.Key(filename)
	if err != nil {
		return OpenResult{}, err
	}
	if !cs.ctx.Grid.ValidOutput(step) {
		return OpenResult{}, fmt.Errorf("core: %w: %q is outside the simulated timeline", ErrInvalid, filename)
	}
	now := v.clock.Now()
	cs.stats.Opens++

	hit := cs.cache.Touch(filename)
	if hit {
		cs.stats.Hits++
		delete(cs.prefetched, step) // accessed in time: not pollution
	} else {
		cs.stats.Misses++
		// Cache-pollution signal (Sec. IV-C): the client misses on a step
		// its own agent prefetched and that had been produced — it was
		// evicted before being accessed. Reset all active agents.
		if cs.prefetched[step] == client && cs.everProduced[step] {
			cs.stats.PollutionResets++
			for _, ag := range cs.agents { //simfs:allow maporder each agent resets independently; order is invisible
				ag.Reset()
			}
			delete(cs.prefetched, step)
		}
	}

	// Feed the prefetch agent and apply its decision. The processing-time
	// sample excludes time blocked on missing files: it is measured from
	// the instant the client's previous file became available.
	procTime := time.Duration(0)
	if lr, ok := cs.lastReady[client]; ok && now > lr {
		procTime = now - lr
	}
	var agentQueuedDemand bool
	orphaned, freedCapacity, agentQueuedDemand = v.runAgent(cs, client, step, now, procTime)
	queuedDemand = queuedDemand || agentQueuedDemand
	if hit {
		cs.lastReady[client] = now
	}

	// Count the reference (pin when resident).
	cs.refs[step]++
	if cs.resident(step) {
		_ = cs.cache.Pin(filename)
		return OpenResult{Available: true}, nil
	}

	// Miss: join the producing simulation or start a demand one.
	if simID, promised := cs.promised[step]; promised && simID == pendingSimID {
		// The step is promised by a *queued* job — nothing to submit, so
		// without this the demand interest would never reach the
		// scheduler (not even Coalesce sees it). With DemandJoin armed
		// the queued job is lifted to demand class so it drains ahead of
		// speculative work; the promotion counts as queued demand for the
		// preemption probe like any demand enqueue.
		if v.sched.PromoteDemand(cs.ctx.Name, step, client) {
			queuedDemand = true
		}
	} else if !promised {
		iv, err := cs.ctx.Grid.ResimInterval(step)
		if err != nil {
			cs.refs[step]--
			return OpenResult{}, err
		}
		first, last, ok := cs.ctx.Grid.OutputsIn(iv)
		if !ok {
			cs.refs[step]--
			return OpenResult{}, fmt.Errorf("core: %w: no outputs in re-simulation interval for %q", ErrInvalid, filename)
		}
		// Circuit breaker: an interval that exhausted its retry budget
		// fails fast with the structured quarantine error instead of
		// launching a simulation that will not produce.
		if qf, ql, okq := alignLaunchRange(cs, first, last); okq {
			if qerr := v.quarantineErr(cs, qf, ql); qerr != nil {
				cs.refs[step]--
				return OpenResult{}, qerr
			}
		}
		// The client rides along for the scheduler's per-client quota
		// accounting; demand simulations themselves stay client-less
		// (prefetchFor derives from the class, not the field).
		if v.launch(cs, first, last, cs.ctx.DefaultParallelism, sched.Demand, client) {
			queuedDemand = true
		}
	}
	return OpenResult{Available: false, EstWait: v.estWaitLocked(cs, step, now)}, nil
}

// WaitFile subscribes cb to the availability of filename: it fires
// immediately if the file is on disk, or when a re-simulation produces it
// (or fails). This is the blocking-read path of transparent mode and the
// notification path of SIMFS_Wait. The TCP front-end waits through the
// notify hub instead; this in-process path remains for embedded users and
// the pipeline coordinator.
func (v *Virtualizer) WaitFile(client, ctxName, filename string, cb func(Status)) error {
	cs, err := v.lockedShard(ctxName)
	if err != nil {
		return err
	}
	step, err := cs.ctx.Key(filename)
	if err != nil {
		cs.mu.Unlock()
		return err
	}
	if cs.resident(step) {
		cs.mu.Unlock()
		cb(Status{Ready: true})
		return nil
	}
	if _, promised := cs.promised[step]; !promised {
		cs.mu.Unlock()
		return fmt.Errorf("core: %w: %q is neither on disk nor promised; call Open or Acquire first", ErrNotProduced, filename)
	}
	cs.waiters[step] = append(cs.waiters[step], waiter{client: client, cb: cb})
	cs.mu.Unlock()
	return nil
}

// Release drops a client's reference to a file (close in transparent
// mode, SIMFS_Release in API mode).
func (v *Virtualizer) Release(client, ctxName, filename string) error {
	cs, err := v.lockedShard(ctxName)
	if err != nil {
		return err
	}
	defer cs.mu.Unlock()
	step, err := cs.ctx.Key(filename)
	if err != nil {
		return err
	}
	if cs.refs[step] <= 0 {
		return fmt.Errorf("core: %w: release of unreferenced file %q", ErrInvalid, filename)
	}
	cs.refs[step]--
	if cs.refs[step] == 0 {
		delete(cs.refs, step)
	}
	if cs.resident(step) {
		return cs.cache.Unpin(filename)
	}
	return nil
}

// Acquire implements the SIMFS_Acquire semantics: reference all files,
// ensure re-simulations are running for the missing ones, and invoke cb
// once when every file is available (or once with an error status if any
// production fails). The call itself never blocks.
func (v *Virtualizer) Acquire(client, ctxName string, filenames []string, cb func(Status)) error {
	if len(filenames) == 0 {
		cb(Status{Ready: true})
		return nil
	}
	type sub struct {
		file    string
		pending bool
	}
	subs := make([]sub, 0, len(filenames))
	var firstErr error
	var maxWait time.Duration
	for _, f := range filenames {
		res, err := v.Open(client, ctxName, f)
		if err != nil {
			firstErr = err
			break
		}
		subs = append(subs, sub{file: f, pending: !res.Available})
		if res.EstWait > maxWait {
			maxWait = res.EstWait
		}
	}
	if firstErr != nil {
		// Roll back references taken so far.
		for _, s := range subs {
			_ = v.Release(client, ctxName, s.file)
		}
		return firstErr
	}

	remaining := 0
	for _, s := range subs {
		if s.pending {
			remaining++
		}
	}
	if remaining == 0 {
		cb(Status{Ready: true})
		return nil
	}
	// Fan-in: one waiter per missing file, cb fired on the last one (or
	// on the first failure). The fan-in state has its own lock — waiter
	// callbacks run outside shard locks and may arrive from any shard.
	var fanMu sync.Mutex
	done := false
	var fanIn func(Status)
	fanIn = func(st Status) {
		fanMu.Lock()
		if done {
			fanMu.Unlock()
			return
		}
		if st.Err != "" {
			done = true
			fanMu.Unlock()
			cb(st)
			return
		}
		remaining--
		fire := remaining == 0
		if fire {
			done = true
		}
		fanMu.Unlock()
		if fire {
			cb(Status{Ready: true})
		}
	}
	for _, s := range subs {
		if !s.pending {
			continue
		}
		if err := v.WaitFile(client, ctxName, s.file, fanIn); err != nil {
			// The file may have become resident between Open and WaitFile —
			// but the producing simulation may also have died in that
			// window, so check which it was instead of assuming success.
			if resident, _, serr := v.FileState(ctxName, s.file); serr == nil && resident {
				fanIn(Status{Ready: true})
			} else {
				fanIn(Status{Err: "re-simulation failed before wait registration"})
			}
		}
	}
	return nil
}

// GuidedPrefetch implements the guided-prefetching interface (paper
// Sec. I: the APIs "can be used in addition to the fully transparent
// virtualization to optimize client applications as, e.g., guided
// prefetching"). The client hints that it will access the given files
// soon; SimFS starts re-simulations for the missing ones without taking
// references and without blocking. Hints beyond smax are dropped, like
// agent prefetches. It returns the number of re-simulations launched.
func (v *Virtualizer) GuidedPrefetch(client, ctxName string, filenames []string) (int, error) {
	cs, err := v.lockedShard(ctxName)
	if err != nil {
		return 0, err
	}
	// A guided hint on a pipeline context can queue node-blocked demand
	// work for its upstream inputs; probe for preemption after the
	// unlock when that happened.
	queuedDemand := false
	defer func() {
		if queuedDemand {
			v.maybePreempt()
		}
	}()
	defer cs.mu.Unlock()
	if cs.draining {
		return 0, fmt.Errorf("core: %w: %q refuses new prefetches", ErrDraining, ctxName)
	}
	launched := 0
	for _, f := range filenames {
		step, err := cs.ctx.Key(f)
		if err != nil {
			return launched, err
		}
		if !cs.ctx.Grid.ValidOutput(step) {
			return launched, fmt.Errorf("core: %w: %q is outside the simulated timeline", ErrInvalid, f)
		}
		if cs.resident(step) {
			continue
		}
		if _, promised := cs.promised[step]; promised {
			continue
		}
		before := cs.stats.Restarts
		iv, err := cs.ctx.Grid.ResimInterval(step)
		if err != nil {
			return launched, err
		}
		first, last, ok := cs.ctx.Grid.OutputsIn(iv)
		if !ok {
			continue
		}
		if v.launch(cs, first, last, cs.ctx.DefaultParallelism, sched.Guided, client) {
			queuedDemand = true
		}
		if cs.stats.Restarts > before {
			launched++
		}
	}
	return launched, nil
}

// EstWait returns the estimated wait for a file (exposed via
// SIMFS_Status).
func (v *Virtualizer) EstWait(ctxName, filename string) (time.Duration, error) {
	cs, err := v.lockedShard(ctxName)
	if err != nil {
		return 0, err
	}
	defer cs.mu.Unlock()
	step, err := cs.ctx.Key(filename)
	if err != nil {
		return 0, err
	}
	if cs.resident(step) {
		return 0, nil
	}
	return v.estWaitLocked(cs, step, v.clock.Now()), nil
}

// estWaitLocked estimates availability time of a step from its producing
// simulation's progress. Caller holds the shard lock.
func (v *Virtualizer) estWaitLocked(cs *shard, step int, now time.Duration) time.Duration {
	simID, promised := cs.promised[step]
	if !promised {
		return 0
	}
	sim, ok := cs.sims[simID]
	if !ok {
		// Pending (smax or pipeline): assume a full restart plus the
		// production run from its restart step.
		alpha := time.Duration(cs.alphaEMA.Value(float64(cs.ctx.Alpha)))
		return alpha + time.Duration(cs.ctx.Grid.MissCost(step))*cs.ctx.Tau
	}
	tau := cs.ctx.TauAt(sim.parallelism)
	if sim.started {
		eta := sim.startedAt + time.Duration(step-sim.first+1)*tau
		if eta > now {
			return eta - now
		}
		return 0
	}
	alpha := time.Duration(cs.alphaEMA.Value(float64(cs.ctx.Alpha)))
	eta := sim.launchedAt + alpha + time.Duration(step-sim.first+1)*tau
	if eta > now {
		return eta - now
	}
	return 0
}

// runAgent feeds one access into the client's prefetch agent and applies
// its decision. It returns the steps orphaned by a prefetch reset, for
// the caller to publish as failed after unlocking, whether the reset
// freed scheduler capacity (the caller must then drain, also after
// unlocking), and whether a launch queued node-blocked demand work (a
// pipeline context's upstream inputs — the caller's preemption-probe
// cue). Caller holds the shard lock.
func (v *Virtualizer) runAgent(cs *shard, client string, step int, now, procTime time.Duration) ([]int, bool, bool) {
	if cs.ctx.NoPrefetch {
		return nil, false, false
	}
	ag, ok := cs.agents[client]
	if !ok {
		ag = prefetch.NewAgent(cs.ctx.Grid, &estimator{cs: cs}, cs.ctx.SMax, cs.ctx.RampUp, cs.ctx.AlphaSmoothing)
		cs.agents[client] = ag
	}
	cover := func(dir, k int) int { return v.coveredUntil(cs, step, dir, k) }
	d := ag.OnAccess(step, now, procTime, cover)
	var orphaned []int
	freed := false
	queuedDemand := false
	if d.Reset {
		orphaned, freed = v.killPrefetchedFor(cs, client)
	}
	for _, r := range d.Launches {
		if v.launch(cs, r.First, r.Last, d.Parallelism, sched.Agent, client) {
			queuedDemand = true
		}
	}
	// The agent's follow-up launches may have re-promised some orphaned
	// steps; those are in flight again, not failed.
	kept := orphaned[:0]
	for _, s := range orphaned {
		if cs.resident(s) {
			continue
		}
		if _, p := cs.promised[s]; p {
			continue
		}
		kept = append(kept, s)
	}
	return kept, freed, queuedDemand
}

// coveredUntil walks the trajectory from `from` along dir with stride k
// and returns the furthest step that is resident or promised contiguously.
// Caller holds the shard lock.
func (v *Virtualizer) coveredUntil(cs *shard, from, dir, k int) int {
	if k < 1 {
		k = 1
	}
	j := from
	for {
		next := j + dir*k
		if !cs.ctx.Grid.ValidOutput(next) {
			return j
		}
		if !cs.resident(next) {
			if _, promised := cs.promised[next]; !promised {
				return j
			}
		}
		j = next
	}
}

// launch builds a launch request covering output steps [first, last],
// realigned to restart-step boundaries, and hands it to the scheduler;
// when the scheduler admits it the simulation starts immediately, when it
// queues it the steps are marked pending. client names the requesting
// client for prefetch classes, "" for demand misses. It reports whether
// demand work was queued (the caller's cue to probe for preemption once
// the shard lock is released). Caller holds the shard lock.
func (v *Virtualizer) launch(cs *shard, first, last, parallelism int, class sched.Class, client string) (queuedDemand bool) {
	first, last, ok := alignLaunchRange(cs, first, last)
	if !ok {
		return false
	}
	if class != sched.Demand && v.quarantineErr(cs, first, last) != nil {
		// A prefetch of a quarantined interval would only feed the
		// breaker; demand work is gated at Open with a structured error.
		cs.stats.DroppedPrefetch++
		return false
	}

	// Skip the launch when every step in the range is already resident or
	// promised. Partially covered ranges still launch in full: the
	// re-simulation must boot from the restart step and recompute the
	// covered steps anyway, so trimming would only distort the timing.
	if !v.uncovered(cs, first, last) {
		return false
	}
	if parallelism <= 0 {
		parallelism = cs.ctx.DefaultParallelism
	}
	if max := v.sched.MaxJobNodes(); max > 0 && parallelism > max {
		parallelism = max
	}

	req := sched.Request{
		Ctx: cs.ctx.Name, First: first, Last: last,
		Parallelism: parallelism, Class: class, Client: client,
	}
	switch v.sched.Submit(req) {
	case sched.Admitted:
		// An admitted pipeline job may still queue a node-blocked demand
		// launch for its upstream inputs: that cue bubbles up.
		return v.startSim(cs, first, last, parallelism, class, client)
	case sched.Queued:
		for s := first; s <= last; s++ {
			if !cs.resident(s) {
				if _, p := cs.promised[s]; !p {
					cs.promised[s] = pendingSimID
				}
			}
		}
		return class == sched.Demand
	case sched.Dropped:
		cs.stats.DroppedPrefetch++
	}
	return false
}

// alignLaunchRange clamps a requested output range to the timeline and
// realigns it to restart boundaries: simulations boot from a restart
// step and run to at least the next one. The result is the interval a
// launch actually covers — and the failure ledger's key. Caller holds
// the shard lock.
func alignLaunchRange(cs *shard, first, last int) (int, int, bool) {
	g := cs.ctx.Grid
	if first < 1 {
		first = 1
	}
	if last > g.NumOutputSteps() {
		last = g.NumOutputSteps()
	}
	if first > last {
		return 0, 0, false
	}
	iv := model.Interval{Start: g.RestartBefore(first), End: g.RestartAfter(last)}
	if iv.End > g.Timesteps {
		iv.End = g.Timesteps
	}
	return g.OutputsIn(iv)
}

// uncovered reports whether any step in [first, last] is neither resident
// nor promised. Caller holds the shard lock.
func (v *Virtualizer) uncovered(cs *shard, first, last int) bool {
	for s := first; s <= last; s++ {
		if cs.resident(s) {
			continue
		}
		if _, p := cs.promised[s]; !p {
			return true
		}
	}
	return false
}

// prefetchForOf derives the simState.prefetchFor tag from a request's
// class: demand work carries no client, prefetch work the requester.
func prefetchForOf(class sched.Class, client string) string {
	if class == sched.Demand {
		return ""
	}
	return client
}

// pendingSimID marks steps promised by a not-yet-launched simulation.
const pendingSimID = int64(-1)
