// Package core implements the Data Virtualizer (DV) of SimFS (paper
// Sec. III): the daemon-side state machine that exposes a virtualized view
// of simulation output. It tracks which output steps are on disk, restarts
// simulations to produce missing ones, maintains per-context storage areas
// with replacement policies and reference counting, drives the prefetch
// agents, and virtualizes simulation pipelines.
//
// The Virtualizer is time-source agnostic: it reads time through an
// injected Clock and starts/kills simulations through an injected
// Launcher, so the same state machine runs under the TCP daemon in wall
// time and under the discrete-event engine in virtual time.
//
// # Concurrency
//
// The Virtualizer is sharded per context: every registered context owns a
// shard with its own lock, cache, storage area, prefetch agents and
// simulation table, so analyses of different contexts never serialize on
// a shared mutex. Cross-shard work (pipeline virtualization, Sec. III-E)
// locks shards in downstream→upstream order; since a context's upstream
// must be registered before it, the upstream graph is acyclic and the
// ordering is deadlock-free. The small simMu directory that routes
// launcher events to shards is never held while acquiring a shard lock.
// File-ready and file-failed notifications are published to the notify
// hub after all shard locks are released.
package core

import (
	"fmt"
	"maps"
	"math/rand"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"simfs/internal/cache"
	"simfs/internal/des"
	"simfs/internal/metrics"
	"simfs/internal/model"
	"simfs/internal/notify"
	"simfs/internal/prefetch"
	"simfs/internal/sched"
	"simfs/internal/simulator"
	"simfs/internal/vfs"
)

// Launcher starts and kills re-simulations. *simulator.DESLauncher and
// *simulator.RealTimeLauncher satisfy it.
type Launcher interface {
	// Launch starts a re-simulation of ctx producing output steps
	// [first, last] with the given parallelism; it returns a simulation
	// id. Progress arrives through the Virtualizer's Events methods.
	Launch(ctx *model.Context, first, last, parallelism int) int64
	// Kill aborts a running or queued simulation.
	Kill(simID int64)
}

// Status reports the state of a requested file to a client, mirroring the
// SIMFS_Status object of the paper's API (error state and estimated
// waiting time).
type Status struct {
	// Ready is true when the file is on disk.
	Ready bool
	// Err carries the error state (e.g. "restart failed").
	Err string
	// EstWait estimates how long until the file becomes available.
	EstWait time.Duration
	// Attempts and RetryAfter detail a failure from a quarantined
	// interval: consecutive launch failures and the time until the
	// circuit breaker half-opens (zero outside quarantine).
	Attempts   int
	RetryAfter time.Duration
}

// OpenResult is returned by Open: whether the file is immediately
// available and, if not, the estimated wait.
type OpenResult struct {
	Available bool
	EstWait   time.Duration
}

// CtxStats counts per-context events; the experiment harness reads them.
type CtxStats struct {
	Opens            int64
	Hits             int64
	Misses           int64
	Restarts         int64 // simulations launched (demand + prefetch)
	DemandRestarts   int64
	PrefetchLaunches int64
	DroppedPrefetch  int64 // prefetches skipped because smax was reached
	StepsProduced    int64
	Evictions        int64
	Kills            int64
	Failures         int64
	PollutionResets  int64
}

type waiter struct {
	client string
	cb     func(Status)
}

type simState struct {
	id          int64
	ctxName     string
	first, last int
	parallelism int
	launchedAt  time.Duration
	startedAt   time.Duration
	started     bool
	produced    int // steps produced so far
	// prefetchFor is the client whose agent prefetched this simulation
	// ("" for demand re-simulations).
	prefetchFor string
	// class is the scheduling class the simulation was admitted under;
	// preemption only ever targets sched.Agent work. client is the
	// submitting client as the scheduler saw it — unlike prefetchFor it
	// survives for demand work too, so a requeue (pipeline node-budget
	// bounce, preemption) keeps charging the right per-client quota.
	class  sched.Class
	client string
	// preempted marks a simulation killed by the preemption path: its
	// SimEnded requeues the interval instead of failing its promises.
	// killing marks a cancellation kill already in flight (agent or
	// pollution reset, client disconnect) whose SimEnded has not landed
	// yet — such a sim must not be picked as a preemption victim, or
	// the requeue would resurrect the very work the reset dismantled.
	preempted bool
	killing   bool
	// pipeline wait state: number of upstream files still missing before
	// the simulation can actually be submitted.
	pendingUpstream int
	upstreamFiles   []string // names of upstream files pinned by this sim
	launched        bool     // handed to the Launcher (vs pipeline-pending)
}

// shard is the per-context slice of the Virtualizer: one context's whole
// state behind one lock. All fields below mu are guarded by it.
type shard struct {
	mu metrics.ContendedMutex

	ctx    *model.Context
	driver simulator.Driver
	cache  *cache.Cache
	fs     vfs.FS // optional mirror of the storage area

	// draining refuses new opens and prefetches (control-plane drain /
	// deregistration); running work completes and releases still land.
	draining bool

	// promised maps a step to the simulation that will produce it.
	// Pipeline- or smax-pending simulations are registered here too, so
	// coverage queries see them.
	promised map[int]int64
	waiters  map[int][]waiter
	refs     map[int]int
	agents   map[string]*prefetch.Agent

	// prefetched tracks steps produced by prefetching per client, for the
	// cache-pollution signal.
	prefetched   map[int]string
	everProduced map[int]bool
	// lastReady records, per client, when its most recent file became
	// available — the baseline for the wait-excluded τcli measurement.
	lastReady map[string]time.Duration
	// sims holds this shard's live simulations: launched ones under their
	// launcher id and pipeline-pending ones under negative placeholder ids.
	sims      map[int64]*simState
	alphaEMA  *metrics.EMA
	stats     CtxStats
	checksums map[string]uint64
	// failures is the per-interval failure ledger (keyed by the launch
	// interval) driving retry backoff and quarantine; empty unless a
	// RetryPolicy is installed. retries counts ledger re-submissions,
	// quarantined counts circuit-breaker openings — kept out of CtxStats
	// so the experiment tables (rendered with %+v) stay byte-identical
	// to the pre-ledger goldens.
	failures    map[[2]int]*failureRec
	retries     int64
	quarantined int64
}

// Virtualizer is the DV state machine. All exported methods are safe for
// concurrent use.
//
// Lock ordering (outermost first): shard locks in downstream→upstream
// pipeline order, then ctxMu (reads), then simMu. ctxMu and simMu are
// never held while acquiring a shard lock.
type Virtualizer struct {
	clock    des.Clock
	launcher Launcher
	hub      *notify.Hub
	sched    *sched.Scheduler

	ctxMu    sync.RWMutex
	contexts map[string]*shard

	// simMu guards simDir, the launcher-id → shard routing table for
	// simulator event callbacks. It is held across Launcher.Launch so an
	// event arriving concurrently with the launch finds the route.
	simMu  sync.Mutex
	simDir map[int64]*shard

	// placeholderSeq generates ids (< pendingSimID) for pipeline-pending
	// simulations not yet handed to the Launcher.
	placeholderSeq atomic.Int64

	// retryMu guards the failure-ledger policy and its jitter rng
	// (innermost: taken under shard locks, never the reverse).
	retryMu  sync.Mutex
	retry    RetryPolicy
	retryRng *rand.Rand
	// after arms a delayed callback (retry backoff). The default uses
	// wall-clock time.AfterFunc; tests inject their own timer.
	after func(time.Duration, func())
}

// New returns a Virtualizer reading time from clock and running
// simulations through launcher, scheduling re-simulations with the
// default (paper-exact) policy: FIFO demand queueing at smax, prefetch
// dropped at capacity, no coalescing, unlimited nodes.
func New(clock des.Clock, launcher Launcher) *Virtualizer {
	return NewScheduled(clock, launcher, sched.Config{})
}

// NewScheduled returns a Virtualizer whose re-simulation launches are
// coordinated by a scheduler with the given policy (coalescing, priority
// classes, node-capacity admission — see internal/sched).
func NewScheduled(clock des.Clock, launcher Launcher, cfg sched.Config) *Virtualizer {
	v := &Virtualizer{
		clock:    clock,
		launcher: launcher,
		hub:      notify.NewHub(),
		sched:    sched.New(clock, cfg),
		contexts: map[string]*shard{},
		simDir:   map[int64]*shard{},
		retryRng: rand.New(rand.NewSource(0)),
	}
	v.after = func(d time.Duration, f func()) { time.AfterFunc(d, f) } //simfs:allow wallclock the default timer seam; DES tests replace v.after with virtual time
	v.placeholderSeq.Store(pendingSimID)
	return v
}

// Hub returns the notification hub the Virtualizer publishes file-ready
// and file-failed events to. Subscribe before checking FileState to avoid
// lost wakeups.
func (v *Virtualizer) Hub() *notify.Hub { return v.hub }

// AddContext registers a simulation context with a replacement policy
// named by policyName (Sec. III-D) and an optional storage-area mirror
// (nil for virtual-time experiments).
func (v *Virtualizer) AddContext(ctx *model.Context, policyName string, fs vfs.FS) error {
	ctx.ApplyDefaults()
	if err := ctx.Validate(); err != nil {
		return err
	}
	capacity := ctx.CacheCapacitySteps()
	if capacity == 0 {
		capacity = ctx.Grid.NumOutputSteps()
	}
	pol, err := cache.NewPolicy(policyName, capacity)
	if err != nil {
		return err
	}
	v.ctxMu.Lock()
	defer v.ctxMu.Unlock()
	if _, dup := v.contexts[ctx.Name]; dup {
		return fmt.Errorf("core: %w: duplicate context %q", ErrInvalid, ctx.Name)
	}
	if ctx.Upstream != "" {
		if _, ok := v.contexts[ctx.Upstream]; !ok {
			return fmt.Errorf("core: %w: context %q names unknown upstream %q", ErrInvalid, ctx.Name, ctx.Upstream)
		}
	}
	v.sched.Register(ctx.Name, ctx.SMax)
	v.contexts[ctx.Name] = &shard{
		ctx:          ctx,
		driver:       simulator.NewSynthetic(ctx),
		cache:        cache.New(pol, ctx.MaxCacheBytes),
		fs:           fs,
		promised:     map[int]int64{},
		waiters:      map[int][]waiter{},
		refs:         map[int]int{},
		agents:       map[string]*prefetch.Agent{},
		prefetched:   map[int]string{},
		everProduced: map[int]bool{},
		lastReady:    map[string]time.Duration{},
		sims:         map[int64]*simState{},
		alphaEMA:     metrics.NewEMA(ctx.AlphaSmoothing),
		checksums:    map[string]uint64{},
		failures:     map[[2]int]*failureRec{},
	}
	return nil
}

// shardOf returns the shard of a context (unlocked).
func (v *Virtualizer) shardOf(name string) (*shard, bool) {
	v.ctxMu.RLock()
	cs, ok := v.contexts[name]
	v.ctxMu.RUnlock()
	return cs, ok
}

// lockedShard returns the shard of a context with its lock held.
func (v *Virtualizer) lockedShard(name string) (*shard, error) {
	cs, ok := v.shardOf(name)
	if !ok {
		return nil, fmt.Errorf("core: %w %q", ErrUnknownContext, name)
	}
	cs.mu.Lock()
	return cs, nil
}

// simShard routes a launcher simulation id to its shard (nil if the
// simulation is unknown or already ended).
func (v *Virtualizer) simShard(simID int64) *shard {
	v.simMu.Lock()
	cs := v.simDir[simID]
	v.simMu.Unlock()
	return cs
}

// dropSimRoute removes an ended simulation from the event routing table.
func (v *Virtualizer) dropSimRoute(simID int64) {
	v.simMu.Lock()
	delete(v.simDir, simID)
	v.simMu.Unlock()
}

// Context returns the registered context by name.
func (v *Virtualizer) Context(name string) (*model.Context, bool) {
	cs, ok := v.shardOf(name)
	if !ok {
		return nil, false
	}
	return cs.ctx, true
}

// ContextNames lists registered contexts in sorted order.
func (v *Virtualizer) ContextNames() []string {
	v.ctxMu.RLock()
	defer v.ctxMu.RUnlock()
	return slices.Sorted(maps.Keys(v.contexts))
}

// Stats returns a copy of the context's counters.
func (v *Virtualizer) Stats(ctxName string) (CtxStats, error) {
	cs, err := v.lockedShard(ctxName)
	if err != nil {
		return CtxStats{}, err
	}
	defer cs.mu.Unlock()
	return cs.stats, nil
}

// RetryStats returns the context's failure-ledger counters: launches
// re-submitted after a failure and circuit-breaker openings. Both stay
// zero unless a RetryPolicy is installed.
func (v *Virtualizer) RetryStats(ctxName string) (retries, quarantined int64, err error) {
	cs, err := v.lockedShard(ctxName)
	if err != nil {
		return 0, 0, err
	}
	defer cs.mu.Unlock()
	return cs.retries, cs.quarantined, nil
}

// LockStats returns the shard-lock counters of a context: how often its
// lock was taken, how often that acquisition contended, and the
// cumulative contended wait. A heavily contended shard indicates a
// workload serializing on one context.
func (v *Virtualizer) LockStats(ctxName string) (metrics.LockStats, error) {
	cs, ok := v.shardOf(ctxName)
	if !ok {
		return metrics.LockStats{}, fmt.Errorf("core: %w %q", ErrUnknownContext, ctxName)
	}
	return cs.mu.Stats(), nil
}

// TotalLockStats sums the shard-lock counters over all contexts.
func (v *Virtualizer) TotalLockStats() metrics.LockStats {
	v.ctxMu.RLock()
	shards := make([]*shard, 0, len(v.contexts))
	for _, cs := range v.contexts { //simfs:allow maporder commutative counter sum; the visit order never reaches the result
		shards = append(shards, cs)
	}
	v.ctxMu.RUnlock()
	var total metrics.LockStats
	for _, cs := range shards {
		total.Add(cs.mu.Stats())
	}
	return total
}

// SchedStats returns the re-simulation scheduler counters: queue depth,
// coalescing effectiveness, dropped/canceled prefetches and per-priority
// queueing delays. The scheduler is shared by all contexts.
func (v *Virtualizer) SchedStats() metrics.SchedStats {
	return v.sched.Stats()
}

// Scheduler exposes the launch scheduler (tests and diagnostics).
func (v *Virtualizer) Scheduler() *sched.Scheduler { return v.sched }

// ClientDisconnected tells the DV that a client is gone: its queued
// prefetch jobs are de-queued and its running prefetch simulations are
// killed in every context, unless other clients wait for (or reference)
// the output. Front-ends call it after releasing the client's file
// references.
func (v *Virtualizer) ClientDisconnected(client string) {
	v.ctxMu.RLock()
	// Sorted shard order: the kills and notifications below are visible
	// to the DES, so the per-context teardown order must be stable.
	shards := make([]*shard, 0, len(v.contexts))
	for _, name := range slices.Sorted(maps.Keys(v.contexts)) {
		shards = append(shards, v.contexts[name])
	}
	v.ctxMu.RUnlock()
	// The departed client's fairness accounting dies with it: its quota
	// debt must not handicap an unrelated client reusing the name later.
	v.sched.DropClientQuota(client)
	anyFreed := false
	for _, cs := range shards {
		cs.mu.Lock()
		orphaned, freed := v.killPrefetchedFor(cs, client)
		anyFreed = anyFreed || freed
		// Sims of the departed client that survive (live waiters keep
		// them) lose their billing identity: a later requeue (pipeline
		// bounce, preemption) must not re-plant the quota entry
		// DropClientQuota just removed. prefetchFor stays — the kill
		// bookkeeping still needs to recognize the owner.
		for _, sim := range cs.sims { //simfs:allow maporder independent per-sim field clear; no effect depends on visit order
			if sim.client == client {
				sim.client = ""
			}
		}
		// Drop the departed client's per-shard learning state: its
		// prefetch agent, its τcli baseline, and its pollution-tracking
		// entries would otherwise accumulate per unique client name for
		// the daemon's lifetime.
		delete(cs.agents, client)
		delete(cs.lastReady, client)
		for s, c := range cs.prefetched {
			if c == client {
				delete(cs.prefetched, s)
			}
		}
		name := cs.ctx.Name
		cs.mu.Unlock()
		v.publishFailed(name, orphaned, "re-simulation killed")
	}
	if anyFreed {
		// De-queued jobs and dismantled placeholders freed capacity; one
		// drain covers every shard (launched kills drain through their
		// SimEnded events instead).
		v.drainScheduler()
	}
}

// CacheStats returns the cache engine counters of a context.
func (v *Virtualizer) CacheStats(ctxName string) (cache.Stats, error) {
	cs, err := v.lockedShard(ctxName)
	if err != nil {
		return cache.Stats{}, err
	}
	defer cs.mu.Unlock()
	return cs.cache.Stats(), nil
}

// StorageArea returns the context's storage-area file system (nil when
// running without one, as the virtual-time experiments do).
func (v *Virtualizer) StorageArea(ctxName string) (vfs.FS, error) {
	cs, ok := v.shardOf(ctxName)
	if !ok {
		return nil, fmt.Errorf("core: %w %q", ErrUnknownContext, ctxName)
	}
	return cs.fs, nil
}

// FileState reports whether a file is resident on disk and/or promised by
// a live (or queued) re-simulation. Combined with a prior hub
// subscription it gives a race-free wait: subscribe, then check — a file
// neither resident nor promised will never produce an event.
func (v *Virtualizer) FileState(ctxName, filename string) (resident, promised bool, err error) {
	cs, err := v.lockedShard(ctxName)
	if err != nil {
		return false, false, err
	}
	defer cs.mu.Unlock()
	step, err := cs.ctx.Key(filename)
	if err != nil {
		return false, false, err
	}
	_, p := cs.promised[step]
	return cs.resident(step), p, nil
}

// NoteClientReady records that a client observed filename become
// available after waiting for it. The hub carries no client identity, so
// front-ends that deliver ready notifications stamp the baseline of the
// wait-excluded processing-time measurement (τcli) explicitly — the
// in-process WaitFile path stamps it in StepProduced instead.
func (v *Virtualizer) NoteClientReady(client, ctxName, filename string) {
	cs, err := v.lockedShard(ctxName)
	if err != nil {
		return
	}
	defer cs.mu.Unlock()
	if _, err := cs.ctx.Key(filename); err != nil {
		return
	}
	cs.lastReady[client] = v.clock.Now()
}

// FileTopic returns the notify-hub topic of a context's file.
func (v *Virtualizer) FileTopic(ctxName, filename string) (notify.Topic, error) {
	cs, ok := v.shardOf(ctxName)
	if !ok {
		return notify.Topic{}, fmt.Errorf("core: %w %q", ErrUnknownContext, ctxName)
	}
	step, err := cs.ctx.Key(filename)
	if err != nil {
		return notify.Topic{}, err
	}
	if !cs.ctx.Grid.ValidOutput(step) {
		return notify.Topic{}, fmt.Errorf("core: %w: %q is outside the simulated timeline", ErrInvalid, filename)
	}
	return notify.Topic{Context: ctxName, Step: step}, nil
}

// Preload marks output steps as already on disk (e.g. produced by the
// initial simulation), inserting them into the cache without counting
// re-simulation work.
func (v *Virtualizer) Preload(ctxName string, steps []int) error {
	cs, err := v.lockedShard(ctxName)
	if err != nil {
		return err
	}
	for _, s := range steps {
		if !cs.ctx.Grid.ValidOutput(s) {
			cs.mu.Unlock()
			return fmt.Errorf("core: preload step %d out of range", s)
		}
		v.insertStep(cs, s)
	}
	cs.mu.Unlock()
	v.publishReady(ctxName, steps)
	return nil
}

// RescanStorageArea synchronizes the cache with the files present in the
// context's storage area (daemon restart recovery).
func (v *Virtualizer) RescanStorageArea(ctxName string) (int, error) {
	cs, err := v.lockedShard(ctxName)
	if err != nil {
		return 0, err
	}
	if cs.fs == nil {
		cs.mu.Unlock()
		return 0, fmt.Errorf("core: context %q has no storage area", ctxName)
	}
	var added []int
	for _, name := range cs.fs.List() {
		step, err := cs.ctx.Key(name)
		if err != nil {
			continue // restart files, foreign files
		}
		if !cs.cache.Contains(name) {
			v.insertStep(cs, step)
			added = append(added, step)
		}
	}
	cs.mu.Unlock()
	v.publishReady(ctxName, added)
	return len(added), nil
}

// publishReady announces file availability on the hub. Callers must not
// hold shard locks.
func (v *Virtualizer) publishReady(ctxName string, steps []int) {
	for _, s := range steps {
		v.hub.Publish(notify.Event{Topic: notify.Topic{Context: ctxName, Step: s}, Kind: notify.FileReady})
	}
}

// publishFailed announces production failures on the hub. Callers must
// not hold shard locks.
func (v *Virtualizer) publishFailed(ctxName string, steps []int, msg string) {
	v.publishFailedDetail(ctxName, steps, msg, 0, 0)
}

// publishFailedDetail is publishFailed carrying quarantine details
// (attempts and time until the breaker half-opens) on each event.
func (v *Virtualizer) publishFailedDetail(ctxName string, steps []int, msg string, attempts int, retryAfter time.Duration) {
	for _, s := range steps {
		v.hub.Publish(notify.Event{
			Topic: notify.Topic{Context: ctxName, Step: s}, Kind: notify.FileFailed,
			Err: msg, Attempts: attempts, RetryAfter: int64(retryAfter),
		})
	}
}

// insertStep makes a step resident, applying eviction and pinning for
// current references. Caller holds the shard lock.
func (v *Virtualizer) insertStep(cs *shard, step int) {
	name := cs.ctx.Filename(step)
	cost := cs.ctx.Grid.MissCost(step)
	// Overlapping re-simulations may produce the same step twice; the
	// references were pinned at the first production, so a re-insert must
	// only refresh recency.
	wasResident := cs.cache.Contains(name)
	evicted, err := cs.cache.Insert(name, cs.ctx.OutputBytes, cost)
	if err != nil {
		// Only possible for a file larger than the whole cache;
		// experiments never configure that, but do not lose the file.
		return
	}
	for _, victim := range evicted {
		cs.stats.Evictions++
		if cs.fs != nil {
			_ = cs.fs.Remove(victim) // best effort; absence is acceptable
		}
	}
	if !wasResident {
		for i := 0; i < cs.refs[step]; i++ {
			_ = cs.cache.Pin(name)
		}
	}
}

// resident reports whether a step's file is on disk. Caller holds the
// shard lock.
func (cs *shard) resident(step int) bool {
	return cs.cache.Contains(cs.ctx.Filename(step))
}
