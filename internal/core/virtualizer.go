// Package core implements the Data Virtualizer (DV) of SimFS (paper
// Sec. III): the daemon-side state machine that exposes a virtualized view
// of simulation output. It tracks which output steps are on disk, restarts
// simulations to produce missing ones, maintains per-context storage areas
// with replacement policies and reference counting, drives the prefetch
// agents, and virtualizes simulation pipelines.
//
// The Virtualizer is time-source agnostic: it reads time through an
// injected Clock and starts/kills simulations through an injected
// Launcher, so the same state machine runs under the TCP daemon in wall
// time and under the discrete-event engine in virtual time.
package core

import (
	"fmt"
	"sync"
	"time"

	"simfs/internal/cache"
	"simfs/internal/des"
	"simfs/internal/metrics"
	"simfs/internal/model"
	"simfs/internal/prefetch"
	"simfs/internal/simulator"
	"simfs/internal/vfs"
)

// Launcher starts and kills re-simulations. *simulator.DESLauncher and
// *simulator.RealTimeLauncher satisfy it.
type Launcher interface {
	// Launch starts a re-simulation of ctx producing output steps
	// [first, last] with the given parallelism; it returns a simulation
	// id. Progress arrives through the Virtualizer's Events methods.
	Launch(ctx *model.Context, first, last, parallelism int) int64
	// Kill aborts a running or queued simulation.
	Kill(simID int64)
}

// Status reports the state of a requested file to a client, mirroring the
// SIMFS_Status object of the paper's API (error state and estimated
// waiting time).
type Status struct {
	// Ready is true when the file is on disk.
	Ready bool
	// Err carries the error state (e.g. "restart failed").
	Err string
	// EstWait estimates how long until the file becomes available.
	EstWait time.Duration
}

// OpenResult is returned by Open: whether the file is immediately
// available and, if not, the estimated wait.
type OpenResult struct {
	Available bool
	EstWait   time.Duration
}

// CtxStats counts per-context events; the experiment harness reads them.
type CtxStats struct {
	Opens            int64
	Hits             int64
	Misses           int64
	Restarts         int64 // simulations launched (demand + prefetch)
	DemandRestarts   int64
	PrefetchLaunches int64
	DroppedPrefetch  int64 // prefetches skipped because smax was reached
	StepsProduced    int64
	Evictions        int64
	Kills            int64
	Failures         int64
	PollutionResets  int64
}

type waiter struct {
	client string
	cb     func(Status)
}

type simState struct {
	id          int64
	ctxName     string
	first, last int
	parallelism int
	launchedAt  time.Duration
	startedAt   time.Duration
	started     bool
	produced    int // steps produced so far
	// prefetchFor is the client whose agent prefetched this simulation
	// ("" for demand re-simulations).
	prefetchFor string
	// pipeline wait state: number of upstream files still missing before
	// the simulation can actually be submitted.
	pendingUpstream int
	upstreamFiles   []string // names of upstream files pinned by this sim
	launched        bool     // handed to the Launcher (vs pipeline-pending)
}

type pendingLaunch struct {
	first, last, parallelism int
	prefetchFor              string
}

type ctxState struct {
	ctx    *model.Context
	driver simulator.Driver
	cache  *cache.Cache
	fs     vfs.FS // optional mirror of the storage area

	// promised maps a step to the simulation that will produce it.
	// Pipeline- or smax-pending simulations are registered here too, so
	// coverage queries see them.
	promised map[int]int64
	waiters  map[int][]waiter
	refs     map[int]int
	agents   map[string]*prefetch.Agent

	// prefetched tracks steps produced by prefetching per client, for the
	// cache-pollution signal.
	prefetched   map[int]string
	everProduced map[int]bool
	// lastReady records, per client, when its most recent file became
	// available — the baseline for the wait-excluded τcli measurement.
	lastReady   map[string]time.Duration
	pending     []pendingLaunch
	runningSims map[int64]bool
	alphaEMA    *metrics.EMA
	stats       CtxStats
	checksums   map[string]uint64
}

// Virtualizer is the DV state machine. All exported methods are safe for
// concurrent use.
type Virtualizer struct {
	mu       sync.Mutex
	clock    des.Clock
	launcher Launcher
	contexts map[string]*ctxState
	sims     map[int64]*simState
}

// New returns a Virtualizer reading time from clock and running
// simulations through launcher.
func New(clock des.Clock, launcher Launcher) *Virtualizer {
	return &Virtualizer{
		clock:    clock,
		launcher: launcher,
		contexts: map[string]*ctxState{},
		sims:     map[int64]*simState{},
	}
}

// AddContext registers a simulation context with a replacement policy
// named by policyName (Sec. III-D) and an optional storage-area mirror
// (nil for virtual-time experiments).
func (v *Virtualizer) AddContext(ctx *model.Context, policyName string, fs vfs.FS) error {
	ctx.ApplyDefaults()
	if err := ctx.Validate(); err != nil {
		return err
	}
	capacity := ctx.CacheCapacitySteps()
	if capacity == 0 {
		capacity = ctx.Grid.NumOutputSteps()
	}
	pol, err := cache.NewPolicy(policyName, capacity)
	if err != nil {
		return err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, dup := v.contexts[ctx.Name]; dup {
		return fmt.Errorf("core: duplicate context %q", ctx.Name)
	}
	if ctx.Upstream != "" {
		if _, ok := v.contexts[ctx.Upstream]; !ok {
			return fmt.Errorf("core: context %q names unknown upstream %q", ctx.Name, ctx.Upstream)
		}
	}
	v.contexts[ctx.Name] = &ctxState{
		ctx:          ctx,
		driver:       simulator.NewSynthetic(ctx),
		cache:        cache.New(pol, ctx.MaxCacheBytes),
		fs:           fs,
		promised:     map[int]int64{},
		waiters:      map[int][]waiter{},
		refs:         map[int]int{},
		agents:       map[string]*prefetch.Agent{},
		prefetched:   map[int]string{},
		everProduced: map[int]bool{},
		lastReady:    map[string]time.Duration{},
		runningSims:  map[int64]bool{},
		alphaEMA:     metrics.NewEMA(ctx.AlphaSmoothing),
		checksums:    map[string]uint64{},
	}
	return nil
}

// Context returns the registered context by name.
func (v *Virtualizer) Context(name string) (*model.Context, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	cs, ok := v.contexts[name]
	if !ok {
		return nil, false
	}
	return cs.ctx, true
}

// ContextNames lists registered contexts.
func (v *Virtualizer) ContextNames() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	names := make([]string, 0, len(v.contexts))
	for n := range v.contexts {
		names = append(names, n)
	}
	return names
}

// Stats returns a copy of the context's counters.
func (v *Virtualizer) Stats(ctxName string) (CtxStats, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	cs, ok := v.contexts[ctxName]
	if !ok {
		return CtxStats{}, fmt.Errorf("core: unknown context %q", ctxName)
	}
	return cs.stats, nil
}

// CacheStats returns the cache engine counters of a context.
func (v *Virtualizer) CacheStats(ctxName string) (cache.Stats, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	cs, ok := v.contexts[ctxName]
	if !ok {
		return cache.Stats{}, fmt.Errorf("core: unknown context %q", ctxName)
	}
	return cs.cache.Stats(), nil
}

// StorageArea returns the context's storage-area file system (nil when
// running without one, as the virtual-time experiments do).
func (v *Virtualizer) StorageArea(ctxName string) (vfs.FS, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	cs, ok := v.contexts[ctxName]
	if !ok {
		return nil, fmt.Errorf("core: unknown context %q", ctxName)
	}
	return cs.fs, nil
}

// Preload marks output steps as already on disk (e.g. produced by the
// initial simulation), inserting them into the cache without counting
// re-simulation work.
func (v *Virtualizer) Preload(ctxName string, steps []int) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	cs, ok := v.contexts[ctxName]
	if !ok {
		return fmt.Errorf("core: unknown context %q", ctxName)
	}
	for _, s := range steps {
		if !cs.ctx.Grid.ValidOutput(s) {
			return fmt.Errorf("core: preload step %d out of range", s)
		}
		v.insertStep(cs, s)
	}
	return nil
}

// RescanStorageArea synchronizes the cache with the files present in the
// context's storage area (daemon restart recovery).
func (v *Virtualizer) RescanStorageArea(ctxName string) (int, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	cs, ok := v.contexts[ctxName]
	if !ok {
		return 0, fmt.Errorf("core: unknown context %q", ctxName)
	}
	if cs.fs == nil {
		return 0, fmt.Errorf("core: context %q has no storage area", ctxName)
	}
	n := 0
	for _, name := range cs.fs.List() {
		step, err := cs.ctx.Key(name)
		if err != nil {
			continue // restart files, foreign files
		}
		if !cs.cache.Contains(name) {
			v.insertStep(cs, step)
			n++
		}
	}
	return n, nil
}

// insertStep makes a step resident, applying eviction and pinning for
// current references. Caller holds the lock.
func (v *Virtualizer) insertStep(cs *ctxState, step int) {
	name := cs.ctx.Filename(step)
	cost := cs.ctx.Grid.MissCost(step)
	// Overlapping re-simulations may produce the same step twice; the
	// references were pinned at the first production, so a re-insert must
	// only refresh recency.
	wasResident := cs.cache.Contains(name)
	evicted, err := cs.cache.Insert(name, cs.ctx.OutputBytes, cost)
	if err != nil {
		// Only possible for a file larger than the whole cache;
		// experiments never configure that, but do not lose the file.
		return
	}
	for _, victim := range evicted {
		cs.stats.Evictions++
		if cs.fs != nil {
			_ = cs.fs.Remove(victim) // best effort; absence is acceptable
		}
	}
	if !wasResident {
		for i := 0; i < cs.refs[step]; i++ {
			_ = cs.cache.Pin(name)
		}
	}
}

// resident reports whether a step's file is on disk. Caller holds the lock.
func (cs *ctxState) resident(step int) bool {
	return cs.cache.Contains(cs.ctx.Filename(step))
}
