package core

import (
	"errors"
	"testing"
)

// Drain refuses new opens and prefetches with ErrDraining; releases and
// running work still land, and Resume lifts the gate.
func TestDrainRefusesNewWork(t *testing.T) {
	ctx := testContext("c")
	h := newHarness(t, ctx)
	file := ctx.Filename(2)
	if _, err := h.v.Open("a1", "c", file); err != nil {
		t.Fatal(err)
	}
	if err := h.v.Drain("c"); err != nil {
		t.Fatal(err)
	}
	if d, _ := h.v.Draining("c"); !d {
		t.Fatal("Draining not reported")
	}
	if _, err := h.v.Open("a1", "c", ctx.Filename(9)); !errors.Is(err, ErrDraining) {
		t.Errorf("open while draining = %v, want ErrDraining", err)
	}
	if _, err := h.v.GuidedPrefetch("a1", "c", []string{ctx.Filename(9)}); !errors.Is(err, ErrDraining) {
		t.Errorf("prefetch while draining = %v, want ErrDraining", err)
	}
	// The pre-drain simulation still completes and the reference can be
	// released — a drained context empties out.
	h.eng.Run(0)
	if resident, _, err := h.v.FileState("c", file); err != nil || !resident {
		t.Fatalf("pre-drain work did not complete: resident=%v err=%v", resident, err)
	}
	if err := h.v.Release("a1", "c", file); err != nil {
		t.Errorf("release while draining: %v", err)
	}
	if err := h.v.Resume("c"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.v.Open("a1", "c", ctx.Filename(9)); err != nil {
		t.Errorf("open after resume: %v", err)
	}
	h.eng.Run(0)
	if err := h.v.Release("a1", "c", ctx.Filename(9)); err != nil {
		t.Fatal(err)
	}
	if err := h.v.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// RemoveContext needs a quiescent context: references, live simulations
// and downstream dependents each refuse with ErrBusy; once drained, the
// context disappears and its queued work is dismantled.
func TestRemoveContextLifecycle(t *testing.T) {
	ctx := testContext("c")
	h := newHarness(t, ctx)
	file := ctx.Filename(2)
	if _, err := h.v.Open("a1", "c", file); err != nil {
		t.Fatal(err)
	}
	// Referenced + simulating: busy.
	if err := h.v.RemoveContext("c"); !errors.Is(err, ErrBusy) {
		t.Fatalf("remove of a busy context = %v, want ErrBusy", err)
	}
	// The failed removal still put the context into draining.
	if d, _ := h.v.Draining("c"); !d {
		t.Error("failed removal should leave the context draining")
	}
	h.eng.Run(0) // simulation completes
	if err := h.v.RemoveContext("c"); !errors.Is(err, ErrBusy) {
		t.Fatalf("remove with a held reference = %v, want ErrBusy", err)
	}
	if err := h.v.Release("a1", "c", file); err != nil {
		t.Fatal(err)
	}
	if err := h.v.RemoveContext("c"); err != nil {
		t.Fatalf("remove of a quiescent context: %v", err)
	}
	if _, err := h.v.Open("a1", "c", file); !errors.Is(err, ErrUnknownContext) {
		t.Errorf("open after removal = %v, want ErrUnknownContext", err)
	}
	if names := h.v.ContextNames(); len(names) != 0 {
		t.Errorf("contexts after removal: %v", names)
	}
}

// A context serving as another's upstream cannot be removed.
func TestRemoveContextRefusedForUpstream(t *testing.T) {
	up := testContext("up")
	down := testContext("down")
	down.Upstream = "up"
	h := newHarness(t, up, down)
	if err := h.v.RemoveContext("up"); !errors.Is(err, ErrBusy) {
		t.Fatalf("remove of an upstream context = %v, want ErrBusy", err)
	}
	// The downstream context itself can go; then the upstream is free.
	if err := h.v.RemoveContext("down"); err != nil {
		t.Fatal(err)
	}
	if err := h.v.RemoveContext("up"); err != nil {
		t.Fatal(err)
	}
}

// SetCachePolicy swaps the scheme live without disturbing residency.
func TestSetCachePolicyPreservesResidency(t *testing.T) {
	ctx := testContext("c")
	h := newHarness(t, ctx)
	// Produce steps 1..4 (one restart interval).
	if _, err := h.v.Open("a1", "c", ctx.Filename(4)); err != nil {
		t.Fatal(err)
	}
	h.eng.Run(0)
	if name, _ := h.v.CachePolicyName("c"); name != "DCL" {
		t.Fatalf("boot policy = %q", name)
	}
	if err := h.v.SetCachePolicy("c", "ARC"); err != nil {
		t.Fatal(err)
	}
	if name, _ := h.v.CachePolicyName("c"); name != "ARC" {
		t.Fatalf("policy after swap = %q", name)
	}
	for s := 1; s <= 4; s++ {
		if resident, _, _ := h.v.FileState("c", ctx.Filename(s)); !resident {
			t.Errorf("step %d lost residency in the swap", s)
		}
	}
	// The pinned reference survives the swap and still blocks eviction
	// accounting (sanity via invariants).
	if err := h.v.CheckInvariants(); err != nil {
		t.Error(err)
	}
	if err := h.v.SetCachePolicy("c", "FIFO"); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := h.v.SetCachePolicy("nope", "LRU"); !errors.Is(err, ErrUnknownContext) {
		t.Errorf("unknown context = %v", err)
	}
	if err := h.v.Release("a1", "c", ctx.Filename(4)); err != nil {
		t.Fatal(err)
	}
}

// A drained context's queued prefetch is canceled at admission instead
// of launching — the drain contract: nothing new starts, the context
// empties under its current workload.
func TestDrainCancelsQueuedPrefetch(t *testing.T) {
	ctx := testContext("c")
	ctx.SMax = 1
	h := newHarness(t, ctx)
	cfg := h.v.SchedConfig()
	cfg.Priorities = true
	h.v.SetSchedConfig(cfg)
	if _, err := h.v.Open("a1", "c", ctx.Filename(1)); err != nil {
		t.Fatal(err)
	}
	// Queued behind the running demand sim (smax=1).
	if _, err := h.v.GuidedPrefetch("a1", "c", []string{ctx.Filename(17)}); err != nil {
		t.Fatal(err)
	}
	if _, promised, _ := h.v.FileState("c", ctx.Filename(17)); !promised {
		t.Fatal("prefetch was not queued")
	}
	if err := h.v.Drain("c"); err != nil {
		t.Fatal(err)
	}
	h.eng.Run(0)
	// The demand work completed; the queued prefetch did not launch.
	if resident, _, _ := h.v.FileState("c", ctx.Filename(1)); !resident {
		t.Error("pre-drain demand work did not complete")
	}
	resident, promised, _ := h.v.FileState("c", ctx.Filename(17))
	if resident {
		t.Error("queued prefetch launched on a draining context")
	}
	if promised {
		t.Error("canceled prefetch left a dangling promise")
	}
	if err := h.v.Release("a1", "c", ctx.Filename(1)); err != nil {
		t.Fatal(err)
	}
	if err := h.v.RemoveContext("c"); err != nil {
		t.Fatalf("drained context should now be removable: %v", err)
	}
	if err := h.v.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// SetSchedConfig flips the admission rules on the live Virtualizer: a
// prefetch dropped under the zero config queues once priorities are on.
func TestSetSchedConfigLive(t *testing.T) {
	ctx := testContext("c")
	ctx.SMax = 1
	h := newHarness(t, ctx)
	if _, err := h.v.Open("a1", "c", ctx.Filename(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := h.v.GuidedPrefetch("a1", "c", []string{ctx.Filename(17)}); err != nil {
		t.Fatal(err)
	}
	st, _ := h.v.Stats("c")
	if st.DroppedPrefetch != 1 {
		t.Fatalf("dropped = %d, want 1 under the zero config", st.DroppedPrefetch)
	}
	cfg := h.v.SchedConfig()
	cfg.Priorities = true
	h.v.SetSchedConfig(cfg)
	if got := h.v.SchedConfig(); !got.Priorities {
		t.Fatalf("config did not stick: %+v", got)
	}
	if _, err := h.v.GuidedPrefetch("a1", "c", []string{ctx.Filename(33)}); err != nil {
		t.Fatal(err)
	}
	st, _ = h.v.Stats("c")
	if st.DroppedPrefetch != 1 {
		t.Fatalf("dropped = %d after reconfigure, want still 1 (queued instead)", st.DroppedPrefetch)
	}
	h.eng.Run(0)
	if resident, _, _ := h.v.FileState("c", ctx.Filename(33)); !resident {
		t.Error("queued prefetch never produced its file after the slot freed")
	}
	if err := h.v.Release("a1", "c", ctx.Filename(1)); err != nil {
		t.Fatal(err)
	}
	if err := h.v.CheckInvariants(); err != nil {
		t.Error(err)
	}
}
