package core

import (
	"fmt"
	"math/rand"
	"time"

	"simfs/internal/sched"
)

// RetryPolicy configures the failure ledger: how failed re-simulations
// are retried with exponential backoff, and when an interval is
// quarantined by the circuit breaker. The zero value disables the
// ledger entirely — failures fail immediately, exactly the pre-ledger
// behavior (and what the determinism goldens pin).
type RetryPolicy struct {
	// MaxAttempts is the number of consecutive launch failures tolerated
	// per interval: failures 1..MaxAttempts are retried with backoff,
	// failure MaxAttempts+1 opens the quarantine. <= 0 disables retry.
	MaxAttempts int
	// BaseBackoff is the delay before the first retry; each further
	// retry doubles it up to MaxBackoff.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Jitter spreads each delay by ±Jitter fraction (0..1), so the
	// retries of intervals failed by one outage don't thundering-herd.
	Jitter float64
	// Cooldown is how long a quarantined interval refuses demand opens
	// before the breaker half-opens and admits one probe launch.
	Cooldown time.Duration
	// Seed roots the jitter rng; chaos harnesses pin it for replay.
	Seed int64
}

func (p RetryPolicy) enabled() bool { return p.MaxAttempts > 0 }

// withDefaults fills the unset knobs of an enabled policy.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if !p.enabled() {
		return p
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 50 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 5 * time.Second
	}
	if p.Cooldown <= 0 {
		p.Cooldown = 10 * time.Second
	}
	return p
}

// QuarantineError is the structured failure of an interval the circuit
// breaker holds open: demand opens fail fast with it instead of
// launching a simulation that will not produce, and released waiters
// carry its Attempts/RetryAfter so clients can back off intelligently.
//
//simfs:errcode failed
type QuarantineError struct {
	Ctx         string
	First, Last int
	Attempts    int
	RetryAfter  time.Duration
}

func (e *QuarantineError) Error() string {
	return fmt.Sprintf("core: interval [%d,%d] of %q quarantined after %d failed re-simulations (retry in %v)",
		e.First, e.Last, e.Ctx, e.Attempts, e.RetryAfter)
}

// failureRec is one interval's entry in the per-shard failure ledger.
type failureRec struct {
	attempts    int // consecutive failed launches
	quarantined bool
	until       time.Duration // clock time the quarantine half-opens
}

// SetRetryPolicy installs (or, with the zero value, removes) the
// failure-ledger policy. Safe to call on a live Virtualizer; it applies
// to the next failure.
func (v *Virtualizer) SetRetryPolicy(p RetryPolicy) {
	v.retryMu.Lock()
	defer v.retryMu.Unlock()
	v.retry = p.withDefaults()
	v.retryRng = rand.New(rand.NewSource(p.Seed))
}

// RetryPolicyConfig returns the policy in effect.
func (v *Virtualizer) RetryPolicyConfig() RetryPolicy {
	v.retryMu.Lock()
	defer v.retryMu.Unlock()
	return v.retry
}

// backoffDelay computes the jittered exponential delay before retry
// number `attempt` (1-based).
func (v *Virtualizer) backoffDelay(p RetryPolicy, attempt int) time.Duration {
	d := p.BaseBackoff
	for i := 1; i < attempt && d < p.MaxBackoff; i++ {
		d *= 2
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	if p.Jitter > 0 {
		v.retryMu.Lock()
		f := 1 + p.Jitter*(2*v.retryRng.Float64()-1)
		v.retryMu.Unlock()
		d = time.Duration(float64(d) * f)
		if d < time.Millisecond {
			d = time.Millisecond
		}
	}
	return d
}

// noteFailure records a failed launch of [sim.first, sim.last] in the
// shard's ledger and decides its fate: retry after a delay, or fail —
// with a QuarantineError when this failure opened (or re-opened) the
// quarantine, plain otherwise. Caller holds the shard lock.
func (v *Virtualizer) noteFailure(cs *shard, sim *simState) (delay time.Duration, qerr *QuarantineError, retry bool) {
	v.retryMu.Lock()
	p := v.retry
	v.retryMu.Unlock()
	if !p.enabled() {
		return 0, nil, false
	}
	key := [2]int{sim.first, sim.last}
	rec := cs.failures[key]
	if rec == nil {
		rec = &failureRec{}
		cs.failures[key] = rec
	}
	rec.attempts++
	if rec.attempts <= p.MaxAttempts && !rec.quarantined {
		cs.retries++
		return v.backoffDelay(p, rec.attempts), nil, true
	}
	// Budget exhausted (or a half-open probe failed): open the breaker.
	rec.quarantined = true
	rec.until = v.clock.Now() + p.Cooldown
	cs.quarantined++
	return 0, &QuarantineError{
		Ctx: cs.ctx.Name, First: sim.first, Last: sim.last,
		Attempts: rec.attempts, RetryAfter: p.Cooldown,
	}, false
}

// clearFailure forgets an interval's ledger entry after a successful
// completion. Caller holds the shard lock.
func (v *Virtualizer) clearFailure(cs *shard, first, last int) {
	if len(cs.failures) == 0 {
		return
	}
	delete(cs.failures, [2]int{first, last})
}

// quarantineErr reports whether the interval is currently held by the
// circuit breaker. An expired quarantine half-opens here: the flag is
// cleared (the attempt count stays at the threshold, so one more
// failure re-opens immediately) and the caller's launch proceeds as the
// probe. Caller holds the shard lock.
func (v *Virtualizer) quarantineErr(cs *shard, first, last int) *QuarantineError {
	rec := cs.failures[[2]int{first, last}]
	if rec == nil || !rec.quarantined {
		return nil
	}
	now := v.clock.Now()
	if now >= rec.until {
		rec.quarantined = false
		return nil
	}
	return &QuarantineError{
		Ctx: cs.ctx.Name, First: first, Last: last,
		Attempts: rec.attempts, RetryAfter: rec.until - now,
	}
}

// repromise re-marks the dead simulation's promised steps as pending
// markers, keeping their waiters attached through the backoff window
// (waiters only ever sit on promised steps) and keeping demand opens
// from storming fresh launches for an interval a retry already covers.
// Caller holds the shard lock.
func (v *Virtualizer) repromise(cs *shard, sim *simState) {
	for s := sim.first; s <= sim.last; s++ {
		if id, p := cs.promised[s]; p && id == sim.id {
			cs.promised[s] = pendingSimID
		}
	}
}

// retryLaunch re-submits a failed interval once its backoff elapsed. It
// runs from the retry timer with no locks held, mirroring the admission
// block of drainScheduler: clear the interval's pending markers, bail
// out (failing leftover waiters) when the context drained meanwhile,
// and otherwise hand the interval back to the scheduler.
func (v *Virtualizer) retryLaunch(ctxName string, first, last, parallelism int, class sched.Class, client string) {
	cs, ok := v.shardOf(ctxName)
	if !ok {
		return
	}
	cs.mu.Lock()
	var cleared []int
	for s := first; s <= last; s++ {
		if cs.promised[s] == pendingSimID {
			delete(cs.promised, s)
			cleared = append(cleared, s)
		}
	}
	if cs.draining && !(class == sched.Demand && v.anyoneNeeds(cs, first, last)) {
		v.remarkQueued(cs)
		orphaned := v.trulyOrphaned(cs, cleared)
		var cbs []func(Status)
		for _, s := range orphaned {
			for _, w := range cs.waiters[s] {
				cbs = append(cbs, w.cb)
			}
			delete(cs.waiters, s)
		}
		cs.mu.Unlock()
		for _, cb := range cbs {
			cb(Status{Err: "re-simulation canceled"})
		}
		v.publishFailed(ctxName, orphaned, "re-simulation canceled")
		return
	}
	queued := v.launch(cs, first, last, parallelism, class, client)
	v.remarkQueued(cs)
	cs.mu.Unlock()
	if queued {
		v.maybePreempt()
	}
}

// ResetQuarantine clears the failure ledger of a context ("" = every
// context), closing open circuit breakers so demand opens launch again.
// It returns how many quarantined intervals were released.
func (v *Virtualizer) ResetQuarantine(ctxName string) (int, error) {
	var shards []*shard
	if ctxName == "" {
		v.ctxMu.RLock()
		for _, cs := range v.contexts { //simfs:allow maporder per-shard resets are independent and the released count is commutative
			shards = append(shards, cs)
		}
		v.ctxMu.RUnlock()
	} else {
		cs, ok := v.shardOf(ctxName)
		if !ok {
			return 0, fmt.Errorf("core: %w %q", ErrUnknownContext, ctxName)
		}
		shards = append(shards, cs)
	}
	released := 0
	for _, cs := range shards {
		cs.mu.Lock()
		for key, rec := range cs.failures {
			if rec.quarantined {
				released++
			}
			delete(cs.failures, key)
		}
		cs.mu.Unlock()
	}
	return released, nil
}
