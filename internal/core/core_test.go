package core

import (
	"testing"
	"time"

	"simfs/internal/des"
	"simfs/internal/model"
	"simfs/internal/simulator"
	"simfs/internal/vfs"
)

// harness wires a Virtualizer to a DES launcher on a virtual clock.
type harness struct {
	eng *des.Engine
	l   *simulator.DESLauncher
	v   *Virtualizer
}

func newHarness(t *testing.T, ctxs ...*model.Context) *harness {
	t.Helper()
	eng := des.NewEngine()
	l := &simulator.DESLauncher{Engine: eng}
	v := New(eng, l)
	l.Events = v
	for _, c := range ctxs {
		if err := v.AddContext(c, "DCL", nil); err != nil {
			t.Fatalf("AddContext(%s): %v", c.Name, err)
		}
	}
	return &harness{eng: eng, l: l, v: v}
}

// testContext returns a small context: Δd=1, Δr=4, 100 steps, α=2s, τ=1s,
// 1-byte output steps, 40-byte cache (40 steps).
func testContext(name string) *model.Context {
	c := &model.Context{
		Name:               name,
		Grid:               model.Grid{DeltaD: 1, DeltaR: 4, Timesteps: 100},
		OutputBytes:        1,
		RestartBytes:       1,
		MaxCacheBytes:      40,
		Tau:                time.Second,
		Alpha:              2 * time.Second,
		DefaultParallelism: 1,
		MaxParallelism:     1,
		SMax:               4,
		NoPrefetch:         true, // most tests exercise the demand path
	}
	c.ApplyDefaults()
	return c
}

func TestAddContextValidation(t *testing.T) {
	h := newHarness(t)
	bad := testContext("bad")
	bad.Grid.DeltaD = 0
	if err := h.v.AddContext(bad, "DCL", nil); err == nil {
		t.Error("invalid context accepted")
	}
	good := testContext("good")
	if err := h.v.AddContext(good, "NOPE", nil); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := h.v.AddContext(good, "LRU", nil); err != nil {
		t.Fatal(err)
	}
	if err := h.v.AddContext(good, "LRU", nil); err == nil {
		t.Error("duplicate context accepted")
	}
	up := testContext("down")
	up.Upstream = "missing"
	if err := h.v.AddContext(up, "LRU", nil); err == nil {
		t.Error("unknown upstream accepted")
	}
}

func TestOpenUnknowns(t *testing.T) {
	ctx := testContext("c")
	h := newHarness(t, ctx)
	if _, err := h.v.Open("a1", "nope", ctx.Filename(1)); err == nil {
		t.Error("unknown context accepted")
	}
	if _, err := h.v.Open("a1", "c", "garbage"); err == nil {
		t.Error("unparseable filename accepted")
	}
	if _, err := h.v.Open("a1", "c", ctx.Filename(999)); err == nil {
		t.Error("out-of-range step accepted")
	}
}

func TestOpenHitAfterPreload(t *testing.T) {
	ctx := testContext("c")
	h := newHarness(t, ctx)
	if err := h.v.Preload("c", []int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	res, err := h.v.Open("a1", "c", ctx.Filename(2))
	if err != nil || !res.Available {
		t.Fatalf("Open = %+v, %v", res, err)
	}
	st, _ := h.v.Stats("c")
	if st.Hits != 1 || st.Misses != 0 || st.Restarts != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestOpenMissTriggersResimAndNotifies(t *testing.T) {
	ctx := testContext("c")
	h := newHarness(t, ctx)
	file := ctx.Filename(6) // interval (4,8]: restart at t=4, produces 5..8
	res, err := h.v.Open("a1", "c", file)
	if err != nil || res.Available {
		t.Fatalf("Open = %+v, %v", res, err)
	}
	if res.EstWait <= 0 {
		t.Error("miss should estimate a wait")
	}
	var ready []time.Duration
	if err := h.v.WaitFile("a1", "c", file, func(st Status) {
		if st.Err != "" {
			t.Errorf("unexpected error: %s", st.Err)
		}
		ready = append(ready, h.eng.Now())
	}); err != nil {
		t.Fatal(err)
	}
	h.eng.Run(0)
	if len(ready) != 1 {
		t.Fatalf("waiter fired %d times", len(ready))
	}
	// α=2s + 2 steps (5,6) at 1s = 4s.
	if ready[0] != 4*time.Second {
		t.Errorf("file ready at %v, want 4s", ready[0])
	}
	st, _ := h.v.Stats("c")
	if st.DemandRestarts != 1 || st.StepsProduced != 4 {
		t.Errorf("stats = %+v (want 1 restart producing steps 5..8)", st)
	}
	// Second open is now a hit.
	res, _ = h.v.Open("a1", "c", file)
	if !res.Available {
		t.Error("file should be resident after production")
	}
}

func TestOpenJoinsRunningSimulation(t *testing.T) {
	ctx := testContext("c")
	h := newHarness(t, ctx)
	h.v.Open("a1", "c", ctx.Filename(5))
	h.v.Open("a2", "c", ctx.Filename(6)) // same interval: must not relaunch
	h.eng.Run(0)
	st, _ := h.v.Stats("c")
	if st.Restarts != 1 {
		t.Errorf("restarts = %d, want 1 (second open joins)", st.Restarts)
	}
}

func TestWaitFileOnResidentFiresImmediately(t *testing.T) {
	ctx := testContext("c")
	h := newHarness(t, ctx)
	h.v.Preload("c", []int{1})
	fired := false
	if err := h.v.WaitFile("a1", "c", ctx.Filename(1), func(st Status) { fired = true }); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("waiter on resident file must fire synchronously")
	}
	// Waiting for a file that nothing is producing is an error.
	if err := h.v.WaitFile("a1", "c", ctx.Filename(50), func(Status) {}); err == nil {
		t.Error("wait without open should fail")
	}
}

func TestReleaseAndRefcounts(t *testing.T) {
	ctx := testContext("c")
	h := newHarness(t, ctx)
	h.v.Preload("c", []int{1})
	file := ctx.Filename(1)
	h.v.Open("a1", "c", file)
	h.v.Open("a2", "c", file)
	if err := h.v.Release("a1", "c", file); err != nil {
		t.Fatal(err)
	}
	if err := h.v.Release("a2", "c", file); err != nil {
		t.Fatal(err)
	}
	if err := h.v.Release("a2", "c", file); err == nil {
		t.Error("over-release should fail")
	}
}

func TestPinnedFilesSurviveEviction(t *testing.T) {
	ctx := testContext("c")
	ctx.MaxCacheBytes = 4 // 4 steps
	h := newHarness(t, ctx)
	h.v.Preload("c", []int{1, 2, 3, 4})
	h.v.Open("a1", "c", ctx.Filename(1)) // pin step 1
	// Produce steps 9..12, evicting three unpinned entries.
	h.v.Open("a1", "c", ctx.Filename(10))
	h.eng.Run(0)
	res, _ := h.v.Open("a1", "c", ctx.Filename(1))
	if !res.Available {
		t.Error("pinned step 1 was evicted")
	}
	st, _ := h.v.Stats("c")
	if st.Evictions == 0 {
		t.Error("expected evictions")
	}
}

func TestSMaxQueuesDemandLaunches(t *testing.T) {
	ctx := testContext("c")
	ctx.SMax = 2
	h := newHarness(t, ctx)
	// Three misses in three distinct restart intervals.
	h.v.Open("a1", "c", ctx.Filename(2))  // interval (0,4]
	h.v.Open("a1", "c", ctx.Filename(6))  // interval (4,8]
	h.v.Open("a1", "c", ctx.Filename(10)) // interval (8,12] — queued
	done := map[int]time.Duration{}
	for _, s := range []int{2, 6, 10} {
		s := s
		h.v.WaitFile("a1", "c", ctx.Filename(s), func(st Status) { done[s] = h.eng.Now() })
	}
	h.eng.Run(0)
	if len(done) != 3 {
		t.Fatalf("only %d of 3 files produced", len(done))
	}
	// The third interval starts only after one of the first two ends
	// (each sim: α=2s + 4·1s = 6s; third ends ≥ 6+2+2 = 10s).
	if done[10] < 10*time.Second {
		t.Errorf("queued sim finished at %v, before capacity freed", done[10])
	}
	st, _ := h.v.Stats("c")
	if st.Restarts != 3 {
		t.Errorf("restarts = %d, want 3", st.Restarts)
	}
}

func TestAcquireMultipleFiles(t *testing.T) {
	ctx := testContext("c")
	h := newHarness(t, ctx)
	h.v.Preload("c", []int{1})
	files := []string{ctx.Filename(1), ctx.Filename(6), ctx.Filename(10)}
	var got *Status
	err := h.v.Acquire("a1", "c", files, func(st Status) { got = &st })
	if err != nil {
		t.Fatal(err)
	}
	if got != nil {
		t.Fatal("acquire fired before production")
	}
	h.eng.Run(0)
	if got == nil || !got.Ready || got.Err != "" {
		t.Fatalf("acquire status = %+v", got)
	}
	// All three files are referenced: release them all.
	for _, f := range files {
		if err := h.v.Release("a1", "c", f); err != nil {
			t.Errorf("release %s: %v", f, err)
		}
	}
}

func TestAcquireAllResidentFiresImmediately(t *testing.T) {
	ctx := testContext("c")
	h := newHarness(t, ctx)
	h.v.Preload("c", []int{1, 2})
	fired := false
	h.v.Acquire("a1", "c", []string{ctx.Filename(1), ctx.Filename(2)}, func(st Status) {
		fired = st.Ready
	})
	if !fired {
		t.Error("fully resident acquire must fire synchronously")
	}
	// Empty acquire also fires.
	fired = false
	h.v.Acquire("a1", "c", nil, func(st Status) { fired = st.Ready })
	if !fired {
		t.Error("empty acquire must fire")
	}
}

func TestAcquireRollsBackOnError(t *testing.T) {
	ctx := testContext("c")
	h := newHarness(t, ctx)
	h.v.Preload("c", []int{1})
	err := h.v.Acquire("a1", "c", []string{ctx.Filename(1), "garbage"}, func(Status) {
		t.Error("callback must not fire on error")
	})
	if err == nil {
		t.Fatal("acquire with bad filename should fail")
	}
	// The reference on file 1 must have been rolled back.
	if err := h.v.Release("a1", "c", ctx.Filename(1)); err == nil {
		t.Error("reference was not rolled back")
	}
}

func TestSimFailureNotifiesWaiters(t *testing.T) {
	ctx := testContext("c")
	h := newHarness(t, ctx)
	h.l.FailEvery = 1 // every simulation crashes halfway
	file := ctx.Filename(4)
	h.v.Open("a1", "c", file)
	var st *Status
	h.v.WaitFile("a1", "c", file, func(s Status) { st = &s })
	h.eng.Run(0)
	if st == nil {
		t.Fatal("waiter never notified")
	}
	if st.Err == "" {
		t.Error("failure should carry an error status")
	}
	stats, _ := h.v.Stats("c")
	if stats.Failures != 1 {
		t.Errorf("failures = %d", stats.Failures)
	}
}

func TestEstWait(t *testing.T) {
	ctx := testContext("c")
	h := newHarness(t, ctx)
	h.v.Preload("c", []int{1})
	if w, err := h.v.EstWait("c", ctx.Filename(1)); err != nil || w != 0 {
		t.Errorf("resident EstWait = %v, %v", w, err)
	}
	h.v.Open("a1", "c", ctx.Filename(4))
	w, err := h.v.EstWait("c", ctx.Filename(4))
	if err != nil || w <= 0 {
		t.Errorf("missing EstWait = %v, %v", w, err)
	}
	// α=2s + 4·1s = 6s for step 4 (interval (0,4]).
	if w != 6*time.Second {
		t.Errorf("EstWait = %v, want 6s", w)
	}
	if _, err := h.v.EstWait("nope", "x"); err == nil {
		t.Error("unknown context accepted")
	}
}

func TestBitrep(t *testing.T) {
	ctx := testContext("c")
	h := newHarness(t, ctx)
	file := ctx.Filename(1)
	content := vfs.Content(file, 64)
	drv := simulator.NewSynthetic(ctx)
	if err := h.v.RegisterChecksum("c", file, drv.Checksum(content)); err != nil {
		t.Fatal(err)
	}
	same, err := h.v.Bitrep("c", file, content)
	if err != nil || !same {
		t.Errorf("Bitrep identical = %v, %v", same, err)
	}
	same, err = h.v.Bitrep("c", file, []byte("perturbed"))
	if err != nil || same {
		t.Errorf("Bitrep different = %v, %v", same, err)
	}
	if _, err := h.v.Bitrep("c", ctx.Filename(2), content); err == nil {
		t.Error("unregistered file should error")
	}
	if sum, found, _ := h.v.RegisteredChecksum("c", file); !found || sum != drv.Checksum(content) {
		t.Error("registered checksum not retrievable")
	}
	if err := h.v.RegisterChecksum("c", "garbage", 1); err == nil {
		t.Error("bad filename accepted")
	}
}

func TestRescanStorageArea(t *testing.T) {
	ctx := testContext("c")
	area := vfs.NewMem()
	eng := des.NewEngine()
	l := &simulator.DESLauncher{Engine: eng}
	v := New(eng, l)
	l.Events = v
	if err := v.AddContext(ctx, "LRU", area); err != nil {
		t.Fatal(err)
	}
	// Files already in the area (daemon restart): 3 output steps, one
	// restart file (ignored), one foreign file (ignored).
	area.Create(ctx.Filename(1), 1)
	area.Create(ctx.Filename(2), 1)
	area.Create(ctx.Filename(3), 1)
	area.Create(ctx.RestartFilename(4), 1)
	area.Create("notes.txt", 1)
	n, err := v.RescanStorageArea("c")
	if err != nil || n != 3 {
		t.Fatalf("rescan = %d, %v", n, err)
	}
	res, _ := v.Open("a1", "c", ctx.Filename(2))
	if !res.Available {
		t.Error("rescanned file should be resident")
	}
	if _, err := v.RescanStorageArea("nope"); err == nil {
		t.Error("unknown context accepted")
	}
}

func TestEvictionRemovesFromStorageArea(t *testing.T) {
	ctx := testContext("c")
	ctx.MaxCacheBytes = 2
	area := vfs.NewMem()
	eng := des.NewEngine()
	l := &simulator.DESLauncher{Engine: eng}
	v := New(eng, l)
	l.Events = v
	if err := v.AddContext(ctx, "LRU", area); err != nil {
		t.Fatal(err)
	}
	for _, s := range []int{1, 2, 3} {
		area.Create(ctx.Filename(s), 1)
	}
	v.RescanStorageArea("c") // inserts 1,2 then 3 evicts 1
	if got := len(area.List()); got != 2 {
		t.Errorf("storage area holds %d files, want 2 after eviction", got)
	}
}
