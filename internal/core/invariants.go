package core

// The audit iterates every ledger over sorted keys: with several
// violations present, which one is reported must not depend on map
// iteration order, or a failing property test prints a different
// counterexample on every run.

import (
	"fmt"
	"maps"
	"slices"
)

// CheckInvariants audits the Virtualizer's internal consistency. It is
// primarily exercised by the property tests, but can be called in
// production (it only reads state under each shard's lock) when
// debugging. Shards are audited one at a time, so under concurrent load
// the check is per-shard consistent rather than a global snapshot.
//
// Invariants (per shard):
//
//  1. A step is never both resident and promised.
//  2. Every promise points at a live simulation (or a pending marker).
//  3. Reference counts are positive and, for resident steps, equal the
//     cache pin count.
//  4. The cache never exceeds its capacity unless pins forced an
//     overflow.
//  5. Every simulation in the shard table has a well-formed range and
//     belongs to this shard's context.
//  6. Waiters only wait for promised (in-flight) steps.
func (v *Virtualizer) CheckInvariants() error {
	if err := v.sched.CheckInvariants(); err != nil {
		return err
	}
	v.ctxMu.RLock()
	shards := make(map[string]*shard, len(v.contexts))
	for name, cs := range v.contexts {
		shards[name] = cs
	}
	v.ctxMu.RUnlock()

	for _, name := range slices.Sorted(maps.Keys(shards)) {
		if err := shards[name].checkInvariants(name); err != nil {
			return err
		}
	}
	return nil
}

func (cs *shard) checkInvariants(name string) error {
	cs.mu.Lock()
	defer cs.mu.Unlock()

	for _, step := range slices.Sorted(maps.Keys(cs.promised)) {
		simID := cs.promised[step]
		if cs.resident(step) {
			return fmt.Errorf("core: %s step %d both resident and promised", name, step)
		}
		if simID == pendingSimID {
			continue
		}
		if _, ok := cs.sims[simID]; !ok {
			return fmt.Errorf("core: %s step %d promised by unknown simulation %d", name, step, simID)
		}
	}
	for _, step := range slices.Sorted(maps.Keys(cs.refs)) {
		n := cs.refs[step]
		if n <= 0 {
			return fmt.Errorf("core: %s step %d has non-positive refcount %d", name, step, n)
		}
		if cs.resident(step) {
			if pins := cs.cache.PinCount(cs.ctx.Filename(step)); pins != n {
				return fmt.Errorf("core: %s step %d refcount %d != pin count %d", name, step, n, pins)
			}
		}
	}
	if max := cs.cache.MaxBytes(); max > 0 && cs.cache.UsedBytes() > max {
		if cs.cache.Stats().PinBlocked == 0 {
			return fmt.Errorf("core: %s cache over capacity (%d > %d) without pin pressure",
				name, cs.cache.UsedBytes(), max)
		}
	}
	for _, id := range slices.Sorted(maps.Keys(cs.sims)) {
		sim := cs.sims[id]
		if sim.ctxName != name {
			return fmt.Errorf("core: simulation %d filed under %s but belongs to %s", id, name, sim.ctxName)
		}
		if sim.first > sim.last || sim.first < 1 {
			return fmt.Errorf("core: simulation %d has malformed range [%d,%d]", id, sim.first, sim.last)
		}
	}
	for _, step := range slices.Sorted(maps.Keys(cs.waiters)) {
		ws := cs.waiters[step]
		if len(ws) == 0 {
			continue
		}
		if cs.resident(step) {
			return fmt.Errorf("core: %s step %d resident but still has %d waiters", name, step, len(ws))
		}
		if _, promised := cs.promised[step]; !promised {
			return fmt.Errorf("core: %s step %d has waiters but no promise", name, step)
		}
	}
	return nil
}
