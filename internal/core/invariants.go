package core

import "fmt"

// CheckInvariants audits the Virtualizer's internal consistency. It is
// primarily exercised by the property tests, but can be called in
// production (it only reads state under the lock) when debugging.
//
// Invariants:
//
//  1. A step is never both resident and promised.
//  2. Every promise points at a live simulation (or a pending marker).
//  3. Reference counts are positive and, for resident steps, equal the
//     cache pin count.
//  4. The cache never exceeds its capacity unless pins forced an
//     overflow.
//  5. Every running simulation is registered in the global table with a
//     well-formed range, and vice versa.
//  6. Waiters only wait for promised (in-flight) steps.
func (v *Virtualizer) CheckInvariants() error {
	v.mu.Lock()
	defer v.mu.Unlock()

	for name, cs := range v.contexts {
		for step, simID := range cs.promised {
			if cs.resident(step) {
				return fmt.Errorf("core: %s step %d both resident and promised", name, step)
			}
			if simID == pendingSimID {
				continue
			}
			if _, ok := v.sims[simID]; !ok {
				return fmt.Errorf("core: %s step %d promised by unknown simulation %d", name, step, simID)
			}
		}
		for step, n := range cs.refs {
			if n <= 0 {
				return fmt.Errorf("core: %s step %d has non-positive refcount %d", name, step, n)
			}
			if cs.resident(step) {
				if pins := cs.cache.PinCount(cs.ctx.Filename(step)); pins != n {
					return fmt.Errorf("core: %s step %d refcount %d != pin count %d", name, step, n, pins)
				}
			}
		}
		if max := cs.cache.MaxBytes(); max > 0 && cs.cache.UsedBytes() > max {
			if cs.cache.Stats().PinBlocked == 0 {
				return fmt.Errorf("core: %s cache over capacity (%d > %d) without pin pressure",
					name, cs.cache.UsedBytes(), max)
			}
		}
		for id := range cs.runningSims {
			sim, ok := v.sims[id]
			if !ok {
				return fmt.Errorf("core: %s running simulation %d missing from the global table", name, id)
			}
			if sim.ctxName != name {
				return fmt.Errorf("core: simulation %d filed under %s but belongs to %s", id, name, sim.ctxName)
			}
			if sim.first > sim.last || sim.first < 1 {
				return fmt.Errorf("core: simulation %d has malformed range [%d,%d]", id, sim.first, sim.last)
			}
		}
		for step, ws := range cs.waiters {
			if len(ws) == 0 {
				continue
			}
			if cs.resident(step) {
				return fmt.Errorf("core: %s step %d resident but still has %d waiters", name, step, len(ws))
			}
			if _, promised := cs.promised[step]; !promised {
				return fmt.Errorf("core: %s step %d has waiters but no promise", name, step)
			}
		}
	}
	for id, sim := range v.sims {
		cs, ok := v.contexts[sim.ctxName]
		if !ok {
			return fmt.Errorf("core: simulation %d references unknown context %q", id, sim.ctxName)
		}
		if !cs.runningSims[id] {
			return fmt.Errorf("core: simulation %d not tracked by its context", id)
		}
	}
	return nil
}
