package core

import (
	"testing"
	"time"

	"simfs/internal/model"
)

// Multiple simulation contexts can coexist over the same timeline with
// different output granularities (paper Sec. II-A: "analyzing a coarser
// grain simulation output on a simulation context and then switch to
// finer grain on a different context"). Each context has its own cache,
// agents and simulations; one client may use several at once.
func TestMultipleContextsIndependentState(t *testing.T) {
	coarse := &model.Context{
		Name: "grain-coarse", Grid: model.Grid{DeltaD: 10, DeltaR: 40, Timesteps: 400},
		OutputBytes: 1, Tau: time.Second, Alpha: 2 * time.Second,
		DefaultParallelism: 1, MaxParallelism: 1, SMax: 4, NoPrefetch: true,
	}
	coarse.ApplyDefaults()
	fine := &model.Context{
		Name: "grain-fine", Grid: model.Grid{DeltaD: 1, DeltaR: 8, Timesteps: 400},
		OutputBytes: 1, Tau: 250 * time.Millisecond, Alpha: time.Second,
		DefaultParallelism: 1, MaxParallelism: 1, SMax: 4, NoPrefetch: true,
	}
	fine.ApplyDefaults()
	h := newHarness(t, coarse, fine)

	// Phase 1: the analysis browses the coarse output around t=200.
	var coarseDone, fineDone time.Duration
	h.v.Open("sci", "grain-coarse", coarse.Filename(20)) // timestep 200
	h.v.WaitFile("sci", "grain-coarse", coarse.Filename(20), func(st Status) {
		coarseDone = h.eng.Now()
		// Phase 2: something interesting → switch to the fine context
		// around the same simulated time (timestep 200 = fine step 200).
		h.v.Open("sci", "grain-fine", fine.Filename(200))
		h.v.WaitFile("sci", "grain-fine", fine.Filename(200), func(st Status) {
			fineDone = h.eng.Now()
		})
	})
	h.eng.Run(0)
	if coarseDone == 0 || fineDone == 0 {
		t.Fatal("context switch never completed")
	}
	if fineDone <= coarseDone {
		t.Error("fine context served before it was requested")
	}
	cs, _ := h.v.Stats("grain-coarse")
	fs, _ := h.v.Stats("grain-fine")
	if cs.Restarts != 1 || fs.Restarts != 1 {
		t.Errorf("restarts: coarse=%d fine=%d, want 1 each (independent simulations)",
			cs.Restarts, fs.Restarts)
	}
	if err := h.v.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// The same file name resolves independently per context: caches must not
// bleed across contexts even with identical naming conventions.
func TestContextsDoNotShareCaches(t *testing.T) {
	a := testContext("iso-a")
	b := testContext("iso-b")
	// Force identical file names in both contexts.
	a.FilePrefix, b.FilePrefix = "same_", "same_"
	h := newHarness(t, a, b)
	h.v.Preload("iso-a", []int{5})
	res, err := h.v.Open("c", "iso-a", "same_00000005.nc")
	if err != nil || !res.Available {
		t.Fatalf("context a: %+v, %v", res, err)
	}
	res, err = h.v.Open("c", "iso-b", "same_00000005.nc")
	if err != nil {
		t.Fatal(err)
	}
	if res.Available {
		t.Error("context b served context a's file: caches must be isolated")
	}
}
