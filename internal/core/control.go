package core

import (
	"errors"
	"fmt"
	"maps"
	"slices"
	"sort"

	"simfs/internal/cache"
	"simfs/internal/sched"
)

// Sentinel errors of the DV control surface. Front-ends map them to
// structured wire error codes with errors.Is instead of matching text.
// The //simfs:errcode annotations register each sentinel with the
// errcode analyzer, which then requires every //simfs:errcode-table
// classifier (the server's codeOf) to handle it.
var (
	// ErrUnknownContext: the named simulation context is not registered.
	//
	//simfs:errcode no_such_context
	ErrUnknownContext = errors.New("unknown context")
	// ErrDraining: the context refuses new opens and prefetches while it
	// drains; running work completes and releases still land.
	//
	//simfs:errcode busy
	ErrDraining = errors.New("context draining")
	// ErrBusy: the operation needs a quiescent context but references,
	// waiters or simulations are still live.
	//
	//simfs:errcode busy
	ErrBusy = errors.New("context busy")
	// ErrNotProduced: the file is neither on disk nor promised by a
	// re-simulation.
	//
	//simfs:errcode not_produced
	ErrNotProduced = errors.New("file is not being produced")
	// ErrInvalid: the request itself is malformed — a filename outside
	// the simulated timeline, an unknown cache policy, a nil context
	// definition. Front-ends map it to a bad-request error code;
	// anything unclassified is treated as an internal daemon failure.
	//
	//simfs:errcode bad_request
	ErrInvalid = errors.New("invalid request")
)

// SchedConfig returns the re-simulation scheduler policy in effect.
func (v *Virtualizer) SchedConfig() sched.Config { return v.sched.Config() }

// SetSchedConfig swaps the scheduling policy on the live daemon. The
// scheduler applies it at the next admission boundary (queued jobs are
// re-ordered, in-flight simulations keep their reservations); a drain
// pass afterwards starts anything the new policy admits — e.g. a raised
// node budget frees queued jobs immediately.
func (v *Virtualizer) SetSchedConfig(cfg sched.Config) {
	v.sched.SetConfig(cfg)
	v.drainScheduler()
}

// UpdateSchedConfig is SetSchedConfig for partial updates: mutate runs
// atomically against the current config under the scheduler's mutex, so
// concurrent partial reconfigurations compose instead of overwriting
// each other. It returns the resulting config.
func (v *Virtualizer) UpdateSchedConfig(mutate func(sched.Config) sched.Config) sched.Config {
	cfg := v.sched.Update(mutate)
	v.drainScheduler()
	return cfg
}

// SetCachePolicy swaps a context's replacement scheme live. The new
// policy is rebuilt from the resident set in ascending step order
// (deterministic: later steps rank as more recently used), so no file
// moves or is evicted by the swap itself; sizes, pins and byte
// accounting carry over untouched.
func (v *Virtualizer) SetCachePolicy(ctxName, policyName string) error {
	cs, err := v.lockedShard(ctxName)
	if err != nil {
		return err
	}
	defer cs.mu.Unlock()
	capacity := cs.ctx.CacheCapacitySteps()
	if capacity == 0 {
		capacity = cs.ctx.Grid.NumOutputSteps()
	}
	pol, err := cache.NewPolicy(policyName, capacity)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrInvalid, err)
	}
	stepOf := func(name string) int {
		step, err := cs.ctx.Key(name)
		if err != nil {
			return 0
		}
		return step
	}
	order := cs.cache.Keys()
	sort.Slice(order, func(i, j int) bool { return stepOf(order[i]) < stepOf(order[j]) })
	cs.cache.SetPolicy(pol, order, func(name string) int {
		return cs.ctx.Grid.MissCost(stepOf(name))
	})
	return nil
}

// CachePolicyName reports the replacement scheme a context currently
// runs.
func (v *Virtualizer) CachePolicyName(ctxName string) (string, error) {
	cs, err := v.lockedShard(ctxName)
	if err != nil {
		return "", err
	}
	defer cs.mu.Unlock()
	return cs.cache.Policy().Name(), nil
}

// Drain stops admitting new opens and prefetches for a context. Running
// simulations complete, existing waiters are served, and releases still
// land, so a drained context empties out under its current workload.
func (v *Virtualizer) Drain(ctxName string) error {
	cs, err := v.lockedShard(ctxName)
	if err != nil {
		return err
	}
	defer cs.mu.Unlock()
	cs.draining = true
	return nil
}

// Resume lifts a drain.
func (v *Virtualizer) Resume(ctxName string) error {
	cs, err := v.lockedShard(ctxName)
	if err != nil {
		return err
	}
	defer cs.mu.Unlock()
	cs.draining = false
	return nil
}

// Draining reports whether a context is currently draining.
func (v *Virtualizer) Draining(ctxName string) (bool, error) {
	cs, err := v.lockedShard(ctxName)
	if err != nil {
		return false, err
	}
	defer cs.mu.Unlock()
	return cs.draining, nil
}

// RemoveContext deregisters a drained context. It refuses (ErrBusy) while
// files are referenced, waiters are registered, simulations run, or a
// downstream context names it as upstream — drain first and retry once
// the workload has emptied. Queued scheduler jobs of the context are
// de-queued and their pending steps published as failed. The context's
// storage area is left on disk.
func (v *Virtualizer) RemoveContext(name string) error {
	// Fast-fail on a downstream dependent before marking the context
	// draining; the check is re-verified under ctxMu at the final
	// deletion, where it is authoritative.
	if dep := v.downstreamOf(name); dep != "" {
		return fmt.Errorf("core: %w: %q is upstream of %q", ErrBusy, name, dep)
	}

	cs, err := v.lockedShard(name)
	if err != nil {
		return err
	}
	// No new work lands from here on, whether or not removal succeeds
	// below: a deregistration attempt implies the context is retiring.
	cs.draining = true
	if n := len(cs.refs); n > 0 {
		cs.mu.Unlock()
		return fmt.Errorf("core: %w: %d files of %q still referenced", ErrBusy, n, name)
	}
	if n := len(cs.waiters); n > 0 {
		cs.mu.Unlock()
		return fmt.Errorf("core: %w: %d waiters registered on %q", ErrBusy, n, name)
	}
	if n := len(cs.sims); n > 0 {
		cs.mu.Unlock()
		return fmt.Errorf("core: %w: %d simulations of %q still live", ErrBusy, n, name)
	}
	// De-queue the context's scheduler jobs and dismantle their markers.
	var orphaned []int
	for _, job := range v.sched.DropContext(name) {
		for s := job.First; s <= job.Last; s++ {
			if cs.promised[s] == pendingSimID {
				delete(cs.promised, s)
				orphaned = append(orphaned, s)
			}
		}
	}
	cs.mu.Unlock()

	// Deletion and the dependency re-check share one ctxMu critical
	// section: AddContext validates upstreams under the same lock, so a
	// concurrently registered downstream either sees this context (and
	// blocks the removal here) or fails its own upstream validation —
	// never a dangling upstream pointer.
	v.ctxMu.Lock()
	// Sorted iteration: with several downstreams, the one named in the
	// ErrBusy error must not vary run to run.
	for _, other := range slices.Sorted(maps.Keys(v.contexts)) {
		if v.contexts[other].ctx.Upstream == name {
			v.ctxMu.Unlock()
			// The queued jobs are already dropped and their promises
			// cleared — consistent on its own (a later open simply
			// relaunches); tell subscribers the productions died.
			v.publishFailed(name, orphaned, "re-simulation canceled")
			return fmt.Errorf("core: %w: %q is upstream of %q", ErrBusy, name, other)
		}
	}
	delete(v.contexts, name)
	v.ctxMu.Unlock()
	v.publishFailed(name, orphaned, "context deregistered")
	return nil
}

// downstreamOf returns the name of a context that lists name as its
// upstream ("" if none).
func (v *Virtualizer) downstreamOf(name string) string {
	v.ctxMu.RLock()
	defer v.ctxMu.RUnlock()
	for _, other := range slices.Sorted(maps.Keys(v.contexts)) {
		if v.contexts[other].ctx.Upstream == name {
			return other
		}
	}
	return ""
}
