// Package simulator implements the simulator side of SimFS: the
// simulation driver interface (paper Sec. III-B, written as LUA scripts in
// the original system and as Go values here), a configurable synthetic
// simulator with the published COSMO and FLASH parameters, and two
// launchers that execute re-simulations — one over the discrete-event
// engine (virtual time, used by all experiments) and one spawning real
// goroutines that write files to a storage area (used by the daemon,
// examples and integration tests).
package simulator

import (
	"fmt"
	"hash/fnv"
	"time"

	"simfs/internal/model"
)

// Driver provides the simulator-specific functionality SimFS needs: the
// naming convention (Key must be monotone in production order), the
// simulation job script, and the checksum used by SIMFS_Bitrep.
type Driver interface {
	// Name identifies the simulator.
	Name() string
	// Key maps an output file name to an integer such that files produced
	// later have strictly larger keys.
	Key(filename string) (int, error)
	// JobScript renders the script the DV would hand to the batch system
	// to simulate output steps (first, last] at the given parallelism
	// level. In the original system the DV executes it; here it documents
	// the launch and is exercised by the control utility.
	JobScript(first, last, parallelism int) string
	// Nodes translates a parallelism level (0..max level) into a concrete
	// node count, enforcing simulator-specific allocation constraints.
	Nodes(parallelismLevel int) int
	// Checksum computes the simulator-specific checksum of file content.
	Checksum(content []byte) uint64
}

// Synthetic is the synthetic simulator of the paper's Sec. VI ("We use a
// synthetic simulator that can be configured to produce output steps at a
// given rate and after a given restart latency"), bound to a model
// context for its naming convention and timing.
type Synthetic struct {
	Ctx *model.Context
}

// NewSynthetic returns a driver over the given context.
func NewSynthetic(ctx *model.Context) *Synthetic { return &Synthetic{Ctx: ctx} }

// Name implements Driver.
func (s *Synthetic) Name() string { return s.Ctx.Name }

// Key implements Driver.
func (s *Synthetic) Key(filename string) (int, error) { return s.Ctx.Key(filename) }

// JobScript implements Driver.
func (s *Synthetic) JobScript(first, last, parallelism int) string {
	return fmt.Sprintf("#!/bin/sh\n# simulation driver: %s\nsimulate --context %s --from-restart %d --to-step %d --nodes %d\n",
		s.Ctx.Name, s.Ctx.Name, s.Ctx.Grid.RestartBefore(first), last, s.Nodes(parallelism))
}

// Nodes implements Driver: parallelism levels map to power-of-two node
// multiples of the default allocation, a common simulator constraint the
// paper cites ("square or power of two number of processes").
func (s *Synthetic) Nodes(level int) int {
	n := s.Ctx.DefaultParallelism
	for i := 0; i < level && n*2 <= s.Ctx.MaxParallelism; i++ {
		n *= 2
	}
	return n
}

// Checksum implements Driver with FNV-1a, standing in for the
// simulator-specific checksum of the paper's SIMFS_Bitrep support.
func (s *Synthetic) Checksum(content []byte) uint64 {
	h := fnv.New64a()
	h.Write(content)
	return h.Sum64()
}

// Published experiment configurations (paper Secs. V-A and VI). Sizes are
// model quantities: the virtual-time experiments never materialize them,
// and the real-time launcher writes scaled-down files.

// CosmoScaling returns the COSMO configuration of the strong-scaling
// experiment (Fig. 16): 1-minute timesteps, one output step every 5
// minutes, one restart per hour, τsim = 3 s, αsim = 13 s on P = 100 nodes.
func CosmoScaling() *model.Context {
	c := &model.Context{
		Name: "cosmo",
		Grid: model.Grid{DeltaD: 5, DeltaR: 60, Timesteps: 5760}, // 4 simulated days
		// so = 6 GiB from the cost-model calibration; the scaling
		// experiment never stores data volumes, only counts.
		OutputBytes:        6 << 30,
		RestartBytes:       36 << 30,
		Tau:                3 * time.Second,
		Alpha:              13 * time.Second,
		DefaultParallelism: 100,
		MaxParallelism:     100,
		SMax:               8,
	}
	c.ApplyDefaults()
	return c
}

// CosmoCost returns the COSMO configuration used to calibrate the cost
// models (Sec. V-A): 20 s timesteps, Δd = 15, τsim(100) = 20 s, 50 TiB
// total output.
func CosmoCost() *model.Context {
	c := &model.Context{
		Name: "cosmo-cost",
		// 30-day simulation at 20s timesteps: 129600 timesteps, Δd=15 →
		// 8640 output steps × 6 GiB ≈ 50 TiB, the paper's total volume.
		// Δr=8h (1440 timesteps) by default → 90 restarts × 36 GiB =
		// 3.16 TiB, matching the restart-space axis of Fig. 15b; the
		// experiments override Δr for the 4h/16h variants.
		Grid:               model.Grid{DeltaD: 15, DeltaR: 1440, Timesteps: 129600},
		OutputBytes:        6 << 30,
		RestartBytes:       36 << 30,
		Tau:                20 * time.Second,
		Alpha:              13 * time.Second,
		DefaultParallelism: 100,
		MaxParallelism:     100,
		SMax:               8,
	}
	c.ApplyDefaults()
	return c
}

// Flash returns the FLASH Sedov blast-wave configuration (Fig. 18):
// 0.005 s timesteps, one output step per timestep, one restart every 0.1 s
// (Δr = 20), τsim = 14 s, αsim = 7 s.
func Flash() *model.Context {
	c := &model.Context{
		Name:               "flash",
		Grid:               model.Grid{DeltaD: 1, DeltaR: 20, Timesteps: 1200},
		OutputBytes:        1 << 30,
		RestartBytes:       2 << 30,
		Tau:                14 * time.Second,
		Alpha:              7 * time.Second,
		DefaultParallelism: 54,
		MaxParallelism:     54,
		SMax:               8,
	}
	c.ApplyDefaults()
	return c
}

// CacheEval returns the configuration of the replacement-scheme evaluation
// (Fig. 5): a 4-day simulation producing an output step every 5 minutes
// and a restart file every 4 hours, with the cache set to 25% of the data
// volume.
func CacheEval() *model.Context {
	c := &model.Context{
		Name: "cache-eval",
		// 1-minute timesteps over 4 days: Δd=5 (5 min), Δr=240 (4 h).
		Grid:               model.Grid{DeltaD: 5, DeltaR: 240, Timesteps: 5760},
		OutputBytes:        1 << 30,
		RestartBytes:       4 << 30,
		Tau:                3 * time.Second,
		Alpha:              13 * time.Second,
		DefaultParallelism: 100,
		MaxParallelism:     100,
		SMax:               8,
	}
	c.MaxCacheBytes = c.TotalOutputBytes() / 4
	c.ApplyDefaults()
	return c
}
