package simulator

import (
	"strings"
	"sync"
	"testing"
	"time"

	"simfs/internal/batch"
	"simfs/internal/des"
	"simfs/internal/model"
	"simfs/internal/vfs"
)

func TestSyntheticDriverKeyRoundTrip(t *testing.T) {
	ctx := CosmoScaling()
	d := NewSynthetic(ctx)
	name := ctx.Filename(7)
	k, err := d.Key(name)
	if err != nil || k != 7 {
		t.Fatalf("Key = %d, %v", k, err)
	}
	if _, err := d.Key("garbage"); err == nil {
		t.Error("bad name should fail")
	}
}

func TestSyntheticJobScript(t *testing.T) {
	ctx := CosmoScaling()
	d := NewSynthetic(ctx)
	script := d.JobScript(13, 24, 0)
	for _, want := range []string{"--context cosmo", "--to-step 24", "--nodes 100"} {
		if !strings.Contains(script, want) {
			t.Errorf("script missing %q:\n%s", want, script)
		}
	}
}

func TestSyntheticNodesPowerOfTwo(t *testing.T) {
	ctx := &model.Context{
		Name: "n", Grid: model.Grid{DeltaD: 1, DeltaR: 4, Timesteps: 100},
		OutputBytes: 1, Tau: time.Second,
		DefaultParallelism: 4, MaxParallelism: 32,
	}
	ctx.ApplyDefaults()
	d := NewSynthetic(ctx)
	want := []int{4, 8, 16, 32, 32} // levels 0..4, clamped at max
	for lvl, w := range want {
		if got := d.Nodes(lvl); got != w {
			t.Errorf("Nodes(%d) = %d, want %d", lvl, got, w)
		}
	}
}

func TestSyntheticChecksum(t *testing.T) {
	d := NewSynthetic(CosmoScaling())
	a := d.Checksum([]byte("hello"))
	b := d.Checksum([]byte("hello"))
	c := d.Checksum([]byte("world"))
	if a != b || a == c {
		t.Error("checksum not deterministic or not discriminating")
	}
}

func TestPresetsValidate(t *testing.T) {
	for _, ctx := range []*model.Context{CosmoScaling(), CosmoCost(), Flash(), CacheEval()} {
		if err := ctx.Validate(); err != nil {
			t.Errorf("preset %s: %v", ctx.Name, err)
		}
	}
	// Published parameters spot checks.
	if c := CosmoScaling(); c.Grid.OutputsPerRestart() != 12 {
		t.Errorf("COSMO outputs/restart = %d, want 12 (Δd=5min, Δr=60min)", c.Grid.OutputsPerRestart())
	}
	if f := Flash(); f.Grid.OutputsPerRestart() != 20 {
		t.Errorf("FLASH outputs/restart = %d, want 20", f.Grid.OutputsPerRestart())
	}
	if ce := CacheEval(); ce.Grid.NumOutputSteps() != 1152 {
		t.Errorf("cache-eval output steps = %d, want 1152 (4 days / 5 min)", ce.Grid.NumOutputSteps())
	}
}

// recorder collects launcher events.
type recorder struct {
	mu       sync.Mutex
	started  []int64
	produced map[int64][]int
	ended    map[int64]Outcome
	// onStep, if set, fires after each StepProduced (outside the lock).
	onStep func()
}

func newRecorder() *recorder {
	return &recorder{produced: map[int64][]int{}, ended: map[int64]Outcome{}}
}
func (r *recorder) SimStarted(id int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.started = append(r.started, id)
}
func (r *recorder) StepProduced(id int64, step int) {
	r.mu.Lock()
	r.produced[id] = append(r.produced[id], step)
	cb := r.onStep
	r.mu.Unlock()
	if cb != nil {
		cb()
	}
}
func (r *recorder) SimEnded(id int64, o Outcome) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ended[id] = o
}

func testCtx() *model.Context {
	c := &model.Context{
		Name: "t", Grid: model.Grid{DeltaD: 1, DeltaR: 4, Timesteps: 100},
		OutputBytes: 1, Tau: time.Second, Alpha: 2 * time.Second,
		DefaultParallelism: 1, MaxParallelism: 1,
	}
	c.ApplyDefaults()
	return c
}

func TestDESLauncherTiming(t *testing.T) {
	eng := des.NewEngine()
	rec := newRecorder()
	l := &DESLauncher{Engine: eng, Events: rec}
	ctx := testCtx()
	id := l.Launch(ctx, 1, 4, 1)
	eng.Run(0)
	if len(rec.started) != 1 || rec.started[0] != id {
		t.Fatalf("started = %v", rec.started)
	}
	if got := rec.produced[id]; len(got) != 4 || got[0] != 1 || got[3] != 4 {
		t.Fatalf("produced = %v", got)
	}
	if rec.ended[id] != Completed {
		t.Errorf("outcome = %v", rec.ended[id])
	}
	// α=2s + 4·τ(1s) = 6s total.
	if eng.Now() != 6*time.Second {
		t.Errorf("end time = %v, want 6s", eng.Now())
	}
}

func TestDESLauncherQueueDelay(t *testing.T) {
	eng := des.NewEngine()
	rec := newRecorder()
	l := &DESLauncher{Engine: eng, Events: rec, Queue: batch.Constant(5 * time.Second)}
	l.Launch(testCtx(), 1, 1, 1)
	eng.Run(0)
	// 5s queue + 2s α + 1s τ = 8s.
	if eng.Now() != 8*time.Second {
		t.Errorf("end time = %v, want 8s", eng.Now())
	}
}

func TestDESLauncherKill(t *testing.T) {
	eng := des.NewEngine()
	rec := newRecorder()
	l := &DESLauncher{Engine: eng, Events: rec}
	ctx := testCtx()
	id := l.Launch(ctx, 1, 10, 1)
	// Kill after the 3rd step (t = 2+3 = 5s).
	eng.Schedule(5500*time.Millisecond, func() { l.Kill(id) })
	eng.Run(0)
	if got := rec.produced[id]; len(got) != 3 {
		t.Fatalf("produced = %v, want 3 steps before the kill", got)
	}
	if rec.ended[id] != Killed {
		t.Errorf("outcome = %v, want Killed", rec.ended[id])
	}
	if l.RunningCount() != 0 {
		t.Errorf("running = %d", l.RunningCount())
	}
	// Double kill is a no-op.
	l.Kill(id)
}

func TestDESLauncherFailureInjection(t *testing.T) {
	eng := des.NewEngine()
	rec := newRecorder()
	l := &DESLauncher{Engine: eng, Events: rec, FailEvery: 1}
	id := l.Launch(testCtx(), 1, 10, 1)
	eng.Run(0)
	if rec.ended[id] != Failed {
		t.Fatalf("outcome = %v, want Failed", rec.ended[id])
	}
	if got := rec.produced[id]; len(got) >= 10 || len(got) == 0 {
		t.Errorf("failed sim produced %d steps, want partial output", len(got))
	}
}

func TestDESLauncherKillBeforeStart(t *testing.T) {
	eng := des.NewEngine()
	rec := newRecorder()
	l := &DESLauncher{Engine: eng, Events: rec}
	ctx := testCtx() // α=2s: the kill lands during the restart latency
	id := l.Launch(ctx, 1, 10, 1)
	eng.Schedule(time.Second, func() { l.Kill(id) })
	eng.Run(0)
	if len(rec.started) != 0 {
		t.Error("killed-before-start sim reported SimStarted")
	}
	if len(rec.produced[id]) != 0 {
		t.Errorf("produced = %v, want none before the restart latency", rec.produced[id])
	}
	if rec.ended[id] != Killed {
		t.Errorf("outcome = %v, want Killed", rec.ended[id])
	}
	if l.RunningCount() != 0 {
		t.Errorf("running = %d", l.RunningCount())
	}
}

// A preemption kill may land while the victim still sits in the batch
// queue (its queueing delay elapsing): the cancellation must be
// cooperative there too — no start, no output, one Killed event.
func TestDESLauncherKillDuringQueueDelay(t *testing.T) {
	eng := des.NewEngine()
	rec := newRecorder()
	l := &DESLauncher{Engine: eng, Events: rec, Queue: batch.Constant(10 * time.Second)}
	id := l.Launch(testCtx(), 1, 10, 1)
	eng.Schedule(3*time.Second, func() { l.Kill(id) }) // mid-queueing
	eng.Run(0)
	if len(rec.started) != 0 {
		t.Error("sim killed in the batch queue reported SimStarted")
	}
	if len(rec.produced[id]) != 0 {
		t.Errorf("produced = %v, want none", rec.produced[id])
	}
	if rec.ended[id] != Killed {
		t.Errorf("outcome = %v, want Killed", rec.ended[id])
	}
	// The kill is reported at the kill time, not after the queue delay.
	if eng.Now() != 3*time.Second {
		t.Errorf("end time = %v, want 3s", eng.Now())
	}
}

func TestDESLauncherKillUnknownIDIsNoop(t *testing.T) {
	eng := des.NewEngine()
	l := &DESLauncher{Engine: eng, Events: newRecorder()}
	l.Kill(42) // never launched
	eng.Run(0)
}

func TestDESLauncherFailEveryPattern(t *testing.T) {
	eng := des.NewEngine()
	rec := newRecorder()
	l := &DESLauncher{Engine: eng, Events: rec, FailEvery: 2}
	ctx := testCtx()
	a := l.Launch(ctx, 1, 8, 1) // id 1: survives
	b := l.Launch(ctx, 1, 8, 1) // id 2: injected crash
	c := l.Launch(ctx, 1, 8, 1) // id 3: survives
	eng.Run(0)
	if rec.ended[a] != Completed || rec.ended[c] != Completed {
		t.Errorf("odd sims = %v/%v, want Completed", rec.ended[a], rec.ended[c])
	}
	if rec.ended[b] != Failed {
		t.Fatalf("second sim = %v, want Failed", rec.ended[b])
	}
	// The crash is injected after half the range: steps 1..4 of [1,8]
	// (failAt = first + (last-first)/2).
	if got := rec.produced[b]; len(got) != 4 || got[len(got)-1] != 4 {
		t.Errorf("failed sim produced %v, want steps 1..4", got)
	}
	if got := rec.produced[a]; len(got) != 8 {
		t.Errorf("surviving sim produced %d steps, want 8", len(got))
	}
}

func TestDESLauncherKillAfterEndIsNoop(t *testing.T) {
	eng := des.NewEngine()
	rec := newRecorder()
	l := &DESLauncher{Engine: eng, Events: rec}
	id := l.Launch(testCtx(), 1, 2, 1)
	eng.Run(0)
	if rec.ended[id] != Completed {
		t.Fatalf("outcome = %v", rec.ended[id])
	}
	l.Kill(id) // already ended
	eng.Run(0)
	if rec.ended[id] != Completed {
		t.Error("kill after completion changed the outcome")
	}
}

func TestRealTimeLauncherProducesFiles(t *testing.T) {
	area := vfs.NewMem()
	rec := newRecorder()
	ctx := testCtx()
	ctx.Tau = 2 * time.Millisecond
	ctx.Alpha = time.Millisecond
	l := &RealTimeLauncher{
		Events: rec,
		Write: func(c *model.Context, step int) error {
			return area.Create(c.Filename(step), 64)
		},
	}
	id := l.Launch(ctx, 1, 3, 1)
	l.Wait()
	if rec.ended[id] != Completed {
		t.Fatalf("outcome = %v", rec.ended[id])
	}
	for s := 1; s <= 3; s++ {
		if !area.Exists(ctx.Filename(s)) {
			t.Errorf("file for step %d missing", s)
		}
	}
}

func TestRealTimeLauncherKill(t *testing.T) {
	rec := newRecorder()
	ctx := testCtx() // α=2s: plenty of time to kill before production
	l := &RealTimeLauncher{
		Events: rec,
		Write:  func(c *model.Context, step int) error { return nil },
	}
	id := l.Launch(ctx, 1, 100, 1)
	l.Kill(id)
	l.Kill(id) // idempotent
	l.Wait()
	if rec.ended[id] != Killed {
		t.Fatalf("outcome = %v, want Killed", rec.ended[id])
	}
	if len(rec.produced[id]) != 0 {
		t.Error("killed sim produced output")
	}
}

// The preemption path kills sims that are mid-production: the goroutine
// launcher must stop between steps, keep the produced prefix on disk and
// report exactly one Killed outcome.
func TestRealTimeLauncherKillMidProduction(t *testing.T) {
	rec := newRecorder()
	ctx := testCtx()
	l := &RealTimeLauncher{
		Events:    rec,
		Write:     func(c *model.Context, step int) error { return nil },
		TimeScale: 100, // α=20ms, τ=10ms
	}
	stepped := make(chan struct{}, 1)
	rec.onStep = func() {
		select {
		case stepped <- struct{}{}:
		default:
		}
	}
	id := l.Launch(ctx, 1, 1000, 1)
	<-stepped // at least one step is out
	l.Kill(id)
	l.Wait()
	if rec.ended[id] != Killed {
		t.Fatalf("outcome = %v, want Killed", rec.ended[id])
	}
	n := len(rec.produced[id])
	if n == 0 || n >= 1000 {
		t.Errorf("killed mid-production with %d steps, want a partial prefix", n)
	}
}

func TestRealTimeLauncherTimeScale(t *testing.T) {
	rec := newRecorder()
	ctx := testCtx() // α=2s, τ=1s → 12s unscaled for 10 steps
	l := &RealTimeLauncher{
		Events:    rec,
		TimeScale: 1000, // → 12ms
		Write:     func(c *model.Context, step int) error { return nil },
	}
	start := time.Now()
	id := l.Launch(ctx, 1, 10, 1)
	l.Wait()
	if rec.ended[id] != Completed {
		t.Fatal("sim did not complete")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("time scaling ineffective: took %v", elapsed)
	}
}

func TestRealTimeLauncherWriteFailure(t *testing.T) {
	rec := newRecorder()
	ctx := testCtx()
	ctx.Alpha, ctx.Tau = time.Millisecond, time.Millisecond
	failing := func(c *model.Context, step int) error {
		if step == 2 {
			return vfs.NewMem().Remove("nonexistent") // any error
		}
		return nil
	}
	l := &RealTimeLauncher{Events: rec, Write: failing}
	id := l.Launch(ctx, 1, 5, 1)
	l.Wait()
	if rec.ended[id] != Failed {
		t.Fatalf("outcome = %v, want Failed", rec.ended[id])
	}
	if got := rec.produced[id]; len(got) != 1 {
		t.Errorf("produced = %v, want just step 1", got)
	}
}

func TestOutcomeString(t *testing.T) {
	cases := map[Outcome]string{Completed: "completed", Killed: "killed", Failed: "failed", Outcome(99): "unknown"}
	for o, want := range cases {
		if o.String() != want {
			t.Errorf("%d.String() = %q", o, o.String())
		}
	}
}
