package simulator

import (
	"sync"
	"time"

	"simfs/internal/batch"
	"simfs/internal/des"
	"simfs/internal/model"
)

// Outcome classifies how a re-simulation ended.
type Outcome int

// Simulation outcomes.
const (
	Completed Outcome = iota // produced its whole range
	Killed                   // killed by the DV (over-prefetch, reset)
	Failed                   // crashed (failure injection)
)

func (o Outcome) String() string {
	switch o {
	case Completed:
		return "completed"
	case Killed:
		return "killed"
	case Failed:
		return "failed"
	}
	return "unknown"
}

// Events receives simulation life-cycle callbacks. The DV core implements
// it; launchers call it. StepProduced corresponds to DVLib intercepting
// the simulator's close call and notifying the DV (paper Sec. III-A).
type Events interface {
	// SimStarted fires when the restart latency has elapsed and
	// production begins (after any batch queueing delay).
	SimStarted(simID int64)
	// StepProduced fires when output step `step` is written and closed.
	StepProduced(simID int64, step int)
	// SimEnded fires exactly once per simulation.
	SimEnded(simID int64, outcome Outcome)
}

// DESLauncher executes re-simulations in virtual time on a DES engine.
// It is single-threaded by construction (the engine is). Node-capacity
// admission lives in the scheduler (internal/sched) above the DV core,
// so the launcher runs everything it is handed.
type DESLauncher struct {
	Engine *des.Engine
	Events Events
	// Queue samples per-job batch queueing delays added to αsim
	// (nil = no queueing).
	Queue batch.Sampler
	// FailEvery injects a crash into every n-th launched simulation
	// (0 = never), after it produced half of its range. It is the
	// fixed-schedule shorthand for FailAt.
	FailEvery int
	// FailAt, when set, decides per launch whether and where the run
	// crashes (faults.SimPlan implements it): it returns the first step
	// the run does NOT produce — steps first..crash-1 land before the
	// failure, crash == first fails before producing anything — and a
	// negative return (or one outside [first, last]) runs healthy.
	// FailAt takes precedence over FailEvery.
	FailAt func(ctxName string, first, last int) int

	nextID  int64
	running map[int64]*desRun
}

type desRun struct {
	timers  []des.Timer
	nodes   int
	ended   bool
	started bool
}

// Launch implements the DV core's Launcher contract: start a
// re-simulation producing output steps [first, last] of ctx at the given
// parallelism (node count). It returns the simulation id immediately; all
// progress is reported through Events.
func (l *DESLauncher) Launch(ctx *model.Context, first, last, parallelism int) int64 {
	if l.running == nil {
		l.running = map[int64]*desRun{}
	}
	l.nextID++
	id := l.nextID
	run := &desRun{nodes: parallelism}
	l.running[id] = run

	start := func() {
		if run.ended {
			return
		}
		var delay time.Duration
		if l.Queue != nil {
			delay = l.Queue.Next()
		}
		alpha := ctx.Alpha
		tau := ctx.TauAt(parallelism)
		crash := -1 // first step not produced; -1 = healthy run
		if l.FailAt != nil {
			if c := l.FailAt(ctx.Name, first, last); c >= first && c <= last {
				crash = c
			}
		} else if l.FailEvery > 0 && id%int64(l.FailEvery) == 0 {
			crash = first + (last-first)/2 + 1
		}
		run.timers = append(run.timers, l.Engine.Schedule(delay+alpha, func() {
			run.started = true
			l.Events.SimStarted(id)
		}))
		for s := first; s <= last; s++ {
			s := s
			prodAt := delay + alpha + time.Duration(s-first+1)*tau
			if crash >= 0 && s >= crash {
				break
			}
			run.timers = append(run.timers, l.Engine.Schedule(prodAt, func() {
				l.Events.StepProduced(id, s)
			}))
		}
		endAt := delay + alpha + time.Duration(last-first+1)*tau
		outcome := Completed
		if crash >= 0 {
			endAt = delay + alpha + time.Duration(crash-first)*tau
			outcome = Failed
		}
		run.timers = append(run.timers, l.Engine.Schedule(endAt, func() {
			l.end(id, outcome)
		}))
	}

	start()
	return id
}

// Kill implements the DV core's Launcher contract. The termination event
// is delivered asynchronously (at the current virtual time) so that
// callers holding locks never receive a synchronous SimEnded callback —
// the preemption path relies on this: it kills a victim under the
// victim's shard lock and handles the requeue when SimEnded arrives.
// Cancellation is cooperative at every stage: a sim still in the batch
// queue, one waiting out its restart latency, and one mid-production all
// stop producing immediately and report exactly one Killed outcome.
func (l *DESLauncher) Kill(simID int64) {
	run, ok := l.running[simID]
	if !ok || run.ended {
		return
	}
	// Stop further production immediately; report the end via the engine.
	for _, t := range run.timers {
		t.Stop()
	}
	l.Engine.Schedule(0, func() { l.end(simID, Killed) })
}

// RunningCount returns the number of simulations not yet ended.
func (l *DESLauncher) RunningCount() int { return len(l.running) }

func (l *DESLauncher) end(simID int64, outcome Outcome) {
	run, ok := l.running[simID]
	if !ok || run.ended {
		return
	}
	run.ended = true
	for _, t := range run.timers {
		t.Stop()
	}
	delete(l.running, simID)
	l.Events.SimEnded(simID, outcome)
}

// RealTimeLauncher executes re-simulations as goroutines over wall-clock
// time, writing real files through a FileWriter. It is used by the daemon
// and the examples, with time scaled down so a "3 s per output step"
// simulation produces a file every few milliseconds.
type RealTimeLauncher struct {
	Events Events
	// Write is called to materialize one output step; typically it wraps
	// vfs.Disk.Create with the context's naming convention.
	Write func(ctx *model.Context, step int) error
	// TimeScale divides all durations (0 or 1 = real time). A scale of
	// 1000 turns αsim = 13 s into 13 ms.
	TimeScale int
	// Queue samples per-job batch queueing delays (nil = none).
	Queue batch.Sampler
	// FailAt, when set, decides per launch whether and where the run
	// crashes, with the same contract as DESLauncher.FailAt: the return
	// value is the first step NOT produced; negative or out-of-range
	// runs healthy.
	FailAt func(ctxName string, first, last int) int

	mu      sync.Mutex
	nextID  int64
	cancels map[int64]chan struct{}
	wg      sync.WaitGroup
}

func (l *RealTimeLauncher) scale(d time.Duration) time.Duration {
	if l.TimeScale > 1 {
		return d / time.Duration(l.TimeScale)
	}
	return d
}

// Launch implements the DV core's Launcher contract.
func (l *RealTimeLauncher) Launch(ctx *model.Context, first, last, parallelism int) int64 {
	l.mu.Lock()
	if l.cancels == nil {
		l.cancels = map[int64]chan struct{}{}
	}
	l.nextID++
	id := l.nextID
	cancel := make(chan struct{})
	l.cancels[id] = cancel
	l.mu.Unlock()

	var delay time.Duration
	l.mu.Lock()
	if l.Queue != nil {
		delay = l.Queue.Next()
	}
	l.mu.Unlock()

	crash := -1 // first step not produced; -1 = healthy run
	if l.FailAt != nil {
		if c := l.FailAt(ctx.Name, first, last); c >= first && c <= last {
			crash = c
		}
	}

	l.wg.Add(1)
	go func() {
		defer l.wg.Done()
		sleep := func(d time.Duration) bool {
			select {
			case <-time.After(d):
				return true
			case <-cancel:
				return false
			}
		}
		if !sleep(l.scale(delay + ctx.Alpha)) {
			l.finish(id, Killed)
			return
		}
		l.Events.SimStarted(id)
		tau := l.scale(ctx.TauAt(parallelism))
		for s := first; s <= last; s++ {
			if !sleep(tau) {
				l.finish(id, Killed)
				return
			}
			if crash >= 0 && s >= crash {
				l.finish(id, Failed)
				return
			}
			if err := l.Write(ctx, s); err != nil {
				l.finish(id, Failed)
				return
			}
			l.Events.StepProduced(id, s)
		}
		l.finish(id, Completed)
	}()
	return id
}

// Kill implements the DV core's Launcher contract. It is idempotent and
// safe to call concurrently with the simulation ending on its own. The
// cancellation is cooperative: the sim goroutine observes it between
// sleeps (batch queue, restart latency, per-step production), so a
// preempted sim stops after the step it is writing, keeps its produced
// prefix on disk, and reports Killed from its own goroutine — never
// synchronously from under the caller's locks.
func (l *RealTimeLauncher) Kill(simID int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if cancel, ok := l.cancels[simID]; ok {
		delete(l.cancels, simID)
		close(cancel)
	}
}

// Wait blocks until all launched simulations have ended.
func (l *RealTimeLauncher) Wait() { l.wg.Wait() }

func (l *RealTimeLauncher) finish(id int64, outcome Outcome) {
	l.mu.Lock()
	delete(l.cancels, id)
	l.mu.Unlock()
	l.Events.SimEnded(id, outcome)
}
