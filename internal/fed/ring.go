// Package fed is the federation tier: a consistent-hash ring that
// partitions contexts across daemons, a router front-end that speaks
// the client protocol and forwards each op to the owning daemon, and a
// peer-subscription bridge that propagates notify events between
// daemons so a watch on one daemon hears about production on another.
//
// The package deliberately sits below internal/server in the import
// graph: it depends only on netproto and metrics, so the server can
// embed a Bridge without a cycle.
package fed

import (
	"sort"
	"strconv"
)

// Ring is an immutable consistent-hash ring mapping string keys
// (context names) onto member addresses. Each member is projected onto
// the ring at Replicas virtual points so that load spreads evenly and
// membership changes move only ~1/N of the keys. Placement depends
// only on the member set and replica count — never on insertion order
// — so every router instance computes identical ownership.
type Ring struct {
	replicas int
	members  []string
	points   []ringPoint // sorted by (hash, member)
}

type ringPoint struct {
	hash   uint64
	member string
}

// DefaultReplicas is the virtual-node count used when NewRing is given
// a non-positive replica count. 128 keeps the max/min ownership skew
// under ~2x for small member sets.
const DefaultReplicas = 128

// NewRing builds a ring over the given members. Duplicate members are
// collapsed; order is irrelevant. An empty member set yields a ring
// whose Owner returns "".
func NewRing(replicas int, members ...string) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	seen := make(map[string]bool, len(members))
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if m == "" || seen[m] {
			continue
		}
		seen[m] = true
		uniq = append(uniq, m)
	}
	sort.Strings(uniq)
	r := &Ring{
		replicas: replicas,
		members:  uniq,
		points:   make([]ringPoint, 0, replicas*len(uniq)),
	}
	for _, m := range uniq {
		for i := 0; i < replicas; i++ {
			h := fnv64a(m + "#" + strconv.Itoa(i))
			r.points = append(r.points, ringPoint{hash: h, member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Owner returns the member that owns key, or "" for an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := fnv64a(key)
	// First point with hash >= h, wrapping to points[0].
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// Members returns the deduplicated, sorted member set.
func (r *Ring) Members() []string {
	return append([]string(nil), r.members...)
}

// Replicas returns the virtual-node count per member.
func (r *Ring) Replicas() int { return r.replicas }

// fnv64a is FNV-1a over the bytes of s, inlined to avoid the
// hash/fnv allocation on the Owner hot path, with a murmur-style
// finalizer on top. Raw FNV-1a has weak high-bit avalanche for short,
// similar inputs (daemon addresses differing in one digit; vnode
// suffixes), and ring ordering compares full 64-bit values — without
// the finalizer one member's virtual nodes can capture most of the
// ring. The fmix64 rounds spread every input bit across the word.
func fnv64a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
