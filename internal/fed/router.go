package fed

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"simfs/internal/netproto"
)

// Router is the federation front-end: it speaks the ordinary client
// protocol (hello handshake, binary codec, reply coalescing) and
// forwards every data-plane op to the daemon owning its context on the
// consistent-hash ring. Forwarding reuses the batching fast path: a
// pipelined client batch is decoded, each envelope re-encoded into the
// owning peer's write buffer with a remapped request ID, and every
// touched peer flushed once per batch; replies demux back through the
// per-session ID table and coalesce into one write to the client.
//
// Peer connections are per client session, carrying the client's own
// name in their hello: the owning daemon sees one session per client
// and its reference/subscription cleanup on disconnect keeps working
// unchanged. Control-plane reads that have no single owner (contexts,
// stats) fan out to every member and merge.
//
// When a peer daemon dies, in-flight requests routed to it are
// answered with structured draining frames and later ops fail busy
// until the daemon returns — the same retryable codes a drained
// context surfaces, so reconnecting clients need no new error
// handling.
type Router struct {
	ring *Ring
	logf func(string, ...any)

	// CallTimeout bounds control-plane fan-out calls (contexts, stats,
	// sched-*). Set before Serve.
	CallTimeout time.Duration

	ln     net.Listener
	mu     sync.Mutex
	conns  map[net.Conn]*rsession
	closed bool
	wg     sync.WaitGroup
}

// NewRouter builds a router over the given daemon addresses. replicas
// is the ring's virtual-node count (<=0 for the default); logf may be
// nil.
func NewRouter(peerAddrs []string, replicas int, logf func(string, ...any)) *Router {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Router{
		ring:        NewRing(replicas, peerAddrs...),
		logf:        logf,
		CallTimeout: 10 * time.Second,
		conns:       map[net.Conn]*rsession{},
	}
}

// Ring exposes the routing table (tests assert placement against it).
func (r *Router) Ring() *Ring { return r.ring }

// Listen binds the router to addr (port 0 for ephemeral).
func (r *Router) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("fed: %w", err)
	}
	r.ln = ln
	return nil
}

// Addr returns the bound address.
func (r *Router) Addr() string {
	if r.ln == nil {
		return ""
	}
	return r.ln.Addr().String()
}

// Serve accepts client connections until Close.
func (r *Router) Serve() error {
	if r.ln == nil {
		return errors.New("fed: Serve before Listen")
	}
	for {
		conn, err := r.ln.Accept()
		if err != nil {
			r.mu.Lock()
			closed := r.closed
			r.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		sess := &rsession{
			conn:   conn,
			br:     bufio.NewReaderSize(conn, 32<<10),
			codec:  netproto.JSON,
			r:      r,
			peers:  map[string]*PeerConn{},
			routes: map[uint64]peerRoute{},
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			conn.Close()
			return nil
		}
		r.conns[conn] = sess
		r.mu.Unlock()
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			r.handle(sess)
		}()
	}
}

// Close stops accepting and closes every client session (their peer
// connections close with them, so the daemons run disconnect cleanup
// for each proxied client).
func (r *Router) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	sessions := make([]*rsession, 0, len(r.conns))
	for _, sess := range r.conns {
		sessions = append(sessions, sess)
	}
	r.mu.Unlock()
	if r.ln != nil {
		r.ln.Close()
	}
	for _, sess := range sessions {
		sess.conn.Close()
	}
	r.wg.Wait()
}

// peerRoute remembers where a live client subscription was forwarded,
// for unsubscribe remapping.
type peerRoute struct {
	pc     *PeerConn
	peerID uint64
}

// rsession is one client connection through the router.
type rsession struct {
	conn  net.Conn
	br    *bufio.Reader
	codec netproto.Codec
	r     *Router

	client  string
	version int

	wmu  sync.Mutex
	wbuf bytes.Buffer

	// mu guards peers (this session's sticky per-daemon connections)
	// and routes (client request ID → peer route for live streams).
	mu     sync.Mutex
	peers  map[string]*PeerConn
	routes map[uint64]peerRoute
	closed bool
}

func (sess *rsession) reply(resp netproto.Response) {
	sess.wmu.Lock()
	sess.enqueueLocked(resp)
	sess.wmu.Unlock()
}

func (sess *rsession) send(resp netproto.Response) {
	sess.wmu.Lock()
	if sess.enqueueLocked(resp) {
		sess.flushLocked()
	}
	sess.wmu.Unlock()
}

func (sess *rsession) flush() {
	sess.wmu.Lock()
	sess.flushLocked()
	sess.wmu.Unlock()
}

func (sess *rsession) enqueueLocked(resp netproto.Response) bool {
	if err := sess.codec.EncodeFrame(&sess.wbuf, resp); err != nil {
		sess.r.logf("fed: encode for %s: %v", sess.conn.RemoteAddr(), err)
		sess.conn.Close()
		return false
	}
	return true
}

func (sess *rsession) flushLocked() {
	if sess.wbuf.Len() == 0 {
		return
	}
	_, err := sess.conn.Write(sess.wbuf.Bytes())
	sess.wbuf.Reset()
	if err != nil {
		sess.r.logf("fed: write to %s: %v", sess.conn.RemoteAddr(), err)
		sess.conn.Close()
	}
}

// peer returns this session's connection to addr, dialing a fresh one
// if none is live. The conn's hello carries the client's own name, so
// the daemon's per-client accounting and disconnect cleanup see the
// real client, not the router.
func (sess *rsession) peer(addr string) (*PeerConn, error) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.closed {
		return nil, errors.New("fed: session closing")
	}
	if pc := sess.peers[addr]; pc != nil && !pc.Broken() {
		return pc, nil
	}
	delete(sess.peers, addr)
	pc, err := DialPeer(addr, sess.client, func() { sess.flush() })
	if err != nil {
		return nil, err
	}
	sess.peers[addr] = pc
	return pc, nil
}

// flushPeers pushes every buffered forwarded request out, one write
// per touched peer.
func (sess *rsession) flushPeers() {
	sess.mu.Lock()
	peers := make([]*PeerConn, 0, len(sess.peers))
	for _, pc := range sess.peers {
		peers = append(peers, pc)
	}
	sess.mu.Unlock()
	for _, pc := range peers {
		pc.Flush()
	}
}

func (sess *rsession) addRoute(clientID uint64, rt peerRoute) {
	sess.mu.Lock()
	sess.routes[clientID] = rt
	sess.mu.Unlock()
}

func (sess *rsession) dropRoute(clientID uint64) (peerRoute, bool) {
	sess.mu.Lock()
	rt, ok := sess.routes[clientID]
	delete(sess.routes, clientID)
	sess.mu.Unlock()
	return rt, ok
}

func (r *Router) handle(sess *rsession) {
	conn := sess.conn
	defer func() {
		sess.flush()
		conn.Close()
		r.mu.Lock()
		delete(r.conns, conn)
		r.mu.Unlock()
		// Closing the per-session peer conns is the whole disconnect
		// story: each daemon sees its session for this client drop and
		// runs its own reference/subscription cleanup.
		sess.mu.Lock()
		sess.closed = true
		peers := make([]*PeerConn, 0, len(sess.peers))
		for _, pc := range sess.peers {
			peers = append(peers, pc)
		}
		sess.peers = map[string]*PeerConn{}
		sess.mu.Unlock()
		for _, pc := range peers {
			pc.Close()
		}
	}()
	for {
		var env netproto.Envelope
		if err := sess.codec.DecodeFrame(sess.br, &env); err != nil {
			var fe *netproto.FrameError
			if errors.As(err, &fe) && fe.Recoverable {
				sess.send(netproto.Response{ID: fe.ID, Code: netproto.CodeFrame, Err: err.Error()})
				continue
			}
			if err != io.EOF {
				r.logf("fed: read from %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		if sess.version == 0 && env.Op != netproto.OpHello {
			sess.send(netproto.Response{ID: env.ID, Code: netproto.CodeVersion,
				Err: fmt.Sprintf("protocol handshake required: first frame must be %q (router speaks protocol %d)",
					netproto.OpHello, netproto.ProtoVersion)})
			return
		}
		if !r.dispatch(sess, env) {
			return
		}
		if !netproto.FrameBuffered(sess.br) {
			// Requests first (the daemons can start working), then any
			// locally produced replies, one write each.
			sess.flushPeers()
			sess.flush()
		}
	}
}

// streamOp reports whether op answers with a multi-frame stream.
func streamOp(op string) bool {
	switch op {
	case netproto.OpWait, netproto.OpAcquire, netproto.OpSubscribe, netproto.OpFedWatch:
		return true
	}
	return false
}

// contextOf extracts the routing key (context name) from a data-plane
// envelope.
func contextOf(env netproto.Envelope) (string, error) {
	switch env.Op {
	case netproto.OpOpen, netproto.OpWait, netproto.OpRelease,
		netproto.OpEstWait, netproto.OpBitrep:
		var b netproto.FileBody
		if err := env.Decode(&b); err != nil {
			return "", err
		}
		return b.Context, nil
	case netproto.OpAcquire, netproto.OpPrefetch, netproto.OpSubscribe, netproto.OpFedWatch:
		var b netproto.FilesBody
		if err := env.Decode(&b); err != nil {
			return "", err
		}
		return b.Context, nil
	case netproto.OpContextInfo, netproto.OpStats, netproto.OpRescan,
		netproto.OpDrain, netproto.OpResume, netproto.OpCtxDeregister,
		netproto.OpQuarantineReset:
		var b netproto.CtxBody
		if err := env.Decode(&b); err != nil {
			return "", err
		}
		return b.Context, nil
	case netproto.OpRegSum:
		var b netproto.ChecksumBody
		if err := env.Decode(&b); err != nil {
			return "", err
		}
		return b.Context, nil
	case netproto.OpCachePolicySet:
		var b netproto.CachePolicyBody
		if err := env.Decode(&b); err != nil {
			return "", err
		}
		return b.Context, nil
	case netproto.OpCtxRegister:
		var b netproto.CtxRegisterBody
		if err := env.Decode(&b); err != nil {
			return "", err
		}
		if b.Context == nil {
			return "", nil
		}
		return b.Context.Name, nil
	}
	return "", fmt.Errorf("fed: op %q has no routing context", env.Op)
}

// dispatch serves one client envelope; it reports whether the
// connection should stay open.
func (r *Router) dispatch(sess *rsession, env netproto.Envelope) bool {
	id := env.ID
	switch env.Op {
	case netproto.OpHello:
		if sess.version != 0 {
			sess.reply(netproto.Response{ID: id, Code: netproto.CodeBadRequest,
				Err: "duplicate hello: the handshake already completed"})
			return true
		}
		var hb netproto.HelloBody
		if err := env.Decode(&hb); err != nil {
			sess.reply(netproto.Response{ID: id, Code: netproto.CodeBadRequest, Err: err.Error()})
			return true
		}
		if hb.Version < netproto.MinProtoVersion {
			sess.reply(netproto.Response{ID: id, Code: netproto.CodeVersion,
				Err: fmt.Sprintf("peer speaks protocol %d; router requires %d..%d",
					hb.Version, netproto.MinProtoVersion, netproto.ProtoVersion)})
			return false
		}
		ver := hb.Version
		if ver > netproto.ProtoVersion {
			ver = netproto.ProtoVersion
		}
		sess.version = ver
		sess.client = hb.Client
		// The router always advertises the binary fast path; a JSON-only
		// daemon behind it is bridged by the per-peer codec negotiation.
		caps := []string{netproto.CapAdmin, netproto.CapWatch, netproto.CapPreempt,
			netproto.CapBinary, netproto.CapFed}
		useBinary := ver >= 3 && hasCap(hb.Caps, netproto.CapBinary)
		sess.reply(netproto.Response{ID: id, OK: true, Proto: &netproto.HelloInfo{
			Version: ver, Caps: caps}})
		if useBinary {
			sess.wmu.Lock()
			sess.codec = netproto.Binary
			sess.wmu.Unlock()
		}

	case netproto.OpPing:
		sess.reply(netproto.Response{ID: id, OK: true})

	case netproto.OpPeers:
		sess.mu.Lock()
		live := make(map[string]bool, len(sess.peers))
		for addr, pc := range sess.peers {
			live[addr] = !pc.Broken()
		}
		sess.mu.Unlock()
		members := r.ring.Members()
		infos := make([]netproto.PeerInfo, len(members))
		for i, addr := range members {
			infos[i] = netproto.PeerInfo{Addr: addr, Role: "member", Connected: live[addr]}
		}
		sess.reply(netproto.Response{ID: id, OK: true, Peers: infos})

	case netproto.OpContexts:
		r.fanContexts(sess, id)

	case netproto.OpSchedGet:
		r.fanSchedGet(sess, id)

	case netproto.OpSchedSet:
		r.fanSchedSet(sess, id, env)

	case netproto.OpUnsubscribe:
		var b netproto.UnsubscribeBody
		if err := env.Decode(&b); err != nil {
			sess.reply(netproto.Response{ID: id, Code: netproto.CodeBadRequest, Err: err.Error()})
			return true
		}
		if rt, ok := sess.dropRoute(b.SubID); ok {
			rt.pc.Post(netproto.OpUnsubscribe, netproto.UnsubscribeBody{SubID: rt.peerID})
		}
		// Unknown subscriptions ack like the daemon does (idempotent).
		sess.reply(netproto.Response{ID: id, OK: true})

	case netproto.OpStats:
		var b netproto.CtxBody
		if err := env.Decode(&b); err != nil {
			sess.reply(netproto.Response{ID: id, Code: netproto.CodeBadRequest, Err: err.Error()})
			return true
		}
		r.fanStats(sess, id, b.Context)

	case netproto.OpQuarantineReset:
		var b netproto.CtxBody
		if err := env.Decode(&b); err != nil {
			sess.reply(netproto.Response{ID: id, Code: netproto.CodeBadRequest, Err: err.Error()})
			return true
		}
		if b.Context == "" {
			// "All contexts" spans every daemon: fan out and sum.
			r.fanQuarantineReset(sess, id)
			return true
		}
		r.proxy(sess, env, b.Context)

	default:
		ctxName, err := contextOf(env)
		if err != nil {
			sess.reply(netproto.Response{ID: id, Code: netproto.CodeBadRequest, Err: err.Error()})
			return true
		}
		r.proxy(sess, env, ctxName)
	}
	return true
}

// proxy forwards env to the daemon owning ctxName, remapping the
// request ID and demuxing every response frame (including streams)
// back onto this session.
func (r *Router) proxy(sess *rsession, env netproto.Envelope, ctxName string) {
	clientID := env.ID
	stream := streamOp(env.Op)
	fail := func(err error) {
		resp := netproto.Response{ID: clientID, Code: netproto.CodeBusy,
			Err: fmt.Sprintf("context %q unreachable: %v", ctxName, err), Done: stream}
		sess.reply(resp)
	}
	owner := r.ring.Owner(ctxName)
	if owner == "" {
		fail(errors.New("no federation members configured"))
		return
	}
	pc, err := sess.peer(owner)
	if err != nil {
		fail(err)
		return
	}
	peerID, err := pc.Forward(env, stream, func(resp netproto.Response) {
		resp.ID = clientID
		if stream && terminalResponse(resp) {
			sess.dropRoute(clientID)
		}
		// Enqueued, not flushed: the peer's read loop flushes the
		// session once its response batch is drained (onBatch).
		sess.reply(resp)
	})
	if err != nil {
		fail(err)
		return
	}
	if stream {
		sess.addRoute(clientID, peerRoute{pc: pc, peerID: peerID})
	}
}

// fanResult is one member's answer to a fan-out call.
type fanResult struct {
	addr string
	resp netproto.Response
	err  error
}

// fanout round-trips op against every ring member concurrently.
func (r *Router) fanout(sess *rsession, op string, body any) []fanResult {
	members := r.ring.Members()
	results := make([]fanResult, len(members))
	var wg sync.WaitGroup
	for i, addr := range members {
		results[i].addr = addr
		pc, err := sess.peer(addr)
		if err != nil {
			results[i].err = err
			continue
		}
		wg.Add(1)
		go func(i int, pc *PeerConn) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), r.CallTimeout)
			defer cancel()
			results[i].resp, results[i].err = pc.Call(ctx, op, body)
		}(i, pc)
	}
	wg.Wait()
	return results
}

// fanFail reduces an all-failed fan-out to one client response,
// preferring an application error a daemon actually returned over
// transport errors.
func fanFail(sess *rsession, id uint64, results []fanResult) {
	for _, res := range results {
		if res.err == nil && res.resp.Code != "" {
			resp := res.resp
			resp.ID = id
			sess.reply(resp)
			return
		}
	}
	msgs := make([]string, 0, len(results))
	for _, res := range results {
		if res.err != nil {
			msgs = append(msgs, res.err.Error())
		}
	}
	sess.reply(netproto.Response{ID: id, Code: netproto.CodeBusy,
		Err: "no federation peer reachable: " + joinMsgs(msgs)})
}

func joinMsgs(msgs []string) string {
	if len(msgs) == 0 {
		return "no members"
	}
	out := msgs[0]
	for _, m := range msgs[1:] {
		out += "; " + m
	}
	return out
}

// fanContexts merges every member's context list (sorted union).
func (r *Router) fanContexts(sess *rsession, id uint64) {
	results := r.fanout(sess, netproto.OpContexts, nil)
	seen := map[string]bool{}
	anyOK := false
	for _, res := range results {
		if res.err != nil || !res.resp.OK {
			continue
		}
		anyOK = true
		for _, n := range res.resp.Names {
			seen[n] = true
		}
	}
	if !anyOK {
		fanFail(sess, id, results)
		return
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	sess.reply(netproto.Response{ID: id, OK: true, Names: names})
}

// fanSchedGet answers with the first reachable member's scheduler
// config (members are normally configured identically).
func (r *Router) fanSchedGet(sess *rsession, id uint64) {
	results := r.fanout(sess, netproto.OpSchedGet, nil)
	for _, res := range results {
		if res.err == nil && res.resp.OK && res.resp.Sched != nil {
			resp := res.resp
			resp.ID = id
			sess.reply(resp)
			return
		}
	}
	fanFail(sess, id, results)
}

// fanSchedSet applies a scheduler reconfiguration on every member.
// The fan-out is not atomic across daemons: a member failing mid-way
// leaves the others reconfigured (the error response says which).
func (r *Router) fanSchedSet(sess *rsession, id uint64, env netproto.Envelope) {
	var body netproto.SchedSetBody
	if err := env.Decode(&body); err != nil {
		sess.reply(netproto.Response{ID: id, Code: netproto.CodeBadRequest, Err: err.Error()})
		return
	}
	results := r.fanout(sess, netproto.OpSchedSet, body)
	var ok *netproto.Response
	for i, res := range results {
		if res.err != nil {
			sess.reply(netproto.Response{ID: id, Code: netproto.CodeBusy,
				Err: fmt.Sprintf("sched-set incomplete: member %s unreachable: %v", res.addr, res.err)})
			return
		}
		if res.resp.Code != "" {
			resp := res.resp
			resp.ID = id
			resp.Err = fmt.Sprintf("sched-set incomplete: member %s: %s", res.addr, resp.Err)
			sess.reply(resp)
			return
		}
		ok = &results[i].resp
	}
	if ok == nil {
		sess.reply(netproto.Response{ID: id, Code: netproto.CodeBusy, Err: "no federation members configured"})
		return
	}
	resp := *ok
	resp.ID = id
	sess.reply(resp)
}

// fanQuarantineReset clears the quarantine ledger on every member and
// sums the released-interval counts.
func (r *Router) fanQuarantineReset(sess *rsession, id uint64) {
	results := r.fanout(sess, netproto.OpQuarantineReset, netproto.CtxBody{})
	total := 0
	anyOK := false
	for _, res := range results {
		if res.err == nil && res.resp.OK {
			anyOK = true
			total += res.resp.Count
		}
	}
	if !anyOK {
		fanFail(sess, id, results)
		return
	}
	sess.reply(netproto.Response{ID: id, OK: true, Count: total})
}

// fanStats merges per-context stats across the members that know the
// context: counters sum, the drain flag ORs, per-op latency entries
// merge (counts sum, percentiles take the worst member). Only members
// answering no_such_context are ignored — the context's shards plus
// the daemon-global scheduler counters of every hosting member add up.
func (r *Router) fanStats(sess *rsession, id uint64, ctxName string) {
	results := r.fanout(sess, netproto.OpStats, netproto.CtxBody{Context: ctxName})
	var merged *netproto.Stats
	for _, res := range results {
		if res.err != nil || !res.resp.OK || res.resp.Stats == nil {
			continue
		}
		if merged == nil {
			cp := *res.resp.Stats
			merged = &cp
			continue
		}
		mergeStats(merged, res.resp.Stats)
	}
	if merged == nil {
		fanFail(sess, id, results)
		return
	}
	sess.reply(netproto.Response{ID: id, OK: true, Stats: merged})
}

// mergeStats accumulates src into dst. The fieldsync analyzer holds it
// to Stats's full field list: a counter added to the wire struct but
// not merged here would silently vanish from federated stat fan-ins.
//
//simfs:sync netproto.Stats
func mergeStats(dst, src *netproto.Stats) {
	dst.Opens += src.Opens
	dst.Hits += src.Hits
	dst.Misses += src.Misses
	dst.Restarts += src.Restarts
	dst.DemandRestarts += src.DemandRestarts
	dst.PrefetchLaunches += src.PrefetchLaunches
	dst.DroppedPrefetch += src.DroppedPrefetch
	dst.StepsProduced += src.StepsProduced
	dst.Evictions += src.Evictions
	dst.Kills += src.Kills
	dst.Failures += src.Failures
	dst.PollutionResets += src.PollutionResets
	dst.Draining = dst.Draining || src.Draining
	if dst.CachePolicy == "" {
		dst.CachePolicy = src.CachePolicy
	}
	dst.LockAcquisitions += src.LockAcquisitions
	dst.LockContended += src.LockContended
	dst.LockWaitNs += src.LockWaitNs
	dst.SchedQueueDepth += src.SchedQueueDepth
	dst.SchedCoalesced += src.SchedCoalesced
	dst.SchedDropped += src.SchedDropped
	dst.SchedCanceled += src.SchedCanceled
	dst.SchedDemandWaitNs += src.SchedDemandWaitNs
	dst.SchedGuidedWaitNs += src.SchedGuidedWaitNs
	dst.SchedAgentWaitNs += src.SchedAgentWaitNs
	dst.SchedPreempted += src.SchedPreempted
	dst.SchedPromoted += src.SchedPromoted
	dst.SchedQuotaRounds += src.SchedQuotaRounds
	dst.SchedQuotaDeferred += src.SchedQuotaDeferred
	dst.SchedRetries += src.SchedRetries
	dst.SchedQuarantined += src.SchedQuarantined
	if len(src.SchedClientLoads) > 0 {
		if dst.SchedClientLoads == nil {
			dst.SchedClientLoads = make(map[string]uint64, len(src.SchedClientLoads))
		}
		for client, steps := range src.SchedClientLoads {
			dst.SchedClientLoads[client] += steps
		}
	}
	dst.Ops = mergeOpLatencies(dst.Ops, src.Ops)
}

// mergeOpLatencies merges per-op summaries by name: counts sum and the
// percentiles take the slowest member (the bound an operator cares
// about), sorted by op for a deterministic wire order.
func mergeOpLatencies(a, b []netproto.OpLatency) []netproto.OpLatency {
	if len(a) == 0 {
		return b
	}
	byOp := make(map[string]netproto.OpLatency, len(a)+len(b))
	for _, l := range a {
		byOp[l.Op] = l
	}
	for _, l := range b {
		if have, ok := byOp[l.Op]; ok {
			have.Count += l.Count
			if l.P50Ns > have.P50Ns {
				have.P50Ns = l.P50Ns
			}
			if l.P99Ns > have.P99Ns {
				have.P99Ns = l.P99Ns
			}
			byOp[l.Op] = have
		} else {
			byOp[l.Op] = l
		}
	}
	out := make([]netproto.OpLatency, 0, len(byOp))
	for _, l := range byOp {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Op < out[j].Op })
	return out
}
