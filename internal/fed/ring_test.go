package fed

import (
	"fmt"
	"math/rand"
	"testing"
)

func testKeys(n int) []string {
	rng := rand.New(rand.NewSource(42))
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("ctx-%d-%d", i, rng.Int63())
	}
	return keys
}

func TestRingDeterministicPlacement(t *testing.T) {
	keys := testKeys(200)
	a := NewRing(64, "daemon-a", "daemon-b", "daemon-c")
	b := NewRing(64, "daemon-c", "daemon-a", "daemon-b") // different order
	c := NewRing(64, "daemon-b", "daemon-c", "daemon-a", "daemon-a")
	for _, k := range keys {
		oa, ob, oc := a.Owner(k), b.Owner(k), c.Owner(k)
		if oa != ob || oa != oc {
			t.Fatalf("placement of %q depends on member order: %q vs %q vs %q", k, oa, ob, oc)
		}
	}
	// Rebuilding the identical ring yields identical placement.
	d := NewRing(64, "daemon-a", "daemon-b", "daemon-c")
	for _, k := range keys {
		if a.Owner(k) != d.Owner(k) {
			t.Fatalf("placement of %q not stable across ring rebuilds", k)
		}
	}
}

func TestRingEmptyAndSingle(t *testing.T) {
	if got := NewRing(16).Owner("anything"); got != "" {
		t.Fatalf("empty ring owner = %q, want \"\"", got)
	}
	one := NewRing(16, "only")
	for _, k := range testKeys(50) {
		if got := one.Owner(k); got != "only" {
			t.Fatalf("single-member ring owner = %q, want \"only\"", got)
		}
	}
}

// TestRingBalance is a property test: for member counts 1..8, every
// member must own a reasonable share of a seeded key population. With
// 128 virtual nodes the max/min skew is well under 3x.
func TestRingBalance(t *testing.T) {
	keys := testKeys(4000)
	for n := 1; n <= 8; n++ {
		members := make([]string, n)
		for i := range members {
			members[i] = fmt.Sprintf("daemon-%c", 'a'+i)
		}
		r := NewRing(0, members...) // default replica count
		counts := make(map[string]int, n)
		for _, k := range keys {
			counts[r.Owner(k)]++
		}
		fair := len(keys) / n
		for _, m := range members {
			got := counts[m]
			if got < fair/3 || got > fair*3 {
				t.Errorf("n=%d: member %s owns %d keys, fair share %d (skew > 3x)", n, m, got, fair)
			}
		}
	}
}

// TestRingMinimalMovement: adding a member must only move keys TO the
// new member, and roughly 1/N of them; removing it restores the
// original placement exactly.
func TestRingMinimalMovement(t *testing.T) {
	keys := testKeys(4000)
	base := NewRing(0, "daemon-a", "daemon-b", "daemon-c")
	grown := NewRing(0, "daemon-a", "daemon-b", "daemon-c", "daemon-d")

	moved := 0
	for _, k := range keys {
		was, now := base.Owner(k), grown.Owner(k)
		if was != now {
			moved++
			if now != "daemon-d" {
				t.Fatalf("key %q moved %q -> %q on member add; keys may only move to the new member", k, was, now)
			}
		}
	}
	if moved == 0 {
		t.Fatal("no keys moved to the new member")
	}
	if frac := float64(moved) / float64(len(keys)); frac > 0.5 {
		t.Fatalf("%.0f%% of keys moved on adding 1 of 4 members; want roughly 25%%", frac*100)
	}

	shrunk := NewRing(0, "daemon-a", "daemon-b", "daemon-c")
	for _, k := range keys {
		if base.Owner(k) != shrunk.Owner(k) {
			t.Fatalf("removing the added member did not restore placement for %q", k)
		}
	}
}
