package fed

// White-box tests for the router's stats fan-out merge: how one
// context's counters and per-op latency percentiles combine across the
// federation members that host its shards. These pin the exact merge
// algebra (counts sum, percentile bounds take the worst member,
// deterministic op order) that TestFederationRouterStats exercises
// end-to-end.

import (
	"reflect"
	"testing"

	"simfs/internal/netproto"
)

func TestMergeOpLatenciesCountsSumPercentilesMax(t *testing.T) {
	a := []netproto.OpLatency{
		{Op: "open", Count: 10, P50Ns: 1024, P99Ns: 16384},
		{Op: "wait", Count: 3, P50Ns: 2048, P99Ns: 1 << 20},
	}
	b := []netproto.OpLatency{
		{Op: "open", Count: 7, P50Ns: 4096, P99Ns: 8192},
	}
	got := mergeOpLatencies(a, b)
	want := []netproto.OpLatency{
		// Counts sum across members; each percentile independently takes
		// the slowest member (here a's p99 but b's p50).
		{Op: "open", Count: 17, P50Ns: 4096, P99Ns: 16384},
		{Op: "wait", Count: 3, P50Ns: 2048, P99Ns: 1 << 20},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("mergeOpLatencies = %+v, want %+v", got, want)
	}
}

func TestMergeOpLatenciesDisjointOpsSorted(t *testing.T) {
	a := []netproto.OpLatency{{Op: "wait", Count: 1, P50Ns: 10, P99Ns: 20}}
	b := []netproto.OpLatency{
		{Op: "release", Count: 2, P50Ns: 30, P99Ns: 40},
		{Op: "open", Count: 4, P50Ns: 50, P99Ns: 60},
	}
	got := mergeOpLatencies(a, b)
	want := []netproto.OpLatency{
		{Op: "open", Count: 4, P50Ns: 50, P99Ns: 60},
		{Op: "release", Count: 2, P50Ns: 30, P99Ns: 40},
		{Op: "wait", Count: 1, P50Ns: 10, P99Ns: 20},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("disjoint merge = %+v, want union sorted by op %+v", got, want)
	}
}

func TestMergeOpLatenciesEmptySides(t *testing.T) {
	b := []netproto.OpLatency{{Op: "open", Count: 1, P50Ns: 10, P99Ns: 20}}
	if got := mergeOpLatencies(nil, b); !reflect.DeepEqual(got, b) {
		t.Errorf("mergeOpLatencies(nil, b) = %+v, want b", got)
	}
	a := []netproto.OpLatency{{Op: "wait", Count: 2, P50Ns: 5, P99Ns: 6}}
	if got := mergeOpLatencies(a, nil); !reflect.DeepEqual(got, a) {
		t.Errorf("mergeOpLatencies(a, nil) = %+v, want a", got)
	}
}

// TestMergeStatsAccumulates covers the counter algebra of the stats
// fan-out, including the scheduler fields added for the autoscale
// loop: SchedPromoted sums and the per-client DRR load ledger merges
// by client name (a client opening against two shards on different
// members must show its total, not one member's share).
func TestMergeStatsAccumulates(t *testing.T) {
	dst := &netproto.Stats{
		Opens: 5, Hits: 3, Misses: 2,
		CachePolicy:       "lru",
		SchedDemandWaitNs: 100,
		SchedPreempted:    1,
		SchedPromoted:     2,
		SchedClientLoads:  nil, // first member reported none
		Ops:               []netproto.OpLatency{{Op: "open", Count: 5, P50Ns: 100, P99Ns: 200}},
	}
	src := &netproto.Stats{
		Opens: 7, Hits: 1, Misses: 6,
		Draining:          true,
		SchedDemandWaitNs: 50,
		SchedPreempted:    4,
		SchedPromoted:     3,
		SchedClientLoads:  map[string]uint64{"c1": 8, "c2": 2},
		Ops:               []netproto.OpLatency{{Op: "open", Count: 2, P50Ns: 400, P99Ns: 150}},
	}
	mergeStats(dst, src)

	if dst.Opens != 12 || dst.Hits != 4 || dst.Misses != 8 {
		t.Errorf("counter sums = opens %d hits %d misses %d, want 12/4/8", dst.Opens, dst.Hits, dst.Misses)
	}
	if !dst.Draining {
		t.Error("Draining should OR across members")
	}
	if dst.CachePolicy != "lru" {
		t.Errorf("CachePolicy = %q, want first member's %q kept", dst.CachePolicy, "lru")
	}
	if dst.SchedDemandWaitNs != 150 || dst.SchedPreempted != 5 || dst.SchedPromoted != 5 {
		t.Errorf("sched sums = wait %d preempted %d promoted %d, want 150/5/5",
			dst.SchedDemandWaitNs, dst.SchedPreempted, dst.SchedPromoted)
	}
	wantLoads := map[string]uint64{"c1": 8, "c2": 2}
	if !reflect.DeepEqual(dst.SchedClientLoads, wantLoads) {
		t.Errorf("SchedClientLoads = %v, want %v", dst.SchedClientLoads, wantLoads)
	}
	wantOps := []netproto.OpLatency{{Op: "open", Count: 7, P50Ns: 400, P99Ns: 200}}
	if !reflect.DeepEqual(dst.Ops, wantOps) {
		t.Errorf("Ops = %+v, want %+v", dst.Ops, wantOps)
	}

	// A third member adds to an existing client and introduces a new one.
	mergeStats(dst, &netproto.Stats{SchedClientLoads: map[string]uint64{"c1": 1, "c3": 4}})
	wantLoads = map[string]uint64{"c1": 9, "c2": 2, "c3": 4}
	if !reflect.DeepEqual(dst.SchedClientLoads, wantLoads) {
		t.Errorf("after third member, SchedClientLoads = %v, want %v", dst.SchedClientLoads, wantLoads)
	}
}
