package fed

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"simfs/internal/netproto"
)

// redialBackoff is the minimum interval between dial attempts to a
// peer that just failed, so a dead peer cannot turn every subscribe
// into a connect timeout.
const redialBackoff = time.Second

// Bridge is a daemon's outbound half of cross-daemon notification:
// the per-peer subscription manager the server hands files to when no
// local simulation will produce them (see server.PeerNotifier). For
// each interest it opens a fed-watch on every peer — the shape of
// bitswap's sublist ledger: the peers remember what we want, we
// remember what we asked for — and republishes the first resolution of
// each file into the local notify hub via the publish callback. The
// hub's one-shot subscriptions make delivery to local watchers
// exactly-once even when several peers answer.
//
// Semantics are deliberately best-effort, like the store it overlays:
// a dead peer drops the interests it held (clients re-subscribe or
// poll; the files remain pullable), and events for files nobody here
// watches anymore are discarded by the hub.
type Bridge struct {
	name string
	// publish republishes a remote file event into the local hub;
	// wired by server.Stack.EnablePeers.
	publish func(ctxName, file string, ready bool, errMsg string, attempts int, retryAfterNs int64)

	mu       sync.Mutex
	addrs    []string
	conns    map[string]*PeerConn
	lastFail map[string]time.Time
	closed   bool
	// groups is the live sublist: watch groups with undelivered files.
	// A peer link that dropped and was redialed lost the sublist the old
	// connection held, so every live group re-issues its remaining
	// interests on the fresh conn (see WatchRemote).
	groups map[*watchGroup]struct{}

	// watched is the live sublist size (topics with an undelivered
	// remote interest); delivered counts events accepted from any peer.
	watched   atomic.Int64
	delivered atomic.Uint64
}

// NewBridge builds a bridge dialing the given peer daemon addresses
// lazily. name identifies this daemon to its peers ("fed:<name>" on
// the wire). publish must be non-nil.
func NewBridge(name string, peerAddrs []string, publish func(ctxName, file string, ready bool, errMsg string, attempts int, retryAfterNs int64)) *Bridge {
	addrs := append([]string(nil), peerAddrs...)
	sort.Strings(addrs)
	return &Bridge{
		name:     name,
		publish:  publish,
		addrs:    addrs,
		conns:    map[string]*PeerConn{},
		lastFail: map[string]time.Time{},
		groups:   map[*watchGroup]struct{}{},
	}
}

// Close tears down every peer connection. Pending interests die with
// them (best-effort semantics).
func (b *Bridge) Close() {
	b.mu.Lock()
	b.closed = true
	conns := make([]*PeerConn, 0, len(b.conns))
	for _, pc := range b.conns {
		conns = append(conns, pc)
	}
	b.conns = map[string]*PeerConn{}
	b.mu.Unlock()
	for _, pc := range conns {
		pc.Close()
	}
}

// peerLocked returns a live conn to addr, dialing if needed. Callers
// hold b.mu. A nil conn means the peer is currently unreachable; fresh
// reports that this call just (re)dialed, so the connection carries
// none of the interests the previous link held.
//
//simfs:allow wallclock redial backoff paces real peer dials, not simulation
func (b *Bridge) peerLocked(addr string) (conn *PeerConn, fresh bool) {
	if pc := b.conns[addr]; pc != nil && !pc.Broken() {
		return pc, false
	}
	delete(b.conns, addr)
	if time.Since(b.lastFail[addr]) < redialBackoff {
		return nil, false
	}
	pc, err := DialPeer(addr, "fed:"+b.name, nil)
	if err != nil {
		b.lastFail[addr] = time.Now()
		return nil, false
	}
	if !hasCap(pc.Caps(), netproto.CapFed) {
		// An old daemon that cannot serve fed-watch.
		pc.Close()
		b.lastFail[addr] = time.Now()
		return nil, false
	}
	delete(b.lastFail, addr)
	b.conns[addr] = pc
	return pc, true
}

// dropGroup removes a group from the live sublist once it has nothing
// left to re-arm (fully delivered or canceled).
func (b *Bridge) dropGroup(g *watchGroup) {
	b.mu.Lock()
	delete(b.groups, g)
	b.mu.Unlock()
}

// watchGroup tracks one WatchRemote call: which files already resolved
// (so N peers answering produce one publish), and the subscriptions to
// cancel.
type watchGroup struct {
	b       *Bridge
	ctxName string
	files   []string

	mu        sync.Mutex
	delivered map[string]bool
	remaining int
	canceled  bool
	subs      []groupSub
}

type groupSub struct {
	pc *PeerConn
	id uint64
}

// WatchRemote implements server.PeerNotifier: it opens a fed-watch for
// the files on every reachable peer and returns a cancel that
// withdraws the interest. Peers that are down are skipped — clients
// keep their local subscription and the next interest retries the
// dial.
func (b *Bridge) WatchRemote(ctxName string, files []string) func() {
	g := &watchGroup{b: b, ctxName: ctxName,
		files:     append([]string(nil), files...),
		delivered: make(map[string]bool, len(files)), remaining: len(files)}

	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return func() {}
	}
	peers := make([]*PeerConn, 0, len(b.addrs))
	var freshPeers []*PeerConn
	for _, addr := range b.addrs {
		pc, fresh := b.peerLocked(addr)
		if pc == nil {
			continue
		}
		peers = append(peers, pc)
		if fresh {
			freshPeers = append(freshPeers, pc)
		}
	}
	var rearm []*watchGroup
	if len(freshPeers) > 0 {
		rearm = make([]*watchGroup, 0, len(b.groups))
		for og := range b.groups {
			rearm = append(rearm, og)
		}
	}
	b.groups[g] = struct{}{}
	b.mu.Unlock()

	// A peer that just came back (or joined) lost the sublist its old
	// connection held: every still-live group re-issues its undelivered
	// interests on the fresh link before the new group arms.
	for _, pc := range freshPeers {
		for _, og := range rearm {
			og.subscribeOn(pc)
		}
	}
	for _, pc := range peers {
		g.subscribeOn(pc)
	}
	b.watched.Add(int64(len(files)))
	return g.cancel
}

// subscribeOn opens the group's fed-watch for its undelivered files on
// one peer connection — at group creation on every reachable peer, and
// again on any freshly redialed link (the peers' sublists are per
// connection, so a dropped link forgot us).
func (g *watchGroup) subscribeOn(pc *PeerConn) {
	g.mu.Lock()
	if g.canceled || g.remaining == 0 {
		g.mu.Unlock()
		return
	}
	for _, s := range g.subs {
		if s.pc == pc {
			// This exact connection already holds our interest (a group
			// armed while the link was alive): nothing to re-issue.
			g.mu.Unlock()
			return
		}
	}
	left := make([]string, 0, g.remaining)
	for _, f := range g.files {
		if !g.delivered[f] {
			left = append(left, f)
		}
	}
	g.mu.Unlock()

	id, err := pc.Subscribe(netproto.OpFedWatch,
		netproto.FilesBody{Context: g.ctxName, Files: left}, g.frameFrom(pc))
	if err != nil {
		return
	}
	g.mu.Lock()
	if g.canceled {
		g.mu.Unlock()
		pc.Post(netproto.OpUnsubscribe, netproto.UnsubscribeBody{SubID: id})
		pc.Flush()
		return
	}
	g.subs = append(g.subs, groupSub{pc: pc, id: id})
	g.mu.Unlock()
}

// frameFrom handles one peer's response frames for the group,
// collapsing duplicate answers across peers before publishing.
func (g *watchGroup) frameFrom(pc *PeerConn) func(netproto.Response) {
	return func(resp netproto.Response) {
		if resp.File == "" {
			// Terminal frame (done, draining, no_such_context, …): this
			// peer's stream is over. Interests it held die with it.
			return
		}
		g.mu.Lock()
		if g.canceled || g.delivered[resp.File] {
			g.mu.Unlock()
			return
		}
		g.delivered[resp.File] = true
		g.remaining--
		done := g.remaining == 0
		g.mu.Unlock()
		if done {
			g.b.dropGroup(g)
		}
		g.b.watched.Add(-1)
		g.b.delivered.Add(1)
		g.b.publish(g.ctxName, resp.File, resp.Ready, resp.Err, resp.Attempts, resp.RetryAfterNs)
	}
}

// cancel withdraws the group's interest from every peer. Idempotent.
func (g *watchGroup) cancel() {
	g.mu.Lock()
	if g.canceled {
		g.mu.Unlock()
		return
	}
	g.canceled = true
	subs := g.subs
	g.subs = nil
	left := g.remaining
	g.remaining = 0
	g.mu.Unlock()
	g.b.dropGroup(g)
	g.b.watched.Add(-int64(left))
	for _, s := range subs {
		if s.pc.Post(netproto.OpUnsubscribe, netproto.UnsubscribeBody{SubID: s.id}) == nil {
			s.pc.Flush()
		}
	}
}

// PeerInfos implements server.PeerNotifier: one "out" entry per
// configured peer. Topics is the bridge-wide live sublist size (every
// connected peer holds a watch for each), Events the total accepted
// from any peer.
func (b *Bridge) PeerInfos() []netproto.PeerInfo {
	topics := int(b.watched.Load())
	if topics < 0 {
		topics = 0
	}
	events := b.delivered.Load()
	b.mu.Lock()
	defer b.mu.Unlock()
	infos := make([]netproto.PeerInfo, 0, len(b.addrs))
	for _, addr := range b.addrs {
		pc := b.conns[addr]
		connected := pc != nil && !pc.Broken()
		info := netproto.PeerInfo{Addr: addr, Role: "out", Connected: connected}
		if connected {
			info.Topics = topics
			info.Events = events
		}
		infos = append(infos, info)
	}
	return infos
}
