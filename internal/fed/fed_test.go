// Integration tests for the federation tier: a consistent-hash router
// in front of real daemons, exercised with the ordinary dvlib client.
// Everything here is named TestFederation* so `make fed-smoke` can run
// the whole tier under the race detector with one -run pattern.
package fed_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"simfs/internal/dvlib"
	"simfs/internal/fed"
	"simfs/internal/model"
	"simfs/internal/netproto"
	"simfs/internal/server"
)

// fedCtx builds a small, fast context: 4 ms simulation start-up, 2 ms
// per output step, 64 steps.
func fedCtx(name string) *model.Context {
	return &model.Context{
		Name:               name,
		Grid:               model.Grid{DeltaD: 1, DeltaR: 4, Timesteps: 64},
		OutputBytes:        256,
		RestartBytes:       128,
		Tau:                2 * time.Millisecond,
		Alpha:              4 * time.Millisecond,
		DefaultParallelism: 1,
		MaxParallelism:     1,
		SMax:               4,
	}
}

// newFedStack starts one daemon with a seed context on an ephemeral
// port. configure runs after construction, before Serve.
func newFedStack(t *testing.T, seed string, configure func(*server.Stack)) (*server.Stack, string) {
	t.Helper()
	st, err := server.NewStack(t.TempDir(), 1, "DCL", fedCtx(seed))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.RunInitialSimulation(seed); err != nil {
		t.Fatal(err)
	}
	if configure != nil {
		configure(st)
	}
	if err := st.Server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go st.Server.Serve()
	t.Cleanup(func() {
		st.Close()
		st.Launcher.Wait()
	})
	return st, st.Server.Addr()
}

// startRouter runs a router over the given daemons on an ephemeral port.
func startRouter(t *testing.T, addrs ...string) (*fed.Router, string) {
	t.Helper()
	r := fed.NewRouter(addrs, 0, nil)
	if err := r.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go r.Serve()
	t.Cleanup(r.Close)
	return r, r.Addr()
}

// pickName generates a context name the ring places on the wanted owner.
func pickName(t *testing.T, ring *fed.Ring, owner string, used map[string]bool) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		name := fmt.Sprintf("fedctx%d", i)
		if used[name] {
			continue
		}
		if ring.Owner(name) == owner {
			used[name] = true
			return name
		}
	}
	t.Fatalf("no context name maps to %s", owner)
	return ""
}

// TestFederationRouterProxy covers the data plane through the router:
// contexts sharded across two daemons, open → wait → release on both
// shards through one client connection, fan-out contexts and merged
// stats.
func TestFederationRouterProxy(t *testing.T) {
	stA, addrA := newFedStack(t, "seed-a", nil)
	stB, addrB := newFedStack(t, "seed-b", nil)
	r, raddr := startRouter(t, addrA, addrB)

	used := map[string]bool{}
	nameA := pickName(t, r.Ring(), addrA, used)
	nameB := pickName(t, r.Ring(), addrB, used)
	if err := stA.RegisterContext(fedCtx(nameA), "DCL", true); err != nil {
		t.Fatal(err)
	}
	if err := stB.RegisterContext(fedCtx(nameB), "DCL", true); err != nil {
		t.Fatal(err)
	}

	c, err := dvlib.Dial(raddr, "fed-client")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if !c.HasCapability(netproto.CapFed) {
		t.Error("router does not advertise the fed capability")
	}

	names, err := c.Contexts()
	if err != nil {
		t.Fatal(err)
	}
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, want := range []string{"seed-a", "seed-b", nameA, nameB} {
		if !have[want] {
			t.Errorf("contexts fan-out union %v is missing %q", names, want)
		}
	}

	// One open→wait→release round per shard, then a re-open that must be
	// a cache hit on the owning daemon.
	for _, name := range []string{nameA, nameB} {
		ctx, err := c.Init(name)
		if err != nil {
			t.Fatalf("init %s: %v", name, err)
		}
		file := ctx.Filename(3)
		res, err := ctx.Open(file)
		if err != nil {
			t.Fatalf("open %s: %v", file, err)
		}
		if !res.Available {
			if err := ctx.WaitAvailable(file); err != nil {
				t.Fatalf("wait %s: %v", file, err)
			}
		}
		if err := ctx.Release(file); err != nil {
			t.Fatalf("release %s: %v", file, err)
		}
		res, err = ctx.Open(file)
		if err != nil || !res.Available {
			t.Fatalf("re-open %s = %+v, %v; want available", file, res, err)
		}
		ctx.Release(file)

		st, err := ctx.Stats()
		if err != nil {
			t.Fatalf("stats %s: %v", name, err)
		}
		if st.Opens < 2 {
			t.Errorf("merged stats for %s: opens = %d, want >= 2", name, st.Opens)
		}
		if len(st.Ops) == 0 {
			t.Errorf("merged stats for %s carry no per-op latencies", name)
		}
	}

	// The router's peers view lists both ring members as connected (the
	// session dialed both while fanning out).
	infos, err := c.Admin().Peers(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("router peers = %+v, want 2 members", infos)
	}
	for _, p := range infos {
		if p.Role != "member" || !p.Connected {
			t.Errorf("router peer %+v, want connected member", p)
		}
	}
}

// TestFederationVersionSkew pins codec bridging: a JSON-only daemon
// (DisableBinary, the deployed-previous-version shape) behind the
// router still serves a client that negotiated the binary fast path
// with the router.
func TestFederationVersionSkew(t *testing.T) {
	_, addr := newFedStack(t, "seed-old", func(st *server.Stack) {
		st.Server.DisableBinary = true
	})
	_, raddr := startRouter(t, addr)

	c, err := dvlib.Dial(raddr, "new-client")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.UsesBinary() {
		t.Error("client should negotiate binary with the router even over a JSON-only daemon")
	}
	ctx, err := c.Init("seed-old")
	if err != nil {
		t.Fatal(err)
	}
	file := ctx.Filename(2)
	if _, err := ctx.Open(file); err != nil {
		t.Fatal(err)
	}
	if err := ctx.WaitAvailable(file); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Release(file); err != nil {
		t.Fatal(err)
	}
}

// TestFederationCrossDaemonNotify is the acceptance scenario: a client
// watching through the router (subscription lands on the ring owner)
// observes a file produced on a different daemon — exactly once.
func TestFederationCrossDaemonNotify(t *testing.T) {
	stA, addrA := newFedStack(t, "seed-a", nil)
	stB, addrB := newFedStack(t, "seed-b", nil)
	r, raddr := startRouter(t, addrA, addrB)

	// The same context exists on both daemons (a sharded deployment
	// where either member can run its simulations); the ring routes the
	// client's subscription to A, the producer works directly on B.
	name := pickName(t, r.Ring(), addrA, map[string]bool{})
	if err := stA.RegisterContext(fedCtx(name), "DCL", true); err != nil {
		t.Fatal(err)
	}
	if err := stB.RegisterContext(fedCtx(name), "DCL", true); err != nil {
		t.Fatal(err)
	}
	stA.EnablePeers("A", []string{addrB})
	stB.EnablePeers("B", []string{addrA})

	c, err := dvlib.Dial(raddr, "watcher")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, err := c.Init(name)
	if err != nil {
		t.Fatal(err)
	}
	file := ctx.Filename(5)
	w, err := ctx.Watch(file)
	if err != nil {
		t.Fatal(err)
	}

	// Give the subscribe → remote-watch chain a moment to arm, then
	// produce the file on the non-owning daemon.
	time.Sleep(50 * time.Millisecond)
	pc, err := dvlib.Dial(addrB, "producer")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	pctx, err := pc.Init(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pctx.Open(file); err != nil {
		t.Fatal(err)
	}
	if err := pctx.WaitAvailable(file); err != nil {
		t.Fatal(err)
	}
	defer pctx.Release(file)

	// Count every event until the watch channel closes: the file must be
	// reported ready exactly once.
	ready, failed := 0, 0
	timeout := time.After(15 * time.Second)
	for {
		select {
		case ev, ok := <-w.Events():
			if !ok {
				if ready != 1 || failed != 0 {
					t.Fatalf("watch saw ready=%d failed=%d events, want exactly one ready", ready, failed)
				}
				// The owning daemon's bridge must account the delivery.
				ac, err := dvlib.Dial(addrA, "inspector")
				if err != nil {
					t.Fatal(err)
				}
				defer ac.Close()
				infos, err := ac.Admin().Peers(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				var out *netproto.PeerInfo
				for i := range infos {
					if infos[i].Role == "out" && infos[i].Addr == addrB {
						out = &infos[i]
					}
				}
				if out == nil || !out.Connected || out.Events < 1 {
					t.Errorf("daemon A peers = %+v, want a connected out link to B with >=1 event", infos)
				}
				return
			}
			if ev.File == file {
				if ev.Ready {
					ready++
				} else {
					failed++
				}
			}
		case <-timeout:
			t.Fatalf("no cross-daemon notification after 15s (ready=%d)", ready)
		}
	}
}

// TestFederationDeadPeer pins the failure semantics: ops routed to a
// daemon that died answer with the retryable busy/draining codes, not a
// hang or a silent success.
func TestFederationDeadPeer(t *testing.T) {
	stA, addrA := newFedStack(t, "seed-a", nil)
	stB, addrB := newFedStack(t, "seed-b", nil)
	r, raddr := startRouter(t, addrA, addrB)

	used := map[string]bool{}
	// Ring ownership depends on the randomly assigned listen ports, so
	// both shards need picked names — the seed context may hash to
	// either daemon.
	nameA := pickName(t, r.Ring(), addrA, used)
	nameB := pickName(t, r.Ring(), addrB, used)
	if err := stA.RegisterContext(fedCtx(nameA), "DCL", true); err != nil {
		t.Fatal(err)
	}
	if err := stB.RegisterContext(fedCtx(nameB), "DCL", true); err != nil {
		t.Fatal(err)
	}

	c, err := dvlib.Dial(raddr, "fed-client")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, err := c.Init(nameB)
	if err != nil {
		t.Fatal(err)
	}
	file := ctx.Filename(2)
	if _, err := ctx.Open(file); err != nil {
		t.Fatal(err)
	}
	if err := ctx.WaitAvailable(file); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Release(file); err != nil {
		t.Fatal(err)
	}

	stB.Close()
	stB.Launcher.Wait()

	// The in-flight generation fails as draining (synthesized for the
	// broken conn), later ones as busy (redial refused). Either way the
	// client sees a structured, retryable code.
	sawErr := false
	for i := 0; i < 10; i++ {
		_, err := ctx.Open(ctx.Filename(3))
		if err == nil {
			ctx.Release(ctx.Filename(3))
			continue
		}
		sawErr = true
		code := dvlib.ErrCodeOf(err)
		if code != netproto.CodeBusy && code != netproto.CodeDraining {
			t.Fatalf("open against dead daemon: code %q (%v), want busy or draining", code, err)
		}
		break
	}
	if !sawErr {
		t.Fatal("opens kept succeeding after the owning daemon closed")
	}

	// The healthy shard keeps serving through the same client.
	ctxA, err := c.Init(nameA)
	if err != nil {
		t.Fatal(err)
	}
	fileA := ctxA.Filename(2)
	if _, err := ctxA.Open(fileA); err != nil {
		t.Fatal(err)
	}
	if err := ctxA.WaitAvailable(fileA); err != nil {
		t.Fatal(err)
	}
	ctxA.Release(fileA)
}

// TestFederationSmoke is the chaos path `make fed-smoke` runs under
// -race: two daemons behind a router, reconnecting clients hammering
// both shards, the router killed and restarted on the same address
// mid-run. Clients must keep completing rounds after the restart.
func TestFederationSmoke(t *testing.T) {
	stA, addrA := newFedStack(t, "seed-a", nil)
	stB, addrB := newFedStack(t, "seed-b", nil)
	members := []string{addrA, addrB}

	r1 := fed.NewRouter(members, 0, nil)
	if err := r1.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go r1.Serve()
	raddr := r1.Addr()

	used := map[string]bool{}
	nameA := pickName(t, r1.Ring(), addrA, used)
	nameB := pickName(t, r1.Ring(), addrB, used)
	if err := stA.RegisterContext(fedCtx(nameA), "DCL", true); err != nil {
		t.Fatal(err)
	}
	if err := stB.RegisterContext(fedCtx(nameB), "DCL", true); err != nil {
		t.Fatal(err)
	}

	reconnect := dvlib.ReconnectConfig{
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  100 * time.Millisecond,
		MaxElapsed:  20 * time.Second,
	}
	type client struct {
		ctx *dvlib.Context
		cl  *dvlib.Client
	}
	clients := make([]client, 2)
	for i, name := range []string{nameA, nameB} {
		cfg := reconnect
		cfg.Seed = int64(i) + 1
		cl, err := dvlib.Dial(raddr, fmt.Sprintf("smoke-%d", i), dvlib.WithReconnect(cfg))
		if err != nil {
			t.Fatal(err)
		}
		defer cl.Close()
		ctx, err := cl.Init(name)
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = client{ctx: ctx, cl: cl}
	}

	// round does one open→wait→release on a fresh step; errors during
	// the outage are expected and reported to the caller.
	round := func(c client, step int) error {
		file := c.ctx.Filename(step%60 + 1)
		if _, err := c.ctx.Open(file); err != nil {
			return err
		}
		if err := c.ctx.WaitAvailable(file); err != nil {
			return err
		}
		return c.ctx.Release(file)
	}

	var stop sync.WaitGroup
	done := make(chan struct{})
	var mu sync.Mutex
	afterRestart := make([]int, len(clients))
	restarted := make(chan struct{})
	for i := range clients {
		stop.Add(1)
		go func(i int) {
			defer stop.Done()
			for step := 0; ; step++ {
				select {
				case <-done:
					return
				default:
				}
				err := round(clients[i], step)
				if err == nil {
					select {
					case <-restarted:
						mu.Lock()
						afterRestart[i]++
						mu.Unlock()
					default:
					}
				}
				time.Sleep(2 * time.Millisecond)
			}
		}(i)
	}

	// Let the workload run, then kill the router and bring a fresh one
	// up on the same address.
	time.Sleep(300 * time.Millisecond)
	r1.Close()
	r2 := fed.NewRouter(members, 0, nil)
	var bindErr error
	for i := 0; i < 100; i++ {
		if bindErr = r2.Listen(raddr); bindErr == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if bindErr != nil {
		t.Fatalf("rebind router on %s: %v", raddr, bindErr)
	}
	go r2.Serve()
	t.Cleanup(r2.Close)
	close(restarted)

	deadline := time.After(20 * time.Second)
	for {
		mu.Lock()
		ok := true
		for _, n := range afterRestart {
			if n < 3 {
				ok = false
			}
		}
		mu.Unlock()
		if ok {
			break
		}
		select {
		case <-deadline:
			mu.Lock()
			counts := append([]int(nil), afterRestart...)
			mu.Unlock()
			t.Fatalf("clients did not recover after router restart: post-restart rounds = %v, want >= 3 each", counts)
		case <-time.After(50 * time.Millisecond):
		}
	}
	close(done)
	stop.Wait()
}

// TestFederationBridgeRearmAfterRedial pins the redial contract of the
// outbound bridge: a peer link that drops and is later redialed lost
// the sublist the old connection held on the peer, so the fresh link
// must re-issue fed-watch subscriptions for every watch group still
// live locally. The watcher here subscribes before the peer restarts;
// without the re-arm its interest would be gone for good and the
// production on the restarted peer would never be reported.
func TestFederationBridgeRearmAfterRedial(t *testing.T) {
	stA, addrA := newFedStack(t, "seed-a", nil)
	stB, addrB := newFedStack(t, "seed-b", nil)
	const name = "fedrearm"
	if err := stA.RegisterContext(fedCtx(name), "DCL", true); err != nil {
		t.Fatal(err)
	}
	if err := stB.RegisterContext(fedCtx(name), "DCL", true); err != nil {
		t.Fatal(err)
	}
	// Only A needs a bridge: B merely answers A's fed-watch sessions.
	stA.EnablePeers("A", []string{addrB})

	c, err := dvlib.Dial(addrA, "watcher")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, err := c.Init(name)
	if err != nil {
		t.Fatal(err)
	}
	file := ctx.Filename(5)
	w, err := ctx.Watch(file)
	if err != nil {
		t.Fatal(err)
	}
	// Let the subscribe → fed-watch chain arm on B's original link.
	time.Sleep(50 * time.Millisecond)

	// The peer dies and comes back on the same address with a blank
	// slate: every interest the old connection registered is forgotten.
	stB.Close()
	stB.Launcher.Wait()
	stB2, err := server.NewStack(t.TempDir(), 1, "DCL", fedCtx(name))
	if err != nil {
		t.Fatal(err)
	}
	if err := stB2.RunInitialSimulation(name); err != nil {
		t.Fatal(err)
	}
	listenErr := error(nil)
	for i := 0; i < 50; i++ {
		if listenErr = stB2.Server.Listen(addrB); listenErr == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if listenErr != nil {
		t.Fatalf("rebind %s: %v", addrB, listenErr)
	}
	go stB2.Server.Serve()
	t.Cleanup(func() {
		stB2.Close()
		stB2.Launcher.Wait()
	})
	// Give A's bridge a moment to observe the broken link.
	time.Sleep(50 * time.Millisecond)

	// An unrelated interest triggers the redial; the bridge must re-arm
	// the first group's still-undelivered files on the fresh connection.
	if _, err := ctx.Watch(ctx.Filename(9)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)

	// Production on the restarted peer must now reach the original
	// watcher through the re-issued subscription.
	pc, err := dvlib.Dial(addrB, "producer")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()
	pctx, err := pc.Init(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pctx.Open(file); err != nil {
		t.Fatal(err)
	}
	if err := pctx.WaitAvailable(file); err != nil {
		t.Fatal(err)
	}
	defer pctx.Release(file)

	timeout := time.After(15 * time.Second)
	for {
		select {
		case ev, ok := <-w.Events():
			if !ok {
				t.Fatal("watch closed without reporting the file")
			}
			if ev.File == file {
				if !ev.Ready {
					t.Fatalf("watch reported failure for %s: %+v", file, ev)
				}
				return
			}
		case <-timeout:
			t.Fatal("no notification after the peer redial: the bridge did not re-arm the live watch group")
		}
	}
}
