package fed

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"simfs/internal/netproto"
)

// dialTimeout bounds how long a peer dial (TCP connect + hello
// round-trip) may block the calling dispatch path.
const dialTimeout = 2 * time.Second

// peerCaps is what a federation link requests in its hello: everything
// a daemon can grant, binary included. The daemon's answer decides the
// codec; a DisableBinary peer simply keeps the link on JSON.
var peerCaps = []string{netproto.CapAdmin, netproto.CapWatch,
	netproto.CapPreempt, netproto.CapBinary, netproto.CapFed}

// PeerConn is one connection to a peer daemon, shared by the router
// (op forwarding) and the bridge (fed-watch subscriptions). Requests
// are encoded into a write buffer and flushed in one syscall; a read
// loop demuxes response frames back to their registered handlers by
// request ID. The binary codec and reply coalescing negotiated in the
// hello make this the same fast path a batching client uses.
//
// A PeerConn is single-use: once the connection dies, every pending
// handler receives a synthesized terminal draining response and the
// conn reports Broken. Owners drop broken conns and dial fresh ones —
// there is no in-place reconnect, so no frame can straddle two
// transport generations.
type PeerConn struct {
	addr string
	// onBatch, when set, runs after the read loop drains a batch of
	// response frames (the router flushes the client session there).
	onBatch func()

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]*pendingFrame
	broken  bool

	wmu   sync.Mutex
	wbuf  bytes.Buffer
	codec netproto.Codec

	conn net.Conn
	caps []string
}

type pendingFrame struct {
	fn func(netproto.Response)
	// stream keeps the entry registered until a terminal frame arrives
	// (wait/acquire/subscribe/fed-watch deliver per-file frames first).
	stream bool
}

// terminalResponse reports whether resp ends its request's stream: the
// explicit Done frame, or an error frame that is not per-file (per-file
// failures carry File and the stream continues).
func terminalResponse(resp netproto.Response) bool {
	return resp.Done || (resp.Code != "" && resp.File == "")
}

// DialPeer connects to a peer daemon and completes the hello handshake
// as clientName. The link switches to the binary codec when the daemon
// grants it. onBatch may be nil.
func DialPeer(addr, clientName string, onBatch func()) (*PeerConn, error) {
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("fed: dial %s: %w", addr, err)
	}
	pc := &PeerConn{addr: addr, onBatch: onBatch, conn: conn,
		codec: netproto.JSON, nextID: 1, pending: map[uint64]*pendingFrame{}}

	// The hello exchange is synchronous and always JSON, before the read
	// loop starts: nothing else is in flight to demux.
	hello := newEnv(1, netproto.OpHello, netproto.HelloBody{
		Version: netproto.ProtoVersion, Client: clientName, Caps: peerCaps})
	var buf bytes.Buffer
	if err := netproto.JSON.EncodeFrame(&buf, hello); err != nil {
		conn.Close()
		return nil, fmt.Errorf("fed: hello to %s: %w", addr, err)
	}
	conn.SetDeadline(time.Now().Add(dialTimeout)) //simfs:allow wallclock I/O deadline on a real network dial
	if _, err := conn.Write(buf.Bytes()); err != nil {
		conn.Close()
		return nil, fmt.Errorf("fed: hello to %s: %w", addr, err)
	}
	br := bufio.NewReaderSize(conn, 32<<10)
	var resp netproto.Response
	if err := netproto.JSON.DecodeFrame(br, &resp); err != nil {
		conn.Close()
		return nil, fmt.Errorf("fed: hello from %s: %w", addr, err)
	}
	conn.SetDeadline(time.Time{})
	if !resp.OK || resp.Proto == nil {
		conn.Close()
		return nil, fmt.Errorf("fed: peer %s refused handshake: %s (%s)", addr, resp.Err, resp.Code)
	}
	pc.caps = resp.Proto.Caps
	if hasCap(pc.caps, netproto.CapBinary) {
		pc.codec = netproto.Binary
	}
	go pc.readLoop(br)
	return pc, nil
}

// Addr returns the peer's dialed address.
func (pc *PeerConn) Addr() string { return pc.addr }

// Caps returns the capability flags the peer advertised.
func (pc *PeerConn) Caps() []string { return append([]string(nil), pc.caps...) }

// CodecName reports which codec the link negotiated ("json"/"binary").
func (pc *PeerConn) CodecName() string { return pc.codec.Name() }

// Broken reports whether the connection has died. Pending handlers
// have already been failed; the owner should dial a replacement.
func (pc *PeerConn) Broken() bool {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.broken
}

// Close tears the connection down, failing all pending handlers.
func (pc *PeerConn) Close() { pc.fail(errors.New("connection closed")) }

func (pc *PeerConn) readLoop(br *bufio.Reader) {
	for {
		var resp netproto.Response
		if err := pc.codec.DecodeFrame(br, &resp); err != nil {
			var fe *netproto.FrameError
			if errors.As(err, &fe) && fe.Recoverable {
				// One complete but undecodable frame; the stream is still
				// aligned. Nothing to deliver — skip it.
				continue
			}
			pc.fail(err)
			return
		}
		pc.deliver(resp)
		if pc.onBatch != nil && !netproto.FrameBuffered(br) {
			pc.onBatch()
		}
	}
}

func (pc *PeerConn) deliver(resp netproto.Response) {
	pc.mu.Lock()
	e := pc.pending[resp.ID]
	if e != nil && (!e.stream || terminalResponse(resp)) {
		delete(pc.pending, resp.ID)
	}
	pc.mu.Unlock()
	if e != nil {
		e.fn(resp)
	}
}

// fail marks the conn broken and synthesizes a terminal draining
// response for every pending request, so proxied clients see the same
// structured error a gracefully shutting-down daemon would send.
func (pc *PeerConn) fail(cause error) {
	pc.mu.Lock()
	if pc.broken {
		pc.mu.Unlock()
		return
	}
	pc.broken = true
	entries := pc.pending
	pc.pending = map[uint64]*pendingFrame{}
	pc.mu.Unlock()
	pc.conn.Close()
	for id, e := range entries {
		e.fn(netproto.Response{ID: id, Code: netproto.CodeDraining,
			Err: fmt.Sprintf("federation peer %s lost: %v", pc.addr, cause), Done: true})
	}
}

// Forward registers fn under a fresh peer-side request ID, rewrites
// env's ID and encodes it into the write buffer (no flush). fn runs on
// the read-loop goroutine for every response frame of the request;
// stream keeps it registered until a terminal frame.
func (pc *PeerConn) Forward(env netproto.Envelope, stream bool, fn func(netproto.Response)) (uint64, error) {
	pc.mu.Lock()
	if pc.broken {
		pc.mu.Unlock()
		return 0, fmt.Errorf("fed: peer %s is down", pc.addr)
	}
	pc.nextID++
	id := pc.nextID
	pc.pending[id] = &pendingFrame{fn: fn, stream: stream}
	pc.mu.Unlock()

	env.ID = id
	if err := pc.enqueue(env); err != nil {
		pc.mu.Lock()
		delete(pc.pending, id)
		pc.mu.Unlock()
		return 0, err
	}
	return id, nil
}

// Post encodes a fire-and-forget request (no response handler — the
// peer's reply, if any, is dropped by the demux). Used for
// unsubscribe, whose reply carries nothing.
func (pc *PeerConn) Post(op string, body any) error {
	pc.mu.Lock()
	if pc.broken {
		pc.mu.Unlock()
		return fmt.Errorf("fed: peer %s is down", pc.addr)
	}
	pc.nextID++
	id := pc.nextID
	pc.mu.Unlock()
	return pc.enqueue(newEnv(id, op, body))
}

func (pc *PeerConn) enqueue(env netproto.Envelope) error {
	pc.wmu.Lock()
	defer pc.wmu.Unlock()
	if err := pc.codec.EncodeFrame(&pc.wbuf, env); err != nil {
		return fmt.Errorf("fed: encode for %s: %w", pc.addr, err)
	}
	return nil
}

// Flush writes every buffered request frame in one syscall.
func (pc *PeerConn) Flush() error {
	pc.wmu.Lock()
	if pc.wbuf.Len() == 0 {
		pc.wmu.Unlock()
		return nil
	}
	_, err := pc.conn.Write(pc.wbuf.Bytes())
	pc.wbuf.Reset()
	pc.wmu.Unlock()
	if err != nil {
		pc.fail(err)
		return fmt.Errorf("fed: write to %s: %w", pc.addr, err)
	}
	return nil
}

// Call round-trips one request synchronously (control-plane fan-outs).
// Transport failures surface as the error; application failures ride
// the response's Code.
func (pc *PeerConn) Call(ctx context.Context, op string, body any) (netproto.Response, error) {
	ch := make(chan netproto.Response, 1)
	if _, err := pc.Forward(newEnv(0, op, body), false, func(resp netproto.Response) {
		ch <- resp
	}); err != nil {
		return netproto.Response{}, err
	}
	if err := pc.Flush(); err != nil {
		return netproto.Response{}, err
	}
	select {
	case resp := <-ch:
		return resp, nil
	case <-ctx.Done():
		return netproto.Response{}, fmt.Errorf("fed: call %s on %s: %w", op, pc.addr, ctx.Err())
	}
}

// Subscribe issues a streaming request and flushes immediately; fn
// receives every response frame until a terminal one. The returned ID
// cancels the stream via an unsubscribe Post.
func (pc *PeerConn) Subscribe(op string, body any, fn func(netproto.Response)) (uint64, error) {
	id, err := pc.Forward(newEnv(0, op, body), true, fn)
	if err != nil {
		return 0, err
	}
	if err := pc.Flush(); err != nil {
		return 0, err
	}
	return id, nil
}

// newEnv builds a typed envelope; NewEnvelope's error return is
// documented always-nil.
func newEnv(id uint64, op string, body any) netproto.Envelope {
	env, _ := netproto.NewEnvelope(id, op, body)
	return env
}

// hasCap reports whether caps contains want.
func hasCap(caps []string, want string) bool {
	for _, c := range caps {
		if c == want {
			return true
		}
	}
	return false
}
