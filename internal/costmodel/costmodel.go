// Package costmodel implements the cost models of the paper's Sec. V: the
// monetary cost of making simulation data available for analysis over a
// period ∆t under the three paradigms — on-disk (store everything),
// in-situ (re-run the simulation for every analysis) and SimFS (store
// restarts plus a bounded cache, re-simulate misses). Prices are
// calibrated on the Microsoft Azure configuration the paper uses, with the
// Piz Daint point of Fig. 15a.
package costmodel

import (
	"time"

	"simfs/internal/model"
)

// Prices holds the two unit costs of the model (Table II): cc in
// $/node/hour and cs in $/GiB/month.
type Prices struct {
	ComputePerNodeHour float64
	StoragePerGiBMonth float64
}

// Azure is the paper's cloud calibration: an NCv2 VM (NVIDIA P100) at
// $2.07/node/hour and Azure File storage at $0.06/GiB/month.
var Azure = Prices{ComputePerNodeHour: 2.07, StoragePerGiBMonth: 0.06}

// PizDaint approximates the CSCS cost-catalog point plotted in Fig. 15a
// (lower compute and higher storage cost relative to Azure's file share;
// the catalog itself is not public, so the coordinates are read off the
// heatmap).
var PizDaint = Prices{ComputePerNodeHour: 0.80, StoragePerGiBMonth: 0.12}

// GiB converts bytes to GiB as a float.
func GiB(bytes int64) float64 { return float64(bytes) / float64(1<<30) }

// Csim is the cost of simulating O output steps on P nodes:
// O · τsim(P) · P · cc (Sec. V).
func Csim(outputSteps, nodes int, tauPerStep time.Duration, p Prices) float64 {
	hours := float64(outputSteps) * tauPerStep.Hours()
	return hours * float64(nodes) * p.ComputePerNodeHour
}

// Cstore is the cost of storing the given volume for ∆t months:
// GiB · months · cs (Sec. V).
func Cstore(gib, months float64, p Prices) float64 {
	return gib * months * p.StoragePerGiBMonth
}

// OnDisk is the on-disk solution cost: the initial simulation plus storing
// all no output steps for ∆t months. It is independent of the analyses.
func OnDisk(ctx *model.Context, months float64, p Prices) float64 {
	no := ctx.Grid.NumOutputSteps()
	return Csim(no, ctx.DefaultParallelism, ctx.Tau, p) +
		Cstore(float64(no)*GiB(ctx.OutputBytes), months, p)
}

// InSitu is the in-situ solution cost for a set of analyses: each analysis
// j starting at output step start[j] and accessing length[j] steps
// requires its own simulation from d0 to d(start+length):
// Σ Csim(ij + |γ(j)|, P).
func InSitu(ctx *model.Context, starts, lengths []int, p Prices) float64 {
	total := 0.0
	for j := range starts {
		steps := starts[j] + lengths[j]
		if max := ctx.Grid.NumOutputSteps(); steps > max {
			steps = max
		}
		total += Csim(steps, ctx.DefaultParallelism, ctx.Tau, p)
	}
	return total
}

// SimFS is the SimFS solution cost: the initial simulation (producing the
// restart steps), storing the restart steps and the cache for ∆t months,
// and re-simulating the V(γ∆t) output steps observed as misses:
//
//	CSimFS = Csim(no,P) + Cstore(nr·sr,∆t) + Cstore(M·so,∆t) + Csim(V,P)
//
// cacheFrac is the cache size as a fraction of the total output volume;
// resimSteps is V(γ∆t), obtained by replaying the analyses through the
// caching layer (see the experiments package).
func SimFS(ctx *model.Context, months, cacheFrac float64, resimSteps int, p Prices) float64 {
	no := ctx.Grid.NumOutputSteps()
	nr := ctx.Grid.NumRestartSteps()
	initial := Csim(no, ctx.DefaultParallelism, ctx.Tau, p)
	restarts := Cstore(float64(nr)*GiB(ctx.RestartBytes), months, p)
	cache := Cstore(cacheFrac*float64(no)*GiB(ctx.OutputBytes), months, p)
	resim := Csim(resimSteps, ctx.DefaultParallelism, ctx.Tau, p)
	return initial + restarts + cache + resim
}

// ResimTime is the aggregate compute time spent re-simulating V output
// steps (Fig. 15c's y-axis).
func ResimTime(resimSteps int, tauPerStep time.Duration) time.Duration {
	return time.Duration(resimSteps) * tauPerStep
}

// RestartSpaceGiB returns the storage held by restart files (Fig. 15b's
// x-axis).
func RestartSpaceGiB(ctx *model.Context) float64 {
	return float64(ctx.Grid.NumRestartSteps()) * GiB(ctx.RestartBytes)
}

// Ratio returns min(on-disk, in-situ) / SimFS — the cost-effectiveness
// ratio of Fig. 15a (>1 means SimFS is the cheapest option).
func Ratio(onDisk, inSitu, simfs float64) float64 {
	min := onDisk
	if inSitu < min {
		min = inSitu
	}
	if simfs <= 0 {
		return 0
	}
	return min / simfs
}
