package costmodel

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"simfs/internal/simulator"
)

func TestCsim(t *testing.T) {
	// 100 steps × 36 s = 1 hour on 10 nodes at $2/h = $20.
	p := Prices{ComputePerNodeHour: 2}
	if got := Csim(100, 10, 36*time.Second, p); math.Abs(got-20) > 1e-9 {
		t.Errorf("Csim = %v, want 20", got)
	}
	if got := Csim(0, 10, time.Hour, p); got != 0 {
		t.Errorf("zero steps should cost 0, got %v", got)
	}
}

func TestCstore(t *testing.T) {
	p := Prices{StoragePerGiBMonth: 0.06}
	if got := Cstore(1000, 12, p); math.Abs(got-720) > 1e-9 {
		t.Errorf("Cstore = %v, want 720", got)
	}
}

// TestOnDiskMatchesPaperFig1 checks the headline number: storing the
// 50 TiB COSMO output for 5 years on Azure costs about $200k (Fig. 1
// "more than $200,000 for an on-disk solution" including the initial
// simulation).
func TestOnDiskMatchesPaperFig1(t *testing.T) {
	ctx := simulator.CosmoCost()
	got := OnDisk(ctx, 60, Azure)
	if got < 150_000 || got > 260_000 {
		t.Errorf("on-disk 5y = $%.0f, want ≈$200k", got)
	}
	// The storage term must dominate the initial simulation.
	sim := Csim(ctx.Grid.NumOutputSteps(), ctx.DefaultParallelism, ctx.Tau, Azure)
	if sim > got/5 {
		t.Errorf("initial simulation $%.0f should be a small fraction of $%.0f", sim, got)
	}
}

func TestOnDiskGrowsLinearlyWithMonths(t *testing.T) {
	ctx := simulator.CosmoCost()
	c1 := OnDisk(ctx, 12, Azure)
	c2 := OnDisk(ctx, 24, Azure)
	c3 := OnDisk(ctx, 36, Azure)
	if (c3-c2)-(c2-c1) > 1e-6 {
		t.Error("on-disk cost must grow linearly in ∆t")
	}
	if c2 <= c1 {
		t.Error("on-disk cost must grow with ∆t")
	}
}

func TestInSituIndependentOfMonths(t *testing.T) {
	ctx := simulator.CosmoCost()
	starts := []int{100, 500, 1000}
	lengths := []int{200, 200, 200}
	c := InSitu(ctx, starts, lengths, Azure)
	if c <= 0 {
		t.Fatal("in-situ cost must be positive")
	}
	// Clamping: an analysis beyond the timeline costs at most the full
	// simulation.
	full := Csim(ctx.Grid.NumOutputSteps(), ctx.DefaultParallelism, ctx.Tau, Azure)
	one := InSitu(ctx, []int{ctx.Grid.NumOutputSteps()}, []int{10_000}, Azure)
	if one > full+1e-9 {
		t.Errorf("clamped in-situ = %v > full simulation %v", one, full)
	}
}

func TestSimFSComponents(t *testing.T) {
	ctx := simulator.CosmoCost()
	base := SimFS(ctx, 24, 0.25, 0, Azure)
	withResim := SimFS(ctx, 24, 0.25, 10_000, Azure)
	if withResim <= base {
		t.Error("re-simulation must add cost")
	}
	bigger := SimFS(ctx, 24, 0.50, 0, Azure)
	if bigger <= base {
		t.Error("larger cache must cost more storage")
	}
	longer := SimFS(ctx, 48, 0.25, 0, Azure)
	if longer <= base {
		t.Error("longer availability must cost more")
	}
}

// TestCrossoverStructure reproduces the qualitative claims of Sec. V-A:
// for few analyses in-situ wins; for many analyses over a long period
// SimFS beats on-disk.
func TestCrossoverStructure(t *testing.T) {
	ctx := simulator.CosmoCost()
	months := 24.0
	// Two analyses, short: in-situ should beat SimFS's fixed costs.
	few := InSitu(ctx, []int{100, 200}, []int{200, 200}, Azure)
	simfsFew := SimFS(ctx, months, 0.25, 2*12, Azure)
	if few > simfsFew {
		t.Errorf("with 2 analyses in-situ ($%.0f) should beat SimFS ($%.0f)", few, simfsFew)
	}
	// Many analyses: in-situ pays the full prefix every time and loses.
	var starts, lengths []int
	for i := 0; i < 120; i++ {
		starts = append(starts, 500+i*10)
		lengths = append(lengths, 250)
	}
	many := InSitu(ctx, starts, lengths, Azure)
	simfsMany := SimFS(ctx, months, 0.25, 30_000, Azure)
	if many < simfsMany {
		t.Errorf("with 120 analyses SimFS ($%.0f) should beat in-situ ($%.0f)", simfsMany, many)
	}
}

func TestRestartSpaceMatchesFig15b(t *testing.T) {
	// The paper's Fig. 15b x-axis: Δr=8h → 3.16 TiB of restart files.
	ctx := simulator.CosmoCost()
	gib := RestartSpaceGiB(ctx)
	tib := gib / 1024
	if math.Abs(tib-3.16) > 0.05 {
		t.Errorf("restart space = %.2f TiB, want ≈3.16 (Δr=8h)", tib)
	}
	// Δr=4h doubles the restarts: 6.33 TiB.
	ctx4 := simulator.CosmoCost()
	ctx4.Grid.DeltaR = 720
	if tib4 := RestartSpaceGiB(ctx4) / 1024; math.Abs(tib4-6.33) > 0.05 {
		t.Errorf("restart space Δr=4h = %.2f TiB, want ≈6.33", tib4)
	}
}

func TestRatio(t *testing.T) {
	if r := Ratio(100, 200, 50); r != 2 {
		t.Errorf("ratio = %v, want 2", r)
	}
	if r := Ratio(200, 100, 50); r != 2 {
		t.Errorf("ratio = %v, want min picked", r)
	}
	if r := Ratio(100, 200, 0); r != 0 {
		t.Errorf("zero simfs cost should yield 0, got %v", r)
	}
}

func TestResimTime(t *testing.T) {
	if got := ResimTime(100, 20*time.Second); got != 2000*time.Second {
		t.Errorf("ResimTime = %v", got)
	}
}

// Property: all costs are non-negative and monotone in their main drivers.
func TestCostMonotonicityProperty(t *testing.T) {
	ctx := simulator.CosmoCost()
	f := func(mRaw, vRaw uint16, fracRaw uint8) bool {
		months := float64(mRaw%120) + 1
		v := int(vRaw)
		frac := float64(fracRaw%100) / 100
		a := SimFS(ctx, months, frac, v, Azure)
		b := SimFS(ctx, months+1, frac, v, Azure)
		c := SimFS(ctx, months, frac, v+100, Azure)
		return a >= 0 && b >= a && c >= a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
