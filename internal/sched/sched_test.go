package sched

import (
	"testing"
	"time"
)

// manualClock is a settable des.Clock for wait-time assertions.
type manualClock struct{ now time.Duration }

func (c *manualClock) Now() time.Duration { return c.now }

func req(ctx string, first, last int, class Class, client string) Request {
	return Request{Ctx: ctx, First: first, Last: last, Parallelism: 1, Class: class, Client: client}
}

// drain pops every admissible job.
func drain(s *Scheduler) []Job {
	var jobs []Job
	for {
		j, ok := s.Next()
		if !ok {
			return jobs
		}
		jobs = append(jobs, j)
	}
}

func TestLegacySemantics(t *testing.T) {
	// Zero config = the paper's rules: demand queues at smax, prefetch is
	// dropped, the queue drains FIFO.
	s := New(&manualClock{}, Config{})
	s.Register("c", 2)
	if d := s.Submit(req("c", 1, 4, Demand, "")); d != Admitted {
		t.Fatalf("first demand = %v, want Admitted", d)
	}
	if d := s.Submit(req("c", 5, 8, Agent, "a")); d != Admitted {
		t.Fatalf("prefetch under capacity = %v, want Admitted", d)
	}
	if d := s.Submit(req("c", 9, 12, Agent, "a")); d != Dropped {
		t.Fatalf("prefetch at capacity = %v, want Dropped", d)
	}
	if d := s.Submit(req("c", 9, 12, Guided, "a")); d != Dropped {
		t.Fatalf("guided prefetch at capacity = %v, want Dropped", d)
	}
	if d := s.Submit(req("c", 9, 12, Demand, "")); d != Queued {
		t.Fatalf("demand at capacity = %v, want Queued", d)
	}
	if d := s.Submit(req("c", 13, 16, Demand, "")); d != Queued {
		t.Fatalf("second demand = %v, want Queued", d)
	}
	if _, ok := s.Next(); ok {
		t.Fatal("queue must not drain while the context is full")
	}
	s.SimDone("c", 1)
	j, ok := s.Next()
	if !ok || j.First != 9 {
		t.Fatalf("popped %+v, want FIFO head [9,12]", j)
	}
	if _, ok := s.Next(); ok {
		t.Fatal("context is full again after the pop")
	}
	s.SimDone("c", 1)
	j, ok = s.Next()
	if !ok || j.First != 13 {
		t.Fatalf("popped %+v, want [13,16]", j)
	}
	st := s.Stats()
	if st.Submitted != 6 || st.Admitted != 2 || st.Dropped != 2 || st.Queued != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLegacyNoCoalescing(t *testing.T) {
	s := New(&manualClock{}, Config{})
	s.Register("c", 1)
	s.Submit(req("c", 1, 4, Demand, ""))
	s.Submit(req("c", 5, 8, Demand, ""))  // adjacent
	s.Submit(req("c", 7, 12, Demand, "")) // overlapping
	if got := s.QueueDepth(); got != 2 {
		t.Fatalf("queue depth = %d, want 2 separate jobs without coalescing", got)
	}
}

func TestCoalesceMergesOverlappingAndAdjacent(t *testing.T) {
	s := New(&manualClock{}, Config{Coalesce: true})
	s.Register("c", 1)
	s.Submit(req("c", 1, 48, Demand, "")) // fills the context
	s.Submit(req("c", 49, 60, Demand, ""))
	s.Submit(req("c", 57, 72, Demand, ""))  // overlaps the queued job
	s.Submit(req("c", 73, 84, Demand, ""))  // adjacent to it
	s.Submit(req("c", 97, 108, Demand, "")) // disjoint: separate job
	if got := s.QueueDepth(); got != 2 {
		t.Fatalf("queue depth = %d, want 2 (one coalesced + one disjoint)", got)
	}
	s.SimDone("c", 1)
	j, ok := s.Next()
	if !ok || j.First != 49 || j.Last != 84 {
		t.Fatalf("coalesced job = [%d,%d], want [49,84]", j.First, j.Last)
	}
	if j.Coalesced != 2 {
		t.Errorf("Coalesced = %d, want 2 absorbed requests", j.Coalesced)
	}
	if st := s.Stats(); st.Coalesced != 2 {
		t.Errorf("stats.Coalesced = %d, want 2", st.Coalesced)
	}
}

func TestCoalesceCascade(t *testing.T) {
	s := New(&manualClock{}, Config{Coalesce: true})
	s.Register("c", 1)
	s.Submit(req("c", 1, 4, Demand, "")) // fills the context
	s.Submit(req("c", 10, 20, Demand, ""))
	s.Submit(req("c", 30, 40, Demand, ""))
	// Bridges both queued jobs: everything merges into one.
	s.Submit(req("c", 18, 32, Demand, ""))
	if got := s.QueueDepth(); got != 1 {
		t.Fatalf("queue depth = %d, want 1 after cascade merge", got)
	}
	s.SimDone("c", 1)
	j, _ := s.Next()
	if j.First != 10 || j.Last != 40 {
		t.Fatalf("cascaded job = [%d,%d], want [10,40]", j.First, j.Last)
	}
}

func TestCoalescePromotesClass(t *testing.T) {
	s := New(&manualClock{}, Config{Coalesce: true, Priorities: true})
	s.Register("c", 1)
	s.Submit(req("c", 1, 4, Demand, ""))
	s.Submit(req("c", 10, 20, Agent, "a"))
	s.Submit(req("c", 15, 25, Demand, "")) // merges into the prefetch job
	s.SimDone("c", 1)
	j, ok := s.Next()
	if !ok || j.Class != Demand {
		t.Fatalf("merged job class = %v, want Demand after promotion", j.Class)
	}
	if j.First != 10 || j.Last != 25 {
		t.Errorf("merged range = [%d,%d], want [10,25]", j.First, j.Last)
	}
}

func TestPrioritiesOrderQueue(t *testing.T) {
	s := New(&manualClock{}, Config{Priorities: true})
	s.Register("c", 1)
	s.Submit(req("c", 1, 4, Demand, ""))
	if d := s.Submit(req("c", 10, 14, Agent, "a")); d != Queued {
		t.Fatalf("agent prefetch with priorities = %v, want Queued (not Dropped)", d)
	}
	s.Submit(req("c", 20, 24, Guided, "g"))
	s.Submit(req("c", 30, 34, Demand, ""))
	s.Submit(req("c", 40, 44, Agent, "b"))
	var order []Class
	for range [4]int{} {
		s.SimDone("c", 1)
		j, ok := s.Next()
		if !ok {
			t.Fatal("expected a job")
		}
		order = append(order, j.Class)
	}
	want := []Class{Demand, Guided, Agent, Agent}
	for i, c := range want {
		if order[i] != c {
			t.Fatalf("pop order = %v, want %v", order, want)
		}
	}
}

func TestNodeCapacitySerializesAcrossContexts(t *testing.T) {
	s := New(&manualClock{}, Config{TotalNodes: 4})
	s.Register("a", 0)
	s.Register("b", 0)
	r := req("a", 1, 4, Demand, "")
	r.Parallelism = 3
	if d := s.Submit(r); d != Admitted {
		t.Fatalf("first job = %v", d)
	}
	r2 := req("b", 1, 4, Demand, "")
	r2.Parallelism = 3
	if d := s.Submit(r2); d != Queued {
		t.Fatalf("node-blocked job = %v, want Queued", d)
	}
	r3 := req("b", 5, 8, Demand, "")
	r3.Parallelism = 1
	if d := s.Submit(r3); d != Queued {
		t.Fatalf("small job behind blocked head = %v, want Queued", d)
	}
	// No backfilling: the 1-node job must not jump the 3-node head.
	if _, ok := s.Next(); ok {
		t.Fatal("nothing should fit while 3 of 4 nodes are used")
	}
	s.SimDone("a", 3)
	j, ok := s.Next()
	if !ok || j.Ctx != "b" || j.First != 1 {
		t.Fatalf("popped %+v, want the blocked 3-node head", j)
	}
	j2, ok := s.Next()
	if !ok || j2.Parallelism != 1 {
		t.Fatalf("popped %+v, want the 1-node follower", j2)
	}
	if _, ok := s.Next(); ok {
		t.Fatal("queue should be empty")
	}
}

func TestNextSkipsFullContextsOnly(t *testing.T) {
	// A context at smax must not block another context's queued work.
	s := New(&manualClock{}, Config{})
	s.Register("a", 1)
	s.Register("b", 1)
	s.Submit(req("a", 1, 4, Demand, ""))
	s.Submit(req("a", 5, 8, Demand, "")) // queued, a full
	s.Submit(req("b", 1, 4, Demand, ""))
	s.Submit(req("b", 5, 8, Demand, "")) // queued, b full
	s.SimDone("b", 1)
	j, ok := s.Next()
	if !ok || j.Ctx != "b" {
		t.Fatalf("popped %+v, want b's job (a is still full)", j)
	}
}

func TestCancelClientRespectsKeep(t *testing.T) {
	s := New(&manualClock{}, Config{Priorities: true})
	s.Register("c", 1)
	s.Submit(req("c", 1, 4, Demand, ""))
	s.Submit(req("c", 10, 14, Agent, "a"))
	s.Submit(req("c", 20, 24, Agent, "a"))
	s.Submit(req("c", 30, 34, Agent, "other"))
	s.Submit(req("c", 40, 44, Demand, ""))
	removed := s.CancelClient("c", "a", func(first, last int) bool {
		return first == 20 // someone waits for [20,24]
	})
	if len(removed) != 1 || removed[0].First != 10 {
		t.Fatalf("removed = %+v, want only [10,14]", removed)
	}
	if got := s.QueueDepth(); got != 3 {
		t.Errorf("queue depth = %d, want 3 (kept, other's, demand)", got)
	}
	if st := s.Stats(); st.Canceled != 1 {
		t.Errorf("Canceled = %d, want 1", st.Canceled)
	}
}

func TestReleaseReturnsCapacity(t *testing.T) {
	s := New(&manualClock{}, Config{Priorities: true})
	s.Register("c", 1)
	s.Submit(req("c", 1, 4, Demand, ""))
	s.Submit(req("c", 10, 14, Agent, "a"))
	s.SimDone("c", 1)
	j, ok := s.Next()
	if !ok {
		t.Fatal("expected the queued prefetch")
	}
	s.Release(j) // revalidation found it stale
	// The freed slot admits the next submission immediately.
	if d := s.Submit(req("c", 20, 24, Demand, "")); d != Admitted {
		t.Fatalf("submit after release = %v, want Admitted", d)
	}
}

// A context deregistered between a pop and the release must not leave a
// ghost ledger behind: Release keeps the node accounting, ReleaseSlot
// and SimDone become no-ops for the missing context, and a later
// re-registration starts with clean counters.
func TestReleaseAfterContextDropped(t *testing.T) {
	s := New(&manualClock{}, Config{Priorities: true, TotalNodes: 4})
	s.Register("c", 1)
	r := req("c", 1, 4, Demand, "")
	r.Parallelism = 2
	if d := s.Submit(r); d != Admitted {
		t.Fatalf("demand = %v", d)
	}
	s.Submit(req("c", 9, 12, Demand, ""))
	s.SimDone("c", 2)
	j, ok := s.Next()
	if !ok {
		t.Fatal("expected the queued demand job")
	}
	// The context vanishes while the popped job is being revalidated.
	s.DropContext("c")
	s.Release(j)
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("after release into a dropped ledger: %v", err)
	}
	if _, ok := s.ctxs["c"]; ok {
		t.Fatal("Release re-created the dropped context's ledger")
	}
	// The nodes came back: a fresh registration has the full budget.
	s.Register("c", 1)
	r2 := req("c", 1, 4, Demand, "")
	r2.Parallelism = 4
	if d := s.Submit(r2); d != Admitted {
		t.Fatalf("submit after re-register = %v, want Admitted (all 4 nodes free)", d)
	}
}

// ReleaseSlot against a deregistered context (a pipeline placeholder
// dismantled after its context was dropped) must not plant a ghost
// ledger with inflight −1.
func TestReleaseSlotAfterContextDropped(t *testing.T) {
	s := New(&manualClock{}, Config{})
	s.Register("c", 2)
	if d := s.Submit(req("c", 1, 4, Demand, "")); d != Admitted {
		t.Fatalf("demand = %v", d)
	}
	s.ParkNodes(1) // placeholder parked its nodes
	s.DropContext("c")
	s.ReleaseSlot("c")
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("after slot release into a dropped ledger: %v", err)
	}
	if _, ok := s.ctxs["c"]; ok {
		t.Fatal("ReleaseSlot re-created the dropped context's ledger")
	}
	// SimDone takes the same guard: only the node accounting survives.
	s.ClaimNodes(1)
	s.SimDone("c", 1)
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("after SimDone into a dropped ledger: %v", err)
	}
	if _, ok := s.ctxs["c"]; ok {
		t.Fatal("SimDone re-created the dropped context's ledger")
	}
}

func TestWaitTimesPerClass(t *testing.T) {
	clk := &manualClock{}
	s := New(clk, Config{Priorities: true})
	s.Register("c", 1)
	s.Submit(req("c", 1, 4, Demand, ""))
	s.Submit(req("c", 10, 14, Demand, ""))
	s.Submit(req("c", 20, 24, Agent, "a"))
	clk.now = 7 * time.Second
	s.SimDone("c", 1)
	drainOne := func() {
		if _, ok := s.Next(); !ok {
			t.Fatal("expected a job")
		}
		s.SimDone("c", 1)
	}
	drainOne()
	clk.now = 9 * time.Second
	drainOne()
	st := s.Stats()
	if st.DemandWait.Jobs != 1 || st.DemandWait.Wait != 7*time.Second {
		t.Errorf("demand wait = %+v, want 1 job / 7s", st.DemandWait)
	}
	if st.AgentWait.Jobs != 1 || st.AgentWait.Wait != 9*time.Second {
		t.Errorf("agent wait = %+v, want 1 job / 9s", st.AgentWait)
	}
	if st.DemandWait.Mean() != 7*time.Second {
		t.Errorf("mean = %v", st.DemandWait.Mean())
	}
}

func TestMaxQueueDepthHighWater(t *testing.T) {
	s := New(&manualClock{}, Config{})
	s.Register("c", 1)
	s.Submit(req("c", 1, 4, Demand, ""))
	for i := 0; i < 5; i++ {
		s.Submit(req("c", 10+10*i, 14+10*i, Demand, ""))
	}
	s.SimDone("c", 1)
	drain(s)
	st := s.Stats()
	if st.MaxQueueDepth != 5 {
		t.Errorf("MaxQueueDepth = %d, want 5", st.MaxQueueDepth)
	}
	if st.QueueDepth != 4 {
		// One popped (context capacity 1), four still queued.
		t.Errorf("QueueDepth = %d, want 4", st.QueueDepth)
	}
}

func TestClassString(t *testing.T) {
	cases := map[Class]string{Demand: "demand", Guided: "guided", Agent: "agent", Class(9): "unknown"}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}

func TestCheckInvariants(t *testing.T) {
	s := New(&manualClock{}, Config{Coalesce: true, Priorities: true, TotalNodes: 8})
	s.Register("a", 2)
	s.Register("b", 2)
	for i := 0; i < 12; i++ {
		ctx := "a"
		if i%2 == 0 {
			ctx = "b"
		}
		s.Submit(req(ctx, 1+4*i, 4+4*i, Class(i%3), "cli"))
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("after submit %d: %v", i, err)
		}
	}
	s.SimDone("a", 1)
	s.SimDone("b", 1)
	drain(s)
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNodeBudgetIgnoresSmaxQueuedNeighbours(t *testing.T) {
	// A job queued only by its own context's smax must not make the node
	// budget treat the whole scheduler as backed up: an idle context with
	// free nodes admits immediately, and prefetch there is not dropped.
	s := New(&manualClock{}, Config{TotalNodes: 100})
	s.Register("a", 1)
	s.Register("b", 4)
	s.Submit(req("a", 1, 4, Demand, ""))
	if d := s.Submit(req("a", 9, 12, Demand, "")); d != Queued {
		t.Fatalf("a's second demand = %v, want Queued (smax)", d)
	}
	if d := s.Submit(req("b", 1, 4, Agent, "cli")); d != Admitted {
		t.Fatalf("b's prefetch = %v, want Admitted (99 nodes free, a's queue is smax-blocked)", d)
	}
	if d := s.Submit(req("b", 9, 12, Demand, "")); d != Admitted {
		t.Fatalf("b's demand = %v, want Admitted", d)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCancelClientSparesCoalescedConstituents(t *testing.T) {
	// Two clients' prefetches merged into one job: withdrawing one client
	// must not discard the other's interest.
	s := New(&manualClock{}, Config{Coalesce: true, Priorities: true})
	s.Register("c", 1)
	s.Submit(req("c", 1, 4, Demand, ""))
	s.Submit(req("c", 10, 20, Agent, "alice"))
	s.Submit(req("c", 15, 25, Agent, "bob")) // merges into alice's job
	if got := s.QueueDepth(); got != 1 {
		t.Fatalf("queue depth = %d, want 1 merged job", got)
	}
	if removed := s.CancelClient("c", "alice", nil); len(removed) != 0 {
		t.Fatalf("alice's withdrawal removed %+v; bob still wants the range", removed)
	}
	if got := s.QueueDepth(); got != 1 {
		t.Fatalf("queue depth after partial withdrawal = %d, want 1", got)
	}
	removed := s.CancelClient("c", "bob", nil)
	if len(removed) != 1 || removed[0].First != 10 || removed[0].Last != 25 {
		t.Fatalf("bob's withdrawal removed %+v, want the whole merged job", removed)
	}
	if got := s.QueueDepth(); got != 0 {
		t.Fatalf("queue depth = %d, want 0", got)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCancelClientRecomputesClass(t *testing.T) {
	// A guided hint merged with an agent prefetch: when the guided client
	// withdraws, the surviving job must demote to agent class (and drain
	// after demand-class work accordingly).
	s := New(&manualClock{}, Config{Coalesce: true, Priorities: true})
	s.Register("c", 1)
	s.Submit(req("c", 1, 4, Demand, ""))
	s.Submit(req("c", 10, 20, Guided, "alice"))
	s.Submit(req("c", 15, 25, Agent, "bob"))
	s.Submit(req("c", 40, 44, Guided, "carol"))
	if removed := s.CancelClient("c", "alice", nil); len(removed) != 0 {
		t.Fatalf("alice's withdrawal removed %+v; bob still wants the range", removed)
	}
	// Pop order must now be carol's guided hint first: the merged job
	// demoted to agent class behind it.
	s.SimDone("c", 1)
	j, ok := s.Next()
	if !ok || j.First != 40 || j.Class != Guided {
		t.Fatalf("popped %+v, want carol's guided [40,44] first", j)
	}
	s.SimDone("c", 1)
	j, ok = s.Next()
	if !ok || j.Class != Agent || j.Client != "bob" {
		t.Fatalf("popped %+v, want the demoted agent job owned by bob", j)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
