// Package sched is the re-simulation scheduler of the Data Virtualizer:
// the layer between the DV core and any Launcher that decides which
// re-simulation jobs start now, which wait, and which are never launched
// at all. The paper's DV makes those decisions inline per context (start
// on demand miss, drop prefetches beyond smax, Sec. IV-C/VI); this
// subsystem generalizes them for a multi-client daemon:
//
//   - Admission control. Per-context capacity (the paper's smax) plus an
//     optional global node budget shared by all contexts (the role the
//     batch-system pool used to play at the launcher level). Admission is
//     FIFO without backfilling across contexts, so one hot context cannot
//     starve the others of nodes.
//   - Priority classes. Demand misses outrank guided-prefetch hints,
//     which outrank speculative agent prefetches. With Priorities enabled
//     the queue is drained in class order; without it the scheduler
//     reproduces the paper's rule exactly — demand waits in FIFO order,
//     prefetch beyond capacity is dropped.
//   - Interval coalescing. With Coalesce enabled, a queued job absorbs
//     overlapping or adjacent requests for the same context instead of
//     spawning duplicate restarts: both requests are served by one
//     restart-aligned simulation.
//   - Cancellation. Queued prefetch jobs are de-queued when their
//     requesting client resets or disconnects, and re-validated at
//     admission so stale work is never launched.
//   - Preemption. With a victim policy configured (Config.Preempt), a
//     demand miss blocked on the exhausted node budget may kill a
//     running agent prefetch — youngest-first or
//     cheapest-remaining-first on the cost model's estimate — under the
//     no-waiters rule; the victim's interval is requeued, not lost.
//   - Per-client fairness. A deficit-round-robin quantum
//     (Config.DRRQuantum) replaces pure FIFO inside a priority class,
//     so one greedy client cannot starve its neighbours; coalesced
//     multi-client jobs charge each constituent its fair share.
//
// The scheduler is deliberately passive: it never starts simulations
// itself and never calls back into the DV. The core submits requests
// (Submit) while holding the owning shard's lock, and drains admitted
// jobs (Next) holding no shard lock; the scheduler's own mutex is the
// innermost lock and is never held across foreign code. Under the
// discrete-event engine every method runs on the single event thread, so
// scheduling decisions — and therefore whole experiments — are
// deterministic.
//
// The zero Config reproduces the pre-scheduler DV semantics bit for bit
// (no coalescing, no priority queueing, unlimited nodes); experiment
// tables are unchanged by routing launches through it.
package sched

import (
	"fmt"
	"maps"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"simfs/internal/des"
	"simfs/internal/metrics"
)

// Class is a job priority class, ordered most- to least-urgent.
type Class uint8

// Priority classes: a demand miss blocks a client right now, a guided
// prefetch is an explicit client hint, an agent prefetch is speculative.
const (
	Demand Class = iota
	Guided
	Agent
)

func (c Class) String() string {
	switch c {
	case Demand:
		return "demand"
	case Guided:
		return "guided"
	case Agent:
		return "agent"
	}
	return "unknown"
}

// Request asks for one re-simulation of Ctx producing output steps
// [First, Last] (already realigned to restart boundaries by the core) at
// the given parallelism. Client names the requesting client for prefetch
// classes ("" for demand).
type Request struct {
	Ctx         string
	First, Last int
	Parallelism int
	Class       Class
	Client      string
}

// Job is a queued (possibly coalesced) request.
type Job struct {
	Request
	// Coalesced counts the extra requests merged into this job.
	Coalesced int

	// cons are the distinct prefetch constituents (client, class) this
	// job serves (empty for pure demand jobs). Cancellation only removes
	// a job once every constituent client has withdrawn, and a surviving
	// job's class/client are recomputed from the remaining constituents.
	cons []constituent
	// payers are the distinct clients the DRR quota bills for this job —
	// unlike cons it includes demand requesters, so a multi-client
	// demand merge splits its cost instead of billing the first
	// submitter. Maintained only while a quantum is configured; empty
	// payers fall back to cons/Client at charge time (jobs queued before
	// a live quantum enable).
	payers []string
	// prepaid marks a requeue of already-billed (or directly admitted,
	// never-billed) work — a preemption victim's interval, a pipeline
	// bounce. Its pop skips the DRR charge so one logical interval is
	// billed at most once however often the system requeues it. Prepaid
	// jobs are excluded from coalescing in both directions: absorbing
	// one would lose the flag (double-billing the victim), and a fresh
	// request merging into one would ride for free.
	prepaid    bool
	seq        uint64
	enqueuedAt time.Duration
}

// constituent is one prefetch request folded into a job.
type constituent struct {
	client string
	class  Class
}

// addPayer records a client on the job's quota-billing roster.
func (j *Job) addPayer(client string) {
	for _, p := range j.payers {
		if p == client {
			return
		}
	}
	j.payers = append(j.payers, client)
}

// addConstituent records a prefetch constituent, keeping the most urgent
// class per client.
func (j *Job) addConstituent(client string, class Class) {
	for i := range j.cons {
		if j.cons[i].client == client {
			if class < j.cons[i].class {
				j.cons[i].class = class
			}
			return
		}
	}
	j.cons = append(j.cons, constituent{client: client, class: class})
}

// Decision is the outcome of Submit.
type Decision uint8

const (
	// Admitted: capacity was available; the caller must start the
	// simulation now (the scheduler has reserved its capacity).
	Admitted Decision = iota
	// Queued: the request waits in the queue (new job or coalesced into
	// an existing one); the caller should mark its steps as pending.
	Queued
	// Dropped: a prefetch request rejected at capacity.
	Dropped
)

// Config selects the scheduling policy. The zero value reproduces the
// paper's inline rules exactly.
type Config struct {
	// Coalesce merges overlapping or adjacent queued requests of one
	// context into a single job.
	Coalesce bool
	// Priorities drains the queue in class order (demand > guided >
	// agent) and queues prefetch requests at capacity instead of
	// dropping them.
	Priorities bool
	// TotalNodes bounds the summed parallelism of running simulations
	// across all contexts (0 = unlimited). Jobs wider than TotalNodes
	// are clamped by the core via MaxJobNodes.
	TotalNodes int
	// Preempt lets a demand miss blocked on an exhausted node budget
	// kill a running agent prefetch (victim chosen by the policy; its
	// interval is requeued). PreemptOff (zero) never preempts; a
	// TotalNodes budget is required for preemption to ever trigger.
	Preempt PreemptPolicy
	// DRRQuantum enables deficit-round-robin fairness between clients
	// inside a priority class: each client earns this many output steps
	// of launch credit per round, so one greedy client cannot starve its
	// neighbours with a burst of submissions. 0 keeps pure FIFO. The
	// quantum only takes effect alongside Priorities — "within a class"
	// presupposes class ordering; without it the queue is pure
	// submission-order FIFO by definition, and letting credit reorder
	// across classes would let speculative work overtake queued demand.
	DRRQuantum int
	// PreemptSunkCost is the sunk-cost guard on victim selection: a
	// running candidate whose completion fraction (produced steps over
	// its interval length) has reached this threshold is never killed —
	// the compute is mostly spent, so killing it wastes more than the
	// freed nodes are worth, and the requeued re-run would repeat almost
	// the whole interval. 0 disables the guard (paper-exact zero value);
	// thresholds at or above 1 only spare fully-produced simulations,
	// which finish on their own anyway.
	PreemptSunkCost float64
	// PreemptGuided widens preemption eligibility to guided-class
	// prefetches: explicit client hints may also be killed for
	// node-blocked demand work, still under the no-waiters rule and the
	// sunk-cost guard. Off (zero value), only speculative agent
	// prefetches are eligible.
	PreemptGuided bool
	// DemandJoin promotes a *queued* prefetch job to demand class when a
	// demand open lands inside its range. Without it the open merely
	// rides the job's promise — no new request is submitted for a
	// promised step, so even Coalesce never sees the demand interest —
	// and the job keeps draining at prefetch priority behind the whole
	// demand class while a client is blocked on it.
	DemandJoin bool
}

// VictimEligible reports whether a running simulation of the given
// class with completion fraction done may be offered as a preemption
// victim under this config: speculative agent work is always in scope,
// guided hints only with PreemptGuided, and the sunk-cost guard
// (PreemptSunkCost > 0) spares any candidate past the threshold. The
// paper's no-waiters rule is enforced by the core on top of this.
func (c Config) VictimEligible(class Class, done float64) bool {
	if class != Agent && !(c.PreemptGuided && class == Guided) {
		return false
	}
	if c.PreemptSunkCost > 0 && done >= c.PreemptSunkCost {
		return false
	}
	return true
}

// ctxState is the per-context admission ledger and queue. Keeping one
// queue per context makes every pop O(#contexts) — a context whose smax
// blocks its whole queue is skipped in one step instead of being
// rescanned job by job on every drain of a busy neighbour.
type ctxState struct {
	smax     int // max in-flight + queued jobs (0 = unlimited)
	inflight int // admitted, not yet reported done
	jobs     []*Job
}

// Scheduler coordinates re-simulation launches. All methods are safe for
// concurrent use; the internal mutex is the innermost lock in the system.
type Scheduler struct {
	clock des.Clock
	cfg   Config

	// preemptOn caches cfg.Preempt != PreemptOff && cfg.TotalNodes > 0
	// so WantsPreemption costs one atomic load on the hot path when
	// preemption cannot trigger. demandWaiting is a sticky hint that a
	// demand-class job may be queued: set (under mu) whenever one
	// enqueues, cleared by WantsPreemption once it scans and finds none
	// — so with preemption armed, hit-path Opens probing for preemption
	// never touch the scheduler mutex while no demand work waits.
	preemptOn     atomic.Bool
	demandWaiting atomic.Bool

	mu         sync.Mutex
	ctxs       map[string]*ctxState
	depth      int // total queued jobs across contexts
	seq        uint64
	nodes      int            // summed parallelism of in-flight jobs
	reclaiming int            // nodes of preempt victims killed but not yet SimDone
	quota      map[string]int // per-client DRR launch credit (deficit)
	// loads accumulates per-client offered load (output steps submitted,
	// demand and prefetch alike) — the skew signal the autoscale DRR
	// tuner diffs between ticks. Purely observational: it never feeds
	// back into scheduling decisions.
	loads map[string]uint64
	stats metrics.SchedStats
}

// New returns a scheduler reading time from clock (for queue-wait
// accounting) with the given policy.
func New(clock des.Clock, cfg Config) *Scheduler {
	s := &Scheduler{clock: clock, cfg: cfg, ctxs: map[string]*ctxState{}, quota: map[string]int{}}
	s.preemptOn.Store(cfg.Preempt != PreemptOff && cfg.TotalNodes > 0)
	return s
}

// Config returns the scheduling policy in effect.
func (s *Scheduler) Config() Config {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg
}

// SetConfig swaps the scheduling policy on a live scheduler. The change
// applies at the next admission boundary: in-flight simulations keep the
// capacity they were admitted with, queued jobs are re-ordered under the
// new policy (priority order gained or lost), and queued jobs wider than
// a newly imposed node budget are clamped to it so they stay launchable.
// Turning Priorities off leaves already-queued prefetch jobs queued —
// the drop rule only applies to new submissions.
func (s *Scheduler) SetConfig(cfg Config) {
	s.Update(func(Config) Config { return cfg })
}

// Update is SetConfig for partial reconfiguration: mutate receives the
// current config and returns the new one, atomically under the
// scheduler's mutex, so concurrent partial updates cannot lose each
// other's fields. The resulting config is returned.
func (s *Scheduler) Update(mutate func(Config) Config) Config {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cfg = mutate(s.cfg)
	s.preemptOn.Store(s.cfg.Preempt != PreemptOff && s.cfg.TotalNodes > 0)
	for _, cs := range s.ctxs { //simfs:allow maporder per-context clamp and quota backfill are independent per entry
		if s.cfg.TotalNodes > 0 {
			for _, job := range cs.jobs {
				if jobNodes(job.Parallelism) > s.cfg.TotalNodes {
					job.Parallelism = s.cfg.TotalNodes
				}
			}
		}
		if s.drrActive() {
			// Quota entries normally materialize at enqueue; DRR
			// enabled live must backfill them for the jobs already
			// queued, or the backlog's clients would drain uncharged
			// (and every pop would replenish over an empty ledger).
			for _, job := range cs.jobs {
				if _, ok := s.quota[job.Client]; !ok {
					s.quota[job.Client] = 0
				}
				for _, c := range job.cons {
					if _, ok := s.quota[c.client]; !ok {
						s.quota[c.client] = 0
					}
				}
			}
		}
		// Re-sort under the new ordering; s.less ties on seq, so the sort
		// is deterministic and stable with respect to submission order.
		sort.SliceStable(cs.jobs, func(i, j int) bool { return s.less(cs.jobs[i], cs.jobs[j]) })
	}
	return s.cfg
}

// Register declares a context and its per-context capacity (the paper's
// smax; 0 = unlimited). Submitting for an unregistered context registers
// it with unlimited capacity.
func (s *Scheduler) Register(ctx string, smax int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ctxOf(ctx).smax = smax
}

func (s *Scheduler) ctxOf(name string) *ctxState {
	cs, ok := s.ctxs[name]
	if !ok {
		cs = &ctxState{}
		s.ctxs[name] = cs
	}
	return cs
}

// MaxJobNodes returns the widest parallelism a single job may request
// (0 = unbounded). The core clamps requests before submitting, so a job
// wider than the whole machine degrades to using the whole machine
// instead of being rejected.
func (s *Scheduler) MaxJobNodes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cfg.TotalNodes
}

func jobNodes(par int) int {
	if par < 1 {
		return 1
	}
	return par
}

// drrActive reports whether deficit-round-robin fairness is in effect:
// a quantum alone is inert — "within a priority class" needs the class
// ordering Priorities provides. Caller holds s.mu.
func (s *Scheduler) drrActive() bool {
	return s.cfg.DRRQuantum > 0 && s.cfg.Priorities
}

// Submit decides the fate of a launch request: start now (Admitted),
// wait (Queued), or reject (Dropped, prefetch only). The caller holds
// the shard lock of req.Ctx; on Admitted it must start the simulation
// and later report it via SimDone.
func (s *Scheduler) Submit(req Request) Decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	cs := s.ctxOf(req.Ctx)
	s.stats.Submitted++
	s.noteLoad(req)

	atCtxCap := cs.smax > 0 && cs.inflight+len(cs.jobs) >= cs.smax
	// Under a node budget, admission is strictly FIFO: a request never
	// overtakes a job already waiting for nodes, even if it would fit
	// (matching the no-backfill pool it replaces). Jobs queued only by
	// their own context's smax don't count — a full context never gates
	// its neighbours — so the test is for a node-blocked queue head, not
	// for any queued job. Without a budget, contexts are independent and
	// only their own smax gates them.
	atNodeCap := s.cfg.TotalNodes > 0 &&
		(s.nodes+jobNodes(req.Parallelism) > s.cfg.TotalNodes || s.nodeBlockedHead())
	if !atCtxCap && !atNodeCap {
		cs.inflight++
		s.nodes += jobNodes(req.Parallelism)
		s.stats.Admitted++
		return Admitted
	}
	if req.Class != Demand && !s.cfg.Priorities {
		// The paper's rule: "Once smax simulations are running, SimFS
		// will not be able to prefetch new ones" (Sec. VI).
		s.stats.Dropped++
		return Dropped
	}
	s.enqueue(req, false)
	return Queued
}

// loadCap bounds the per-client load ledger; beyond it new client names
// fold into a shared overflow bucket so an ephemeral-client storm
// cannot grow the map without bound.
const loadCap = 4096

// loadOverflow is the shared bucket for clients beyond loadCap.
const loadOverflow = "~other"

// noteLoad accrues a submission's output steps against its client for
// the ClientLoads skew signal. Caller holds s.mu.
func (s *Scheduler) noteLoad(req Request) {
	client := req.Client
	if client == "" {
		return
	}
	if s.loads == nil {
		s.loads = map[string]uint64{}
	}
	if _, ok := s.loads[client]; !ok && len(s.loads) >= loadCap {
		client = loadOverflow
	}
	s.loads[client] += uint64(req.Last - req.First + 1)
}

// ClientLoads snapshots the cumulative per-client offered load (output
// steps submitted, demand and prefetch alike) since the scheduler
// started. Counters are monotone — a disconnect does not remove its
// client — so two snapshots diff into a per-window load distribution,
// which is how the autoscale DRR tuner measures client skew.
func (s *Scheduler) ClientLoads() map[string]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.loads) == 0 {
		return nil
	}
	out := make(map[string]uint64, len(s.loads))
	for c, n := range s.loads {
		out[c] = n
	}
	return out
}

// SetDRRQuantum adjusts only the deficit-round-robin quantum — the
// autoscale tuner's knob — leaving every other policy field untouched,
// and returns the resulting config.
func (s *Scheduler) SetDRRQuantum(q int) Config {
	return s.Update(func(cfg Config) Config {
		cfg.DRRQuantum = q
		return cfg
	})
}

// PromoteDemand lifts a queued non-demand job whose range covers step
// to demand class (Config.DemandJoin): a demand open landing inside a
// queued prefetch job's promise joins that job, and the job must stop
// draining at prefetch priority while a client blocks on it. The job is
// re-inserted at its demand-order position, the opening client joins
// the DRR billing roster, and the demand-waiting hint arms so the
// caller's preemption probe sees the promoted head. Reports whether a
// job was promoted.
func (s *Scheduler) PromoteDemand(ctx string, step int, client string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.cfg.DemandJoin {
		return false
	}
	cs, ok := s.ctxs[ctx]
	if !ok {
		return false
	}
	for i, job := range cs.jobs {
		if job.Class == Demand || step < job.First || step > job.Last {
			continue
		}
		// Demand interest begins now: the wait accrued so far belongs to
		// the job's prefetch class (book it there, as if the job retired
		// and re-entered), so the demand-wait ledger only ever measures
		// time a client actually blocked on queued work.
		if wait := s.clock.Now() - job.enqueuedAt; wait > 0 {
			cw := s.classWait(job.Class)
			cw.Jobs++
			cw.Wait += wait
		}
		job.enqueuedAt = s.clock.Now()
		job.Class = Demand
		job.Client = client
		if s.drrActive() {
			if _, ok := s.quota[client]; !ok {
				s.quota[client] = 0
			}
			job.addPayer(client)
		}
		s.removeAt(cs, i)
		s.insert(cs, job)
		s.demandWaiting.Store(true)
		s.stats.Promoted++
		return true
	}
	return false
}

// nodeBlockedHead reports whether some context's queue head is admissible
// by its smax and therefore waiting on the node budget. Caller holds
// s.mu.
func (s *Scheduler) nodeBlockedHead() bool {
	for _, cs := range s.ctxs { //simfs:allow maporder existence scan; any order reaches the same boolean
		if len(cs.jobs) > 0 && (cs.smax == 0 || cs.inflight < cs.smax) {
			return true
		}
	}
	return false
}

// enqueue inserts (or coalesces) a request into its context's queue.
// Caller holds s.mu.
// enqueue returns the freshly queued job, or nil when the request was
// absorbed into an existing one. Prepaid requests (system requeues)
// always become their own job — see Job.prepaid.
func (s *Scheduler) enqueue(req Request, prepaid bool) *Job {
	if s.drrActive() {
		// Materialize the client's quota entry so DRR selection and
		// replenishment see every client with queued work, not just the
		// already-charged ones.
		if _, ok := s.quota[req.Client]; !ok {
			s.quota[req.Client] = 0
		}
	}
	if req.Class == Demand {
		// Covers both a new demand job and a demand merge promoting a
		// queued prefetch job; a cascade absorbing an existing demand
		// job finds the flag already set (it only clears once no demand
		// job is queued at all).
		s.demandWaiting.Store(true)
	}
	if s.cfg.TotalNodes > 0 && jobNodes(req.Parallelism) > s.cfg.TotalNodes {
		// Same invariant Update enforces on a budget shrink: every
		// queued job must stay launchable. Requeues that bypass the
		// core's admission-time clamp (preemption, pipeline bounces)
		// could otherwise wedge the no-backfill queue head forever
		// after a live budget reduction.
		req.Parallelism = s.cfg.TotalNodes
	}
	cs := s.ctxOf(req.Ctx)
	if s.cfg.Coalesce && !prepaid && s.absorb(cs, req) {
		s.stats.Coalesced++
		return nil
	}
	s.seq++
	job := &Job{Request: req, prepaid: prepaid, seq: s.seq, enqueuedAt: s.clock.Now()}
	if req.Class != Demand {
		job.addConstituent(req.Client, req.Class)
	}
	if s.drrActive() {
		job.addPayer(req.Client)
	}
	s.insert(cs, job)
	s.depth++
	s.stats.Queued++
	if s.depth > s.stats.MaxQueueDepth {
		s.stats.MaxQueueDepth = s.depth
	}
	return job
}

// absorb tries to merge req into a queued job of the same context with an
// overlapping or adjacent step range. It reports whether a merge
// happened; the merged job keeps its queue position (earliest constituent
// wins) unless a class promotion reorders it.
func (s *Scheduler) absorb(cs *ctxState, req Request) bool {
	for i, job := range cs.jobs {
		if job.prepaid {
			continue // billing-exempt requeues never merge
		}
		if req.First > job.Last+1 || job.First > req.Last+1 {
			continue // disjoint and not adjacent
		}
		if req.First < job.First {
			job.First = req.First
		}
		if req.Last > job.Last {
			job.Last = req.Last
		}
		if req.Parallelism > job.Parallelism {
			job.Parallelism = req.Parallelism
		}
		if req.Class < job.Class {
			// The job takes the identity of its most urgent constituent:
			// a demand miss folded into a queued prefetch turns the whole
			// job into demand work.
			job.Class = req.Class
			job.Client = req.Client
		}
		if req.Class != Demand {
			job.addConstituent(req.Client, req.Class)
		}
		if s.drrActive() {
			job.addPayer(req.Client)
		}
		job.Coalesced++
		s.removeAt(cs, i)
		// The grown interval may now touch further queued jobs: cascade.
		for {
			j := overlapping(cs, job)
			if j < 0 {
				break
			}
			other := cs.jobs[j]
			if other.First < job.First {
				job.First = other.First
			}
			if other.Last > job.Last {
				job.Last = other.Last
			}
			if other.Parallelism > job.Parallelism {
				job.Parallelism = other.Parallelism
			}
			if other.Class < job.Class {
				job.Class = other.Class
				job.Client = other.Client
			}
			for _, c := range other.cons {
				job.addConstituent(c.client, c.class)
			}
			for _, p := range other.payers {
				job.addPayer(p)
			}
			if other.seq < job.seq {
				job.seq = other.seq
			}
			if other.enqueuedAt < job.enqueuedAt {
				job.enqueuedAt = other.enqueuedAt
			}
			job.Coalesced += other.Coalesced + 1
			s.removeAt(cs, j)
			s.depth--
		}
		s.insert(cs, job)
		return true
	}
	return false
}

// overlapping returns the index of a queued job of cs overlapping or
// adjacent to job, or -1. Prepaid requeues are never cascade-absorbed:
// folding one into a billed job would lose its billing exemption.
func overlapping(cs *ctxState, job *Job) int {
	for i, other := range cs.jobs {
		if other == job || other.prepaid {
			continue
		}
		if other.First > job.Last+1 || job.First > other.Last+1 {
			continue
		}
		return i
	}
	return -1
}

// less orders a context's queue: class-major when Priorities is on,
// submission order within a class (and overall when off).
func (s *Scheduler) less(a, b *Job) bool {
	if s.cfg.Priorities && a.Class != b.Class {
		return a.Class < b.Class
	}
	return a.seq < b.seq
}

// insert places job at its ordered position in cs's queue. Caller holds
// s.mu.
func (s *Scheduler) insert(cs *ctxState, job *Job) {
	i := len(cs.jobs)
	for i > 0 && s.less(job, cs.jobs[i-1]) {
		i--
	}
	cs.jobs = append(cs.jobs, nil)
	copy(cs.jobs[i+1:], cs.jobs[i:])
	cs.jobs[i] = job
}

// removeAt deletes the i-th entry of cs's queue preserving order. Caller
// holds s.mu.
func (s *Scheduler) removeAt(cs *ctxState, i int) {
	copy(cs.jobs[i:], cs.jobs[i+1:])
	cs.jobs[len(cs.jobs)-1] = nil
	cs.jobs = cs.jobs[:len(cs.jobs)-1]
}

// Next pops the most urgent admissible queued job, reserving its
// capacity: the caller must either start the simulation (and later call
// SimDone) or return the reservation with Release. Contexts at their smax
// are skipped whole — a full context never blocks its neighbours — and
// among the remaining contexts' queue heads the best (class, submission)
// order wins, which is cross-context FIFO fairness within a priority
// class. Node admission is FIFO: when the chosen head does not fit the
// node budget nothing behind it runs either (no backfilling, matching a
// conservatively crowded HPC partition).
func (s *Scheduler) Next() (Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.drrActive() {
		return s.nextDRR()
	}
	var best *ctxState
	for _, cs := range s.ctxs { //simfs:allow maporder less is a total order (seq tiebreak): the minimum is unique
		if len(cs.jobs) == 0 {
			continue
		}
		if cs.smax > 0 && cs.inflight >= cs.smax {
			continue
		}
		if best == nil || s.less(cs.jobs[0], best.jobs[0]) {
			best = cs
		}
	}
	if best == nil {
		return Job{}, false
	}
	job := best.jobs[0]
	if s.cfg.TotalNodes > 0 && s.nodes+jobNodes(job.Parallelism) > s.cfg.TotalNodes {
		return Job{}, false
	}
	s.removeAt(best, 0)
	s.depth--
	best.inflight++
	s.nodes += jobNodes(job.Parallelism)
	s.noteAdmitted(job)
	return *job, true
}

// noteAdmitted books a popped job's queue wait into its class counters.
// Caller holds s.mu.
func (s *Scheduler) noteAdmitted(job *Job) {
	wait := s.clock.Now() - job.enqueuedAt
	if wait < 0 {
		wait = 0
	}
	cw := s.classWait(job.Class)
	cw.Jobs++
	cw.Wait += wait
}

func (s *Scheduler) classWait(c Class) *metrics.SchedClassWait {
	switch c {
	case Demand:
		return &s.stats.DemandWait
	case Guided:
		return &s.stats.GuidedWait
	default:
		return &s.stats.AgentWait
	}
}

// Release returns the capacity reserved by Next for a job the caller
// decided not to start (admission-time revalidation found it stale). A
// context dropped (deregistered) between the pop and the release keeps
// only the node accounting — re-creating its ledger would leave a
// negative inflight count behind. The DRR charge the pop billed is
// refunded: work that never ran must not count against its clients.
func (s *Scheduler) Release(job Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cs, ok := s.ctxs[job.Ctx]; ok {
		cs.inflight--
	}
	s.nodes -= jobNodes(job.Parallelism)
	if s.drrActive() && !job.prepaid {
		s.refundQuota(&job)
	}
	s.stats.Canceled++
}

// SimDone reports that a launched simulation ended (completed, failed or
// killed), freeing its context slot and nodes. nodes must be the
// parallelism the job was admitted with. For admitted jobs dismantled
// before launch — parked pipeline placeholders — use ReleaseSlot: their
// nodes were already returned by ParkNodes. A context deregistered while
// the simulation drained keeps only the node accounting: re-creating the
// ledger would leave a ghost context with a negative inflight count.
func (s *Scheduler) SimDone(ctx string, nodes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.simDoneLocked(ctx, nodes)
}

// SimDonePreempted is SimDone for a preemption victim: the node return
// and the reclaim-ledger settlement land in one critical section, so no
// observer ever sees the victim's nodes both returned and still counted
// as being reclaimed.
func (s *Scheduler) SimDonePreempted(ctx string, nodes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.simDoneLocked(ctx, nodes)
	s.reclaiming -= jobNodes(nodes)
}

func (s *Scheduler) simDoneLocked(ctx string, nodes int) {
	if cs, ok := s.ctxs[ctx]; ok {
		cs.inflight--
	}
	s.nodes -= jobNodes(nodes)
}

// ParkNodes returns an admitted job's nodes to the budget while it waits
// for upstream inputs (pipeline virtualization): a parked simulation
// consumes its context slot but no nodes, so the upstream re-simulation
// it depends on can be admitted — holding the budget across the
// dependency would deadlock the pipeline.
func (s *Scheduler) ParkNodes(nodes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nodes -= jobNodes(nodes)
}

// ClaimNodes tries to re-reserve a parked job's nodes once its inputs are
// ready. On false the budget is busy: the caller must give up its slot
// (ReleaseSlot) and requeue the work (Enqueue) instead of launching.
func (s *Scheduler) ClaimNodes(nodes int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.TotalNodes > 0 && s.nodes+jobNodes(nodes) > s.cfg.TotalNodes {
		return false
	}
	s.nodes += jobNodes(nodes)
	return true
}

// ReleaseSlot frees the context slot of an admitted-but-never-launched
// job whose nodes are already parked (pipeline placeholder dismantled or
// requeued). Like Release and SimDone it tolerates a context
// deregistered between the admission and the release: the ledger is
// gone, so there is no slot left to return — re-creating it here would
// plant a ghost context with inflight −1 that CheckInvariants (and any
// later re-registration) would trip over.
func (s *Scheduler) ReleaseSlot(ctx string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if cs, ok := s.ctxs[ctx]; ok {
		cs.inflight--
	}
}

// Enqueue queues a request unconditionally, bypassing admission — used to
// requeue work the system itself displaced: a pipeline job whose
// upstream inputs became ready while the node budget was busy, or a
// preemption victim's interval. It drains like any queued job once
// capacity frees. The job is marked prepaid: requeued work is never
// billed again by the DRR quota — the client already paid at the
// original pop (or was admitted without queueing and owes nothing), and
// system-initiated bounces are not the client's doing.
func (s *Scheduler) Enqueue(req Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Submitted++
	s.enqueue(req, true)
}

// CancelClient withdraws one client's interest from the queued prefetch
// jobs of a context. A job is de-queued only when its last constituent
// client withdraws (a coalesced job may serve several) and only if keep
// reports nobody else wants its range (waiters or references in the
// core), mirroring the paper's rule that a simulation is killed only
// when nobody waits for its output. The removed jobs are returned so the
// core can dismantle their pending markers.
//
// keep runs without the scheduler lock held (the scheduler mutex is the
// innermost lock and never wraps foreign code); candidates are
// re-checked for membership before removal, so a job popped by a
// concurrent drain in the meantime is simply no longer cancelable.
func (s *Scheduler) CancelClient(ctx, client string, keep func(first, last int) bool) []Job {
	s.mu.Lock()
	cs, ok := s.ctxs[ctx]
	if !ok {
		s.mu.Unlock()
		return nil
	}
	var candidates []*Job
	for _, job := range cs.jobs {
		if job.Class == Demand {
			continue
		}
		for _, c := range job.cons {
			if c.client == client {
				candidates = append(candidates, job)
				break
			}
		}
	}
	s.mu.Unlock()
	if len(candidates) == 0 {
		return nil
	}

	kept := make([]bool, len(candidates))
	for i, job := range candidates {
		kept[i] = keep != nil && keep(job.First, job.Last)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	var removed []Job
	for i, job := range candidates {
		if kept[i] {
			continue
		}
		// The job may have been admitted (or merged away) while keep ran.
		idx := -1
		for j, q := range cs.jobs {
			if q == job {
				idx = j
				break
			}
		}
		if idx < 0 {
			continue
		}
		// Withdraw this client; other constituents keep the job alive,
		// with class and client identity recomputed from what remains
		// (the priority position follows the class, so the job is
		// re-inserted when it changes). The billing roster shrinks with
		// it — a withdrawn client must not keep paying for the job.
		cons := job.cons[:0]
		for _, c := range job.cons {
			if c.client != client {
				cons = append(cons, c)
			}
		}
		job.cons = cons
		payers := job.payers[:0]
		for _, p := range job.payers {
			if p != client {
				payers = append(payers, p)
			}
		}
		job.payers = payers
		if len(job.cons) > 0 {
			best := job.cons[0]
			for _, c := range job.cons[1:] {
				if c.class < best.class {
					best = c
				}
			}
			reorder := job.Class != best.class
			job.Class = best.class
			job.Client = best.client
			if reorder {
				s.removeAt(cs, idx)
				s.insert(cs, job)
			}
			continue
		}
		removed = append(removed, *job)
		s.removeAt(cs, idx)
		s.depth--
		s.stats.Canceled++
	}
	return removed
}

// DropContext forgets a context being deregistered: its queued jobs are
// removed (and returned, so the core can dismantle their pending
// markers) and its admission ledger is deleted. The caller guarantees no
// simulation of the context is in flight; a non-zero inflight count is a
// ledger bug surfaced by CheckInvariants, so it is dropped regardless.
func (s *Scheduler) DropContext(ctx string) []Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	cs, ok := s.ctxs[ctx]
	if !ok {
		return nil
	}
	var removed []Job
	for _, job := range cs.jobs {
		removed = append(removed, *job)
		s.depth--
		s.stats.Canceled++
	}
	delete(s.ctxs, ctx)
	return removed
}

// QueuedRanges lists the step ranges of a context's queued jobs (for the
// core to reconcile its pending-step markers after a cancellation).
func (s *Scheduler) QueuedRanges(ctx string) [][2]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	cs, ok := s.ctxs[ctx]
	if !ok {
		return nil
	}
	var rs [][2]int
	for _, job := range cs.jobs {
		rs = append(rs, [2]int{job.First, job.Last})
	}
	return rs
}

// QueueDepth returns the current number of queued jobs.
func (s *Scheduler) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.depth
}

// Stats returns a snapshot of the scheduler counters.
func (s *Scheduler) Stats() metrics.SchedStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.QueueDepth = s.depth
	return st
}

// CheckInvariants audits the internal ledgers (used by the core's
// property tests).
func (s *Scheduler) CheckInvariants() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	// Sorted iteration so the first violation reported is deterministic.
	for _, name := range slices.Sorted(maps.Keys(s.ctxs)) {
		cs := s.ctxs[name]
		if cs.inflight < 0 {
			return fmt.Errorf("sched: context %q has negative inflight %d", name, cs.inflight)
		}
		total += len(cs.jobs)
		for i, job := range cs.jobs {
			if job.First > job.Last || job.First < 1 {
				return fmt.Errorf("sched: %q job %d has malformed range [%d,%d]", name, i, job.First, job.Last)
			}
			if job.Ctx != name {
				return fmt.Errorf("sched: job for %q filed under %q", job.Ctx, name)
			}
			if i > 0 && s.less(job, cs.jobs[i-1]) {
				return fmt.Errorf("sched: %q queue out of order at %d", name, i)
			}
		}
	}
	if total != s.depth {
		return fmt.Errorf("sched: depth ledger %d != queue contents %d", s.depth, total)
	}
	if s.nodes < 0 {
		return fmt.Errorf("sched: negative node usage %d", s.nodes)
	}
	if s.reclaiming < 0 {
		return fmt.Errorf("sched: negative preempt-reclaim ledger %d", s.reclaiming)
	}
	if s.reclaiming > s.nodes {
		return fmt.Errorf("sched: reclaiming %d nodes but only %d in flight", s.reclaiming, s.nodes)
	}
	return nil
}
