package sched

import (
	"fmt"
	"testing"
)

// BenchmarkSchedulerLaunchStorm hammers the scheduler with the traffic
// shape of a saturated multi-client daemon: bursts of demand and prefetch
// requests over several contexts at capacity, interleaved with sim
// completions that drain the queue. It measures the per-request cost of
// admission, coalescing and queue maintenance — the scheduler work added
// to every miss on the DV hot path.
func BenchmarkSchedulerLaunchStorm(b *testing.B) {
	for _, cfg := range []struct {
		name string
		c    Config
	}{
		{"legacy", Config{}},
		{"coalesce+priorities", Config{Coalesce: true, Priorities: true}},
		{"nodes=64", Config{Coalesce: true, Priorities: true, TotalNodes: 64}},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			runSchedStorm(b, cfg.c, false)
		})
	}
}

// BenchmarkSchedulerPreemptStorm is the launch storm with the PR 5 knobs
// armed — node budget, preemption and per-client DRR quotas — so the
// preempt-free fast path (Submit/Next/SimDone with WantsPreemption
// probed each round, preemption armed but rarely firing) stays on the
// scoreboard. TestPreemptFreeFastPathNoAllocs pins its steady state at
// 0 allocs/op; the "kills" variant also cycles MarkPreempted/
// SimDonePreempted the way a victim death does.
func BenchmarkSchedulerPreemptStorm(b *testing.B) {
	cfg := Config{
		Coalesce: true, Priorities: true, TotalNodes: 64,
		Preempt: PreemptYoungest, DRRQuantum: 16,
	}
	b.Run("fast-path", func(b *testing.B) {
		runSchedStorm(b, cfg, false)
	})
	b.Run("kills", func(b *testing.B) {
		runSchedStorm(b, cfg, true)
	})
}

// runSchedStorm hammers the scheduler with the traffic shape of a
// saturated multi-client daemon (see BenchmarkSchedulerLaunchStorm).
// With kills set, every 16th completed simulation dies as a preemption
// victim, exercising the MarkPreempted/SimDonePreempted ledger.
func runSchedStorm(b *testing.B, cfg Config, kills bool) {
	const contexts = 8
	clk := &manualClock{}
	s := New(clk, cfg)
	names := make([]string, contexts)
	running := make([][]int, contexts) // node counts of admitted sims
	for i := range names {
		names[i] = fmt.Sprintf("ctx%d", i)
		s.Register(names[i], 4)
	}
	classes := []Class{Demand, Agent, Demand, Guided}
	clients := []string{"cli-a", "cli-b", "cli-c"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := i % contexts
		first := 1 + (i%97)*4
		r := Request{
			Ctx: names[c], First: first, Last: first + 11,
			Parallelism: 1 + i%8,
			Class:       classes[i%len(classes)],
			Client:      clients[i%len(clients)],
		}
		if s.Submit(r) == Admitted {
			running[c] = append(running[c], r.Parallelism)
		}
		// The preemption probe the core runs after every demand miss.
		s.WantsPreemption()
		// Every third request a simulation completes, draining the
		// queue — the contexts hover at capacity so the queued and
		// coalescing paths stay hot.
		if i%3 == 0 && len(running[c]) > 0 {
			nodes := running[c][len(running[c])-1]
			running[c] = running[c][:len(running[c])-1]
			if kills && i%48 == 0 {
				// A preemption victim dies: mark, then settle, as the
				// core's kill → SimEnded pair does.
				s.MarkPreempted(nodes)
				s.SimDonePreempted(names[c], nodes)
			} else {
				s.SimDone(names[c], nodes)
			}
			for {
				j, ok := s.Next()
				if !ok {
					break
				}
				for k, n := range names {
					if n == j.Ctx {
						running[k] = append(running[k], j.Parallelism)
					}
				}
			}
		}
	}
	b.StopTimer()
	if err := s.CheckInvariants(); err != nil {
		b.Fatal(err)
	}
}
