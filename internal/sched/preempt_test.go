package sched

import (
	"testing"
	"time"
)

func TestParsePreemptPolicy(t *testing.T) {
	cases := map[string]PreemptPolicy{
		"": PreemptOff, "off": PreemptOff, "none": PreemptOff,
		"youngest": PreemptYoungest, "cheapest": PreemptCheapest,
	}
	for name, want := range cases {
		got, err := ParsePreemptPolicy(name)
		if err != nil || got != want {
			t.Errorf("ParsePreemptPolicy(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParsePreemptPolicy("eldest"); err == nil {
		t.Error("unknown policy name parsed without error")
	}
	for p, want := range map[PreemptPolicy]string{
		PreemptOff: "off", PreemptYoungest: "youngest", PreemptCheapest: "cheapest", PreemptPolicy(9): "unknown",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}

func TestPreemptPolicyChoose(t *testing.T) {
	cands := []Victim{
		{SimID: 1, LaunchedAt: 10 * time.Second, Remaining: 30 * time.Second},
		{SimID: 2, LaunchedAt: 20 * time.Second, Remaining: 5 * time.Second},
		{SimID: 3, LaunchedAt: 15 * time.Second, Remaining: 50 * time.Second},
	}
	if i := PreemptYoungest.Choose(cands); cands[i].SimID != 2 {
		t.Errorf("youngest chose sim %d, want 2 (latest launch)", cands[i].SimID)
	}
	if i := PreemptCheapest.Choose(cands); cands[i].SimID != 2 {
		t.Errorf("cheapest chose sim %d, want 2 (least remaining)", cands[i].SimID)
	}
	if i := PreemptOff.Choose(cands); i != -1 {
		t.Errorf("off chose %d, want -1", i)
	}
	if i := PreemptYoungest.Choose(nil); i != -1 {
		t.Errorf("empty candidate list chose %d, want -1", i)
	}
	// Ties break toward the higher simulation id, deterministically.
	ties := []Victim{
		{SimID: 7, LaunchedAt: time.Second, Remaining: time.Second},
		{SimID: 9, LaunchedAt: time.Second, Remaining: time.Second},
	}
	if i := PreemptYoungest.Choose(ties); ties[i].SimID != 9 {
		t.Errorf("youngest tie chose sim %d, want 9", ties[i].SimID)
	}
	if i := PreemptCheapest.Choose(ties); ties[i].SimID != 9 {
		t.Errorf("cheapest tie chose sim %d, want 9", ties[i].SimID)
	}
}

// WantsPreemption fires only for a demand job blocked on the node budget
// while its context has smax room — and stops firing once a victim's
// nodes are marked as being reclaimed.
func TestWantsPreemptionOnlyForNodeBlockedDemand(t *testing.T) {
	s := New(&manualClock{}, Config{Priorities: true, TotalNodes: 2, Preempt: PreemptYoungest})
	s.Register("c", 0)
	r := req("c", 1, 4, Agent, "spec")
	r.Parallelism = 2
	if d := s.Submit(r); d != Admitted {
		t.Fatalf("agent prefetch = %v, want Admitted", d)
	}
	if s.WantsPreemption() {
		t.Fatal("no demand queued: nothing to preempt for")
	}
	if d := s.Submit(req("c", 9, 12, Agent, "spec")); d != Queued {
		t.Fatalf("second prefetch = %v, want Queued", d)
	}
	if s.WantsPreemption() {
		t.Fatal("queued prefetch must not trigger preemption")
	}
	if d := s.Submit(req("c", 17, 20, Demand, "a")); d != Queued {
		t.Fatalf("demand = %v, want Queued (node-blocked)", d)
	}
	if !s.WantsPreemption() {
		t.Fatal("node-blocked demand should want preemption")
	}
	// A victim being reclaimed covers the need: no cascade kill.
	s.MarkPreempted(2)
	if s.WantsPreemption() {
		t.Fatal("reclaiming nodes must suppress further preemption")
	}
	s.SimDonePreempted("c", 2)
	j, ok := s.Next()
	if !ok || j.Class != Demand {
		t.Fatalf("popped %+v, want the demand job after the victim died", j)
	}
	if st := s.Stats(); st.Preempted != 1 {
		t.Errorf("Preempted = %d, want 1", st.Preempted)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Preemption is inert without a node budget and with the policy off.
func TestWantsPreemptionGates(t *testing.T) {
	s := New(&manualClock{}, Config{Priorities: true, Preempt: PreemptYoungest})
	s.Register("c", 1)
	s.Submit(req("c", 1, 4, Demand, "a"))
	s.Submit(req("c", 9, 12, Demand, "a"))
	if s.WantsPreemption() {
		t.Fatal("smax-blocked demand without a node budget must not preempt")
	}
	s2 := New(&manualClock{}, Config{Priorities: true, TotalNodes: 1})
	s2.Register("c", 0)
	s2.Submit(req("c", 1, 4, Agent, "spec"))
	s2.Submit(req("c", 9, 12, Demand, "a"))
	if s2.WantsPreemption() {
		t.Fatal("PreemptOff must never want preemption")
	}
}

// A live sched-set flip turns preemption on and off without a restart.
func TestPreemptFlipsLive(t *testing.T) {
	s := New(&manualClock{}, Config{Priorities: true, TotalNodes: 1})
	s.Register("c", 0)
	s.Submit(req("c", 1, 4, Agent, "spec"))
	s.Submit(req("c", 9, 12, Demand, "a"))
	if s.WantsPreemption() {
		t.Fatal("preemption off at boot")
	}
	s.Update(func(c Config) Config { c.Preempt = PreemptCheapest; return c })
	if !s.WantsPreemption() {
		t.Fatal("live flip to cheapest must enable preemption")
	}
	s.Update(func(c Config) Config { c.Preempt = PreemptOff; return c })
	if s.WantsPreemption() {
		t.Fatal("live flip back to off must disable preemption")
	}
}

// Enqueue (the admission-bypassing requeue path used by preemption and
// pipeline bounces) clamps jobs wider than the node budget, mirroring
// Update's invariant: a queued job must stay launchable, or the
// no-backfill rule would wedge the whole queue behind it forever.
func TestEnqueueClampsToNodeBudget(t *testing.T) {
	s := New(&manualClock{}, Config{Priorities: true, TotalNodes: 4})
	s.Register("c", 0)
	// A budget shrink after admission can leave a running job wider than
	// the budget; its preemption/bounce requeue must be clamped.
	s.Enqueue(Request{Ctx: "c", First: 1, Last: 12, Parallelism: 100, Class: Agent, Client: "spec"})
	j, ok := s.Next()
	if !ok {
		t.Fatal("over-wide requeued job never admitted — it wedged the queue")
	}
	if j.Parallelism != 4 {
		t.Fatalf("requeued parallelism = %d, want clamped to the 4-node budget", j.Parallelism)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// --- Deficit-round-robin fairness ------------------------------------------

// DRR only takes effect alongside Priorities: without classes the queue
// is pure FIFO by definition, and credit must not reorder across
// classes (speculative work overtaking queued demand).
func TestDRRInertWithoutPriorities(t *testing.T) {
	s := New(&manualClock{}, Config{DRRQuantum: 4})
	s.Register("c", 1)
	s.Submit(req("c", 1, 4, Demand, "x"))
	s.Submit(req("c", 9, 12, Demand, "greedy"))
	s.Submit(req("c", 17, 20, Demand, "greedy"))
	s.Submit(req("c", 25, 28, Demand, "meek"))
	var owners []string
	for range [3]int{} {
		s.SimDone("c", 1)
		j, _ := s.Next()
		owners = append(owners, j.Client)
	}
	want := []string{"greedy", "greedy", "meek"}
	for i, o := range want {
		if owners[i] != o {
			t.Fatalf("pop order = %v, want pure FIFO %v without Priorities", owners, want)
		}
	}
	if _, ok := s.QuotaDebt("greedy"); ok {
		t.Error("quota charged while DRR is inert")
	}
}

// A system-initiated requeue (preemption victim, pipeline bounce) is
// prepaid: its re-pop must not bill the client a second time for the
// same interval.
func TestDRRRequeueNotDoubleCharged(t *testing.T) {
	s := New(&manualClock{}, Config{Priorities: true, DRRQuantum: 16})
	s.Register("c", 1)
	s.Submit(req("c", 1, 4, Demand, "x"))
	s.Submit(req("c", 9, 16, Agent, "bob"))
	s.SimDone("c", 1)
	if _, ok := s.Next(); !ok {
		t.Fatal("expected bob's prefetch")
	}
	charged, _ := s.QuotaDebt("bob")
	// The running job is preempted: SimDone + requeue of the interval.
	s.SimDone("c", 1)
	s.Enqueue(req("c", 9, 16, Agent, "bob"))
	j, ok := s.Next()
	if !ok || j.First != 9 {
		t.Fatalf("popped %+v, want the requeued [9,16]", j)
	}
	if after, _ := s.QuotaDebt("bob"); after != charged {
		t.Errorf("requeue re-billed bob: %d → %d, want unchanged", charged, after)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Prepaid requeues are excluded from coalescing in both directions:
// absorbing one into a billed job would double-bill the victim, and a
// fresh request merging into one would drain uncharged.
func TestDRRPrepaidExcludedFromCoalescing(t *testing.T) {
	s := New(&manualClock{}, Config{Coalesce: true, Priorities: true, DRRQuantum: 16})
	s.Register("c", 1)
	s.Submit(req("c", 40, 43, Demand, "x"))
	// A billed job queues, then an overlapping prepaid requeue arrives:
	// they must stay separate.
	s.Submit(req("c", 9, 16, Agent, "bob"))
	s.Enqueue(req("c", 14, 20, Agent, "victim"))
	if got := s.QueueDepth(); got != 2 {
		t.Fatalf("queue depth = %d, want 2 (prepaid requeue must not merge)", got)
	}
	// And a fresh overlapping submission must not ride the prepaid job.
	if d := s.Submit(req("c", 18, 24, Agent, "fresh")); d != Queued {
		t.Fatalf("fresh overlap = %v, want Queued", d)
	}
	if got := s.QueueDepth(); got != 3 {
		t.Fatalf("queue depth = %d, want 3 (fresh work must not merge into the prepaid job)", got)
	}
	s.SimDone("c", 1)
	charged := map[string]bool{}
	for {
		j, ok := s.Next()
		if !ok {
			break
		}
		s.SimDone(j.Ctx, j.Parallelism)
		charged[j.Client] = true
	}
	// The prepaid pop never charged its client: the entry holds full
	// credit (replenish rounds lift uncharged clients to the cap).
	if d, ok := s.QuotaDebt("victim"); !ok || d != 16 {
		t.Errorf("prepaid requeue charged its client: credit=%d ok=%v, want the full 16-step cap", d, ok)
	}
	if d, _ := s.QuotaDebt("fresh"); d == 16 {
		t.Error("fresh overlapping work drained uncharged")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// A popped job released unlaunched (stale revalidation) refunds its DRR
// charge: work that never ran must not count against the client.
func TestDRRReleaseRefundsCharge(t *testing.T) {
	s := New(&manualClock{}, Config{Priorities: true, DRRQuantum: 16})
	s.Register("c", 1)
	s.Submit(req("c", 1, 4, Demand, "x"))
	s.Submit(req("c", 9, 16, Agent, "bob"))
	s.SimDone("c", 1)
	j, ok := s.Next()
	if !ok {
		t.Fatal("expected bob's prefetch")
	}
	charged, _ := s.QuotaDebt("bob")
	s.Release(j) // revalidation found it stale
	refunded, _ := s.QuotaDebt("bob")
	if refunded <= charged {
		t.Errorf("release did not refund: %d → %d", charged, refunded)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// A greedy client's burst no longer starves a neighbour inside the same
// class: after the greedy client's first job is charged, the neighbour's
// single job outranks the rest of the burst.
func TestDRRFairnessBreaksBurst(t *testing.T) {
	s := New(&manualClock{}, Config{Priorities: true, DRRQuantum: 4})
	s.Register("c", 1)
	s.Submit(req("c", 1, 4, Demand, "x")) // fills the context
	s.Submit(req("c", 10, 13, Agent, "greedy"))
	s.Submit(req("c", 20, 23, Agent, "greedy"))
	s.Submit(req("c", 30, 33, Agent, "greedy"))
	s.Submit(req("c", 40, 43, Agent, "meek"))
	var owners []string
	for range [4]int{} {
		s.SimDone("c", 1)
		j, ok := s.Next()
		if !ok {
			t.Fatal("expected a job")
		}
		owners = append(owners, j.Client)
	}
	want := []string{"greedy", "meek", "greedy", "greedy"}
	for i, o := range want {
		if owners[i] != o {
			t.Fatalf("pop order = %v, want %v", owners, want)
		}
	}
	st := s.Stats()
	if st.QuotaDeferred == 0 {
		t.Error("fairness never overrode FIFO order on this workload")
	}
	if st.QuotaRounds == 0 {
		t.Error("no DRR round was ever granted")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Zero quantum keeps pure FIFO: the greedy burst drains in submission
// order (the control for the test above).
func TestDRRZeroQuantumIsFIFO(t *testing.T) {
	s := New(&manualClock{}, Config{Priorities: true})
	s.Register("c", 1)
	s.Submit(req("c", 1, 4, Demand, "x"))
	s.Submit(req("c", 10, 13, Agent, "greedy"))
	s.Submit(req("c", 20, 23, Agent, "greedy"))
	s.Submit(req("c", 40, 43, Agent, "meek"))
	var owners []string
	for range [3]int{} {
		s.SimDone("c", 1)
		j, _ := s.Next()
		owners = append(owners, j.Client)
	}
	want := []string{"greedy", "greedy", "meek"}
	for i, o := range want {
		if owners[i] != o {
			t.Fatalf("pop order = %v, want FIFO %v", owners, want)
		}
	}
	if st := s.Stats(); st.QuotaDeferred != 0 || st.QuotaRounds != 0 {
		t.Errorf("quota counters moved without a quantum: %+v", st)
	}
}

// A coalesced multi-client job charges each constituent its fair share
// instead of billing whoever submitted first.
func TestDRRCoalescedChargesConstituents(t *testing.T) {
	s := New(&manualClock{}, Config{Coalesce: true, Priorities: true, DRRQuantum: 8})
	s.Register("c", 1)
	s.Submit(req("c", 1, 4, Demand, "x"))
	s.Submit(req("c", 10, 17, Agent, "alice"))
	s.Submit(req("c", 14, 21, Agent, "bob")) // merges into alice's job
	if got := s.QueueDepth(); got != 1 {
		t.Fatalf("queue depth = %d, want 1 merged job", got)
	}
	s.SimDone("c", 1)
	j, ok := s.Next()
	if !ok || j.First != 10 || j.Last != 21 {
		t.Fatalf("popped %+v, want the merged [10,21] job", j)
	}
	// Cost 12 over two constituents: 6 each — equal debt, not 12 on the
	// earlier submitter.
	da, oka := s.QuotaDebt("alice")
	db, okb := s.QuotaDebt("bob")
	if !oka || !okb {
		t.Fatalf("constituents missing from the quota ledger: alice=%v bob=%v", oka, okb)
	}
	if da != db {
		t.Errorf("constituent debts diverged: alice=%d bob=%d", da, db)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// A coalesced multi-client *demand* merge also splits the bill: demand
// requesters ride the payer roster even though they are never prefetch
// constituents, so the first submitter does not pay for everyone.
func TestDRRDemandMergeSplitsCost(t *testing.T) {
	s := New(&manualClock{}, Config{Coalesce: true, Priorities: true, DRRQuantum: 8})
	s.Register("c", 1)
	s.Submit(req("c", 40, 43, Demand, "x"))
	s.Submit(req("c", 1, 6, Demand, "alice"))
	s.Submit(req("c", 7, 12, Demand, "bob")) // adjacent: merges into alice's job
	if got := s.QueueDepth(); got != 1 {
		t.Fatalf("queue depth = %d, want 1 merged demand job", got)
	}
	s.SimDone("c", 1)
	j, ok := s.Next()
	if !ok || j.First != 1 || j.Last != 12 {
		t.Fatalf("popped %+v, want the merged [1,12] demand job", j)
	}
	da, oka := s.QuotaDebt("alice")
	db, okb := s.QuotaDebt("bob")
	if !oka || !okb {
		t.Fatalf("merged demand clients missing from the ledger: alice=%v bob=%v", oka, okb)
	}
	if da != db {
		t.Errorf("demand merge billed unevenly: alice=%d bob=%d", da, db)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// DropClientQuota releases a disconnected client's quota debt: the name
// starts fresh on reconnect instead of inheriting the old deficit.
func TestDRRQuotaReleasedOnDisconnect(t *testing.T) {
	s := New(&manualClock{}, Config{Priorities: true, DRRQuantum: 4})
	s.Register("c", 1)
	s.Submit(req("c", 1, 4, Demand, "x"))
	s.Submit(req("c", 10, 19, Agent, "heavy"))
	s.SimDone("c", 1)
	if _, ok := s.Next(); !ok {
		t.Fatal("expected the prefetch job")
	}
	if d, ok := s.QuotaDebt("heavy"); !ok || d >= 0 {
		t.Fatalf("debt = %d, %v; want a charged (negative) entry", d, ok)
	}
	s.DropClientQuota("heavy")
	if _, ok := s.QuotaDebt("heavy"); ok {
		t.Fatal("quota entry survived the disconnect")
	}
}

// A job whose client disconnected while it sat queued must not re-plant
// a ghost quota entry when it finally pops: over a long-lived daemon's
// client churn the ledger would otherwise grow without bound.
func TestDRRQuotaNotRecreatedAfterDrop(t *testing.T) {
	s := New(&manualClock{}, Config{Priorities: true, DRRQuantum: 4})
	s.Register("c", 1)
	s.Submit(req("c", 1, 4, Demand, "x"))
	// A demand job stays queued across its client's disconnect
	// (CancelClient only withdraws prefetch work).
	s.Submit(req("c", 9, 12, Demand, "gone"))
	s.DropClientQuota("gone")
	s.SimDone("c", 1)
	if _, ok := s.Next(); !ok {
		t.Fatal("expected the orphaned demand job")
	}
	if _, ok := s.QuotaDebt("gone"); ok {
		t.Error("charging the orphaned job re-created the dropped client's quota entry")
	}
}

// Enabling DRR on a live scheduler backfills quota entries for the
// clients of already-queued jobs, so the backlog is charged and the
// fairness takes effect immediately instead of waiting for the next
// enqueue.
func TestDRRLiveEnableBackfillsQueuedClients(t *testing.T) {
	s := New(&manualClock{}, Config{Coalesce: true, Priorities: true})
	s.Register("c", 1)
	s.Submit(req("c", 1, 4, Demand, "x"))
	s.Submit(req("c", 10, 17, Agent, "alice"))
	s.Submit(req("c", 14, 21, Agent, "bob")) // coalesced constituent
	s.Submit(req("c", 30, 33, Demand, "carol"))
	s.Update(func(c Config) Config { c.DRRQuantum = 8; return c })
	for _, client := range []string{"alice", "bob", "carol"} {
		if _, ok := s.QuotaDebt(client); !ok {
			t.Errorf("queued client %q missing from the ledger after the live quantum enable", client)
		}
	}
	// The backlog is charged once it drains.
	s.SimDone("c", 1)
	for {
		j, ok := s.Next()
		if !ok {
			break
		}
		s.SimDone(j.Ctx, j.Parallelism)
	}
	// Carol's 4-step demand job was charged: at most quantum−4 credit
	// remains (an uncharged client would sit at the 8-step cap).
	if d, ok := s.QuotaDebt("carol"); !ok || d > 4 {
		t.Errorf("carol's backlog job went uncharged: debt=%d ok=%v", d, ok)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// The preempt-free fast path of a fully configured scheduler (budget +
// preemption + quotas) stays allocation-free in steady state: the knobs
// must not tax every miss on the DV hot path.
func TestPreemptFreeFastPathNoAllocs(t *testing.T) {
	s := New(&manualClock{}, Config{
		Coalesce: true, Priorities: true, TotalNodes: 64,
		Preempt: PreemptYoungest, DRRQuantum: 8,
	})
	s.Register("c", 4)
	// Warm the ledgers (context state, quota entries).
	for i := 0; i < 8; i++ {
		if s.Submit(req("c", 1+8*i, 8+8*i, Demand, "cli")) == Admitted {
			s.SimDone("c", 1)
		}
	}
	drain(s)
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		first := 1 + (i%97)*8
		i++
		if s.Submit(req("c", first, first+7, Demand, "cli")) == Admitted {
			s.SimDone("c", 1)
		}
		s.WantsPreemption()
		for {
			j, ok := s.Next()
			if !ok {
				break
			}
			s.SimDone(j.Ctx, j.Parallelism)
		}
	})
	if avg != 0 {
		t.Errorf("preempt-free fast path allocates %.1f allocs/op, want 0", avg)
	}
}
