package sched

import (
	"fmt"
	"time"
)

// PreemptPolicy selects the victim when preemption is enabled: with the
// node budget exhausted, a demand miss may kill (not merely outrank) a
// running speculative agent prefetch and take its nodes. The paper's
// no-waiters rule still gates eligibility — the core only offers
// candidates nobody waits for or references — and the victim's interval
// is requeued so the speculative work is deferred, not lost.
//
// The zero value (PreemptOff) never preempts, preserving the paper-exact
// semantics of the zero Config.
type PreemptPolicy uint8

const (
	// PreemptOff disables preemption (the paper's rule: a running
	// simulation is only ever killed by a prefetch reset or disconnect).
	PreemptOff PreemptPolicy = iota
	// PreemptYoungest kills the most recently launched candidate: it has
	// sunk the least compute, so the wasted work is minimal.
	PreemptYoungest
	// PreemptCheapest kills the candidate with the smallest
	// remaining-time estimate (the cost model's remaining production
	// time): its re-run after requeueing costs the least extra compute.
	PreemptCheapest
)

func (p PreemptPolicy) String() string {
	switch p {
	case PreemptOff:
		return "off"
	case PreemptYoungest:
		return "youngest"
	case PreemptCheapest:
		return "cheapest"
	}
	return "unknown"
}

// ParsePreemptPolicy maps a wire/flag name to a policy. The empty string
// parses as PreemptOff so unset config fields stay paper-exact.
func ParsePreemptPolicy(name string) (PreemptPolicy, error) {
	switch name {
	case "", "off", "none":
		return PreemptOff, nil
	case "youngest":
		return PreemptYoungest, nil
	case "cheapest":
		return PreemptCheapest, nil
	}
	return PreemptOff, fmt.Errorf("sched: unknown preempt policy %q (want off|youngest|cheapest)", name)
}

// Victim describes one preemption candidate: a running agent prefetch
// the core found killable under the no-waiters rule. The core computes
// Remaining from the cost model (remaining output steps × τ(P), plus the
// restart latency if production has not begun); the victim's node count
// is re-read authoritatively under its shard lock at kill time, so it
// is deliberately not part of the selection record.
type Victim struct {
	SimID      int64
	LaunchedAt time.Duration
	Remaining  time.Duration
}

// Choose picks the victim index per policy (-1 when the policy is off or
// no candidate exists). Ties break toward the later-launched simulation
// id, so the choice is deterministic regardless of candidate order.
func (p PreemptPolicy) Choose(cands []Victim) int {
	if p == PreemptOff || len(cands) == 0 {
		return -1
	}
	best := 0
	for i := 1; i < len(cands); i++ {
		if p.better(cands[i], cands[best]) {
			best = i
		}
	}
	return best
}

func (p PreemptPolicy) better(a, b Victim) bool {
	switch p {
	case PreemptYoungest:
		if a.LaunchedAt != b.LaunchedAt {
			return a.LaunchedAt > b.LaunchedAt
		}
	case PreemptCheapest:
		if a.Remaining != b.Remaining {
			return a.Remaining < b.Remaining
		}
	}
	return a.SimID > b.SimID
}

// WantsPreemption reports whether a queued demand job is blocked on the
// node budget (its context has smax room, the budget does not) and
// killing more running work could unblock it: nodes already being
// reclaimed by in-flight preemptions count as available, so one blocked
// demand job never cascades into killing several victims at once. Only
// queue *heads* are considered — with Priorities off, a demand job
// queued behind a prefetch job in the same context deliberately does
// not trigger: under FIFO no-backfill it is not next, and killing
// running speculative work to admit other queued speculative work would
// be pure churn (preemption pairs naturally with Priorities, which sort
// demand to the head). The fast path is two atomic loads — preemption
// off, or armed with no demand work queued anywhere (the common
// hit-path case) — so probing after every Open never serializes hit
// traffic on the scheduler mutex.
func (s *Scheduler) WantsPreemption() bool {
	if !s.preemptOn.Load() || !s.demandWaiting.Load() {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cfg.Preempt == PreemptOff || s.cfg.TotalNodes <= 0 {
		return false
	}
	anyDemand := false
	want := false
	for _, cs := range s.ctxs { //simfs:allow maporder existence scan; the booleans are the same whatever order finds them
		if len(cs.jobs) == 0 {
			continue
		}
		for _, job := range cs.jobs {
			if job.Class == Demand {
				anyDemand = true
				break
			}
		}
		if cs.smax > 0 && cs.inflight >= cs.smax {
			continue
		}
		job := cs.jobs[0]
		if job.Class != Demand {
			continue
		}
		if s.nodes-s.reclaiming+jobNodes(job.Parallelism) > s.cfg.TotalNodes {
			want = true
		}
	}
	if !anyDemand {
		// Nothing demand-class is queued: future probes skip the mutex
		// until the next demand enqueue re-arms the hint (both updates
		// happen under s.mu, so the hint cannot lose a race).
		s.demandWaiting.Store(false)
	}
	return want
}

// MarkPreempted records that a running simulation holding the given
// parallelism was killed by preemption. Its nodes stay charged until the
// launcher reports the death (SimDone), but they no longer count as
// demand-blocking in WantsPreemption.
func (s *Scheduler) MarkPreempted(nodes int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.reclaiming += jobNodes(nodes)
	s.stats.Preempted++
}

// --- Per-client deficit-round-robin quotas ---------------------------------

// billedShares invokes fn once per client the DRR quota holds
// accountable for the job, with the client's even share (ceiling) of
// the job's output-step cost. The payer roster is authoritative; jobs
// queued before a live quantum enable carry none and fall back to
// their prefetch constituents, then to the submitting client — the one
// resolution order shared by charging, refunding and selection.
func (j *Job) billedShares(fn func(client string, share int)) {
	cost := j.Last - j.First + 1
	switch {
	case len(j.payers) > 0:
		share := (cost + len(j.payers) - 1) / len(j.payers)
		for _, p := range j.payers {
			fn(p, share)
		}
	case len(j.cons) > 0:
		share := (cost + len(j.cons) - 1) / len(j.cons)
		for _, c := range j.cons {
			fn(c.client, share)
		}
	default:
		fn(j.Client, cost)
	}
}

// chargeQuota bills a popped job's cost to its accountable clients
// (billedShares): a coalesced multi-client job — demand requesters
// included — splits the cost evenly instead of billing whoever happened
// to submit first. Only existing ledger entries are charged: a client
// whose entry was dropped on disconnect while its job sat queued must
// not be re-planted as a ghost that no cleanup path ever deletes again.
// Caller holds s.mu.
func (s *Scheduler) chargeQuota(job *Job) {
	job.billedShares(func(client string, share int) {
		if d, ok := s.quota[client]; ok {
			s.quota[client] = d - share
		}
	})
}

// replenishQuota grants a new DRR round when the best-funded candidate
// about to be admitted is out of credit (bestDef ≤ 0): every client's
// deficit shifts up so that candidate holds exactly one quantum, capped
// at the quantum so idle clients cannot hoard unbounded credit. The
// shift preserves the relative debts of the active clients, which is
// what keeps the round-robin weighted by past consumption. Caller holds
// s.mu.
func (s *Scheduler) replenishQuota(bestDef int) {
	add := s.cfg.DRRQuantum - bestDef
	for c, d := range s.quota { //simfs:allow maporder each client's shift-and-cap is independent of the others
		d += add
		if d > s.cfg.DRRQuantum {
			d = s.cfg.DRRQuantum
		}
		s.quota[c] = d
	}
	s.stats.QuotaRounds++
}

// refundQuota reverses chargeQuota for a popped job that was released
// unlaunched (stale revalidation): the same split comes back, capped at
// the quantum so a refund cannot mint more credit than a round grants.
// Caller holds s.mu.
func (s *Scheduler) refundQuota(job *Job) {
	job.billedShares(func(client string, share int) {
		if d, ok := s.quota[client]; ok {
			d += share
			if d > s.cfg.DRRQuantum {
				d = s.cfg.DRRQuantum
			}
			s.quota[client] = d
		}
	})
}

// deficitOf returns the launch credit backing a job: the best-funded
// accountable client (billedShares — a coalesced merge serves the
// least-served client too). Unknown clients start at zero. Caller holds
// s.mu.
func (s *Scheduler) deficitOf(job *Job) int {
	first := true
	best := 0
	job.billedShares(func(client string, _ int) {
		if d := s.quota[client]; first || d > best {
			best = d
			first = false
		}
	})
	return best
}

// DropClientQuota forgets a disconnected client's quota accounting: its
// debt dies with it instead of handicapping an unrelated client that
// later reuses the name.
func (s *Scheduler) DropClientQuota(client string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.quota, client)
}

// QuotaDebt reports a client's current DRR deficit (negative = in debt)
// and whether the client has any quota accounting at all.
func (s *Scheduler) QuotaDebt(client string) (int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.quota[client]
	return d, ok
}

// nextDRR is Next's pop under deficit-round-robin fairness
// (Config.DRRQuantum > 0 with Priorities on — Next never routes here
// otherwise, so the queues are class-sorted): within the most urgent
// class, the admissible queued job whose charging client holds the most
// launch credit wins; submission order breaks ties, so equal-credit
// clients drain FIFO and the zero-quantum behaviour is a strict special
// case. Unlike the pure FIFO pop this scans past a context's queue
// head — that is the point: a greedy client's burst at the head must
// not starve a neighbour's job queued behind it in the same context.
// The node-budget no-backfill rule applies to the job DRR selects.
// Caller holds s.mu.
func (s *Scheduler) nextDRR() (Job, bool) {
	// Pass 1: the most urgent class among admissible queue heads.
	var headCs *ctxState
	for _, cs := range s.ctxs { //simfs:allow maporder less is a total order (seq tiebreak): the minimum is unique
		if len(cs.jobs) == 0 {
			continue
		}
		if cs.smax > 0 && cs.inflight >= cs.smax {
			continue
		}
		if headCs == nil || s.less(cs.jobs[0], headCs.jobs[0]) {
			headCs = cs
		}
	}
	if headCs == nil {
		return Job{}, false
	}
	bestClass := headCs.jobs[0].Class

	// Pass 2: among that class's admissible jobs, the best-funded client
	// wins; the FIFO pick is tracked to count fairness overrides.
	var bestCs *ctxState
	bestIdx := -1
	var best, fifo *Job
	for _, cs := range s.ctxs { //simfs:allow maporder winner is the unique best by (credit, seq); scan order is washed out
		if len(cs.jobs) == 0 {
			continue
		}
		if cs.smax > 0 && cs.inflight >= cs.smax {
			continue
		}
		for i, job := range cs.jobs {
			if job.Class != bestClass {
				break // queues are class-sorted: the run of bestClass is a prefix
			}
			if fifo == nil || job.seq < fifo.seq {
				fifo = job
			}
			if best == nil || s.quotaBetter(job, best) {
				bestCs, bestIdx, best = cs, i, job
			}
		}
	}
	if best == nil {
		return Job{}, false
	}
	if s.cfg.TotalNodes > 0 && s.nodes+jobNodes(best.Parallelism) > s.cfg.TotalNodes {
		return Job{}, false
	}
	if best != fifo {
		s.stats.QuotaDeferred++
	}
	if !best.prepaid {
		if bestDef := s.deficitOf(best); bestDef <= 0 {
			// Even the best-funded active client is out of credit: grant
			// the next round before charging.
			s.replenishQuota(bestDef)
		}
		s.chargeQuota(best)
	}
	s.removeAt(bestCs, bestIdx)
	s.depth--
	bestCs.inflight++
	s.nodes += jobNodes(best.Parallelism)
	s.noteAdmitted(best)
	return *best, true
}

// quotaBetter orders two same-class candidates: more launch credit
// first, submission order on ties. Caller holds s.mu.
func (s *Scheduler) quotaBetter(a, b *Job) bool {
	if da, db := s.deficitOf(a), s.deficitOf(b); da != db {
		return da > db
	}
	return a.seq < b.seq
}
