package sched

import "testing"

// SetConfig applies at the admission boundary: queued jobs are re-ordered
// under the new policy and new submissions follow the new rules, while
// in-flight reservations are untouched.
func TestSetConfigReordersQueue(t *testing.T) {
	s := New(&manualClock{}, Config{Priorities: true})
	s.Register("c", 1)
	if d := s.Submit(req("c", 1, 4, Demand, "")); d != Admitted {
		t.Fatalf("first demand = %v", d)
	}
	// Queue an agent prefetch, then a demand: priority order puts the
	// demand first.
	if d := s.Submit(req("c", 9, 12, Agent, "a")); d != Queued {
		t.Fatalf("agent = %v, want Queued", d)
	}
	if d := s.Submit(req("c", 17, 20, Demand, "")); d != Queued {
		t.Fatalf("demand = %v, want Queued", d)
	}

	// Drop priorities live: the queue reverts to submission order.
	s.SetConfig(Config{})
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	s.SimDone("c", 1)
	j, ok := s.Next()
	if !ok || j.First != 9 {
		t.Fatalf("popped %+v, want the agent job [9,12] first in FIFO order", j)
	}
	s.SimDone("c", 1)
	if j, ok := s.Next(); !ok || j.First != 17 {
		t.Fatalf("popped %+v, want the demand job [17,20]", j)
	}

	// And the new admission rule applies to new submissions: prefetch at
	// capacity is dropped again under the zero config.
	if d := s.Submit(req("c", 25, 28, Agent, "a")); d != Dropped {
		t.Fatalf("prefetch at capacity after SetConfig = %v, want Dropped", d)
	}
}

// A newly imposed node budget clamps queued jobs wider than the budget,
// so they stay launchable instead of deadlocking the queue.
func TestSetConfigClampsQueuedParallelism(t *testing.T) {
	s := New(&manualClock{}, Config{Priorities: true})
	s.Register("c", 1)
	if d := s.Submit(Request{Ctx: "c", First: 1, Last: 4, Parallelism: 1, Class: Demand}); d != Admitted {
		t.Fatalf("demand = %v", d)
	}
	if d := s.Submit(Request{Ctx: "c", First: 9, Last: 12, Parallelism: 8, Class: Demand}); d != Queued {
		t.Fatalf("wide demand = %v, want Queued", d)
	}
	s.SetConfig(Config{Priorities: true, TotalNodes: 4})
	s.SimDone("c", 1)
	j, ok := s.Next()
	if !ok {
		t.Fatal("clamped job never admitted — a wide queued job deadlocked the budget")
	}
	if j.Parallelism != 4 {
		t.Fatalf("queued job parallelism = %d, want clamped to 4", j.Parallelism)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// DropContext removes a deregistered context's queue and ledger, and
// returns the removed jobs so the core can dismantle pending markers.
func TestDropContext(t *testing.T) {
	s := New(&manualClock{}, Config{Priorities: true})
	s.Register("c", 1)
	s.Register("d", 1)
	if d := s.Submit(req("c", 1, 4, Demand, "")); d != Admitted {
		t.Fatalf("demand = %v", d)
	}
	s.Submit(req("c", 9, 12, Guided, "g"))
	s.Submit(req("c", 17, 20, Guided, "g"))
	s.Submit(req("d", 1, 4, Demand, "")) // the neighbour is untouched
	s.SimDone("c", 1)

	removed := s.DropContext("c")
	if len(removed) != 2 {
		t.Fatalf("DropContext returned %d jobs, want 2", len(removed))
	}
	if got := s.QueueDepth(); got != 0 {
		t.Fatalf("queue depth after drop = %d, want 0 (d's job was admitted)", got)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if jobs := s.DropContext("c"); jobs != nil {
		t.Fatalf("second drop returned %v", jobs)
	}
}
