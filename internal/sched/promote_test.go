package sched

import (
	"reflect"
	"testing"
)

func TestPromoteDemandLiftsQueuedPrefetch(t *testing.T) {
	s := New(&manualClock{}, Config{Priorities: true, DemandJoin: true})
	s.Register("c", 1)
	s.Submit(req("c", 1, 4, Demand, "")) // occupies the smax slot
	s.Submit(req("c", 10, 19, Agent, "a"))
	s.Submit(req("c", 30, 39, Guided, "g"))

	if !s.PromoteDemand("c", 35, "joiner") {
		t.Fatal("PromoteDemand(step inside guided job) = false, want true")
	}
	if s.PromoteDemand("c", 50, "joiner") {
		t.Fatal("PromoteDemand(step outside any job) = true, want false")
	}
	if got := s.Stats().Promoted; got != 1 {
		t.Fatalf("Promoted = %d, want 1", got)
	}
	if !s.demandWaiting.Load() {
		t.Fatal("demand-waiting hint not armed by promotion")
	}

	// The promoted job must drain ahead of the agent prefetch.
	s.SimDone("c", 1)
	j, ok := s.Next()
	if !ok || j.Class != Demand || j.First != 30 {
		t.Fatalf("first pop = %+v ok=%v, want the promoted [30,39] at demand class", j, ok)
	}
}

func TestPromoteDemandRequiresDemandJoin(t *testing.T) {
	s := New(&manualClock{}, Config{Priorities: true})
	s.Register("c", 1)
	s.Submit(req("c", 1, 4, Demand, ""))
	s.Submit(req("c", 10, 19, Agent, "a"))
	if s.PromoteDemand("c", 15, "joiner") {
		t.Fatal("PromoteDemand fired with DemandJoin disarmed")
	}
	if got := s.Stats().Promoted; got != 0 {
		t.Fatalf("Promoted = %d, want 0", got)
	}
}

func TestPromoteDemandSkipsDemandJobs(t *testing.T) {
	s := New(&manualClock{}, Config{Priorities: true, DemandJoin: true})
	s.Register("c", 1)
	s.Submit(req("c", 1, 4, Demand, ""))
	s.Submit(req("c", 10, 19, Demand, "d")) // queued, already demand
	if s.PromoteDemand("c", 15, "joiner") {
		t.Fatal("PromoteDemand lifted a job that is already demand class")
	}
}

func TestPromoteDemandJoinsDRRBilling(t *testing.T) {
	s := New(&manualClock{}, Config{Priorities: true, DemandJoin: true, DRRQuantum: 4})
	s.Register("c", 1)
	s.Submit(req("c", 1, 4, Demand, ""))
	s.Submit(req("c", 10, 19, Agent, "a"))
	if !s.PromoteDemand("c", 12, "joiner") {
		t.Fatal("PromoteDemand = false, want true")
	}
	s.mu.Lock()
	_, enrolled := s.quota["joiner"]
	s.mu.Unlock()
	if !enrolled {
		t.Fatal("promoting client not enrolled in the DRR quota roster")
	}
}

func TestClientLoadsSnapshots(t *testing.T) {
	s := New(&manualClock{}, Config{})
	s.Register("c", 0)
	if s.ClientLoads() != nil {
		t.Fatal("ClientLoads on a fresh scheduler should be nil")
	}
	s.Submit(req("c", 1, 4, Demand, "alice")) // 4 steps
	s.Submit(req("c", 5, 5, Demand, "bob"))   // 1 step
	s.Submit(req("c", 6, 8, Demand, "alice")) // 3 steps
	s.Submit(req("c", 9, 9, Demand, ""))      // anonymous: not billed
	want := map[string]uint64{"alice": 7, "bob": 1}
	if got := s.ClientLoads(); !reflect.DeepEqual(got, want) {
		t.Fatalf("ClientLoads = %v, want %v", got, want)
	}
	// The snapshot is a copy: mutating it must not corrupt the ledger.
	s.ClientLoads()["alice"] = 999
	if got := s.ClientLoads()["alice"]; got != 7 {
		t.Fatalf("ledger mutated through snapshot: alice = %d, want 7", got)
	}
}

func TestSetDRRQuantumLeavesOtherFields(t *testing.T) {
	s := New(&manualClock{}, Config{Priorities: true, TotalNodes: 3, Coalesce: true})
	cfg := s.SetDRRQuantum(8)
	if cfg.DRRQuantum != 8 || !cfg.Priorities || cfg.TotalNodes != 3 || !cfg.Coalesce {
		t.Fatalf("SetDRRQuantum clobbered config: %+v", cfg)
	}
}

func TestVictimEligible(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		cls  Class
		done float64
		want bool
	}{
		{"agent default", Config{}, Agent, 0.5, true},
		{"guided default", Config{}, Guided, 0.0, false},
		{"demand never", Config{PreemptGuided: true}, Demand, 0.0, false},
		{"guided widened", Config{PreemptGuided: true}, Guided, 0.0, true},
		{"sunk cost spares", Config{PreemptSunkCost: 0.8}, Agent, 0.9, false},
		{"sunk cost boundary", Config{PreemptSunkCost: 0.8}, Agent, 0.8, false},
		{"below sunk cost", Config{PreemptSunkCost: 0.8}, Agent, 0.79, true},
		{"guard off", Config{}, Agent, 1.0, true},
	}
	for _, c := range cases {
		if got := c.cfg.VictimEligible(c.cls, c.done); got != c.want {
			t.Errorf("%s: VictimEligible(%v, %g) = %v, want %v", c.name, c.cls, c.done, got, c.want)
		}
	}
}
