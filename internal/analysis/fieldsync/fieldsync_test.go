package fieldsync_test

import (
	"testing"

	"simfs/internal/analysis/analysistest"
	"simfs/internal/analysis/fieldsync"
)

func TestFieldSync(t *testing.T) {
	analysistest.Run(t, "testdata", fieldsync.Analyzer)
}
