// Package a declares the exhaustive structs the fieldsync testdata
// checks against, plus same-package sync functions.
package a

// Frame is a wire aggregate: every sync function must touch every
// field, except the ones exempted with //simfs:nosync.
//
//simfs:exhaustive
type Frame struct {
	Opens  int
	Hits   int
	Misses int
	// Scratch is recomputed on arrival, never carried.
	Scratch int //simfs:nosync recomputed by the receiver

	Meta //simfs:nosync embedded metadata merges itself
}

type Meta struct {
	Version int
}

// Pair has an embedded field that sync functions must reference by
// its type name.
//
//simfs:exhaustive
type Pair struct {
	Meta
	Count int
}

// MergeGood references every required field through selectors.
//
//simfs:sync Frame
func MergeGood(dst, src *Frame) {
	dst.Opens += src.Opens
	dst.Hits += src.Hits
	dst.Misses += src.Misses
}

// MergeBad forgets Misses: the bug class the analyzer exists for.
//
//simfs:sync Frame
func MergeBad(dst, src *Frame) { // want "sync function MergeBad does not reference field Misses of Frame"
	dst.Opens += src.Opens
	dst.Hits += src.Hits
}

// LiteralGood references fields as composite-literal keys.
//
//simfs:sync Frame
func LiteralGood(src *Frame) Frame {
	return Frame{Opens: src.Opens, Hits: src.Hits, Misses: src.Misses}
}

// EmbeddedGood references the embedded Meta field by name.
//
//simfs:sync Pair
func EmbeddedGood(dst, src *Pair) {
	dst.Meta = src.Meta
	dst.Count += src.Count
}

// EmbeddedBad forgets the embedded field.
//
//simfs:sync Pair
func EmbeddedBad(dst, src *Pair) { // want "sync function EmbeddedBad does not reference field Meta of Pair"
	dst.Count += src.Count
}

// Unannotated is a plain struct; pointing a sync function at it is an
// error.
type Unannotated struct {
	X int
}

//simfs:sync Unannotated
func SyncTargetNotExhaustive(u *Unannotated) { // want "type Unannotated is not annotated //simfs:exhaustive"
	u.X++
}
