// Package b checks cross-package fieldsync: the exhaustive facts of
// package a flow here in dependency order, and sync targets are named
// pkg.Type.
package b

import "vettest/a"

// EncodeGood references every required field of the imported struct.
//
//simfs:sync a.Frame
func EncodeGood(f *a.Frame) []int {
	return []int{f.Opens, f.Hits, f.Misses}
}

// EncodeBad drops Hits on the floor.
//
//simfs:sync a.Frame
func EncodeBad(f *a.Frame) []int { // want "sync function EncodeBad does not reference field Hits of a.Frame"
	return []int{f.Opens, f.Misses}
}

//simfs:sync missing.Frame
func BadImport() { // want "package \"missing\" is not imported here"
}
