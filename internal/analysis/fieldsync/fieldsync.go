// Package fieldsync keeps wire structs and the functions that must
// enumerate their fields in lockstep. A struct annotated
// //simfs:exhaustive (the Stats frame, SchedInfo, the binary-codec
// hot-op bodies) demands that every function annotated
// //simfs:sync <Type> — the router's mergeStats, the binary codec
// encode/decode pairs, the sched-set echo — references every field.
// Adding a counter without merging or encoding it then fails the
// build instead of silently dropping data at a fan-out boundary
// (the PR 9 mergeStats fix is the bug class this encodes).
package fieldsync

import (
	"go/ast"
	"go/types"
	"strings"

	"simfs/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "fieldsync",
	Doc: "check that every //simfs:sync function references every field of its " +
		"//simfs:exhaustive struct",
	Run: run,
}

// exhaustiveFields is the fact exported per annotated struct: the
// field names a sync function must reference, in declaration order.
type exhaustiveFields []string

func run(pass *analysis.Pass) error {
	// Phase 1: record annotated structs (and their per-field nosync
	// exemptions) as facts, so sync functions here and in importing
	// packages can check against them.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				doc := ts.Doc
				if doc == nil {
					doc = gd.Doc
				}
				if _, ok := analysis.HasDirective(doc, "exhaustive"); !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					pass.Reportf("fieldsync", ts.Name.Pos(),
						"//simfs:exhaustive on %s, which is not a struct type", ts.Name.Name)
					continue
				}
				var required exhaustiveFields
				for _, field := range st.Fields.List {
					if _, exempt := analysis.HasDirective(field.Doc, "nosync"); exempt {
						continue
					}
					if _, exempt := analysis.HasDirective(field.Comment, "nosync"); exempt {
						continue
					}
					if len(field.Names) == 0 {
						// Embedded field: referenced by its type name.
						required = append(required, embeddedName(field.Type))
						continue
					}
					for _, name := range field.Names {
						required = append(required, name.Name)
					}
				}
				pass.ExportFact("exhaustive:"+ts.Name.Name, required)
			}
		}
	}

	// Phase 2: check sync functions against the recorded structs.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			for _, target := range analysis.DirectiveArgs(fn.Doc, "sync") {
				checkSync(pass, fn, target)
			}
		}
	}
	return nil
}

func embeddedName(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return embeddedName(t.X)
	case *ast.SelectorExpr:
		return t.Sel.Name
	}
	return ""
}

// checkSync verifies that fn references every required field of the
// //simfs:sync target, written as Type (same package) or pkg.Type
// (any package this one imports).
func checkSync(pass *analysis.Pass, fn *ast.FuncDecl, target string) {
	pkgName, typeName, qualified := strings.Cut(target, ".")
	var scopePkg *types.Package
	var pkgPath string
	if !qualified {
		typeName = pkgName
		scopePkg = pass.Types
		pkgPath = pass.Pkg.PkgPath
	} else {
		for _, imp := range pass.Types.Imports() {
			if imp.Name() == pkgName || imp.Path() == pkgName {
				scopePkg = imp
				pkgPath = imp.Path()
				break
			}
		}
		if scopePkg == nil {
			pass.Reportf("fieldsync", fn.Name.Pos(),
				"//simfs:sync %s: package %q is not imported here", target, pkgName)
			return
		}
	}

	fact, ok := pass.LookupFact(pkgPath, "exhaustive:"+typeName)
	if !ok {
		pass.Reportf("fieldsync", fn.Name.Pos(),
			"//simfs:sync %s: type %s is not annotated //simfs:exhaustive", target, target)
		return
	}
	required := fact.(exhaustiveFields)

	obj := scopePkg.Scope().Lookup(typeName)
	if obj == nil {
		pass.Reportf("fieldsync", fn.Name.Pos(),
			"//simfs:sync %s: no such type in package %s", target, pkgPath)
		return
	}
	st, ok := obj.Type().Underlying().(*types.Struct)
	if !ok {
		pass.Reportf("fieldsync", fn.Name.Pos(), "//simfs:sync %s: not a struct type", target)
		return
	}
	fieldVar := map[string]*types.Var{}
	for i := 0; i < st.NumFields(); i++ {
		fieldVar[st.Field(i).Name()] = st.Field(i)
	}

	if fn.Body == nil {
		pass.Reportf("fieldsync", fn.Name.Pos(), "//simfs:sync %s on a function with no body", target)
		return
	}
	// Every identifier in the body resolving to a field object of the
	// target struct counts as a reference — selectors (dst.Opens) and
	// composite-literal keys (SchedInfo{Coalesce: ...}) both do.
	used := map[*types.Var]bool{}
	body := fn.Body
	for ident, o := range pass.TypesInfo.Uses {
		if ident.Pos() < body.Pos() || ident.Pos() >= body.End() {
			continue
		}
		if v, ok := o.(*types.Var); ok && v.IsField() {
			used[v] = true
		}
	}
	for _, name := range required {
		v := fieldVar[name]
		if v == nil {
			pass.Reportf("fieldsync", fn.Name.Pos(),
				"//simfs:sync %s: annotated field %s no longer exists on the struct", target, name)
			continue
		}
		if !used[v] {
			pass.Reportf("fieldsync", fn.Name.Pos(),
				"sync function %s does not reference field %s of %s; sync it (or mark the field //simfs:nosync <reason> on the struct)",
				fn.Name.Name, name, target)
		}
	}
}
