package analysis

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parseSrc(t *testing.T, src string) (*token.FileSet, []*Directive, []Diagnostic) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "dirs.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	dirs, malformed := parseDirectives(fset, file)
	return fset, dirs, malformed
}

func TestParseDirectives(t *testing.T) {
	src := `package p

//simfs:allow wallclock live timestamps for humans
var a int

//simfs:exhaustive
type S struct{}

//simfs:sync pkg.Type
func f() {}
`
	_, dirs, malformed := parseSrc(t, src)
	if len(malformed) != 0 {
		t.Fatalf("unexpected malformed directives: %v", malformed)
	}
	if len(dirs) != 3 {
		t.Fatalf("got %d directives, want 3", len(dirs))
	}
	if dirs[0].Name != "allow" || dirs[0].Check != "wallclock" || dirs[0].Args != "live timestamps for humans" {
		t.Errorf("allow parsed as %+v", dirs[0])
	}
	if dirs[1].Name != "exhaustive" || dirs[1].Args != "" {
		t.Errorf("exhaustive parsed as %+v", dirs[1])
	}
	if dirs[2].Name != "sync" || dirs[2].Args != "pkg.Type" {
		t.Errorf("sync parsed as %+v", dirs[2])
	}
	// The sync directive is a function doc comment: it must cover the
	// whole declaration, not just its own line.
	if dirs[2].spanStart == 0 || dirs[2].spanEnd < dirs[2].spanStart {
		t.Errorf("function-doc directive has no span: %+v", dirs[2])
	}
}

func TestParseDirectivesMalformed(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"package p\n\n//simfs:frobnicate\n", "unknown directive"},
		{"package p\n\n//simfs:allow wallclock\n", "needs a reason"},
		{"package p\n\n//simfs:allow coffee because\n", "unknown check"},
		{"package p\n\n//simfs:sync\n", "requires an argument"},
		{"package p\n\n//simfs:nosync\n", "requires an argument"},
	}
	for _, c := range cases {
		_, dirs, malformed := parseSrc(t, c.src)
		if len(dirs) != 0 {
			t.Errorf("%q: malformed directive still parsed: %+v", c.src, dirs)
		}
		if len(malformed) != 1 || !strings.Contains(malformed[0].Message, c.want) {
			t.Errorf("%q: got %v, want one diagnostic containing %q", c.src, malformed, c.want)
		}
	}
}

func TestAllowCoverage(t *testing.T) {
	src := `package p

func f() {
	_ = 1 //simfs:allow wallclock same line
	//simfs:allow rand next line
	_ = 2
}
`
	fset, dirs, _ := parseSrc(t, src)
	if len(dirs) != 2 {
		t.Fatalf("got %d directives, want 2", len(dirs))
	}
	at := func(line int) token.Position {
		return token.Position{Filename: "dirs.go", Line: line}
	}
	if !dirs[0].covers(fset, at(4)) {
		t.Errorf("same-line allow does not cover its own line")
	}
	if dirs[0].covers(fset, at(6)) {
		t.Errorf("same-line allow leaks two lines down")
	}
	if !dirs[1].covers(fset, at(6)) {
		t.Errorf("line-above allow does not cover the next line")
	}
	if dirs[1].covers(fset, token.Position{Filename: "other.go", Line: 6}) {
		t.Errorf("allow covers a different file")
	}
}
