// Package analysistest runs one analyzer over a testdata module and
// matches its findings against // want "regexp" comments, mirroring
// golang.org/x/tools/go/analysis/analysistest closely enough that the
// golden suites would port over mechanically.
//
// Layout: <testdata>/src is a small self-contained Go module (its own
// go.mod, stdlib-only imports — the loader compiles it offline with
// `go list -export`). Every package in it is loaded and analyzed in
// dependency order, so cross-package facts (fieldsync exhaustive
// structs, errcode sentinels) work exactly as they do under
// cmd/simfs-vet. A finding must be matched by a // want comment on
// its line, and every // want comment must be matched by a finding.
package analysistest

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"simfs/internal/analysis"
)

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads testdata/src and applies the analyzer, failing the test
// on any unexpected finding or unmatched // want comment.
func Run(t *testing.T, testdata string, a *analysis.Analyzer) {
	t.Helper()
	srcDir := filepath.Join(testdata, "src")
	pkgs, err := analysis.Load(srcDir)
	if err != nil {
		t.Fatalf("loading %s: %v", srcDir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages under %s", srcDir)
	}
	findings, err := analysis.Run(pkgs, []*analysis.Analyzer{a}, analysis.RunOptions{})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, file := range pkg.Syntax {
			for _, group := range file.Comments {
				for _, c := range group.List {
					wants = append(wants, parseWants(t, pkg, c)...)
				}
			}
		}
	}

	for _, f := range findings {
		if !claim(wants, f) {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no finding matched `want %s`", w.file, w.line, w.raw)
		}
	}
}

func claim(wants []*expectation, f analysis.Finding) bool {
	for _, w := range wants {
		if w.matched || w.file != f.Pos.Filename || w.line != f.Pos.Line {
			continue
		}
		if w.re.MatchString(f.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

// parseWants extracts the expectations of one comment: the text after
// a leading "want" keyword is a sequence of Go-quoted regexps.
func parseWants(t *testing.T, pkg *analysis.Package, c *ast.Comment) []*expectation {
	t.Helper()
	text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
	rest, ok := strings.CutPrefix(text, "want ")
	if !ok {
		return nil
	}
	pos := pkg.Fset.Position(c.Pos())
	var out []*expectation
	rest = strings.TrimSpace(rest)
	for rest != "" {
		quoted, err := quotedPrefix(rest)
		if err != nil {
			t.Fatalf("%s:%d: malformed want comment %q: %v", pos.Filename, pos.Line, c.Text, err)
		}
		pattern, err := strconv.Unquote(quoted)
		if err != nil {
			t.Fatalf("%s:%d: unquoting %s: %v", pos.Filename, pos.Line, quoted, err)
		}
		re, err := regexp.Compile(pattern)
		if err != nil {
			t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pattern, err)
		}
		out = append(out, &expectation{
			file: pos.Filename, line: pos.Line, re: re, raw: quoted,
		})
		rest = strings.TrimSpace(rest[len(quoted):])
	}
	return out
}

func quotedPrefix(s string) (string, error) {
	if !strings.HasPrefix(s, `"`) {
		return "", fmt.Errorf("expected a double-quoted regexp")
	}
	return strconv.QuotedPrefix(s)
}
