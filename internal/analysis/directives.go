package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Directive grammar. Every machine-readable annotation in the tree is
// a comment of the form
//
//	//simfs:<name> [args...]
//
// with these names:
//
//	//simfs:allow <check> <reason>   suppress <check> findings on this
//	                                 line, the next line, or (in a
//	                                 function doc comment) the whole
//	                                 function. The reason is required:
//	                                 an allowance must say why the
//	                                 site is intentionally exempt.
//	                                 Checks: wallclock, rand, maporder,
//	                                 fieldsync, lockorder, errcode.
//	//simfs:exhaustive [note]        on a struct type: every declared
//	                                 sync function must reference every
//	                                 field (fieldsync analyzer).
//	//simfs:nosync <reason>          on a field of an exhaustive
//	                                 struct: exempt it from fieldsync,
//	                                 with a reason.
//	//simfs:sync <[pkg.]Type>        on a function: declares it a sync
//	                                 function of the named exhaustive
//	                                 struct. Repeatable.
//	//simfs:errcode <code>           on an error sentinel var or error
//	                                 type: registers it with the wire
//	                                 classification registry (errcode
//	                                 analyzer).
//	//simfs:errcode-table            on a function: declares it a
//	                                 classification table that must
//	                                 handle every registered sentinel
//	                                 reachable through its imports.
//	//simfs:locked <lock>            on a function: it is entered with
//	                                 the named shard lock already held
//	                                 (the "Caller holds cs's lock"
//	                                 convention), so the lockorder
//	                                 rules apply from its first line.
const directivePrefix = "//simfs:"

// knownDirectives maps each directive name to whether its argument
// list is required to be non-empty.
var knownDirectives = map[string]bool{
	"allow":         true,
	"exhaustive":    false,
	"nosync":        true,
	"sync":          true,
	"errcode":       true,
	"errcode-table": false,
	"locked":        true,
}

// allowChecks are the tokens //simfs:allow accepts.
var allowChecks = map[string]bool{
	"wallclock": true,
	"rand":      true,
	"maporder":  true,
	"fieldsync": true,
	"lockorder": true,
	"errcode":   true,
}

// A Directive is one parsed //simfs: comment.
type Directive struct {
	// Name is the directive name ("allow", "sync", ...).
	Name string
	// Check is the first argument of an allow directive.
	Check string
	// Args is the raw argument text after the name (for allow: after
	// the check token, i.e. the reason).
	Args string

	Pos  token.Pos
	File string // file name, for line-coverage matching
	Line int
	// span, when valid, extends coverage to a whole declaration
	// (directive in a function doc comment).
	spanStart, spanEnd int // line range; 0 when line-scoped

	// Used is set when an allow directive suppressed at least one
	// finding; the runner reports stale (unused) allowances.
	Used bool
}

func (d *Directive) covers(fset *token.FileSet, pos token.Position) bool {
	if d.File != pos.Filename {
		return false
	}
	if d.spanStart != 0 {
		return pos.Line >= d.spanStart && pos.Line <= d.spanEnd
	}
	return pos.Line == d.Line || pos.Line == d.Line+1
}

// CutDirective splits one comment line into a directive name and its
// argument text; ok is false for ordinary comments.
func CutDirective(text string) (name, args string, ok bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	name, args, _ = strings.Cut(rest, " ")
	return name, strings.TrimSpace(args), name != ""
}

// DirectiveArgs returns the argument text of every //simfs:<name>
// directive in doc. A nil doc yields nil.
func DirectiveArgs(doc *ast.CommentGroup, name string) []string {
	if doc == nil {
		return nil
	}
	var out []string
	for _, c := range doc.List {
		if n, args, ok := CutDirective(c.Text); ok && n == name {
			out = append(out, args)
		}
	}
	return out
}

// HasDirective reports whether doc carries an //simfs:<name>
// directive and returns the args of the first one.
func HasDirective(doc *ast.CommentGroup, name string) (string, bool) {
	all := DirectiveArgs(doc, name)
	if len(all) == 0 {
		return "", false
	}
	return all[0], true
}

// parseDirectives scans every comment of file, returning the parsed
// directives and a diagnostic for each malformed one. Directives in
// the doc comment of a top-level function cover the whole function.
func parseDirectives(fset *token.FileSet, file *ast.File) (dirs []*Directive, malformed []Diagnostic) {
	// Map comment groups that are function doc comments to their
	// declaration's line span.
	funcDocSpan := map[*ast.CommentGroup][2]int{}
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
			funcDocSpan[fd.Doc] = [2]int{
				fset.Position(fd.Pos()).Line,
				fset.Position(fd.End()).Line,
			}
		}
	}
	for _, group := range file.Comments {
		span := funcDocSpan[group]
		for _, c := range group.List {
			name, args, ok := CutDirective(c.Text)
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			bad := func(format string, a ...any) {
				malformed = append(malformed, Diagnostic{
					Pos:     c.Pos(),
					Message: fmt.Sprintf(format, a...),
				})
			}
			needArgs, known := knownDirectives[name]
			if !known {
				bad("unknown directive //simfs:%s (known: allow, exhaustive, nosync, sync, errcode, errcode-table, locked)", name)
				continue
			}
			if needArgs && args == "" {
				bad("//simfs:%s requires an argument", name)
				continue
			}
			d := &Directive{
				Name:      name,
				Args:      args,
				Pos:       c.Pos(),
				File:      pos.Filename,
				Line:      pos.Line,
				spanStart: span[0],
				spanEnd:   span[1],
			}
			if name == "allow" {
				check, reason, _ := strings.Cut(args, " ")
				if !allowChecks[check] {
					bad("//simfs:allow %s: unknown check (want wallclock, rand, maporder, fieldsync, lockorder or errcode)", check)
					continue
				}
				if strings.TrimSpace(reason) == "" {
					bad("//simfs:allow %s needs a reason: every allowance must say why the site is exempt", check)
					continue
				}
				d.Check = check
				d.Args = strings.TrimSpace(reason)
			}
			dirs = append(dirs, d)
		}
	}
	return dirs, malformed
}
