// Package randsrc exercises the determinism analyzer's randomness
// rule: global-source draws and unseeded rand.New are flagged,
// explicitly seeded constructors and *rand.Rand methods are not.
package randsrc

import "math/rand"

func Global() int {
	return rand.Intn(10) // want "top-level rand.Intn draws from the process-global source"
}

func Shuffled(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "top-level rand.Shuffle"
}

func UnseededNew(src rand.Source) *rand.Rand {
	return rand.New(src) // want "rand.New without an explicit seeded source"
}

func SeededNew(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Methods on an explicit *rand.Rand are fine.
func Draw(r *rand.Rand) int {
	return r.Intn(10)
}

// Constructors fed an explicit *rand.Rand inherit its seeding.
func Zipf(r *rand.Rand) *rand.Zipf {
	return rand.NewZipf(r, 1.1, 1, 100)
}

func Allowed() int {
	return rand.Intn(10) //simfs:allow rand jitter on a non-replayed path
}
