// Package maporder exercises the determinism analyzer's map-iteration
// rule. The test registers vettest/maporder in MapOrderPackages, so
// ranges here are flagged unless provably order-insensitive.
package maporder

import "sort"

func AppendFlagged(m map[string]int) []string {
	var keys []string
	for k := range m { // want "map iteration order feeds this loop's effects"
		keys = append(keys, k)
	}
	return keys
}

func CallFlagged(m map[string]int, f func(string)) {
	for k := range m { // want "map iteration order feeds this loop's effects"
		f(k)
	}
}

func BreakFlagged(m map[string]int) bool {
	found := false
	for k := range m { // want "map iteration order feeds this loop's effects"
		if k == "x" {
			found = true
			break
		}
	}
	return found
}

// FloatSumFlagged: float accumulation is order-sensitive (rounding).
func FloatSumFlagged(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want "map iteration order feeds this loop's effects"
		sum += v
	}
	return sum
}

func CounterClean(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func InvertClean(m map[string]int) map[int]string {
	out := map[int]string{}
	for k, v := range m {
		out[v] = k
	}
	return out
}

func DeleteClean(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// SortedClean is the sanctioned rewrite: iterate a sorted key slice.
// The inner range is over a slice, not a map.
func SortedClean(m map[string]int, f func(string)) {
	keys := make([]string, 0, len(m))
	for k := range m { //simfs:allow maporder keys are sorted before use below
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		f(k)
	}
}

func Allowed(m map[string]int, f func(string)) {
	//simfs:allow maporder callee is order-insensitive in a way the checker cannot see
	for k := range m {
		f(k)
	}
}
