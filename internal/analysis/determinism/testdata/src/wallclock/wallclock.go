// Package wallclock exercises the determinism analyzer's wall-clock
// rule: package-level time functions are flagged, methods and
// injected clocks are not, and //simfs:allow wallclock suppresses.
package wallclock

import "time"

type Clock func() time.Time

func Stamp() time.Time {
	return time.Now() // want "wall-clock source time.Now"
}

func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "wall-clock source time.Since"
}

func Arm(d time.Duration, f func()) *time.Timer {
	return time.AfterFunc(d, f) // want "wall-clock source time.AfterFunc"
}

// Methods on time values are pure arithmetic, not clock reads.
func Sub(a, b time.Time) time.Duration {
	return a.Sub(b)
}

// An injected clock is the sanctioned pattern.
func Injected(clock Clock) time.Time {
	return clock()
}

func AllowedSameLine() time.Time {
	return time.Now() //simfs:allow wallclock live-edge timestamp for operators
}

func AllowedLineAbove() time.Time {
	//simfs:allow wallclock live-edge timestamp for operators
	return time.Now()
}

// AllowedWholeFunc reads the clock twice; one doc-comment allowance
// covers the whole function body.
//
//simfs:allow wallclock contention metrics are wall-time by design
func AllowedWholeFunc() time.Duration {
	start := time.Now()
	return time.Since(start)
}
