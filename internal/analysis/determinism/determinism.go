// Package determinism flags nondeterminism sources in packages that
// must replay bit-identically: wall-clock reads, the unseeded global
// math/rand source, and (in the determinism-critical packages) map
// iteration that feeds order-sensitive effects.
//
// The whole experiment stack reproduces the paper's tables only
// because time comes from injected clocks (des.Clock, the
// Virtualizer's v.after seam, autoscale.Options.Clock) and every rng
// is explicitly seeded. Wall-clock reads and global rand draws are
// correct only at the edges (live daemon service-time stamps, lock
// contention metrics, redial backoff) — such sites carry
// //simfs:allow wallclock|rand annotations with a reason.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"

	"simfs/internal/analysis"
)

// MapOrderPackages are the packages where ranging over a map is
// flagged unless the loop body is provably order-insensitive (pure
// accumulation into maps, integer counters). These are the packages
// whose output, actuation, or scheduling order the golden tables pin;
// everywhere else map ranges are unchecked. Tests may add their
// testdata package paths.
var MapOrderPackages = map[string]bool{
	"simfs/internal/core":        true,
	"simfs/internal/des":         true,
	"simfs/internal/sched":       true,
	"simfs/internal/cache":       true,
	"simfs/internal/trace":       true,
	"simfs/internal/experiments": true,
	"simfs/internal/autoscale":   true,
}

// wallFuncs are the package time functions that read or arm the wall
// clock. time.AfterFunc and friends are included: a wall-clock timer
// is as nondeterministic as a wall-clock read (the Virtualizer's
// v.after seam exists so DES tests can run them in virtual time).
var wallFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"AfterFunc": true, "NewTimer": true, "NewTicker": true,
	"Tick": true, "Sleep": true,
}

// randCtors are the math/rand[/v2] constructors that take an explicit
// seed or an explicit *rand.Rand (NewZipf) and are therefore
// sanctioned: the caller's seeding discipline carries through them.
var randCtors = map[string]bool{
	"NewSource": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true,
}

var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "flag wall-clock reads, unseeded randomness, and order-sensitive map iteration " +
		"in determinism-critical packages",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		// First pass: rand.New calls whose source argument is an
		// explicit seeded constructor are sanctioned.
		seededNew := map[*ast.Ident]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !isRandFunc(pass, sel.Sel, "New") || len(call.Args) != 1 {
				return true
			}
			if inner, ok := call.Args[0].(*ast.CallExpr); ok {
				if isel, ok := inner.Fun.(*ast.SelectorExpr); ok {
					if obj, ok := pass.TypesInfo.Uses[isel.Sel].(*types.Func); ok &&
						obj.Pkg() != nil && isRandPath(obj.Pkg().Path()) && randCtors[obj.Name()] {
						seededNew[sel.Sel] = true
					}
				}
			}
			return true
		})

		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				fn, ok := pass.TypesInfo.Uses[n.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true // methods (e.g. Time.Sub, (*Rand).Intn) are fine
				}
				switch {
				case fn.Pkg().Path() == "time" && wallFuncs[fn.Name()]:
					pass.Reportf("wallclock", n.Sel.Pos(),
						"wall-clock source time.%s in a determinism-scoped package; inject a clock (des.Clock, v.after, autoscale Options.Clock) or annotate //simfs:allow wallclock <reason>",
						fn.Name())
				case isRandPath(fn.Pkg().Path()):
					switch {
					case randCtors[fn.Name()]:
						// Explicit seeded constructor: fine on its own.
					case fn.Name() == "New":
						if !seededNew[n.Sel] {
							pass.Reportf("rand", n.Sel.Pos(),
								"rand.New without an explicit seeded source; write rand.New(rand.NewSource(seed)) so the seed is visible at the construction site")
						}
					default:
						pass.Reportf("rand", n.Sel.Pos(),
							"top-level %s.%s draws from the process-global source; use an explicitly seeded *rand.Rand",
							fn.Pkg().Name(), fn.Name())
					}
				}
			case *ast.RangeStmt:
				if !MapOrderPackages[pass.Pkg.PkgPath] {
					return true
				}
				tv, ok := pass.TypesInfo.Types[n.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				if orderInsensitive(pass, n.Body) {
					return true
				}
				pass.Reportf("maporder", n.Pos(),
					"map iteration order feeds this loop's effects; iterate a sorted key slice, or annotate //simfs:allow maporder <reason> if the body is order-insensitive in a way the checker cannot prove")
			}
			return true
		})
	}
	return nil
}

func isRandPath(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

func isRandFunc(pass *analysis.Pass, sel *ast.Ident, name string) bool {
	fn, ok := pass.TypesInfo.Uses[sel].(*types.Func)
	return ok && fn.Pkg() != nil && isRandPath(fn.Pkg().Path()) && fn.Name() == name
}

// orderInsensitive reports whether every statement of a map-range body
// is insensitive to iteration order: assignments into maps, per-key
// deletes, integer/bitwise accumulation (commutative — float sums are
// not, their rounding depends on order), per-iteration locals from
// pure expressions, and pure control flow over those. Anything else
// (appends, sends, calls, returns, breaks) is order-sensitive.
func orderInsensitive(pass *analysis.Pass, body *ast.BlockStmt) bool {
	ok := true
	for _, s := range body.List {
		if !stmtInsensitive(pass, s) {
			ok = false
			break
		}
	}
	return ok
}

func stmtInsensitive(pass *analysis.Pass, stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case nil, *ast.EmptyStmt:
		return true
	case *ast.BlockStmt:
		return orderInsensitive(pass, s)
	case *ast.AssignStmt:
		switch s.Tok {
		case token.ADD_ASSIGN, token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN:
			for _, l := range s.Lhs {
				if !isIntegerExpr(pass, l) {
					return false
				}
			}
			return allPure(pass, s.Rhs)
		case token.DEFINE:
			// Fresh per-iteration locals from pure expressions.
			for _, l := range s.Lhs {
				if _, ok := l.(*ast.Ident); !ok {
					return false
				}
			}
			return allPure(pass, s.Rhs)
		case token.ASSIGN:
			// Writes are only insensitive when keyed by the element:
			// m[k] = v assigns each key once per iteration pass.
			for _, l := range s.Lhs {
				if isBlank(l) {
					continue
				}
				ix, ok := l.(*ast.IndexExpr)
				if !ok || !isMapExpr(pass, ix.X) {
					return false
				}
			}
			return allPure(pass, s.Rhs)
		default:
			return false
		}
	case *ast.IncDecStmt:
		return isIntegerExpr(pass, s.X)
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		return ok && isBuiltin(pass, call.Fun, "delete") && allPure(pass, call.Args)
	case *ast.IfStmt:
		return stmtInsensitive(pass, s.Init) && pureExpr(pass, s.Cond) &&
			orderInsensitive(pass, s.Body) && stmtInsensitive(pass, s.Else)
	case *ast.ForStmt:
		return stmtInsensitive(pass, s.Init) && pureExpr(pass, s.Cond) &&
			stmtInsensitive(pass, s.Post) && orderInsensitive(pass, s.Body)
	case *ast.RangeStmt:
		return pureExpr(pass, s.X) && orderInsensitive(pass, s.Body)
	case *ast.BranchStmt:
		// continue just skips an iteration; break makes the set of
		// processed entries depend on order.
		return s.Tok == token.CONTINUE
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return false
		}
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok && !allPure(pass, vs.Values) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

func isMapExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func isIntegerExpr(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

func isBuiltin(pass *analysis.Pass, fun ast.Expr, name string) bool {
	id, ok := fun.(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin && id.Name == name
}

// pureExpr reports whether evaluating e has no side effects and no
// order-dependent result: no calls (except len/cap/min/max and type
// conversions), no channel receives.
func pureExpr(pass *analysis.Pass, e ast.Expr) bool {
	if e == nil {
		return true
	}
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if tv, ok := pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() {
				return true // conversion
			}
			if id, ok := n.Fun.(*ast.Ident); ok {
				if _, isB := pass.TypesInfo.Uses[id].(*types.Builtin); isB {
					switch id.Name {
					case "len", "cap", "min", "max":
						return true
					}
				}
			}
			pure = false
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pure = false
				return false
			}
		case *ast.FuncLit:
			return false // defining one is pure; skip its body
		}
		return true
	})
	return pure
}

func allPure(pass *analysis.Pass, exprs []ast.Expr) bool {
	for _, e := range exprs {
		if !pureExpr(pass, e) {
			return false
		}
	}
	return true
}
