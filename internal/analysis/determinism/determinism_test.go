package determinism_test

import (
	"testing"

	"simfs/internal/analysis/analysistest"
	"simfs/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	// The map-order rule is scoped to the determinism-critical
	// packages; pull the testdata package into scope.
	determinism.MapOrderPackages["vettest/maporder"] = true
	defer delete(determinism.MapOrderPackages, "vettest/maporder")
	analysistest.Run(t, "testdata", determinism.Analyzer)
}
