// Package locks exercises the lockorder analyzer: shard-mutex
// nesting, plain-mutex ordering, and blocking work under a shard
// lock. ContendedMutex and Hub are matched by type name, so local
// stand-ins behave exactly like the simfs metrics/notify types.
package locks

import "sync"

type ContendedMutex struct{ sync.Mutex }

type Hub struct{}

func (h *Hub) Publish(ev string) {}

type shard struct {
	mu ContendedMutex
	ch chan int
}

type registry struct {
	mu sync.Mutex
}

func NestedFlagged(a, b *shard) {
	a.mu.Lock()
	b.mu.Lock() // want "nested shard lock b.mu while holding a.mu"
	b.mu.Unlock()
	a.mu.Unlock()
}

func NestedAllowed(down, up *shard) {
	down.mu.Lock()
	up.mu.Lock() //simfs:allow lockorder downstream-to-upstream pipeline order
	up.mu.Unlock()
	down.mu.Unlock()
}

func SequentialClean(a, b *shard) {
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
}

func PlainThenShardFlagged(r *registry, s *shard) {
	r.mu.Lock()
	s.mu.Lock() // want "shard lock s.mu acquired while a plain mutex is held"
	s.mu.Unlock()
	r.mu.Unlock()
}

// ShardThenPlainClean is the documented order: shard locks first,
// then the registry mutexes.
func ShardThenPlainClean(r *registry, s *shard) {
	s.mu.Lock()
	r.mu.Lock()
	r.mu.Unlock()
	s.mu.Unlock()
}

func SendFlagged(s *shard) {
	s.mu.Lock()
	s.ch <- 1 // want "blocking channel send while shard lock s.mu is held"
	s.mu.Unlock()
}

func SendAfterUnlockClean(s *shard) {
	s.mu.Lock()
	v := 1
	s.mu.Unlock()
	s.ch <- v
}

// DeferredUnlockHolds: a deferred unlock keeps the lock held to the
// end of the function, so the send is still under the lock.
func DeferredUnlockHolds(s *shard) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- 1 // want "blocking channel send while shard lock s.mu is held"
}

func PublishFlagged(h *Hub, s *shard) {
	s.mu.Lock()
	h.Publish("evict") // want "notify hub publish while shard lock s.mu is held"
	s.mu.Unlock()
}

func PublishAfterUnlockClean(h *Hub, s *shard) {
	s.mu.Lock()
	s.mu.Unlock()
	h.Publish("evict")
}

// lockedEntry is entered with s's lock held by the caller, so even
// its first acquisition is a nested one.
//
//simfs:locked s.mu
func lockedEntry(s, t *shard) {
	t.mu.Lock() // want "nested shard lock t.mu while holding caller:s.mu"
	t.mu.Unlock()
}

// GoroutineClean: a spawned goroutine does not run under the
// caller's locks.
func GoroutineClean(h *Hub, s *shard) {
	s.mu.Lock()
	go func() {
		h.Publish("later")
		s.ch <- 1
	}()
	s.mu.Unlock()
}

func SelectDefaultClean(s *shard) {
	s.mu.Lock()
	select {
	case s.ch <- 1:
	default:
	}
	s.mu.Unlock()
}

func SelectNoDefaultFlagged(s *shard) {
	s.mu.Lock()
	select {
	case s.ch <- 1: // want "potentially blocking select send while shard lock s.mu is held"
	}
	s.mu.Unlock()
}

// CondUnlockClean: both branches release, so the fall-through state
// is unlocked and the send is fine.
func CondUnlockClean(s *shard, c bool) {
	s.mu.Lock()
	if c {
		s.mu.Unlock()
	} else {
		s.mu.Unlock()
	}
	s.ch <- 1
}

// EarlyReturnHolds: the unlocking branch returns, so the code after
// the if still runs under the lock.
func EarlyReturnHolds(s *shard, c bool) {
	s.mu.Lock()
	if c {
		s.mu.Unlock()
		return
	}
	s.ch <- 1 // want "blocking channel send while shard lock s.mu is held"
	s.mu.Unlock()
}
