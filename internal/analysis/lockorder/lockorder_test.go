package lockorder_test

import (
	"testing"

	"simfs/internal/analysis/analysistest"
	"simfs/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer)
}
