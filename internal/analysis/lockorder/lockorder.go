// Package lockorder enforces the shard-mutex discipline the
// Virtualizer documents in prose (PR 1): shard locks
// (metrics.ContendedMutex) nest only in downstream→upstream pipeline
// order, the plain mutexes (ctxMu, simMu) are never held while a
// shard lock is acquired, and nothing that can block on another
// goroutine — a notify-hub publish, a channel send — runs while a
// shard lock is held.
//
// The analysis is function-local. It tracks Lock/Unlock pairs in
// statement order within each function; a function entered with a
// shard lock already held (the "Caller holds cs's lock" convention)
// declares that with //simfs:locked <which lock>, extending the
// checked region across the call boundary. The one sanctioned
// nesting — locking the upstream shard while holding the downstream
// one — is annotated //simfs:allow lockorder at the acquisition
// site, with the ordering argument as the reason.
//
// Type matching is by name (a named type ContendedMutex, the sync
// package's Mutex/RWMutex, a Hub's Publish method), so the analyzer
// is testable outside the simfs module.
package lockorder

import (
	"go/ast"
	"go/types"

	"simfs/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "check shard-mutex ordering: no nested shard locks outside the sanctioned " +
		"pipeline order, no shard lock under ctxMu/simMu, and no publish or blocking " +
		"send while a shard lock is held",
	Run: run,
}

type lockState struct {
	shard map[string]int // held ContendedMutex receivers, by expression text
	plain map[string]int // held sync.Mutex/sync.RWMutex receivers
}

func newState() *lockState {
	return &lockState{shard: map[string]int{}, plain: map[string]int{}}
}

func (s *lockState) copy() *lockState {
	c := newState()
	for k, v := range s.shard {
		c.shard[k] = v
	}
	for k, v := range s.plain {
		c.plain[k] = v
	}
	return c
}

func (s *lockState) shardHeld() bool { return len(s.shard) > 0 }

func (s *lockState) heldNames() string {
	// Deterministic order for messages: there is at most a handful.
	names := make([]string, 0, len(s.shard))
	for k := range s.shard {
		names = append(names, k)
	}
	sortStrings(names)
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += n
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			st := newState()
			if held, ok := analysis.HasDirective(fn.Doc, "locked"); ok {
				// The caller holds a shard lock for the whole call.
				st.shard["caller:"+held] = 1
			}
			c.walkStmts(fn.Body.List, st)
		}
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
}

func (c *checker) walkStmts(stmts []ast.Stmt, st *lockState) {
	for _, s := range stmts {
		c.stmt(s, st)
	}
}

func (c *checker) stmt(stmt ast.Stmt, st *lockState) {
	switch s := stmt.(type) {
	case nil:
		return
	case *ast.BlockStmt:
		c.walkStmts(s.List, st)
	case *ast.ExprStmt:
		if c.lockOp(s.X, st) {
			return
		}
		c.scan(s.X, st)
	case *ast.DeferStmt:
		// defer x.mu.Unlock() keeps the lock held to function end, which
		// the linear walk already models by not removing it. Other
		// deferred work runs at return; treat it like held-region code
		// when a lock is still held here (conservative but right for
		// the lock-then-defer-unlock idiom).
		if kind, _, isUnlock := c.classify(s.Call); isUnlock && kind != lockNone {
			return
		}
		c.scan(s.Call, st)
	case *ast.GoStmt:
		// A spawned goroutine does not run under the caller's locks.
		return
	case *ast.SendStmt:
		if st.shardHeld() {
			c.pass.Reportf("lockorder", s.Arrow,
				"blocking channel send while shard lock %s is held; buffer the value and send after unlock", st.heldNames())
		}
		c.scan(s.Chan, st)
		c.scan(s.Value, st)
	case *ast.IfStmt:
		c.stmt(s.Init, st)
		c.scan(s.Cond, st)
		bodySt := st.copy()
		c.walkStmts(s.Body.List, bodySt)
		var outcomes []*lockState
		if !terminates(s.Body) {
			outcomes = append(outcomes, bodySt)
		}
		if s.Else != nil {
			elseSt := st.copy()
			c.stmt(s.Else, elseSt)
			if !stmtTerminates(s.Else) {
				outcomes = append(outcomes, elseSt)
			}
		} else {
			outcomes = append(outcomes, st.copy())
		}
		if len(outcomes) > 0 {
			*st = *intersect(outcomes)
		}
	case *ast.ForStmt:
		c.stmt(s.Init, st)
		c.scan(s.Cond, st)
		body := st.copy()
		c.walkStmts(s.Body.List, body)
		c.stmt(s.Post, body)
	case *ast.RangeStmt:
		c.scan(s.X, st)
		body := st.copy()
		c.walkStmts(s.Body.List, body)
	case *ast.SwitchStmt:
		c.stmt(s.Init, st)
		c.scan(s.Tag, st)
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				sub := st.copy()
				c.walkStmts(cc.Body, sub)
			}
		}
	case *ast.TypeSwitchStmt:
		c.stmt(s.Init, st)
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CaseClause); ok {
				sub := st.copy()
				c.walkStmts(cc.Body, sub)
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		for _, clause := range s.Body.List {
			cc, ok := clause.(*ast.CommClause)
			if !ok {
				continue
			}
			sub := st.copy()
			if cc.Comm != nil {
				if send, ok := cc.Comm.(*ast.SendStmt); ok {
					// A select with a default never blocks; without one
					// it blocks exactly like a bare send.
					if !hasDefault && sub.shardHeld() {
						c.pass.Reportf("lockorder", send.Arrow,
							"potentially blocking select send while shard lock %s is held; add a default case or move the send after unlock", sub.heldNames())
					}
				}
			}
			c.walkStmts(cc.Body, sub)
		}
	case *ast.LabeledStmt:
		c.stmt(s.Stmt, st)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.scan(e, st)
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.scan(e, st)
		}
		for _, e := range s.Lhs {
			c.scan(e, st)
		}
	case *ast.DeclStmt, *ast.IncDecStmt:
		c.scan(s, st)
	}
}

type lockKind int

const (
	lockNone lockKind = iota
	lockShard
	lockPlain
)

// classify recognizes method calls on tracked mutex types, returning
// the mutex kind, the receiver's expression text, and whether the
// call releases (vs acquires).
func (c *checker) classify(call *ast.CallExpr) (kind lockKind, key string, unlock bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockNone, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock", "Unlock", "RUnlock":
	default:
		return lockNone, "", false
	}
	recv := c.recvType(sel)
	if recv == nil {
		return lockNone, "", false
	}
	named, ok := deref(recv).(*types.Named)
	if !ok {
		return lockNone, "", false
	}
	unlock = sel.Sel.Name == "Unlock" || sel.Sel.Name == "RUnlock"
	obj := named.Obj()
	switch {
	case obj.Name() == "ContendedMutex":
		return lockShard, types.ExprString(sel.X), unlock
	case obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex"):
		return lockPlain, types.ExprString(sel.X), unlock
	}
	return lockNone, "", false
}

func (c *checker) recvType(sel *ast.SelectorExpr) types.Type {
	if s, ok := c.pass.TypesInfo.Selections[sel]; ok {
		return s.Recv()
	}
	if tv, ok := c.pass.TypesInfo.Types[sel.X]; ok {
		return tv.Type
	}
	return nil
}

func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// lockOp applies a lock/unlock statement to the state, reporting
// ordering violations at acquisition. Reports go through the
// //simfs:allow lockorder escape hatch, which is how the one
// sanctioned nesting (downstream→upstream pipeline order) is blessed.
func (c *checker) lockOp(e ast.Expr, st *lockState) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	kind, key, unlock := c.classify(call)
	if kind == lockNone {
		return false
	}
	switch kind {
	case lockShard:
		if unlock {
			if st.shard[key] > 0 {
				st.shard[key]--
				if st.shard[key] == 0 {
					delete(st.shard, key)
				}
			}
			return true
		}
		if len(st.plain) > 0 {
			c.pass.Reportf("lockorder", call.Pos(),
				"shard lock %s acquired while a plain mutex is held; the documented order is shard locks first, then ctxMu/simMu", key)
		}
		if st.shardHeld() {
			c.pass.Reportf("lockorder", call.Pos(),
				"nested shard lock %s while holding %s; only downstream→upstream pipeline order is sanctioned — annotate //simfs:allow lockorder <why this nesting is ordered> if so",
				key, st.heldNames())
		}
		st.shard[key]++
	case lockPlain:
		if unlock {
			if st.plain[key] > 0 {
				st.plain[key]--
				if st.plain[key] == 0 {
					delete(st.plain, key)
				}
			}
			return true
		}
		st.plain[key]++
	}
	return true
}

// scan walks an expression or small statement for calls that can
// block on other goroutines while a shard lock is held. Function
// literals are skipped: defining a closure under a lock is fine.
func (c *checker) scan(n ast.Node, st *lockState) {
	if n == nil || !st.shardHeld() {
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Publish" {
				if named, ok := deref(c.recvTypeOf(sel)).(*types.Named); ok && named.Obj().Name() == "Hub" {
					c.pass.Reportf("lockorder", x.Pos(),
						"notify hub publish while shard lock %s is held; publish after unlock (subscriber callbacks may re-enter the shard)", st.heldNames())
				}
			}
		}
		return true
	})
}

func (c *checker) recvTypeOf(sel *ast.SelectorExpr) types.Type {
	t := c.recvType(sel)
	if t == nil {
		return types.Typ[types.Invalid]
	}
	return t
}

// terminates reports whether a block always transfers control away
// (return, branch, panic), so its lock-state cannot flow to the code
// after the enclosing statement.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	return stmtTerminates(b.List[len(b.List)-1])
}

func stmtTerminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.BlockStmt:
		return terminates(s)
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.IfStmt:
		return terminates(s.Body) && s.Else != nil && stmtTerminates(s.Else)
	}
	return false
}

// intersect keeps only the locks held in every fall-through outcome,
// so a conditional unlock does not leak a phantom held lock.
func intersect(states []*lockState) *lockState {
	out := states[0].copy()
	for _, s := range states[1:] {
		for k, v := range out.shard {
			if s.shard[k] < v {
				if s.shard[k] == 0 {
					delete(out.shard, k)
				} else {
					out.shard[k] = s.shard[k]
				}
			}
		}
		for k, v := range out.plain {
			if s.plain[k] < v {
				if s.plain[k] == 0 {
					delete(out.plain, k)
				} else {
					out.plain[k] = s.plain[k]
				}
			}
		}
	}
	return out
}
