// Package analysis is a self-contained, stdlib-only skeleton of the
// golang.org/x/tools/go/analysis API, carrying the four simfs-vet
// analyzers (determinism, fieldsync, lockorder, errcode) that
// mechanically enforce invariants this codebase used to keep only by
// reviewer vigilance. The x/tools module is deliberately not a
// dependency: the repo builds offline with a bare go.mod, so the
// framework re-implements the small slice of the API the analyzers
// need — per-package passes over type-checked syntax, diagnostics,
// and package facts flowing in dependency order — on top of
// `go list -export` and the stdlib gc export-data importer.
//
// Analyzers interact with source through //simfs: directives; see
// directives.go for the grammar and DESIGN.md ("Static analysis &
// enforced invariants") for the rule each analyzer encodes and the
// PR-numbered bug each descends from.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one invariant checker. Mirrors the shape of
// x/tools' analysis.Analyzer so the analyzers port over mechanically
// if the dependency ever becomes available.
type Analyzer struct {
	// Name identifies the analyzer in findings and is the <check>
	// token accepted by //simfs:allow <check> <reason> escape
	// hatches (determinism uses the finer-grained tokens wallclock,
	// rand and maporder instead of its analyzer name).
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// A Package is one loaded, type-checked package of the target module
// (or of an analysistest testdata module).
type Package struct {
	// PkgPath is the import path ("simfs/internal/core").
	PkgPath string
	// Dir is the directory holding the package sources.
	Dir string
	// Deps holds the transitive import closure (import paths),
	// including non-module (stdlib) packages.
	Deps map[string]bool
	// Fset is the file set shared by every package of one load.
	Fset *token.FileSet
	// Syntax holds the parsed files, with comments.
	Syntax []*ast.File
	// Types and TypesInfo hold the go/types results.
	Types     *types.Package
	TypesInfo *types.Info

	// directives are the parsed //simfs: comments of the package.
	directives []*Directive
}

// A Pass connects one Analyzer run to one Package. Diagnostics are
// reported through it and package facts exported/looked up through
// the runner's shared store.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	// Convenience aliases into Pkg, matching the x/tools field names
	// the analyzer bodies are written against.
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
	facts  *factStore
}

// Reportf records a finding at pos unless an applicable
// //simfs:allow directive suppresses check there. The check token is
// what an allow annotation must name; it is usually the analyzer
// name, but an analyzer may use finer tokens (wallclock, rand,
// maporder).
func (p *Pass) Reportf(check string, pos token.Pos, format string, args ...any) {
	if p.allowed(check, pos) {
		return
	}
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// allowed reports whether an //simfs:allow <check> <reason>
// directive covers pos: same line, the line directly above, or a
// function whose doc comment carries the directive. A matching
// directive is marked used, so the runner can flag stale allowances.
func (p *Pass) allowed(check string, pos token.Pos) bool {
	position := p.Fset.Position(pos)
	ok := false
	for _, d := range p.Pkg.directives {
		if d.Name != "allow" || d.Check != check {
			continue
		}
		if d.covers(p.Fset, position) {
			d.Used = true
			ok = true
			// Keep scanning: overlapping allowances (line + span)
			// should all count as used.
		}
	}
	return ok
}

// ExportFact publishes a package-scoped fact under key. Facts are
// visible to later passes (any analyzer) of packages that import
// this one; the runner analyzes packages in dependency order, so an
// importer always sees its dependencies' facts.
func (p *Pass) ExportFact(key string, val any) {
	p.facts.set(p.Pkg.PkgPath, p.Analyzer.Name, key, val)
}

// LookupFact retrieves a fact exported by this analyzer for the
// package with the given import path.
func (p *Pass) LookupFact(pkgPath, key string) (any, bool) {
	return p.facts.get(pkgPath, p.Analyzer.Name, key)
}

// FactKeys lists the keys of every fact this analyzer exported for
// pkgPath, sorted for deterministic iteration.
func (p *Pass) FactKeys(pkgPath string) []string {
	return p.facts.keys(pkgPath, p.Analyzer.Name)
}

// factStore holds exported facts for one runner invocation, keyed
// pkgPath → analyzer → key.
type factStore struct {
	m map[string]map[string]map[string]any
}

func newFactStore() *factStore {
	return &factStore{m: map[string]map[string]map[string]any{}}
}

func (s *factStore) set(pkg, analyzer, key string, val any) {
	byAn := s.m[pkg]
	if byAn == nil {
		byAn = map[string]map[string]any{}
		s.m[pkg] = byAn
	}
	byKey := byAn[analyzer]
	if byKey == nil {
		byKey = map[string]any{}
		byAn[analyzer] = byKey
	}
	byKey[key] = val
}

func (s *factStore) get(pkg, analyzer, key string) (any, bool) {
	v, ok := s.m[pkg][analyzer][key]
	return v, ok
}

func (s *factStore) keys(pkg, analyzer string) []string {
	byKey := s.m[pkg][analyzer]
	keys := make([]string, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
