package suite_test

import (
	"os/exec"
	"path/filepath"
	"testing"

	"simfs/internal/analysis"
	"simfs/internal/analysis/suite"
)

// TestTreeIsFindingFree runs the full simfs-vet suite over the module
// and fails on any finding, so `go test ./...` enforces the invariants
// even where simfs-vet is not wired into the workflow. This is also the
// tripwire the acceptance criteria ask for: removing one field
// reference from fed's mergeStats, or one sentinel case from the
// server's codeOf, turns into a test failure here.
func TestTreeIsFindingFree(t *testing.T) {
	if _, err := exec.LookPath("go"); err != nil {
		t.Skipf("go tool unavailable: %v", err)
	}
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.Load(root, "./...")
	if err != nil {
		// The loader shells out to `go list -export`; a sandboxed or
		// cache-less environment can legitimately refuse that.
		t.Skipf("loading module packages: %v", err)
	}
	findings, err := analysis.Run(pkgs, suite.All, analysis.RunOptions{
		Filter:             suite.Filter,
		ReportUnusedAllows: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f.String())
	}
	if len(findings) > 0 {
		t.Errorf("%d finding(s); fix the site or annotate //simfs:allow <check> <reason>", len(findings))
	}
}
