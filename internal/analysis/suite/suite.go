// Package suite assembles the simfs-vet analyzers and the repo's
// scoping policy, shared by cmd/simfs-vet and the self-test that
// keeps the tree finding-free under `go test ./...`.
package suite

import (
	"strings"

	"simfs/internal/analysis"
	"simfs/internal/analysis/determinism"
	"simfs/internal/analysis/errcode"
	"simfs/internal/analysis/fieldsync"
	"simfs/internal/analysis/lockorder"
)

// All is the simfs-vet multichecker: the four invariant analyzers, in
// the order their findings are usually triaged.
var All = []*analysis.Analyzer{
	determinism.Analyzer,
	fieldsync.Analyzer,
	lockorder.Analyzer,
	errcode.Analyzer,
}

// Filter is the repo's scoping policy. The examples/ programs are
// user-facing demos that legitimately print real elapsed time, so the
// determinism analyzer skips them; everything else runs everywhere
// (fieldsync, lockorder and errcode are annotation-driven and inert
// where nothing is annotated, and determinism's map-order rule
// already confines itself to determinism.MapOrderPackages).
func Filter(a *analysis.Analyzer, pkg *analysis.Package) bool {
	if a == determinism.Analyzer && strings.HasPrefix(pkg.PkgPath, "simfs/examples/") {
		return false
	}
	return true
}
