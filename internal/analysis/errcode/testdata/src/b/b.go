// Package b carries classification tables, so the registry of its
// import closure must be total and naked error fabrication is
// flagged.
package b

import (
	"errors"
	"fmt"

	"vettest/a"
)

//simfs:errcode not_found
var ErrMissing = errors.New("missing")

var errStray = errors.New("stray") // want "package-level error sentinel without //simfs:errcode registration"

// CodeGood handles every registered sentinel reachable through its
// imports: the three in package a plus ErrMissing here.
//
//simfs:errcode-table
func CodeGood(err error) string {
	var q *a.QuarantineError
	switch {
	case errors.Is(err, a.ErrInvalid):
		return "bad_request"
	case errors.Is(err, a.ErrBusy):
		return "busy"
	case errors.As(err, &q):
		return "failed"
	case errors.Is(err, ErrMissing):
		return "not_found"
	}
	return "internal"
}

// CodeBad forgets ErrBusy: busy errors would leak as the catch-all.
//
//simfs:errcode-table
func CodeBad(err error) string { // want "classification table CodeBad does not handle a.ErrBusy"
	var q *a.QuarantineError
	switch {
	case errors.Is(err, a.ErrInvalid):
		return "bad_request"
	case errors.As(err, &q):
		return "failed"
	case errors.Is(err, ErrMissing):
		return "not_found"
	}
	return "internal"
}

func Fabricate() error {
	return errors.New("oops") // want "errors.New fabricates an error no classification table can route"
}

func Wrapless(x int) error {
	return fmt.Errorf("x=%d", x) // want "fmt.Errorf without %w fabricates an error"
}

func WrapGood(x int) error {
	return fmt.Errorf("x=%d: %w", x, ErrMissing)
}

func AllowedStartup() error {
	return errors.New("config: bad flag") //simfs:allow errcode startup validation never reaches the wire
}
