// Package a declares the registered error sentinels the errcode
// testdata classifies. It carries no classification table itself, so
// its errors.New calls are not naked-error findings.
package a

import "errors"

//simfs:errcode bad_request
var ErrInvalid = errors.New("invalid request")

//simfs:errcode busy
var ErrBusy = errors.New("resource busy")

// QuarantineError is a registered error type (matched via errors.As).
//
//simfs:errcode failed
type QuarantineError struct{ Sim string }

func (e *QuarantineError) Error() string { return "quarantined " + e.Sim }

//simfs:errcode nope
var NotAnError = 42 // want "NotAnError is annotated //simfs:errcode nope but is not an error"
