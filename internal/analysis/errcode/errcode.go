// Package errcode keeps the wire error-classification table total.
// Error sentinels and error types annotated //simfs:errcode <code>
// (core.ErrInvalid and friends, *core.QuarantineError) form a
// registry; every function annotated //simfs:errcode-table (the
// server's codeOf) must reference each registered sentinel reachable
// through its imports, so deleting a case fails the build instead of
// silently reclassifying an error (the PR 8 codeOf fix is the bug
// class this encodes: unhandled errors leaking as bad_request).
//
// In packages that carry a classification table, handler code must
// not fabricate unclassifiable errors: errors.New and fmt.Errorf
// without a %w wrap are flagged, because codeOf can only route such
// errors to the catch-all internal code. Wrap a registered sentinel,
// or annotate //simfs:allow errcode <reason> for paths that never
// reach the wire (startup validation, logging).
package errcode

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"

	"simfs/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "errcode",
	Doc: "check that //simfs:errcode-table functions classify every registered " +
		"//simfs:errcode sentinel, and that table-bearing packages never fabricate " +
		"unclassifiable errors",
	Run: run,
}

func run(pass *analysis.Pass) error {
	registerSentinels(pass)

	var tables []*ast.FuncDecl
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok {
				if _, ok := analysis.HasDirective(fn.Doc, "errcode-table"); ok {
					tables = append(tables, fn)
				}
			}
		}
	}
	for _, fn := range tables {
		checkTable(pass, fn)
	}
	if len(tables) > 0 {
		checkNakedErrors(pass)
	}
	return nil
}

// registerSentinels exports a fact for every annotated error sentinel
// var and error type of the package.
func registerSentinels(pass *analysis.Pass) {
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	register := func(name *ast.Ident, code string, t types.Type) {
		if !types.Implements(t, errIface) && !types.Implements(types.NewPointer(t), errIface) {
			pass.Reportf("errcode", name.Pos(),
				"%s is annotated //simfs:errcode %s but is not an error", name.Name, code)
			return
		}
		pass.ExportFact("errcode:"+name.Name, code)
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				switch spec := spec.(type) {
				case *ast.ValueSpec:
					code, ok := specDirective(gd, spec.Doc, spec.Comment, "errcode")
					if !ok {
						continue
					}
					for _, name := range spec.Names {
						if obj := pass.TypesInfo.Defs[name]; obj != nil {
							register(name, code, obj.Type())
						}
					}
				case *ast.TypeSpec:
					code, ok := specDirective(gd, spec.Doc, spec.Comment, "errcode")
					if !ok {
						continue
					}
					if obj := pass.TypesInfo.Defs[spec.Name]; obj != nil {
						register(spec.Name, code, obj.Type())
					}
				}
			}
		}
	}
}

func specDirective(gd *ast.GenDecl, doc, comment *ast.CommentGroup, name string) (string, bool) {
	if args, ok := analysis.HasDirective(doc, name); ok {
		return args, true
	}
	if args, ok := analysis.HasDirective(comment, name); ok {
		return args, true
	}
	return analysis.HasDirective(gd.Doc, name)
}

// checkTable verifies fn references every registered sentinel of its
// own package and of its transitive imports.
func checkTable(pass *analysis.Pass, fn *ast.FuncDecl) {
	if fn.Body == nil {
		return
	}
	type sentinel struct {
		pkgPath, name, code string
	}
	var registry []sentinel
	paths := make([]string, 0, len(pass.Pkg.Deps)+1)
	paths = append(paths, pass.Pkg.PkgPath)
	for dep := range pass.Pkg.Deps {
		paths = append(paths, dep)
	}
	sort.Strings(paths)
	for _, path := range paths {
		for _, key := range pass.FactKeys(path) {
			name := strings.TrimPrefix(key, "errcode:")
			code, _ := pass.LookupFact(path, key)
			registry = append(registry, sentinel{path, name, code.(string)})
		}
	}

	// An identifier anywhere in the body resolving to the sentinel —
	// errors.Is(err, core.ErrBusy), errors.As(err, &qerr) via the
	// *core.QuarantineError type — counts as handling it.
	used := map[[2]string]bool{}
	for ident, obj := range pass.TypesInfo.Uses {
		if ident.Pos() < fn.Body.Pos() || ident.Pos() >= fn.Body.End() {
			continue
		}
		if obj != nil && obj.Pkg() != nil {
			used[[2]string{obj.Pkg().Path(), obj.Name()}] = true
		}
	}
	for _, s := range registry {
		if !used[[2]string{s.pkgPath, s.name}] {
			pass.Reportf("errcode", fn.Name.Pos(),
				"classification table %s does not handle %s.%s (//simfs:errcode %s); errors of that kind will fall through to the catch-all code",
				fn.Name.Name, pkgBase(s.pkgPath), s.name, s.code)
		}
	}
}

func pkgBase(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// checkNakedErrors flags error constructions the classification table
// cannot route: errors.New and fmt.Errorf without %w. Package-level
// errors.New vars are sentinels and must register with
// //simfs:errcode instead.
func checkNakedErrors(pass *analysis.Pass) {
	for _, file := range pass.Files {
		// Package-level sentinel declarations.
		inFunc := map[ast.Node]bool{}
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					inFunc[call] = true
				}
				return true
			})
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || obj.Pkg() == nil {
				return true
			}
			switch {
			case obj.Pkg().Path() == "errors" && obj.Name() == "New":
				if !inFunc[call] {
					// A package-level sentinel: it must be registered so
					// classification tables are forced to handle it.
					if !hasErrcodeDirectiveAt(pass, file, call) {
						pass.Reportf("errcode", call.Pos(),
							"package-level error sentinel without //simfs:errcode registration; annotate it so classification tables must handle it")
					}
					return true
				}
				pass.Reportf("errcode", call.Pos(),
					"errors.New fabricates an error no classification table can route; wrap a registered sentinel with fmt.Errorf(\"...: %%w\", ErrX) or annotate //simfs:allow errcode <reason>")
			case obj.Pkg().Path() == "fmt" && obj.Name() == "Errorf":
				if formatWraps(pass, call) {
					return true
				}
				pass.Reportf("errcode", call.Pos(),
					"fmt.Errorf without %%w fabricates an error no classification table can route; wrap a registered sentinel or annotate //simfs:allow errcode <reason>")
			}
			return true
		})
	}
}

// hasErrcodeDirectiveAt reports whether the declaration containing
// call carries an //simfs:errcode directive (matched by position, for
// package-level specs).
func hasErrcodeDirectiveAt(pass *analysis.Pass, file *ast.File, call *ast.CallExpr) bool {
	found := false
	ast.Inspect(file, func(n ast.Node) bool {
		gd, ok := n.(*ast.GenDecl)
		if !ok || call.Pos() < gd.Pos() || call.Pos() >= gd.End() {
			return true
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || call.Pos() < vs.Pos() || call.Pos() >= vs.End() {
				continue
			}
			if _, ok := specDirective(gd, vs.Doc, vs.Comment, "errcode"); ok {
				found = true
			}
		}
		return false
	})
	return found
}

// formatWraps reports whether the fmt.Errorf call's constant format
// string contains a %w verb. Non-constant formats are assumed to wrap
// (they are rare; flagging them would be noise).
func formatWraps(pass *analysis.Pass, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return true
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return true
	}
	return strings.Contains(constant.StringVal(tv.Value), "%w")
}
