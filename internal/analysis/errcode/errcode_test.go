package errcode_test

import (
	"testing"

	"simfs/internal/analysis/analysistest"
	"simfs/internal/analysis/errcode"
)

func TestErrCode(t *testing.T) {
	analysistest.Run(t, "testdata", errcode.Analyzer)
}
