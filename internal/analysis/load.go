package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// The loader deliberately avoids golang.org/x/tools/go/packages (the
// module is not a dependency; the repo builds offline): it shells out
// to `go list -export -deps -json`, which compiles the target packages
// and their dependencies and reports an export-data file per package,
// then type-checks the non-stdlib packages from source with the stdlib
// gc importer resolving every import from that export data. `go list`
// emits dependencies before dependents, which is exactly the order
// package facts need.

// listPkg is the subset of `go list -json` output the loader reads.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	Standard   bool
	GoFiles    []string
	Deps       []string
}

// Load type-checks the packages matched by patterns (default ./...)
// in the module rooted at or above dir, returning them in dependency
// order (imports first).
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-export", "-deps",
		"-json=Dir,ImportPath,Name,Export,Standard,GoFiles,Deps",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := map[string]string{} // import path → export data file
	var local []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard {
			q := p
			local = append(local, &q)
		}
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, p := range local {
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil,
				parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
		}
		deps := make(map[string]bool, len(p.Deps))
		for _, d := range p.Deps {
			deps[d] = true
		}
		pkgs = append(pkgs, &Package{
			PkgPath:   p.ImportPath,
			Dir:       p.Dir,
			Deps:      deps,
			Fset:      fset,
			Syntax:    files,
			Types:     tpkg,
			TypesInfo: info,
		})
	}
	return pkgs, nil
}

// A Finding is one resolved diagnostic of a run.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// RunOptions configure a Run over loaded packages.
type RunOptions struct {
	// Filter, when non-nil, limits which analyzers run on which
	// packages. Directive parsing and malformed-directive findings
	// are unaffected.
	Filter func(a *Analyzer, pkg *Package) bool
	// ReportUnusedAllows adds a finding for every //simfs:allow that
	// suppressed nothing, so stale allowances cannot linger. Only
	// meaningful when every analyzer an allowance could refer to has
	// run (simfs-vet does; analysistest runs one analyzer and leaves
	// this off).
	ReportUnusedAllows bool
}

// Run applies the analyzers to every package, in the given (dependency)
// order, sharing one fact store. Findings come back sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer, opts RunOptions) ([]Finding, error) {
	facts := newFactStore()
	var findings []Finding
	for _, pkg := range pkgs {
		// Parse directives once per package; malformed ones are
		// findings in their own right, attributed to the pseudo
		// analyzer "directive".
		pkg.directives = nil
		for _, f := range pkg.Syntax {
			dirs, malformed := parseDirectives(pkg.Fset, f)
			pkg.directives = append(pkg.directives, dirs...)
			for _, d := range malformed {
				findings = append(findings, Finding{
					Pos: pkg.Fset.Position(d.Pos), Analyzer: "directive", Message: d.Message,
				})
			}
		}
		for _, a := range analyzers {
			if opts.Filter != nil && !opts.Filter(a, pkg) {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Pkg:       pkg,
				Fset:      pkg.Fset,
				Files:     pkg.Syntax,
				Types:     pkg.Types,
				TypesInfo: pkg.TypesInfo,
				facts:     facts,
				report: func(d Diagnostic) {
					findings = append(findings, Finding{
						Pos: pkg.Fset.Position(d.Pos), Analyzer: a.Name, Message: d.Message,
					})
				},
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.PkgPath, err)
			}
		}
	}
	if opts.ReportUnusedAllows {
		for _, pkg := range pkgs {
			for _, d := range pkg.directives {
				if d.Name == "allow" && !d.Used {
					findings = append(findings, Finding{
						Pos:      pkg.Fset.Position(d.Pos),
						Analyzer: "directive",
						Message:  fmt.Sprintf("unused //simfs:allow %s: no finding here to suppress; delete the stale allowance", d.Check),
					})
				}
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
	return findings, nil
}
