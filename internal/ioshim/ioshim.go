// Package ioshim provides the I/O-library bindings of the paper's Table I:
// netCDF-, HDF5- and ADIOS-style front-ends whose open/create/read/close
// calls are transparently interposed onto DVLib. In the original system
// the interposition happens at the shared-library level (LD_PRELOAD); Go
// cannot interpose C symbols, so these shims expose the same call shapes —
// including the crucial semantics that open is non-blocking while a read
// of a missing file blocks until the DV re-simulates it — as explicit
// bindings (see DESIGN.md, substitutions).
//
//	call    (P)NetCDF            (P)HDF5    ADIOS
//	open    nc_open              H5Fopen    adios_open (r)
//	create  nc_create            H5Fcreate  adios_open (w)
//	read    nc_vara_get_<type>   H5Dread    adios_schedule_read
//	close   nc_close             H5Fclose   adios_close
package ioshim

import (
	"encoding/binary"
	"fmt"

	"simfs/internal/dvlib"
)

// handle is the shared state behind every binding's file handle.
type handle struct {
	ctx    *dvlib.Context
	name   string
	opened bool
}

func open(ctx *dvlib.Context, name string) (*handle, error) {
	if _, err := ctx.Open(name); err != nil {
		return nil, err
	}
	return &handle{ctx: ctx, name: name, opened: true}, nil
}

// readAll blocks until the file is available (the DVLib wait path) and
// returns its bytes.
func (h *handle) readAll() ([]byte, error) {
	if !h.opened {
		return nil, fmt.Errorf("ioshim: %q is closed", h.name)
	}
	return h.ctx.Read(h.name)
}

func (h *handle) close() error {
	if !h.opened {
		return fmt.Errorf("ioshim: double close of %q", h.name)
	}
	h.opened = false
	return h.ctx.Close(h.name)
}

// --- netCDF-style binding -------------------------------------------------

// NCFile mirrors a netCDF file handle (nc_open).
type NCFile struct{ h *handle }

// NCOpen corresponds to nc_open / ncmpi_open: non-blocking, it registers
// the access with the DV.
func NCOpen(ctx *dvlib.Context, path string) (*NCFile, error) {
	h, err := open(ctx, path)
	if err != nil {
		return nil, err
	}
	return &NCFile{h: h}, nil
}

// VaraGetDouble corresponds to nc_vara_get_double: it reads count float64
// values starting at element offset start. The call blocks until the file
// is on disk.
func (f *NCFile) VaraGetDouble(start, count int) ([]float64, error) {
	raw, err := f.h.readAll()
	if err != nil {
		return nil, err
	}
	n := len(raw) / 8
	if start < 0 || count < 0 || start+count > n {
		return nil, fmt.Errorf("ioshim: vara_get [%d,%d) out of variable range %d", start, start+count, n)
	}
	out := make([]float64, count)
	for i := 0; i < count; i++ {
		out[i] = decode(binary.LittleEndian.Uint64(raw[(start+i)*8:]))
	}
	return out, nil
}

// Close corresponds to nc_close: it releases the DV reference, allowing
// eviction.
func (f *NCFile) Close() error { return f.h.close() }

// --- HDF5-style binding ---------------------------------------------------

// H5File mirrors an HDF5 file handle (H5Fopen).
type H5File struct{ h *handle }

// H5Fopen corresponds to H5Fopen.
func H5Fopen(ctx *dvlib.Context, path string) (*H5File, error) {
	h, err := open(ctx, path)
	if err != nil {
		return nil, err
	}
	return &H5File{h: h}, nil
}

// H5Dread corresponds to H5Dread: the whole dataset as raw bytes,
// blocking until available.
func (f *H5File) H5Dread() ([]byte, error) { return f.h.readAll() }

// H5Fclose corresponds to H5Fclose.
func (f *H5File) H5Fclose() error { return f.h.close() }

// --- ADIOS-style binding --------------------------------------------------

// AdiosFile mirrors an ADIOS read-mode handle (adios_open "r").
type AdiosFile struct {
	h       *handle
	pending []adiosRead
}

type adiosRead struct {
	start, count int
	dst          []float64
}

// AdiosOpen corresponds to adios_open in read mode.
func AdiosOpen(ctx *dvlib.Context, path string) (*AdiosFile, error) {
	h, err := open(ctx, path)
	if err != nil {
		return nil, err
	}
	return &AdiosFile{h: h}, nil
}

// ScheduleRead corresponds to adios_schedule_read: it queues a selection
// to be filled into dst at PerformReads time (ADIOS's deferred-read
// model). dst must hold count values.
func (f *AdiosFile) ScheduleRead(start, count int, dst []float64) error {
	if len(dst) < count {
		return fmt.Errorf("ioshim: destination holds %d values, selection needs %d", len(dst), count)
	}
	f.pending = append(f.pending, adiosRead{start: start, count: count, dst: dst})
	return nil
}

// PerformReads corresponds to adios_perform_reads: it executes the queued
// selections, blocking until the file is available.
func (f *AdiosFile) PerformReads() error {
	raw, err := f.h.readAll()
	if err != nil {
		return err
	}
	n := len(raw) / 8
	for _, r := range f.pending {
		if r.start < 0 || r.start+r.count > n {
			return fmt.Errorf("ioshim: scheduled read [%d,%d) out of range %d", r.start, r.start+r.count, n)
		}
		for i := 0; i < r.count; i++ {
			r.dst[i] = decode(binary.LittleEndian.Uint64(raw[(r.start+i)*8:]))
		}
	}
	f.pending = nil
	return nil
}

// Close corresponds to adios_close.
func (f *AdiosFile) Close() error { return f.h.close() }

// decode maps 8 raw bytes of the deterministic content stream onto a
// finite field value uniform in [-1, 1). Reinterpreting arbitrary bytes as
// IEEE-754 directly would yield NaNs, infinities and magnitudes near
// 1e308 whose squares overflow — useless to the mean/variance analyses.
func decode(bits uint64) float64 {
	return float64(bits>>11)/(1<<52) - 1
}

// MeanVar computes mean and variance of a field — the analysis kernel the
// paper's evaluation runs over COSMO and FLASH output ("The analysis
// computes mean and variance of a 1-D field").
func MeanVar(xs []float64) (mean, variance float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, v := range xs {
		mean += v
	}
	mean /= float64(len(xs))
	for _, v := range xs {
		variance += (v - mean) * (v - mean)
	}
	variance /= float64(len(xs))
	return mean, variance
}
