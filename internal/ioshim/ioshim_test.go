package ioshim

import (
	"math"
	"testing"
	"time"

	"simfs/internal/dvlib"
	"simfs/internal/model"
	"simfs/internal/server"
)

// testContext dials a live daemon with one small context.
func testContext(t *testing.T) *dvlib.Context {
	t.Helper()
	mctx := &model.Context{
		Name:               "shim",
		Grid:               model.Grid{DeltaD: 1, DeltaR: 4, Timesteps: 32},
		OutputBytes:        256, // 32 float64 values
		RestartBytes:       64,
		Tau:                2 * time.Millisecond,
		Alpha:              4 * time.Millisecond,
		DefaultParallelism: 1,
		MaxParallelism:     1,
		SMax:               4,
	}
	st, err := server.NewStack(t.TempDir(), 1, "DCL", mctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go st.Server.Serve()
	t.Cleanup(func() {
		st.Close()
		st.Launcher.Wait()
	})
	c, err := dvlib.Dial(st.Server.Addr(), "shim-test")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	ctx, err := c.Init("shim")
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func TestNetCDFBinding(t *testing.T) {
	ctx := testContext(t)
	f, err := NCOpen(ctx, ctx.Filename(5))
	if err != nil {
		t.Fatal(err)
	}
	vals, err := f.VaraGetDouble(0, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 32 {
		t.Fatalf("got %d values", len(vals))
	}
	for i, v := range vals {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("value %d not sanitized: %v", i, v)
		}
	}
	// Out-of-range selections are rejected.
	if _, err := f.VaraGetDouble(30, 10); err == nil {
		t.Error("out-of-range vara_get accepted")
	}
	if _, err := f.VaraGetDouble(-1, 2); err == nil {
		t.Error("negative start accepted")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err == nil {
		t.Error("double close accepted")
	}
	if _, err := f.VaraGetDouble(0, 1); err == nil {
		t.Error("read after close accepted")
	}
}

func TestHDF5Binding(t *testing.T) {
	ctx := testContext(t)
	f, err := H5Fopen(ctx, ctx.Filename(9))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := f.H5Dread()
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 256 {
		t.Errorf("dataset size = %d, want 256", len(raw))
	}
	if err := f.H5Fclose(); err != nil {
		t.Fatal(err)
	}
}

func TestADIOSBinding(t *testing.T) {
	ctx := testContext(t)
	f, err := AdiosOpen(ctx, ctx.Filename(13))
	if err != nil {
		t.Fatal(err)
	}
	a := make([]float64, 8)
	b := make([]float64, 8)
	if err := f.ScheduleRead(0, 8, a); err != nil {
		t.Fatal(err)
	}
	if err := f.ScheduleRead(8, 8, b); err != nil {
		t.Fatal(err)
	}
	if err := f.ScheduleRead(0, 9, make([]float64, 4)); err == nil {
		t.Error("short destination accepted")
	}
	if err := f.PerformReads(); err != nil {
		t.Fatal(err)
	}
	// Deferred reads must match a direct netCDF read of the same file.
	nc, err := NCOpen(ctx, ctx.Filename(13))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := nc.VaraGetDouble(0, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if a[i] != direct[i] || b[i] != direct[8+i] {
			t.Fatalf("ADIOS selection diverges from direct read at %d", i)
		}
	}
	nc.Close()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestADIOSOutOfRangeSelection(t *testing.T) {
	ctx := testContext(t)
	f, err := AdiosOpen(ctx, ctx.Filename(2))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	dst := make([]float64, 100)
	if err := f.ScheduleRead(0, 100, dst); err != nil {
		t.Fatal(err)
	}
	if err := f.PerformReads(); err == nil {
		t.Error("selection past the dataset end accepted at perform time")
	}
}

func TestMeanVar(t *testing.T) {
	mean, variance := MeanVar([]float64{1, 2, 3, 4})
	if mean != 2.5 {
		t.Errorf("mean = %v", mean)
	}
	if variance != 1.25 {
		t.Errorf("variance = %v", variance)
	}
	if m, v := MeanVar(nil); m != 0 || v != 0 {
		t.Error("empty field should give zeros")
	}
}

func TestDecode(t *testing.T) {
	// decode maps any bit pattern into [-1, 1).
	for _, bits := range []uint64{0, 1, 1 << 63, ^uint64(0), 0xdeadbeefcafebabe} {
		v := decode(bits)
		if math.IsNaN(v) || v < -1 || v >= 1.0000001 {
			t.Errorf("decode(%x) = %v out of range", bits, v)
		}
	}
	if decode(0) != -1 {
		t.Errorf("decode(0) = %v, want -1", decode(0))
	}
	// Distinct inputs generally map to distinct values.
	if decode(1<<20) == decode(1<<40) {
		t.Error("decode lost too much entropy")
	}
}
