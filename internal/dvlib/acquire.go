package dvlib

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"simfs/internal/netproto"
)

// Status mirrors SIMFS_Status: the error state of the request and the
// estimated waiting time for the requested files (paper Sec. III-C2).
type Status struct {
	Ready   bool
	Err     string
	EstWait time.Duration
}

// Req is the request handle returned by the non-blocking acquire
// (SIMFS_Req): Wait/Test/Waitsome/Testsome operate on it.
type Req struct {
	ctx   *Context
	files []string
	// id is the wire subscription ID, used by Cancel to unsubscribe.
	id uint64

	mu      sync.Mutex
	ready   map[string]bool
	readyCh chan string // buffered stream of newly ready files
	done    bool
	err     string
	doneCh  chan struct{}
	// consumed tracks indices already reported by Waitsome/Testsome.
	consumed map[int]bool
}

// Acquire implements SIMFS_Acquire: it references all files, triggers
// re-simulations for the missing ones and blocks until every file is
// available. The returned Status carries the error state if a
// re-simulation failed.
func (ctx *Context) Acquire(files ...string) (Status, error) {
	req, err := ctx.AcquireNB(files...)
	if err != nil {
		return Status{}, err
	}
	return req.Wait()
}

// AcquireCtx is Acquire honoring a context deadline: when cx expires
// before every file is available, the acquire is canceled — its
// references are released and its subscription dropped, so the daemon
// may dismantle re-simulations nobody else waits for — and cx's error is
// returned alongside the partial status.
func (ctx *Context) AcquireCtx(cx context.Context, files ...string) (Status, error) {
	req, err := ctx.AcquireNB(files...)
	if err != nil {
		return Status{}, err
	}
	st, err := req.WaitCtx(cx)
	if err != nil {
		_ = req.Cancel()
		return st, err
	}
	return st, nil
}

// AcquireNB implements SIMFS_Acquire_nb: like Acquire but it returns
// immediately with a request handle to wait or test on.
func (ctx *Context) AcquireNB(files ...string) (*Req, error) {
	if len(files) == 0 {
		return nil, errors.New("dvlib: acquire of zero files")
	}
	r := &Req{
		ctx:      ctx,
		files:    append([]string(nil), files...),
		ready:    map[string]bool{},
		readyCh:  make(chan string, len(files)+1),
		doneCh:   make(chan struct{}),
		consumed: map[int]bool{},
	}
	id, err := ctx.c.subscribe(netproto.OpAcquire,
		netproto.FilesBody{Context: ctx.name, Files: r.files},
		func(resp netproto.Response) {
			r.mu.Lock()
			if resp.File != "" && resp.Ready && !r.ready[resp.File] {
				r.ready[resp.File] = true
				select {
				case r.readyCh <- resp.File:
				default:
				}
			}
			if resp.Err != "" {
				r.err = resp.Err
			}
			completed := false
			if resp.Done && !r.done {
				r.done = true
				completed = r.err == ""
				close(r.doneCh)
			}
			r.mu.Unlock()
			if completed {
				// The acquire holds one reference per file until they are
				// released; record them so a reconnect restores them.
				for _, f := range r.files {
					r.ctx.c.trackHeld(r.ctx.name, f, +1)
				}
			}
		})
	if err != nil {
		return nil, err
	}
	r.id = id
	return r, nil
}

// Wait implements SIMFS_Wait: it blocks until the acquire completes and
// returns its status. An acquire interrupted by a connection reset fails
// with ErrReconnecting: its references were released by the daemon's
// disconnect cleanup, so the caller must re-acquire rather than assume
// the files are pinned.
func (r *Req) Wait() (Status, error) {
	<-r.doneCh
	st := r.status()
	if st.Err == ErrReconnecting.Error() {
		return st, fmt.Errorf("dvlib: %s: %w", netproto.OpAcquire, ErrReconnecting)
	}
	return st, nil
}

// WaitCtx is Wait honoring a context deadline: it returns the context's
// error (and the partial status so far) when cx expires first. The
// acquire itself keeps running; call Cancel to abandon it.
func (r *Req) WaitCtx(cx context.Context) (Status, error) {
	select {
	case <-r.doneCh:
		return r.status(), nil
	case <-cx.Done():
		return r.status(), cx.Err()
	}
}

// Cancel abandons the acquire: the daemon-side subscription is dropped
// and every file reference the acquire took is released, so the DV may
// evict the files again — and dismantle re-simulations nobody else is
// waiting for, through its client-cancellation path. Canceling a
// completed acquire just releases the references. The wire side is
// fire-and-forget: Cancel runs on the deadline path, where waiting for
// an unresponsive daemon's acknowledgements would defeat the deadline
// it serves — only frame-write failures are reported.
func (r *Req) Cancel() error {
	r.mu.Lock()
	// References are ledgered only once the acquire completes cleanly; a
	// canceled in-flight acquire releases server-side references the
	// ledger never counted.
	counted := r.done && r.err == ""
	r.mu.Unlock()
	r.ctx.c.cancelSub(r.id, "canceled")
	err := r.ctx.c.post(netproto.OpUnsubscribe, netproto.UnsubscribeBody{SubID: r.id})
	for _, f := range r.files {
		if perr := r.ctx.c.post(netproto.OpRelease, netproto.FileBody{Context: r.ctx.name, File: f}); err == nil {
			err = perr
		}
		if counted {
			r.ctx.c.trackHeld(r.ctx.name, f, -1)
		}
	}
	return err
}

// Test implements SIMFS_Test: flag is true when the acquire has completed.
func (r *Req) Test() (flag bool, st Status, err error) {
	select {
	case <-r.doneCh:
		return true, r.status(), nil
	default:
		return false, r.status(), nil
	}
}

// Waitsome implements SIMFS_Waitsome: it blocks until at least one
// not-yet-reported file is available and returns the indices (into the
// acquire's file list) of all newly available files.
func (r *Req) Waitsome() (readyIdx []int, st Status, err error) {
	// Fast path: anything new already marked ready?
	if idx := r.takeNewReady(); len(idx) > 0 {
		return idx, r.status(), nil
	}
	if r.allConsumed() {
		return nil, r.status(), nil
	}
	select {
	case <-r.readyCh:
	case <-r.doneCh:
	}
	return r.takeNewReady(), r.status(), nil
}

// Testsome implements SIMFS_Testsome: like Waitsome but non-blocking.
func (r *Req) Testsome() (readyIdx []int, st Status, err error) {
	return r.takeNewReady(), r.status(), nil
}

// Files returns the acquire's file list (indices match Waitsome output).
func (r *Req) Files() []string { return append([]string(nil), r.files...) }

func (r *Req) takeNewReady() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	var idx []int
	for i, f := range r.files {
		if r.ready[f] && !r.consumed[i] {
			r.consumed[i] = true
			idx = append(idx, i)
		}
	}
	return idx
}

func (r *Req) allConsumed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.files {
		if !r.consumed[i] {
			return false
		}
	}
	return true
}

func (r *Req) status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Status{Ready: r.done && r.err == "", Err: r.err}
}
