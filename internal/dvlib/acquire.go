package dvlib

import (
	"errors"
	"sync"
	"time"

	"simfs/internal/netproto"
)

// Status mirrors SIMFS_Status: the error state of the request and the
// estimated waiting time for the requested files (paper Sec. III-C2).
type Status struct {
	Ready   bool
	Err     string
	EstWait time.Duration
}

// Req is the request handle returned by the non-blocking acquire
// (SIMFS_Req): Wait/Test/Waitsome/Testsome operate on it.
type Req struct {
	ctx   *Context
	files []string

	mu      sync.Mutex
	ready   map[string]bool
	readyCh chan string // buffered stream of newly ready files
	done    bool
	err     string
	doneCh  chan struct{}
	// consumed tracks indices already reported by Waitsome/Testsome.
	consumed map[int]bool
}

// Acquire implements SIMFS_Acquire: it references all files, triggers
// re-simulations for the missing ones and blocks until every file is
// available. The returned Status carries the error state if a
// re-simulation failed.
func (ctx *Context) Acquire(files ...string) (Status, error) {
	req, err := ctx.AcquireNB(files...)
	if err != nil {
		return Status{}, err
	}
	return req.Wait()
}

// AcquireNB implements SIMFS_Acquire_nb: like Acquire but it returns
// immediately with a request handle to wait or test on.
func (ctx *Context) AcquireNB(files ...string) (*Req, error) {
	if len(files) == 0 {
		return nil, errors.New("dvlib: acquire of zero files")
	}
	r := &Req{
		ctx:      ctx,
		files:    append([]string(nil), files...),
		ready:    map[string]bool{},
		readyCh:  make(chan string, len(files)+1),
		doneCh:   make(chan struct{}),
		consumed: map[int]bool{},
	}
	_, err := ctx.c.subscribe(
		netproto.Request{Op: netproto.OpAcquire, Context: ctx.name, Files: r.files},
		func(resp netproto.Response) {
			r.mu.Lock()
			if resp.File != "" && resp.Ready && !r.ready[resp.File] {
				r.ready[resp.File] = true
				select {
				case r.readyCh <- resp.File:
				default:
				}
			}
			if resp.Err != "" {
				r.err = resp.Err
			}
			if resp.Done && !r.done {
				r.done = true
				close(r.doneCh)
			}
			r.mu.Unlock()
		})
	if err != nil {
		return nil, err
	}
	return r, nil
}

// Wait implements SIMFS_Wait: it blocks until the acquire completes and
// returns its status.
func (r *Req) Wait() (Status, error) {
	<-r.doneCh
	return r.status(), nil
}

// Test implements SIMFS_Test: flag is true when the acquire has completed.
func (r *Req) Test() (flag bool, st Status, err error) {
	select {
	case <-r.doneCh:
		return true, r.status(), nil
	default:
		return false, r.status(), nil
	}
}

// Waitsome implements SIMFS_Waitsome: it blocks until at least one
// not-yet-reported file is available and returns the indices (into the
// acquire's file list) of all newly available files.
func (r *Req) Waitsome() (readyIdx []int, st Status, err error) {
	// Fast path: anything new already marked ready?
	if idx := r.takeNewReady(); len(idx) > 0 {
		return idx, r.status(), nil
	}
	if r.allConsumed() {
		return nil, r.status(), nil
	}
	select {
	case <-r.readyCh:
	case <-r.doneCh:
	}
	return r.takeNewReady(), r.status(), nil
}

// Testsome implements SIMFS_Testsome: like Waitsome but non-blocking.
func (r *Req) Testsome() (readyIdx []int, st Status, err error) {
	return r.takeNewReady(), r.status(), nil
}

// Files returns the acquire's file list (indices match Waitsome output).
func (r *Req) Files() []string { return append([]string(nil), r.files...) }

func (r *Req) takeNewReady() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	var idx []int
	for i, f := range r.files {
		if r.ready[f] && !r.consumed[i] {
			r.consumed[i] = true
			idx = append(idx, i)
		}
	}
	return idx
}

func (r *Req) allConsumed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.files {
		if !r.consumed[i] {
			return false
		}
	}
	return true
}

func (r *Req) status() Status {
	r.mu.Lock()
	defer r.mu.Unlock()
	return Status{Ready: r.done && r.err == "", Err: r.err}
}
