package dvlib

import (
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"simfs/internal/netproto"
)

// fakeReq is the scripted daemon's flattened view of a request envelope:
// the body fields every data-plane op uses, decoded leniently.
type fakeReq struct {
	ID      uint64
	Op      string
	Context string
	Files   []string
}

// fakeDV is a scripted daemon: handler receives each request and a send
// function for responses (possibly several per request). The protocol
// handshake and pings are answered automatically.
func fakeDV(t *testing.T, handler func(req fakeReq, send func(netproto.Response))) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				var wmu sync.Mutex
				send := func(resp netproto.Response) {
					wmu.Lock()
					defer wmu.Unlock()
					netproto.JSON.EncodeFrame(conn, resp)
				}
				for {
					var env netproto.Envelope
					if err := netproto.JSON.DecodeFrame(conn, &env); err != nil {
						return
					}
					switch env.Op {
					case netproto.OpHello:
						send(netproto.Response{ID: env.ID, OK: true,
							Proto: &netproto.HelloInfo{Version: netproto.ProtoVersion}})
						continue
					case netproto.OpPing:
						send(netproto.Response{ID: env.ID, OK: true})
						continue
					}
					req := fakeReq{ID: env.ID, Op: env.Op}
					var b struct {
						Context string   `json:"context"`
						File    string   `json:"file"`
						Files   []string `json:"files"`
					}
					if len(env.Body) > 0 {
						json.Unmarshal(env.Body, &b)
					}
					req.Context = b.Context
					req.Files = b.Files
					if b.File != "" {
						req.Files = append(req.Files, b.File)
					}
					handler(req, send)
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

func TestDialHandshake(t *testing.T) {
	addr := fakeDV(t, func(req fakeReq, send func(netproto.Response)) {})
	c, err := Dial(addr, "unit")
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	// Dialing a dead address fails.
	if _, err := Dial("127.0.0.1:1", "unit"); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

func TestCallErrorPropagation(t *testing.T) {
	addr := fakeDV(t, func(req fakeReq, send func(netproto.Response)) {
		send(netproto.Response{ID: req.ID, Err: "synthetic failure"})
	})
	c, err := Dial(addr, "unit")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Contexts(); err == nil || !strings.Contains(err.Error(), "synthetic failure") {
		t.Errorf("error not propagated: %v", err)
	}
}

func TestCallAfterClose(t *testing.T) {
	addr := fakeDV(t, func(req fakeReq, send func(netproto.Response)) {})
	c, err := Dial(addr, "unit")
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if _, err := c.Contexts(); err == nil {
		t.Error("call after Close succeeded")
	}
}

func TestConnectionLossFailsPendingCalls(t *testing.T) {
	stop := make(chan struct{})
	addr := fakeDV(t, func(req fakeReq, send func(netproto.Response)) {
		// Swallow the request and never answer; the test kills the
		// connection from the client side instead.
		close(stop)
	})
	c, err := Dial(addr, "unit")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Contexts()
		done <- err
	}()
	<-stop
	c.conn.Close() // simulate a dropped connection
	select {
	case err := <-done:
		if err == nil {
			t.Error("pending call survived a dropped connection")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending call hung after connection loss")
	}
}

func TestClientDemuxInterleaved(t *testing.T) {
	// The daemon answers requests out of order; the demux must route each
	// response to its caller by ID.
	var mu sync.Mutex
	var stash []fakeReq
	addr := fakeDV(t, func(req fakeReq, send func(netproto.Response)) {
		mu.Lock()
		stash = append(stash, req)
		two := len(stash) == 2
		var a, b fakeReq
		if two {
			a, b = stash[0], stash[1]
			stash = nil
		}
		mu.Unlock()
		if two {
			// Answer in reverse arrival order.
			send(netproto.Response{ID: b.ID, OK: true, Names: []string{"second"}})
			send(netproto.Response{ID: a.ID, OK: true, Names: []string{"first"}})
		}
	})
	c, err := Dial(addr, "unit")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	results := make([]string, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			names, err := c.Contexts()
			if err != nil || len(names) != 1 {
				t.Errorf("call %d: %v %v", i, names, err)
				return
			}
			results[i] = names[0]
		}(i)
		time.Sleep(20 * time.Millisecond) // enforce arrival order
	}
	wg.Wait()
	if results[0] != "first" || results[1] != "second" {
		t.Errorf("demux misrouted: %v", results)
	}
}

func TestAcquireSubscriptionStreaming(t *testing.T) {
	addr := fakeDV(t, func(req fakeReq, send func(netproto.Response)) {
		switch req.Op {
		case netproto.OpContextInfo:
			send(netproto.Response{ID: req.ID, OK: true, Info: &netproto.ContextInfo{
				Name: req.Context, FilePrefix: "x_", FileSuffix: ".nc",
			}})
		case netproto.OpAcquire:
			// Stream per-file readiness then the final frame, with delays.
			go func() {
				for _, f := range req.Files {
					time.Sleep(5 * time.Millisecond)
					send(netproto.Response{ID: req.ID, OK: true, Ready: true, File: f})
				}
				send(netproto.Response{ID: req.ID, OK: true, Done: true})
			}()
		}
	})
	c, err := Dial(addr, "unit")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, err := c.Init("any")
	if err != nil {
		t.Fatal(err)
	}
	req, err := ctx.AcquireNB("x_00000001.nc", "x_00000002.nc", "x_00000003.nc")
	if err != nil {
		t.Fatal(err)
	}
	// Waitsome must surface files incrementally, each exactly once.
	seen := map[int]int{}
	for len(seen) < 3 {
		idx, st, err := req.Waitsome()
		if err != nil || st.Err != "" {
			t.Fatalf("waitsome: %v %v", err, st)
		}
		for _, i := range idx {
			seen[i]++
		}
	}
	for i, n := range seen {
		if n != 1 {
			t.Errorf("file %d reported %d times", i, n)
		}
	}
	st, err := req.Wait()
	if err != nil || !st.Ready {
		t.Fatalf("wait: %v %v", st, err)
	}
	// After completion Testsome returns nothing new.
	if idx, _, _ := req.Testsome(); len(idx) != 0 {
		t.Errorf("testsome after drain returned %v", idx)
	}
	if files := req.Files(); len(files) != 3 {
		t.Errorf("Files() = %v", files)
	}
}

func TestAcquireFailureStatus(t *testing.T) {
	addr := fakeDV(t, func(req fakeReq, send func(netproto.Response)) {
		switch req.Op {
		case netproto.OpContextInfo:
			send(netproto.Response{ID: req.ID, OK: true, Info: &netproto.ContextInfo{Name: req.Context}})
		case netproto.OpAcquire:
			send(netproto.Response{ID: req.ID, Err: "restart failed", Done: true, File: req.Files[0]})
		}
	})
	c, _ := Dial(addr, "unit")
	defer c.Close()
	ctx, _ := c.Init("any")
	st, err := ctx.Acquire("f1")
	if err != nil {
		t.Fatal(err)
	}
	if st.Ready || st.Err != "restart failed" {
		t.Errorf("status = %+v, want the error state", st)
	}
	if _, err := ctx.AcquireNB(); err == nil {
		t.Error("empty acquire accepted")
	}
}

func TestSubscriptionSurvivesConnectionLossWithError(t *testing.T) {
	accepted := make(chan struct{})
	addr := fakeDV(t, func(req fakeReq, send func(netproto.Response)) {
		switch req.Op {
		case netproto.OpContextInfo:
			send(netproto.Response{ID: req.ID, OK: true, Info: &netproto.ContextInfo{Name: req.Context}})
		case netproto.OpAcquire:
			close(accepted) // never answer
		}
	})
	c, _ := Dial(addr, "unit")
	ctx, _ := c.Init("any")
	req, err := ctx.AcquireNB("f1")
	if err != nil {
		t.Fatal(err)
	}
	<-accepted
	c.conn.Close()
	st, err := req.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if st.Ready || st.Err == "" {
		t.Errorf("status after connection loss = %+v, want error", st)
	}
}

func TestJSONFallbackAgainstCaplessDaemon(t *testing.T) {
	// fakeDV advertises no capabilities, so even a binary-willing client
	// must stay on the JSON codec.
	addr := fakeDV(t, func(req fakeReq, send func(netproto.Response)) {})
	c, err := Dial(addr, "unit")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.UsesBinary() {
		t.Error("client negotiated binary against a daemon that never offered it")
	}
	if c.CodecName() != "json" {
		t.Errorf("CodecName = %q, want json", c.CodecName())
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncCallsBatchUntilWait(t *testing.T) {
	var mu sync.Mutex
	var got []string
	addr := fakeDV(t, func(req fakeReq, send func(netproto.Response)) {
		mu.Lock()
		got = append(got, req.Op)
		mu.Unlock()
		send(netproto.Response{ID: req.ID, OK: true, Available: true})
	})
	c, err := Dial(addr, "unit")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := &Context{c: c, name: "any"}

	// Queue a window of opens and releases: nothing goes on the wire yet.
	var opens []*OpenCall
	var rels []*ReleaseCall
	for i := 0; i < 4; i++ {
		oc, err := ctx.OpenAsync(fmt.Sprintf("f%d", i))
		if err != nil {
			t.Fatal(err)
		}
		opens = append(opens, oc)
		rc, err := ctx.ReleaseAsync(fmt.Sprintf("f%d", i))
		if err != nil {
			t.Fatal(err)
		}
		rels = append(rels, rc)
	}
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	seen := len(got)
	mu.Unlock()
	if seen != 0 {
		t.Fatalf("%d frames reached the daemon before any Wait/Flush", seen)
	}

	// The first Wait flushes the whole batch; every handle resolves.
	for i, oc := range opens {
		res, err := oc.Wait()
		if err != nil || !res.Available {
			t.Fatalf("open %d: %+v %v", i, res, err)
		}
	}
	for i, rc := range rels {
		if err := rc.Wait(); err != nil {
			t.Fatalf("release %d: %v", i, err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 8 {
		t.Fatalf("daemon saw %d requests, want 8", len(got))
	}
	// The daemon must have seen the frames in issue order (pipelining
	// preserves per-connection ordering).
	for i, op := range got {
		want := netproto.OpOpen
		if i%2 == 1 {
			want = netproto.OpRelease
		}
		if op != want {
			t.Fatalf("request %d = %s, want %s (order: %v)", i, op, want, got)
		}
	}
}

func TestExplicitFlushSendsQueuedFrames(t *testing.T) {
	delivered := make(chan string, 1)
	addr := fakeDV(t, func(req fakeReq, send func(netproto.Response)) {
		delivered <- req.Op
		send(netproto.Response{ID: req.ID, OK: true})
	})
	c, err := Dial(addr, "unit")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := &Context{c: c, name: "any"}
	oc, err := ctx.OpenAsync("f1")
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	select {
	case op := <-delivered:
		if op != netproto.OpOpen {
			t.Fatalf("daemon saw %s, want %s", op, netproto.OpOpen)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("explicit Flush did not deliver the queued frame")
	}
	if _, err := oc.Wait(); err != nil {
		t.Fatal(err)
	}
}

func TestFilenameFollowsContextInfo(t *testing.T) {
	addr := fakeDV(t, func(req fakeReq, send func(netproto.Response)) {
		send(netproto.Response{ID: req.ID, OK: true, Info: &netproto.ContextInfo{
			Name: req.Context, FilePrefix: "cosmo_out_", FileSuffix: ".h5",
		}})
	})
	c, _ := Dial(addr, "unit")
	defer c.Close()
	ctx, _ := c.Init("cosmo")
	if got := ctx.Filename(42); got != "cosmo_out_00000042.h5" {
		t.Errorf("Filename = %q", got)
	}
	if ctx.Name() != "cosmo" {
		t.Errorf("Name = %q", ctx.Name())
	}
	if ctx.Info().FilePrefix != "cosmo_out_" {
		t.Errorf("Info = %+v", ctx.Info())
	}
}
