package dvlib

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"simfs/internal/netproto"
)

// fastReconnect keeps test reconnects snappy and deterministic.
var fastReconnect = ReconnectConfig{
	BaseBackoff: 5 * time.Millisecond,
	MaxBackoff:  50 * time.Millisecond,
	MaxElapsed:  5 * time.Second,
	Seed:        1,
}

// scriptedDV is fakeDV with restarts: the listener outlives individual
// connections, the handler learns which connection (1-based ordinal) a
// request arrived on, and may kill the connection mid-script. onConn, if
// set, runs at every accept.
func scriptedDV(t *testing.T, onConn func(connNo int, kill func()),
	handler func(connNo int, req fakeReq, send func(netproto.Response), kill func())) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var connNo int32
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			no := int(atomic.AddInt32(&connNo, 1))
			go func(conn net.Conn, no int) {
				defer conn.Close()
				var wmu sync.Mutex
				send := func(resp netproto.Response) {
					wmu.Lock()
					defer wmu.Unlock()
					netproto.JSON.EncodeFrame(conn, resp)
				}
				kill := func() { conn.Close() }
				if onConn != nil {
					onConn(no, kill)
				}
				for {
					var env netproto.Envelope
					if err := netproto.JSON.DecodeFrame(conn, &env); err != nil {
						return
					}
					if env.Op == netproto.OpHello {
						send(netproto.Response{ID: env.ID, OK: true,
							Proto: &netproto.HelloInfo{Version: netproto.ProtoVersion}})
						continue
					}
					req := decodeFakeReq(env)
					handler(no, req, send, kill)
				}
			}(conn, no)
		}
	}()
	return ln.Addr().String()
}

func decodeFakeReq(env netproto.Envelope) fakeReq {
	req := fakeReq{ID: env.ID, Op: env.Op}
	var b netproto.FilesBody
	if env.Decode(&b) == nil {
		req.Context = b.Context
		req.Files = b.Files
	}
	var fb netproto.FileBody
	if env.Decode(&fb) == nil && fb.File != "" {
		req.Context = fb.Context
		req.Files = append(req.Files, fb.File)
	}
	return req
}

// fakeInit answers OpContextInfo so Context handles work against the
// scripted daemon.
func fakeInfo(id uint64) netproto.Response {
	return netproto.Response{ID: id, OK: true, Info: &netproto.ContextInfo{
		Name: "c", FilePrefix: "c_out_", FileSuffix: ".nc",
		DeltaD: 1, DeltaR: 4, Timesteps: 100,
	}}
}

// An idempotent call whose connection dies before the answer is replayed
// transparently: the caller never sees the reset.
func TestReconnectReplaysIdempotentCall(t *testing.T) {
	addr := scriptedDV(t, nil, func(connNo int, req fakeReq, send func(netproto.Response), kill func()) {
		switch req.Op {
		case netproto.OpContextInfo:
			send(fakeInfo(req.ID))
		case netproto.OpOpen:
			if connNo == 1 {
				kill() // the request is in flight when the connection dies
				return
			}
			send(netproto.Response{ID: req.ID, OK: true, Available: true})
		}
	})
	c, err := Dial(addr, "unit", WithReconnect(fastReconnect))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, err := c.Init("c")
	if err != nil {
		t.Fatal(err)
	}
	res, err := ctx.Open(ctx.Filename(3))
	if err != nil {
		t.Fatalf("open across a reset = %v, want transparent replay", err)
	}
	if !res.Available {
		t.Errorf("replayed open = %+v", res)
	}
}

// A non-idempotent call (release) in flight at the reset fails with the
// typed ErrReconnecting instead of being replayed: the client cannot
// know whether the daemon processed it.
func TestReconnectFailsNonIdempotentTyped(t *testing.T) {
	addr := scriptedDV(t, nil, func(connNo int, req fakeReq, send func(netproto.Response), kill func()) {
		switch req.Op {
		case netproto.OpContextInfo:
			send(fakeInfo(req.ID))
		case netproto.OpOpen:
			send(netproto.Response{ID: req.ID, OK: true, Available: true})
		case netproto.OpRelease:
			if connNo == 1 {
				kill()
				return
			}
			send(netproto.Response{ID: req.ID, OK: true})
		}
	})
	c, err := Dial(addr, "unit", WithReconnect(fastReconnect))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, err := c.Init("c")
	if err != nil {
		t.Fatal(err)
	}
	file := ctx.Filename(3)
	if _, err := ctx.Open(file); err != nil {
		t.Fatal(err)
	}
	err = ctx.Release(file)
	if !errors.Is(err, ErrReconnecting) {
		t.Fatalf("in-flight release across a reset = %v, want ErrReconnecting", err)
	}
	// The ledger still holds the reference (the release never confirmed),
	// so the retry goes back on the wire and succeeds on the new
	// connection.
	if err := ctx.Release(file); err != nil {
		t.Fatalf("retried release = %v", err)
	}
}

// The reference ledger is replayed after a reconnect: every held file is
// re-opened on the new connection, rebuilding the daemon-side reference
// state the disconnect cleanup released.
func TestReconnectRestoresHeldReferences(t *testing.T) {
	var mu sync.Mutex
	reopened := map[string]int{}
	addr := scriptedDV(t, nil, func(connNo int, req fakeReq, send func(netproto.Response), kill func()) {
		switch req.Op {
		case netproto.OpContextInfo:
			send(fakeInfo(req.ID))
		case netproto.OpOpen:
			if connNo > 1 {
				mu.Lock()
				reopened[req.Files[0]]++
				mu.Unlock()
			}
			send(netproto.Response{ID: req.ID, OK: true, Available: true})
		case netproto.OpStats:
			if connNo == 1 {
				kill()
				return
			}
			send(netproto.Response{ID: req.ID, OK: true, Stats: &netproto.Stats{}})
		}
	})
	c, err := Dial(addr, "unit", WithReconnect(fastReconnect))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, err := c.Init("c")
	if err != nil {
		t.Fatal(err)
	}
	f1, f2 := ctx.Filename(1), ctx.Filename(2)
	if _, err := ctx.Open(f1); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Open(f2); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Open(f2); err != nil { // two references on f2
		t.Fatal(err)
	}
	if _, err := ctx.Stats(); err != nil { // idempotent: rides through the reset
		t.Fatalf("stats across reset = %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if reopened[f1] != 1 || reopened[f2] != 2 {
		t.Errorf("ledger replay re-opened %v, want {%s:1, %s:2}", reopened, f1, f2)
	}
}

// Watches survive the reset: the unresolved files are re-subscribed on
// the new connection and files reported before the reset are not
// reported twice.
func TestReconnectResubscribesWatch(t *testing.T) {
	var resub atomic.Int32
	addr := scriptedDV(t, nil, func(connNo int, req fakeReq, send func(netproto.Response), kill func()) {
		switch req.Op {
		case netproto.OpContextInfo:
			send(fakeInfo(req.ID))
		case netproto.OpSubscribe:
			if connNo == 1 {
				// Resolve the first file, then die before the second.
				send(netproto.Response{ID: req.ID, OK: true, Ready: true, File: req.Files[0]})
				time.Sleep(10 * time.Millisecond) // let the frame land first
				kill()
				return
			}
			resub.Store(int32(len(req.Files)))
			for _, f := range req.Files {
				send(netproto.Response{ID: req.ID, OK: true, Ready: true, File: f})
			}
			send(netproto.Response{ID: req.ID, OK: true, Done: true})
		}
	})
	c, err := Dial(addr, "unit", WithReconnect(fastReconnect))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, err := c.Init("c")
	if err != nil {
		t.Fatal(err)
	}
	f1, f2 := ctx.Filename(1), ctx.Filename(2)
	w, err := ctx.Watch(f1, f2)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	done := false
	for ev := range w.Events() {
		if ev.Err != "" {
			t.Fatalf("watch error across reset: %s", ev.Err)
		}
		if ev.File != "" {
			got[ev.File]++
		}
		if ev.Done {
			done = true
		}
	}
	if !done || got[f1] != 1 || got[f2] != 1 {
		t.Errorf("watch events = %v (done=%v), want each file exactly once", got, done)
	}
	if n := resub.Load(); n != 1 {
		t.Errorf("re-subscription carried %d files, want only the unresolved one", n)
	}
}

// An acquire in flight at the reset fails typed: its references are gone
// with the old session, so pretending it still holds them would lie.
func TestReconnectFailsInflightAcquire(t *testing.T) {
	addr := scriptedDV(t, nil, func(connNo int, req fakeReq, send func(netproto.Response), kill func()) {
		switch req.Op {
		case netproto.OpContextInfo:
			send(fakeInfo(req.ID))
		case netproto.OpAcquire:
			if connNo == 1 {
				kill()
				return
			}
			for _, f := range req.Files {
				send(netproto.Response{ID: req.ID, OK: true, Ready: true, File: f})
			}
			send(netproto.Response{ID: req.ID, OK: true, Done: true})
		}
	})
	c, err := Dial(addr, "unit", WithReconnect(fastReconnect))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, err := c.Init("c")
	if err != nil {
		t.Fatal(err)
	}
	st, err := ctx.Acquire(ctx.Filename(1))
	if !errors.Is(err, ErrReconnecting) {
		t.Fatalf("in-flight acquire across reset = %v (st=%+v), want ErrReconnecting", err, st)
	}
	// The retry lands on the fresh connection.
	st, err = ctx.Acquire(ctx.Filename(1))
	if err != nil || !st.Ready {
		t.Fatalf("retried acquire = %+v, %v", st, err)
	}
}

// The double-release guard: once the ledger says a file is no longer
// held, a second release is refused client-side with ErrNotHeld —
// after a reconnect the daemon's state is rebuilt from the ledger, so a
// stray release would silently corrupt it.
func TestDoubleReleaseRefused(t *testing.T) {
	addr := scriptedDV(t, nil, func(connNo int, req fakeReq, send func(netproto.Response), kill func()) {
		switch req.Op {
		case netproto.OpContextInfo:
			send(fakeInfo(req.ID))
		default:
			send(netproto.Response{ID: req.ID, OK: true, Available: true})
		}
	})
	c, err := Dial(addr, "unit", WithReconnect(fastReconnect))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, err := c.Init("c")
	if err != nil {
		t.Fatal(err)
	}
	file := ctx.Filename(3)
	if err := ctx.Release(file); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("release without open = %v, want ErrNotHeld", err)
	}
	if _, err := ctx.Open(file); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Release(file); err != nil {
		t.Fatal(err)
	}
	if err := ctx.Release(file); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("double release = %v, want ErrNotHeld", err)
	}
}

// A batch of pipelined opens queued (but not yet flushed) when the
// connection dies is replayed wholesale: every Wait succeeds against the
// new connection.
func TestReconnectReplaysBatchedWriteBuffer(t *testing.T) {
	killed := make(chan struct{})
	addr := scriptedDV(t, func(connNo int, kill func()) {
		if connNo == 1 {
			go func() {
				time.Sleep(20 * time.Millisecond)
				kill()
				close(killed)
			}()
		}
	}, func(connNo int, req fakeReq, send func(netproto.Response), kill func()) {
		switch req.Op {
		case netproto.OpContextInfo:
			send(fakeInfo(req.ID))
		case netproto.OpOpen:
			send(netproto.Response{ID: req.ID, OK: true, Available: connNo > 1})
		}
	})
	c, err := Dial(addr, "unit", WithReconnect(fastReconnect))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, err := c.Init("c")
	if err != nil {
		t.Fatal(err)
	}
	<-killed // the connection is already dead when the batch is queued
	var calls []*OpenCall
	for step := 1; step <= 3; step++ {
		oc, err := ctx.OpenAsync(ctx.Filename(step))
		if err != nil {
			t.Fatal(err)
		}
		calls = append(calls, oc)
	}
	for i, oc := range calls {
		res, err := oc.Wait()
		if err != nil {
			t.Fatalf("batched open %d across restart = %v", i, err)
		}
		if !res.Available {
			t.Errorf("batched open %d answered by the dead connection?", i)
		}
	}
}

// When the backoff budget runs out the client dies for good: pending
// calls fail and later calls report the terminal error.
func TestReconnectGivesUp(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		var env netproto.Envelope
		netproto.JSON.DecodeFrame(conn, &env)
		netproto.JSON.EncodeFrame(conn, netproto.Response{ID: env.ID, OK: true,
			Proto: &netproto.HelloInfo{Version: netproto.ProtoVersion}})
		accepted <- conn
	}()
	cfg := fastReconnect
	cfg.MaxElapsed = 50 * time.Millisecond
	c, err := Dial(addr, "unit", WithReconnect(cfg))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Kill the daemon for good: close the live connection and the
	// listener so every redial is refused.
	(<-accepted).Close()
	ln.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := c.Ping(); err != nil && !errors.Is(err, ErrReconnecting) {
			return // terminal: the client gave up
		}
		if time.Now().After(deadline) {
			t.Fatal("client never gave up reconnecting")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
