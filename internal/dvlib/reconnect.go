package dvlib

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"time"

	"simfs/internal/netproto"
)

// isIdempotent classifies wire ops for replay after a reconnect. The
// replayable set is the hot data-plane ops plus the read-only queries:
// re-issuing them converges to the same daemon state. Everything else —
// release (drops a reference), acquire (takes references and opens a
// subscription), unsubscribe, checksum registration and the admin
// control plane — may have taken effect before the connection died, so
// replaying could apply it twice; those fail with ErrReconnecting.
func isIdempotent(op string) bool {
	switch op {
	case netproto.OpPing, netproto.OpOpen, netproto.OpWait, netproto.OpEstWait,
		netproto.OpContexts, netproto.OpContextInfo, netproto.OpStats,
		netproto.OpBitrep, netproto.OpRescan, netproto.OpPrefetch,
		netproto.OpSchedGet:
		return true
	}
	return false
}

// tryReconnect is the read loop's recovery path: redial with backoff,
// re-handshake, rebuild the reference state and replay what can be
// replayed. It reports whether the read loop should continue on the new
// connection. Runs only on the readLoop goroutine.
func (c *Client) tryReconnect() bool {
	c.mu.Lock()
	if c.closed || c.dialCfg.reconnect == nil || c.readErr != nil {
		c.mu.Unlock()
		return false
	}
	cfg := *c.dialCfg.reconnect
	c.reconnecting = true

	// Partition the in-flight calls: idempotent ones ride through (their
	// frames are replayed below), the rest fail with the typed error so
	// the caller decides — the client cannot know whether they landed.
	var replay []*pendingCall
	for id, p := range c.pending {
		if isIdempotent(p.op) {
			replay = append(replay, p)
			continue
		}
		delete(c.pending, id)
		p.err = fmt.Errorf("dvlib: %s: %w", p.op, ErrReconnecting)
		close(p.ch)
	}
	sort.Slice(replay, func(i, j int) bool { return replay[i].id < replay[j].id })

	// Subscriptions that are not watches are acquires: they hold
	// references the daemon just released, so they fail typed instead of
	// being re-issued (re-acquiring could double work the caller already
	// observed). Watches hold nothing and are re-subscribed after the
	// handshake.
	var watches []*Watch
	for id, fn := range c.subs {
		if w, ok := c.watches[id]; ok {
			watches = append(watches, w)
			continue
		}
		delete(c.subs, id)
		go fn(netproto.Response{ID: id, Err: ErrReconnecting.Error(), Done: true})
	}

	held := make(map[string]map[string]int, len(c.held))
	for ctxName, files := range c.held {
		m := make(map[string]int, len(files))
		for f, n := range files {
			m[f] = n
		}
		held[ctxName] = m
	}
	c.mu.Unlock()

	c.conn.Close()
	if c.redial(cfg) {
		c.replay(held, watches, replay)
		c.endReconnect()
		return true
	}
	// Out of budget (or closed): the calls spared for replay die too.
	c.mu.Lock()
	for _, p := range replay {
		if _, ok := c.pending[p.id]; ok {
			delete(c.pending, p.id)
			close(p.ch)
		}
	}
	c.mu.Unlock()
	c.endReconnect()
	return false
}

// redial loops dial + hello with jittered exponential backoff until it
// succeeds, the budget runs out, or the client closes. On success the
// new connection is swapped in under both locks.
//
//simfs:allow wallclock reconnect backoff paces real network dials, not simulation
func (c *Client) redial(cfg ReconnectConfig) bool {
	rng := rand.New(rand.NewSource(cfg.Seed))
	start := time.Now()
	delay := cfg.BaseBackoff
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			d := delay
			if cfg.Jitter > 0 {
				d = time.Duration(float64(d) * (1 + cfg.Jitter*(2*rng.Float64()-1)))
			}
			time.Sleep(d)
			if delay *= 2; delay > cfg.MaxBackoff {
				delay = cfg.MaxBackoff
			}
		}
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed || time.Since(start) > cfg.MaxElapsed {
			return false
		}
		conn, err := net.DialTimeout("tcp", c.addr, 2*time.Second)
		if err != nil {
			continue
		}
		br := bufio.NewReaderSize(conn, frameBufSize)
		hs, err := helloOn(conn, br, c.newID(), c.name, c.dialCfg)
		if err != nil {
			conn.Close()
			continue
		}
		c.wmu.Lock()
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			c.wmu.Unlock()
			conn.Close()
			return false
		}
		c.conn, c.br = conn, br
		c.applyHello(hs)
		// Frames batched before the reset were encoded for the dead
		// connection; every surviving request is replayed from its body,
		// so the stale bytes would only duplicate them.
		c.wbuf.Reset()
		c.mu.Unlock()
		c.wmu.Unlock()
		return true
	}
}

// newID allocates a request ID. IDs stay monotonic across reconnects:
// in-flight calls keep theirs for replay, so resetting would collide.
func (c *Client) newID() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextID++
	return c.nextID
}

// replay rebuilds daemon-side session state on the fresh connection, in
// dependency order: the reference ledger first (re-opening restarts the
// re-simulations waits depend on), then watch re-subscriptions, then the
// surviving in-flight calls in their original order. Everything lands in
// one coalesced write.
func (c *Client) replay(held map[string]map[string]int, watches []*Watch, replay []*pendingCall) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	enc := func(id uint64, op string, body any) {
		env, err := netproto.NewEnvelope(id, op, body)
		if err == nil {
			_ = c.codec.EncodeFrame(&c.wbuf, env)
		}
	}
	for ctxName, files := range held {
		for f, n := range files {
			for i := 0; i < n; i++ {
				// Fire-and-forget: the responses are dropped as unknown.
				// The ledger already counts these references; a failure
				// here surfaces on the next wait/open of the file.
				enc(c.newID(), netproto.OpOpen, netproto.FileBody{Context: ctxName, File: f})
			}
		}
	}
	for _, w := range watches {
		rem := w.remaining()
		c.mu.Lock()
		delete(c.subs, w.id)
		delete(c.watches, w.id)
		c.mu.Unlock()
		if len(rem) == 0 {
			// Every file resolved before the reset; only the final Done
			// frame was lost. Synthesize it.
			go w.deliver(netproto.Response{Done: true})
			continue
		}
		id := c.newID()
		c.mu.Lock()
		w.id = id
		c.subs[id] = w.deliver
		c.watches[id] = w
		c.mu.Unlock()
		enc(id, netproto.OpSubscribe, netproto.FilesBody{Context: w.ctx.name, Files: rem})
	}
	for _, p := range replay {
		enc(p.id, p.op, p.body)
	}
	_ = c.flushLocked()
}

// endReconnect releases the goroutines gated on the reconnect.
func (c *Client) endReconnect() {
	c.mu.Lock()
	c.reconnecting = false
	c.recCond.Broadcast()
	c.mu.Unlock()
}
