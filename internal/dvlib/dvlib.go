// Package dvlib is the client library of SimFS (paper Sec. III-C): it
// connects analysis applications and simulators to the DV daemon. It
// provides both the transparent mode — open/read/close calls that behave
// like ordinary file I/O but block on virtualized (missing) files until
// the DV re-simulates them — and the explicit SIMFS_* API
// (Init/Finalize/Acquire/Acquire_nb/Wait/Test/Waitsome/Testsome/Release/
// Bitrep) for virtualization-aware applications.
//
// Connections speak the versioned envelope protocol (internal/netproto):
// Dial performs the hello handshake — version and capability
// negotiation — and fails with a CodeVersion *Error against daemons that
// predate it. Against a protocol-3 daemon the connection negotiates the
// binary fast-path codec by default (WithJSONCodec opts out); against
// older daemons it stays on JSON. Failures surface as *Error values
// carrying the daemon's structured error code, so callers dispatch on
// ErrCodeOf(err) instead of matching message text. Cancellation and
// deadlines plumb through context.Context: DialContext, AcquireCtx and
// Req.WaitCtx honor the context, and a canceled acquire releases its
// references so the daemon may dismantle re-simulations nobody else is
// waiting for.
//
// Requests coalesce into batches: every call's frame lands in a write
// buffer and is flushed — one syscall for however many frames queued —
// when the caller blocks for a response (or by an explicit Flush). The
// pipelined variants (Context.OpenAsync / Context.ReleaseAsync) expose
// this: issue a window of calls, then Wait on the handles; the daemon
// answers a connection's frames in order.
//
// The Admin client (Client.Admin) exposes the daemon's control plane:
// live scheduler reconfiguration, cache-policy swaps, context
// registration/deregistration and per-context drain/resume.
package dvlib

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"simfs/internal/netproto"
	"simfs/internal/vfs"
)

// ErrReconnecting reports that the connection was reset while a
// non-idempotent operation (release, acquire, admin) was in flight. The
// client has reconnected (or is reconnecting) and resynced its reference
// state with the daemon, but it cannot know whether the operation took
// effect before the reset — the caller must decide whether to retry.
// Idempotent operations (open, wait, est-wait, ping and the read-only
// queries) never fail with this: they are replayed transparently.
var ErrReconnecting = errors.New("connection reset while the request was in flight; state resynced — retry if still wanted")

// ErrNotHeld reports a release of a file the client-side reference
// ledger does not hold. With auto-reconnect enabled the ledger is
// authoritative: after a reconnect the daemon's references are rebuilt
// from it, so a double release would otherwise silently corrupt the
// recovered state.
var ErrNotHeld = errors.New("file is not held by this client (double release?)")

// Error is a structured daemon-reported failure: the machine-readable
// code, the operation that failed, and the human-readable message.
type Error struct {
	Code netproto.ErrCode
	Op   string
	Msg  string
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Code != "" {
		return fmt.Sprintf("dvlib: %s: %s (%s)", e.Op, e.Msg, e.Code)
	}
	return fmt.Sprintf("dvlib: %s: %s", e.Op, e.Msg)
}

// ErrCodeOf extracts the structured code from an error chain ("" when
// the error did not come from the daemon).
func ErrCodeOf(err error) netproto.ErrCode {
	var de *Error
	if errors.As(err, &de) {
		return de.Code
	}
	return ""
}

// frameBufSize sizes the connection's read buffer; flushThreshold bounds
// how many queued request bytes accumulate before an automatic flush.
const (
	frameBufSize   = 32 << 10
	flushThreshold = 32 << 10
)

// Client is a connection to the DV daemon. It is safe for concurrent use.
type Client struct {
	name string
	addr string

	// conn/br/codec are swapped atomically on reconnect: readers of the
	// stream run only on the readLoop goroutine (which performs the swap
	// itself), writers encode under wmu (held across the swap).
	conn    net.Conn
	br      *bufio.Reader
	codec   netproto.Codec
	binary  bool
	version int
	caps    []string
	dialCfg dialConfig

	wmu  sync.Mutex   // serializes frame encoding and writes
	wbuf bytes.Buffer // queued request frames awaiting a flush

	mu      sync.Mutex
	recCond *sync.Cond // signals the end of a reconnect (guards reconnecting)
	nextID  uint64
	pending map[uint64]*pendingCall
	subs    map[uint64]func(netproto.Response) // multi-frame subscriptions
	// watches maps subscription IDs to their Watch handles, so a
	// reconnect can re-subscribe them (unlike acquires, watches hold no
	// references and are safe to re-issue).
	watches map[uint64]*Watch
	// held is the client-side reference ledger (context → file → count).
	// After a reconnect the daemon has released everything this session
	// held (disconnect cleanup), so the ledger is replayed as opens to
	// rebuild the reference state — and consulted to refuse releases of
	// files not held.
	held         map[string]map[string]int
	reconnecting bool
	closed       bool
	readErr      error
}

// dialConfig collects DialOption settings.
type dialConfig struct {
	jsonOnly  bool
	reconnect *ReconnectConfig
}

// DialOption customizes Dial/DialContext behavior.
type DialOption func(*dialConfig)

// WithJSONCodec disables binary-codec negotiation: the connection speaks
// JSON frames even against a daemon that offers the fast path. Useful
// for debugging with packet captures and for benchmark baselines.
func WithJSONCodec() DialOption {
	return func(cfg *dialConfig) { cfg.jsonOnly = true }
}

// ReconnectConfig tunes WithReconnect's backoff loop. The zero value
// gets sensible defaults (50ms base doubling to 2s, ±20% jitter, give
// up after 30s).
type ReconnectConfig struct {
	BaseBackoff time.Duration // delay before the second attempt (first is immediate)
	MaxBackoff  time.Duration // cap on the doubled delay
	Jitter      float64       // ±fraction applied to each delay
	MaxElapsed  time.Duration // total budget before the client gives up for good
	Seed        int64         // roots the jitter rng (pinned in chaos tests)
}

func (cfg ReconnectConfig) withDefaults() ReconnectConfig {
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 2 * time.Second
	}
	if cfg.MaxElapsed <= 0 {
		cfg.MaxElapsed = 30 * time.Second
	}
	return cfg
}

// WithReconnect makes the client survive connection loss: when the read
// loop hits a broken stream, the client redials with exponential backoff,
// re-runs the hello handshake (same codec negotiation), re-opens every
// file in its reference ledger, re-subscribes active watches, and
// transparently replays idempotent in-flight calls (open, wait, est-wait,
// ping, the read-only queries). Non-idempotent in-flight calls (release,
// acquire, admin ops) fail with ErrReconnecting instead — the client
// cannot know whether they took effect — and releases are checked against
// the ledger so a double release is refused rather than corrupting the
// resynced state.
func WithReconnect(cfg ReconnectConfig) DialOption {
	c := cfg.withDefaults()
	return func(d *dialConfig) { d.reconnect = &c }
}

// Dial connects to the daemon at addr under the given client name (the DV
// uses it to associate prefetch agents and reference counts).
func Dial(addr, clientName string, opts ...DialOption) (*Client, error) {
	return DialContext(context.Background(), addr, clientName, opts...)
}

// DialContext is Dial honoring a context for both the TCP connect and
// the protocol handshake.
func DialContext(ctx context.Context, addr, clientName string, opts ...DialOption) (*Client, error) {
	var cfg dialConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dvlib: %w", err)
	}
	c := &Client{
		name:    clientName,
		addr:    addr,
		conn:    conn,
		br:      bufio.NewReaderSize(conn, frameBufSize),
		codec:   netproto.JSON,
		dialCfg: cfg,
		pending: map[uint64]*pendingCall{},
		subs:    map[uint64]func(netproto.Response){},
		watches: map[uint64]*Watch{},
		held:    map[string]map[string]int{},
	}
	c.recCond = sync.NewCond(&c.mu)
	// The handshake runs synchronously — no read loop yet — so the codec
	// can switch after the hello without racing a concurrent reader.
	stop := closeOnCancel(ctx, conn)
	hs, err := helloOn(conn, c.br, 1, c.name, cfg)
	canceled := stop()
	if err != nil || canceled {
		conn.Close()
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		var de *Error
		if errors.As(err, &de) {
			return nil, err
		}
		return nil, fmt.Errorf("dvlib: handshake: %w", err)
	}
	c.applyHello(hs)
	c.nextID = 1 // the hello consumed ID 1
	go c.readLoop()
	return c, nil
}

// closeOnCancel makes ctx cancellation interrupt blocking conn I/O by
// closing the connection — the pre-handshake connection carries no state
// worth preserving, so a hard teardown is the honest cancellation. The
// returned stop func ends the watch and reports whether it fired.
func closeOnCancel(ctx context.Context, conn net.Conn) (stop func() bool) {
	if ctx.Done() == nil {
		return func() bool { return false }
	}
	done := make(chan struct{})
	fired := make(chan bool, 1)
	go func() {
		select {
		case <-ctx.Done():
			conn.Close()
			fired <- true
		case <-done:
			fired <- false
		}
	}()
	return func() bool {
		close(done)
		return <-fired
	}
}

// helloResult is a successful hello negotiation, ready to apply to the
// client once the connection is adopted.
type helloResult struct {
	version int
	caps    []string
	binary  bool
}

// helloOn performs the hello exchange on a bare connection — the initial
// dial and every reconnect share it. It never touches the Client, so a
// reconnect can negotiate on a candidate connection before swapping it
// in.
func helloOn(conn net.Conn, br *bufio.Reader, id uint64, name string, cfg dialConfig) (helloResult, error) {
	caps := []string{netproto.CapAdmin, netproto.CapWatch}
	if !cfg.jsonOnly {
		caps = append(caps, netproto.CapBinary)
	}
	env, err := netproto.NewEnvelope(id, netproto.OpHello, netproto.HelloBody{
		Version: netproto.ProtoVersion,
		Client:  name,
		Caps:    caps,
	})
	if err != nil {
		return helloResult{}, err
	}
	if err := netproto.JSON.EncodeFrame(conn, env); err != nil {
		return helloResult{}, err
	}
	var resp netproto.Response
	if err := netproto.JSON.DecodeFrame(br, &resp); err != nil {
		return helloResult{}, err
	}
	if resp.Err != "" {
		if resp.Code == "" {
			// The daemon answered the hello with a v1-style untyped
			// error: it predates the versioned protocol.
			return helloResult{}, &Error{Code: netproto.CodeVersion, Op: netproto.OpHello,
				Msg: fmt.Sprintf("daemon does not speak the versioned protocol (client speaks %d): %s",
					netproto.ProtoVersion, resp.Err)}
		}
		return helloResult{}, &Error{Code: resp.Code, Op: netproto.OpHello, Msg: resp.Err}
	}
	if resp.Proto == nil || resp.Proto.Version < netproto.MinProtoVersion {
		return helloResult{}, &Error{Code: netproto.CodeVersion, Op: netproto.OpHello,
			Msg: "daemon sent no usable protocol version"}
	}
	hs := helloResult{version: resp.Proto.Version, caps: resp.Proto.Caps}
	hs.binary = !cfg.jsonOnly && hs.version >= 3 && hasCap(hs.caps, netproto.CapBinary)
	return hs, nil
}

// applyHello installs a negotiated hello's outcome on the client.
func (c *Client) applyHello(hs helloResult) {
	c.version = hs.version
	c.caps = hs.caps
	c.binary = hs.binary
	if hs.binary {
		c.codec = netproto.Binary
	} else {
		c.codec = netproto.JSON
	}
}

func hasCap(caps []string, want string) bool {
	for _, have := range caps {
		if have == want {
			return true
		}
	}
	return false
}

// UsesBinary reports whether the connection negotiated the binary
// fast-path codec in the hello handshake.
func (c *Client) UsesBinary() bool { return c.binary }

// CodecName returns the name of the negotiated frame codec.
func (c *Client) CodecName() string { return c.codec.Name() }

// ProtoVersion returns the protocol version negotiated in the handshake.
func (c *Client) ProtoVersion() int { return c.version }

// Capabilities returns the capability flags the daemon advertised.
func (c *Client) Capabilities() []string { return append([]string(nil), c.caps...) }

// HasCapability reports whether the daemon advertised the capability in
// the hello handshake.
func (c *Client) HasCapability(cap string) bool {
	for _, have := range c.caps {
		if have == cap {
			return true
		}
	}
	return false
}

// Close tears down the connection. The daemon releases any references the
// client still holds.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	c.recCond.Broadcast()
	c.mu.Unlock()
	return c.conn.Close()
}

func (c *Client) readLoop() {
	for {
		var resp netproto.Response
		// Only this goroutine reads codec/br, and only it swaps them (in
		// tryReconnect), so the stream fields need no lock here.
		if err := c.codec.DecodeFrame(c.br, &resp); err != nil {
			if c.tryReconnect() {
				continue
			}
			c.die(err)
			return
		}
		c.route(resp)
	}
}

// route delivers one response frame to its pending call or subscription.
func (c *Client) route(resp netproto.Response) {
	c.mu.Lock()
	if p, ok := c.pending[resp.ID]; ok {
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		c.settle(p, resp)
		p.ch <- resp
		return
	}
	if fn, ok := c.subs[resp.ID]; ok {
		if resp.Done {
			delete(c.subs, resp.ID)
			delete(c.watches, resp.ID)
		}
		c.mu.Unlock()
		fn(resp)
		return
	}
	c.mu.Unlock()
}

// settle updates the reference ledger from a completed call: a
// successful open holds a reference, a successful release drops one.
func (c *Client) settle(p *pendingCall, resp netproto.Response) {
	if resp.Err != "" {
		return
	}
	switch p.op {
	case netproto.OpOpen:
		if b, ok := p.body.(netproto.FileBody); ok {
			c.trackHeld(b.Context, b.File, +1)
		}
	case netproto.OpRelease:
		if b, ok := p.body.(netproto.FileBody); ok {
			c.trackHeld(b.Context, b.File, -1)
		}
	}
}

// trackHeld adjusts the client-side reference ledger.
func (c *Client) trackHeld(ctxName, file string, delta int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.held[ctxName]
	if m == nil {
		if delta <= 0 {
			return
		}
		m = map[string]int{}
		c.held[ctxName] = m
	}
	m[file] += delta
	if m[file] <= 0 {
		delete(m, file)
	}
}

// heldCount reports the ledger's reference count for a file.
func (c *Client) heldCount(ctxName, file string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.held[ctxName][file]
}

// die is the terminal connection-loss path (no reconnect, or reconnect
// exhausted): every pending call and subscription fails.
func (c *Client) die(err error) {
	c.mu.Lock()
	c.readErr = err
	c.reconnecting = false
	for id, p := range c.pending {
		delete(c.pending, id)
		close(p.ch)
	}
	for id, fn := range c.subs {
		delete(c.subs, id)
		go fn(netproto.Response{ID: id, Err: "connection lost", Done: true})
	}
	c.watches = map[uint64]*Watch{}
	c.recCond.Broadcast()
	c.mu.Unlock()
}

// pendingCall is an in-flight request: its frame is queued (and possibly
// already flushed) and the read loop will route the response to ch. op
// and body are retained so a reconnect can replay the request; err is
// set (before ch closes) when the call fails locally with a typed error.
type pendingCall struct {
	op   string
	id   uint64
	body any
	ch   chan netproto.Response
	err  error
}

// call sends a request expecting exactly one response.
func (c *Client) call(op string, body any) (netproto.Response, error) {
	return c.callCtx(context.Background(), op, body)
}

// callCtx is call honoring a context deadline/cancellation. A canceled
// call abandons the response (the read loop drops it as unknown); the
// request may still have taken effect on the daemon.
func (c *Client) callCtx(ctx context.Context, op string, body any) (netproto.Response, error) {
	p, err := c.start(op, body, false)
	if err != nil {
		return netproto.Response{}, err
	}
	return c.await(ctx, p)
}

// startGate blocks while a reconnect is swapping the connection (new
// requests must not interleave with the replay) and reports the terminal
// error if the client is closed or dead. Caller must hold c.mu.
func (c *Client) startGateLocked() error {
	for c.reconnecting && !c.closed && c.readErr == nil {
		c.recCond.Wait()
	}
	if c.closed || c.readErr != nil {
		err := c.readErr
		if err == nil {
			err = errors.New("dvlib: client closed")
		}
		return err
	}
	return nil
}

// start registers a pending call and queues its request frame. When
// flush is true the frame (and anything queued before it) goes out
// immediately; otherwise it rides the write buffer until the caller
// awaits, Flush is called, or the buffer fills.
func (c *Client) start(op string, body any, flush bool) (*pendingCall, error) {
	ch := make(chan netproto.Response, 1)
	c.mu.Lock()
	if err := c.startGateLocked(); err != nil {
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	id := c.nextID
	p := &pendingCall{op: op, id: id, body: body, ch: ch}
	c.pending[id] = p
	c.mu.Unlock()

	env, err := netproto.NewEnvelope(id, op, body)
	if err == nil {
		if flush {
			err = c.write(env)
		} else {
			err = c.queue(env)
		}
	}
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, err
	}
	return p, nil
}

// await flushes any queued frames (the daemon cannot answer a request it
// has not received) and blocks for the call's response.
func (c *Client) await(ctx context.Context, p *pendingCall) (netproto.Response, error) {
	if err := c.Flush(); err != nil {
		c.mu.Lock()
		delete(c.pending, p.id)
		c.mu.Unlock()
		return netproto.Response{}, err
	}
	select {
	case resp, ok := <-p.ch:
		if !ok {
			if p.err != nil {
				return netproto.Response{}, p.err
			}
			return netproto.Response{}, errors.New("dvlib: connection lost")
		}
		if resp.Err != "" {
			return resp, &Error{Code: resp.Code, Op: p.op, Msg: resp.Err}
		}
		return resp, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, p.id)
		c.mu.Unlock()
		return netproto.Response{}, ctx.Err()
	}
}

// post sends a request without waiting for its response: no pending
// entry is registered, so the read loop drops the answer as unknown.
// Used on cancellation paths, where blocking on an unresponsive daemon
// would defeat the deadline being enforced.
func (c *Client) post(op string, body any) error {
	c.mu.Lock()
	if err := c.startGateLocked(); err != nil {
		c.mu.Unlock()
		return err
	}
	c.nextID++
	id := c.nextID
	c.mu.Unlock()
	env, err := netproto.NewEnvelope(id, op, body)
	if err != nil {
		return err
	}
	return c.write(env)
}

// subscribe sends a request whose responses stream to fn until a Done
// frame arrives. It returns the request ID, which names the subscription
// in an unsubscribe.
func (c *Client) subscribe(op string, body any, fn func(netproto.Response)) (uint64, error) {
	c.mu.Lock()
	if err := c.startGateLocked(); err != nil {
		c.mu.Unlock()
		return 0, err
	}
	c.nextID++
	id := c.nextID
	c.subs[id] = fn
	c.mu.Unlock()
	env, err := netproto.NewEnvelope(id, op, body)
	if err == nil {
		err = c.write(env)
	}
	if err != nil {
		c.mu.Lock()
		delete(c.subs, id)
		c.mu.Unlock()
		return 0, err
	}
	return id, nil
}

// reconnectEnabled reports whether the client was dialed WithReconnect.
func (c *Client) reconnectEnabled() bool { return c.dialCfg.reconnect != nil }

// cancelSub removes a local subscription and, if it was still live,
// delivers a synthetic Done frame to its handler. The map removal is the
// exclusion point: whoever removes the entry delivers the Done.
func (c *Client) cancelSub(id uint64, reason string) {
	c.mu.Lock()
	fn, ok := c.subs[id]
	if ok {
		delete(c.subs, id)
	}
	delete(c.watches, id)
	c.mu.Unlock()
	if ok {
		fn(netproto.Response{ID: id, Err: reason, Done: true})
	}
}

// queue encodes env into the write buffer without sending it, so several
// small requests coalesce into one conn.Write. The buffer auto-flushes
// past flushThreshold to bound memory and keep the daemon busy.
func (c *Client) queue(env netproto.Envelope) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.codec.EncodeFrame(&c.wbuf, env); err != nil {
		return err
	}
	if c.wbuf.Len() >= flushThreshold {
		return c.flushLocked()
	}
	return nil
}

// write queues env and flushes immediately (used for fire-and-forget
// frames where nothing will await — and therefore flush — later).
func (c *Client) write(env netproto.Envelope) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if err := c.codec.EncodeFrame(&c.wbuf, env); err != nil {
		return err
	}
	return c.flushLocked()
}

// Flush sends all queued request frames in a single write. Callers only
// need it when pipelining requests whose responses nothing is awaiting
// yet; the blocking APIs flush implicitly.
func (c *Client) Flush() error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.flushLocked()
}

func (c *Client) flushLocked() error {
	if c.wbuf.Len() == 0 {
		return nil
	}
	_, err := c.conn.Write(c.wbuf.Bytes())
	c.wbuf.Reset()
	if err != nil && c.reconnectEnabled() {
		// A write failure is survivable: pending calls are replayed from
		// their retained bodies once the connection is back, and posts are
		// fire-and-forget by contract. Close the connection so the read
		// loop notices and reconnects, and report success to the caller.
		c.conn.Close()
		return nil
	}
	return err
}

// Contexts lists the simulation contexts the daemon serves.
func (c *Client) Contexts() ([]string, error) {
	resp, err := c.call(netproto.OpContexts, nil)
	if err != nil {
		return nil, err
	}
	return resp.Names, nil
}

// pingTimeout bounds Ping: a liveness probe that blocks forever answers
// the question the wrong way.
const pingTimeout = 5 * time.Second

// Ping checks daemon liveness. Unlike the data-plane calls it carries an
// explicit deadline: it reports an unresponsive daemon within
// pingTimeout instead of blocking until the connection dies.
func (c *Client) Ping() error {
	ctx, cancel := context.WithTimeout(context.Background(), pingTimeout)
	defer cancel()
	_, err := c.callCtx(ctx, netproto.OpPing, nil)
	return err
}

// Context is an open simulation context (SIMFS_Init's handle).
type Context struct {
	c    *Client
	name string
	info netproto.ContextInfo
	area *vfs.Disk // nil if the storage area is not locally reachable
}

// Init opens a simulation context (SIMFS_Init). If the context's storage
// area is reachable as a local directory, transparent reads serve file
// contents from it.
func (c *Client) Init(contextName string) (*Context, error) {
	resp, err := c.call(netproto.OpContextInfo, netproto.CtxBody{Context: contextName})
	if err != nil {
		return nil, err
	}
	if resp.Info == nil {
		return nil, &Error{Op: netproto.OpContextInfo, Msg: "daemon sent no context info"}
	}
	ctx := &Context{c: c, name: contextName, info: *resp.Info}
	if resp.Info.StorageDir != "" {
		if area, err := vfs.NewDisk(resp.Info.StorageDir); err == nil {
			ctx.area = area
		}
	}
	return ctx, nil
}

// Finalize closes the context handle (SIMFS_Finalize). It is a no-op on
// the wire: references are dropped per file via Release/Close.
func (ctx *Context) Finalize() error { return nil }

// Name returns the context name.
func (ctx *Context) Name() string { return ctx.name }

// Info returns the context parameters the daemon advertised.
func (ctx *Context) Info() netproto.ContextInfo { return ctx.info }

// Filename returns the output step file name for a 1-based step index,
// following the context's naming convention.
func (ctx *Context) Filename(step int) string {
	return fmt.Sprintf("%s%08d%s", ctx.info.FilePrefix, step, ctx.info.FileSuffix)
}

// OpenResult reports an Open outcome.
type OpenResult struct {
	Available bool
	EstWait   time.Duration
}

// Open is the transparent-mode open: non-blocking, it registers the access
// with the DV (starting a re-simulation if the file is missing) and takes
// a reference on the file.
func (ctx *Context) Open(file string) (OpenResult, error) {
	resp, err := ctx.c.call(netproto.OpOpen, netproto.FileBody{Context: ctx.name, File: file})
	if err != nil {
		return OpenResult{}, err
	}
	return OpenResult{Available: resp.Available, EstWait: time.Duration(resp.EstWaitNs)}, nil
}

// OpenCall is a pipelined Open in flight: the request frame is queued on
// the connection; Wait flushes and blocks for the daemon's answer.
type OpenCall struct {
	c *Client
	p *pendingCall
}

// OpenAsync queues an Open without waiting for the response, enabling
// request pipelining: issue a window of OpenAsync/ReleaseAsync calls,
// then Wait on the handles. All queued frames go out in one write on
// the first Wait (or an explicit Client.Flush).
func (ctx *Context) OpenAsync(file string) (*OpenCall, error) {
	p, err := ctx.c.start(netproto.OpOpen, netproto.FileBody{Context: ctx.name, File: file}, false)
	if err != nil {
		return nil, err
	}
	return &OpenCall{c: ctx.c, p: p}, nil
}

// Wait flushes pending request frames and blocks for the open's result.
// It must be called exactly once.
func (oc *OpenCall) Wait() (OpenResult, error) {
	resp, err := oc.c.await(context.Background(), oc.p)
	if err != nil {
		return OpenResult{}, err
	}
	return OpenResult{Available: resp.Available, EstWait: time.Duration(resp.EstWaitNs)}, nil
}

// ReleaseCall is a pipelined Release in flight.
type ReleaseCall struct {
	c *Client
	p *pendingCall
}

// ReleaseAsync queues a Release without waiting for the response (the
// pipelined variant of Release/Close).
func (ctx *Context) ReleaseAsync(file string) (*ReleaseCall, error) {
	p, err := ctx.c.start(netproto.OpRelease, netproto.FileBody{Context: ctx.name, File: file}, false)
	if err != nil {
		return nil, err
	}
	return &ReleaseCall{c: ctx.c, p: p}, nil
}

// Wait flushes pending request frames and blocks for the release's
// acknowledgement. It must be called exactly once.
func (rc *ReleaseCall) Wait() error {
	_, err := rc.c.await(context.Background(), rc.p)
	return err
}

// WaitAvailable blocks until the file is on disk (the blocking part of a
// transparent-mode read). The file must have been opened first. It rides
// the daemon's notification hub via a file subscription (SIMFS_Wait).
func (ctx *Context) WaitAvailable(file string) error {
	w, err := ctx.Watch(file)
	if err != nil {
		return err
	}
	for ev := range w.Events() {
		if ev.Err != "" {
			return errors.New(ev.Err)
		}
		if ev.File == file && ev.Ready {
			return nil
		}
	}
	return errors.New("dvlib: watch ended before the file became available")
}

// WatchEvent is one notification from a file watch: a per-file
// resolution (File set, Ready or Err) or the final completion (Done).
type WatchEvent struct {
	File  string
	Ready bool
	Err   string
	Done  bool
}

// Watch is a notification-only subscription to file availability,
// served by the daemon's notify hub. Unlike Acquire it takes no
// references; the watched files must be resident or already promised by
// a re-simulation (e.g. after Open or Prefetch). With auto-reconnect,
// watches survive connection loss: the client re-subscribes the files
// not yet resolved, and per-file deduplication keeps a file that
// resolved just before the reset from being reported twice.
type Watch struct {
	ctx   *Context
	id    uint64
	files []string
	ch    chan WatchEvent

	mu     sync.Mutex
	seen   map[string]bool // files already reported (dedup across re-subscribes)
	closed bool
}

// Watch subscribes to the given files. Events arrive on Events(): one
// per file as it becomes ready (or fails), then a final Done event, after
// which the channel closes. A file that is neither on disk nor being
// produced resolves immediately with a per-file error event.
func (ctx *Context) Watch(files ...string) (*Watch, error) {
	if len(files) == 0 {
		return nil, errors.New("dvlib: watch of zero files")
	}
	// One slot per file plus the Done event: the daemon resolves each
	// file at most once (re-deliveries after a reconnect are deduped), so
	// delivery below never blocks the read loop.
	w := &Watch{
		ctx:   ctx,
		files: append([]string(nil), files...),
		ch:    make(chan WatchEvent, len(files)+1),
		seen:  map[string]bool{},
	}
	id, err := ctx.c.subscribe(netproto.OpSubscribe,
		netproto.FilesBody{Context: ctx.name, Files: append([]string(nil), files...)},
		w.deliver)
	if err != nil {
		return nil, err
	}
	w.id = id
	ctx.c.mu.Lock()
	// The Done frame may already have raced in and removed the sub; a
	// completed watch must not linger in the re-subscribe registry.
	if _, live := ctx.c.subs[id]; live {
		ctx.c.watches[id] = w
	}
	ctx.c.mu.Unlock()
	return w, nil
}

// Events returns the watch's event stream.
func (w *Watch) Events() <-chan WatchEvent { return w.ch }

// Cancel tears down the watch: the daemon drops the subscription and the
// event channel closes after a final Done event. Canceling a completed
// watch is a no-op.
func (w *Watch) Cancel() error {
	w.ctx.c.cancelSub(w.id, "unsubscribed")
	_, err := w.ctx.c.call(netproto.OpUnsubscribe, netproto.UnsubscribeBody{SubID: w.id})
	return err
}

// remaining returns the files the watch has not yet reported — what a
// reconnect re-subscribes.
func (w *Watch) remaining() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	var out []string
	for _, f := range w.files {
		if !w.seen[f] {
			out = append(out, f)
		}
	}
	return out
}

// deliver translates wire frames into watch events. It serializes with
// itself (read loop vs. cancel) and never sends after close. Per-file
// frames are deduplicated: after a reconnect the re-subscription reports
// already-resident files again.
func (w *Watch) deliver(resp netproto.Response) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	if resp.File != "" && !w.seen[resp.File] {
		w.seen[resp.File] = true
		w.ch <- WatchEvent{File: resp.File, Ready: resp.Ready, Err: resp.Err}
	}
	if resp.Done {
		w.closed = true
		if resp.Err != "" && resp.File == "" {
			w.ch <- WatchEvent{Err: resp.Err, Done: true}
		} else {
			w.ch <- WatchEvent{Done: true}
		}
		close(w.ch)
	}
}

// Read is the transparent-mode read: it blocks until the file is available
// and returns its content from the storage area. Open must precede it.
func (ctx *Context) Read(file string) ([]byte, error) {
	if err := ctx.WaitAvailable(file); err != nil {
		return nil, err
	}
	if ctx.area == nil {
		return nil, fmt.Errorf("dvlib: storage area of context %q is not locally reachable", ctx.name)
	}
	return ctx.area.Read(file)
}

// Close is the transparent-mode close: it drops the file reference so the
// DV may evict it (SIMFS_Release shares the implementation). With
// auto-reconnect enabled the client-side ledger is consulted first: a
// release of a file not held fails with ErrNotHeld instead of reaching
// the daemon, because after a reconnect the daemon's reference state is
// rebuilt from that ledger and a double release would corrupt it.
func (ctx *Context) Close(file string) error {
	if ctx.c.reconnectEnabled() && ctx.c.heldCount(ctx.name, file) == 0 {
		return fmt.Errorf("dvlib: %s %q: %w", netproto.OpRelease, file, ErrNotHeld)
	}
	_, err := ctx.c.call(netproto.OpRelease, netproto.FileBody{Context: ctx.name, File: file})
	return err
}

// Release drops a file reference (SIMFS_Release).
func (ctx *Context) Release(file string) error { return ctx.Close(file) }

// EstWait asks the DV for the estimated availability delay of a file.
func (ctx *Context) EstWait(file string) (time.Duration, error) {
	resp, err := ctx.c.call(netproto.OpEstWait, netproto.FileBody{Context: ctx.name, File: file})
	if err != nil {
		return 0, err
	}
	return time.Duration(resp.EstWaitNs), nil
}

// Bitrep checks whether a file's current content matches the originally
// produced one (SIMFS_Bitrep). flag is true for a bitwise match.
func (ctx *Context) Bitrep(file string) (bool, error) {
	resp, err := ctx.c.call(netproto.OpBitrep, netproto.FileBody{Context: ctx.name, File: file})
	if err != nil {
		return false, err
	}
	return resp.Flag, nil
}

// RegisterChecksum stores a file's original checksum (used by the
// checksum command-line utility at initial-simulation time).
func (ctx *Context) RegisterChecksum(file string, sum uint64) error {
	_, err := ctx.c.call(netproto.OpRegSum, netproto.ChecksumBody{Context: ctx.name, File: file, Sum: sum})
	return err
}

// Prefetch sends a guided-prefetching hint: the named files will be
// accessed soon, so SimFS should start re-simulating the missing ones
// now. It neither blocks nor takes references; it returns the number of
// re-simulations launched.
func (ctx *Context) Prefetch(files ...string) (int, error) {
	resp, err := ctx.c.call(netproto.OpPrefetch, netproto.FilesBody{Context: ctx.name, Files: files})
	if err != nil {
		return 0, err
	}
	return resp.Count, nil
}

// Stats fetches the context's DV counters.
func (ctx *Context) Stats() (netproto.Stats, error) {
	resp, err := ctx.c.call(netproto.OpStats, netproto.CtxBody{Context: ctx.name})
	if err != nil {
		return netproto.Stats{}, err
	}
	if resp.Stats == nil {
		return netproto.Stats{}, &Error{Op: netproto.OpStats, Msg: "daemon sent no stats"}
	}
	return *resp.Stats, nil
}

// Rescan asks the daemon to resynchronize the context's cache with its
// storage area (recovery utility).
func (ctx *Context) Rescan() (int, error) {
	resp, err := ctx.c.call(netproto.OpRescan, netproto.CtxBody{Context: ctx.name})
	if err != nil {
		return 0, err
	}
	return resp.Count, nil
}
