package dvlib

import (
	"context"

	"simfs/internal/model"
	"simfs/internal/netproto"
)

// Admin is the control-plane client of a DV daemon (capability "admin"):
// it reconfigures the re-simulation scheduler, swaps cache policies,
// registers and retires simulation contexts and drains/resumes them —
// all on the live daemon, without a restart. Every method honors its
// context for deadlines and cancellation.
type Admin struct {
	c *Client
}

// Admin returns the control-plane view of the connection.
func (c *Client) Admin() *Admin { return &Admin{c: c} }

// SchedConfig mirrors the daemon's re-simulation scheduler policy:
// request coalescing, priority-ordered queueing and the global node
// budget (0 = unlimited).
type SchedConfig = netproto.SchedInfo

// SchedUpdate is a partial scheduler reconfiguration: nil fields keep
// the daemon's current value.
type SchedUpdate = netproto.SchedSetBody

// SchedConfig reads the scheduler policy in effect.
func (a *Admin) SchedConfig(ctx context.Context) (SchedConfig, error) {
	resp, err := a.c.callCtx(ctx, netproto.OpSchedGet, nil)
	if err != nil {
		return SchedConfig{}, err
	}
	if resp.Sched == nil {
		return SchedConfig{}, &Error{Op: netproto.OpSchedGet, Msg: "daemon sent no scheduler config"}
	}
	return *resp.Sched, nil
}

// SetSchedConfig applies a partial scheduler reconfiguration and returns
// the resulting policy. The daemon applies it at the next admission
// boundary: queued jobs are re-ordered, running simulations keep the
// capacity they were admitted with. The preemption/fairness fields ride
// the "preempt" capability: against a daemon that does not advertise it,
// sending them would be silently ignored (unknown JSON fields), so the
// call fails client-side with CodeUnsupported instead.
func (a *Admin) SetSchedConfig(ctx context.Context, upd SchedUpdate) (SchedConfig, error) {
	if (upd.PreemptPolicy != nil || upd.DRRQuantum != nil) && !a.c.HasCapability(netproto.CapPreempt) {
		return SchedConfig{}, &Error{Code: netproto.CodeUnsupported, Op: netproto.OpSchedSet,
			Msg: "daemon does not advertise the preempt capability; preempt_policy/drr_quantum would be silently ignored"}
	}
	if (upd.PreemptSunkCost != nil || upd.PreemptGuided != nil || upd.DemandJoin != nil) &&
		!a.c.HasCapability(netproto.CapAutoscale) {
		return SchedConfig{}, &Error{Code: netproto.CodeUnsupported, Op: netproto.OpSchedSet,
			Msg: "daemon does not advertise the autoscale capability; preempt_sunk_cost/preempt_guided/demand_join would be silently ignored"}
	}
	resp, err := a.c.callCtx(ctx, netproto.OpSchedSet, upd)
	if err != nil {
		return SchedConfig{}, err
	}
	if resp.Sched == nil {
		return SchedConfig{}, &Error{Op: netproto.OpSchedSet, Msg: "daemon sent no scheduler config"}
	}
	return *resp.Sched, nil
}

// SetCachePolicy swaps a context's cache replacement scheme live; the
// daemon rebuilds the new policy from the resident set, so nothing is
// evicted by the swap itself.
func (a *Admin) SetCachePolicy(ctx context.Context, ctxName, policy string) error {
	_, err := a.c.callCtx(ctx, netproto.OpCachePolicySet,
		netproto.CachePolicyBody{Context: ctxName, Policy: policy})
	return err
}

// RegisterContext adds a simulation context to the running daemon. With
// initialSim the daemon runs the initial simulation first (restart files
// + original checksums), so the context is usable the moment the call
// returns.
func (a *Admin) RegisterContext(ctx context.Context, mc *model.Context, policy string, initialSim bool) error {
	_, err := a.c.callCtx(ctx, netproto.OpCtxRegister,
		netproto.CtxRegisterBody{Context: mc, Policy: policy, InitialSim: initialSim})
	return err
}

// DeregisterContext removes a drained context. The daemon refuses with
// CodeBusy while references, waiters or simulations are live — drain
// first and retry once the workload has emptied.
func (a *Admin) DeregisterContext(ctx context.Context, name string) error {
	_, err := a.c.callCtx(ctx, netproto.OpCtxDeregister, netproto.CtxBody{Context: name})
	return err
}

// Drain stops admitting new opens and prefetches for a context; running
// work completes and releases still land.
func (a *Admin) Drain(ctx context.Context, name string) error {
	_, err := a.c.callCtx(ctx, netproto.OpDrain, netproto.CtxBody{Context: name})
	return err
}

// Resume lifts a drain.
func (a *Admin) Resume(ctx context.Context, name string) error {
	_, err := a.c.callCtx(ctx, netproto.OpResume, netproto.CtxBody{Context: name})
	return err
}

// Peers lists the daemon's (or router's) federation links: ring members
// seen from a router, outbound bridge connections and inbound fed-watch
// sessions seen from a daemon. An empty list means the endpoint is not
// federated.
func (a *Admin) Peers(ctx context.Context) ([]netproto.PeerInfo, error) {
	resp, err := a.c.callCtx(ctx, netproto.OpPeers, nil)
	if err != nil {
		return nil, err
	}
	return resp.Peers, nil
}

// ReportAutoscale records an autoscale controller heartbeat on the
// daemon: attachment state, armed policies, and any decisions taken
// since the previous report. The daemon keeps a bounded ring surfaced by
// AutoscaleStatus (simfs-ctl health). Rides the "autoscale" capability.
func (a *Admin) ReportAutoscale(ctx context.Context, report netproto.AutoscaleReportBody) error {
	if !a.c.HasCapability(netproto.CapAutoscale) {
		return &Error{Code: netproto.CodeUnsupported, Op: netproto.OpAutoscaleReport,
			Msg: "daemon does not advertise the autoscale capability"}
	}
	_, err := a.c.callCtx(ctx, netproto.OpAutoscaleReport, report)
	return err
}

// AutoscaleStatus reads the daemon's autoscale ledger: whether a
// controller is attached, which policies it armed, and its recent
// decisions (oldest first).
func (a *Admin) AutoscaleStatus(ctx context.Context) (netproto.AutoscaleInfo, error) {
	if !a.c.HasCapability(netproto.CapAutoscale) {
		return netproto.AutoscaleInfo{}, &Error{Code: netproto.CodeUnsupported, Op: netproto.OpAutoscaleStatus,
			Msg: "daemon does not advertise the autoscale capability"}
	}
	resp, err := a.c.callCtx(ctx, netproto.OpAutoscaleStatus, nil)
	if err != nil {
		return netproto.AutoscaleInfo{}, err
	}
	if resp.Autoscale == nil {
		return netproto.AutoscaleInfo{}, &Error{Op: netproto.OpAutoscaleStatus, Msg: "daemon sent no autoscale status"}
	}
	return *resp.Autoscale, nil
}

// ResetQuarantine clears the re-simulation failure ledger of a context
// ("" = every context), closing open circuit breakers so demand opens
// launch fresh re-simulations again — the operator override once the
// underlying fault (full file system, broken module environment) is
// fixed before the cooldown elapses. It returns how many quarantined
// intervals were released.
func (a *Admin) ResetQuarantine(ctx context.Context, name string) (int, error) {
	resp, err := a.c.callCtx(ctx, netproto.OpQuarantineReset, netproto.CtxBody{Context: name})
	if err != nil {
		return 0, err
	}
	return resp.Count, nil
}
