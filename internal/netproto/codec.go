package netproto

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Codec encodes and decodes length-prefixed protocol frames. Both ends
// of a connection start on JSON (the hello exchange is always JSON) and
// may switch to Binary right after a successful CapBinary negotiation.
//
// EncodeFrame writes the complete frame — 4-byte big-endian length plus
// payload — with a single Write call, so codecs can encode into a
// shared outgoing buffer without ever leaving a partial frame behind:
// marshal and oversize failures happen before any byte is written.
//
// DecodeFrame reads exactly one frame into v (*Envelope or *Response).
// A complete frame with an undecodable payload yields a recoverable
// *FrameError — the stream is still aligned and the caller may answer
// CodeFrame and keep reading. Oversize frames yield a non-recoverable
// *FrameError; header/payload I/O errors (EOF, truncation) pass through
// untouched.
type Codec interface {
	Name() string
	EncodeFrame(w io.Writer, v any) error
	DecodeFrame(r io.Reader, v any) error
}

// JSON is the protocol-v2 codec: every payload is a JSON document. It
// also frames the hello exchange of every connection regardless of what
// gets negotiated afterwards.
var JSON Codec = jsonCodec{}

// Binary is the protocol-v3 fast-path codec. Hot ops and the common
// response shape are encoded in a compact binary layout; everything
// else (admin ops, rich responses) falls back to JSON payloads inside
// the same frames. Decoders discriminate on the first payload byte:
// JSON always starts with '{', binary bodies never do.
var Binary Codec = binCodec{}

// framePool recycles encode/decode scratch buffers. Buffers that grew
// beyond maxPooledBuf (a large response or a MaxFrame-sized request) are
// dropped instead of pinning megabytes in the pool.
var framePool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

const maxPooledBuf = 64 << 10

func getBuf() *[]byte { return framePool.Get().(*[]byte) }

func putBuf(bp *[]byte) {
	if cap(*bp) <= maxPooledBuf {
		*bp = (*bp)[:0]
		framePool.Put(bp)
	}
}

// encodeJSON marshals v and writes it as one frame with a single Write.
// Envelopes built by NewEnvelope materialize their typed body here.
func encodeJSON(w io.Writer, v any) error {
	var op string
	var id uint64
	if env, ok := v.(Envelope); ok {
		op, id = env.Op, env.ID
		if env.Body == nil && env.val != nil {
			raw, err := json.Marshal(env.val)
			if err != nil {
				return &FrameError{Op: op, ID: id, Err: fmt.Errorf("marshal body: %w", err)}
			}
			env.Body = raw
			v = env
		}
	}
	payload, err := json.Marshal(v)
	if err != nil {
		return &FrameError{Op: op, ID: id, Err: fmt.Errorf("marshal: %w", err)}
	}
	if len(payload) > MaxFrame {
		return &FrameError{Op: op, ID: id, Err: fmt.Errorf("frame of %d bytes exceeds limit", len(payload))}
	}
	bp := getBuf()
	buf := append((*bp)[:0], 0, 0, 0, 0)
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	buf = append(buf, payload...)
	_, werr := w.Write(buf)
	*bp = buf
	putBuf(bp)
	return werr
}

// finishFrame stamps the length header into a frame built in buf
// (payload starts at offset 4) and writes it with a single Write.
func finishFrame(w io.Writer, bp *[]byte, buf []byte, op string, id uint64) error {
	*bp = buf
	defer putBuf(bp)
	if len(buf)-4 > MaxFrame {
		return &FrameError{Op: op, ID: id, Err: fmt.Errorf("frame of %d bytes exceeds limit", len(buf)-4)}
	}
	binary.BigEndian.PutUint32(buf, uint32(len(buf)-4))
	_, err := w.Write(buf)
	return err
}

// readPayload reads one frame header and payload into a pooled buffer.
// The caller must putBuf the returned buffer when err is nil.
func readPayload(r io.Reader) (*[]byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, nil, &FrameError{Err: fmt.Errorf("incoming frame of %d bytes exceeds limit", n)}
	}
	bp := getBuf()
	buf := *bp
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	} else {
		buf = buf[:n]
	}
	*bp = buf
	if _, err := io.ReadFull(r, buf); err != nil {
		putBuf(bp)
		return nil, nil, err
	}
	return bp, buf, nil
}

func unmarshalJSON(payload []byte, v any) error {
	if err := json.Unmarshal(payload, v); err != nil {
		return &FrameError{Recoverable: true, Err: fmt.Errorf("unmarshal: %w", err)}
	}
	return nil
}

// FrameBuffered reports whether r already holds at least one complete
// frame in its buffer. The server's read loop uses it to keep
// accumulating replies to a pipelined batch, flushing only when the
// next read would actually block; checking for a complete frame (not
// just any buffered bytes) keeps a partial frame from deadlocking both
// sides against each other.
func FrameBuffered(r *bufio.Reader) bool {
	if r.Buffered() < 4 {
		return false
	}
	hdr, err := r.Peek(4)
	if err != nil {
		return false
	}
	return int(binary.BigEndian.Uint32(hdr)) <= r.Buffered()-4
}

// jsonCodec frames JSON payloads (protocol v2).

type jsonCodec struct{}

func (jsonCodec) Name() string { return "json" }

func (jsonCodec) EncodeFrame(w io.Writer, v any) error { return encodeJSON(w, v) }

func (jsonCodec) DecodeFrame(r io.Reader, v any) error {
	bp, payload, err := readPayload(r)
	if err != nil {
		return err
	}
	defer putBuf(bp)
	return unmarshalJSON(payload, v)
}

// Binary wire format (protocol v3). Requests:
//
//	[opcode u8] [id uvarint] [per-op body]
//
//	open/wait/release/estwait/bitrep:   [context string] [file string]
//	acquire/subscribe/prefetch:         [context string] [count uvarint] [file string]...
//	unsubscribe:                        [sub-id uvarint]
//	ping:                               (no body)
//
// Responses:
//
//	[0xB1] [id uvarint] [flags1 u8] [flags2 u8] [optional fields]
//
//	flags1: OK, Available, Ready, Flag, Done, hasFile, hasEst, hasCount
//	flags2: hasErr, hasRetry
//	fields in order when flagged: file string, est-wait uvarint,
//	count uvarint, code string, err string, attempts uvarint,
//	retry-after-ns uvarint
//
// A string is [length uvarint][bytes]. Opcodes and the response tag
// never collide with '{' (0x7B), the first byte of every JSON payload.
// Trailing bytes after a well-formed body are ignored (room for
// forward-compatible extensions); any truncation inside the body is a
// recoverable FrameError since the frame itself was fully consumed.
const (
	binOpen        byte = 1
	binWait        byte = 2
	binRelease     byte = 3
	binEstWait     byte = 4
	binBitrep      byte = 5
	binAcquire     byte = 6
	binSubscribe   byte = 7
	binPrefetch    byte = 8
	binUnsubscribe byte = 9
	binPing        byte = 10

	binResponseTag byte = 0xB1
)

var binOpcodes = map[string]byte{
	OpOpen:        binOpen,
	OpWait:        binWait,
	OpRelease:     binRelease,
	OpEstWait:     binEstWait,
	OpBitrep:      binBitrep,
	OpAcquire:     binAcquire,
	OpSubscribe:   binSubscribe,
	OpPrefetch:    binPrefetch,
	OpUnsubscribe: binUnsubscribe,
	OpPing:        binPing,
}

var binOpNames = [...]string{
	binOpen:        OpOpen,
	binWait:        OpWait,
	binRelease:     OpRelease,
	binEstWait:     OpEstWait,
	binBitrep:      OpBitrep,
	binAcquire:     OpAcquire,
	binSubscribe:   OpSubscribe,
	binPrefetch:    OpPrefetch,
	binUnsubscribe: OpUnsubscribe,
	binPing:        OpPing,
}

// Response flag bits.
const (
	rfOK byte = 1 << iota
	rfAvailable
	rfReady
	rfFlag
	rfDone
	rfFile
	rfEst
	rfCount
)

const (
	rf2Err byte = 1 << 0
	// rf2Retry flags the quarantine details of a failed response:
	// attempts uvarint + retry-after-ns uvarint, appended after the
	// error strings. Decoders that predate the flag skip the extra
	// bytes via the trailing-bytes rule.
	rf2Retry byte = 1 << 1
)

type binCodec struct{}

func (binCodec) Name() string { return "binary" }

func (binCodec) EncodeFrame(w io.Writer, v any) error {
	switch m := v.(type) {
	case Envelope:
		bp := getBuf()
		if buf, ok := appendBinEnvelope(append((*bp)[:0], 0, 0, 0, 0), m); ok {
			return finishFrame(w, bp, buf, m.Op, m.ID)
		}
		putBuf(bp)
	case Response:
		bp := getBuf()
		if buf, ok := appendBinResponse(append((*bp)[:0], 0, 0, 0, 0), m); ok {
			return finishFrame(w, bp, buf, "", m.ID)
		}
		putBuf(bp)
	}
	// Cold-path op, rich response, or a foreign type: JSON payload
	// inside the same framing.
	return encodeJSON(w, v)
}

func (binCodec) DecodeFrame(r io.Reader, v any) error {
	bp, payload, err := readPayload(r)
	if err != nil {
		return err
	}
	defer putBuf(bp)
	if len(payload) == 0 || payload[0] == '{' {
		return unmarshalJSON(payload, v)
	}
	switch dst := v.(type) {
	case *Envelope:
		return decodeBinEnvelope(payload, dst)
	case *Response:
		return decodeBinResponse(payload, dst)
	default:
		return &FrameError{Recoverable: true, Err: fmt.Errorf("binary frame for JSON-only target %T", v)}
	}
}

// appendBinEnvelope appends env's binary encoding to buf. ok is false
// when the op or body shape has no binary form (the caller falls back
// to JSON).
//
//simfs:sync FileBody
//simfs:sync FilesBody
//simfs:sync UnsubscribeBody
func appendBinEnvelope(buf []byte, env Envelope) ([]byte, bool) {
	code, known := binOpcodes[env.Op]
	if !known || env.Body != nil {
		// Pre-marshaled JSON bodies travel as JSON: re-encoding would
		// need a parse hop, defeating the point.
		return buf, false
	}
	start := len(buf)
	buf = append(buf, code)
	buf = binary.AppendUvarint(buf, env.ID)
	switch body := env.val.(type) {
	case FileBody:
		if code < binOpen || code > binBitrep {
			return buf[:start], false
		}
		buf = appendBinString(buf, body.Context)
		buf = appendBinString(buf, body.File)
	case FilesBody:
		if code != binAcquire && code != binSubscribe && code != binPrefetch {
			return buf[:start], false
		}
		buf = appendBinString(buf, body.Context)
		buf = binary.AppendUvarint(buf, uint64(len(body.Files)))
		for _, f := range body.Files {
			buf = appendBinString(buf, f)
		}
	case UnsubscribeBody:
		if code != binUnsubscribe {
			return buf[:start], false
		}
		buf = binary.AppendUvarint(buf, body.SubID)
	case nil:
		if code != binPing {
			return buf[:start], false
		}
	default:
		return buf[:start], false
	}
	return buf, true
}

// decodeBinEnvelope is appendBinEnvelope's inverse; the sync
// annotations keep both halves of the codec field-complete.
//
//simfs:sync FileBody
//simfs:sync FilesBody
//simfs:sync UnsubscribeBody
func decodeBinEnvelope(p []byte, env *Envelope) error {
	fail := func(msg string) error {
		return &FrameError{Recoverable: true, Err: fmt.Errorf("binary request: %s", msg)}
	}
	code := p[0]
	var op string
	if int(code) < len(binOpNames) {
		op = binOpNames[code]
	}
	if op == "" {
		return fail(fmt.Sprintf("unknown opcode %#x", code))
	}
	id, p, ok := getUvarint(p[1:])
	if !ok {
		return fail("truncated request id")
	}
	e := Envelope{ID: id, Op: op}
	switch {
	case code >= binOpen && code <= binBitrep:
		var b FileBody
		if b.Context, p, ok = getBinString(p); !ok {
			return fail("truncated context")
		}
		if b.File, p, ok = getBinString(p); !ok {
			return fail("truncated file")
		}
		e.val = b
	case code == binAcquire || code == binSubscribe || code == binPrefetch:
		var b FilesBody
		if b.Context, p, ok = getBinString(p); !ok {
			return fail("truncated context")
		}
		var n uint64
		if n, p, ok = getUvarint(p); !ok {
			return fail("truncated file count")
		}
		// Every file needs at least its length byte: a count beyond the
		// remaining payload cannot be honest, and must not size an
		// allocation.
		if n > uint64(len(p)) {
			return fail("file count exceeds payload")
		}
		b.Files = make([]string, 0, n)
		for i := uint64(0); i < n; i++ {
			var f string
			if f, p, ok = getBinString(p); !ok {
				return fail("truncated file list")
			}
			b.Files = append(b.Files, f)
		}
		e.val = b
	case code == binUnsubscribe:
		var b UnsubscribeBody
		if b.SubID, p, ok = getUvarint(p); !ok {
			return fail("truncated sub id")
		}
		e.val = b
	}
	_ = p // trailing bytes are ignored for forward compatibility
	*env = e
	return nil
}

// appendBinResponse appends resp's binary encoding to buf. ok is false
// for rich responses (names/info/stats/proto/sched/peers), which stay
// JSON.
func appendBinResponse(buf []byte, resp Response) ([]byte, bool) {
	if resp.Names != nil || resp.Info != nil || resp.Stats != nil ||
		resp.Proto != nil || resp.Sched != nil || resp.Peers != nil ||
		resp.Autoscale != nil {
		return buf, false
	}
	var f1, f2 byte
	if resp.OK {
		f1 |= rfOK
	}
	if resp.Available {
		f1 |= rfAvailable
	}
	if resp.Ready {
		f1 |= rfReady
	}
	if resp.Flag {
		f1 |= rfFlag
	}
	if resp.Done {
		f1 |= rfDone
	}
	if resp.File != "" {
		f1 |= rfFile
	}
	if resp.EstWaitNs != 0 {
		f1 |= rfEst
	}
	if resp.Count != 0 {
		f1 |= rfCount
	}
	if resp.Code != "" || resp.Err != "" {
		f2 |= rf2Err
	}
	if resp.Attempts != 0 || resp.RetryAfterNs != 0 {
		f2 |= rf2Retry
	}
	buf = append(buf, binResponseTag)
	buf = binary.AppendUvarint(buf, resp.ID)
	buf = append(buf, f1, f2)
	if f1&rfFile != 0 {
		buf = appendBinString(buf, resp.File)
	}
	if f1&rfEst != 0 {
		buf = binary.AppendUvarint(buf, uint64(resp.EstWaitNs))
	}
	if f1&rfCount != 0 {
		buf = binary.AppendUvarint(buf, uint64(resp.Count))
	}
	if f2&rf2Err != 0 {
		buf = appendBinString(buf, string(resp.Code))
		buf = appendBinString(buf, resp.Err)
	}
	if f2&rf2Retry != 0 {
		buf = binary.AppendUvarint(buf, uint64(resp.Attempts))
		buf = binary.AppendUvarint(buf, uint64(resp.RetryAfterNs))
	}
	return buf, true
}

func decodeBinResponse(p []byte, resp *Response) error {
	fail := func(msg string) error {
		return &FrameError{Recoverable: true, Err: fmt.Errorf("binary response: %s", msg)}
	}
	if p[0] != binResponseTag {
		return fail(fmt.Sprintf("tag %#x is not a response", p[0]))
	}
	id, p, ok := getUvarint(p[1:])
	if !ok {
		return fail("truncated response id")
	}
	if len(p) < 2 {
		return fail("truncated flags")
	}
	f1, f2 := p[0], p[1]
	p = p[2:]
	r := Response{
		ID:        id,
		OK:        f1&rfOK != 0,
		Available: f1&rfAvailable != 0,
		Ready:     f1&rfReady != 0,
		Flag:      f1&rfFlag != 0,
		Done:      f1&rfDone != 0,
	}
	if f1&rfFile != 0 {
		if r.File, p, ok = getBinString(p); !ok {
			return fail("truncated file")
		}
	}
	if f1&rfEst != 0 {
		var est uint64
		if est, p, ok = getUvarint(p); !ok {
			return fail("truncated est wait")
		}
		r.EstWaitNs = int64(est)
	}
	if f1&rfCount != 0 {
		var cnt uint64
		if cnt, p, ok = getUvarint(p); !ok {
			return fail("truncated count")
		}
		r.Count = int(cnt)
	}
	if f2&rf2Err != 0 {
		var code string
		if code, p, ok = getBinString(p); !ok {
			return fail("truncated error code")
		}
		r.Code = ErrCode(code)
		if r.Err, p, ok = getBinString(p); !ok {
			return fail("truncated error text")
		}
	}
	if f2&rf2Retry != 0 {
		var v uint64
		if v, p, ok = getUvarint(p); !ok {
			return fail("truncated attempts")
		}
		r.Attempts = int(v)
		if v, p, ok = getUvarint(p); !ok {
			return fail("truncated retry-after")
		}
		r.RetryAfterNs = int64(v)
	}
	_ = p // trailing bytes are ignored for forward compatibility
	*resp = r
	return nil
}

func getUvarint(p []byte) (uint64, []byte, bool) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, p, false
	}
	return v, p[n:], true
}

func appendBinString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func getBinString(p []byte) (string, []byte, bool) {
	n, p, ok := getUvarint(p)
	if !ok || n > uint64(len(p)) {
		return "", p, false
	}
	return string(p[:n]), p[n:], true
}
