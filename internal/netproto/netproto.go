// Package netproto defines the wire protocol between DVLib clients and the
// DV daemon (paper Sec. III: "Dashed arrows are control messages
// (TCP/IP)"): length-prefixed frames over a persistent TCP connection.
//
// # Protocol versions 2 and 3
//
// A connection starts with a hello handshake: the client sends an
// OpHello envelope carrying its protocol version, client name and
// requested capability flags; the daemon answers with the negotiated
// version (the highest both sides speak) and its capabilities, or with a
// CodeVersion error when no common version exists. Every subsequent
// client frame is an Envelope — a fixed header (client-assigned request
// ID plus operation name) and a typed per-op body. Responses echo the
// ID, which lets the daemon deliver asynchronous notifications
// (file-ready events for wait/acquire/subscribe) over the same
// connection.
//
// Frames travel through a Codec. In version 2 every frame payload is
// JSON (the JSON codec). Version 3 adds a binary fast path: when both
// sides advertise CapBinary in the hello exchange — which itself is
// always JSON — the connection switches to the Binary codec for every
// frame after the handshake. The binary codec encodes the hot ops
// (open/wait/release/acquire/estwait/bitrep/subscribe/prefetch/
// unsubscribe/ping) and the common response shape without any JSON hop;
// cold-path ops (admin, control plane) and rich responses (listings,
// stats, scheduler info) stay JSON inside the binary connection's
// frames — the decoder discriminates on the first payload byte, which
// is '{' for JSON and never '{' for binary bodies.
//
// Errors are structured: a failing Response carries a machine-readable
// Code alongside the human-readable Err text, so clients dispatch on
// CodeNoSuchContext or CodeBusy instead of string-matching error
// messages.
//
// The pre-versioned protocol (a single untyped Request bag, no
// handshake) is retained as LegacyRequest for version-skew detection: a
// v1 client's first frame parses as an Envelope whose op is not
// OpHello, which the daemon answers with a CodeVersion error before
// closing.
package netproto

import (
	"encoding/json"
	"fmt"

	"simfs/internal/model"
)

// ProtoVersion is the protocol version this build speaks. MinProtoVersion
// is the oldest version the daemon still accepts in a hello; peers in
// [MinProtoVersion, ProtoVersion] negotiate down to the smaller of the
// two versions, anything else is rejected with CodeVersion. Version 3
// adds the CapBinary fast path; a negotiated version of 2 pins the
// connection to JSON frames.
const (
	ProtoVersion    = 3
	MinProtoVersion = 2
)

// MaxFrame bounds a single frame to keep a misbehaving peer from forcing
// unbounded allocations.
const MaxFrame = 1 << 20

// Operations understood by the daemon.
const (
	// OpHello is the mandatory first frame of a connection: version and
	// capability negotiation plus the client's name.
	OpHello = "hello"

	OpPing        = "ping"
	OpContexts    = "contexts" // list context names
	OpContextInfo = "ctxinfo"  // fetch one context's parameters
	OpOpen        = "open"     // non-blocking open (Table I: open)
	OpWait        = "wait"     // subscribe to file availability
	OpRelease     = "release"  // drop a reference (Table I: close)
	OpAcquire     = "acquire"  // SIMFS_Acquire: multi-file subscription
	OpEstWait     = "estwait"  // estimated wait for a file
	OpBitrep      = "bitrep"   // SIMFS_Bitrep
	OpRegSum      = "regsum"   // register an original checksum
	OpStats       = "stats"    // context counters
	OpRescan      = "rescan"   // rescan the storage area
	OpPrefetch    = "prefetch" // guided prefetching hint

	// OpSubscribe registers a notification-only subscription: the daemon
	// sends one frame per file as it becomes ready (or fails), then a
	// final Done frame. Unlike wait/acquire it takes no references; the
	// files must already be resident or promised (opened by someone).
	OpSubscribe = "subscribe"
	// OpUnsubscribe cancels an active subscription; SubID names the
	// subscribe request's ID.
	OpUnsubscribe = "unsubscribe"

	// Control-plane (admin) operations, gated by CapAdmin.

	// OpSchedGet reads the live re-simulation scheduler configuration.
	OpSchedGet = "sched-get"
	// OpSchedSet reconfigures the scheduler on the live daemon; unset
	// fields keep their current value. The change applies at the next
	// admission decision.
	OpSchedSet = "sched-set"
	// OpCachePolicySet swaps a context's cache replacement scheme live,
	// rebuilding the new policy from the resident set.
	OpCachePolicySet = "cache-policy-set"
	// OpCtxRegister adds a simulation context to the running daemon.
	OpCtxRegister = "ctx-register"
	// OpCtxDeregister removes a drained context from the daemon.
	OpCtxDeregister = "ctx-deregister"
	// OpDrain stops admitting new opens/prefetches for a context;
	// running work completes and releases still land.
	OpDrain = "drain"
	// OpResume lifts a drain.
	OpResume = "resume"
	// OpQuarantineReset clears the re-simulation quarantine ledger of a
	// context ("" = all contexts), re-enabling launches for intervals the
	// circuit breaker had opened.
	OpQuarantineReset = "quarantine-reset"
	// OpFedWatch is the daemon↔daemon variant of subscribe used by the
	// federation bridge (FilesBody payload, per-file reply frames,
	// canceled with OpUnsubscribe). Unlike subscribe it stays pending for
	// files nobody has promised yet — the remote producer may not have
	// been asked — and it never recurses into another remote watch, so
	// peer meshes cannot form forwarding loops.
	OpFedWatch = "fed-watch"
	// OpPeers lists the federation links of a daemon or router: ring
	// members, outbound bridge connections, and inbound peer watch
	// sessions with their ledger counters.
	OpPeers = "peers"
	// OpAutoscaleReport records an autoscale controller's armed policies
	// and latest decisions on the daemon (capability "autoscale"): the
	// controller runs out-of-process (simfs-ctl autoscale), but every
	// operator asking the daemon for health should see what last steered
	// its config. Active=false detaches the controller; the decision log
	// is retained.
	OpAutoscaleReport = "autoscale-report"
	// OpAutoscaleStatus reads the controller attachment state and the
	// last recorded decisions.
	OpAutoscaleStatus = "autoscale-status"
)

// Capability flags advertised in the hello handshake.
const (
	// CapAdmin marks the control-plane operations (sched-*,
	// cache-policy-set, ctx-*, drain/resume).
	CapAdmin = "admin"
	// CapWatch marks the notification-only subscribe/unsubscribe pair.
	CapWatch = "watch"
	// CapPreempt marks the preemption/fairness scheduler knobs
	// (SchedSetBody.PreemptPolicy / DRRQuantum). Clients must not send
	// them to a daemon that does not advertise the capability: an older
	// daemon would silently drop the unknown JSON fields, acknowledging
	// a reconfiguration it never applied.
	CapPreempt = "preempt"
	// CapBinary marks the protocol-v3 binary fast path. When the client
	// requests it in its hello and the daemon advertises it back, both
	// sides switch to the Binary codec for every frame after the (always
	// JSON) hello exchange.
	CapBinary = "bin"
	// CapFed marks the federation operations (fed-watch, peers). Daemon↔
	// daemon and router↔daemon links reuse the ordinary hello handshake
	// and gate cross-daemon subscriptions on this flag.
	CapFed = "fed"
	// CapAutoscale marks the autoscale surface: the
	// autoscale-report/autoscale-status ops and the SchedSetBody
	// sunk-cost/guided-eligibility/demand-join knobs that shipped with
	// them. Like CapPreempt, clients must not send those fields to a
	// daemon that does not advertise the capability — an older daemon
	// would silently drop the unknown JSON fields.
	CapAutoscale = "autoscale"
)

// ErrCode is a machine-readable error class. A failed Response carries
// one so clients dispatch on the code instead of matching error text.
type ErrCode string

const (
	// CodeVersion: protocol handshake failed (missing hello, or no
	// common version).
	CodeVersion ErrCode = "version_mismatch"
	// CodeNoSuchContext: the named simulation context is not registered.
	CodeNoSuchContext ErrCode = "no_such_context"
	// CodeBadRequest: the request was malformed (wrong body, bad file
	// name, out-of-range step).
	CodeBadRequest ErrCode = "bad_request"
	// CodeUnsupported: the operation is unknown or not offered by this
	// daemon (e.g. ctx-register without a registrar).
	CodeUnsupported ErrCode = "unsupported"
	// CodeBusy: the context is draining or still holds references /
	// running simulations; retry after the workload drains.
	CodeBusy ErrCode = "busy"
	// CodeNotProduced: the file is neither on disk nor promised by a
	// re-simulation; open or acquire it first.
	CodeNotProduced ErrCode = "not_produced"
	// CodeFailed: a re-simulation failed or was killed. When the failure
	// exhausted the retry budget and quarantined the interval, the
	// response also carries Attempts and RetryAfterNs.
	CodeFailed ErrCode = "failed"
	// CodeDraining: the daemon is shutting down; in-flight waits and
	// subscriptions are released with this code instead of being dropped
	// mid-frame. Reconnect and retry against the replacement daemon.
	CodeDraining ErrCode = "draining"
	// CodeFrame: the peer sent an undecodable frame.
	CodeFrame ErrCode = "bad_frame"
	// CodeInternal: the daemon hit an unexpected internal error.
	CodeInternal ErrCode = "internal"
)

// Envelope is the fixed header of every client→daemon frame: a
// client-assigned request ID, the operation name, and the typed per-op
// body (absent for bodyless ops like ping).
//
// The body lives in one of two places. Envelopes built by NewEnvelope
// carry the typed value (val) and marshal it lazily at encode time, so
// the binary codec serializes it directly with no JSON hop; envelopes
// decoded from JSON frames carry the raw bytes (Body). Decode serves
// both. When both are set, Body wins — it is what actually crossed the
// wire.
type Envelope struct {
	ID   uint64          `json:"id"`
	Op   string          `json:"op"`
	Body json.RawMessage `json:"body,omitempty"`

	// val is the typed body of a locally built or binary-decoded
	// envelope; nil for bodyless ops and JSON-decoded frames.
	val any
}

// NewEnvelope wraps body into an envelope for op. A nil body yields a
// bodyless envelope. The body is kept as a typed value and serialized at
// encode time by the connection's codec; the error return is retained
// for call-site compatibility and is always nil (marshal failures
// surface from EncodeFrame, wrapped with the op and ID).
func NewEnvelope(id uint64, op string, body any) (Envelope, error) {
	return Envelope{ID: id, Op: op, val: body}, nil
}

// Decode unmarshals the envelope's body into v, wrapping failures with
// the offending op and request ID. A missing body decodes only into
// nothing: ops with required bodies treat it as an error. Binary-decoded
// envelopes hand their typed body over without a JSON round-trip when v
// matches the wire type.
func (e Envelope) Decode(v any) error {
	if len(e.Body) == 0 && e.val != nil {
		switch src := e.val.(type) {
		case FileBody:
			if dst, ok := v.(*FileBody); ok {
				*dst = src
				return nil
			}
		case FilesBody:
			if dst, ok := v.(*FilesBody); ok {
				*dst = src
				return nil
			}
		case UnsubscribeBody:
			if dst, ok := v.(*UnsubscribeBody); ok {
				*dst = src
				return nil
			}
		}
		// Mismatched or uncommon target type: fall back to a JSON
		// round-trip so local (non-wire) envelopes decode like remote
		// ones.
		raw, err := json.Marshal(e.val)
		if err != nil {
			return &FrameError{Op: e.Op, ID: e.ID, Recoverable: true, Err: fmt.Errorf("decode body: %w", err)}
		}
		if err := json.Unmarshal(raw, v); err != nil {
			return &FrameError{Op: e.Op, ID: e.ID, Recoverable: true, Err: fmt.Errorf("decode body: %w", err)}
		}
		return nil
	}
	if len(e.Body) == 0 {
		return &FrameError{Op: e.Op, ID: e.ID, Recoverable: true, Err: fmt.Errorf("missing request body")}
	}
	if err := json.Unmarshal(e.Body, v); err != nil {
		return &FrameError{Op: e.Op, ID: e.ID, Recoverable: true, Err: fmt.Errorf("decode body: %w", err)}
	}
	return nil
}

// Typed per-op request bodies.

// HelloBody opens a connection: protocol version, client name (the DV
// associates prefetch agents and reference counts with it) and the
// capabilities the client intends to use.
type HelloBody struct {
	Version int      `json:"version"`
	Client  string   `json:"client,omitempty"`
	Caps    []string `json:"caps,omitempty"`
}

// HelloInfo is the daemon's half of the handshake, echoed in the
// Response.Proto field: the negotiated version and the daemon's
// capability flags.
type HelloInfo struct {
	Version int      `json:"version"`
	Caps    []string `json:"caps,omitempty"`
}

// FileBody addresses one file of one context (open, wait, release,
// estwait, bitrep). Exhaustive: the binary codec pair must carry
// every field, or v3 clients silently lose data JSON clients keep.
//
//simfs:exhaustive
type FileBody struct {
	Context string `json:"context"`
	File    string `json:"file"`
}

// FilesBody addresses several files of one context (acquire, prefetch,
// subscribe).
//
//simfs:exhaustive
type FilesBody struct {
	Context string   `json:"context"`
	Files   []string `json:"files"`
}

// CtxBody addresses a whole context (ctxinfo, stats, rescan, drain,
// resume, ctx-deregister).
type CtxBody struct {
	Context string `json:"context"`
}

// ChecksumBody registers an original-output checksum (regsum).
type ChecksumBody struct {
	Context string `json:"context"`
	File    string `json:"file"`
	Sum     uint64 `json:"sum"`
}

// UnsubscribeBody cancels the subscription opened by request SubID.
//
//simfs:exhaustive
type UnsubscribeBody struct {
	SubID uint64 `json:"sub_id"`
}

// SchedSetBody reconfigures the live scheduler. Nil fields keep the
// current value, so a client can flip one knob without knowing the rest.
// PreemptPolicy and DRRQuantum are gated by the CapPreempt capability:
// send them only to a daemon that advertised it.
type SchedSetBody struct {
	Coalesce   *bool `json:"coalesce,omitempty"`
	Priorities *bool `json:"priorities,omitempty"`
	TotalNodes *int  `json:"total_nodes,omitempty"`
	// PreemptPolicy names the demand-over-prefetch preemption victim
	// policy: "off", "youngest" or "cheapest".
	PreemptPolicy *string `json:"preempt_policy,omitempty"`
	// DRRQuantum sets the per-client deficit-round-robin quantum in
	// output steps (0 = pure FIFO within a class).
	DRRQuantum *int `json:"drr_quantum,omitempty"`
	// PreemptSunkCost sets the sunk-cost guard threshold: a preemption
	// candidate whose completion fraction has reached it is spared
	// (0 = guard off; valid range [0, 1]). PreemptGuided widens victim
	// eligibility to guided-class prefetches. DemandJoin promotes a
	// queued prefetch job to demand class when a demand open lands in
	// its range. All three ride the "autoscale" capability.
	PreemptSunkCost *float64 `json:"preempt_sunk_cost,omitempty"`
	PreemptGuided   *bool    `json:"preempt_guided,omitempty"`
	DemandJoin      *bool    `json:"demand_join,omitempty"`
}

// SchedInfo mirrors the scheduler configuration on the wire (sched-get
// and sched-set responses). Exhaustive: the server's schedInfo echo
// must mirror every knob, or a reconfiguration could land without
// being observable.
//
//simfs:exhaustive
type SchedInfo struct {
	Coalesce        bool    `json:"coalesce"`
	Priorities      bool    `json:"priorities"`
	TotalNodes      int     `json:"total_nodes"`
	PreemptPolicy   string  `json:"preempt_policy,omitempty"`
	DRRQuantum      int     `json:"drr_quantum,omitempty"`
	PreemptSunkCost float64 `json:"preempt_sunk_cost,omitempty"`
	PreemptGuided   bool    `json:"preempt_guided,omitempty"`
	DemandJoin      bool    `json:"demand_join,omitempty"`
}

// CachePolicyBody swaps a context's replacement scheme.
type CachePolicyBody struct {
	Context string `json:"context"`
	Policy  string `json:"policy"`
}

// CtxRegisterBody adds a context at runtime. InitialSim asks the daemon
// to run the initial simulation (restart files + checksum registration)
// before the context serves clients.
type CtxRegisterBody struct {
	Context    *model.Context `json:"context"`
	Policy     string         `json:"policy"`
	InitialSim bool           `json:"initial_sim,omitempty"`
}

// ContextInfo carries the context parameters a client needs for
// transparent mode: where the storage area lives and how files are named.
type ContextInfo struct {
	Name        string `json:"name"`
	StorageDir  string `json:"storage_dir"`
	FilePrefix  string `json:"file_prefix"`
	FileSuffix  string `json:"file_suffix"`
	DeltaD      int    `json:"delta_d"`
	DeltaR      int    `json:"delta_r"`
	Timesteps   int    `json:"timesteps"`
	OutputBytes int64  `json:"output_bytes"`
	// Policy is the cache replacement scheme currently in effect.
	Policy string `json:"policy,omitempty"`
	// Draining reports whether the context currently refuses new work.
	Draining bool `json:"draining,omitempty"`
}

// Stats mirrors core.CtxStats on the wire, plus the context's live
// control-plane state and the daemon-global scheduler counters.
// Exhaustive: the federation router's mergeStats must fold every
// field, or a counter added here silently vanishes at the fan-out
// boundary (the bug class PR 9 fixed by hand).
//
//simfs:exhaustive
type Stats struct {
	Opens            int64 `json:"opens"`
	Hits             int64 `json:"hits"`
	Misses           int64 `json:"misses"`
	Restarts         int64 `json:"restarts"`
	DemandRestarts   int64 `json:"demand_restarts"`
	PrefetchLaunches int64 `json:"prefetch_launches"`
	DroppedPrefetch  int64 `json:"dropped_prefetch"`
	StepsProduced    int64 `json:"steps_produced"`
	Evictions        int64 `json:"evictions"`
	Kills            int64 `json:"kills"`
	Failures         int64 `json:"failures"`
	PollutionResets  int64 `json:"pollution_resets"`

	// Live control-plane state of the context: whether it is draining
	// (refusing new opens/prefetches) and the cache replacement scheme
	// currently in effect — the knobs `drain`/`resume` and
	// `cache-policy-set` flip, reported back so operators can verify a
	// reconfiguration landed.
	Draining    bool   `json:"draining,omitempty"`
	CachePolicy string `json:"cache_policy,omitempty"`

	// Shard-lock counters of the context (sharded Virtualizer): total
	// lock acquisitions, how many contended, and the cumulative wait.
	LockAcquisitions uint64 `json:"lock_acquisitions,omitempty"`
	LockContended    uint64 `json:"lock_contended,omitempty"`
	LockWaitNs       int64  `json:"lock_wait_ns,omitempty"`

	// Re-simulation scheduler counters (internal/sched). The scheduler is
	// shared by all contexts of the daemon, so these are DV-global: the
	// current queue depth, how many requests were coalesced into queued
	// jobs, how many prefetches were dropped at capacity or canceled
	// before launch, and the cumulative enqueue→admission wait per
	// priority class.
	SchedQueueDepth   int    `json:"sched_queue_depth,omitempty"`
	SchedCoalesced    uint64 `json:"sched_coalesced,omitempty"`
	SchedDropped      uint64 `json:"sched_dropped,omitempty"`
	SchedCanceled     uint64 `json:"sched_canceled,omitempty"`
	SchedDemandWaitNs int64  `json:"sched_demand_wait_ns,omitempty"`
	SchedGuidedWaitNs int64  `json:"sched_guided_wait_ns,omitempty"`
	SchedAgentWaitNs  int64  `json:"sched_agent_wait_ns,omitempty"`
	// Preemption and per-client fairness counters: running agent
	// prefetches killed for node-blocked demand work, queued prefetch
	// jobs promoted to demand class by a joining open, DRR credit rounds
	// granted, and pops where quota fairness overrode FIFO order.
	SchedPreempted     uint64 `json:"sched_preempted,omitempty"`
	SchedPromoted      uint64 `json:"sched_promoted,omitempty"`
	SchedQuotaRounds   uint64 `json:"sched_quota_rounds,omitempty"`
	SchedQuotaDeferred uint64 `json:"sched_quota_deferred,omitempty"`
	// SchedClientLoads is the daemon's cumulative per-client offered
	// load (output steps submitted to the scheduler). Monotone counters:
	// an autoscale controller diffs two stats samples to measure client
	// skew over a window. A router merging stats sums entries per
	// client.
	SchedClientLoads map[string]uint64 `json:"sched_client_loads,omitempty"`
	// Failure-ledger counters (this context's shard): failed
	// re-simulations retried with backoff, and intervals currently
	// quarantined by the circuit breaker.
	SchedRetries     uint64 `json:"sched_retries,omitempty"`
	SchedQuarantined uint64 `json:"sched_quarantined,omitempty"`

	// Ops carries per-operation service-time percentiles for the daemon's
	// dispatch path (internal/metrics log2 histograms: p50/p99 are bucket
	// upper bounds, exact to within 2x). A router answering stats merges
	// the owning daemons' entries, so these attribute where wire time is
	// spent across a federation.
	Ops []OpLatency `json:"op_latencies,omitempty"`
}

// OpLatency is one per-operation latency summary inside Stats.
type OpLatency struct {
	Op    string `json:"op"`
	Count uint64 `json:"count"`
	P50Ns int64  `json:"p50_ns"`
	P99Ns int64  `json:"p99_ns"`
}

// AutoscaleDecision is one autoscale controller actuation on the wire:
// what policy acted, what it did to the daemon's config, and why. AtNs
// is the controller's clock (wall time for simfs-ctl autoscale, virtual
// time for an in-process DES controller).
type AutoscaleDecision struct {
	AtNs   int64  `json:"at_ns"`
	Policy string `json:"policy"`
	Action string `json:"action"`
	Reason string `json:"reason,omitempty"`
}

// AutoscaleReportBody is an autoscale controller's heartbeat to the
// daemon (autoscale-report): the attachment state, the armed policy
// names, and the decisions taken since the last report. The daemon
// keeps a bounded ring of recent decisions for health queries.
type AutoscaleReportBody struct {
	Active    bool                `json:"active"`
	Policies  []string            `json:"policies,omitempty"`
	Decisions []AutoscaleDecision `json:"decisions,omitempty"`
}

// AutoscaleInfo is the daemon's controller ledger (autoscale-status
// responses): whether a controller is attached, which client it is,
// what policies it armed, and the last recorded decisions
// (oldest-first).
type AutoscaleInfo struct {
	Active    bool                `json:"active"`
	Source    string              `json:"source,omitempty"`
	Policies  []string            `json:"policies,omitempty"`
	Decisions []AutoscaleDecision `json:"decisions,omitempty"`
}

// PeerInfo describes one federation link in a peers response. Role is
// "member" for a router's ring entries, "out" for a daemon's outbound
// bridge connections and "in" for inbound peer watch sessions. Topics
// counts live watch topics on the link; Events counts notify events
// forwarded over it (for "out" links Events is the bridge-wide total of
// events accepted from any peer, since duplicates are collapsed before
// attribution).
type PeerInfo struct {
	Addr      string `json:"addr"`
	Role      string `json:"role"`
	Connected bool   `json:"connected,omitempty"`
	Topics    int    `json:"topics,omitempty"`
	Events    uint64 `json:"events,omitempty"`
	Err       string `json:"err,omitempty"`
}

// Response is a daemon→client frame. For acquire subscriptions the daemon
// sends one frame per file as it becomes ready (File set, Done false) and
// a final frame with Done true. A failing response carries both the
// machine-readable Code and the human-readable Err.
type Response struct {
	ID        uint64       `json:"id"`
	OK        bool         `json:"ok"`
	Code      ErrCode      `json:"code,omitempty"`
	Err       string       `json:"err,omitempty"`
	Available bool         `json:"available,omitempty"`
	Ready     bool         `json:"ready,omitempty"`
	Flag      bool         `json:"flag,omitempty"`
	Done      bool         `json:"done,omitempty"`
	File      string       `json:"file,omitempty"`
	EstWaitNs int64        `json:"est_wait_ns,omitempty"`
	Names     []string     `json:"names,omitempty"`
	Info      *ContextInfo `json:"info,omitempty"`
	Stats     *Stats       `json:"stats,omitempty"`
	Count     int          `json:"count,omitempty"`
	// Proto carries the daemon's handshake half (hello responses only).
	Proto *HelloInfo `json:"proto,omitempty"`
	// Sched carries the scheduler configuration (sched-get / sched-set).
	Sched *SchedInfo `json:"sched,omitempty"`
	// Attempts and RetryAfterNs detail a CodeFailed response from a
	// quarantined interval: how many launches failed consecutively and
	// how long until the circuit breaker half-opens again.
	Attempts     int   `json:"attempts,omitempty"`
	RetryAfterNs int64 `json:"retry_after_ns,omitempty"`
	// Peers carries the federation link table (peers responses only).
	Peers []PeerInfo `json:"peers,omitempty"`
	// Autoscale carries the controller ledger (autoscale-status only).
	Autoscale *AutoscaleInfo `json:"autoscale,omitempty"`
}

// LegacyRequest is the pre-versioned (v1) client frame: one untyped bag
// of optional fields with no handshake. It is retained only so
// version-skew tests can speak the old dialect; the daemon answers any
// non-hello first frame with a CodeVersion error.
type LegacyRequest struct {
	ID      uint64   `json:"id"`
	Op      string   `json:"op"`
	Client  string   `json:"client,omitempty"`
	Context string   `json:"context,omitempty"`
	Files   []string `json:"files,omitempty"`
	Sum     uint64   `json:"sum,omitempty"`
	SubID   uint64   `json:"sub_id,omitempty"`
}

// FrameError is a structured frame-layer failure. Op and ID identify the
// offending request when known (empty/zero for undecodable raw frames).
// Recoverable reports whether the stream is still aligned after the
// error: a complete frame with a bad JSON payload is recoverable (the
// reader consumed exactly the frame), while oversize or truncated frames
// are not — the connection must be dropped.
type FrameError struct {
	Op          string
	ID          uint64
	Recoverable bool
	Err         error
}

// Error implements the error interface.
func (e *FrameError) Error() string {
	if e.Op != "" {
		return fmt.Sprintf("netproto: op %q id %d: %v", e.Op, e.ID, e.Err)
	}
	return fmt.Sprintf("netproto: %v", e.Err)
}

// Unwrap exposes the cause.
func (e *FrameError) Unwrap() error { return e.Err }
