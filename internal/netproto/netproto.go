// Package netproto defines the wire protocol between DVLib clients and the
// DV daemon (paper Sec. III: "Dashed arrows are control messages
// (TCP/IP)"): length-prefixed JSON frames over a persistent TCP
// connection. Requests carry client-assigned IDs; responses echo the ID,
// which lets the daemon deliver asynchronous notifications (file-ready
// events for wait/acquire) over the same connection.
package netproto

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// MaxFrame bounds a single frame to keep a misbehaving peer from forcing
// unbounded allocations.
const MaxFrame = 1 << 20

// Operations understood by the daemon.
const (
	OpPing        = "ping"
	OpContexts    = "contexts" // list context names
	OpContextInfo = "ctxinfo"  // fetch one context's parameters
	OpOpen        = "open"     // non-blocking open (Table I: open)
	OpWait        = "wait"     // subscribe to file availability
	OpRelease     = "release"  // drop a reference (Table I: close)
	OpAcquire     = "acquire"  // SIMFS_Acquire: multi-file subscription
	OpEstWait     = "estwait"  // estimated wait for a file
	OpBitrep      = "bitrep"   // SIMFS_Bitrep
	OpRegSum      = "regsum"   // register an original checksum
	OpStats       = "stats"    // context counters
	OpRescan      = "rescan"   // rescan the storage area
	OpPrefetch    = "prefetch" // guided prefetching hint

	// OpSubscribe registers a notification-only subscription: the daemon
	// sends one frame per file as it becomes ready (or fails), then a
	// final Done frame. Unlike wait/acquire it takes no references; the
	// files must already be resident or promised (opened by someone).
	OpSubscribe = "subscribe"
	// OpUnsubscribe cancels an active subscription; SubID names the
	// subscribe request's ID.
	OpUnsubscribe = "unsubscribe"
)

// Request is a client→daemon frame.
type Request struct {
	ID      uint64   `json:"id"`
	Op      string   `json:"op"`
	Client  string   `json:"client,omitempty"`
	Context string   `json:"context,omitempty"`
	Files   []string `json:"files,omitempty"`
	Sum     uint64   `json:"sum,omitempty"`
	// SubID references an earlier subscribe request (unsubscribe only).
	SubID uint64 `json:"sub_id,omitempty"`
}

// ContextInfo carries the context parameters a client needs for
// transparent mode: where the storage area lives and how files are named.
type ContextInfo struct {
	Name        string `json:"name"`
	StorageDir  string `json:"storage_dir"`
	FilePrefix  string `json:"file_prefix"`
	FileSuffix  string `json:"file_suffix"`
	DeltaD      int    `json:"delta_d"`
	DeltaR      int    `json:"delta_r"`
	Timesteps   int    `json:"timesteps"`
	OutputBytes int64  `json:"output_bytes"`
}

// Stats mirrors core.CtxStats on the wire.
type Stats struct {
	Opens            int64 `json:"opens"`
	Hits             int64 `json:"hits"`
	Misses           int64 `json:"misses"`
	Restarts         int64 `json:"restarts"`
	DemandRestarts   int64 `json:"demand_restarts"`
	PrefetchLaunches int64 `json:"prefetch_launches"`
	DroppedPrefetch  int64 `json:"dropped_prefetch"`
	StepsProduced    int64 `json:"steps_produced"`
	Evictions        int64 `json:"evictions"`
	Kills            int64 `json:"kills"`
	Failures         int64 `json:"failures"`
	PollutionResets  int64 `json:"pollution_resets"`

	// Shard-lock counters of the context (sharded Virtualizer): total
	// lock acquisitions, how many contended, and the cumulative wait.
	LockAcquisitions uint64 `json:"lock_acquisitions,omitempty"`
	LockContended    uint64 `json:"lock_contended,omitempty"`
	LockWaitNs       int64  `json:"lock_wait_ns,omitempty"`

	// Re-simulation scheduler counters (internal/sched). The scheduler is
	// shared by all contexts of the daemon, so these are DV-global: the
	// current queue depth, how many requests were coalesced into queued
	// jobs, how many prefetches were dropped at capacity or canceled
	// before launch, and the cumulative enqueue→admission wait per
	// priority class.
	SchedQueueDepth   int    `json:"sched_queue_depth,omitempty"`
	SchedCoalesced    uint64 `json:"sched_coalesced,omitempty"`
	SchedDropped      uint64 `json:"sched_dropped,omitempty"`
	SchedCanceled     uint64 `json:"sched_canceled,omitempty"`
	SchedDemandWaitNs int64  `json:"sched_demand_wait_ns,omitempty"`
	SchedGuidedWaitNs int64  `json:"sched_guided_wait_ns,omitempty"`
	SchedAgentWaitNs  int64  `json:"sched_agent_wait_ns,omitempty"`
}

// Response is a daemon→client frame. For acquire subscriptions the daemon
// sends one frame per file as it becomes ready (File set, Done false) and
// a final frame with Done true.
type Response struct {
	ID        uint64       `json:"id"`
	OK        bool         `json:"ok"`
	Err       string       `json:"err,omitempty"`
	Available bool         `json:"available,omitempty"`
	Ready     bool         `json:"ready,omitempty"`
	Flag      bool         `json:"flag,omitempty"`
	Done      bool         `json:"done,omitempty"`
	File      string       `json:"file,omitempty"`
	EstWaitNs int64        `json:"est_wait_ns,omitempty"`
	Names     []string     `json:"names,omitempty"`
	Info      *ContextInfo `json:"info,omitempty"`
	Stats     *Stats       `json:"stats,omitempty"`
	Count     int          `json:"count,omitempty"`
}

// WriteFrame writes one length-prefixed JSON frame.
func WriteFrame(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("netproto: marshal: %w", err)
	}
	if len(payload) > MaxFrame {
		return fmt.Errorf("netproto: frame of %d bytes exceeds limit", len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed JSON frame into v.
func ReadFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return fmt.Errorf("netproto: incoming frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return err
	}
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("netproto: unmarshal: %w", err)
	}
	return nil
}
