package netproto

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Request{ID: 7, Op: OpOpen, Client: "a1", Context: "clim", Files: []string{"f1", "f2"}}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out Request
	if err := ReadFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.Op != in.Op || out.Client != in.Client || len(out.Files) != 2 {
		t.Errorf("round trip mismatch: %+v", out)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Response{ID: 9, OK: true, File: "x", Done: true, EstWaitNs: 123,
		Info: &ContextInfo{Name: "c", DeltaD: 5}, Stats: &Stats{Hits: 3}}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out Response
	if err := ReadFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if !out.OK || out.File != "x" || !out.Done || out.EstWaitNs != 123 ||
		out.Info == nil || out.Info.DeltaD != 5 || out.Stats == nil || out.Stats.Hits != 3 {
		t.Errorf("round trip mismatch: %+v", out)
	}
}

func TestMultipleFramesSequential(t *testing.T) {
	var buf bytes.Buffer
	for i := uint64(0); i < 10; i++ {
		if err := WriteFrame(&buf, Request{ID: i, Op: OpPing}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 10; i++ {
		var out Request
		if err := ReadFrame(&buf, &out); err != nil {
			t.Fatal(err)
		}
		if out.ID != i {
			t.Fatalf("frame %d read out of order as %d", i, out.ID)
		}
	}
	var out Request
	if err := ReadFrame(&buf, &out); err != io.EOF {
		t.Errorf("empty buffer should yield EOF, got %v", err)
	}
}

func TestOversizedIncomingFrameRejected(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	buf.Write(hdr[:])
	var out Request
	if err := ReadFrame(&buf, &out); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("oversized frame accepted: %v", err)
	}
}

func TestOversizedOutgoingFrameRejected(t *testing.T) {
	big := Request{Op: strings.Repeat("x", MaxFrame)}
	if err := WriteFrame(io.Discard, big); err == nil {
		t.Error("oversized outgoing frame accepted")
	}
}

func TestTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	WriteFrame(&buf, Request{ID: 1, Op: OpPing})
	raw := buf.Bytes()[:buf.Len()-3] // cut the payload short
	var out Request
	if err := ReadFrame(bytes.NewReader(raw), &out); err == nil {
		t.Error("truncated frame accepted")
	}
}

func TestGarbagePayload(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 4)
	buf.Write(hdr[:])
	buf.WriteString("{{{{")
	var out Request
	if err := ReadFrame(&buf, &out); err == nil {
		t.Error("garbage payload accepted")
	}
}

// Property: any request survives a round trip bit-exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(id uint64, op, client, ctx string, files []string, sum uint64) bool {
		var buf bytes.Buffer
		in := Request{ID: id, Op: op, Client: client, Context: ctx, Files: files, Sum: sum}
		if err := WriteFrame(&buf, in); err != nil {
			return len(op)+len(client)+len(ctx) > MaxFrame/2 // only oversize may fail
		}
		var out Request
		if err := ReadFrame(&buf, &out); err != nil {
			return false
		}
		if out.ID != in.ID || out.Op != in.Op || out.Client != in.Client ||
			out.Context != in.Context || out.Sum != in.Sum || len(out.Files) != len(in.Files) {
			return false
		}
		for i := range in.Files {
			if out.Files[i] != in.Files[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
