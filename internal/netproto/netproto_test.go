package netproto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

// mustEnvelope builds an envelope or fails the test.
func mustEnvelope(t *testing.T, id uint64, op string, body any) Envelope {
	t.Helper()
	env, err := NewEnvelope(id, op, body)
	if err != nil {
		t.Fatal(err)
	}
	return env
}

func TestEnvelopeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := mustEnvelope(t, 7, OpOpen, FileBody{Context: "clim", File: "f1"})
	if err := JSON.EncodeFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out Envelope
	if err := JSON.DecodeFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.Op != in.Op {
		t.Errorf("round trip mismatch: %+v", out)
	}
	var body FileBody
	if err := out.Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Context != "clim" || body.File != "f1" {
		t.Errorf("body round trip mismatch: %+v", body)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Response{ID: 9, OK: true, File: "x", Done: true, EstWaitNs: 123,
		Info:  &ContextInfo{Name: "c", DeltaD: 5, Policy: "DCL"},
		Stats: &Stats{Hits: 3},
		Proto: &HelloInfo{Version: ProtoVersion, Caps: []string{CapAdmin}},
		Sched: &SchedInfo{Coalesce: true, TotalNodes: 4}}
	if err := JSON.EncodeFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out Response
	if err := JSON.DecodeFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if !out.OK || out.File != "x" || !out.Done || out.EstWaitNs != 123 ||
		out.Info == nil || out.Info.DeltaD != 5 || out.Info.Policy != "DCL" ||
		out.Stats == nil || out.Stats.Hits != 3 ||
		out.Proto == nil || out.Proto.Version != ProtoVersion ||
		out.Sched == nil || !out.Sched.Coalesce || out.Sched.TotalNodes != 4 {
		t.Errorf("round trip mismatch: %+v", out)
	}
}

func TestErrorResponseCarriesCode(t *testing.T) {
	var buf bytes.Buffer
	in := Response{ID: 4, Code: CodeNoSuchContext, Err: "unknown context \"x\""}
	if err := JSON.EncodeFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out Response
	if err := JSON.DecodeFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if out.Code != CodeNoSuchContext || out.Err == "" || out.OK {
		t.Errorf("structured error mangled: %+v", out)
	}
}

func TestMultipleFramesSequential(t *testing.T) {
	var buf bytes.Buffer
	for i := uint64(0); i < 10; i++ {
		if err := JSON.EncodeFrame(&buf, Envelope{ID: i, Op: OpPing}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 10; i++ {
		var out Envelope
		if err := JSON.DecodeFrame(&buf, &out); err != nil {
			t.Fatal(err)
		}
		if out.ID != i {
			t.Fatalf("frame %d read out of order as %d", i, out.ID)
		}
	}
	var out Envelope
	if err := JSON.DecodeFrame(&buf, &out); err != io.EOF {
		t.Errorf("empty buffer should yield EOF, got %v", err)
	}
}

func TestOversizedIncomingFrameRejected(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	buf.Write(hdr[:])
	var out Envelope
	err := JSON.DecodeFrame(&buf, &out)
	var fe *FrameError
	if !errors.As(err, &fe) {
		t.Fatalf("oversized frame should yield *FrameError, got %v", err)
	}
	if fe.Recoverable {
		t.Error("oversized frame marked recoverable — the stream cannot be realigned")
	}
	if !strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("unexpected message: %v", err)
	}
}

func TestOversizedOutgoingFrameRejected(t *testing.T) {
	big := Envelope{ID: 12, Op: strings.Repeat("x", MaxFrame)}
	err := JSON.EncodeFrame(io.Discard, big)
	var fe *FrameError
	if !errors.As(err, &fe) {
		t.Fatalf("oversized outgoing frame should yield *FrameError, got %v", err)
	}
	if fe.ID != 12 {
		t.Errorf("FrameError lost the request ID: %+v", fe)
	}
}

func TestTruncatedFrame(t *testing.T) {
	var buf bytes.Buffer
	JSON.EncodeFrame(&buf, Envelope{ID: 1, Op: OpPing})
	raw := buf.Bytes()[:buf.Len()-3] // cut the payload short
	var out Envelope
	err := JSON.DecodeFrame(bytes.NewReader(raw), &out)
	if err == nil {
		t.Fatal("truncated frame accepted")
	}
	var fe *FrameError
	if errors.As(err, &fe) && fe.Recoverable {
		t.Error("truncated frame marked recoverable")
	}
}

func TestGarbagePayloadRecoverable(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 4)
	buf.Write(hdr[:])
	buf.WriteString("{{{{")
	// A well-formed frame follows the garbage one: after the recoverable
	// error the stream must still be aligned.
	JSON.EncodeFrame(&buf, Envelope{ID: 2, Op: OpPing})
	var out Envelope
	err := JSON.DecodeFrame(&buf, &out)
	var fe *FrameError
	if !errors.As(err, &fe) || !fe.Recoverable {
		t.Fatalf("garbage payload should yield a recoverable *FrameError, got %v", err)
	}
	if err := JSON.DecodeFrame(&buf, &out); err != nil || out.ID != 2 {
		t.Errorf("stream misaligned after recoverable error: %v %+v", err, out)
	}
}

func TestDecodeErrorCarriesOpAndID(t *testing.T) {
	env := mustEnvelope(t, 42, OpOpen, 17) // number body, not an object
	var body FileBody
	err := env.Decode(&body)
	var fe *FrameError
	if !errors.As(err, &fe) {
		t.Fatalf("decode error should be a *FrameError, got %v", err)
	}
	if fe.Op != OpOpen || fe.ID != 42 {
		t.Errorf("decode error lost op/id context: %+v", fe)
	}
	if !strings.Contains(err.Error(), OpOpen) || !strings.Contains(err.Error(), "42") {
		t.Errorf("message should name op and id: %v", err)
	}
}

func TestMissingBodyIsError(t *testing.T) {
	env := Envelope{ID: 3, Op: OpOpen}
	var body FileBody
	if err := env.Decode(&body); err == nil {
		t.Error("missing body decoded without error")
	}
}

func TestLegacyRequestParsesAsEnvelope(t *testing.T) {
	// A v1 client frame must decode as an envelope (id + op survive) so
	// the daemon can answer its CodeVersion rejection to the right ID.
	var buf bytes.Buffer
	if err := JSON.EncodeFrame(&buf, LegacyRequest{ID: 5, Op: OpPing, Client: "old", Files: []string{"f"}}); err != nil {
		t.Fatal(err)
	}
	var env Envelope
	if err := JSON.DecodeFrame(&buf, &env); err != nil {
		t.Fatal(err)
	}
	if env.ID != 5 || env.Op != OpPing {
		t.Errorf("legacy frame mangled: %+v", env)
	}
}

// Property: any envelope survives a round trip bit-exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(id uint64, op, ctx string, files []string) bool {
		var buf bytes.Buffer
		in, err := NewEnvelope(id, op, FilesBody{Context: ctx, Files: files})
		if err != nil {
			return false
		}
		if err := JSON.EncodeFrame(&buf, in); err != nil {
			var size int
			for _, f := range files {
				size += len(f)
			}
			return len(op)+len(ctx)+size > MaxFrame/2 // only oversize may fail
		}
		var out Envelope
		if err := JSON.DecodeFrame(&buf, &out); err != nil {
			return false
		}
		if out.ID != in.ID || out.Op != in.Op {
			return false
		}
		var body FilesBody
		if err := out.Decode(&body); err != nil {
			return false
		}
		if body.Context != ctx || len(body.Files) != len(files) {
			return false
		}
		for i := range files {
			if body.Files[i] != files[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
