package netproto

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinaryEnvelopeRoundTrip(t *testing.T) {
	cases := []struct {
		op   string
		body any
	}{
		{OpOpen, FileBody{Context: "clim", File: "clim_out_00000001.nc"}},
		{OpWait, FileBody{Context: "clim", File: "f2"}},
		{OpRelease, FileBody{Context: "c", File: "f"}},
		{OpEstWait, FileBody{Context: "c", File: "f"}},
		{OpBitrep, FileBody{Context: "c", File: "f"}},
		{OpAcquire, FilesBody{Context: "clim", Files: []string{"a", "b", "c"}}},
		{OpSubscribe, FilesBody{Context: "clim", Files: []string{"d"}}},
		{OpPrefetch, FilesBody{Context: "clim", Files: []string{}}},
		{OpUnsubscribe, UnsubscribeBody{SubID: 321}},
		{OpPing, nil},
	}
	for _, tc := range cases {
		var buf bytes.Buffer
		in := mustEnvelope(t, 99, tc.op, tc.body)
		if err := Binary.EncodeFrame(&buf, in); err != nil {
			t.Fatalf("%s: %v", tc.op, err)
		}
		// The hot path must actually be binary, not the JSON fallback.
		if payload := buf.Bytes()[4:]; payload[0] == '{' {
			t.Fatalf("%s encoded as JSON on the binary codec", tc.op)
		}
		var out Envelope
		if err := Binary.DecodeFrame(&buf, &out); err != nil {
			t.Fatalf("%s: decode: %v", tc.op, err)
		}
		if out.ID != 99 || out.Op != tc.op {
			t.Fatalf("%s: header mangled: %+v", tc.op, out)
		}
		if tc.body == nil {
			continue
		}
		switch want := tc.body.(type) {
		case FileBody:
			var got FileBody
			if err := out.Decode(&got); err != nil || got != want {
				t.Fatalf("%s: body %+v (%v), want %+v", tc.op, got, err, want)
			}
		case FilesBody:
			var got FilesBody
			if err := out.Decode(&got); err != nil || got.Context != want.Context || len(got.Files) != len(want.Files) {
				t.Fatalf("%s: body %+v (%v), want %+v", tc.op, got, err, want)
			}
		case UnsubscribeBody:
			var got UnsubscribeBody
			if err := out.Decode(&got); err != nil || got != want {
				t.Fatalf("%s: body %+v (%v), want %+v", tc.op, got, err, want)
			}
		}
	}
}

func TestBinaryResponseRoundTrip(t *testing.T) {
	cases := []Response{
		{ID: 1, OK: true},
		{ID: 2, OK: true, Available: true, EstWaitNs: 13_000_000},
		{ID: 3, OK: true, Ready: true, File: "clim_out_00000007.nc"},
		{ID: 4, OK: true, Done: true, Count: 42},
		{ID: 5, Code: CodeBusy, Err: "context draining"},
		{ID: 6, OK: true, Flag: true},
		{ID: 7, Code: CodeFrame, Err: "bad frame"},
	}
	for _, in := range cases {
		var buf bytes.Buffer
		if err := Binary.EncodeFrame(&buf, in); err != nil {
			t.Fatalf("id %d: %v", in.ID, err)
		}
		if payload := buf.Bytes()[4:]; payload[0] != binResponseTag {
			t.Fatalf("id %d encoded as JSON on the binary codec", in.ID)
		}
		var out Response
		if err := Binary.DecodeFrame(&buf, &out); err != nil {
			t.Fatalf("id %d: decode: %v", in.ID, err)
		}
		if !reflect.DeepEqual(out, in) {
			t.Fatalf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
		}
	}
}

// Rich responses (hello, listings, stats, scheduler info) and cold ops
// fall back to JSON payloads inside the binary connection's frames, and
// the binary decoder sniffs them back out.
func TestBinaryCodecJSONFallback(t *testing.T) {
	var buf bytes.Buffer
	resp := Response{ID: 8, OK: true, Proto: &HelloInfo{Version: ProtoVersion, Caps: []string{CapBinary}}}
	if err := Binary.EncodeFrame(&buf, resp); err != nil {
		t.Fatal(err)
	}
	if payload := buf.Bytes()[4:]; payload[0] != '{' {
		t.Fatal("rich response did not fall back to JSON")
	}
	var out Response
	if err := Binary.DecodeFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if out.Proto == nil || out.Proto.Version != ProtoVersion {
		t.Fatalf("fallback round trip mangled: %+v", out)
	}

	buf.Reset()
	env := mustEnvelope(t, 9, OpSchedGet, nil)
	if err := Binary.EncodeFrame(&buf, env); err != nil {
		t.Fatal(err)
	}
	if payload := buf.Bytes()[4:]; payload[0] != '{' {
		t.Fatal("cold-path op did not fall back to JSON")
	}
	var outEnv Envelope
	if err := Binary.DecodeFrame(&buf, &outEnv); err != nil {
		t.Fatal(err)
	}
	if outEnv.ID != 9 || outEnv.Op != OpSchedGet {
		t.Fatalf("cold-path round trip mangled: %+v", outEnv)
	}
}

// A JSON peer's frames decode unchanged on the binary codec (the server
// keeps one read path per session even while capabilities differ).
func TestBinaryCodecReadsJSONFrames(t *testing.T) {
	var buf bytes.Buffer
	env := mustEnvelope(t, 4, OpOpen, FileBody{Context: "c", File: "f"})
	if err := JSON.EncodeFrame(&buf, env); err != nil {
		t.Fatal(err)
	}
	var out Envelope
	if err := Binary.DecodeFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	var body FileBody
	if err := out.Decode(&body); err != nil || body.File != "f" {
		t.Fatalf("JSON frame on binary codec mangled: %+v (%v)", body, err)
	}
}

// Truncated binary bodies inside a complete frame are recoverable: the
// frame was fully consumed, so the stream stays aligned.
func TestBinaryTruncatedBodyRecoverable(t *testing.T) {
	var full bytes.Buffer
	env := mustEnvelope(t, 7, OpOpen, FileBody{Context: "clim", File: "file-name"})
	if err := Binary.EncodeFrame(&full, env); err != nil {
		t.Fatal(err)
	}
	frame := full.Bytes()
	// Cut the payload progressively short (re-stamping the header so the
	// frame itself stays complete) — every variant must fail recoverably.
	for cut := 1; cut < len(frame)-4; cut++ {
		payload := frame[4 : len(frame)-cut]
		var buf bytes.Buffer
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
		buf.Write(hdr[:])
		buf.Write(payload)
		// A good frame follows: after the recoverable error the stream
		// must still be aligned.
		if err := Binary.EncodeFrame(&buf, mustEnvelope(t, 8, OpPing, nil)); err != nil {
			t.Fatal(err)
		}
		var out Envelope
		err := Binary.DecodeFrame(&buf, &out)
		if err == nil {
			continue // a shorter-but-valid prefix (trailing bytes are lenient)
		}
		var fe *FrameError
		if !errors.As(err, &fe) || !fe.Recoverable {
			t.Fatalf("cut %d: want recoverable FrameError, got %v", cut, err)
		}
		if err := Binary.DecodeFrame(&buf, &out); err != nil || out.Op != OpPing {
			t.Fatalf("cut %d: stream misaligned after recoverable error: %v %+v", cut, err, out)
		}
	}
}

func TestBinaryUnknownOpcodeRecoverable(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 2, 0x7F, 0x01}) // opcode 0x7F does not exist
	var out Envelope
	err := Binary.DecodeFrame(&buf, &out)
	var fe *FrameError
	if !errors.As(err, &fe) || !fe.Recoverable {
		t.Fatalf("unknown opcode should be recoverable, got %v", err)
	}
}

func TestBinaryOversizedFrameRejected(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], MaxFrame+1)
	buf.Write(hdr[:])
	var out Envelope
	err := Binary.DecodeFrame(&buf, &out)
	var fe *FrameError
	if !errors.As(err, &fe) {
		t.Fatalf("oversized frame should yield *FrameError, got %v", err)
	}
	if fe.Recoverable {
		t.Error("oversized frame marked recoverable — the stream cannot be realigned")
	}
	if !strings.Contains(err.Error(), "exceeds limit") {
		t.Errorf("unexpected message: %v", err)
	}
}

// A dishonest file count (larger than the remaining payload could ever
// hold) must not size an allocation.
func TestBinaryFileCountBounded(t *testing.T) {
	payload := []byte{binAcquire, 1} // op + id
	payload = appendBinString(payload, "ctx")
	payload = binary.AppendUvarint(payload, 1<<40) // absurd count
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	buf.Write(hdr[:])
	buf.Write(payload)
	var out Envelope
	err := Binary.DecodeFrame(&buf, &out)
	var fe *FrameError
	if !errors.As(err, &fe) || !fe.Recoverable {
		t.Fatalf("dishonest count should be recoverable, got %v", err)
	}
}

func TestFrameBuffered(t *testing.T) {
	var wire bytes.Buffer
	if err := Binary.EncodeFrame(&wire, mustEnvelope(t, 1, OpPing, nil)); err != nil {
		t.Fatal(err)
	}
	frame := append([]byte(nil), wire.Bytes()...)

	br := bufio.NewReader(bytes.NewReader(nil))
	if FrameBuffered(br) {
		t.Error("empty reader reported a buffered frame")
	}
	// Two full frames back to back: after reading the first, the second
	// is still complete in the buffer.
	br = bufio.NewReader(bytes.NewReader(append(append([]byte(nil), frame...), frame...)))
	var env Envelope
	if err := Binary.DecodeFrame(br, &env); err != nil {
		t.Fatal(err)
	}
	if !FrameBuffered(br) {
		t.Error("complete buffered frame not detected")
	}
	if err := Binary.DecodeFrame(br, &env); err != nil {
		t.Fatal(err)
	}
	if FrameBuffered(br) {
		t.Error("drained reader still reports a buffered frame")
	}
	// A partial frame (header says more than what's buffered) must not
	// count: flushing is the only way to avoid deadlocking on it.
	br = bufio.NewReader(bytes.NewReader(frame[:len(frame)-1]))
	br.Peek(len(frame) - 1) // force the partial bytes into the buffer
	if FrameBuffered(br) {
		t.Error("partial frame reported as complete")
	}
}

// Property: any hot-op envelope survives the binary round trip exactly.
func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(id uint64, ctx string, files []string) bool {
		var buf bytes.Buffer
		in, _ := NewEnvelope(id, OpAcquire, FilesBody{Context: ctx, Files: files})
		if err := Binary.EncodeFrame(&buf, in); err != nil {
			var size int
			for _, f := range files {
				size += len(f)
			}
			return len(ctx)+size > MaxFrame/2 // only oversize may fail
		}
		var out Envelope
		if err := Binary.DecodeFrame(&buf, &out); err != nil {
			return false
		}
		if out.ID != id || out.Op != OpAcquire {
			return false
		}
		var body FilesBody
		if err := out.Decode(&body); err != nil || body.Context != ctx || len(body.Files) != len(files) {
			return false
		}
		for i := range files {
			if body.Files[i] != files[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// The binary encoder writes each frame with exactly one Write call, so
// encoding into a shared outgoing buffer can never leave a torn frame.
func TestEncodeFrameSingleWrite(t *testing.T) {
	for _, codec := range []Codec{JSON, Binary} {
		for _, v := range []any{
			any(mustEnvelope(t, 1, OpOpen, FileBody{Context: "c", File: "f"})),
			any(Response{ID: 2, OK: true, Stats: &Stats{Hits: 1}}),
		} {
			cw := &countingWriter{}
			if err := codec.EncodeFrame(cw, v); err != nil {
				t.Fatal(err)
			}
			if cw.writes != 1 {
				t.Errorf("%s codec used %d writes for one frame, want 1", codec.Name(), cw.writes)
			}
		}
	}
}

type countingWriter struct{ writes int }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.writes++
	return len(p), nil
}

var _ io.Writer = (*countingWriter)(nil)
