package netproto

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"simfs/internal/model"
)

// seedFrames returns one encoded frame per envelope shape the protocol
// speaks: the hello handshake, every typed per-op payload, a legacy (v1)
// request and a response — plus a bodyless ping. They seed the fuzz
// corpus (see FuzzFrameRoundTrip and TestRegenerateFuzzCorpus).
func seedFrames() ([][]byte, error) {
	tv, nv, pp := true, 16, "youngest"
	mc := &model.Context{Name: "fz", Grid: model.Grid{DeltaD: 1, DeltaR: 4, Timesteps: 32}, OutputBytes: 64}
	envs := []struct {
		op   string
		body any
	}{
		{OpHello, HelloBody{Version: ProtoVersion, Client: "fuzz", Caps: []string{CapAdmin, CapWatch}}},
		{OpPing, nil},
		{OpContexts, nil},
		{OpContextInfo, CtxBody{Context: "fz"}},
		{OpOpen, FileBody{Context: "fz", File: "fz_out_00000001.nc"}},
		{OpWait, FileBody{Context: "fz", File: "fz_out_00000002.nc"}},
		{OpRelease, FileBody{Context: "fz", File: "fz_out_00000001.nc"}},
		{OpAcquire, FilesBody{Context: "fz", Files: []string{"a.nc", "b.nc"}}},
		{OpEstWait, FileBody{Context: "fz", File: "fz_out_00000003.nc"}},
		{OpBitrep, FileBody{Context: "fz", File: "fz_out_00000004.nc"}},
		{OpRegSum, ChecksumBody{Context: "fz", File: "fz_out_00000005.nc", Sum: 0xdeadbeef}},
		{OpStats, CtxBody{Context: "fz"}},
		{OpRescan, CtxBody{Context: "fz"}},
		{OpPrefetch, FilesBody{Context: "fz", Files: []string{"c.nc"}}},
		{OpSubscribe, FilesBody{Context: "fz", Files: []string{"d.nc", "e.nc"}}},
		{OpUnsubscribe, UnsubscribeBody{SubID: 9}},
		{OpSchedGet, nil},
		{OpSchedSet, SchedSetBody{Coalesce: &tv, TotalNodes: &nv, PreemptPolicy: &pp, DRRQuantum: &nv}},
		{OpCachePolicySet, CachePolicyBody{Context: "fz", Policy: "LIRS"}},
		{OpCtxRegister, CtxRegisterBody{Context: mc, Policy: "DCL", InitialSim: true}},
		{OpCtxDeregister, CtxBody{Context: "fz"}},
		{OpDrain, CtxBody{Context: "fz"}},
		{OpResume, CtxBody{Context: "fz"}},
	}
	var frames [][]byte
	for i, e := range envs {
		env, err := NewEnvelope(uint64(i+1), e.op, e.body)
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := JSON.EncodeFrame(&buf, env); err != nil {
			return nil, err
		}
		frames = append(frames, buf.Bytes())
	}
	// A v1 frame and a response frame: both must parse as envelopes
	// without tripping the reader.
	var buf bytes.Buffer
	if err := JSON.EncodeFrame(&buf, LegacyRequest{ID: 99, Op: OpOpen, Client: "old", Context: "fz", Files: []string{"f"}}); err != nil {
		return nil, err
	}
	frames = append(frames, append([]byte(nil), buf.Bytes()...))
	buf.Reset()
	if err := JSON.EncodeFrame(&buf, Response{ID: 3, Code: CodeBusy, Err: "context draining",
		Proto: &HelloInfo{Version: ProtoVersion}, Sched: &SchedInfo{Coalesce: true}}); err != nil {
		return nil, err
	}
	frames = append(frames, append([]byte(nil), buf.Bytes()...))
	return frames, nil
}

// FuzzFrameRoundTrip feeds raw bytes to the frame reader: whatever
// decodes must re-encode and decode to the same envelope, and whatever
// fails must fail safely — recoverable errors only for complete frames,
// never a panic, never a misaligned stream.
func FuzzFrameRoundTrip(f *testing.F) {
	frames, err := seedFrames()
	if err != nil {
		f.Fatal(err)
	}
	for _, fr := range frames {
		f.Add(fr)
	}
	f.Add([]byte{0, 0, 0, 4, '{', '{', '{', '{'}) // recoverable garbage
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})         // oversize header

	f.Fuzz(func(t *testing.T, data []byte) {
		var env Envelope
		err := JSON.DecodeFrame(bytes.NewReader(data), &env)
		if err != nil {
			var fe *FrameError
			if errors.As(err, &fe) && fe.Recoverable && len(data) < 4 {
				t.Fatalf("short input %x yielded a recoverable error", data)
			}
			return
		}
		var buf bytes.Buffer
		if err := JSON.EncodeFrame(&buf, env); err != nil {
			// Only a re-encoded frame exceeding MaxFrame may fail (JSON
			// escaping can grow the payload past the limit).
			var fe *FrameError
			if !errors.As(err, &fe) {
				t.Fatalf("re-encode of a decoded envelope failed oddly: %v", err)
			}
			return
		}
		var env2 Envelope
		if err := JSON.DecodeFrame(&buf, &env2); err != nil {
			t.Fatalf("re-read of a re-encoded envelope failed: %v", err)
		}
		if env2.ID != env.ID || env2.Op != env.Op || !bytes.Equal(env2.Body, env.Body) {
			t.Fatalf("round trip mismatch:\n in: %d %q %s\nout: %d %q %s",
				env.ID, env.Op, env.Body, env2.ID, env2.Op, env2.Body)
		}
	})
}

// binSeedFrames returns one binary-encoded frame per hot-op shape plus
// the common response shapes, and one JSON-inside-binary fallback frame.
// They seed FuzzBinaryFrame's corpus.
func binSeedFrames() ([][]byte, error) {
	var frames [][]byte
	add := func(v any) error {
		var buf bytes.Buffer
		if err := Binary.EncodeFrame(&buf, v); err != nil {
			return err
		}
		frames = append(frames, append([]byte(nil), buf.Bytes()...))
		return nil
	}
	envs := []struct {
		op   string
		body any
	}{
		{OpOpen, FileBody{Context: "fz", File: "fz_out_00000001.nc"}},
		{OpWait, FileBody{Context: "fz", File: "fz_out_00000002.nc"}},
		{OpRelease, FileBody{Context: "fz", File: "fz_out_00000001.nc"}},
		{OpEstWait, FileBody{Context: "fz", File: "fz_out_00000003.nc"}},
		{OpBitrep, FileBody{Context: "fz", File: "fz_out_00000004.nc"}},
		{OpAcquire, FilesBody{Context: "fz", Files: []string{"a.nc", "b.nc"}}},
		{OpSubscribe, FilesBody{Context: "fz", Files: []string{"d.nc"}}},
		{OpPrefetch, FilesBody{Context: "fz", Files: []string{}}},
		{OpUnsubscribe, UnsubscribeBody{SubID: 9}},
		{OpPing, nil},
	}
	for i, e := range envs {
		env, err := NewEnvelope(uint64(i+1), e.op, e.body)
		if err != nil {
			return nil, err
		}
		if err := add(env); err != nil {
			return nil, err
		}
	}
	for _, resp := range []Response{
		{ID: 1, OK: true},
		{ID: 2, OK: true, Available: true, EstWaitNs: 13_000_000},
		{ID: 3, OK: true, Ready: true, File: "fz_out_00000007.nc"},
		{ID: 4, OK: true, Done: true, Count: 3},
		{ID: 5, Code: CodeBusy, Err: "context draining"},
		// A rich response falls back to JSON inside the binary stream:
		// seed the sniffing path too.
		{ID: 6, OK: true, Proto: &HelloInfo{Version: ProtoVersion, Caps: []string{CapBinary}}},
	} {
		if err := add(resp); err != nil {
			return nil, err
		}
	}
	return frames, nil
}

// FuzzBinaryFrame feeds raw bytes to the binary decoder, as an envelope
// and as a response. Whatever decodes must reach an encode fixed point —
// re-encoding the decoded value and decoding it again reproduces the
// same bytes — and whatever fails must fail safely: recoverable errors
// only for complete frames, never a panic.
func FuzzBinaryFrame(f *testing.F) {
	frames, err := binSeedFrames()
	if err != nil {
		f.Fatal(err)
	}
	for _, fr := range frames {
		f.Add(fr)
	}
	f.Add([]byte{0, 0, 0, 2, 0x7F, 0x01})         // unknown opcode
	f.Add([]byte{0, 0, 0, 2, 0xB1, 0x01})         // truncated response flags
	f.Add([]byte{0, 0, 0, 1, 0x01})               // open with no id
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})         // oversize header
	f.Add([]byte{0, 0, 0, 4, '{', '{', '{', '{'}) // recoverable JSON garbage

	fixedPoint := func(t *testing.T, data []byte, v1, v2 any, enc func(any) ([]byte, error), dec func([]byte, any) error) {
		err := dec(data, v1)
		if err != nil {
			var fe *FrameError
			if errors.As(err, &fe) && fe.Recoverable && len(data) < 4 {
				t.Fatalf("short input %x yielded a recoverable error", data)
			}
			return
		}
		b1, err := enc(v1)
		if err != nil {
			// Only a re-encoded frame exceeding MaxFrame may fail.
			var fe *FrameError
			if !errors.As(err, &fe) {
				t.Fatalf("re-encode of a decoded value failed oddly: %v", err)
			}
			return
		}
		if err := dec(b1, v2); err != nil {
			t.Fatalf("re-read of a re-encoded frame failed: %v\nframe: %x", err, b1)
		}
		b2, err := enc(v2)
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(b1, b2) {
			t.Fatalf("encode fixed point broken:\nb1: %x\nb2: %x", b1, b2)
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		encEnv := func(v any) ([]byte, error) {
			var buf bytes.Buffer
			err := Binary.EncodeFrame(&buf, *v.(*Envelope))
			return buf.Bytes(), err
		}
		decEnv := func(b []byte, v any) error {
			return Binary.DecodeFrame(bytes.NewReader(b), v)
		}
		var e1, e2 Envelope
		fixedPoint(t, data, &e1, &e2, encEnv, decEnv)

		encResp := func(v any) ([]byte, error) {
			var buf bytes.Buffer
			err := Binary.EncodeFrame(&buf, *v.(*Response))
			return buf.Bytes(), err
		}
		var r1, r2 Response
		fixedPoint(t, data, &r1, &r2, encResp, decEnv)
	})
}

// TestRegenerateFuzzCorpus rewrites the committed seed corpora under
// testdata/fuzz/ from seedFrames and binSeedFrames. Run with
// SIMFS_REGEN_CORPUS=1 after changing the protocol surface; otherwise it
// verifies the committed corpora are present.
func TestRegenerateFuzzCorpus(t *testing.T) {
	corpora := []struct {
		fuzzer string
		gen    func() ([][]byte, error)
	}{
		{"FuzzFrameRoundTrip", seedFrames},
		{"FuzzBinaryFrame", binSeedFrames},
	}
	for _, c := range corpora {
		dir := filepath.Join("testdata", "fuzz", c.fuzzer)
		frames, err := c.gen()
		if err != nil {
			t.Fatal(err)
		}
		if os.Getenv("SIMFS_REGEN_CORPUS") != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				t.Fatal(err)
			}
			for i, fr := range frames {
				body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", fr)
				name := filepath.Join(dir, fmt.Sprintf("seed-%02d", i))
				if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			t.Logf("regenerated %d corpus seeds in %s", len(frames), dir)
			continue
		}
		entries, err := os.ReadDir(dir)
		if err != nil || len(entries) == 0 {
			t.Fatalf("committed fuzz corpus for %s missing (run with SIMFS_REGEN_CORPUS=1 to regenerate): %v", c.fuzzer, err)
		}
	}
}
