package server

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"simfs/internal/dvlib"
	"simfs/internal/model"
	"simfs/internal/vfs"
)

// testStack spins up a full daemon on an ephemeral port with one small,
// fast context and returns it with its address.
func testStack(t *testing.T) (*Stack, string) {
	t.Helper()
	return testStackWith(t, nil)
}

// testStackWith is testStack with a hook to adjust the stack (e.g. set
// Server.DisableBinary) after construction but before Serve starts.
func testStackWith(t *testing.T, configure func(*Stack)) (*Stack, string) {
	t.Helper()
	ctx := &model.Context{
		Name:               "clim",
		Grid:               model.Grid{DeltaD: 1, DeltaR: 4, Timesteps: 64},
		OutputBytes:        512, // real bytes on disk per output step
		RestartBytes:       256,
		MaxCacheBytes:      0, // unbounded for most tests
		Tau:                4 * time.Millisecond,
		Alpha:              8 * time.Millisecond,
		DefaultParallelism: 1,
		MaxParallelism:     1,
		SMax:               4,
	}
	st, err := NewStack(t.TempDir(), 1, "DCL", ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.RunInitialSimulation("clim"); err != nil {
		t.Fatal(err)
	}
	if configure != nil {
		configure(st)
	}
	if err := st.Server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go st.Server.Serve()
	t.Cleanup(func() {
		st.Close()
		st.Launcher.Wait()
	})
	return st, st.Server.Addr()
}

func TestTransparentModeEndToEnd(t *testing.T) {
	_, addr := testStack(t)
	c, err := dvlib.Dial(addr, "analysis-1")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	names, err := c.Contexts()
	if err != nil || len(names) != 1 || names[0] != "clim" {
		t.Fatalf("Contexts = %v, %v", names, err)
	}
	ctx, err := c.Init("clim")
	if err != nil {
		t.Fatal(err)
	}
	defer ctx.Finalize()

	file := ctx.Filename(6)
	res, err := ctx.Open(file)
	if err != nil {
		t.Fatal(err)
	}
	if res.Available {
		t.Fatal("virtualized file should not be on disk before re-simulation")
	}
	content, err := ctx.Read(file) // blocks until the re-simulation produces it
	if err != nil {
		t.Fatal(err)
	}
	if want := vfs.Content(file, 512); !bytes.Equal(content, want) {
		t.Error("re-simulated content does not match the deterministic stream")
	}
	if err := ctx.Close(file); err != nil {
		t.Fatal(err)
	}

	// Second access is a hit.
	res, err = ctx.Open(file)
	if err != nil || !res.Available {
		t.Fatalf("re-open: %+v, %v", res, err)
	}
	ctx.Close(file)

	stats, err := ctx.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Hits < 1 || stats.Misses < 1 || stats.DemandRestarts < 1 {
		t.Errorf("stats = %+v", stats)
	}
}

// The default client negotiates the binary codec against the default
// daemon; the transparent-mode flow and a pipelined open/release window
// both work over binary frames.
func TestBinaryEndToEndPipelined(t *testing.T) {
	_, addr := testStack(t)
	c, err := dvlib.Dial(addr, "analysis-bin")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.UsesBinary() {
		t.Fatalf("default client against default daemon negotiated %q, want binary", c.CodecName())
	}
	ctx, err := c.Init("clim")
	if err != nil {
		t.Fatal(err)
	}
	file := ctx.Filename(3)
	if _, err := ctx.Open(file); err != nil {
		t.Fatal(err)
	}
	content, err := ctx.Read(file)
	if err != nil {
		t.Fatal(err)
	}
	if want := vfs.Content(file, 512); !bytes.Equal(content, want) {
		t.Error("binary session served wrong content")
	}
	if err := ctx.Close(file); err != nil {
		t.Fatal(err)
	}

	// Pipelined window: queue a batch of opens, wait all, then the
	// releases, twice — refcounts must come back to zero each round.
	for round := 0; round < 2; round++ {
		var opens []*dvlib.OpenCall
		for i := 1; i <= 8; i++ {
			oc, err := ctx.OpenAsync(ctx.Filename(i))
			if err != nil {
				t.Fatal(err)
			}
			opens = append(opens, oc)
		}
		var rels []*dvlib.ReleaseCall
		for i := 1; i <= 8; i++ {
			rc, err := ctx.ReleaseAsync(ctx.Filename(i))
			if err != nil {
				t.Fatal(err)
			}
			rels = append(rels, rc)
		}
		for i, oc := range opens {
			if _, err := oc.Wait(); err != nil {
				t.Fatalf("round %d open %d: %v", round, i, err)
			}
		}
		for i, rc := range rels {
			if err := rc.Wait(); err != nil {
				t.Fatalf("round %d release %d: %v", round, i, err)
			}
		}
	}
}

// The transparent-mode flow over an explicit JSON session against a
// binary-capable daemon (WithJSONCodec opts out of the fast path).
func TestTransparentModeJSONFallback(t *testing.T) {
	_, addr := testStack(t)
	c, err := dvlib.Dial(addr, "analysis-json", dvlib.WithJSONCodec())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.UsesBinary() {
		t.Fatal("WithJSONCodec client negotiated binary")
	}
	ctx, err := c.Init("clim")
	if err != nil {
		t.Fatal(err)
	}
	file := ctx.Filename(5)
	if _, err := ctx.Open(file); err != nil {
		t.Fatal(err)
	}
	content, err := ctx.Read(file)
	if err != nil {
		t.Fatal(err)
	}
	if want := vfs.Content(file, 512); !bytes.Equal(content, want) {
		t.Error("JSON fallback served wrong content")
	}
	if err := ctx.Close(file); err != nil {
		t.Fatal(err)
	}
}

func TestAcquireAndWaitsomeOverTCP(t *testing.T) {
	_, addr := testStack(t)
	c, err := dvlib.Dial(addr, "analysis-2")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, err := c.Init("clim")
	if err != nil {
		t.Fatal(err)
	}

	files := []string{ctx.Filename(2), ctx.Filename(10), ctx.Filename(18)}
	req, err := ctx.AcquireNB(files...)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]bool{}
	deadline := time.Now().Add(10 * time.Second)
	for len(got) < len(files) && time.Now().Before(deadline) {
		idx, st, err := req.Waitsome()
		if err != nil {
			t.Fatal(err)
		}
		if st.Err != "" {
			t.Fatalf("acquire failed: %s", st.Err)
		}
		for _, i := range idx {
			got[i] = true
		}
	}
	if len(got) != len(files) {
		t.Fatalf("Waitsome reported %d of %d files", len(got), len(files))
	}
	st, err := req.Wait()
	if err != nil || !st.Ready {
		t.Fatalf("final wait: %+v, %v", st, err)
	}
	for _, f := range files {
		if err := ctx.Release(f); err != nil {
			t.Errorf("release %s: %v", f, err)
		}
	}
}

func TestAcquireBlockingAndTest(t *testing.T) {
	_, addr := testStack(t)
	c, _ := dvlib.Dial(addr, "analysis-3")
	defer c.Close()
	ctx, _ := c.Init("clim")

	req, err := ctx.AcquireNB(ctx.Filename(30))
	if err != nil {
		t.Fatal(err)
	}
	// Test may be false initially; eventually it must turn true.
	deadline := time.Now().Add(10 * time.Second)
	for {
		flag, _, err := req.Test()
		if err != nil {
			t.Fatal(err)
		}
		if flag {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("acquire never completed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Blocking acquire of already-resident files returns immediately.
	st, err := ctx.Acquire(ctx.Filename(30))
	if err != nil || !st.Ready {
		t.Fatalf("resident acquire = %+v, %v", st, err)
	}
}

func TestBitrepOverTCP(t *testing.T) {
	st, addr := testStack(t)
	c, _ := dvlib.Dial(addr, "analysis-4")
	defer c.Close()
	ctx, _ := c.Init("clim")

	file := ctx.Filename(3)
	if _, err := ctx.Open(file); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Read(file); err != nil {
		t.Fatal(err)
	}
	same, err := ctx.Bitrep(file)
	if err != nil || !same {
		t.Fatalf("Bitrep after faithful re-simulation = %v, %v", same, err)
	}
	// Corrupt the on-disk file: Bitrep must now report a mismatch.
	area, _ := st.Area("clim")
	path := filepath.Join(area.Dir(), file)
	if err := os.WriteFile(path, []byte("corrupted"), 0o644); err != nil {
		t.Fatal(err)
	}
	same, err = ctx.Bitrep(file)
	if err != nil || same {
		t.Fatalf("Bitrep after corruption = %v, %v", same, err)
	}
	ctx.Close(file)
}

func TestEstWaitAndRescanOverTCP(t *testing.T) {
	_, addr := testStack(t)
	c, _ := dvlib.Dial(addr, "analysis-5")
	defer c.Close()
	ctx, _ := c.Init("clim")

	file := ctx.Filename(40)
	if _, err := ctx.Open(file); err != nil {
		t.Fatal(err)
	}
	w, err := ctx.EstWait(file)
	if err != nil {
		t.Fatal(err)
	}
	if w <= 0 {
		t.Error("missing file should report a positive estimated wait")
	}
	if _, err := ctx.Read(file); err != nil {
		t.Fatal(err)
	}
	n, err := ctx.Rescan()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("rescan found %d unknown files; cache and area should agree", n)
	}
	ctx.Close(file)
}

func TestConcurrentClients(t *testing.T) {
	_, addr := testStack(t)
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := dvlib.Dial(addr, fmt.Sprintf("client-%d", g))
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			ctx, err := c.Init("clim")
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < 6; i++ {
				file := ctx.Filename(g*8 + i + 1)
				if _, err := ctx.Open(file); err != nil {
					errs <- err
					return
				}
				if _, err := ctx.Read(file); err != nil {
					errs <- err
					return
				}
				if err := ctx.Close(file); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestClientDisconnectReleasesReferences(t *testing.T) {
	st, addr := testStack(t)
	c, _ := dvlib.Dial(addr, "dropper")
	ctx, _ := c.Init("clim")
	file := ctx.Filename(12)
	if _, err := ctx.Open(file); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Read(file); err != nil {
		t.Fatal(err)
	}
	c.Close() // abandon the reference

	// A fresh client must be able to release-cycle the same file: the
	// daemon cleaned up the dropped reference, so an over-release from
	// this client errors only once its own reference is gone.
	deadline := time.Now().Add(5 * time.Second)
	for {
		stats, err := st.V.Stats("clim")
		if err != nil {
			t.Fatal(err)
		}
		_ = stats
		c2, err := dvlib.Dial(addr, "successor")
		if err != nil {
			t.Fatal(err)
		}
		ctx2, _ := c2.Init("clim")
		if _, err := ctx2.Open(file); err != nil {
			t.Fatal(err)
		}
		if err := ctx2.Close(file); err != nil {
			t.Fatal(err)
		}
		// If the dropper's reference lingered, a second close would still
		// succeed (refcount > 0) — it must fail instead.
		err = ctx2.Close(file)
		c2.Close()
		if err != nil {
			return // reference fully cleaned: over-release rejected
		}
		if time.Now().After(deadline) {
			t.Fatal("dropped client's reference never cleaned up")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	_, addr := testStack(t)
	c, _ := dvlib.Dial(addr, "bad")
	defer c.Close()
	if _, err := c.Init("nope"); err == nil {
		t.Error("unknown context accepted")
	}
	ctx, _ := c.Init("clim")
	if _, err := ctx.Open("garbage-name"); err == nil {
		t.Error("unparseable file accepted")
	}
	if err := ctx.Close(ctx.Filename(1)); err == nil {
		t.Error("release without reference accepted")
	}
	if _, err := ctx.AcquireNB(); err == nil {
		t.Error("empty acquire accepted")
	}
}

func TestStackValidation(t *testing.T) {
	if _, err := NewStack(t.TempDir(), 1, "DCL"); err == nil {
		t.Error("stack without contexts accepted")
	}
	ctx := &model.Context{
		Name:        "x",
		Grid:        model.Grid{DeltaD: 1, DeltaR: 4, Timesteps: 16},
		OutputBytes: 64,
		Tau:         time.Millisecond,
	}
	if _, err := NewStack(t.TempDir(), 1, "NOPE", ctx); err == nil {
		t.Error("unknown policy accepted")
	}
	st, err := NewStack(t.TempDir(), 1, "LRU", ctx)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.RunInitialSimulation("nope"); err == nil {
		t.Error("unknown context accepted by RunInitialSimulation")
	}
}
