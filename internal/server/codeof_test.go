package server

import (
	"errors"
	"fmt"
	"io/fs"
	"testing"
	"time"

	"simfs/internal/core"
	"simfs/internal/netproto"
)

// TestCodeOfMappings pins the error→code table: the known sentinels
// keep their codes, client-input mistakes (ErrInvalid) stay
// bad_request, and — the regression this guards — anything
// unclassified is the daemon's fault and maps to internal, never
// bad_request.
func TestCodeOfMappings(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want netproto.ErrCode
	}{
		{"quarantine", &core.QuarantineError{Attempts: 3, RetryAfter: time.Second}, netproto.CodeFailed},
		{"unknown context", fmt.Errorf("%w %q", core.ErrUnknownContext, "x"), netproto.CodeNoSuchContext},
		{"draining", fmt.Errorf("core: %w", core.ErrDraining), netproto.CodeBusy},
		{"busy", fmt.Errorf("core: %w: refs live", core.ErrBusy), netproto.CodeBusy},
		{"not produced", fmt.Errorf("%w: %q", core.ErrNotProduced, "f"), netproto.CodeNotProduced},
		{"invalid input", fmt.Errorf("core: %w: %q is outside the simulated timeline", core.ErrInvalid, "f"), netproto.CodeBadRequest},
		{"plain error", errors.New("something unexpected broke"), netproto.CodeInternal},
		{"fs fault", &fs.PathError{Op: "open", Path: "/x", Err: errors.New("io error")}, netproto.CodeInternal},
		{"wrapped fs fault", fmt.Errorf("storage: %w", &fs.PathError{Op: "write", Path: "/y", Err: errors.New("disk full")}), netproto.CodeInternal},
	}
	for _, tc := range cases {
		if got := codeOf(tc.err); got != tc.want {
			t.Errorf("%s: codeOf(%v) = %q, want %q", tc.name, tc.err, got, tc.want)
		}
	}
}
