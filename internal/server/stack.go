package server

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"simfs/internal/core"
	"simfs/internal/des"
	"simfs/internal/fed"
	"simfs/internal/model"
	"simfs/internal/notify"
	"simfs/internal/sched"
	"simfs/internal/simulator"
	"simfs/internal/vfs"
)

// Stack is a fully wired wall-clock SimFS instance: the Virtualizer, an
// in-process real-time launcher writing real files into per-context disk
// storage areas, and the TCP front-end. It is what cmd/simfs-dv runs and
// what the examples connect to. It implements ContextRegistrar, so the
// control plane can add and retire contexts on the live daemon.
type Stack struct {
	V        *core.Virtualizer
	Launcher *simulator.RealTimeLauncher
	Server   *Server

	baseDir   string
	timeScale int

	// areasMu guards areas: contexts register and deregister at runtime
	// while the launcher's write callback looks areas up concurrently.
	areasMu sync.RWMutex
	areas   map[string]*vfs.Disk

	// resimGen numbers re-simulation writes, used to perturb the content
	// of non-reproducible contexts (each re-simulated file differs from
	// the initial run).
	resimGen atomic.Int64

	// bridge is the federation bridge wired by EnablePeers (nil for a
	// standalone daemon), closed with the stack.
	bridge *fed.Bridge
}

// NewStack builds a daemon stack rooted at baseDir: each context gets the
// storage area <baseDir>/<context-name>. timeScale divides all simulated
// durations (1000 turns a 13 s restart latency into 13 ms), letting the
// examples and integration tests run the published COSMO/FLASH timings in
// milliseconds. policy names the replacement scheme (Sec. III-D). The
// launch scheduler runs the default (paper-exact) policy; use
// NewScheduledStack to enable coalescing, priority queueing or a node
// budget — or reconfigure the live daemon through the control plane.
func NewStack(baseDir string, timeScale int, policy string, ctxs ...*model.Context) (*Stack, error) {
	return NewScheduledStack(baseDir, timeScale, policy, sched.Config{}, ctxs...)
}

// NewScheduledStack is NewStack with an explicit re-simulation scheduler
// policy (see internal/sched): coalescing of overlapping launch requests,
// priority-ordered queueing, and a global node budget across contexts.
func NewScheduledStack(baseDir string, timeScale int, policy string, schedCfg sched.Config, ctxs ...*model.Context) (*Stack, error) {
	if len(ctxs) == 0 {
		return nil, fmt.Errorf("server: %w: stack needs at least one context", core.ErrInvalid)
	}
	st := &Stack{baseDir: baseDir, timeScale: timeScale, areas: map[string]*vfs.Disk{}}
	st.Launcher = &simulator.RealTimeLauncher{TimeScale: timeScale}
	st.V = core.NewScheduled(des.NewWallClock(), st.Launcher, schedCfg)
	st.Launcher.Events = st.V
	st.Launcher.Write = func(ctx *model.Context, step int) error {
		area, ok := st.Area(ctx.Name)
		if !ok {
			// A launch for a context without an area is a daemon-side
			// inconsistency: internal is the right wire code.
			return fmt.Errorf("server: no storage area for context %q", ctx.Name) //simfs:allow errcode daemon-side invariant breach classifies as internal by design
		}
		name := ctx.Filename(step)
		if ctx.NonReproducible {
			// A non-reproducible simulator (paper Sec. I) produces
			// different bits on every run: perturb the content with the
			// re-simulation generation so SIMFS_Bitrep flags it.
			gen := st.resimGen.Add(1)
			data := vfs.Content(fmt.Sprintf("%s#resim%d", name, gen), ctx.OutputBytes)
			return area.WriteRaw(name, data)
		}
		return area.Create(name, ctx.OutputBytes)
	}
	for _, ctx := range ctxs {
		if err := st.addContext(ctx, policy); err != nil {
			return nil, err
		}
	}
	st.Server = New(st.V, nil)
	st.Server.Registrar = st
	return st, nil
}

// Area returns a context's storage area (nil, false when unknown).
func (st *Stack) Area(name string) (*vfs.Disk, bool) {
	st.areasMu.RLock()
	defer st.areasMu.RUnlock()
	area, ok := st.areas[name]
	return area, ok
}

// addContext provisions the storage area and registers the context.
func (st *Stack) addContext(ctx *model.Context, policy string) error {
	// The context name becomes a directory under baseDir and arrives
	// over the wire for runtime registrations: reject anything that
	// could escape the storage root before any directory is created.
	if name := ctx.Name; name == "" || name == "." || name == ".." ||
		strings.ContainsAny(name, `/\`) || filepath.Base(name) != name {
		return fmt.Errorf("server: %w: invalid context name %q", core.ErrInvalid, ctx.Name)
	}
	ctx.ApplyDefaults()
	area, err := vfs.NewDisk(filepath.Join(st.baseDir, ctx.Name))
	if err != nil {
		return err
	}
	ctx.StorageDir = area.Dir()
	// The area must be visible before the Virtualizer registration: the
	// moment AddContext returns, other connections can open files and
	// launch re-simulations whose Write looks the area up.
	st.areasMu.Lock()
	st.areas[ctx.Name] = area
	st.areasMu.Unlock()
	if err := st.V.AddContext(ctx, policy, area); err != nil {
		st.areasMu.Lock()
		delete(st.areas, ctx.Name)
		st.areasMu.Unlock()
		return err
	}
	return nil
}

// RegisterContext implements ContextRegistrar: it adds a context to the
// running daemon, creating its storage area under the stack's base
// directory, and optionally runs the initial simulation so restart files
// and original checksums exist before clients arrive. Files already in
// the storage area (a re-registered context) are recovered by a rescan.
func (st *Stack) RegisterContext(ctx *model.Context, policy string, initialSim bool) error {
	if ctx == nil {
		return fmt.Errorf("server: %w: register of a nil context", core.ErrInvalid)
	}
	if err := st.addContext(ctx, policy); err != nil {
		return err
	}
	if initialSim {
		if err := st.RunInitialSimulation(ctx.Name); err != nil {
			return err
		}
	}
	if _, err := st.V.RescanStorageArea(ctx.Name); err != nil {
		return err
	}
	return nil
}

// DeregisterContext implements ContextRegistrar: it removes a drained
// context from the Virtualizer and forgets its storage area. The files
// stay on disk — re-registering the context recovers them.
func (st *Stack) DeregisterContext(name string) error {
	if err := st.V.RemoveContext(name); err != nil {
		return err
	}
	st.areasMu.Lock()
	delete(st.areas, name)
	st.areasMu.Unlock()
	return nil
}

// SyncContexts reconciles the running daemon against a desired context
// set (the config-file reload path: SIGHUP → re-read config → diff).
// Contexts in desired but not registered are added (with an initial
// simulation when initialSim is set); registered contexts absent from
// desired are drained and deregistered. A stale context still holding
// references stays draining — its error is reported and the next reload
// retries the removal. Existing contexts are left untouched: live
// parameter changes go through the control plane instead.
func (st *Stack) SyncContexts(desired []*model.Context, policy string, initialSim bool) (added, removed []string, err error) {
	want := map[string]*model.Context{}
	for _, ctx := range desired {
		if ctx != nil {
			want[ctx.Name] = ctx
		}
	}
	have := map[string]bool{}
	for _, name := range st.V.ContextNames() {
		have[name] = true
	}

	var errs []error
	var missing []string
	for name := range want {
		if !have[name] {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		if regErr := st.RegisterContext(want[name], policy, initialSim); regErr != nil {
			errs = append(errs, fmt.Errorf("register %q: %w", name, regErr))
			continue
		}
		added = append(added, name)
	}

	var stale []string
	for name := range have {
		if _, ok := want[name]; !ok {
			stale = append(stale, name)
		}
	}
	sort.Strings(stale)
	for _, name := range stale {
		if drainErr := st.V.Drain(name); drainErr != nil {
			errs = append(errs, fmt.Errorf("drain %q: %w", name, drainErr))
			continue
		}
		if remErr := st.DeregisterContext(name); remErr != nil {
			// Still busy: the context stays draining (it admits no new
			// clients) and the next sync retries the removal.
			errs = append(errs, fmt.Errorf("deregister %q: %w", name, remErr))
			continue
		}
		removed = append(removed, name)
	}
	return added, removed, errors.Join(errs...)
}

// RunInitialSimulation models the initial simulation of a context (paper
// Fig. 2, "initial simulation, write restart files"): it writes the
// restart files into the storage area and registers the original output
// checksums so SIMFS_Bitrep can verify later re-simulations. Output steps
// themselves are not stored — that is the point of SimFS.
func (st *Stack) RunInitialSimulation(ctxName string) error {
	ctx, ok := st.V.Context(ctxName)
	if !ok {
		return fmt.Errorf("server: %w %q", core.ErrUnknownContext, ctxName)
	}
	area, ok := st.Area(ctxName)
	if !ok {
		// Registered but area-less: a daemon-side inconsistency, so the
		// internal wire code is the honest classification.
		return fmt.Errorf("server: no storage area for context %q", ctxName) //simfs:allow errcode daemon-side invariant breach classifies as internal by design
	}
	drv := simulator.NewSynthetic(ctx)
	for t := ctx.Grid.DeltaR; t <= ctx.Grid.Timesteps; t += ctx.Grid.DeltaR {
		if err := area.Create(ctx.RestartFilename(t), ctx.RestartBytes); err != nil {
			return err
		}
	}
	for i := 1; i <= ctx.Grid.NumOutputSteps(); i++ {
		name := ctx.Filename(i)
		sum := drv.Checksum(vfs.Content(name, ctx.OutputBytes))
		if err := st.V.RegisterChecksum(ctxName, name, sum); err != nil {
			return err
		}
	}
	return nil
}

// EnablePeers federates the daemon: it builds a fed.Bridge dialing the
// given peer daemon addresses and wires it into the server, so
// subscriptions to files no local simulation produces are watched on
// the peers and their ready/failed events republished into the local
// notify hub. name identifies this daemon on its outbound hellos
// (peers see it as client "fed:<name>"). Call before Serve; the bridge
// closes with the stack.
func (st *Stack) EnablePeers(name string, peerAddrs []string) *fed.Bridge {
	st.bridge = fed.NewBridge(name, peerAddrs,
		func(ctxName, file string, ready bool, errMsg string, attempts int, retryAfterNs int64) {
			topic, err := st.V.FileTopic(ctxName, file)
			if err != nil {
				// The peer knows a context this daemon does not — nothing
				// local is watching it, so there is nowhere to publish.
				return
			}
			kind := notify.FileReady
			if !ready {
				kind = notify.FileFailed
			}
			st.V.Hub().Publish(notify.Event{Topic: topic, Kind: kind,
				Err: errMsg, Attempts: attempts, RetryAfter: retryAfterNs})
		})
	st.Server.Peers = st.bridge
	return st.bridge
}

// ListenAndServe binds the TCP front-end and serves until Close.
func (st *Stack) ListenAndServe(addr string) error {
	if err := st.Server.Listen(addr); err != nil {
		return err
	}
	return st.Server.Serve()
}

// Close shuts down the front-end and waits for running simulations.
func (st *Stack) Close() {
	st.Server.Close()
	if st.bridge != nil {
		st.bridge.Close()
	}
}
