package server

import (
	"fmt"
	"path/filepath"
	"sync/atomic"

	"simfs/internal/core"
	"simfs/internal/des"
	"simfs/internal/model"
	"simfs/internal/sched"
	"simfs/internal/simulator"
	"simfs/internal/vfs"
)

// Stack is a fully wired wall-clock SimFS instance: the Virtualizer, an
// in-process real-time launcher writing real files into per-context disk
// storage areas, and the TCP front-end. It is what cmd/simfs-dv runs and
// what the examples connect to.
type Stack struct {
	V        *core.Virtualizer
	Launcher *simulator.RealTimeLauncher
	Areas    map[string]*vfs.Disk
	Server   *Server
	// resimGen numbers re-simulation writes, used to perturb the content
	// of non-reproducible contexts (each re-simulated file differs from
	// the initial run).
	resimGen atomic.Int64
}

// NewStack builds a daemon stack rooted at baseDir: each context gets the
// storage area <baseDir>/<context-name>. timeScale divides all simulated
// durations (1000 turns a 13 s restart latency into 13 ms), letting the
// examples and integration tests run the published COSMO/FLASH timings in
// milliseconds. policy names the replacement scheme (Sec. III-D). The
// launch scheduler runs the default (paper-exact) policy; use
// NewScheduledStack to enable coalescing, priority queueing or a node
// budget.
func NewStack(baseDir string, timeScale int, policy string, ctxs ...*model.Context) (*Stack, error) {
	return NewScheduledStack(baseDir, timeScale, policy, sched.Config{}, ctxs...)
}

// NewScheduledStack is NewStack with an explicit re-simulation scheduler
// policy (see internal/sched): coalescing of overlapping launch requests,
// priority-ordered queueing, and a global node budget across contexts.
func NewScheduledStack(baseDir string, timeScale int, policy string, schedCfg sched.Config, ctxs ...*model.Context) (*Stack, error) {
	if len(ctxs) == 0 {
		return nil, fmt.Errorf("server: stack needs at least one context")
	}
	st := &Stack{Areas: map[string]*vfs.Disk{}}
	st.Launcher = &simulator.RealTimeLauncher{TimeScale: timeScale}
	st.V = core.NewScheduled(des.NewWallClock(), st.Launcher, schedCfg)
	st.Launcher.Events = st.V
	st.Launcher.Write = func(ctx *model.Context, step int) error {
		area, ok := st.Areas[ctx.Name]
		if !ok {
			return fmt.Errorf("server: no storage area for context %q", ctx.Name)
		}
		name := ctx.Filename(step)
		if ctx.NonReproducible {
			// A non-reproducible simulator (paper Sec. I) produces
			// different bits on every run: perturb the content with the
			// re-simulation generation so SIMFS_Bitrep flags it.
			gen := st.resimGen.Add(1)
			data := vfs.Content(fmt.Sprintf("%s#resim%d", name, gen), ctx.OutputBytes)
			return area.WriteRaw(name, data)
		}
		return area.Create(name, ctx.OutputBytes)
	}
	for _, ctx := range ctxs {
		ctx.ApplyDefaults()
		area, err := vfs.NewDisk(filepath.Join(baseDir, ctx.Name))
		if err != nil {
			return nil, err
		}
		ctx.StorageDir = area.Dir()
		st.Areas[ctx.Name] = area
		if err := st.V.AddContext(ctx, policy, area); err != nil {
			return nil, err
		}
	}
	st.Server = New(st.V, nil)
	return st, nil
}

// RunInitialSimulation models the initial simulation of a context (paper
// Fig. 2, "initial simulation, write restart files"): it writes the
// restart files into the storage area and registers the original output
// checksums so SIMFS_Bitrep can verify later re-simulations. Output steps
// themselves are not stored — that is the point of SimFS.
func (st *Stack) RunInitialSimulation(ctxName string) error {
	ctx, ok := st.V.Context(ctxName)
	if !ok {
		return fmt.Errorf("server: unknown context %q", ctxName)
	}
	area := st.Areas[ctxName]
	drv := simulator.NewSynthetic(ctx)
	for t := ctx.Grid.DeltaR; t <= ctx.Grid.Timesteps; t += ctx.Grid.DeltaR {
		if err := area.Create(ctx.RestartFilename(t), ctx.RestartBytes); err != nil {
			return err
		}
	}
	for i := 1; i <= ctx.Grid.NumOutputSteps(); i++ {
		name := ctx.Filename(i)
		sum := drv.Checksum(vfs.Content(name, ctx.OutputBytes))
		if err := st.V.RegisterChecksum(ctxName, name, sum); err != nil {
			return err
		}
	}
	return nil
}

// ListenAndServe binds the TCP front-end and serves until Close.
func (st *Stack) ListenAndServe(addr string) error {
	if err := st.Server.Listen(addr); err != nil {
		return err
	}
	return st.Server.Serve()
}

// Close shuts down the front-end and waits for running simulations.
func (st *Stack) Close() {
	st.Server.Close()
}
