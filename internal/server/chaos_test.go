package server

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"simfs/internal/core"
	"simfs/internal/dvlib"
	"simfs/internal/faults"
	"simfs/internal/model"
)

// chaosRetryPolicy is the failure-ledger config every chaos schedule
// runs under: aggressive enough to ride out injected faults, fast
// enough for a test.
var chaosRetryPolicy = core.RetryPolicy{
	MaxAttempts: 6,
	BaseBackoff: 2 * time.Millisecond,
	MaxBackoff:  20 * time.Millisecond,
	Jitter:      0.2,
	Cooldown:    150 * time.Millisecond,
	Seed:        1,
}

func chaosReconnect(seed int64) dvlib.ReconnectConfig {
	return dvlib.ReconnectConfig{
		BaseBackoff: 2 * time.Millisecond,
		MaxBackoff:  50 * time.Millisecond,
		MaxElapsed:  30 * time.Second,
		Seed:        seed,
	}
}

// chaosClient runs one client's share of the contended workload:
// open → wait → release over a spread of files, retrying the attempts a
// fault schedule may legitimately fail (quarantine windows, connection
// resets mid-release).
func chaosClient(addr string, idx, filesPer int, reconnect bool) error {
	var opts []dvlib.DialOption
	if reconnect {
		opts = append(opts, dvlib.WithReconnect(chaosReconnect(int64(idx)+1)))
	}
	var c *dvlib.Client
	var err error
	for attempt := 0; attempt < 50; attempt++ {
		// The handshake itself can be hit by a connection fault;
		// auto-reconnect only guards established sessions.
		if c, err = dvlib.Dial(addr, fmt.Sprintf("chaos-%d", idx), opts...); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("client %d: dial: %w", idx, err)
	}
	defer c.Close()
	ctx, err := c.Init("clim")
	if err != nil {
		return fmt.Errorf("client %d: init: %w", idx, err)
	}
	for k := 0; k < filesPer; k++ {
		step := 1 + ((idx*filesPer+k)*7)%64
		file := ctx.Filename(step)
		if err := openWaitRelease(ctx, file); err != nil {
			return fmt.Errorf("client %d: %s: %w", idx, file, err)
		}
	}
	return nil
}

// openWaitRelease drives one file to availability and releases it,
// retrying through transient failures: a failed attempt drops its
// reference before retrying, so a healthy retry re-launches the
// re-simulation (and a quarantined interval gets its half-open probe
// once the cooldown elapses).
func openWaitRelease(ctx *dvlib.Context, file string) error {
	deadline := time.Now().Add(60 * time.Second)
	for {
		if time.Now().After(deadline) {
			return errors.New("chaos workload timed out")
		}
		if _, err := ctx.Open(file); err != nil {
			time.Sleep(20 * time.Millisecond)
			continue
		}
		waitErr := ctx.WaitAvailable(file)
		if err := releaseRetry(ctx, file); err != nil {
			return fmt.Errorf("release: %w", err)
		}
		if waitErr == nil {
			return nil
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// releaseRetry releases a file, riding out connection resets: a release
// interrupted in flight fails typed, keeps its ledger entry, and is safe
// to re-issue.
func releaseRetry(ctx *dvlib.Context, file string) error {
	for attempt := 0; ; attempt++ {
		err := ctx.Release(file)
		switch {
		case err == nil:
			return nil
		case errors.Is(err, dvlib.ErrReconnecting) && attempt < 100:
			time.Sleep(10 * time.Millisecond)
		default:
			return err
		}
	}
}

func runChaosWorkload(t *testing.T, addr string, clients, filesPer int, reconnect bool) {
	t.Helper()
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errCh <- chaosClient(addr, i, filesPer, reconnect)
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Error(err)
		}
	}
}

// TestChaosWorkloadUnderFaults drives the contended 10-client workload
// through seeded fault schedules — storage I/O errors, simulation
// crash plans, connection cuts, and all three combined — and asserts
// the stack converges: every client completes, the fault counters prove
// the schedule actually fired, and the core invariants hold.
func TestChaosWorkloadUnderFaults(t *testing.T) {
	type schedule struct {
		name      string
		reconnect bool
		configure func(st *Stack) (fired func() uint64)
	}
	schedules := []schedule{
		{
			// Seeded storage faults on the launcher's write path: a failed
			// Create fails the whole run, exercising retry with partial
			// output prefixes on disk.
			name: "storage-faults",
			configure: func(st *Stack) func() uint64 {
				var mu sync.Mutex
				rng := rand.New(rand.NewSource(11))
				var injected uint64
				orig := st.Launcher.Write
				st.Launcher.Write = func(ctx *model.Context, step int) error {
					mu.Lock()
					fail := rng.Float64() < 0.04
					if fail {
						injected++
					}
					mu.Unlock()
					if fail {
						return &faults.InjectedError{Op: "create", Name: ctx.Filename(step)}
					}
					return orig(ctx, step)
				}
				return func() uint64 { mu.Lock(); defer mu.Unlock(); return injected }
			},
		},
		{
			// Seeded simulation crashes through the FailAt hook.
			name: "sim-crashes",
			configure: func(st *Stack) func() uint64 {
				plan := faults.NewSimPlan().WithRandom(23, 0.25)
				st.Launcher.FailAt = plan.FailAt
				return plan.Injected
			},
		},
		{
			// Connection cuts between client and daemon; clients ride
			// through on auto-reconnect.
			name:      "conn-resets",
			reconnect: true,
			configure: func(st *Stack) func() uint64 {
				plan := &faults.ConnPlan{Seed: 37, CutProb: 0.05, Partial: true}
				st.Server.WrapConn = plan.Wrap
				return plan.Injected
			},
		},
		{
			// Everything at once, distinct seeds.
			name:      "combined",
			reconnect: true,
			configure: func(st *Stack) func() uint64 {
				simPlan := faults.NewSimPlan().WithRandom(41, 0.15)
				st.Launcher.FailAt = simPlan.FailAt
				connPlan := &faults.ConnPlan{Seed: 43, CutProb: 0.02}
				st.Server.WrapConn = connPlan.Wrap
				return func() uint64 { return simPlan.Injected() + connPlan.Injected() }
			},
		},
	}
	for _, sc := range schedules {
		t.Run(sc.name, func(t *testing.T) {
			var fired func() uint64
			st, addr := testStackWith(t, func(st *Stack) {
				st.V.SetRetryPolicy(chaosRetryPolicy)
				fired = sc.configure(st)
			})
			runChaosWorkload(t, addr, 10, 3, sc.reconnect)
			if n := fired(); n == 0 {
				t.Error("fault schedule injected nothing; the run proved nothing")
			}
			if err := st.V.CheckInvariants(); err != nil {
				t.Errorf("invariants violated after chaos run: %v", err)
			}
			stats, err := st.V.Stats("clim")
			if err != nil {
				t.Fatal(err)
			}
			retries, quarantined, _ := st.V.RetryStats("clim")
			t.Logf("chaos %s: failures=%d retries=%d quarantined=%d restarts=%d",
				sc.name, stats.Failures, retries, quarantined, stats.Restarts)
		})
	}
}

// connRecorder tracks accepted connections so a test can sever them all
// at once — a daemon crash as the clients observe it, with no drain
// frames and no goodbye.
type connRecorder struct {
	mu    sync.Mutex
	conns []net.Conn
}

func (r *connRecorder) Wrap(c net.Conn) net.Conn {
	r.mu.Lock()
	r.conns = append(r.conns, c)
	r.mu.Unlock()
	return c
}

func (r *connRecorder) KillAll() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.conns {
		c.Close()
	}
	r.conns = nil
}

// bootChaosStack builds a daemon over baseDir and serves on addr
// ("127.0.0.1:0" for the first boot, the recorded address for a
// restart). Restart recovery is the documented sequence: initial
// simulation artifacts are idempotently re-created, then the storage
// area is rescanned so outputs produced before the crash are resident.
func bootChaosStack(t *testing.T, baseDir, addr string, wrap func(net.Conn) net.Conn) *Stack {
	t.Helper()
	ctx := &model.Context{
		Name:               "clim",
		Grid:               model.Grid{DeltaD: 1, DeltaR: 4, Timesteps: 64},
		OutputBytes:        512,
		RestartBytes:       256,
		Tau:                4 * time.Millisecond,
		Alpha:              8 * time.Millisecond,
		DefaultParallelism: 1,
		MaxParallelism:     1,
		SMax:               4,
	}
	st, err := NewStack(baseDir, 1, "DCL", ctx)
	if err != nil {
		t.Fatal(err)
	}
	st.V.SetRetryPolicy(chaosRetryPolicy)
	st.Server.WrapConn = wrap
	if err := st.RunInitialSimulation("clim"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.V.RescanStorageArea("clim"); err != nil {
		t.Fatal(err)
	}
	var lerr error
	for i := 0; i < 100; i++ { // the previous boot's port may linger briefly
		if lerr = st.Server.Listen(addr); lerr == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if lerr != nil {
		t.Fatal(lerr)
	}
	go st.Server.Serve()
	return st
}

// TestDaemonRestartMidWorkload kills the daemon outright while clients
// hold references and wait on re-simulations, restarts it on the same
// address over the same storage area, and asserts the clients ride
// through on auto-reconnect: pending waits complete, a watch spanning
// the crash reports every file exactly once, and no references are
// leaked on either side.
func TestDaemonRestartMidWorkload(t *testing.T) {
	baseDir := t.TempDir()
	rec := &connRecorder{}
	st1 := bootChaosStack(t, baseDir, "127.0.0.1:0", rec.Wrap)
	addr := st1.Server.Addr()

	const clients = 4
	type clientState struct {
		c     *dvlib.Client
		ctx   *dvlib.Context
		files []string
	}
	var cls []*clientState
	t.Cleanup(func() {
		for _, cl := range cls {
			cl.c.Close()
		}
	})
	for i := 0; i < clients; i++ {
		c, err := dvlib.Dial(addr, fmt.Sprintf("rider-%d", i),
			dvlib.WithReconnect(chaosReconnect(int64(i)+100)))
		if err != nil {
			t.Fatal(err)
		}
		ctx, err := c.Init("clim")
		if err != nil {
			t.Fatal(err)
		}
		cl := &clientState{c: c, ctx: ctx}
		for k := 0; k < 3; k++ {
			file := ctx.Filename(30 + i*8 + k) // deep steps: re-simulation guaranteed
			res, err := ctx.Open(file)
			if err != nil {
				t.Fatal(err)
			}
			if res.Available {
				t.Fatalf("%s resident before any re-simulation", file)
			}
			cl.files = append(cl.files, file)
		}
		cls = append(cls, cl)
	}
	// One client watches its whole file set across the crash.
	watcher := cls[0]
	w, err := watcher.ctx.Watch(watcher.files...)
	if err != nil {
		t.Fatal(err)
	}
	watchDone := make(chan map[string]int, 1)
	go func() {
		got := map[string]int{}
		for ev := range w.Events() {
			if ev.Err != "" {
				t.Errorf("watch error across restart: %s", ev.Err)
			}
			if ev.File != "" && ev.Ready {
				got[ev.File]++
			}
		}
		watchDone <- got
	}()

	// Crash: sever every connection with no goodbye, stop the server,
	// and wait out its in-flight simulations so the restarted daemon is
	// the only writer on the storage area.
	rec.KillAll()
	st1.Server.Close()
	st1.Launcher.Wait()

	st2 := bootChaosStack(t, baseDir, addr, nil)
	t.Cleanup(func() {
		st2.Close()
		st2.Launcher.Wait()
	})

	// The clients' reconnect loops find the new daemon, replay their
	// reference ledgers (re-launching the re-simulations the crash
	// killed) and re-subscribe the watch; every pending wait completes.
	var wg sync.WaitGroup
	for _, cl := range cls {
		wg.Add(1)
		go func(cl *clientState) {
			defer wg.Done()
			for _, f := range cl.files {
				if err := cl.ctx.WaitAvailable(f); err != nil {
					t.Errorf("wait %s across restart: %v", f, err)
				}
			}
		}(cl)
	}
	wg.Wait()

	got := <-watchDone
	for _, f := range watcher.files {
		if got[f] != 1 {
			t.Errorf("watch reported %s %d times across the restart, want exactly 1", f, got[f])
		}
	}

	// Release everything exactly once; a second release must be refused
	// — the ledger replay did not duplicate references.
	for _, cl := range cls {
		for _, f := range cl.files {
			if err := releaseRetry(cl.ctx, f); err != nil {
				t.Errorf("release %s: %v", f, err)
			}
			if err := cl.ctx.Release(f); !errors.Is(err, dvlib.ErrNotHeld) {
				t.Errorf("double release of %s = %v, want ErrNotHeld", f, err)
			}
		}
	}

	if err := st2.V.CheckInvariants(); err != nil {
		t.Errorf("invariants violated after restart: %v", err)
	}
	// No leaked references server-side either: once the launcher idles,
	// the context must be removable (RemoveContext refuses while any
	// file is referenced, any waiter is registered, or any sim runs).
	st2.Launcher.Wait()
	deadline := time.Now().Add(10 * time.Second)
	for {
		err := st2.V.RemoveContext("clim")
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("context not removable after restart workload (leaked refs?): %v", err)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
