package server

import (
	"testing"
	"time"

	"simfs/internal/dvlib"
)

// TestWatchOverTCP exercises the subscription op end to end: a watch on
// a mix of resident and in-production files resolves every file and then
// completes.
func TestWatchOverTCP(t *testing.T) {
	_, addr := testStack(t)
	c, err := dvlib.Dial(addr, "watcher")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, err := c.Init("clim")
	if err != nil {
		t.Fatal(err)
	}

	// Make one file resident, start production of another.
	warm := ctx.Filename(3)
	if _, err := ctx.Open(warm); err != nil {
		t.Fatal(err)
	}
	if err := ctx.WaitAvailable(warm); err != nil {
		t.Fatal(err)
	}
	cold := ctx.Filename(20)
	if _, err := ctx.Open(cold); err != nil {
		t.Fatal(err)
	}

	w, err := ctx.Watch(warm, cold)
	if err != nil {
		t.Fatal(err)
	}
	ready := map[string]bool{}
	sawDone := false
	for ev := range w.Events() {
		if ev.Err != "" {
			t.Fatalf("watch event error: %s", ev.Err)
		}
		if ev.Done {
			sawDone = true
			continue
		}
		if !ev.Ready {
			t.Fatalf("unexpected event %+v", ev)
		}
		ready[ev.File] = true
	}
	if !sawDone || !ready[warm] || !ready[cold] {
		t.Errorf("done=%v ready=%v, want both files ready and a done event", sawDone, ready)
	}
	for _, f := range []string{warm, cold} {
		if err := ctx.Release(f); err != nil {
			t.Error(err)
		}
	}
}

// TestWatchUnproducedFileResolvesWithError: a watch on a file nobody is
// producing must not hang — it resolves with a per-file error.
func TestWatchUnproducedFileResolvesWithError(t *testing.T) {
	_, addr := testStack(t)
	c, err := dvlib.Dial(addr, "watcher")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, err := c.Init("clim")
	if err != nil {
		t.Fatal(err)
	}
	w, err := ctx.Watch(ctx.Filename(40))
	if err != nil {
		t.Fatal(err)
	}
	var fileErr string
	for ev := range w.Events() {
		if ev.File != "" {
			fileErr = ev.Err
		}
	}
	if fileErr == "" {
		t.Error("watch of an unproduced file should resolve with an error event")
	}
	// WaitAvailable surfaces the same condition as an error.
	if err := ctx.WaitAvailable(ctx.Filename(41)); err == nil {
		t.Error("WaitAvailable without a prior open should fail")
	}
}

// TestWatchCancel verifies OpUnsubscribe: after Cancel the event channel
// closes promptly even though the watched file is never produced.
func TestWatchCancel(t *testing.T) {
	_, addr := testStack(t)
	c, err := dvlib.Dial(addr, "watcher")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, err := c.Init("clim")
	if err != nil {
		t.Fatal(err)
	}
	// Reference a far-future file with a long production queue ahead of
	// it so the watch outlives the Cancel.
	cold := ctx.Filename(60)
	if _, err := ctx.Open(cold); err != nil {
		t.Fatal(err)
	}
	w, err := ctx.Watch(cold)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Cancel(); err != nil {
		t.Fatal(err)
	}
	select {
	case ev, ok := <-w.Events():
		for ok && !ev.Done {
			ev, ok = <-w.Events()
		}
	case <-time.After(5 * time.Second):
		t.Fatal("events channel did not close after Cancel")
	}
	if err := ctx.Release(cold); err != nil {
		t.Error(err)
	}
}

// TestStatsCarryLockCounters: the wire stats now include the shard-lock
// counters of the sharded Virtualizer.
func TestStatsCarryLockCounters(t *testing.T) {
	_, addr := testStack(t)
	c, err := dvlib.Dial(addr, "metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, err := c.Init("clim")
	if err != nil {
		t.Fatal(err)
	}
	file := ctx.Filename(2)
	if _, err := ctx.Open(file); err != nil {
		t.Fatal(err)
	}
	if err := ctx.WaitAvailable(file); err != nil {
		t.Fatal(err)
	}
	st, err := ctx.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.LockAcquisitions == 0 {
		t.Errorf("stats carry no lock acquisitions: %+v", st)
	}
	if st.LockContended > st.LockAcquisitions {
		t.Errorf("contended > acquisitions: %+v", st)
	}
}
