package server

import (
	"testing"
	"time"

	"simfs/internal/dvlib"
	"simfs/internal/model"
)

func TestGuidedPrefetchOverTCP(t *testing.T) {
	_, addr := testStack(t)
	c, err := dvlib.Dial(addr, "hinter")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, err := c.Init("clim")
	if err != nil {
		t.Fatal(err)
	}

	// Hint three files in distinct restart intervals: three launches.
	n, err := ctx.Prefetch(ctx.Filename(2), ctx.Filename(10), ctx.Filename(18))
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("prefetch launched %d, want 3", n)
	}
	// Hinting the same files again joins the running simulations.
	n, err = ctx.Prefetch(ctx.Filename(2), ctx.Filename(10))
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Errorf("duplicate hint launched %d, want 0", n)
	}
	// The hinted files eventually materialize and the later Open hits.
	deadline := time.Now().Add(10 * time.Second)
	for {
		res, err := ctx.Open(ctx.Filename(10))
		if err != nil {
			t.Fatal(err)
		}
		ctx.Close(ctx.Filename(10))
		if res.Available {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("hinted file never materialized")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Bad hints are rejected.
	if _, err := ctx.Prefetch("garbage"); err == nil {
		t.Error("unparseable hint accepted")
	}
	if _, err := ctx.Prefetch(); err == nil {
		t.Error("empty hint accepted")
	}
}

func TestNonReproducibleSimulatorFailsBitrep(t *testing.T) {
	mctx := &model.Context{
		Name:               "chaotic",
		Grid:               model.Grid{DeltaD: 1, DeltaR: 4, Timesteps: 32},
		OutputBytes:        256,
		RestartBytes:       64,
		Tau:                2 * time.Millisecond,
		Alpha:              4 * time.Millisecond,
		DefaultParallelism: 1,
		MaxParallelism:     1,
		SMax:               4,
		NonReproducible:    true,
	}
	st, err := NewStack(t.TempDir(), 1, "DCL", mctx)
	if err != nil {
		t.Fatal(err)
	}
	// Initial simulation registers the "original" checksums (from the
	// deterministic stream, standing in for the first run's output).
	if err := st.RunInitialSimulation("chaotic"); err != nil {
		t.Fatal(err)
	}
	if err := st.Server.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go st.Server.Serve()
	defer func() {
		st.Close()
		st.Launcher.Wait()
	}()

	c, err := dvlib.Dial(st.Server.Addr(), "chaos-analysis")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, err := c.Init("chaotic")
	if err != nil {
		t.Fatal(err)
	}
	file := ctx.Filename(5)
	if _, err := ctx.Open(file); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Read(file); err != nil {
		t.Fatal(err)
	}
	defer ctx.Close(file)
	// The re-simulated file must NOT match the original: the analysis
	// detects the divergence through SIMFS_Bitrep (paper Sec. I: "The
	// analysis can check if the re-simulated data differs").
	same, err := ctx.Bitrep(file)
	if err != nil {
		t.Fatal(err)
	}
	if same {
		t.Error("non-reproducible simulator produced bitwise-identical output")
	}
}

func TestDaemonRestartRecovery(t *testing.T) {
	// Files cached by a first daemon instance survive a restart: the new
	// instance rescans the storage area and serves them as hits.
	dir := t.TempDir()
	mk := func() *Stack {
		ctx := &model.Context{
			Name:               "persist",
			Grid:               model.Grid{DeltaD: 1, DeltaR: 4, Timesteps: 64},
			OutputBytes:        128,
			RestartBytes:       64,
			Tau:                2 * time.Millisecond,
			Alpha:              4 * time.Millisecond,
			DefaultParallelism: 1,
			MaxParallelism:     1,
			SMax:               4,
		}
		st, err := NewStack(dir, 1, "DCL", ctx)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Server.Listen("127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		go st.Server.Serve()
		return st
	}

	st1 := mk()
	c1, _ := dvlib.Dial(st1.Server.Addr(), "gen1")
	ctx1, _ := c1.Init("persist")
	file := ctx1.Filename(9)
	if _, err := ctx1.Open(file); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx1.Read(file); err != nil {
		t.Fatal(err)
	}
	ctx1.Close(file)
	c1.Close()
	st1.Close()
	st1.Launcher.Wait()

	// "Crash" and restart on the same storage area.
	st2 := mk()
	defer func() {
		st2.Close()
		st2.Launcher.Wait()
	}()
	c2, _ := dvlib.Dial(st2.Server.Addr(), "gen2")
	defer c2.Close()
	ctx2, _ := c2.Init("persist")
	n, err := ctx2.Rescan()
	if err != nil {
		t.Fatal(err)
	}
	if n < 1 {
		t.Fatalf("rescan recovered %d files, want ≥1", n)
	}
	res, err := ctx2.Open(file)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Available {
		t.Error("recovered file should be served as a hit without re-simulation")
	}
	ctx2.Close(file)
	stats, _ := ctx2.Stats()
	if stats.Restarts != 0 {
		t.Errorf("restart recovery triggered %d re-simulations", stats.Restarts)
	}
}
